/**
 * @file
 * Shared observability plumbing for the benchmark drivers.
 *
 * Every bench measures in phases (warmup / measured), and the registry
 * rule is: counters are NEVER reset between phases. A Phase object
 * snapshots the registry when the measured region starts and reports
 * the delta when it ends, so warmup traffic stays out of the numbers
 * without destroying the cumulative counters other readers (metrics
 * dumps, the global snapshot) rely on.
 *
 * finishBench() is the common epilogue: dump a process-wide metrics
 * snapshot if HICAMP_OBS_METRICS is set, and the Chrome trace if the
 * binary was built with HICAMP_TRACE and HICAMP_TRACE_OUT is set.
 */

#ifndef HICAMP_BENCH_BENCH_OBS_HH
#define HICAMP_BENCH_BENCH_OBS_HH

#include <string>

#include "obs/export.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace hicamp::bench {

/**
 * Delta-based phase measurement over one registry. Construct at the
 * start of the measured region (after warmup, at a quiescent point);
 * delta() gives the traffic of the region alone.
 */
class Phase
{
  public:
    explicit Phase(const obs::MetricsRegistry &reg, std::uint64_t id = 0)
        : reg_(reg), before_(reg.snapshot())
    {
        HICAMP_TRACE_EVENT(App, Phase, id, 0);
        (void)id;
    }

    /** Traffic since construction (quiescent-point exact). */
    obs::MetricsSnapshot
    delta() const
    {
        return obs::delta(before_, reg_.snapshot());
    }

    /** The starting snapshot (for self-checks against raw counters). */
    const obs::MetricsSnapshot &before() const { return before_; }

  private:
    const obs::MetricsRegistry &reg_;
    obs::MetricsSnapshot before_;
};

/**
 * Common bench epilogue: honor HICAMP_OBS_METRICS (dumping @p s) and
 * HICAMP_TRACE_OUT. Call once, at the end of main, at a quiescent
 * point. Returns true if any artifact was written.
 */
inline bool
finishBench(const obs::MetricsSnapshot &s)
{
    bool wrote = obs::dumpMetricsFromEnv(s);
    wrote = obs::dumpChromeTraceFromEnv() || wrote;
    return wrote;
}

/**
 * Epilogue over whatever registries are still alive. Benches whose
 * memory systems are scoped inside the run functions should instead
 * pass the measured-phase delta explicitly — by the end of main those
 * registries are gone and the global snapshot is empty.
 */
inline bool
finishBench()
{
    return finishBench(obs::MetricsRegistry::globalSnapshot());
}

/** One metrics snapshot as a JSON sub-object (for BENCH_*.json rows). */
inline std::string
metricsJson(const obs::MetricsSnapshot &s)
{
    return obs::toJson(s);
}

/** Sum of the five Fig. 6 DRAM categories in a snapshot/delta. */
inline std::uint64_t
dramTotal(const obs::MetricsSnapshot &s)
{
    return s.counter("dram.read") + s.counter("dram.write") +
           s.counter("dram.lookup") + s.counter("dram.dealloc") +
           s.counter("dram.refcount");
}

} // namespace hicamp::bench

#endif // HICAMP_BENCH_BENCH_OBS_HH
