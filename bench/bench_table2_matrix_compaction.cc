/**
 * @file
 * Reproduces paper Table 2: sparse-matrix storage in HICAMP (best of
 * QTS / NZD) as a percentage of the conventional representation (CSR,
 * or symmetric CSR for symmetric matrices), aggregated by category
 * with standard deviations.
 *
 * Paper: All 62.7% +/- 36.5, Non-symmetric 58.5 +/- 33.9, Symmetric
 * 76.9 +/- 41.8, FEMs 70.7 +/- 40.2, LPs 43.0 +/- 31.7 (lower =
 * more compact; a few matrices slightly exceed 100%).
 */

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "apps/spmv/hicamp_matrix.hh"
#include "bench_obs.hh"
#include "common/table.hh"
#include "workloads/matrixgen.hh"

using namespace hicamp;

int
main()
{
    const char *sc = std::getenv("HICAMP_SUITE_SCALE");
    double scale = sc ? std::atof(sc) : 1.0;
    auto suite = MatrixGen::standardSuite(scale);

    struct Agg {
        std::vector<double> vals;
        void
        add(double v)
        {
            vals.push_back(v);
        }
        double
        mean() const
        {
            double s = 0;
            for (double v : vals)
                s += v;
            return vals.empty() ? 0 : s / static_cast<double>(vals.size());
        }
        double
        stddev() const
        {
            double m = mean(), s = 0;
            for (double v : vals)
                s += (v - m) * (v - m);
            return vals.size() < 2
                       ? 0
                       : std::sqrt(s / static_cast<double>(vals.size()));
        }
    };

    Agg all, nonsym, sym, fem, lp;
    for (const auto &m : suite) {
        auto fp = measureFootprint(m);
        double pct = 100.0 * static_cast<double>(fp.bestBytes()) /
                     static_cast<double>(m.convBytes());
        all.add(pct);
        (m.symmetric() ? sym : nonsym).add(pct);
        if (m.category() == "FEM")
            fem.add(pct);
        if (m.category() == "LP")
            lp.add(pct);
    }

    std::printf("== Table 2: sparse matrix compaction (HICAMP bytes "
                "per 100 conventional bytes; suite scale %.1f) ==\n\n",
                scale);
    Table t({"category", "matrices", "HICAMP %", "stddev", "paper %",
             "paper stddev"});
    auto row = [&](const char *name, const Agg &a, const char *paper,
                   const char *pstd) {
        t.addRow({name, strfmt("%zu", a.vals.size()),
                  strfmt("%.1f%%", a.mean()), strfmt("%.1f", a.stddev()),
                  paper, pstd});
    };
    row("All", all, "62.7%", "36.5");
    row("Non-symmetric", nonsym, "58.5%", "33.9");
    row("Symmetric", sym, "76.9%", "41.8");
    row("FEMs", fem, "70.7%", "40.2");
    row("LPs", lp, "43.0%", "31.7");
    t.print();
    bench::finishBench();
    return 0;
}
