/**
 * @file
 * Ablation studies for the design choices DESIGN.md calls out:
 *
 *  1. path + data compaction on/off: DAG lines for the structures
 *     each rule targets (sparse maps for path compaction, small-int
 *     arrays for data compaction) — paper §3.2's motivation;
 *  2. line-size sweep: dedup gain vs DAG overhead across 16/32/64 B
 *     lines on a redundant text corpus;
 *  3. signature quality: measured false-positive rate of the 8-bit
 *     bucket signatures vs the paper's <5% bound (footnote 4);
 *  4. mCAS vs plain CAS under contention: commits lost to retry.
 */

#include <cstdio>
#include <unordered_set>

#include "bench_obs.hh"
#include "common/table.hh"
#include "lang/harray.hh"
#include "seg/iterator.hh"
#include "workloads/webcorpus.hh"

using namespace hicamp;

namespace {

MemoryConfig
cfg(unsigned ls = 16)
{
    MemoryConfig c;
    c.lineBytes = ls;
    c.numBuckets = 1 << 16;
    return c;
}

std::uint64_t
linesFor(Memory &mem, SegBuilder &b, const std::vector<Word> &w)
{
    std::vector<WordMeta> m(w.size(), WordMeta::raw());
    SegDesc d = b.buildWords(w.data(), m.data(), w.size());
    SegReader r(mem);
    std::unordered_set<Plid> seen;
    std::uint64_t lines = r.countLines(d.root, d.height, seen);
    b.releaseSeg(d);
    return lines;
}

void
compactionAblation()
{
    std::printf("-- ablation 1: compaction rules (DAG lines) --\n");
    // Sparse map: one value at a far offset (path compaction's case).
    std::vector<Word> sparse(1 << 16, 0);
    sparse[50000] = ~Word{0};
    // Dense small integers (data compaction's case).
    std::vector<Word> small(1 << 12);
    for (std::size_t i = 0; i < small.size(); ++i)
        small[i] = i % 199;

    Table t({"policy", "sparse(64K,1 elem)", "smallints(4K)"});
    struct Case {
        const char *name;
        CompactionPolicy p;
    } cases[] = {
        {"full (paper)", {true, true}},
        {"no path compaction", {true, false}},
        {"no data compaction", {false, true}},
        {"neither", {false, false}},
    };
    for (const auto &c : cases) {
        Memory mem(cfg());
        SegBuilder b(mem, false, c.p);
        std::uint64_t s1 = linesFor(mem, b, sparse);
        std::uint64_t s2 = linesFor(mem, b, small);
        t.addRow({c.name, strfmt("%llu", (unsigned long long)s1),
                  strfmt("%llu", (unsigned long long)s2)});
    }
    t.print();
    std::printf("\n");
}

void
lineSizeSweep()
{
    std::printf("-- ablation 2: line-size sweep on a redundant text "
                "corpus --\n");
    WebCorpus::Params p;
    p.numItems = 800;
    p.minBytes = 512;
    p.maxBytes = 8192;
    p.seed = 5;
    auto items = WebCorpus::generate(p);
    std::uint64_t raw = WebCorpus::totalBytes(items);
    Table t({"line size", "HICAMP bytes", "compaction", "fanout"});
    for (unsigned ls : {16u, 32u, 64u}) {
        MemoryConfig c = cfg(ls);
        c.numBuckets = 1 << 17;
        Memory mem(c);
        SegBuilder b(mem);
        std::vector<SegDesc> keep;
        for (const auto &it : items)
            keep.push_back(
                b.buildBytes(it.payload.data(), it.payload.size()));
        t.addRow({strfmt("%u B", ls),
                  strfmt("%.2f MB",
                         static_cast<double>(mem.liveBytes()) / 1e6),
                  strfmt("%.2f", static_cast<double>(raw) /
                                     static_cast<double>(mem.liveBytes())),
                  strfmt("%u", mem.fanout())});
    }
    t.print();
    std::printf("\n");
}

void
signatureQuality()
{
    std::printf("-- ablation 3: 8-bit signature false positives --\n");
    Table t({"lines stored", "bucket occupancy", "false-positive rate"});
    for (std::uint64_t n : {20000ull, 100000ull, 400000ull}) {
        MemoryConfig c = cfg();
        c.numBuckets = 1 << 15; // 393K data slots
        Memory mem(c);
        for (Word v = 1; v <= n; ++v) {
            Line l = mem.makeLine();
            l.set(0, v);
            l.set(1, v * 2654435761ull);
            (void)mem.lookup(l);
        }
        double occupancy =
            static_cast<double>(n) /
            static_cast<double>(c.numBuckets * 12);
        double fp = static_cast<double>(mem.sigFalsePositives()) /
                    static_cast<double>(mem.lookupOps());
        t.addRow({strfmt("%llu", (unsigned long long)n),
                  strfmt("%.0f%%", occupancy * 100.0),
                  strfmt("%.2f%%", fp * 100.0)});
    }
    t.print();
    std::printf("paper footnote 4: <5%% with twelve lines per bucket\n\n");
}

void
mcasVsCas()
{
    std::printf("-- ablation 4: mCAS vs plain CAS under contention --\n");
    const int rounds = 300;
    for (bool merge : {false, true}) {
        Hicamp hc(cfg());
        HArray<std::uint64_t> arr(hc, std::vector<std::uint64_t>(16, 0),
                                  merge ? std::uint32_t{kSegMergeUpdate} : std::uint32_t{0});
        std::uint64_t retries = 0;
        for (int i = 0; i < rounds; ++i) {
            IteratorRegister a(hc.mem, hc.vsm), b(hc.mem, hc.vsm);
            a.load(arr.vsid(), i % 16);
            b.load(arr.vsid(), (i + 7) % 16);
            a.write(a.read() + 1);
            b.write(b.read() + 1);
            a.tryCommit();
            while (!b.tryCommit()) { // stale under plain CAS
                ++retries;
                std::uint64_t pos = b.offset();
                b.load(arr.vsid(), pos);
                b.write(b.read() + 1);
            }
        }
        std::printf("%-10s %d conflicting commit pairs -> %llu "
                    "application-level retries, %llu merge commits\n",
                    merge ? "mCAS:" : "plain CAS:", rounds,
                    static_cast<unsigned long long>(retries),
                    static_cast<unsigned long long>(hc.vsm.mergeCommits()));
    }
    std::printf("\n");
}

} // namespace

int
main()
{
    std::printf("== Ablation benches ==\n\n");
    compactionAblation();
    lineSizeSweep();
    signatureQuality();
    mcasVsCas();
    bench::finishBench();
    return 0;
}
