/**
 * @file
 * Reproduces paper Figure 7: off-chip memory accesses for SpMV,
 * HICAMP vs conventional CSR/symmetric-CSR, per matrix, log2 ratio,
 * against matrix (CSR) size. Paper result: considering matrices
 * larger than the 4 MB L2, HICAMP reduces accesses by ~20% on average
 * (excluding one extreme-compaction outlier; ~38% including it).
 *
 * HICAMP per matrix uses the better of the QTS and NZD formats (as
 * Table 2 does for storage). Suite scale is controlled by
 * HICAMP_SUITE_SCALE (default 3: large matrices exceed L2).
 */

#include <bit>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "apps/spmv/hicamp_matrix.hh"
#include "bench_obs.hh"
#include "common/table.hh"
#include "workloads/matrixgen.hh"

using namespace hicamp;

int
main()
{
    const char *sc = std::getenv("HICAMP_SUITE_SCALE");
    double scale = sc ? std::atof(sc) : 3.0;
    auto suite = MatrixGen::standardSuite(scale);
    const std::uint64_t l2_bytes = 4ull << 20;

    std::printf("== Figure 7: SpMV off-chip accesses, HICAMP / "
                "conventional (suite scale %.1f) ==\n\n",
                scale);
    Table t({"matrix", "category", "nnz", "CSR MB", "conv", "hicamp",
             "ratio", "log2", ">L2"});

    double sum_ratio = 0, sum_ratio_excl = 0;
    double best_ratio = 1e30;
    int big = 0, big_excl = 0;

    for (const auto &m : suite) {
        ConvHierarchy hier = ConvHierarchy::paperDefault(16);
        // The conventional baseline opts into the registry too; its
        // counters must agree with the traffic the model returns.
        obs::MetricsRegistry conv_reg("fig7.conv");
        hier.registerMetrics(conv_reg, "conv");
        std::uint64_t conv = convSpmvTraffic(m, hier);
        const auto conv_delta = conv_reg.snapshot();
        if (conv != conv_delta.counter("conv.dram.reads") +
                        conv_delta.counter("conv.dram.writes")) {
            std::printf("FAIL: conv registry disagrees with "
                        "convSpmvTraffic\n");
            return 1;
        }

        MemoryConfig cfg;
        cfg.numBuckets =
            std::bit_ceil(std::max<std::uint64_t>(m.nnz() / 2, 1 << 13));
        std::vector<double> x(m.cols(), 1.0);
        std::uint64_t qts, nzd;
        {
            // Cold caches, no counter reset: the kernel's traffic is
            // the registry delta across the spmv call alone.
            Memory mem(cfg);
            QtsMatrix q(mem, m);
            mem.coldCaches();
            bench::Phase ph(mem.metrics());
            q.spmv(x);
            qts = bench::dramTotal(ph.delta());
        }
        {
            Memory mem(cfg);
            NzdMatrix n(mem, m);
            mem.coldCaches();
            bench::Phase ph(mem.metrics());
            n.spmv(x);
            nzd = bench::dramTotal(ph.delta());
        }
        std::uint64_t hic = std::min(qts, nzd);
        double ratio = static_cast<double>(hic) /
                       static_cast<double>(conv);
        bool over_l2 = m.csrBytes() > l2_bytes;
        if (over_l2) {
            sum_ratio += ratio;
            ++big;
            best_ratio = std::min(best_ratio, ratio);
        }
        t.addRow({m.name(), m.category(),
                  strfmt("%llu",
                         static_cast<unsigned long long>(m.nnz())),
                  strfmt("%.1f",
                         static_cast<double>(m.csrBytes()) / 1048576.0),
                  strfmt("%llu", static_cast<unsigned long long>(conv)),
                  strfmt("%llu", static_cast<unsigned long long>(hic)),
                  strfmt("%.2f", ratio), strfmt("%+.2f", std::log2(ratio)),
                  over_l2 ? "*" : ""});
    }
    // Exclude the single most-compacted matrix, as the paper does.
    for (const auto &m : suite) {
        (void)m;
    }
    t.print();

    // Recompute the exclusion average.
    sum_ratio_excl = sum_ratio - best_ratio;
    big_excl = big - 1;
    std::printf("\nmatrices larger than L2: %d\n", big);
    if (big_excl > 0) {
        std::printf("average HICAMP/conv ratio (>L2, excluding the "
                    "extreme outlier): %.2f  -> savings %.0f%%\n",
                    sum_ratio_excl / big_excl,
                    100.0 * (1.0 - sum_ratio_excl / big_excl));
        std::printf("average including the outlier: %.2f -> savings "
                    "%.0f%%\n",
                    sum_ratio / big, 100.0 * (1.0 - sum_ratio / big));
    }
    std::printf("paper: ~20%% average savings (38%% including the "
                "4000x-compacted matrix)\n");
    bench::finishBench();
    return 0;
}
