/**
 * @file
 * Multi-threaded scaling of the memory system across its three
 * concurrency modes — "global" (MemoryConfig::globalLock), "sharded"
 * (stripe locks, epochReclaim off) and "epoch" (§12 epoch-based
 * reclamation: lock-free read/lookup fast paths) — on three
 * workloads:
 *
 *  - "mixed": memcached-style 10:1 get:set over a sharded map
 *    (paper §5.1.1's workload shape);
 *  - "spmv_tiles": per-thread sparse-matrix tiles repeatedly swept
 *    through snapshot + materialize (read-dominated, the lock-free
 *    fast path);
 *  - "read_lookup": read-heavy + lookup-heavy hammer over a fixed
 *    line population (5 readLine + 5 dedup-hit lookups per round,
 *    LLC sized below the working set so probes reach the store).
 *    This is the workload the epoch conversion targets: in sharded
 *    mode every dedup probe takes a stripe lock; in epoch mode the
 *    same probe completes with zero lock acquisitions.
 *
 * Each (workload, mode, threads) cell reports wall-clock throughput
 * and *modeled* throughput. The model is the architectural claim
 * under test, two terms:
 *
 *  DRAM term (paper §3.1): every DRAM command of an operation targets
 *  the home bucket's row, buckets stripe across independent banks,
 *  commands within one bank serialize at t_RC while banks overlap.
 *  The global-lock build funnels all operations through one ordering
 *  point, so its row activations issue strictly sequentially:
 *
 *    t_global = total_row_acts * t_RC
 *    t_dram   = max(total_row_acts / threads, hottest_bank) * t_RC
 *
 *  Lock-wall term (§12 motivation): each stripe-lock acquisition is
 *  an atomic RMW on the stripe's lock word — a cache line that
 *  serializes within a stripe and ping-pongs between cores at t_lock
 *  per transfer when contended. Acquisitions spread over min(threads,
 *  stripes) independent lock words, and a transfer only costs when
 *  another core touched the same word since our last acquisition —
 *  probability ~ (threads-1)/lock_stripes under uniform striping
 *  (zero single-threaded, ~1 once threads reach the stripe count):
 *
 *    t_lock_wall = lock_ops * t_lock
 *                           * min(1, (threads-1)/lock_stripes)
 *                           / min(threads, lock_stripes)
 *
 *  The JSON reports the terms separately (model_dram_ms,
 *  lock_wall_ms) plus their total (model_ms): the DRAM term alone is
 *  the §3.1 bank-parallelism figure EXPERIMENTS.md tracks for the
 *  structure workloads (speedup_model_mixed_4t / _spmv_4t), while
 *  the total is the synchronization-aware figure the §12 headline
 *  (speedup_model_read_lookup_16t) is judged on. Epoch mode's read
 *  and lookup paths take no stripe locks, so its lock_ops column —
 *  and therefore its wall term — is ~zero; the JSON doubles as an
 *  empirical zero-locks proof alongside the TSA capability rule.
 *
 * Wall-clock numbers measure the host (meaningful on multicore
 * machines; on single-core CI they only show lock overhead); the
 * modeled numbers measure the architecture and are what
 * BENCH_mt_scaling.json tracks as the scaling trajectory.
 *
 * Usage: bench_mt_scaling [--smoke] [--json PATH]
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_obs.hh"
#include "common/cli.hh"
#include "common/rng.hh"
#include "common/table.hh"
#include "lang/harray.hh"
#include "lang/hsharded_map.hh"

using namespace hicamp;

namespace {

constexpr double kTrcNs = 50.0;   // DRAM row-cycle time (§5.1.1 model)
constexpr double kTLockNs = 250.0; // contended lock-word transfer (§12)

struct Cell {
    std::string workload;
    std::string mode; ///< "global", "sharded" or "epoch"
    int threads = 0;
    std::uint64_t ops = 0;
    double wallMs = 0.0;
    std::uint64_t rowActs = 0;
    std::uint64_t maxBankActs = 0;
    std::uint64_t lockOps = 0; ///< stripe-lock acquisitions (excl+shared)
    unsigned lockStripes = 1;
    /// measured-phase registry delta (the JSON metrics sub-object)
    obs::MetricsSnapshot metrics;

    /// §3.1 bank-parallelism term (the EXPERIMENTS.md trajectory
    /// metric for the structure workloads).
    double
    dramModelMs() const
    {
        const double serial = static_cast<double>(rowActs);
        if (mode == "global")
            return serial * kTrcNs / 1e6;
        const double perBank = static_cast<double>(maxBankActs);
        return std::max(serial / threads, perBank) * kTrcNs / 1e6;
    }

    /// §12 lock-wall term: zero for the global mode (already fully
    /// serialized by construction) and ~zero for epoch-mode
    /// read/lookup paths (no stripe acquisitions).
    double
    lockWallMs() const
    {
        if (mode == "global")
            return 0.0;
        const double contended =
            std::min(1.0, (threads - 1.0) / lockStripes);
        return static_cast<double>(lockOps) * kTLockNs * contended /
               std::min<double>(threads, lockStripes) / 1e6;
    }

    double
    modelMs() const
    {
        return dramModelMs() + lockWallMs();
    }

    double
    modelMops() const
    {
        const double ms = modelMs();
        return ms > 0.0 ? ops / ms / 1e3 : 0.0;
    }

    double
    dramModelMops() const
    {
        const double ms = dramModelMs();
        return ms > 0.0 ? ops / ms / 1e3 : 0.0;
    }

    double
    wallMops() const
    {
        return wallMs > 0.0 ? ops / wallMs / 1e3 : 0.0;
    }
};

/** Per-bank activation baseline for delta-based hottest-bank math. */
std::vector<std::uint64_t>
bankBaseline(const Memory &mem)
{
    std::vector<std::uint64_t> base(mem.store().numStripes());
    for (unsigned s = 0; s < base.size(); ++s)
        base[s] = mem.bankActivations(s);
    return base;
}

std::uint64_t
maxBankDelta(const Memory &mem, const std::vector<std::uint64_t> &base)
{
    std::uint64_t m = 0;
    for (unsigned s = 0; s < base.size(); ++s)
        m = std::max(m, mem.bankActivations(s) - base[s]);
    return m;
}

std::uint64_t
lockOpsNow(const Memory &mem)
{
    return mem.store().stripeLockExclusiveOps() +
           mem.store().stripeLockSharedOps();
}

MemoryConfig
makeConfig(const std::string &mode)
{
    MemoryConfig cfg;
    cfg.numBuckets = 1 << 16;
    cfg.globalLock = mode == "global";
    // "sharded" is the pre-§12 build: stripe locks on every store
    // operation, immediate reclamation. "epoch" keeps the defaults
    // (epochReclaim on).
    cfg.epochReclaim = mode == "epoch";
    cfg.faults.allowEnvOverride = false;
    return cfg;
}

/**
 * Memcached-style mixed workload: pre-populate, then each thread
 * issues rounds of 10 gets (whole key space) + 1 set (its own key
 * range) against a 16-shard merge-update map.
 */
Cell
runMixed(const std::string &mode, int threads, int keys, int rounds)
{
    Hicamp hc(makeConfig(mode));
    Cell cell;
    cell.workload = "mixed";
    cell.mode = mode;
    cell.threads = threads;
    cell.lockStripes = hc.mem.store().numStripes();
    {
        HShardedMap map(hc, /*shard_bits=*/4);
        for (int i = 0; i < keys; ++i)
            map.set(HString(hc, "key-" + std::to_string(i)),
                    HString(hc, "value-" + std::to_string(i)));
        // Warmup writebacks complete uncounted; counters stay
        // cumulative and the measured phase is a registry delta.
        hc.mem.flushTraffic();
        const auto bank0 = bankBaseline(hc.mem);
        const std::uint64_t lock0 = lockOpsNow(hc.mem);
        bench::Phase phase(hc.mem.metrics());

        std::vector<std::uint64_t> ops(threads, 0);
        const auto t0 = std::chrono::steady_clock::now();
        std::vector<std::thread> ts;
        for (int t = 0; t < threads; ++t) {
            ts.emplace_back([&, t] {
                Rng rng(1000 + t); // same stream in all modes
                for (int r = 0; r < rounds; ++r) {
                    for (int g = 0; g < 10; ++g) {
                        map.get(HString(
                            hc,
                            "key-" + std::to_string(rng.below(keys))));
                        ++ops[t];
                    }
                    map.set(HString(hc,
                                    "key-" +
                                        std::to_string(rng.below(keys))),
                            HString(hc, "update-" + std::to_string(t) +
                                            "-" + std::to_string(r)));
                    ++ops[t];
                }
            });
        }
        for (auto &th : ts)
            th.join();
        const auto t1 = std::chrono::steady_clock::now();

        cell.wallMs =
            std::chrono::duration<double, std::milli>(t1 - t0).count();
        for (auto o : ops)
            cell.ops += o;
        cell.metrics = phase.delta();
        cell.rowActs = cell.metrics.counter("row_activations");
        cell.maxBankActs = maxBankDelta(hc.mem, bank0);
        cell.lockOps = lockOpsNow(hc.mem) - lock0;
    }
    return cell;
}

/**
 * SpMV tiles: each thread owns a sparse tile segment and sweeps it —
 * snapshot, materialize, dot-product against a dense vector, release.
 * Read-only after setup: exercises the lock-free read path.
 */
Cell
runSpmvTiles(const std::string &mode, int threads, int tile_words,
             int passes)
{
    Hicamp hc(makeConfig(mode));
    Cell cell;
    cell.workload = "spmv_tiles";
    cell.mode = mode;
    cell.threads = threads;
    cell.lockStripes = hc.mem.store().numStripes();
    {
        std::vector<std::unique_ptr<HArray<std::uint64_t>>> tiles;
        for (int t = 0; t < threads; ++t) {
            std::vector<std::uint64_t> tile(tile_words, 0);
            // ~1/7 nonzero, values unique per (thread, index) so tiles
            // dedup within but not across threads.
            for (int i = 0; i < tile_words; i += 7)
                tile[i] = 1 + t * tile_words + i;
            tiles.push_back(std::make_unique<HArray<std::uint64_t>>(
                hc, tile, kSegMergeUpdate));
        }
        // Cold caches, cumulative counters: the sweep's traffic is
        // the registry delta below.
        hc.mem.coldCaches();
        const auto bank0 = bankBaseline(hc.mem);
        const std::uint64_t lock0 = lockOpsNow(hc.mem);
        bench::Phase phase(hc.mem.metrics());

        std::vector<std::uint64_t> ops(threads, 0);
        std::vector<std::uint64_t> sums(threads, 0);
        const auto t0 = std::chrono::steady_clock::now();
        std::vector<std::thread> ts;
        for (int t = 0; t < threads; ++t) {
            ts.emplace_back([&, t] {
                SegReader reader(hc.mem);
                std::vector<Word> w;
                std::vector<WordMeta> m;
                for (int p = 0; p < passes; ++p) {
                    SegDesc snap = hc.vsm.snapshot(tiles[t]->vsid());
                    w.clear();
                    m.clear();
                    reader.materialize(snap.root, snap.height, w, m);
                    std::uint64_t dot = 0;
                    for (int i = 0; i < tile_words; ++i)
                        dot += w[i] * ((i & 7) + 1); // dense vector
                    sums[t] += dot;
                    ops[t] += tile_words;
                    hc.vsm.releaseSnapshot(snap);
                }
            });
        }
        for (auto &th : ts)
            th.join();
        const auto t1 = std::chrono::steady_clock::now();

        cell.wallMs =
            std::chrono::duration<double, std::milli>(t1 - t0).count();
        for (auto o : ops)
            cell.ops += o;
        cell.metrics = phase.delta();
        cell.rowActs = cell.metrics.counter("row_activations");
        cell.maxBankActs = maxBankDelta(hc.mem, bank0);
        cell.lockOps = lockOpsNow(hc.mem) - lock0;
    }
    return cell;
}

/**
 * Read/lookup hammer on the bare Memory: a fixed population of
 * interned lines, then each thread loops rounds of 5 readLine (random
 * PLID) + 5 lookup (dedup hit on existing content, released
 * immediately). No retirements happen during the measured phase, so
 * the three modes do identical DRAM work and the cells differ only in
 * synchronization: sharded pays one exclusive stripe lock per dedup
 * probe (and shared locks on overflow reads); epoch pays none. The
 * LLC is sized well below the population so probes miss the
 * content-addressed cache and actually reach the store.
 */
Cell
runReadLookup(const std::string &mode, int threads, int keys, int rounds)
{
    MemoryConfig cfg = makeConfig(mode);
    cfg.lockStripes = 16;      // §5.1.1 bank count; lock wall binds
    cfg.l2Bytes = 64 * 1024;   // << population: probes reach the store
    Memory mem(cfg);
    Cell cell;
    cell.workload = "read_lookup";
    cell.mode = mode;
    cell.threads = threads;
    cell.lockStripes = mem.store().numStripes();

    const auto contentOf = [&](int i) {
        Line l = mem.makeLine();
        l.set(0, 0x52444C00u + static_cast<Word>(i));
        l.set(1, static_cast<Word>(i) * 2654435761u + 1);
        return l;
    };
    std::vector<Plid> plids(keys);
    for (int i = 0; i < keys; ++i)
        plids[i] = mem.lookup(contentOf(i)); // setup refs held throughout

    mem.coldCaches();
    const auto bank0 = bankBaseline(mem);
    const std::uint64_t lock0 = lockOpsNow(mem);
    bench::Phase phase(mem.metrics());

    std::vector<std::uint64_t> ops(threads, 0);
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::thread> ts;
    for (int t = 0; t < threads; ++t) {
        ts.emplace_back([&, t] {
            Rng rng(7000 + t); // same stream in all modes
            for (int r = 0; r < rounds; ++r) {
                for (int g = 0; g < 5; ++g) {
                    (void)mem.readLine(plids[rng.below(keys)]);
                    ++ops[t];
                }
                for (int g = 0; g < 5; ++g) {
                    const Plid p =
                        mem.lookup(contentOf(static_cast<int>(
                            rng.below(keys))));
                    mem.decRef(p); // setup ref keeps the line live
                    ++ops[t];
                }
            }
        });
    }
    for (auto &th : ts)
        th.join();
    const auto t1 = std::chrono::steady_clock::now();

    cell.wallMs =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    for (auto o : ops)
        cell.ops += o;
    cell.metrics = phase.delta();
    cell.rowActs = cell.metrics.counter("row_activations");
    cell.maxBankActs = maxBankDelta(mem, bank0);
    cell.lockOps = lockOpsNow(mem) - lock0;
    for (int i = 0; i < keys; ++i)
        mem.decRef(plids[i]);
    return cell;
}

enum class Metric { Wall, Dram, Total };

double
speedupAt(const std::vector<Cell> &cells, const std::string &workload,
          int threads, Metric metric, const std::string &base,
          const std::string &fast)
{
    double b = 0.0, f = 0.0;
    for (const auto &c : cells) {
        if (c.workload != workload || c.threads != threads)
            continue;
        const double v = metric == Metric::Wall ? c.wallMops()
                         : metric == Metric::Dram
                             ? c.dramModelMops()
                             : c.modelMops();
        if (c.mode == base)
            b = v;
        else if (c.mode == fast)
            f = v;
    }
    return b > 0.0 ? f / b : 0.0;
}

void
writeJson(const std::vector<Cell> &cells, const std::string &path,
          bool smoke)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return;
    }
    std::fprintf(f, "{\n  \"bench\": \"mt_scaling\",\n");
    std::fprintf(f, "  \"smoke\": %s,\n", smoke ? "true" : "false");
    std::fprintf(f, "  \"t_rc_ns\": %.0f,\n", kTrcNs);
    std::fprintf(f, "  \"t_lock_ns\": %.0f,\n", kTLockNs);
    std::fprintf(f, "  \"results\": [\n");
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const Cell &c = cells[i];
        std::fprintf(
            f,
            "    {\"workload\": \"%s\", \"mode\": \"%s\", "
            "\"threads\": %d, \"ops\": %llu, \"wall_ms\": %.3f, "
            "\"wall_mops\": %.4f, \"row_acts\": %llu, "
            "\"max_bank_acts\": %llu, \"lock_ops\": %llu, "
            "\"lock_stripes\": %u, \"model_dram_ms\": %.3f, "
            "\"lock_wall_ms\": %.3f, \"model_ms\": %.3f, "
            "\"model_mops\": %.4f, \"metrics\": %s}%s\n",
            c.workload.c_str(), c.mode.c_str(), c.threads,
            static_cast<unsigned long long>(c.ops), c.wallMs,
            c.wallMops(), static_cast<unsigned long long>(c.rowActs),
            static_cast<unsigned long long>(c.maxBankActs),
            static_cast<unsigned long long>(c.lockOps), c.lockStripes,
            c.dramModelMs(), c.lockWallMs(), c.modelMs(),
            c.modelMops(), bench::metricsJson(c.metrics).c_str(),
            i + 1 < cells.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    const int mid = smoke ? 2 : 4;
    const int hot = smoke ? 2 : 16;
    // §3.1 bank-parallelism figures (DRAM model, the EXPERIMENTS.md
    // trajectory): sharded vs global on the structure workloads.
    std::fprintf(f, "  \"speedup_model_mixed_4t\": %.3f,\n",
                 speedupAt(cells, "mixed", mid, Metric::Dram, "global",
                           "sharded"));
    std::fprintf(f, "  \"speedup_model_spmv_4t\": %.3f,\n",
                 speedupAt(cells, "spmv_tiles", mid, Metric::Dram,
                           "global", "sharded"));
    std::fprintf(f, "  \"speedup_wall_mixed_4t\": %.3f,\n",
                 speedupAt(cells, "mixed", mid, Metric::Wall, "global",
                           "sharded"));
    // The §12 acceptance number: epoch vs sharded full-model (DRAM +
    // lock wall) throughput on read/lookup at 16 threads (>= 2x).
    std::fprintf(f, "  \"speedup_model_read_lookup_16t\": %.3f,\n",
                 speedupAt(cells, "read_lookup", hot, Metric::Total,
                           "sharded", "epoch"));
    std::fprintf(f, "  \"speedup_model_read_lookup_64t\": %.3f\n",
                 speedupAt(cells, "read_lookup", smoke ? 2 : 64,
                           Metric::Total, "sharded", "epoch"));
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("\nwrote %s\n", path.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    std::string json_path = "BENCH_mt_scaling.json";
    cli::FlagSet flags("bench_mt_scaling",
                       "global vs sharded vs epoch scaling sweep");
    flags.toggle("--smoke", &smoke, "smoke-sized runs (CI)");
    flags.str("--json", &json_path, "trajectory output path");
    flags.parse(argc, argv);

    // The structure-level workloads scale to 16 threads; the bare
    // read/lookup hammer — the §12 headline — goes to 64.
    const std::vector<int> thread_counts =
        smoke ? std::vector<int>{1, 2}
              : std::vector<int>{1, 2, 4, 8, 16};
    const std::vector<int> rl_thread_counts =
        smoke ? std::vector<int>{1, 2}
              : std::vector<int>{1, 2, 4, 8, 16, 32, 64};
    const int keys = smoke ? 400 : 8000;
    const int rounds = smoke ? 30 : 400;
    const int tile_words = smoke ? 512 : 4096;
    const int passes = smoke ? 4 : 40;
    const int rl_keys = smoke ? 256 : 20000;
    const int rl_rounds = smoke ? 20 : 200;

    std::printf("== Multi-threaded scaling: global lock vs stripe "
                "locks vs epoch reclamation ==\n\n");

    std::vector<Cell> cells;
    Table t({"workload", "mode", "threads", "ops", "wall ms",
             "wall Mops", "row acts", "hot bank", "lock ops",
             "model ms", "model Mops"});
    const auto record = [&](Cell c) {
        t.addRow({c.workload, c.mode, std::to_string(c.threads),
                  std::to_string(c.ops), strfmt("%.2f", c.wallMs),
                  strfmt("%.4f", c.wallMops()),
                  std::to_string(c.rowActs),
                  std::to_string(c.maxBankActs),
                  std::to_string(c.lockOps),
                  strfmt("%.3f", c.modelMs()),
                  strfmt("%.4f", c.modelMops())});
        cells.push_back(std::move(c));
    };
    const std::vector<std::string> modes{"global", "sharded", "epoch"};
    for (const char *wl : {"mixed", "spmv_tiles"})
        for (int n : thread_counts)
            for (const auto &mode : modes)
                record(std::strcmp(wl, "mixed") == 0
                           ? runMixed(mode, n, keys, rounds)
                           : runSpmvTiles(mode, n, tile_words, passes));
    for (int n : rl_thread_counts)
        for (const auto &mode : modes)
            record(runReadLookup(mode, n, rl_keys, rl_rounds));
    t.print();

    const int mid = smoke ? 2 : 4;
    const int hot = smoke ? 2 : 16;
    std::printf("\nbank-parallel (DRAM model) speedup, sharded vs "
                "global at %d threads: mixed %.2fx, spmv_tiles %.2fx "
                "(target: >= 3x mixed at 4 threads)\n",
                mid,
                speedupAt(cells, "mixed", mid, Metric::Dram, "global",
                          "sharded"),
                speedupAt(cells, "spmv_tiles", mid, Metric::Dram,
                          "global", "sharded"));
    std::printf("full-model (DRAM + lock wall) speedup, epoch vs "
                "sharded at %d threads: read_lookup %.2fx (target: "
                ">= 2x at 16 threads)\n",
                hot,
                speedupAt(cells, "read_lookup", hot, Metric::Total,
                          "sharded", "epoch"));
    writeJson(cells, json_path, smoke);
    bench::finishBench();
    return 0;
}
