/**
 * @file
 * Multi-threaded scaling of the sharded memory system vs the
 * global-lock baseline (MemoryConfig::globalLock), on two workloads:
 *
 *  - "mixed": memcached-style 10:1 get:set over a sharded map
 *    (paper §5.1.1's workload shape);
 *  - "spmv_tiles": per-thread sparse-matrix tiles repeatedly swept
 *    through snapshot + materialize (read-dominated, the lock-free
 *    fast path).
 *
 * Each (workload, mode, threads) cell reports wall-clock throughput
 * and *modeled* bank-parallel throughput. The model is the
 * architectural claim under test: every DRAM command of an operation
 * targets the home bucket's row (paper §3.1), buckets stripe across
 * independent DRAM banks, and commands within one bank serialize at
 * t_RC while banks overlap. The global-lock build funnels all
 * operations through one ordering point, so its row activations
 * issue strictly sequentially:
 *
 *    t_global  = total_row_acts * t_RC
 *    t_sharded = max(total_row_acts / threads, hottest_bank) * t_RC
 *
 * Wall-clock numbers measure the host (meaningful on multicore
 * machines; on single-core CI they only show lock overhead); the
 * modeled numbers measure the architecture and are what
 * BENCH_mt_scaling.json tracks as the scaling trajectory.
 *
 * Usage: bench_mt_scaling [--smoke] [--json PATH]
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_obs.hh"
#include "common/rng.hh"
#include "common/table.hh"
#include "lang/harray.hh"
#include "lang/hsharded_map.hh"

using namespace hicamp;

namespace {

constexpr double kTrcNs = 50.0; // DRAM row-cycle time (§5.1.1 model)

struct Cell {
    std::string workload;
    std::string mode; ///< "global" or "sharded"
    int threads = 0;
    std::uint64_t ops = 0;
    double wallMs = 0.0;
    std::uint64_t rowActs = 0;
    std::uint64_t maxBankActs = 0;
    /// measured-phase registry delta (the JSON metrics sub-object)
    obs::MetricsSnapshot metrics;

    double
    modelMs() const
    {
        const double serial = static_cast<double>(rowActs);
        const double perBank = static_cast<double>(maxBankActs);
        const double critical =
            mode == "global"
                ? serial
                : std::max(serial / threads, perBank);
        return critical * kTrcNs / 1e6;
    }

    double
    modelMops() const
    {
        const double ms = modelMs();
        return ms > 0.0 ? ops / ms / 1e3 : 0.0;
    }

    double
    wallMops() const
    {
        return wallMs > 0.0 ? ops / wallMs / 1e3 : 0.0;
    }
};

/** Per-bank activation baseline for delta-based hottest-bank math. */
std::vector<std::uint64_t>
bankBaseline(const Memory &mem)
{
    std::vector<std::uint64_t> base(mem.store().numStripes());
    for (unsigned s = 0; s < base.size(); ++s)
        base[s] = mem.bankActivations(s);
    return base;
}

std::uint64_t
maxBankDelta(const Memory &mem, const std::vector<std::uint64_t> &base)
{
    std::uint64_t m = 0;
    for (unsigned s = 0; s < base.size(); ++s)
        m = std::max(m, mem.bankActivations(s) - base[s]);
    return m;
}

MemoryConfig
makeConfig(bool global_lock)
{
    MemoryConfig cfg;
    cfg.numBuckets = 1 << 16;
    cfg.globalLock = global_lock;
    cfg.faults.allowEnvOverride = false;
    return cfg;
}

/**
 * Memcached-style mixed workload: pre-populate, then each thread
 * issues rounds of 10 gets (whole key space) + 1 set (its own key
 * range) against a 16-shard merge-update map.
 */
Cell
runMixed(bool global_lock, int threads, int keys, int rounds)
{
    Hicamp hc(makeConfig(global_lock));
    Cell cell;
    cell.workload = "mixed";
    cell.mode = global_lock ? "global" : "sharded";
    cell.threads = threads;
    {
        HShardedMap map(hc, /*shard_bits=*/4);
        for (int i = 0; i < keys; ++i)
            map.set(HString(hc, "key-" + std::to_string(i)),
                    HString(hc, "value-" + std::to_string(i)));
        // Warmup writebacks complete uncounted; counters stay
        // cumulative and the measured phase is a registry delta.
        hc.mem.flushTraffic();
        const auto bank0 = bankBaseline(hc.mem);
        bench::Phase phase(hc.mem.metrics());

        std::vector<std::uint64_t> ops(threads, 0);
        const auto t0 = std::chrono::steady_clock::now();
        std::vector<std::thread> ts;
        for (int t = 0; t < threads; ++t) {
            ts.emplace_back([&, t] {
                Rng rng(1000 + t); // same stream in both modes
                for (int r = 0; r < rounds; ++r) {
                    for (int g = 0; g < 10; ++g) {
                        map.get(HString(
                            hc,
                            "key-" + std::to_string(rng.below(keys))));
                        ++ops[t];
                    }
                    map.set(HString(hc,
                                    "key-" +
                                        std::to_string(rng.below(keys))),
                            HString(hc, "update-" + std::to_string(t) +
                                            "-" + std::to_string(r)));
                    ++ops[t];
                }
            });
        }
        for (auto &th : ts)
            th.join();
        const auto t1 = std::chrono::steady_clock::now();

        cell.wallMs =
            std::chrono::duration<double, std::milli>(t1 - t0).count();
        for (auto o : ops)
            cell.ops += o;
        cell.metrics = phase.delta();
        cell.rowActs = cell.metrics.counter("row_activations");
        cell.maxBankActs = maxBankDelta(hc.mem, bank0);
    }
    return cell;
}

/**
 * SpMV tiles: each thread owns a sparse tile segment and sweeps it —
 * snapshot, materialize, dot-product against a dense vector, release.
 * Read-only after setup: exercises the lock-free read path.
 */
Cell
runSpmvTiles(bool global_lock, int threads, int tile_words, int passes)
{
    Hicamp hc(makeConfig(global_lock));
    Cell cell;
    cell.workload = "spmv_tiles";
    cell.mode = global_lock ? "global" : "sharded";
    cell.threads = threads;
    {
        std::vector<std::unique_ptr<HArray<std::uint64_t>>> tiles;
        for (int t = 0; t < threads; ++t) {
            std::vector<std::uint64_t> tile(tile_words, 0);
            // ~1/7 nonzero, values unique per (thread, index) so tiles
            // dedup within but not across threads.
            for (int i = 0; i < tile_words; i += 7)
                tile[i] = 1 + t * tile_words + i;
            tiles.push_back(std::make_unique<HArray<std::uint64_t>>(
                hc, tile, kSegMergeUpdate));
        }
        // Cold caches, cumulative counters: the sweep's traffic is
        // the registry delta below.
        hc.mem.coldCaches();
        const auto bank0 = bankBaseline(hc.mem);
        bench::Phase phase(hc.mem.metrics());

        std::vector<std::uint64_t> ops(threads, 0);
        std::vector<std::uint64_t> sums(threads, 0);
        const auto t0 = std::chrono::steady_clock::now();
        std::vector<std::thread> ts;
        for (int t = 0; t < threads; ++t) {
            ts.emplace_back([&, t] {
                SegReader reader(hc.mem);
                std::vector<Word> w;
                std::vector<WordMeta> m;
                for (int p = 0; p < passes; ++p) {
                    SegDesc snap = hc.vsm.snapshot(tiles[t]->vsid());
                    w.clear();
                    m.clear();
                    reader.materialize(snap.root, snap.height, w, m);
                    std::uint64_t dot = 0;
                    for (int i = 0; i < tile_words; ++i)
                        dot += w[i] * ((i & 7) + 1); // dense vector
                    sums[t] += dot;
                    ops[t] += tile_words;
                    hc.vsm.releaseSnapshot(snap);
                }
            });
        }
        for (auto &th : ts)
            th.join();
        const auto t1 = std::chrono::steady_clock::now();

        cell.wallMs =
            std::chrono::duration<double, std::milli>(t1 - t0).count();
        for (auto o : ops)
            cell.ops += o;
        cell.metrics = phase.delta();
        cell.rowActs = cell.metrics.counter("row_activations");
        cell.maxBankActs = maxBankDelta(hc.mem, bank0);
    }
    return cell;
}

double
speedupAt(const std::vector<Cell> &cells, const std::string &workload,
          int threads, bool model)
{
    double global = 0.0, sharded = 0.0;
    for (const auto &c : cells) {
        if (c.workload != workload || c.threads != threads)
            continue;
        double v = model ? c.modelMops() : c.wallMops();
        if (c.mode == "global")
            global = v;
        else
            sharded = v;
    }
    return global > 0.0 ? sharded / global : 0.0;
}

void
writeJson(const std::vector<Cell> &cells, const std::string &path,
          bool smoke)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return;
    }
    std::fprintf(f, "{\n  \"bench\": \"mt_scaling\",\n");
    std::fprintf(f, "  \"smoke\": %s,\n", smoke ? "true" : "false");
    std::fprintf(f, "  \"t_rc_ns\": %.0f,\n", kTrcNs);
    std::fprintf(f, "  \"results\": [\n");
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const Cell &c = cells[i];
        std::fprintf(
            f,
            "    {\"workload\": \"%s\", \"mode\": \"%s\", "
            "\"threads\": %d, \"ops\": %llu, \"wall_ms\": %.3f, "
            "\"wall_mops\": %.4f, \"row_acts\": %llu, "
            "\"max_bank_acts\": %llu, \"model_ms\": %.3f, "
            "\"model_mops\": %.4f, \"metrics\": %s}%s\n",
            c.workload.c_str(), c.mode.c_str(), c.threads,
            static_cast<unsigned long long>(c.ops), c.wallMs,
            c.wallMops(), static_cast<unsigned long long>(c.rowActs),
            static_cast<unsigned long long>(c.maxBankActs), c.modelMs(),
            c.modelMops(), bench::metricsJson(c.metrics).c_str(),
            i + 1 < cells.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f, "  \"speedup_model_mixed_4t\": %.3f,\n",
                 speedupAt(cells, "mixed", smoke ? 2 : 4, true));
    std::fprintf(f, "  \"speedup_model_spmv_4t\": %.3f,\n",
                 speedupAt(cells, "spmv_tiles", smoke ? 2 : 4, true));
    std::fprintf(f, "  \"speedup_wall_mixed_4t\": %.3f\n",
                 speedupAt(cells, "mixed", smoke ? 2 : 4, false));
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("\nwrote %s\n", path.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    std::string json_path = "BENCH_mt_scaling.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
        else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
            json_path = argv[++i];
    }

    const std::vector<int> thread_counts =
        smoke ? std::vector<int>{1, 2} : std::vector<int>{1, 2, 4, 8};
    const int keys = smoke ? 400 : 8000;
    const int rounds = smoke ? 30 : 400;
    const int tile_words = smoke ? 512 : 4096;
    const int passes = smoke ? 4 : 40;

    std::printf("== Multi-threaded scaling: sharded memory vs "
                "global-lock baseline ==\n\n");

    std::vector<Cell> cells;
    Table t({"workload", "mode", "threads", "ops", "wall ms",
             "wall Mops", "row acts", "hot bank", "model ms",
             "model Mops"});
    for (const char *wl : {"mixed", "spmv_tiles"}) {
        for (int n : thread_counts) {
            for (bool global : {true, false}) {
                Cell c = std::strcmp(wl, "mixed") == 0
                             ? runMixed(global, n, keys, rounds)
                             : runSpmvTiles(global, n, tile_words,
                                            passes);
                t.addRow({c.workload, c.mode, std::to_string(c.threads),
                          std::to_string(c.ops),
                          strfmt("%.2f", c.wallMs),
                          strfmt("%.4f", c.wallMops()),
                          std::to_string(c.rowActs),
                          std::to_string(c.maxBankActs),
                          strfmt("%.3f", c.modelMs()),
                          strfmt("%.4f", c.modelMops())});
                cells.push_back(std::move(c));
            }
        }
    }
    t.print();

    const int headline = smoke ? 2 : 4;
    std::printf("\nmodeled bank-parallel speedup at %d threads: "
                "mixed %.2fx, spmv_tiles %.2fx (target: >= 3x mixed "
                "at 4 threads)\n",
                headline, speedupAt(cells, "mixed", headline, true),
                speedupAt(cells, "spmv_tiles", headline, true));
    writeJson(cells, json_path, smoke);
    bench::finishBench();
    return 0;
}
