/**
 * @file
 * Reproduces the paper's §5.1.1 concurrent-performance analysis:
 *
 *  1. the closed-form model — map-update latency 2*log2(N)*t_DRAM,
 *     conflict probability under an 8-processor 200K-cmd/s 10:1
 *     get:set workload, and the geometric-series merge-update cost of
 *     ~4*t_DRAM;
 *  2. a Monte-Carlo simulation of the same system validating the
 *     conflict-probability estimate;
 *  3. a measurement on the real simulated machine: DAG path length
 *     (lookups per committed map update) for a populated map, checked
 *     against the model's log2(N), and mCAS merge behaviour under
 *     actual concurrent committers.
 */

#include <atomic>
#include <cstdio>
#include <thread>

#include "bench_obs.hh"
#include "common/rng.hh"
#include "common/table.hh"
#include "lang/harray.hh"
#include "lang/hmap.hh"

using namespace hicamp;

namespace {

void
analyticalModel()
{
    std::printf("-- analytical model (paper numbers) --\n");
    const double dram_ns = 50.0;
    const double set_period_us = 50.0; // one set per 50us system-wide
    Table t({"N (KVPs)", "update latency", "conflict prob",
             "merge-update latency"});
    for (double n : {1e6, 1e9}) {
        double levels = std::log2(n);
        double update_us = 2.0 * levels * dram_ns / 1000.0;
        double p_conflict = update_us / set_period_us;
        double merge_ns = 4.0 * dram_ns; // sum of geometric series
        t.addRow({strfmt("%.0e", n), strfmt("%.2f us", update_us),
                  strfmt("%.3f", p_conflict),
                  strfmt("%.0f ns", merge_ns)});
    }
    t.print();
    std::printf("paper: 2 us update, ~0.04 conflict at N=1e6 "
                "(0.06 at 1e9), merge ~200 ns\n\n");
}

void
monteCarlo()
{
    std::printf("-- Monte-Carlo validation (8 processors, 200K cmd/s, "
                "10:1 get:set) --\n");
    Rng rng(99);
    const double update_us = 2.0;
    const double mean_gap_us = 50.0; // exponential inter-set gap
    const int sets = 2000000;
    double clock_us = 0.0;
    double busy_until = -1.0;
    std::uint64_t conflicts = 0;
    for (int i = 0; i < sets; ++i) {
        clock_us += -mean_gap_us * std::log(1.0 - rng.uniform());
        // A commit conflicts if another update's window overlaps.
        if (clock_us < busy_until)
            ++conflicts;
        busy_until = clock_us + update_us;
    }
    std::printf("simulated conflict probability: %.4f (model: %.3f)\n\n",
                static_cast<double>(conflicts) / sets,
                update_us / mean_gap_us);
}

void
measuredPathLength()
{
    std::printf("-- measured on the simulated machine --\n");
    MemoryConfig cfg;
    cfg.numBuckets = 1 << 17;
    Hicamp hc(cfg);
    HMap map(hc);
    const int n = 30000;
    for (int i = 0; i < n; ++i) {
        map.set(HString(hc, "key-" + std::to_string(i)),
                HString(hc, "v" + std::to_string(i)));
    }
    // Measure lookup operations per map update (the DAG path that
    // must be regenerated root-to-leaf) as a registry delta — the
    // populate phase above stays in the cumulative counters.
    hc.mem.flushTraffic();
    bench::Phase phase(hc.mem.metrics());
    const int updates = 200;
    for (int i = 0; i < updates; ++i) {
        map.set(HString(hc, "key-" + std::to_string(i * 97 % n)),
                HString(hc, "w" + std::to_string(i)));
    }
    double per_update =
        static_cast<double>(phase.delta().counter("ops.lookups")) /
        updates;
    // Each update also builds its key/value/pair lines (~5 lookups).
    std::printf("map with %d entries: %.1f lookups per update "
                "(model: ~log2(N)=%.1f path nodes + ~6 entry lines)\n",
                n, per_update, std::log2(static_cast<double>(n)));

    // Conflicting committers on real threads (earlier versions
    // interleaved two registers on one thread under the global lock;
    // the sharded memory system races them genuinely): every
    // overlapping commit to the shared slot is resolved by
    // merge-update instead of an application-level retry, and no
    // increment may be lost.
    HArray<std::uint64_t> counters(hc, std::vector<std::uint64_t>(8, 0),
                                   kSegMergeUpdate);
    const int kCommitters = 4;
    const int kPerThread = 50;
    std::atomic<int> loaded{0};
    std::vector<std::thread> committers;
    for (int t = 0; t < kCommitters; ++t) {
        committers.emplace_back([&] {
            IteratorRegister it(hc.mem, hc.vsm);
            for (int r = 0; r < kPerThread; ++r) {
                it.load(counters.vsid(), 1);
                it.write(it.read() + 1);
                // Rendezvous: every committer holds a same-generation
                // snapshot before anyone commits, so all but the
                // first commit of each round is stale and must be
                // resolved by merge-update.
                loaded.fetch_add(1);
                while (loaded.load(std::memory_order_relaxed) <
                       (r + 1) * kCommitters)
                    std::this_thread::yield();
                for (;;) {
                    if (it.tryCommit())
                        break;
                    it.load(counters.vsid(), 1);
                    it.write(it.read() + 1);
                }
            }
        });
    }
    for (auto &t : committers)
        t.join();
    HICAMP_ASSERT(counters.get(1) ==
                      static_cast<std::uint64_t>(kCommitters *
                                                 kPerThread),
                  "lost counter updates");
    std::printf("%d threads x %d conflicting counter commits -> value "
                "%llu (no lost updates), %llu conflicts resolved by "
                "merge-update, %llu true conflicts\n",
                kCommitters, kPerThread,
                static_cast<unsigned long long>(counters.get(1)),
                static_cast<unsigned long long>(hc.vsm.mergeCommits()),
                static_cast<unsigned long long>(hc.vsm.mergeFailures()));
    // While the machine is still alive: dump the full registry (and
    // the flight recorder, when compiled in) if the env asks for it.
    bench::finishBench();
}

} // namespace

int
main()
{
    std::printf("== Section 5.1.1: concurrent performance ==\n\n");
    analyticalModel();
    monteCarlo();
    measuredPathLength();
    return 0;
}
