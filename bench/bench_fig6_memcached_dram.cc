/**
 * @file
 * Reproduces paper Figure 6: DRAM accesses for memcached processing a
 * request stream, conventional vs HICAMP, at 16/32/64-byte lines, with
 * the HICAMP traffic split into Reads / Writes / Lookups /
 * Deallocation / RC (the figure's stack).
 *
 * Paper setup: 100 K preloaded items from Facebook page dumps, 15 K
 * requests with power-law popularity and sizes. Our corpus is the
 * synthetic web corpus (see DESIGN.md substitutions), scaled to
 * HICAMP_MC_ITEMS items (default 20000) to fit a laptop-class run;
 * the request count matches the paper's 15000.
 */

#include <bit>
#include <cstdio>
#include <cstdlib>

#include "apps/memcached/conv_memcached.hh"
#include "apps/memcached/hicamp_memcached.hh"
#include "bench_obs.hh"
#include "common/table.hh"
#include "workloads/memcached_workload.hh"

using namespace hicamp;

namespace {

std::uint64_t
envOr(const char *name, std::uint64_t dflt)
{
    const char *v = std::getenv(name);
    return v ? std::strtoull(v, nullptr, 10) : dflt;
}

struct Row {
    std::uint64_t reads = 0, writes = 0, lookups = 0, dealloc = 0,
                  rc = 0;
    /// registry delta agreed with the raw DramStats reads
    bool selfcheckOk = true;
    std::uint64_t
    total() const
    {
        return reads + writes + lookups + dealloc + rc;
    }
};

Row
runConventional(const std::vector<WebItem> &items,
                const std::vector<McRequest> &reqs, unsigned ls)
{
    ConvMemcached mc(ls, items.size());
    for (std::size_t i = 0; i < items.size(); ++i)
        mc.set(items[i].key, items[i].payload.size());
    std::uint64_t base_r = mc.hierarchy().dramReads();
    std::uint64_t base_w = mc.hierarchy().dramWrites();
    for (const auto &r : reqs) {
        const std::string &key = items[r.itemIndex].key;
        switch (r.op) {
          case McRequest::Op::Get:
            mc.get(key);
            break;
          case McRequest::Op::Set:
            mc.set(key, r.newValue.size());
            break;
          case McRequest::Op::Delete:
            mc.del(key);
            break;
        }
    }
    Row row;
    row.reads = mc.hierarchy().dramReads() - base_r;
    row.writes = mc.hierarchy().dramWrites() - base_w;
    return row;
}

Row
runHicamp(const std::vector<WebItem> &items,
          const std::vector<McRequest> &reqs, unsigned ls,
          obs::MetricsSnapshot *delta_out)
{
    MemoryConfig cfg;
    cfg.lineBytes = ls;
    // Size the store for the corpus (12 data lines per bucket).
    std::uint64_t need =
        WebCorpus::totalBytes(items) * 3 / ls / 12 + (1 << 14);
    cfg.numBuckets = std::bit_ceil(need);
    Hicamp hc(cfg);
    HicampMemcached mc(hc);
    for (const auto &it : items)
        mc.set(it.key, it.payload);
    // Warmup writebacks complete uncounted; the counters are NOT
    // reset — the measured phase is the registry delta below.
    hc.mem.flushTraffic();
    const DramStats &d = hc.mem.dram();
    const std::uint64_t base[] = {d.reads(), d.writes(), d.lookups(),
                                  d.deallocs(), d.refcounts()};
    bench::Phase phase(hc.mem.metrics(), ls);
    for (const auto &r : reqs) {
        const std::string &key = items[r.itemIndex].key;
        switch (r.op) {
          case McRequest::Op::Get:
            mc.get(key);
            break;
          case McRequest::Op::Set:
            mc.set(key, r.newValue);
            break;
          case McRequest::Op::Delete:
            mc.del(key);
            break;
        }
    }
    const obs::MetricsSnapshot delta = phase.delta();
    Row row{d.reads() - base[0], d.writes() - base[1],
            d.lookups() - base[2], d.deallocs() - base[3],
            d.refcounts() - base[4]};
    // Two independent paths to the same counters — the raw DramStats
    // reads above and the registry's per-category delta — must agree
    // exactly, or the metrics plumbing is broken.
    row.selfcheckOk = delta.counter("dram.read") == row.reads &&
                      delta.counter("dram.write") == row.writes &&
                      delta.counter("dram.lookup") == row.lookups &&
                      delta.counter("dram.dealloc") == row.dealloc &&
                      delta.counter("dram.refcount") == row.rc;
    if (delta_out) {
        *delta_out = delta;
        delta_out->registry = strfmt("fig6.measured.ls%u", ls);
    }
    return row;
}

} // namespace

int
main()
{
    WebCorpus::Params cp;
    cp.kind = WebCorpus::Kind::Pages;
    cp.numItems = envOr("HICAMP_MC_ITEMS", 30000);
    cp.minBytes = 256;
    cp.maxBytes = 16384;
    cp.sizeAlpha = 0.9;
    cp.seed = 7;
    auto items = WebCorpus::generate(cp);

    McWorkloadParams wp;
    wp.numRequests = envOr("HICAMP_MC_REQUESTS", 15000);
    auto reqs = generateMcRequests(items, wp);

    std::printf("== Figure 6: memcached DRAM accesses "
                "(%llu items preloaded, %llu requests) ==\n",
                static_cast<unsigned long long>(items.size()),
                static_cast<unsigned long long>(reqs.size()));
    std::printf("corpus bytes: %.1f MB\n\n",
                static_cast<double>(WebCorpus::totalBytes(items)) / 1e6);

    Table t({"line size", "impl", "Reads", "Writes", "Lookups",
             "Dealloc", "RC", "Total", "HICAMP/Conv"});
    bool selfcheck_ok = true;
    obs::MetricsSnapshot last_delta;
    for (unsigned ls : {16u, 32u, 64u}) {
        Row conv = runConventional(items, reqs, ls);
        Row hic = runHicamp(items, reqs, ls, &last_delta);
        selfcheck_ok = selfcheck_ok && hic.selfcheckOk;
        auto fmt = [](std::uint64_t v) {
            return strfmt("%.3fM", static_cast<double>(v) / 1e6);
        };
        t.addRow({strfmt("%u B", ls), "Conv", fmt(conv.reads),
                  fmt(conv.writes), "-", "-", "-", fmt(conv.total()),
                  ""});
        t.addRow({strfmt("%u B", ls), "HICAMP", fmt(hic.reads),
                  fmt(hic.writes), fmt(hic.lookups), fmt(hic.dealloc),
                  fmt(hic.rc), fmt(hic.total()),
                  strfmt("%.2f", static_cast<double>(hic.total()) /
                                     static_cast<double>(conv.total()))});
    }
    t.print();
    std::printf("\npaper shape: HICAMP total comparable to or below "
                "conventional; both fall with line size.\n");
    std::printf("SELFCHECK metrics-delta-vs-dram-counters: %s\n",
                selfcheck_ok ? "PASS" : "FAIL");
    bench::finishBench(last_delta);
    return selfcheck_ok ? 0 : 1;
}
