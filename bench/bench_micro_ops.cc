/**
 * @file
 * Micro-benchmarks of the core HICAMP operations (google-benchmark):
 * host-time throughput of the simulator's lookup-by-content, PLID
 * reads, canonical segment construction, iterator traversal and map
 * operations. These gauge simulator engineering quality rather than
 * modelled hardware performance; the modelled costs are the DRAM
 * counters exercised by the figure/table benches.
 */

#include <benchmark/benchmark.h>

#include "bench_obs.hh"
#include "lang/hmap.hh"
#include "seg/iterator.hh"

using namespace hicamp;

namespace {

MemoryConfig
cfg()
{
    MemoryConfig c;
    c.numBuckets = 1 << 16;
    return c;
}

void
BM_LookupByContentMiss(benchmark::State &state)
{
    Memory mem(cfg());
    Word v = 1;
    for (auto _ : state) {
        Line l = mem.makeLine();
        l.set(0, v++);
        l.set(1, v * 13);
        benchmark::DoNotOptimize(mem.lookup(l));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LookupByContentMiss);

void
BM_LookupByContentHit(benchmark::State &state)
{
    Memory mem(cfg());
    Line l = mem.makeLine();
    l.set(0, 0x1234);
    Plid p = mem.lookup(l);
    (void)p;
    for (auto _ : state)
        benchmark::DoNotOptimize(mem.lookup(l));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LookupByContentHit);

void
BM_ReadLineCached(benchmark::State &state)
{
    Memory mem(cfg());
    Line l = mem.makeLine();
    l.set(0, 77);
    Plid p = mem.lookup(l);
    for (auto _ : state)
        benchmark::DoNotOptimize(mem.readLine(p));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ReadLineCached);

void
BM_BuildSegment4K(benchmark::State &state)
{
    Memory mem(cfg());
    SegBuilder b(mem);
    std::vector<char> data(4096);
    std::uint64_t salt = 0;
    for (auto _ : state) {
        // Vary content so dedup does not trivialize the build.
        ++salt;
        std::memcpy(data.data(), &salt, sizeof(salt));
        SegDesc d = b.buildBytes(data.data(), data.size());
        b.releaseSeg(d);
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            4096);
}
BENCHMARK(BM_BuildSegment4K);

void
BM_IteratorSequentialRead(benchmark::State &state)
{
    Memory mem(cfg());
    SegmentMap vsm(mem);
    std::vector<Word> w(4096);
    for (std::size_t i = 0; i < w.size(); ++i)
        w[i] = i + 1;
    std::vector<WordMeta> m(w.size(), WordMeta::raw());
    SegBuilder b(mem);
    Vsid v = vsm.create(b.buildWords(w.data(), m.data(), w.size()));
    IteratorRegister it(mem, vsm);
    it.load(v);
    std::uint64_t pos = 0;
    for (auto _ : state) {
        it.seek(pos);
        benchmark::DoNotOptimize(it.read());
        pos = (pos + 1) % w.size();
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IteratorSequentialRead);

void
BM_CommitSingleWordUpdate(benchmark::State &state)
{
    Memory mem(cfg());
    SegmentMap vsm(mem);
    std::vector<Word> w(4096, 7);
    std::vector<WordMeta> m(w.size(), WordMeta::raw());
    SegBuilder b(mem);
    Vsid v = vsm.create(b.buildWords(w.data(), m.data(), w.size()));
    IteratorRegister it(mem, vsm);
    Word x = 0;
    for (auto _ : state) {
        it.load(v, x % w.size());
        it.write(++x);
        benchmark::DoNotOptimize(it.tryCommit());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CommitSingleWordUpdate);

void
BM_MapSet(benchmark::State &state)
{
    Hicamp hc(cfg());
    HMap map(hc);
    std::uint64_t i = 0;
    for (auto _ : state) {
        map.set(HString(hc, "key-" + std::to_string(i % 4096)),
                HString(hc, "value-" + std::to_string(i)));
        ++i;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MapSet);

void
BM_MapGet(benchmark::State &state)
{
    Hicamp hc(cfg());
    HMap map(hc);
    for (int i = 0; i < 4096; ++i) {
        map.set(HString(hc, "key-" + std::to_string(i)),
                HString(hc, "value-" + std::to_string(i)));
    }
    IteratorRegister reg(hc.mem, hc.vsm);
    std::uint64_t i = 0;
    for (auto _ : state) {
        HString k(hc, "key-" + std::to_string(i++ % 4096));
        benchmark::DoNotOptimize(map.getWith(reg, k));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MapGet);

void
BM_StringEquality(benchmark::State &state)
{
    Hicamp hc(cfg());
    std::string big(1 << 16, 'e');
    HString a(hc, big), b(hc, big);
    for (auto _ : state)
        benchmark::DoNotOptimize(a == b); // O(1) regardless of size
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StringEquality);

} // namespace

// Expanded BENCHMARK_MAIN(): the macro leaves no room for an
// epilogue, and the metrics/trace dump has to run before exit.
int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    hicamp::bench::finishBench();
    benchmark::Shutdown();
    return 0;
}
