/**
 * @file
 * Reproduces paper Figure 8: per-matrix memory footprint of the best
 * HICAMP sparse format relative to the conventional representation,
 * across the whole 100-matrix suite. The paper's plot shows most
 * matrices below 100% (down to fractions of a percent for the
 * extreme-self-similarity outlier) with a few slightly above due to
 * DAG overhead.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "apps/spmv/hicamp_matrix.hh"
#include "bench_obs.hh"
#include "common/table.hh"
#include "workloads/matrixgen.hh"

using namespace hicamp;

int
main()
{
    const char *sc = std::getenv("HICAMP_SUITE_SCALE");
    double scale = sc ? std::atof(sc) : 1.0;
    auto suite = MatrixGen::standardSuite(scale);

    struct Item {
        std::string name;
        std::string cat;
        std::uint64_t nnz;
        std::uint64_t conv;
        std::uint64_t qts;
        std::uint64_t nzd;
        double pct;
    };
    std::vector<Item> items;
    for (const auto &m : suite) {
        auto fp = measureFootprint(m);
        items.push_back({m.name(), m.category(), m.nnz(), m.convBytes(),
                         fp.qtsBytes, fp.nzdBytes,
                         100.0 * static_cast<double>(fp.bestBytes()) /
                             static_cast<double>(m.convBytes())});
    }
    std::sort(items.begin(), items.end(),
              [](const Item &a, const Item &b) { return a.pct < b.pct; });

    std::printf("== Figure 8: sparse matrix memory footprint, "
                "HICAMP %% of conventional (sorted; scale %.1f) ==\n\n",
                scale);
    Table t({"matrix", "category", "nnz", "conv KB", "QTS KB", "NZD KB",
             "best %"});
    for (const auto &it : items) {
        t.addRow({it.name, it.cat,
                  strfmt("%llu", static_cast<unsigned long long>(it.nnz)),
                  strfmt("%llu",
                         static_cast<unsigned long long>(it.conv / 1024)),
                  strfmt("%llu",
                         static_cast<unsigned long long>(it.qts / 1024)),
                  strfmt("%llu",
                         static_cast<unsigned long long>(it.nzd / 1024)),
                  strfmt("%.1f%%", it.pct)});
    }
    t.print();

    std::uint64_t above = 0;
    for (const auto &it : items)
        above += it.pct > 100.0 ? 1 : 0;
    std::printf("\nmatrices above 100%% (DAG overhead dominates): "
                "%llu of %zu; most compact: %.3f%%\n",
                static_cast<unsigned long long>(above), items.size(),
                items.front().pct);
    std::printf("paper shape: broad spread below 100%%, a few "
                "negligible increases, one extreme (~4000x) point.\n");
    bench::finishBench();
    return 0;
}
