/**
 * @file
 * Closed-loop load generator for the serving front-end (DESIGN.md
 * §14): drives a live loopback McServer through real sockets and the
 * real memcached text protocol, in four phases per worker count —
 *
 *  - "preload": pipelined SETs installing a WebCorpus working set
 *    (large enough that steady-state traffic reaches the line store);
 *  - "steady": the paper §5.1.2 request mix — Zipf-popular keys,
 *    90:10 get:set with deletes — issued closed-loop (one request in
 *    flight per client, latency measured per request);
 *  - "storm": a hot-key storm (zipf s = 1.4, get-heavy) hammering the
 *    head of the popularity curve, the worst case for the one-batch-
 *    per-connection ordering rule;
 *  - "churn": short-lived connections (connect, set, get, quit) — the
 *    accept/close path and the PLID-leak surface.
 *
 * Each phase reports ops/s and client-side p50/p99/p999 latency (from
 * a Log2Histogram of per-request nanoseconds) plus the phase's server
 * registry delta; BENCH_server.json carries the sweep at 1/4/16
 * workers.
 *
 * Wall-clock numbers measure the host; on single-core CI every worker
 * count timeshares one CPU and wall ops/s cannot scale. The modeled
 * throughput is the architectural claim (same model as
 * bench_mt_scaling): every steady-phase DRAM command targets its home
 * bucket's bank, banks overlap while commands within a bank serialize
 * at t_RC, and workers spread the command stream —
 *
 *   t_model = max(row_acts / workers, hottest_bank) * t_RC
 *
 * The SELFCHECK verdict requires modeled 16-worker throughput >= 3x
 * 1-worker on the steady phase. The network thread is off this
 * critical path by design: it never touches the heap, and its byte
 * shuffling overlaps the workers' DRAM time.
 *
 * Graceful degradation is part of the bench contract: under fault
 * injection (--fault-alloc-p or HICAMP_FAULT_ALLOC_P) allocation
 * failures surface as per-request "SERVER_ERROR out of memory" lines,
 * which the clients count and tolerate; the run still ends with a
 * clean heap audit and exit 0.
 *
 * Usage: bench_server [--smoke] [--json PATH] [--check-static]
 *                     [--clients N] [--fault-* ...]
 *
 * --check-static is the fast CI preflight: a canned protocol exchange
 * with exact-byte verification plus an exit audit, no timed phases
 * (fault injection is forced off so the expected bytes are exact).
 */

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "analysis/auditor.hh"
#include "bench_obs.hh"
#include "common/cli.hh"
#include "common/table.hh"
#include "obs/histogram.hh"
#include "server/server.hh"
#include "server/store.hh"
#include "workloads/memcached_workload.hh"

using namespace hicamp;

namespace {

constexpr double kTrcNs = 50.0; // DRAM row-cycle time (§5.1.1 model)

/** Blocking buffered memcached client for the load threads. */
class LoadClient
{
  public:
    explicit LoadClient(std::uint16_t port)
    {
        // The 16-worker sweep on small CI boxes can transiently
        // overflow the accept backlog; a few retries ride it out.
        for (int attempt = 0; attempt < 5 && fd_ < 0; ++attempt) {
            fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
            if (fd_ < 0)
                break;
            timeval tv{10, 0};
            ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
            sockaddr_in addr{};
            addr.sin_family = AF_INET;
            addr.sin_port = htons(port);
            ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
            if (::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                          sizeof addr) == 0)
                break;
            ::close(fd_);
            fd_ = -1;
            std::this_thread::sleep_for(std::chrono::milliseconds(10));
        }
    }

    ~LoadClient()
    {
        if (fd_ >= 0)
            ::close(fd_);
    }

    bool ok() const { return fd_ >= 0; }

    bool
    send(std::string_view bytes)
    {
        std::size_t off = 0;
        while (off < bytes.size()) {
            const ssize_t n =
                ::write(fd_, bytes.data() + off, bytes.size() - off);
            if (n <= 0)
                return false;
            off += static_cast<std::size_t>(n);
        }
        return true;
    }

    /** One CRLF-terminated line, without the terminator. */
    bool
    readLine(std::string &line)
    {
        for (;;) {
            const std::size_t nl = buf_.find("\r\n", scan_);
            if (nl != std::string::npos) {
                line.assign(buf_, 0, nl);
                buf_.erase(0, nl + 2);
                scan_ = 0;
                return true;
            }
            scan_ = buf_.size() > 1 ? buf_.size() - 1 : 0;
            if (!fill())
                return false;
        }
    }

    /** Exactly @p n bytes (a data block + its CRLF). */
    bool
    readN(std::size_t n, std::string &out)
    {
        while (buf_.size() < n)
            if (!fill())
                return false;
        out.assign(buf_, 0, n);
        buf_.erase(0, n);
        scan_ = 0;
        return true;
    }

    /**
     * Consume one full response for @p op; @p oom counts per-request
     * SERVER_ERROR degradation (tolerated, never a client failure).
     */
    bool
    readResponse(McRequest::Op op, std::uint64_t &oom)
    {
        std::string line;
        if (op != McRequest::Op::Get) {
            if (!readLine(line))
                return false;
            if (line.rfind("SERVER_ERROR", 0) == 0)
                ++oom;
            return true;
        }
        for (;;) {
            if (!readLine(line))
                return false;
            if (line.rfind("VALUE ", 0) == 0) {
                const std::size_t sp = line.rfind(' ');
                const std::size_t len = static_cast<std::size_t>(
                    std::strtoull(line.c_str() + sp + 1, nullptr, 10));
                std::string block;
                if (!readN(len + 2, block))
                    return false;
                continue;
            }
            if (line == "END")
                return true;
            if (line.rfind("SERVER_ERROR", 0) == 0)
                ++oom;
            return true; // ERROR / CLIENT_ERROR also end the response
        }
    }

  private:
    bool
    fill()
    {
        char tmp[8192];
        const ssize_t n = ::read(fd_, tmp, sizeof tmp);
        if (n <= 0)
            return false;
        buf_.append(tmp, static_cast<std::size_t>(n));
        return true;
    }

    int fd_ = -1;
    std::string buf_;
    std::size_t scan_ = 0; ///< resume offset for the CRLF search
};

std::string
encode(const McRequest &req, const std::vector<WebItem> &items)
{
    const std::string &key = items[req.itemIndex].key;
    switch (req.op) {
      case McRequest::Op::Get:
        return "get " + key + "\r\n";
      case McRequest::Op::Set:
        return "set " + key + " 0 0 " +
               std::to_string(req.newValue.size()) + "\r\n" +
               req.newValue + "\r\n";
      case McRequest::Op::Delete:
        return "delete " + key + "\r\n";
    }
    return {};
}

/** One phase's client-side results. */
struct PhaseStats {
    std::string name;
    std::uint64_t ops = 0;
    std::uint64_t oomResponses = 0;
    std::uint64_t clientFailures = 0;
    double wallMs = 0.0;
    double p50Us = 0.0, p99Us = 0.0, p999Us = 0.0;
    obs::MetricsSnapshot serverDelta;
    std::uint64_t rowActs = 0; ///< heap delta during the phase

    double
    opsPerSec() const
    {
        return wallMs > 0.0 ? ops * 1e3 / wallMs : 0.0;
    }
};

/** Log2-bucket percentile: midpoint of the bucket holding quantile
 *  @p q (factor-two resolution, plenty for a trajectory metric). */
double
percentileUs(const obs::Log2Histogram &h, double q)
{
    const auto buckets = h.bucketSnapshot();
    std::uint64_t total = 0;
    for (auto b : buckets)
        total += b;
    if (total == 0)
        return 0.0;
    const auto need = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(total)));
    std::uint64_t cum = 0;
    for (unsigned b = 0; b < buckets.size(); ++b) {
        cum += buckets[b];
        if (cum >= need && buckets[b] > 0) {
            const double lo =
                static_cast<double>(obs::Log2Histogram::bucketLo(b));
            const double hi =
                static_cast<double>(obs::Log2Histogram::bucketHi(b));
            return (lo + hi) / 2.0 / 1e3; // ns -> us
        }
    }
    return 0.0;
}

/** A timed multi-client phase over @p body(thread_index, client,
 *  histogram, oom_counter) -> ops done; wraps registry deltas. */
template <typename Body>
PhaseStats
runPhase(const std::string &name, server::McServer &srv, Hicamp &hc,
         int clients, Body body)
{
    PhaseStats ps;
    ps.name = name;
    obs::Log2Histogram lat;
    bench::Phase serverPhase(srv.metrics());
    bench::Phase heapPhase(hc.mem.metrics());
    std::vector<std::uint64_t> ops(clients, 0);
    std::vector<std::uint64_t> oom(clients, 0);
    std::vector<std::uint64_t> fails(clients, 0);
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::thread> ts;
    ts.reserve(clients);
    for (int c = 0; c < clients; ++c) {
        ts.emplace_back([&, c] {
            body(c, lat, ops[c], oom[c], fails[c]);
        });
    }
    for (auto &th : ts)
        th.join();
    const auto t1 = std::chrono::steady_clock::now();
    ps.wallMs =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    for (int c = 0; c < clients; ++c) {
        ps.ops += ops[c];
        ps.oomResponses += oom[c];
        ps.clientFailures += fails[c];
    }
    ps.p50Us = percentileUs(lat, 0.50);
    ps.p99Us = percentileUs(lat, 0.99);
    ps.p999Us = percentileUs(lat, 0.999);
    ps.serverDelta = serverPhase.delta();
    ps.rowActs = heapPhase.delta().counter("row_activations");
    return ps;
}

/** One closed-loop request: send, time to full response. */
bool
issueTimed(LoadClient &cli, const std::string &wire, McRequest::Op op,
           obs::Log2Histogram &lat, std::uint64_t &oom)
{
    const auto t0 = std::chrono::steady_clock::now();
    if (!cli.send(wire) || !cli.readResponse(op, oom))
        return false;
    const auto t1 = std::chrono::steady_clock::now();
    lat.record(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
            .count()));
    return true;
}

/** One full run at a worker count. */
struct WorkerRun {
    unsigned workers = 0;
    std::vector<PhaseStats> phases;
    std::uint64_t steadyOps = 0;
    std::uint64_t steadyRowActs = 0;
    std::uint64_t steadyMaxBank = 0;
    bool auditClean = false;

    const PhaseStats *
    phase(const std::string &name) const
    {
        for (const auto &p : phases)
            if (p.name == name)
                return &p;
        return nullptr;
    }

    /// §3.1 bank-parallel model over the steady phase.
    double
    modelMs() const
    {
        const double serial = static_cast<double>(steadyRowActs);
        const double perBank = static_cast<double>(steadyMaxBank);
        return std::max(serial / workers, perBank) * kTrcNs / 1e6;
    }

    double
    modelOpsPerSec() const
    {
        const double ms = modelMs();
        return ms > 0.0 ? steadyOps * 1e3 / ms : 0.0;
    }
};

struct RunParams {
    std::uint64_t preloadItems;
    std::uint64_t steadyReqs;
    std::uint64_t stormReqs;
    int churnConns; ///< per client thread
    int clients;
};

MemoryConfig
benchMemConfig(const FaultConfig &faults)
{
    MemoryConfig mcfg;
    mcfg.numBuckets = 1 << 16;
    mcfg.lockStripes = 16; // §5.1.1 bank count
    // LLC well below the working set so steady-state traffic reaches
    // the store and the DRAM model has something to measure.
    mcfg.l2Bytes = 128 * 1024;
    mcfg.faults = faults;
    return mcfg;
}

WorkerRun
runAtWorkers(unsigned workers, const RunParams &rp,
             const FaultConfig &faults)
{
    Hicamp hc(benchMemConfig(faults));
    server::McStore store(hc);
    server::ServerConfig scfg;
    scfg.workers = workers;
    scfg.maxConns = 256;
    server::McServer srv(store, scfg);
    srv.start();
    const std::uint16_t port = srv.port();

    WorkerRun run;
    run.workers = workers;

    WebCorpus::Params cp;
    cp.numItems = rp.preloadItems;
    cp.minBytes = 128;
    cp.maxBytes = 2048;
    const auto items = WebCorpus::generate(cp);

    // Preload through the protocol, pipelined in windows so the large
    // working set installs quickly without abandoning closed-loop
    // accounting elsewhere.
    run.phases.push_back(runPhase(
        "preload", srv, hc, rp.clients,
        [&](int c, obs::Log2Histogram &, std::uint64_t &ops,
            std::uint64_t &oom, std::uint64_t &fails) {
            LoadClient cli(port);
            if (!cli.ok()) {
                ++fails;
                return;
            }
            constexpr std::size_t kWindow = 32;
            std::string wire;
            std::size_t inFlight = 0;
            const auto drain = [&] {
                if (!cli.send(wire))
                    return false;
                wire.clear();
                std::string line;
                for (; inFlight > 0; --inFlight) {
                    if (!cli.readLine(line))
                        return false;
                    if (line.rfind("SERVER_ERROR", 0) == 0)
                        ++oom;
                }
                return true;
            };
            for (std::size_t i = c; i < items.size();
                 i += static_cast<std::size_t>(rp.clients)) {
                wire += "set " + items[i].key + " 0 0 " +
                        std::to_string(items[i].payload.size()) +
                        "\r\n" + items[i].payload + "\r\n";
                ++inFlight;
                ++ops;
                if (inFlight >= kWindow && !drain()) {
                    ++fails;
                    return;
                }
            }
            if (inFlight > 0 && !drain())
                ++fails;
        }));

    // Steady state: the §5.1.2 mix, closed-loop, latency per request.
    McWorkloadParams wp;
    wp.numRequests = rp.steadyReqs;
    const auto steadyReqs = generateMcRequests(items, wp);
    const std::uint64_t bank0 = hc.mem.maxBankActivations();
    run.phases.push_back(runPhase(
        "steady", srv, hc, rp.clients,
        [&](int c, obs::Log2Histogram &lat, std::uint64_t &ops,
            std::uint64_t &oom, std::uint64_t &fails) {
            LoadClient cli(port);
            if (!cli.ok()) {
                ++fails;
                return;
            }
            for (std::size_t i = c; i < steadyReqs.size();
                 i += static_cast<std::size_t>(rp.clients)) {
                const auto &req = steadyReqs[i];
                if (!issueTimed(cli, encode(req, items), req.op, lat,
                                oom)) {
                    ++fails;
                    return;
                }
                ++ops;
            }
        }));
    run.steadyOps = run.phases.back().ops;
    run.steadyRowActs = run.phases.back().rowActs;
    // Bank counters only grow, so the steady-phase hottest-bank delta
    // is bounded by (and in practice tracks) this difference.
    run.steadyMaxBank = hc.mem.maxBankActivations() - bank0;

    // Hot-key storm: steep zipf, get-heavy — the head of the
    // popularity curve hammers a handful of map slots.
    McWorkloadParams sp;
    sp.seed = 1234;
    sp.numRequests = rp.stormReqs;
    sp.zipfS = 1.4;
    sp.getFraction = 0.97;
    sp.deleteFraction = 0.0;
    const auto stormReqs = generateMcRequests(items, sp);
    run.phases.push_back(runPhase(
        "storm", srv, hc, rp.clients,
        [&](int c, obs::Log2Histogram &lat, std::uint64_t &ops,
            std::uint64_t &oom, std::uint64_t &fails) {
            LoadClient cli(port);
            if (!cli.ok()) {
                ++fails;
                return;
            }
            for (std::size_t i = c; i < stormReqs.size();
                 i += static_cast<std::size_t>(rp.clients)) {
                const auto &req = stormReqs[i];
                if (!issueTimed(cli, encode(req, items), req.op, lat,
                                oom)) {
                    ++fails;
                    return;
                }
                ++ops;
            }
        }));

    // Connection churn: short-lived connections, one set + get each,
    // closed by quit. The exit audit below proves none of them leaked
    // a PLID.
    run.phases.push_back(runPhase(
        "churn", srv, hc, rp.clients,
        [&](int c, obs::Log2Histogram &lat, std::uint64_t &ops,
            std::uint64_t &oom, std::uint64_t &fails) {
            for (int i = 0; i < rp.churnConns; ++i) {
                LoadClient cli(port);
                if (!cli.ok()) {
                    ++fails;
                    return;
                }
                const std::string key =
                    "churn-c" + std::to_string(c) + "-" +
                    std::to_string(i % 7);
                const std::string val(64 + (i % 32), 'v');
                if (!issueTimed(cli,
                                "set " + key + " 0 0 " +
                                    std::to_string(val.size()) +
                                    "\r\n" + val + "\r\n",
                                McRequest::Op::Set, lat, oom) ||
                    !issueTimed(cli, "get " + key + "\r\n",
                                McRequest::Op::Get, lat, oom)) {
                    ++fails;
                    return;
                }
                cli.send("quit\r\n");
                ops += 2;
            }
        }));

    srv.stop();
    const AuditReport report = Auditor::audit(hc);
    run.auditClean = report.clean();
    if (!run.auditClean)
        std::fprintf(stderr, "workers=%u exit audit: %s\n", workers,
                     report.summary().c_str());
    return run;
}

/**
 * --check-static: canned exchange with exact-byte verification — the
 * CI preflight that proves the binary serves the protocol at all
 * before anyone pays for a timed run.
 */
int
checkStatic()
{
    FaultConfig noFaults;
    noFaults.allowEnvOverride = false; // exact bytes need no faults
    Hicamp hc(benchMemConfig(noFaults));
    server::McStore store(hc);
    server::ServerConfig scfg;
    scfg.workers = 2;
    server::McServer srv(store, scfg);
    srv.start();

    bool ok = true;
    const auto expect = [&](LoadClient &cli, std::string_view wire,
                            std::string_view wantLine) {
        std::string line;
        if (!cli.send(wire) || !cli.readLine(line) ||
            line != wantLine) {
            std::printf("SELFCHECK static exchange %.*s -> '%s' "
                        "(want '%.*s') FAIL\n",
                        static_cast<int>(wire.find('\r')), wire.data(),
                        line.c_str(), static_cast<int>(wantLine.size()),
                        wantLine.data());
            ok = false;
        }
    };
    LoadClient cli(srv.port());
    if (!cli.ok()) {
        std::printf("SELFCHECK static connect FAIL\n");
        srv.stop();
        return 1;
    }
    expect(cli, "set k 0 0 5\r\nhello\r\n", "STORED");
    expect(cli, "get k\r\n", "VALUE k 0 5");
    {
        std::string data, end;
        if (!cli.readN(7, data) || data != "hello\r\n" ||
            !cli.readLine(end) || end != "END") {
            std::printf("SELFCHECK static get body FAIL\n");
            ok = false;
        }
    }
    expect(cli, "incr missing 1\r\n", "NOT_FOUND");
    expect(cli, "set " + std::string(server::kMaxKeyBytes + 1, 'k') +
                    " 0 0 2\r\nxy\r\n",
           "CLIENT_ERROR bad command line format");
    expect(cli, "delete k\r\n", "DELETED");
    expect(cli, "bogus\r\n", "ERROR");
    cli.send("quit\r\n");

    srv.stop();
    const AuditReport report = Auditor::audit(hc);
    if (!report.clean()) {
        std::printf("SELFCHECK static audit %s FAIL\n",
                    report.summary().c_str());
        ok = false;
    }
    std::printf("SELFCHECK static preflight %s\n", ok ? "PASS" : "FAIL");
    return ok ? 0 : 1;
}

void
writeJson(const std::vector<WorkerRun> &runs, const std::string &path,
          bool smoke, double speedup, bool verdict)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return;
    }
    std::fprintf(f, "{\n  \"bench\": \"server\",\n");
    std::fprintf(f, "  \"smoke\": %s,\n", smoke ? "true" : "false");
    std::fprintf(f, "  \"t_rc_ns\": %.0f,\n", kTrcNs);
    std::fprintf(f, "  \"results\": [\n");
    for (std::size_t i = 0; i < runs.size(); ++i) {
        const WorkerRun &r = runs[i];
        std::fprintf(f, "    {\"workers\": %u, \"phases\": [\n",
                     r.workers);
        for (std::size_t p = 0; p < r.phases.size(); ++p) {
            const PhaseStats &ps = r.phases[p];
            std::fprintf(
                f,
                "      {\"phase\": \"%s\", \"ops\": %llu, "
                "\"wall_ms\": %.3f, \"ops_per_s\": %.1f, "
                "\"p50_us\": %.1f, \"p99_us\": %.1f, "
                "\"p999_us\": %.1f, \"oom_responses\": %llu, "
                "\"row_acts\": %llu, \"metrics\": %s}%s\n",
                ps.name.c_str(),
                static_cast<unsigned long long>(ps.ops), ps.wallMs,
                ps.opsPerSec(), ps.p50Us, ps.p99Us, ps.p999Us,
                static_cast<unsigned long long>(ps.oomResponses),
                static_cast<unsigned long long>(ps.rowActs),
                bench::metricsJson(ps.serverDelta).c_str(),
                p + 1 < r.phases.size() ? "," : "");
        }
        std::fprintf(
            f,
            "    ], \"steady_row_acts\": %llu, "
            "\"steady_max_bank_acts\": %llu, \"model_ms\": %.3f, "
            "\"model_ops_per_s\": %.1f, \"audit_clean\": %s}%s\n",
            static_cast<unsigned long long>(r.steadyRowActs),
            static_cast<unsigned long long>(r.steadyMaxBank),
            r.modelMs(), r.modelOpsPerSec(),
            r.auditClean ? "true" : "false",
            i + 1 < runs.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f, "  \"speedup_model_16w\": %.3f,\n", speedup);
    std::fprintf(f, "  \"speedup_target\": 3.0,\n");
    std::fprintf(f, "  \"speedup_pass\": %s\n",
                 verdict ? "true" : "false");
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("\nwrote %s\n", path.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    bool checkStaticMode = false;
    std::string jsonPath = "BENCH_server.json";
    unsigned clients = 4;
    FaultConfig faults;
    cli::FlagSet flags("bench_server",
                       "closed-loop load generator for the memcached "
                       "server (DESIGN.md §14)");
    flags.toggle("--smoke", &smoke, "smoke-sized runs (CI)");
    flags.str("--json", &jsonPath, "trajectory output path");
    flags.toggle("--check-static", &checkStaticMode,
                 "canned protocol preflight, no timed phases");
    flags.u32("--clients", &clients, "load-generator client threads");
    cli::addFaultFlags(flags, faults);
    flags.parse(argc, argv);
    if (clients == 0 || clients > 64) {
        std::fprintf(stderr, "--clients out of range (1..64)\n");
        return 2;
    }

    if (checkStaticMode)
        return checkStatic();

    RunParams rp;
    rp.preloadItems = smoke ? 250 : 4000;
    rp.steadyReqs = smoke ? 1200 : 20000;
    rp.stormReqs = smoke ? 500 : 8000;
    rp.churnConns = smoke ? 15 : 75;
    rp.clients = static_cast<int>(smoke ? std::min(clients, 2u)
                                        : clients);

    std::printf("== memcached server load sweep: %d clients, "
                "1/4/16 workers ==\n\n",
                rp.clients);

    std::vector<WorkerRun> runs;
    Table t({"workers", "phase", "ops", "wall ms", "ops/s", "p50 us",
             "p99 us", "p999 us", "oom", "row acts"});
    bool allAuditsClean = true;
    std::uint64_t clientFailures = 0;
    for (unsigned w : {1u, 4u, 16u}) {
        WorkerRun run = runAtWorkers(w, rp, faults);
        for (const auto &ps : run.phases) {
            t.addRow({std::to_string(run.workers), ps.name,
                      std::to_string(ps.ops), strfmt("%.1f", ps.wallMs),
                      strfmt("%.0f", ps.opsPerSec()),
                      strfmt("%.1f", ps.p50Us),
                      strfmt("%.1f", ps.p99Us),
                      strfmt("%.1f", ps.p999Us),
                      std::to_string(ps.oomResponses),
                      std::to_string(ps.rowActs)});
            clientFailures += ps.clientFailures;
        }
        allAuditsClean = allAuditsClean && run.auditClean;
        runs.push_back(std::move(run));
    }
    t.print();

    const double base = runs.front().modelOpsPerSec();
    const double hot = runs.back().modelOpsPerSec();
    const double speedup = base > 0.0 ? hot / base : 0.0;
    const bool speedupOk = speedup >= 3.0;
    std::printf("\nmodeled steady-state throughput: %.0f ops/s at 1 "
                "worker, %.0f ops/s at 16 (%.2fx)\n",
                base, hot, speedup);
    std::printf("SELFCHECK modeled 16-worker speedup >= 3x: %s\n",
                speedupOk ? "PASS" : "FAIL");
    std::printf("SELFCHECK all clients served without desync: %s\n",
                clientFailures == 0 ? "PASS" : "FAIL");
    std::printf("SELFCHECK exit heap audits clean: %s\n",
                allAuditsClean ? "PASS" : "FAIL");

    writeJson(runs, jsonPath, smoke, speedup, speedupOk);
    bench::finishBench();
    return (speedupOk && allAuditsClean && clientFailures == 0) ? 0 : 1;
}
