/**
 * @file
 * Reproduces paper Figure 10: memory consumption of whole VMmark
 * tiles (six mixed VMs each) scaled 1..10 tiles. Paper: HICAMP
 * compacts tiles by more than 3.55x while ideal page sharing reaches
 * only ~1.8x.
 */

#include <cstdio>

#include "apps/vm/vm_model.hh"
#include "bench_obs.hh"
#include "common/table.hh"

using namespace hicamp;

int
main()
{
    std::printf("== Figure 10: memory consumption of VMmark tiles "
                "(GB) ==\n\n");
    Table t({"# tiles", "Allocated", "Page sharing", "HICAMP 64B",
             "HICAMP x", "sharing x"});
    VmDedupModel model;
    int seed = 0;
    for (int tile = 1; tile <= 10; ++tile) {
        for (const auto &p : VmProfile::tile())
            model.addVm(p, 7000 + seed++);
        VmUsage u = model.measure();
        auto gb = [](std::uint64_t b) {
            return strfmt("%.2f", static_cast<double>(b) / (1ull << 30));
        };
        t.addRow({strfmt("%d", tile), gb(u.allocatedBytes),
                  gb(u.pageSharedBytes), gb(u.hicampBytes),
                  strfmt("%.2f",
                         static_cast<double>(u.allocatedBytes) /
                             static_cast<double>(u.hicampBytes)),
                  strfmt("%.2f",
                         static_cast<double>(u.allocatedBytes) /
                             static_cast<double>(u.pageSharedBytes))});
    }
    t.print();
    std::printf("\npaper at 10 tiles: HICAMP >3.55x, ideal page "
                "sharing ~1.8x.\n");
    bench::finishBench();
    return 0;
}
