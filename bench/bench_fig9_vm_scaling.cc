/**
 * @file
 * Reproduces paper Figure 9: memory consumption of individual VMmark
 * workload VMs scaled 1..10 instances — Allocated vs ideal page
 * sharing vs HICAMP 64-byte-line dedup.
 *
 * Paper result at 10 VMs: HICAMP compacts 1.86x (database server) to
 * 10.87x (standby server); ideal page sharing 1.44x-5.21x.
 */

#include <cstdio>

#include "apps/vm/vm_model.hh"
#include "bench_obs.hh"
#include "common/table.hh"

using namespace hicamp;

int
main()
{
    std::printf("== Figure 9: memory consumption of individual VMs "
                "in a VMmark tile (GB) ==\n");
    for (const auto &p : VmProfile::tile()) {
        std::printf("\n-- %s (%s, %.2f GB/VM) --\n", p.name.c_str(),
                    p.os.c_str(),
                    static_cast<double>(p.memBytes) / (1ull << 30));
        Table t({"# VMs", "Allocated", "Page sharing", "HICAMP 64B",
                 "HICAMP x", "sharing x"});
        VmDedupModel model;
        for (int i = 1; i <= 10; ++i) {
            model.addVm(p, 100 + i);
            VmUsage u = model.measure();
            auto gb = [](std::uint64_t b) {
                return strfmt("%.2f",
                              static_cast<double>(b) / (1ull << 30));
            };
            t.addRow({strfmt("%d", i), gb(u.allocatedBytes),
                      gb(u.pageSharedBytes), gb(u.hicampBytes),
                      strfmt("%.2f", static_cast<double>(
                                         u.allocatedBytes) /
                                         static_cast<double>(
                                             u.hicampBytes)),
                      strfmt("%.2f", static_cast<double>(
                                         u.allocatedBytes) /
                                         static_cast<double>(
                                             u.pageSharedBytes))});
        }
        t.print();
    }
    std::printf("\npaper at 10 VMs: HICAMP 1.86x (database) .. 10.87x "
                "(standby); page sharing 1.44x .. 5.21x.\n");
    bench::finishBench();
    return 0;
}
