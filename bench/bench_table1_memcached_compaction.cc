/**
 * @file
 * Reproduces paper Table 1: memcached data compaction (conventional
 * bytes / HICAMP bytes) for web-page, script and image datasets at
 * 16/32/64-byte lines.
 *
 * Datasets are synthetic equivalents of the paper's Wikipedia and
 * Facebook dumps (see DESIGN.md): text corpora are near-duplicate
 * versions of base pages (aligned redundancy), images are high-
 * entropy blobs. Item counts/sizes are scaled ~1/10 to laptop scale;
 * the compaction ratio depends on redundancy structure, not absolute
 * volume.
 */

#include <bit>
#include <cstdio>

#include "bench_obs.hh"
#include "common/table.hh"
#include "mem/memory.hh"
#include "seg/builder.hh"
#include "workloads/webcorpus.hh"

using namespace hicamp;

namespace {

struct Dataset {
    const char *name;
    WebCorpus::Params params;
};

std::vector<Dataset>
datasets()
{
    std::vector<Dataset> ds;
    auto text = [](const char *name, WebCorpus::Kind kind,
                   std::uint64_t items, std::uint64_t max_bytes,
                   double bases_per_item, std::uint64_t seed) {
        WebCorpus::Params p;
        p.kind = kind;
        p.numItems = items;
        p.minBytes = 128;
        p.maxBytes = max_bytes;
        p.basesPerItem = bases_per_item;
        p.seed = seed;
        return Dataset{name, p};
    };
    // Wikipedia pages: many revisions of the same articles -> very
    // high redundancy (paper: 1.71x at 16 B).
    ds.push_back(text("wiki-pages", WebCorpus::Kind::Pages, 3000,
                      32768, 0.30, 11));
    // Facebook pages May'08 (smaller crawl, heavier templates: 4.27x)
    ds.push_back(text("fb-pages-may08", WebCorpus::Kind::Pages, 600,
                      16384, 0.08, 12));
    // Facebook pages Sept'08 (larger, more diverse: 1.84x)
    ds.push_back(text("fb-pages-sep08", WebCorpus::Kind::Pages, 2000,
                      16384, 0.25, 13));
    // Scripts: shared library code (3.17x / 4.06x)
    ds.push_back(text("fb-scripts-may08", WebCorpus::Kind::Scripts, 300,
                      4096, 0.12, 14));
    ds.push_back(text("fb-scripts-sep08", WebCorpus::Kind::Scripts, 150,
                      2048, 0.10, 15));
    // Images: compressed media, no dedup opportunity (0.9x / 0.93x)
    ds.push_back(text("fb-images-may08", WebCorpus::Kind::Images, 1200,
                      8192, 0.2, 16));
    ds.push_back(text("fb-images-sep08", WebCorpus::Kind::Images, 1500,
                      6144, 0.2, 17));
    return ds;
}

} // namespace

int
main()
{
    std::printf("== Table 1: memcached data compaction "
                "(conventional bytes per HICAMP byte) ==\n\n");
    Table t({"dataset", "items", "MB", "LS=16", "LS=32", "LS=64"});
    for (const auto &ds : datasets()) {
        auto items = WebCorpus::generate(ds.params);
        std::uint64_t raw = WebCorpus::totalBytes(items);
        std::vector<std::string> row{
            ds.name, strfmt("%zu", items.size()),
            strfmt("%.2f", static_cast<double>(raw) / 1e6)};
        for (unsigned ls : {16u, 32u, 64u}) {
            MemoryConfig cfg;
            cfg.lineBytes = ls;
            cfg.numBuckets = std::bit_ceil(raw * 3 / ls / 12 + 4096);
            Memory mem(cfg);
            SegBuilder b(mem);
            std::vector<SegDesc> keep;
            keep.reserve(items.size());
            for (const auto &it : items) {
                keep.push_back(
                    b.buildBytes(it.payload.data(), it.payload.size()));
            }
            double compaction = static_cast<double>(raw) /
                                static_cast<double>(mem.liveBytes());
            row.push_back(strfmt("%.2f", compaction));
        }
        t.addRow(row);
    }
    t.print();
    std::printf(
        "\npaper: text 1.5-4.3x, scripts 2.1-4.1x, images 0.9-1.1x.\n"
        "Note: we model full 64-bit tagged words, so interior-node "
        "overhead at 16 B lines is ~2x (the paper's footnote-6 worst "
        "case); hardware packing 32-bit PLIDs would lift the LS=16 "
        "column toward the paper's, which is why our text compaction "
        "peaks at 32 B instead of falling monotonically.\n");
    bench::finishBench();
    return 0;
}
