/**
 * @file
 * Ablation for the paper's §5.1.1 contention split: "the map can be
 * split into an array of segments ... Such a split would reduce
 * probability of conflict and re-execution even further."
 *
 * Measures merge-resolved commits and true conflicts for a single
 * merge-update map vs sharded variants under a deterministic
 * worst-case commit pattern (every pair of consecutive sets races
 * from the same snapshot).
 */

#include <cstdio>

#include "bench_obs.hh"
#include "common/table.hh"
#include "lang/hsharded_map.hh"

using namespace hicamp;

namespace {

struct Result {
    std::uint64_t merges;
    std::uint64_t trueConflicts;
};

/**
 * Drive @p rounds pairs of racing sets: A and B both snapshot, both
 * commit; B's commit is always stale and must merge (or conflict when
 * it hits the same slot).
 */
Result
race(Hicamp &hc, const std::function<void(int, int)> &set_fn, int rounds)
{
    std::uint64_t m0 = hc.vsm.mergeCommits();
    std::uint64_t f0 = hc.vsm.mergeFailures();
    for (int i = 0; i < rounds; ++i) {
        // Two "threads" writing different keys back to back; the
        // segment-map CAS sees the second as stale whenever the keys
        // share a shard.
        set_fn(i, 0);
        set_fn(i, 1);
    }
    return {hc.vsm.mergeCommits() - m0, hc.vsm.mergeFailures() - f0};
}

} // namespace

int
main()
{
    std::printf("== Ablation: map sharding under write contention "
                "(paper §5.1.1) ==\n\n");
    const int kRounds = 400;

    Table t({"configuration", "sets", "merge-resolved", "true conflicts",
             "retries"});

    for (unsigned shard_bits : {0u, 2u, 4u}) {
        MemoryConfig cfg;
        cfg.numBuckets = 1 << 15;
        Hicamp hc(cfg);
        HShardedMap map(hc, shard_bits);

        // Interleave commits from two logical writers whose snapshots
        // overlap: emulate by doing paired sets of unrelated keys and
        // counting how often the segment map had to merge.
        std::uint64_t m0 = hc.vsm.mergeCommits();
        std::uint64_t f0 = hc.vsm.mergeFailures();
        for (int i = 0; i < kRounds; ++i) {
            HString k1(hc, "writerA-" + std::to_string(i));
            HString k2(hc, "writerB-" + std::to_string(i));
            // Same-snapshot race within one shard only happens when
            // both keys route to the same shard; emulate the race by
            // using the lower-level iterator API against the shard
            // segments directly.
            std::size_t s1 = map.shardOf(k1), s2 = map.shardOf(k2);
            if (s1 == s2) {
                // Stale-commit pair on one shard.
                IteratorRegister a(hc.mem, hc.vsm), b(hc.mem, hc.vsm);
                Vsid v = map.shard(s1).vsid();
                a.load(v, map.shard(s1).slotOf(k1));
                b.load(v, map.shard(s2).slotOf(k2));
                a.write(i + 1);
                b.write(i + 100001);
                a.tryCommit();
                b.tryCommit(); // merge path
            } else {
                // Different shards: the commits cannot interact.
                map.set(k1, HString(hc, "x"));
                map.set(k2, HString(hc, "y"));
            }
        }
        t.addRow({shard_bits == 0
                      ? std::string("1 shard (plain map)")
                      : strfmt("%u shards", 1u << shard_bits),
                  strfmt("%d pairs", kRounds),
                  strfmt("%llu", static_cast<unsigned long long>(
                                     hc.vsm.mergeCommits() - m0)),
                  strfmt("%llu", static_cast<unsigned long long>(
                                     hc.vsm.mergeFailures() - f0)),
                  "0 (merge-update)"});
    }
    t.print();
    std::printf("\nWith more shards, fewer racing commit pairs land on "
                "the same segment, so merge work falls toward zero — "
                "the paper's predicted contention reduction.\n");
    bench::finishBench();
    return 0;
}
