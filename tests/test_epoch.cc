/**
 * @file
 * Epoch-based reclamation tests (DESIGN.md §12): grace-period
 * protocol on a bare EpochManager, limbo semantics on the line
 * store, the Memory-level integration (metrics, tryAcquire
 * revalidation, fault-injected allocation failure with lines parked
 * in limbo) and a read/retire hammer that the CI TSan job runs to
 * prove the lock-free read paths race-free.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "analysis/auditor.hh"
#include "common/rng.hh"
#include "mem/epoch.hh"
#include "mem/line_store.hh"
#include "mem/memory.hh"
#include "mem/plid_ref.hh"

namespace hicamp {
namespace {

Line
lineOf(unsigned words, Word a, Word b = 0)
{
    Line l(words);
    l.set(0, a);
    if (words > 1)
        l.set(1, b);
    return l;
}

void
bumpCounter(void *ctx, std::uint64_t arg)
{
    static_cast<std::atomic<std::uint64_t> *>(ctx)->fetch_add(arg);
}

TEST(Epoch, DeferredFreeWaitsForGrace)
{
    EpochManager m(/*batch_size=*/1);
    std::atomic<std::uint64_t> freed{0};
    m.defer(&bumpCounter, &freed, 1);
    EXPECT_EQ(m.limboDepth(), 1u);
    EXPECT_EQ(freed.load(), 0u); // never freed synchronously

    // No reader is pinned, so a synchronize drives the epoch through
    // a full grace period and runs the callback.
    const std::size_t ran = m.synchronize();
    EXPECT_EQ(ran, 1u);
    EXPECT_EQ(freed.load(), 1u);
    EXPECT_EQ(m.limboDepth(), 0u);
    EXPECT_EQ(m.deferredFrees(), 1u);
    EXPECT_GE(m.advances(), 1u);
}

TEST(Epoch, PinnedReaderHoldsLimboBack)
{
    EpochManager m(1);
    std::atomic<std::uint64_t> freed{0};

    m.enter(); // pin this thread's record
    m.defer(&bumpCounter, &freed, 1);

    // A writer on another thread cannot complete a grace period while
    // the reader stays pinned: at most one advance (to a newer epoch)
    // succeeds, after which the stale pin blocks the next check.
    std::thread w([&] { m.synchronize(); });
    w.join();
    EXPECT_EQ(freed.load(), 0u);
    EXPECT_EQ(m.limboDepth(), 1u);

    m.exit(); // quiescent: the grace period can now expire
    m.synchronize();
    EXPECT_EQ(freed.load(), 1u);
    EXPECT_EQ(m.limboDepth(), 0u);
}

TEST(Epoch, ParkedThreadsDoNotBlockGrace)
{
    EpochManager m(1);
    std::atomic<std::uint64_t> freed{0};

    // A thread that has *registered* (entered and exited a guard) but
    // is now idle must never stall a grace period: its record is
    // parked (epoch 0) and the grace check skips it.
    std::mutex mu;
    std::condition_variable cv;
    bool registered = false, done = false;
    std::thread idle([&] {
        {
            EpochGuard g(m); // claim a record, then park
        }
        std::unique_lock<std::mutex> lk(mu);
        registered = true;
        cv.notify_all();
        cv.wait(lk, [&] { return done; });
    });
    {
        std::unique_lock<std::mutex> lk(mu);
        cv.wait(lk, [&] { return registered; });
    }

    // The idle thread is alive and registered; grace must still
    // expire entirely on this thread's synchronize.
    m.defer(&bumpCounter, &freed, 1);
    m.synchronize();
    EXPECT_EQ(freed.load(), 1u);

    {
        std::lock_guard<std::mutex> lk(mu);
        done = true;
    }
    cv.notify_all();
    idle.join();
}

TEST(Epoch, GuardReentrancy)
{
    EpochManager m;
    EXPECT_FALSE(m.activeOnThisThread());
    {
        EpochGuard outer(m);
        EXPECT_TRUE(m.activeOnThisThread());
        {
            EpochGuard inner(m); // nests: deepens, does not re-pin
            EXPECT_TRUE(m.activeOnThisThread());
        }
        // The inner exit must not have parked the record.
        EXPECT_TRUE(m.activeOnThisThread());
    }
    EXPECT_FALSE(m.activeOnThisThread());
}

TEST(Epoch, GraceObserverReportsLatency)
{
    EpochManager m(1);
    std::vector<std::uint64_t> latencies;
    m.setGraceObserver([&](std::uint64_t ns) { latencies.push_back(ns); });
    std::atomic<std::uint64_t> freed{0};
    m.defer(&bumpCounter, &freed, 1);
    m.synchronize();
    ASSERT_EQ(latencies.size(), 1u); // one executed free, one sample
}

TEST(Epoch, LimboLineSurvivesReadBegunBeforeRetirement)
{
    LineStore s(1 << 10, 2);
    const Line content = lineOf(2, 77, 88);
    auto r = s.findOrInsert(content);

    std::mutex mu;
    std::condition_variable cv;
    bool pinned = false, retired = false;
    Line before(2), after(2);

    std::thread reader([&] {
        EpochGuard g(s.epochDomain());
        before = s.read(r.plid); // read begins before retirement
        {
            std::lock_guard<std::mutex> lk(mu);
            pinned = true;
        }
        cv.notify_all();
        {
            std::unique_lock<std::mutex> lk(mu);
            cv.wait(lk, [&] { return retired; });
        }
        // The slot is now retired and (at most) in limbo; a read
        // section that began before the retirement must still see
        // the content intact — the §12 limbo invariant.
        after = s.read(r.plid);
    });

    {
        std::unique_lock<std::mutex> lk(mu);
        cv.wait(lk, [&] { return pinned; });
    }
    s.freeLine(r.plid);
    EXPECT_FALSE(s.isLive(r.plid));
    EXPECT_EQ(s.limboLines(), 1u);
    // The pinned reader holds the grace period back: the slot must
    // not be physically reclaimed by this synchronize.
    s.epochSynchronize();
    EXPECT_EQ(s.limboLines(), 1u);
    {
        std::lock_guard<std::mutex> lk(mu);
        retired = true;
    }
    cv.notify_all();
    reader.join();

    EXPECT_EQ(before, content);
    EXPECT_EQ(after, content);

    // Reader gone: grace expires, the slot returns to service.
    s.epochSynchronize();
    EXPECT_EQ(s.limboLines(), 0u);
    auto r2 = s.findOrInsert(content);
    EXPECT_FALSE(r2.found);
    EXPECT_EQ(r2.plid, r.plid); // same way, recycled after grace
}

/**
 * TSan hammer: readers traverse lock-free under guards while writers
 * insert and retire the same PLIDs. The invariant checked inside
 * each guard is self-consistency — whatever content a pinned read
 * returns must hash to the bucket the line is stored in — which
 * fails loudly if a read ever races a physical free (recycled or
 * cleared storage).
 */
TEST(EpochHammer, ConcurrentReadRetireChurn)
{
    LineStore s(1 << 8, 2);
    constexpr int kWriters = 2;
    constexpr int kReaders = 2;
    constexpr int kSlots = 64;
    constexpr int kRounds = 400;

    std::vector<std::atomic<Plid>> slots(kSlots);
    for (auto &p : slots)
        p.store(kZeroPlid);
    std::atomic<bool> stop{false};

    std::vector<std::thread> threads;
    for (int w = 0; w < kWriters; ++w) {
        threads.emplace_back([&, w] {
            Rng rng(900 + w);
            for (int i = 0; i < kRounds; ++i) {
                const int slot = w * (kSlots / kWriters) +
                                 static_cast<int>(
                                     rng.below(kSlots / kWriters));
                const Plid old =
                    slots[slot].exchange(kZeroPlid);
                if (old != kZeroPlid && s.addRef(old, -1) == 0)
                    s.retire(old);
                const Word v = static_cast<Word>(
                    (static_cast<Word>(w) << 32) | (i + 1));
                auto r = s.findOrInsert(lineOf(2, v, v * 3),
                                        /*take_ref=*/true);
                ASSERT_EQ(r.status, MemStatus::Ok);
                slots[slot].store(r.plid);
            }
        });
    }
    for (int t = 0; t < kReaders; ++t) {
        threads.emplace_back([&, t] {
            Rng rng(7000 + t);
            while (!stop.load(std::memory_order_acquire)) {
                EpochGuard g(s.epochDomain());
                for (int i = 0; i < 8; ++i) {
                    const Plid p = slots[rng.below(kSlots)].load();
                    if (p == kZeroPlid)
                        continue;
                    // Inside the guard the slot may retire under us
                    // but can never be recycled: the content stays
                    // coherent with its bucket.
                    if (!s.isLive(p))
                        continue;
                    const Line l = s.read(p);
                    ASSERT_EQ(s.bucketOf(l.contentHash()),
                              s.bucketOfPlid(p));
                    (void)s.refCount(p); // advisory snapshot, guarded
                }
            }
        });
    }
    for (int w = 0; w < kWriters; ++w)
        threads[w].join();
    stop.store(true, std::memory_order_release);
    for (int t = kWriters; t < kWriters + kReaders; ++t)
        threads[t].join();

    // Teardown: drop the remaining references, drain limbo, and the
    // store must be exactly empty.
    for (auto &slot : slots) {
        const Plid p = slot.load();
        if (p != kZeroPlid && s.addRef(p, -1) == 0)
            s.retire(p);
    }
    s.epochSynchronize();
    EXPECT_EQ(s.limboLines(), 0u);
    EXPECT_EQ(s.liveLines(), 0u);
    EXPECT_EQ(s.totalRefs(), 0u);
}

/**
 * Regression for the retire()/read() live-or-limbo handoff: retire
 * sets the limbo bit *before* the release clear of the live bit, and
 * a lock-free reader consults limbo (relaxed — the liveMask_
 * release/acquire pair carries the ordering for both masks, see
 * setSlotLimbo) only after its acquire load of the live mask. Unlike
 * ConcurrentReadRetireChurn above, readers here call read() without
 * an isLive() gate: a PLID obtained inside a guard must stay
 * readable through a concurrent retirement, so if the two mask
 * writes ever reorder — or the limbo load ever misses the published
 * bit — read()'s live-or-limbo debug assert fires on the transient
 * neither-live-nor-limbo state. TSan (CI job) additionally proves
 * the relaxed limbo traffic race-free.
 */
TEST(EpochHammer, ReadRacingRetireSeesLiveOrLimbo)
{
    constexpr std::uint64_t kBuckets = 1 << 10;
    LineStore s(kBuckets, 2);
    constexpr int kWriters = 2;
    constexpr int kReaders = 2;
    constexpr int kSlots = 32;
    constexpr int kRounds = 400;
    // Home-bucket PLIDs are dense (bucket << way bits | way);
    // overflow PLIDs sit above this bound and take a locked read
    // path, so writers keep them out of the shared slots.
    constexpr Plid kHomeBound = kBuckets << BucketLayout::kWayBits;

    std::vector<std::atomic<Plid>> slots(kSlots);
    for (auto &p : slots)
        p.store(kZeroPlid);
    std::atomic<bool> stop{false};

    std::vector<std::thread> threads;
    for (int w = 0; w < kWriters; ++w) {
        threads.emplace_back([&, w] {
            Rng rng(1700 + w);
            for (int i = 0; i < kRounds; ++i) {
                const int slot = w * (kSlots / kWriters) +
                                 static_cast<int>(
                                     rng.below(kSlots / kWriters));
                const Plid old = slots[slot].exchange(kZeroPlid);
                if (old != kZeroPlid && s.addRef(old, -1) == 0)
                    s.retire(old);
                const Word v = static_cast<Word>(
                    (static_cast<Word>(w + 11) << 32) | (i + 1));
                auto r = s.findOrInsert(lineOf(2, v, v * 5),
                                        /*take_ref=*/true);
                ASSERT_EQ(r.status, MemStatus::Ok);
                if (r.plid >= kHomeBound) {
                    // Overflow spill: retire it again rather than
                    // publish a locked-path PLID to the readers.
                    if (s.addRef(r.plid, -1) == 0)
                        s.retire(r.plid);
                    continue;
                }
                slots[slot].store(r.plid);
            }
        });
    }
    for (int t = 0; t < kReaders; ++t) {
        threads.emplace_back([&, t] {
            Rng rng(9100 + t);
            while (!stop.load(std::memory_order_acquire)) {
                EpochGuard g(s.epochDomain());
                for (int i = 0; i < 8; ++i) {
                    const Plid p = slots[rng.below(kSlots)].load();
                    if (p == kZeroPlid)
                        continue;
                    // No isLive() gate: the slot may retire under us
                    // mid-read, and read() itself must then observe
                    // limbo (parked storage), never the unallocated
                    // state, with the content still bucket-coherent.
                    const Line l = s.read(p);
                    ASSERT_EQ(s.bucketOf(l.contentHash()),
                              s.bucketOfPlid(p));
                }
            }
        });
    }
    for (int w = 0; w < kWriters; ++w)
        threads[w].join();
    stop.store(true, std::memory_order_release);
    for (int t = kWriters; t < kWriters + kReaders; ++t)
        threads[t].join();

    for (auto &slot : slots) {
        const Plid p = slot.load();
        if (p != kZeroPlid && s.addRef(p, -1) == 0)
            s.retire(p);
    }
    s.epochSynchronize();
    EXPECT_EQ(s.limboLines(), 0u);
    EXPECT_EQ(s.liveLines(), 0u);
    EXPECT_EQ(s.totalRefs(), 0u);
}

TEST(Epoch, TryAcquireRevalidatesInsideGuard)
{
    Memory mem;
    const Plid p = mem.lookup(lineOf(mem.lineWords(), 41));
    {
        PlidRef ref = PlidRef::tryAcquire(mem, p);
        ASSERT_TRUE(ref);
        EXPECT_EQ(mem.refCount(p), 2u);
    }
    mem.decRef(p); // line retires into limbo

    // A stale PLID must be refused — the slot is in limbo (storage
    // parked, identity retired), not reusable for resurrection.
    PlidRef stale = PlidRef::tryAcquire(mem, p);
    EXPECT_FALSE(stale);
    EXPECT_GE(mem.store().limboLines(), 1u);
}

TEST(Epoch, AllocFailureWhileLineInLimbo)
{
    MemoryConfig cfg;
    cfg.numBuckets = 1 << 10;
    cfg.faults.allowEnvOverride = false;
    Memory mem(cfg);

    // Park a line in limbo: one lookup reference, then release it.
    const Line doomed = lineOf(mem.lineWords(), 1001);
    const Plid p = mem.lookup(doomed);
    mem.decRef(p);
    ASSERT_GE(mem.store().limboLines(), 1u);

    // Fault injection: the next fresh allocation fails while the
    // retired line is still parked. The failure must not corrupt the
    // limbo state or leak anything.
    FaultConfig f;
    f.allocFailEvery = 1;
    mem.faults().reconfigure(f);
    EXPECT_THROW(mem.lookup(lineOf(mem.lineWords(), 2002)),
                 MemPressureError);
    EXPECT_GE(mem.store().limboLines(), 1u);
    EXPECT_EQ(mem.oomEvents(), 1u);

    // Recovery: faults off, the same content allocates, limbo drains
    // at the quiescent point, and the full heap audit (which checks
    // the §12 limbo invariants first) comes back clean.
    mem.faults().reconfigure(FaultConfig{});
    const Plid q = mem.lookup(lineOf(mem.lineWords(), 2002));
    EXPECT_NE(q, kZeroPlid);

    Auditor::Options opts;
    opts.externalRefs = {q};
    AuditReport rep = Auditor::audit(mem, nullptr, opts);
    EXPECT_TRUE(rep.clean()) << rep.summary();
    EXPECT_EQ(mem.store().limboLines(), 0u); // audit synchronized
    mem.decRef(q);
}

TEST(Epoch, MemoryExportsEpochMetrics)
{
    MemoryConfig cfg;
    cfg.epochBatchSize = 1; // advance on every retirement
    Memory mem(cfg);
    const Plid p = mem.lookup(lineOf(mem.lineWords(), 5005));
    mem.decRef(p);
    mem.store().epochSynchronize();

    EpochManager &ep = mem.store().epochDomain();
    EXPECT_GE(ep.advances(), 1u);
    EXPECT_EQ(ep.deferredFrees(), 1u);
    EXPECT_EQ(ep.limboDepth(), 0u);
    // The grace histogram is fed through the registered observer.
    EXPECT_EQ(mem.metrics().histogram("epoch.grace_ns").count(), 1u);
}

TEST(Epoch, DisabledModeFreesImmediately)
{
    LineStore::Limits lim;
    lim.epochReclaim = false;
    LineStore s(1 << 10, 2, lim);
    auto r = s.findOrInsert(lineOf(2, 9, 9));
    s.freeLine(r.plid);
    // Legacy (sharded) mode: no limbo, the way is immediately free.
    EXPECT_EQ(s.limboLines(), 0u);
    auto r2 = s.findOrInsert(lineOf(2, 9, 9));
    EXPECT_FALSE(r2.found);
    EXPECT_EQ(r2.plid, r.plid);
}

} // namespace
} // namespace hicamp
