/**
 * @file
 * Concurrency hammer for the serving front-end (DESIGN.md §14), run
 * under TSan in CI: churning client connections race SET/GET/DELETE
 * (plus incr and noreply traffic) against a multi-worker server on
 * one shared heap, and the heap is audited after the storm. The
 * interesting races are the ring handoff (net thread vs workers),
 * the per-connection output lock, and snapshot GETs overlapping
 * merge-update SET commits.
 */

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "audit_check.hh"
#include "server/server.hh"
#include "server/store.hh"

namespace hicamp::server {
namespace {

/** Blocking client; expectations are counted, not asserted, so the
 *  hammer threads stay gtest-safe (EXPECT only on the main thread). */
class RawClient
{
  public:
    explicit RawClient(std::uint16_t port)
    {
        fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
        if (fd_ < 0)
            return;
        timeval tv{10, 0};
        ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(port);
        ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
        if (::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                      sizeof addr) != 0) {
            ::close(fd_);
            fd_ = -1;
        }
    }

    ~RawClient()
    {
        if (fd_ >= 0)
            ::close(fd_);
    }

    bool ok() const { return fd_ >= 0; }

    bool
    send(std::string_view bytes)
    {
        std::size_t off = 0;
        while (off < bytes.size()) {
            const ssize_t n =
                ::write(fd_, bytes.data() + off, bytes.size() - off);
            if (n <= 0)
                return false;
            off += static_cast<std::size_t>(n);
        }
        return true;
    }

    std::string
    recvUntilClose()
    {
        std::string out;
        char buf[4096];
        for (;;) {
            const ssize_t n = ::read(fd_, buf, sizeof buf);
            if (n <= 0)
                break;
            out.append(buf, static_cast<std::size_t>(n));
        }
        return out;
    }

  private:
    int fd_ = -1;
};

TEST(ServerConcurrent, ChurningConnectionsRaceSetGetDelete)
{
    MemoryConfig mc;
    mc.numBuckets = 1 << 14;
    Hicamp hc(mc);
    McStore store(hc);
    ServerConfig sc;
    sc.workers = 3;
    sc.maxConns = 64;
    sc.ringSlots = 8; // small on purpose: exercises backpressure
    McServer srv(store, sc);
    srv.start();
    const std::uint16_t port = srv.port();

    // A shared hot key set so the threads genuinely collide on the
    // same map slots (merge-update + compareAndSet retry paths).
    constexpr int kThreads = 4;
    constexpr int kConnsPerThread = 25;
    std::atomic<std::uint64_t> failures{0};
    std::atomic<std::uint64_t> responsesSeen{0};
    std::vector<std::thread> clients;
    clients.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        clients.emplace_back([t, port, &failures, &responsesSeen] {
            for (int conn = 0; conn < kConnsPerThread; ++conn) {
                RawClient cli(port);
                if (!cli.ok()) {
                    ++failures;
                    continue;
                }
                const std::string hot =
                    "hot" + std::to_string((t + conn) % 3);
                const std::string mine = "t" + std::to_string(t) +
                                         "c" + std::to_string(conn);
                const std::string payload(64 + conn, 'a' + t);
                std::string script;
                script += "set " + hot + " 1 0 " +
                          std::to_string(payload.size()) + "\r\n" +
                          payload + "\r\n";
                script += "set " + mine + " 0 0 4 noreply\r\nmine\r\n";
                script += "get " + hot + " " + mine + "\r\n";
                script += "delete " + hot + "\r\n";
                script += "incr ctr 1\r\n";
                script += "get " + mine + "\r\nquit\r\n";
                if (!cli.send(script)) {
                    ++failures;
                    continue;
                }
                const std::string got = cli.recvUntilClose();
                // Responses race with other threads, so content is
                // nondeterministic — but the *shape* is not: every
                // reply stream ends with the final get's END and
                // contains one STORED for the first set.
                if (got.find("STORED\r\n") == std::string::npos ||
                    got.rfind("END\r\n") !=
                        got.size() - 5) {
                    ++failures;
                    continue;
                }
                ++responsesSeen;
            }
        });
    }
    for (auto &th : clients)
        th.join();

    EXPECT_EQ(failures.load(), 0u);
    EXPECT_EQ(responsesSeen.load(),
              static_cast<std::uint64_t>(kThreads * kConnsPerThread));

    srv.stop();
    const auto snap = srv.metrics().snapshot();
    EXPECT_EQ(snap.counter("server.conns.accepted"),
              snap.counter("server.conns.closed"));
    EXPECT_EQ(snap.gauge("server.conns.open"), 0u);
    EXPECT_GE(snap.counter("server.cmds.set"),
              2ull * kThreads * kConnsPerThread);

    // The churn held no PLIDs outside the store: the heap must
    // account for every reference with all clients gone.
    expectCleanAudit(hc);
}

TEST(ServerConcurrent, SnapshotGetsOverlapCommitsOnOneKey)
{
    // A writer connection rewrites one key while readers hammer GETs
    // on it: snapshot isolation says every GET sees a complete old or
    // complete new value, never a torn mix — checked with
    // self-describing payloads (homogeneous byte, length keyed to the
    // byte). GETs here read iterator-register snapshots in workers
    // while the SET commits race them on the same map slot.
    MemoryConfig mc;
    mc.numBuckets = 1 << 14;
    Hicamp hc(mc);
    McStore store(hc);
    store.set("snap", 0, std::string(500, 'A'));
    ServerConfig sc;
    sc.workers = 3;
    McServer srv(store, sc);
    srv.start();
    const std::uint16_t port = srv.port();

    const auto lenFor = [](char c) {
        return c == 'A' ? std::size_t{500} : std::size_t{900};
    };
    std::atomic<std::uint64_t> badReads{0};
    std::atomic<std::uint64_t> goodReads{0};
    std::atomic<std::uint64_t> failures{0};

    std::thread writer([port, &failures, &lenFor] {
        RawClient cli(port);
        if (!cli.ok()) {
            ++failures;
            return;
        }
        std::string script;
        for (int i = 0; i < 120; ++i) {
            const char c = (i % 2) ? 'B' : 'A';
            const std::string payload(lenFor(c), c);
            script += "set snap 0 0 " +
                      std::to_string(payload.size()) +
                      " noreply\r\n" + payload + "\r\n";
        }
        script += "quit\r\n";
        if (!cli.send(script))
            ++failures;
        cli.recvUntilClose();
    });

    std::vector<std::thread> readers;
    for (int r = 0; r < 2; ++r) {
        readers.emplace_back([port, &failures, &badReads, &goodReads,
                              &lenFor] {
            RawClient cli(port);
            if (!cli.ok()) {
                ++failures;
                return;
            }
            std::string script;
            for (int i = 0; i < 150; ++i)
                script += "get snap\r\n";
            script += "quit\r\n";
            if (!cli.send(script)) {
                ++failures;
                return;
            }
            const std::string got = cli.recvUntilClose();
            std::size_t pos = 0;
            while (pos < got.size()) {
                const std::size_t nl = got.find("\r\n", pos);
                if (nl == std::string::npos)
                    break;
                const std::string line = got.substr(pos, nl - pos);
                pos = nl + 2;
                if (line == "END")
                    continue;
                // "VALUE snap 0 <len>" then <len> raw bytes.
                const std::size_t lenAt = line.rfind(' ');
                const std::size_t len = static_cast<std::size_t>(
                    std::stoul(line.substr(lenAt + 1)));
                if (pos + len + 2 > got.size()) {
                    ++failures;
                    break;
                }
                const std::string_view data(got.data() + pos, len);
                pos += len + 2;
                const char c = data.empty() ? '?' : data[0];
                bool torn = lenFor(c) != len;
                for (char b : data)
                    if (b != c)
                        torn = true;
                if (torn)
                    ++badReads;
                else
                    ++goodReads;
            }
        });
    }

    writer.join();
    for (auto &th : readers)
        th.join();
    srv.stop();

    EXPECT_EQ(failures.load(), 0u);
    EXPECT_EQ(badReads.load(), 0u);
    EXPECT_GT(goodReads.load(), 0u);
    expectCleanAudit(hc);
}

} // namespace
} // namespace hicamp::server
