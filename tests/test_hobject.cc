/**
 * @file
 * Object-model tests (§2.3): VSID references between objects stay
 * valid across target updates (the indirection property that
 * distinguishes VSIDs from PLIDs), tagged fields round-trip, object
 * graphs traverse, and atomic field updates survive concurrency.
 */

#include <gtest/gtest.h>

#include <thread>

#include "lang/hobject.hh"

namespace hicamp {
namespace {

MemoryConfig
cfg()
{
    MemoryConfig c;
    c.numBuckets = 1 << 13;
    return c;
}

TEST(HObjectTest, FieldsRoundTrip)
{
    Hicamp hc(cfg());
    HObject o(hc, 8);
    o.setWord(0, 42);
    o.setWord(7, 0xdeadbeef);
    EXPECT_EQ(o.getWord(0), 42u);
    EXPECT_EQ(o.getWord(7), 0xdeadbeefu);
    EXPECT_EQ(o.getWord(3), 0u);
    o.clear(0);
    EXPECT_EQ(o.getWord(0), 0u);
}

TEST(HObjectTest, ReferenceSurvivesTargetUpdates)
{
    Hicamp hc(cfg());
    HObject account(hc, 2);
    account.setWord(0, 100); // balance

    HObject customer(hc, 4);
    customer.setRef(1, account);
    Vsid ref_before = customer.getRef(1);

    // Update the account many times: its segment root changes every
    // commit, but the customer's stored reference never does.
    for (int i = 1; i <= 20; ++i)
        account.setWord(0, 100 + i);
    EXPECT_EQ(customer.getRef(1), ref_before);

    // Following the reference sees the LATEST state (not a snapshot —
    // that is what VSIDs are for).
    HObject via = HObject::attach(hc, customer.getRef(1), 2);
    EXPECT_EQ(via.getWord(0), 120u);
}

TEST(HObjectTest, PlidVsVsidSemantics)
{
    // Contrast: a PLID-style value copy (HString) freezes content; a
    // VSID reference tracks updates.
    Hicamp hc(cfg());
    HObject doc(hc, 2);
    doc.setWord(0, 1); // version

    HObject reader(hc, 2);
    reader.setRef(0, doc);
    Word frozen_version = doc.getWord(0);

    doc.setWord(0, 2);
    HObject via = HObject::attach(hc, reader.getRef(0), 2);
    EXPECT_EQ(via.getWord(0), 2u);       // reference: sees v2
    EXPECT_EQ(frozen_version, 1u);       // value copy: still v1
}

TEST(HObjectTest, LinkedListTraversal)
{
    Hicamp hc(cfg());
    // node: field0 = payload, field1 = next ref
    std::vector<HObject> nodes;
    for (int i = 0; i < 10; ++i) {
        nodes.emplace_back(hc, 2);
        nodes.back().setWord(0, 100 + i);
    }
    for (int i = 0; i < 9; ++i)
        nodes[i].setRef(1, nodes[i + 1]);

    // Walk the list through the segment map.
    Vsid cur = nodes[0].vsid();
    int visited = 0;
    std::uint64_t sum = 0;
    while (cur != kNullVsid && visited < 20) {
        HObject n = HObject::attach(hc, cur, 2);
        sum += n.getWord(0);
        cur = n.getRef(1);
        ++visited;
    }
    EXPECT_EQ(visited, 10);
    EXPECT_EQ(sum, 10u * 100 + 45);
}

TEST(HObjectTest, ConcurrentFieldUpdatesDoNotInterleave)
{
    Hicamp hc(cfg());
    HObject o(hc, 8);
    std::vector<std::thread> ts;
    for (int t = 0; t < 4; ++t) {
        ts.emplace_back([&, t] {
            for (int i = 0; i < 50; ++i)
                o.setWord(t, o.getWord(t) + 1);
        });
    }
    for (auto &t : ts)
        t.join();
    // Each thread owned its field: all final values exact.
    for (unsigned f = 0; f < 4; ++f)
        EXPECT_EQ(o.getWord(f), 50u) << "field " << f;
}

TEST(HObjectTest, ObjectsReclaimOnDestroy)
{
    Hicamp hc(cfg());
    {
        HObject a(hc, 4), b(hc, 4);
        a.setWord(0, ~Word{0});
        b.setWord(0, ~Word{1});
        a.setRef(1, b);
        EXPECT_GT(hc.mem.liveLines(), 0u);
    }
    EXPECT_EQ(hc.mem.liveLines(), 0u);
    EXPECT_EQ(hc.mem.store().totalRefs(), 0u);
}

} // namespace
} // namespace hicamp
