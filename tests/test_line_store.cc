/**
 * @file
 * Unit tests for the ground-truth deduplicating line store: PLID
 * encoding, dedup identity, signatures, refcounts, overflow spill and
 * free-list reuse.
 */

#include <gtest/gtest.h>

#include "mem/line_store.hh"

namespace hicamp {
namespace {

Line
lineOf(unsigned words, Word a, Word b = 0)
{
    Line l(words);
    l.set(0, a);
    if (words > 1)
        l.set(1, b);
    return l;
}

TEST(LineStore, InsertThenFindSamePlid)
{
    LineStore s(1 << 10, 2);
    auto r1 = s.findOrInsert(lineOf(2, 1, 2));
    EXPECT_FALSE(r1.found);
    auto r2 = s.findOrInsert(lineOf(2, 1, 2));
    EXPECT_TRUE(r2.found);
    EXPECT_EQ(r1.plid, r2.plid);
    EXPECT_EQ(s.liveLines(), 1u);
}

TEST(LineStore, DistinctContentDistinctPlid)
{
    LineStore s(1 << 10, 2);
    auto r1 = s.findOrInsert(lineOf(2, 1, 2));
    auto r2 = s.findOrInsert(lineOf(2, 2, 1));
    EXPECT_NE(r1.plid, r2.plid);
    EXPECT_EQ(s.liveLines(), 2u);
}

TEST(LineStore, TagsParticipateInIdentity)
{
    LineStore s(1 << 10, 2);
    Line raw = lineOf(2, 42, 0);
    Line tagged(2);
    tagged.set(0, 42, WordMeta::plid());
    auto r1 = s.findOrInsert(raw);
    auto r2 = s.findOrInsert(tagged);
    EXPECT_NE(r1.plid, r2.plid);
}

TEST(LineStore, ReadReturnsContent)
{
    LineStore s(1 << 10, 4);
    Line l(4);
    l.set(0, 7);
    l.set(3, 9, WordMeta::vsid());
    auto r = s.findOrInsert(l);
    EXPECT_EQ(s.read(r.plid), l);
}

TEST(LineStore, ZeroPlidReadsZeroLine)
{
    LineStore s(1 << 10, 2);
    Line z = s.read(kZeroPlid);
    EXPECT_TRUE(z.isZero());
    EXPECT_TRUE(s.isLive(kZeroPlid));
}

TEST(LineStore, PlidEncodesBucketAndWay)
{
    LineStore s(1 << 10, 2);
    Line l = lineOf(2, 123, 456);
    auto r = s.findOrInsert(l);
    std::uint64_t bucket = r.plid >> BucketLayout::kWayBits;
    unsigned way = r.plid & (BucketLayout::kWays - 1);
    EXPECT_EQ(bucket, s.bucketOf(l.contentHash()));
    EXPECT_GE(way, BucketLayout::kFirstData);
    EXPECT_LT(way, BucketLayout::kFirstData + BucketLayout::kNumData);
}

TEST(LineStore, RefCountLifecycle)
{
    LineStore s(1 << 10, 2);
    auto r = s.findOrInsert(lineOf(2, 5, 5));
    EXPECT_EQ(s.refCount(r.plid), 0u);
    EXPECT_EQ(s.addRef(r.plid, +1), 1u);
    EXPECT_EQ(s.addRef(r.plid, +2), 3u);
    EXPECT_EQ(s.addRef(r.plid, -3), 0u);
    s.freeLine(r.plid);
    EXPECT_FALSE(s.isLive(r.plid));
    EXPECT_EQ(s.liveLines(), 0u);
}

TEST(LineStore, FreedSlotIsReusable)
{
    LineStore s(1 << 10, 2);
    auto r1 = s.findOrInsert(lineOf(2, 5, 5));
    s.freeLine(r1.plid);
    // Under epoch reclamation the freed way sits in limbo until a
    // grace period elapses; with no pinned readers a synchronize
    // makes it immediately reusable (§12).
    s.epochSynchronize();
    auto r2 = s.findOrInsert(lineOf(2, 5, 5));
    EXPECT_FALSE(r2.found); // was freed, so it is a fresh allocation
    EXPECT_EQ(r1.plid, r2.plid); // same empty way gets picked again
}

TEST(LineStore, FreeRemovesFromDedup)
{
    LineStore s(1 << 10, 2);
    auto r1 = s.findOrInsert(lineOf(2, 5, 5));
    s.freeLine(r1.plid);
    auto probe = s.find(lineOf(2, 5, 5));
    EXPECT_FALSE(probe.found);
}

TEST(LineStore, OverflowSpillAndFind)
{
    // A single bucket guarantees every line hashes to it; 12 data ways
    // fill, and line 13+ must spill to the overflow area.
    LineStore s(1, 2);
    std::vector<Plid> plids;
    for (Word v = 1; v <= 20; ++v)
        plids.push_back(s.findOrInsert(lineOf(2, v, v)).plid);
    EXPECT_EQ(s.liveLines(), 20u);
    EXPECT_EQ(s.overflowLines(), 8u);

    // Every line remains findable and readable, wherever it lives.
    for (Word v = 1; v <= 20; ++v) {
        auto r = s.find(lineOf(2, v, v));
        ASSERT_TRUE(r.found);
        EXPECT_EQ(r.plid, plids[v - 1]);
        EXPECT_EQ(s.read(r.plid).word(0), v);
    }
}

TEST(LineStore, OverflowFreeAndReuse)
{
    LineStore s(1, 2);
    for (Word v = 1; v <= 13; ++v)
        s.findOrInsert(lineOf(2, v, v));
    EXPECT_EQ(s.overflowLines(), 1u);
    auto r13 = s.find(lineOf(2, 13, 13));
    ASSERT_TRUE(r13.overflow);
    s.freeLine(r13.plid);
    EXPECT_EQ(s.overflowLines(), 0u);
    EXPECT_FALSE(s.find(lineOf(2, 13, 13)).found);
    // Flush limbo (no readers are pinned) so the freed overflow slot
    // returns to the free list, then the next spill reuses it.
    s.epochSynchronize();
    auto r14 = s.findOrInsert(lineOf(2, 14, 14));
    EXPECT_TRUE(r14.overflow);
    EXPECT_EQ(r14.plid, r13.plid);
}

TEST(LineStore, HomeBucketOfOverflowLine)
{
    LineStore s(1, 2);
    for (Word v = 1; v <= 13; ++v)
        s.findOrInsert(lineOf(2, v, v));
    auto r = s.find(lineOf(2, 13, 13));
    ASSERT_TRUE(r.overflow);
    EXPECT_EQ(s.bucketOfPlid(r.plid), 0u);
}

TEST(LineStore, TotalRefsSumsAllSlots)
{
    LineStore s(1 << 10, 2);
    auto a = s.findOrInsert(lineOf(2, 1, 0));
    auto b = s.findOrInsert(lineOf(2, 2, 0));
    s.addRef(a.plid, 3);
    s.addRef(b.plid, 2);
    EXPECT_EQ(s.totalRefs(), 5u);
}

// Signature behaviour: candidates are only probed on signature match.
TEST(LineStore, NoCandidatesWithoutSignatureMatch)
{
    LineStore s(1 << 4, 2);
    // Insert a bunch of lines; then probing for fresh content should
    // rarely report candidates (1/256 per occupied way). With <= 12
    // occupied ways in its bucket, zero candidates is the common case;
    // just verify the protocol never reports more candidates than
    // occupied ways and that found lines terminate the probe.
    for (Word v = 1; v <= 40; ++v)
        s.findOrInsert(lineOf(2, v, v * 3));
    auto miss = s.find(lineOf(2, 999999, 123456));
    EXPECT_FALSE(miss.found);
    EXPECT_LE(miss.candidates.size(), BucketLayout::kNumData);
}

} // namespace
} // namespace hicamp
