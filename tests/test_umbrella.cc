/**
 * @file
 * Compile-and-smoke test for the single-include public API
 * (core/hicamp.hh): a downstream application using only the umbrella
 * header can reach every public component.
 */

#include <gtest/gtest.h>

#include "core/hicamp.hh"

namespace hicamp {
namespace {

TEST(Umbrella, EverythingReachable)
{
    MemoryConfig cfg;
    cfg.numBuckets = 1 << 12;
    Hicamp hc(cfg);

    HString s(hc, "umbrella");
    HMap map(hc);
    map.set(s, HString(hc, "header"));
    EXPECT_EQ(map.get(s)->str(), "header");

    HArray<std::uint64_t> arr(hc, std::vector<std::uint64_t>{1, 2, 3});
    EXPECT_EQ(arr.get(1), 2u);

    HQueue q(hc);
    q.push(s);
    EXPECT_EQ(q.pop()->str(), "umbrella");

    HObject o(hc, 2);
    o.setWord(0, 5);
    EXPECT_EQ(o.getWord(0), 5u);

    HTable table(hc);
    table.insert(HString(hc, "row"));
    EXPECT_EQ(table.rowCount(), 1u);

    HicampCpu cpu(hc);
    Program p;
    p.emit(Op::Movi, 0, 0, 0, 7).emit(Op::Halt);
    cpu.run(p);
    EXPECT_EQ(cpu.reg(0), 7u);
}

} // namespace
} // namespace hicamp
