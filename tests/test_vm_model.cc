/**
 * @file
 * VM-hosting model tests: monotonicity and ordering invariants
 * (allocated >= page-shared >= HICAMP... with HICAMP always at least
 * as good as ideal page sharing), scaling behaviour per workload, and
 * the tile-level compaction shape of paper Figs. 9-10.
 */

#include <gtest/gtest.h>

#include "apps/vm/vm_model.hh"

namespace hicamp {
namespace {

double
ratio(std::uint64_t a, std::uint64_t b)
{
    return static_cast<double>(a) / static_cast<double>(b);
}

TEST(VmModel, OrderingInvariant)
{
    // For every workload and every scale: allocated >= page-shared,
    // and HICAMP within DAG overhead (9/64) of page sharing. At a
    // single VM the DAG overhead can leave HICAMP slightly above the
    // ideal page-sharing bound (as in Fig. 9's near-parity starting
    // points); once a few VMs share lines, HICAMP must win outright.
    for (const auto &p : VmProfile::tile()) {
        VmDedupModel model;
        for (int i = 0; i < 6; ++i) {
            model.addVm(p, 1000 + i);
            VmUsage u = model.measure();
            EXPECT_GE(u.allocatedBytes, u.pageSharedBytes) << p.name;
            EXPECT_LE(u.hicampBytes,
                      u.pageSharedBytes + u.pageSharedBytes / 4)
                << p.name;
            if (i >= 3)
                EXPECT_LE(u.hicampBytes, u.pageSharedBytes) << p.name;
            EXPECT_GT(u.hicampBytes, 0u) << p.name;
        }
    }
}

TEST(VmModel, AllocatedScalesLinearly)
{
    VmDedupModel model;
    auto p = VmProfile::databaseServer();
    model.addVm(p, 1);
    std::uint64_t one = model.measure().allocatedBytes;
    for (int i = 2; i <= 10; ++i)
        model.addVm(p, i);
    EXPECT_EQ(model.measure().allocatedBytes, one * 10);
    // Matches Fig. 9's DB curve: ~19 GB allocated at 10 VMs.
    EXPECT_NEAR(static_cast<double>(one * 10) / (1ull << 30), 19.0,
                1.0);
}

TEST(VmModel, DedupGrowsWithVmCount)
{
    // The more same-profile VMs, the larger the compaction factor.
    auto p = VmProfile::webServer();
    VmDedupModel model;
    model.addVm(p, 1);
    double r1 = ratio(model.measure().allocatedBytes,
                      model.measure().hicampBytes);
    for (int i = 2; i <= 10; ++i)
        model.addVm(p, i);
    VmUsage u = model.measure();
    double r10 = ratio(u.allocatedBytes, u.hicampBytes);
    EXPECT_GT(r10, r1 * 1.5);
}

TEST(VmModel, StandbyCompactsFarMoreThanDatabase)
{
    // Fig. 9's extremes: idle standby servers dedup ~10x; database
    // servers with unique buffer pools dedup ~2x.
    auto run = [](const VmProfile &p) {
        VmDedupModel m;
        for (int i = 1; i <= 10; ++i)
            m.addVm(p, i);
        VmUsage u = m.measure();
        return ratio(u.allocatedBytes, u.hicampBytes);
    };
    double standby = run(VmProfile::standbyServer());
    double db = run(VmProfile::databaseServer());
    EXPECT_GT(standby, 6.0);
    EXPECT_LT(db, 3.0);
    EXPECT_GT(db, 1.3);
}

TEST(VmModel, HicampBeatsPageSharingEverywhere)
{
    // Paper: HICAMP 1.86x-10.87x vs page sharing 1.44x-5.21x at
    // 10 VMs; per workload HICAMP must dominate.
    for (const auto &p : VmProfile::tile()) {
        VmDedupModel m;
        for (int i = 1; i <= 10; ++i)
            m.addVm(p, i);
        VmUsage u = m.measure();
        double hicamp = ratio(u.allocatedBytes, u.hicampBytes);
        double sharing = ratio(u.allocatedBytes, u.pageSharedBytes);
        EXPECT_GT(hicamp, sharing) << p.name;
        EXPECT_GT(hicamp, 1.5) << p.name;
    }
}

TEST(VmModel, TileCompactionShape)
{
    // Fig. 10: whole tiles (6 mixed VMs each). At 10 tiles the paper
    // reports >3.55x for HICAMP vs ~1.8x for ideal page sharing.
    VmDedupModel m;
    int seed = 0;
    for (int t = 1; t <= 10; ++t) {
        for (const auto &p : VmProfile::tile())
            m.addVm(p, 5000 + seed++);
    }
    VmUsage u = m.measure();
    double hicamp = ratio(u.allocatedBytes, u.hicampBytes);
    double sharing = ratio(u.allocatedBytes, u.pageSharedBytes);
    EXPECT_GT(hicamp, 2.7);
    EXPECT_LT(hicamp, 8.0);
    EXPECT_GT(sharing, 1.3);
    EXPECT_LT(sharing, 3.0);
    EXPECT_GT(hicamp, sharing * 1.5);
}

TEST(VmModel, MixedOsPoolsDoNotCrossDedup)
{
    // Two VMs with different OS images share almost nothing except
    // the zero page and the global common pool.
    auto a = VmProfile::webServer();   // linux32
    auto b = VmProfile::javaServer();  // win64
    VmDedupModel mixed;
    mixed.addVm(a, 1);
    mixed.addVm(b, 2);
    VmDedupModel separate_a;
    separate_a.addVm(a, 1);
    VmDedupModel separate_b;
    separate_b.addVm(b, 2);
    std::uint64_t sum = separate_a.measure().hicampBytes +
                        separate_b.measure().hicampBytes;
    VmUsage u = mixed.measure();
    EXPECT_NEAR(static_cast<double>(u.hicampBytes),
                static_cast<double>(sum), 0.02 * sum);
}

} // namespace
} // namespace hicamp
