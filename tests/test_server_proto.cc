/**
 * @file
 * Protocol-parser and end-to-end server tests (DESIGN.md §14):
 * commands split across reads at every byte boundary, pipelined
 * multi-gets, oversized keys and garbage input, quit mid-pipeline,
 * and per-request graceful degradation — all against both the bare
 * ProtoParser and a live loopback McServer, with the heap audited
 * after every server scenario.
 */

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <string>
#include <vector>

#include "audit_check.hh"
#include "server/proto.hh"
#include "server/server.hh"
#include "server/store.hh"

namespace hicamp::server {
namespace {

/**
 * Feed @p input to a parser in chunks of @p chunk bytes, collecting
 * every parsed command — the test double of the connection read loop
 * (buffer, consume, compact).
 */
std::vector<McCommand>
parseChunked(std::string_view input, std::size_t chunk)
{
    ProtoParser p;
    std::string buf;
    std::vector<McCommand> cmds;
    std::size_t fed = 0;
    while (fed < input.size() || !buf.empty()) {
        if (fed < input.size()) {
            const std::size_t n =
                std::min(chunk, input.size() - fed);
            buf.append(input.substr(fed, n));
            fed += n;
        }
        bool progress = false;
        for (;;) {
            std::size_t consumed = 0;
            McCommand cmd;
            const ParseResult r = p.step(buf, consumed, cmd);
            // own() before erase: the views alias buf, and erase
            // shifts the tail bytes over them.
            if (r == ParseResult::Ok)
                cmd.own();
            buf.erase(0, consumed);
            if (r == ParseResult::Ok) {
                cmds.push_back(std::move(cmd));
                progress = true;
                continue;
            }
            EXPECT_NE(r, ParseResult::Fatal);
            break;
        }
        if (fed >= input.size() && !progress)
            break; // parser is starved: whatever's left is partial
    }
    return cmds;
}

TEST(ServerProto, PipelinedBurstParsesWithoutCopies)
{
    ProtoParser p;
    const std::string burst = "get a bb ccc\r\n"
                              "set k 7 0 5\r\nhello\r\n"
                              "delete k noreply\r\n"
                              "incr n 42\r\n"
                              "version\r\n";
    std::string_view rest = burst;
    std::vector<McCommand> cmds;
    for (;;) {
        std::size_t consumed = 0;
        McCommand cmd;
        if (p.step(rest, consumed, cmd) != ParseResult::Ok)
            break;
        rest.remove_prefix(consumed);
        cmds.push_back(std::move(cmd));
    }
    ASSERT_EQ(cmds.size(), 5u);
    EXPECT_EQ(cmds[0].op, McCommand::Op::Get);
    ASSERT_EQ(cmds[0].keys.size(), 3u);
    EXPECT_EQ(cmds[0].keys[1], "bb");
    EXPECT_EQ(cmds[1].op, McCommand::Op::Set);
    EXPECT_EQ(cmds[1].flags, 7u);
    // Zero-copy: the data view aliases the input buffer.
    EXPECT_EQ(cmds[1].data, "hello");
    EXPECT_GE(cmds[1].data.data(), burst.data());
    EXPECT_LT(cmds[1].data.data(), burst.data() + burst.size());
    EXPECT_EQ(cmds[2].op, McCommand::Op::Delete);
    EXPECT_TRUE(cmds[2].noreply);
    EXPECT_EQ(cmds[3].op, McCommand::Op::Incr);
    EXPECT_EQ(cmds[3].delta, 42u);
    EXPECT_EQ(cmds[4].op, McCommand::Op::Version);
}

TEST(ServerProto, TornReadsParseIdenticallyAtEveryChunkSize)
{
    const std::string input = "set key1 3 0 8\r\nabc\r\nxyz\r\n"
                              "get key1 key2\r\n"
                              "decr key1 9 noreply\r\n";
    const auto whole = parseChunked(input, input.size());
    ASSERT_EQ(whole.size(), 3u);
    for (std::size_t chunk = 1; chunk <= 7; ++chunk) {
        const auto cmds = parseChunked(input, chunk);
        ASSERT_EQ(cmds.size(), whole.size()) << "chunk " << chunk;
        EXPECT_EQ(cmds[0].op, McCommand::Op::Set);
        // The data block may itself contain CRLF; byte count rules.
        EXPECT_EQ(cmds[0].ownedData, "abc\r\nxyz");
        EXPECT_EQ(cmds[1].op, McCommand::Op::Get);
        ASSERT_EQ(cmds[1].ownedKeys.size(), 2u);
        EXPECT_EQ(cmds[1].ownedKeys[0], "key1");
        EXPECT_EQ(cmds[2].op, McCommand::Op::Decr);
        EXPECT_TRUE(cmds[2].noreply);
    }
}

TEST(ServerProto, OversizedKeySwallowsDataBlockAndResyncs)
{
    const std::string bigKey(kMaxKeyBytes + 1, 'k');
    const std::string input = "set " + bigKey +
                              " 0 0 6\r\nstaled\r\nget ok\r\n";
    // Chunked feeding exercises the cross-read drain path too.
    for (std::size_t chunk : {input.size(), std::size_t{3}}) {
        const auto cmds = parseChunked(input, chunk);
        ASSERT_EQ(cmds.size(), 2u) << "chunk " << chunk;
        EXPECT_EQ(cmds[0].op, McCommand::Op::BadLine);
        EXPECT_NE(cmds[0].error.find("CLIENT_ERROR"),
                  std::string::npos);
        // The stream resynchronized: the next command parses clean.
        EXPECT_EQ(cmds[1].op, McCommand::Op::Get);
        ASSERT_EQ(cmds[1].ownedKeys.size(), 1u);
        EXPECT_EQ(cmds[1].ownedKeys[0], "ok");
    }
}

TEST(ServerProto, OversizedGetKeyRejectedInline)
{
    const std::string bigKey(kMaxKeyBytes + 1, 'g');
    const auto cmds =
        parseChunked("get " + bigKey + "\r\nget ok\r\n", 64);
    ASSERT_EQ(cmds.size(), 2u);
    EXPECT_EQ(cmds[0].op, McCommand::Op::BadLine);
    EXPECT_EQ(cmds[1].op, McCommand::Op::Get);
}

TEST(ServerProto, GarbageAndMalformedLines)
{
    const auto cmds = parseChunked("blargh quux\r\n"
                                   "set onlykey\r\n"
                                   "incr k notanumber\r\n"
                                   "\r\n"
                                   "stats\r\n",
                                   9);
    ASSERT_EQ(cmds.size(), 5u);
    EXPECT_EQ(cmds[0].op, McCommand::Op::BadLine);
    EXPECT_EQ(cmds[0].error, std::string(resp::kError));
    EXPECT_EQ(cmds[1].op, McCommand::Op::BadLine);
    EXPECT_NE(cmds[1].error.find("CLIENT_ERROR"), std::string::npos);
    EXPECT_EQ(cmds[2].op, McCommand::Op::BadLine);
    EXPECT_NE(cmds[2].error.find("numeric"), std::string::npos);
    EXPECT_EQ(cmds[3].op, McCommand::Op::BadLine); // empty line
    EXPECT_EQ(cmds[4].op, McCommand::Op::Stats);
}

TEST(ServerProto, BadDataChunkDetected)
{
    // Client announces 5 bytes but the CRLF is not where it must be.
    ProtoParser p;
    std::size_t consumed = 0;
    McCommand cmd;
    ASSERT_EQ(p.step("set k 0 0 5\r\nhelloXXget k\r\n", consumed, cmd),
              ParseResult::Ok);
    EXPECT_EQ(cmd.op, McCommand::Op::BadLine);
    EXPECT_NE(cmd.error.find("bad data chunk"), std::string::npos);
}

TEST(ServerProto, UnterminatedRunawayLineIsFatal)
{
    ProtoParser p;
    const std::string junk(kMaxLineBytes + 2, 'x');
    std::size_t consumed = 0;
    McCommand cmd;
    EXPECT_EQ(p.step(junk, consumed, cmd), ParseResult::Fatal);
}

TEST(ServerProto, NeedMoreConsumesNothingOnGoodCommands)
{
    ProtoParser p;
    std::size_t consumed = 0;
    McCommand cmd;
    // Data block announced but not buffered: nothing consumed, the
    // command re-parses whole once the rest lands.
    EXPECT_EQ(p.step("set k 0 0 10\r\nhalf", consumed, cmd),
              ParseResult::NeedMore);
    EXPECT_EQ(consumed, 0u);
    EXPECT_EQ(p.step("set k 0 0 10\r\nhalf+more+\r\n", consumed, cmd),
              ParseResult::Ok);
    EXPECT_EQ(cmd.op, McCommand::Op::Set);
    EXPECT_EQ(cmd.data, "half+more+");
}

// ---------------------------------------------------------------------
// End-to-end over loopback
// ---------------------------------------------------------------------

/** Minimal blocking client for one test connection. */
class TestClient
{
  public:
    explicit TestClient(std::uint16_t port)
    {
        fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
        EXPECT_GE(fd_, 0);
        timeval tv{5, 0};
        ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(port);
        ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
        EXPECT_EQ(::connect(fd_,
                            reinterpret_cast<sockaddr *>(&addr),
                            sizeof addr),
                  0)
            << std::strerror(errno);
    }

    ~TestClient()
    {
        if (fd_ >= 0)
            ::close(fd_);
    }

    void
    send(std::string_view bytes)
    {
        std::size_t off = 0;
        while (off < bytes.size()) {
            const ssize_t n =
                ::write(fd_, bytes.data() + off, bytes.size() - off);
            ASSERT_GT(n, 0);
            off += static_cast<std::size_t>(n);
        }
    }

    /** Read until @p bytes bytes arrived (or timeout fails the test). */
    std::string
    recvN(std::size_t bytes)
    {
        std::string out;
        char buf[4096];
        while (out.size() < bytes) {
            const ssize_t n = ::read(fd_, buf, sizeof buf);
            if (n <= 0)
                break;
            out.append(buf, static_cast<std::size_t>(n));
        }
        return out;
    }

    /** Read everything until the server closes the connection. */
    std::string
    recvUntilClose()
    {
        std::string out;
        char buf[4096];
        for (;;) {
            const ssize_t n = ::read(fd_, buf, sizeof buf);
            if (n <= 0)
                break;
            out.append(buf, static_cast<std::size_t>(n));
        }
        return out;
    }

  private:
    int fd_ = -1;
};

struct ServerFixture {
    ServerFixture(unsigned workers = 2)
        : hc(smallConfig()), store(hc), srv(store, config(workers))
    {
        srv.start();
    }

    static MemoryConfig
    smallConfig()
    {
        MemoryConfig c;
        c.numBuckets = 1 << 12;
        return c;
    }

    static ServerConfig
    config(unsigned workers)
    {
        ServerConfig c;
        c.workers = workers;
        c.maxConns = 64;
        c.ringSlots = 16;
        return c;
    }

    Hicamp hc;
    McStore store;
    McServer srv;
};

TEST(ServerProto, EndToEndSetGetSplitAcrossWrites)
{
    ServerFixture f;
    TestClient cli(f.srv.port());
    // The set command and its data block arrive in three writes torn
    // at awkward places.
    cli.send("set torn 3 0 1");
    cli.send("1\r\nhello");
    cli.send(" world\r\nget torn\r\nquit\r\n");
    const std::string got = cli.recvUntilClose();
    EXPECT_EQ(got,
              "STORED\r\nVALUE torn 3 11\r\nhello world\r\nEND\r\n");
    f.srv.stop();
    expectCleanAudit(f.hc);
}

TEST(ServerProto, EndToEndPipelinedMultiGet)
{
    ServerFixture f;
    f.store.set("a", 1, "AA");
    f.store.set("c", 3, "CCCC");
    TestClient cli(f.srv.port());
    cli.send("get a b c\r\nget a\r\nquit\r\n");
    const std::string got = cli.recvUntilClose();
    EXPECT_EQ(got, "VALUE a 1 2\r\nAA\r\n"
                   "VALUE c 3 4\r\nCCCC\r\nEND\r\n"
                   "VALUE a 1 2\r\nAA\r\nEND\r\n");
    f.srv.stop();
    expectCleanAudit(f.hc);
}

TEST(ServerProto, EndToEndQuitMidPipeline)
{
    ServerFixture f;
    f.store.set("k", 0, "v");
    TestClient cli(f.srv.port());
    // Everything before quit is answered; everything after is dead.
    cli.send("get k\r\nquit\r\nget k\r\nget k\r\n");
    const std::string got = cli.recvUntilClose();
    EXPECT_EQ(got, "VALUE k 0 1\r\nv\r\nEND\r\n");
    f.srv.stop();
    expectCleanAudit(f.hc);
}

TEST(ServerProto, EndToEndGarbageKeepsConnectionUsable)
{
    ServerFixture f;
    TestClient cli(f.srv.port());
    cli.send("what even is this\r\nset k 0 0 2\r\nok\r\n"
             "get k\r\nquit\r\n");
    const std::string got = cli.recvUntilClose();
    EXPECT_EQ(got, "ERROR\r\nSTORED\r\nVALUE k 0 2\r\nok\r\nEND\r\n");
    f.srv.stop();
    expectCleanAudit(f.hc);
}

TEST(ServerProto, EndToEndAddReplaceIncrDelete)
{
    ServerFixture f;
    TestClient cli(f.srv.port());
    cli.send("add n 0 0 2\r\n40\r\n"
             "add n 0 0 2\r\n99\r\n"
             "replace m 0 0 1\r\nx\r\n"
             "incr n 2\r\n"
             "decr n 100\r\n"
             "delete n\r\n"
             "delete n\r\n"
             "quit\r\n");
    const std::string got = cli.recvUntilClose();
    EXPECT_EQ(got, "STORED\r\nNOT_STORED\r\nNOT_STORED\r\n"
                   "42\r\n0\r\nDELETED\r\nNOT_FOUND\r\n");
    f.srv.stop();
    expectCleanAudit(f.hc);
}

TEST(ServerProto, EndToEndNoreplySuppressesResponses)
{
    ServerFixture f;
    TestClient cli(f.srv.port());
    cli.send("set a 0 0 1 noreply\r\nA\r\n"
             "set b 0 0 1 noreply\r\nB\r\n"
             "get a b\r\nquit\r\n");
    const std::string got = cli.recvUntilClose();
    EXPECT_EQ(got,
              "VALUE a 0 1\r\nA\r\nVALUE b 0 1\r\nB\r\nEND\r\n");
    f.srv.stop();
    expectCleanAudit(f.hc);
}

TEST(ServerProto, EndToEndOversizedKeyAnswersClientError)
{
    ServerFixture f;
    const std::string bigKey(kMaxKeyBytes + 1, 'z');
    TestClient cli(f.srv.port());
    cli.send("set " + bigKey + " 0 0 4\r\njunk\r\nget ok\r\nquit\r\n");
    const std::string got = cli.recvUntilClose();
    EXPECT_EQ(got,
              "CLIENT_ERROR bad command line format\r\nEND\r\n");
    f.srv.stop();
    expectCleanAudit(f.hc);
}

TEST(ServerProto, EndToEndFaultInjectionDegradesPerRequest)
{
    // Aggressive alloc-fault injection: some SETs answer
    // SERVER_ERROR, nothing aborts, and the heap audits clean.
    MemoryConfig mc;
    mc.numBuckets = 1 << 12;
    mc.faults.allocFailP = 0.05;
    mc.faults.seed = 7;
    Hicamp hc(mc);
    McStore store(hc);
    ServerConfig sc;
    sc.workers = 2;
    McServer srv(store, sc);
    srv.start();
    {
        TestClient cli(srv.port());
        std::string script;
        for (int i = 0; i < 200; ++i) {
            const std::string payload(64 + i, 'p');
            script += "set key" + std::to_string(i) + " 0 0 " +
                      std::to_string(payload.size()) + "\r\n" +
                      payload + "\r\n";
        }
        script += "quit\r\n";
        cli.send(script);
        const std::string got = cli.recvUntilClose();
        std::size_t stored = 0, oom = 0, pos = 0;
        std::string line;
        while (pos < got.size()) {
            const std::size_t nl = got.find("\r\n", pos);
            ASSERT_NE(nl, std::string::npos);
            line = got.substr(pos, nl - pos);
            pos = nl + 2;
            if (line == "STORED")
                ++stored;
            else if (line == "SERVER_ERROR out of memory")
                ++oom;
            else
                FAIL() << "unexpected response line: " << line;
        }
        EXPECT_EQ(stored + oom, 200u);
        EXPECT_GT(stored, 0u);
        const auto snap = srv.metrics().snapshot();
        EXPECT_EQ(snap.counter("server.oom_errors"), oom);
    }
    srv.stop();
    // Injection off for the audit itself; the heap must be leak-free
    // even though some requests failed mid-build.
    hc.mem.faults().reconfigure(FaultConfig{});
    expectCleanAudit(hc);
}

} // namespace
} // namespace hicamp::server
