/**
 * @file
 * Reader-side property tests: readWord/materialize consistency,
 * children() expansion of path-compacted and inline entries (the
 * memory-access-free descents compaction buys), countLines agreement
 * with live-line accounting, and traffic expectations of compacted
 * descents.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "seg/builder.hh"
#include "seg/reader.hh"

namespace hicamp {
namespace {

struct ReaderFixture : ::testing::TestWithParam<unsigned> {
    ReaderFixture() : mem(cfg()), builder(mem), reader(mem) {}

    MemoryConfig
    cfg() const
    {
        MemoryConfig c;
        c.lineBytes = GetParam();
        c.numBuckets = 1 << 12;
        return c;
    }

    Memory mem;
    SegBuilder builder;
    SegReader reader;
};

TEST_P(ReaderFixture, ReadWordAgreesWithMaterialize)
{
    Rng rng(11);
    std::vector<Word> w(512);
    for (auto &x : w)
        x = rng.chance(0.4) ? 0 : rng.next();
    std::vector<WordMeta> m(w.size(), WordMeta::raw());
    SegDesc d = builder.buildWords(w.data(), m.data(), w.size());

    std::vector<Word> all;
    std::vector<WordMeta> allm;
    reader.materialize(d.root, d.height, all, allm);
    for (std::uint64_t i = 0; i < w.size(); ++i) {
        EXPECT_EQ(all[i], w[i]);
        EXPECT_EQ(reader.readWord(d.root, d.height, i), w[i]);
    }
    // Padding beyond the logical length is zero.
    for (std::uint64_t i = w.size(); i < all.size(); i += 13)
        EXPECT_EQ(all[i], 0u);
}

TEST_P(ReaderFixture, ChildrenOfZeroAreZero)
{
    Entry kids[kMaxLineWords];
    reader.children(Entry::zero(), 3, kids);
    for (unsigned i = 0; i < mem.fanout(); ++i)
        EXPECT_TRUE(kids[i].isZero());
}

TEST_P(ReaderFixture, PathCompactedDescentCostsNoMemory)
{
    // A single far element: the chain of single-child nodes is packed
    // into entry metadata, so descending costs far fewer line reads
    // than the logical depth.
    std::vector<Word> w(1 << 14, 0);
    w[12345] = ~Word{0};
    std::vector<WordMeta> m(w.size(), WordMeta::raw());
    SegDesc d = builder.buildWords(w.data(), m.data(), w.size());

    mem.coldResetTraffic();
    std::uint64_t reads0 = mem.readOps();
    EXPECT_EQ(reader.readWord(d.root, d.height, 12345), ~Word{0});
    std::uint64_t line_reads = mem.readOps() - reads0;
    // Logical depth is log_F(16384); physical reads bounded by the
    // few real lines the compacted DAG has.
    std::unordered_set<Plid> seen;
    std::uint64_t lines = reader.countLines(d.root, d.height, seen);
    EXPECT_LE(line_reads, lines);
    EXPECT_LE(lines, 4u);
}

TEST_P(ReaderFixture, InlineEntriesExpandWithoutMemoryAccess)
{
    // Small values inline; reading them requires no line fetches at
    // all once the root entry is in hand.
    std::vector<Word> w = {1, 2, 3, 4, 5, 6, 7, 8};
    std::vector<WordMeta> m(w.size(), WordMeta::raw());
    SegDesc d = builder.buildWords(w.data(), m.data(), w.size());

    if (d.root.meta.isInline()) {
        mem.coldResetTraffic();
        for (std::uint64_t i = 0; i < w.size(); ++i)
            EXPECT_EQ(reader.readWord(d.root, d.height, i), w[i]);
        EXPECT_EQ(mem.readOps(), 0u);
        EXPECT_EQ(mem.liveLines(), 0u); // fully inline: zero lines
    }
}

TEST_P(ReaderFixture, CountLinesMatchesLiveLinesForSoleSegment)
{
    Rng rng(13);
    std::vector<Word> w(1024);
    for (auto &x : w)
        x = rng.next(); // distinct high-entropy words: no dedup
    std::vector<WordMeta> m(w.size(), WordMeta::raw());
    SegDesc d = builder.buildWords(w.data(), m.data(), w.size());
    std::unordered_set<Plid> seen;
    std::uint64_t counted = reader.countLines(d.root, d.height, seen);
    EXPECT_EQ(counted, mem.liveLines());
}

TEST_P(ReaderFixture, CountLinesSharesAcrossSegments)
{
    std::vector<Word> w(256);
    Rng rng(17);
    for (auto &x : w)
        x = rng.next();
    std::vector<WordMeta> m(w.size(), WordMeta::raw());
    SegDesc d1 = builder.buildWords(w.data(), m.data(), w.size());
    w[0] ^= 1; // nearly identical sibling
    SegDesc d2 = builder.buildWords(w.data(), m.data(), w.size());

    std::unordered_set<Plid> seen;
    std::uint64_t first = reader.countLines(d1.root, d1.height, seen);
    std::uint64_t extra = reader.countLines(d2.root, d2.height, seen);
    EXPECT_LT(extra, first / 4); // only the changed path is new
    EXPECT_EQ(first + extra, mem.liveLines());
}

TEST_P(ReaderFixture, NextNonZeroAtCoverageBoundary)
{
    std::vector<Word> w(64, 0);
    w[63] = 5;
    std::vector<WordMeta> m(w.size(), WordMeta::raw());
    SegDesc d = builder.buildWords(w.data(), m.data(), w.size());
    auto hit = reader.nextNonZero(d.root, d.height, 0);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(*hit, 63u);
    EXPECT_FALSE(reader.nextNonZero(d.root, d.height, 64).has_value());
}

TEST_P(ReaderFixture, NoTrafficModeTouchesNoCounters)
{
    std::vector<Word> w(512);
    Rng rng(19);
    for (auto &x : w)
        x = rng.next();
    std::vector<WordMeta> m(w.size(), WordMeta::raw());
    SegDesc d = builder.buildWords(w.data(), m.data(), w.size());

    SegReader quiet(mem, /*count_traffic=*/false);
    mem.coldResetTraffic();
    std::vector<Word> out;
    std::vector<WordMeta> outm;
    quiet.materialize(d.root, d.height, out, outm);
    EXPECT_EQ(mem.dram().total(), 0u);
    EXPECT_EQ(mem.readOps(), 0u);
    EXPECT_EQ(out[5], w[5]);
}

INSTANTIATE_TEST_SUITE_P(AllWidths, ReaderFixture,
                         ::testing::Values(16u, 32u, 64u));

} // namespace
} // namespace hicamp
