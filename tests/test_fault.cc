/**
 * @file
 * Fault-injection tests for the §3.1 error-detection property: the
 * memory system recomputes the content hash of every line fetched
 * from DRAM and compares it to the hash bucket it was read from, so
 * corruptions that change the content's hash bucket are detected.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include <unistd.h>

#include "common/fault.hh"
#include "mem/memory.hh"

namespace hicamp {
namespace {

MemoryConfig
cfg()
{
    MemoryConfig c;
    c.numBuckets = 1 << 12;
    // These tests place corruption by hand and assert exact detection
    // counts; the randomized injector would double-count.
    c.faults.allowEnvOverride = false;
    return c;
}

TEST(FaultInjection, CorruptionDetectedOnDramFetch)
{
    Memory mem(cfg());
    Line l = mem.makeLine();
    l.set(0, 0x1111);
    l.set(1, 0x2222);
    Plid p = mem.lookup(l);

    // Flip bits in DRAM behind the cache's back, then force the next
    // read to miss (cold caches).
    mem.store().corruptForTest(p, 0, 0xf0f0f0f0ull);
    mem.coldResetTraffic();
    EXPECT_EQ(mem.errorsDetected(), 0u);
    Line got = mem.readLine(p);
    EXPECT_EQ(mem.errorsDetected(), 1u);
    // The model still returns the (corrupt) bits; detection is the
    // architectural property being tested.
    EXPECT_NE(got.word(0), 0x1111u);
}

TEST(FaultInjection, CachedReadsAreNotRechecked)
{
    Memory mem(cfg());
    Line l = mem.makeLine();
    l.set(0, 42);
    Plid p = mem.lookup(l);
    // Line still resident in LLC: corruption in DRAM is invisible
    // until the line is actually re-fetched.
    mem.store().corruptForTest(p, 0, 0xffull << 32);
    (void)mem.readLine(p);
    EXPECT_EQ(mem.errorsDetected(), 0u);
}

TEST(FaultInjection, MultipleCorruptLinesAllDetected)
{
    Memory mem(cfg());
    std::vector<Plid> plids;
    for (Word v = 1; v <= 50; ++v) {
        Line l = mem.makeLine();
        l.set(0, v);
        l.set(1, v * 977);
        plids.push_back(mem.lookup(l));
    }
    for (std::size_t i = 0; i < plids.size(); i += 5)
        mem.store().corruptForTest(plids[i], 1, 0xdeadbeefull);
    mem.coldResetTraffic();
    for (Plid p : plids)
        (void)mem.readLine(p);
    // 10 corrupted lines; each detected unless the corruption lands
    // back in the same bucket (1/4096 per line).
    EXPECT_GE(mem.errorsDetected(), 9u);
    EXPECT_LE(mem.errorsDetected(), 10u);
}

TEST(FaultInjection, CleanLinesNeverFlagged)
{
    Memory mem(cfg());
    std::vector<Plid> plids;
    for (Word v = 1; v <= 200; ++v) {
        Line l = mem.makeLine();
        l.set(0, v * 31);
        plids.push_back(mem.lookup(l));
    }
    mem.coldResetTraffic();
    for (Plid p : plids)
        (void)mem.readLine(p);
    EXPECT_EQ(mem.errorsDetected(), 0u);
}

/**
 * HICAMP_FAULT_* environment overlay validation: malformed values and
 * unknown keys must throw FaultConfigError, never silently clamp or
 * ignore (a typo'd fault plan quietly running the un-faulted
 * experiment was the original bug).
 *
 * The fixture saves and clears every HICAMP_FAULT_* variable so the
 * suite behaves the same under CI's suite-wide injection overlay, and
 * restores the environment afterwards.
 */
class FaultEnvOverlay : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        for (char **e = environ; e != nullptr && *e != nullptr; ++e) {
            const std::string entry(*e);
            if (entry.rfind("HICAMP_FAULT_", 0) != 0)
                continue;
            const auto eq = entry.find('=');
            saved_.emplace_back(entry.substr(0, eq),
                                entry.substr(eq + 1));
        }
        for (const auto &kv : saved_)
            ::unsetenv(kv.first.c_str());
    }

    void
    TearDown() override
    {
        clearOverlay();
        for (const auto &kv : saved_)
            ::setenv(kv.first.c_str(), kv.second.c_str(), 1);
    }

    void
    clearOverlay()
    {
        for (const char *k :
             {"HICAMP_FAULT_SEED", "HICAMP_FAULT_ALLOC_P",
              "HICAMP_FAULT_ALLOC_EVERY", "HICAMP_FAULT_FLIP_P",
              "HICAMP_FAULT_FLIP_EVERY", "HICAMP_FAULT_SATURATE_EVERY",
              "HICAMP_FAULT_TYPO_KEY"}) {
            ::unsetenv(k);
        }
    }

    static void
    expectRejected(const char *key, const char *value)
    {
        ::setenv(key, value, 1);
        EXPECT_THROW((void)FaultConfig::fromEnv({}), FaultConfigError)
            << key << "='" << value << "' was accepted";
        ::unsetenv(key);
    }

  private:
    std::vector<std::pair<std::string, std::string>> saved_;
};

TEST_F(FaultEnvOverlay, NegativeProbabilityRejected)
{
    expectRejected("HICAMP_FAULT_ALLOC_P", "-0.25");
    expectRejected("HICAMP_FAULT_FLIP_P", "-1e-3");
}

TEST_F(FaultEnvOverlay, ProbabilityAboveOneRejected)
{
    expectRejected("HICAMP_FAULT_ALLOC_P", "1.5");
    expectRejected("HICAMP_FAULT_FLIP_P", "2");
}

TEST_F(FaultEnvOverlay, NonNumericProbabilityRejected)
{
    expectRejected("HICAMP_FAULT_ALLOC_P", "banana");
    expectRejected("HICAMP_FAULT_ALLOC_P", "0.5x");
    expectRejected("HICAMP_FAULT_FLIP_P", "");
    expectRejected("HICAMP_FAULT_FLIP_P", "nan");
    expectRejected("HICAMP_FAULT_FLIP_P", "inf");
}

TEST_F(FaultEnvOverlay, MalformedCountRejected)
{
    expectRejected("HICAMP_FAULT_ALLOC_EVERY", "-3");
    expectRejected("HICAMP_FAULT_FLIP_EVERY", "7q");
    expectRejected("HICAMP_FAULT_SATURATE_EVERY", "");
    expectRejected("HICAMP_FAULT_SEED", "0xzz");
}

TEST_F(FaultEnvOverlay, UnknownKeyRejected)
{
    ::setenv("HICAMP_FAULT_TYPO_KEY", "1", 1);
    EXPECT_THROW((void)FaultConfig::fromEnv({}), FaultConfigError);
    ::unsetenv("HICAMP_FAULT_TYPO_KEY");
}

TEST_F(FaultEnvOverlay, ValidOverlayParsed)
{
    ::setenv("HICAMP_FAULT_SEED", "0x2a", 1);
    ::setenv("HICAMP_FAULT_ALLOC_P", "0.001", 1);
    ::setenv("HICAMP_FAULT_ALLOC_EVERY", "10", 1);
    ::setenv("HICAMP_FAULT_FLIP_P", "0", 1);
    ::setenv("HICAMP_FAULT_FLIP_EVERY", "0x10", 1);
    ::setenv("HICAMP_FAULT_SATURATE_EVERY", "5", 1);
    const FaultConfig c = FaultConfig::fromEnv({});
    EXPECT_EQ(c.seed, 0x2au);
    EXPECT_DOUBLE_EQ(c.allocFailP, 0.001);
    EXPECT_EQ(c.allocFailEvery, 10u);
    EXPECT_DOUBLE_EQ(c.bitFlipP, 0.0);
    EXPECT_EQ(c.bitFlipEvery, 16u);
    EXPECT_EQ(c.saturateEvery, 5u);
}

TEST_F(FaultEnvOverlay, EmptyOverlayKeepsBase)
{
    FaultConfig base;
    base.seed = 7;
    base.allocFailEvery = 3;
    const FaultConfig c = FaultConfig::fromEnv(base);
    EXPECT_EQ(c.seed, 7u);
    EXPECT_EQ(c.allocFailEvery, 3u);
}

} // namespace
} // namespace hicamp
