/**
 * @file
 * Fault-injection tests for the §3.1 error-detection property: the
 * memory system recomputes the content hash of every line fetched
 * from DRAM and compares it to the hash bucket it was read from, so
 * corruptions that change the content's hash bucket are detected.
 */

#include <gtest/gtest.h>

#include "mem/memory.hh"

namespace hicamp {
namespace {

MemoryConfig
cfg()
{
    MemoryConfig c;
    c.numBuckets = 1 << 12;
    // These tests place corruption by hand and assert exact detection
    // counts; the randomized injector would double-count.
    c.faults.allowEnvOverride = false;
    return c;
}

TEST(FaultInjection, CorruptionDetectedOnDramFetch)
{
    Memory mem(cfg());
    Line l = mem.makeLine();
    l.set(0, 0x1111);
    l.set(1, 0x2222);
    Plid p = mem.lookup(l);

    // Flip bits in DRAM behind the cache's back, then force the next
    // read to miss (cold caches).
    mem.store().corruptForTest(p, 0, 0xf0f0f0f0ull);
    mem.coldResetTraffic();
    EXPECT_EQ(mem.errorsDetected(), 0u);
    Line got = mem.readLine(p);
    EXPECT_EQ(mem.errorsDetected(), 1u);
    // The model still returns the (corrupt) bits; detection is the
    // architectural property being tested.
    EXPECT_NE(got.word(0), 0x1111u);
}

TEST(FaultInjection, CachedReadsAreNotRechecked)
{
    Memory mem(cfg());
    Line l = mem.makeLine();
    l.set(0, 42);
    Plid p = mem.lookup(l);
    // Line still resident in LLC: corruption in DRAM is invisible
    // until the line is actually re-fetched.
    mem.store().corruptForTest(p, 0, 0xffull << 32);
    (void)mem.readLine(p);
    EXPECT_EQ(mem.errorsDetected(), 0u);
}

TEST(FaultInjection, MultipleCorruptLinesAllDetected)
{
    Memory mem(cfg());
    std::vector<Plid> plids;
    for (Word v = 1; v <= 50; ++v) {
        Line l = mem.makeLine();
        l.set(0, v);
        l.set(1, v * 977);
        plids.push_back(mem.lookup(l));
    }
    for (std::size_t i = 0; i < plids.size(); i += 5)
        mem.store().corruptForTest(plids[i], 1, 0xdeadbeefull);
    mem.coldResetTraffic();
    for (Plid p : plids)
        (void)mem.readLine(p);
    // 10 corrupted lines; each detected unless the corruption lands
    // back in the same bucket (1/4096 per line).
    EXPECT_GE(mem.errorsDetected(), 9u);
    EXPECT_LE(mem.errorsDetected(), 10u);
}

TEST(FaultInjection, CleanLinesNeverFlagged)
{
    Memory mem(cfg());
    std::vector<Plid> plids;
    for (Word v = 1; v <= 200; ++v) {
        Line l = mem.makeLine();
        l.set(0, v * 31);
        plids.push_back(mem.lookup(l));
    }
    mem.coldResetTraffic();
    for (Plid p : plids)
        (void)mem.readLine(p);
    EXPECT_EQ(mem.errorsDetected(), 0u);
}

} // namespace
} // namespace hicamp
