/**
 * @file
 * Graceful-degradation tests: finite capacity, transactional OOM
 * rollback, bounded retries and the deterministic fault injector.
 *
 * Every scenario drives the memory system into a failure — capacity
 * exhaustion, an injected allocation fault mid-build / mid-commit /
 * mid-merge, a saturated refcount, flipped DRAM bits — and then holds
 * the system to the robustness contract: a typed MemPressureError (or
 * a clean false from tryCommit) instead of an abort, no leaked lines
 * (proved by a full heap audit), and pressure visible in the counters.
 *
 * All fixtures opt out of the HICAMP_FAULT_* environment overlay so
 * the injection placement asserted here stays exact even when the
 * whole suite runs under randomized fault injection.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "audit_check.hh"
#include "common/fault.hh"
#include "common/rng.hh"
#include "common/status.hh"
#include "lang/context.hh"
#include "lang/harray.hh"
#include "lang/hmap.hh"
#include "lang/hstring.hh"
#include "seg/builder.hh"
#include "seg/iterator.hh"
#include "vsm/segment_map.hh"

namespace hicamp {
namespace {

MemoryConfig
baseCfg()
{
    MemoryConfig c;
    c.lineBytes = 16;
    c.numBuckets = 1 << 12;
    c.faults.allowEnvOverride = false;
    return c;
}

/** Build a line whose content encodes @p tag (never all-zero). */
Line
taggedLine(Memory &mem, Word tag)
{
    Line l = mem.makeLine();
    l.set(0, tag + 1);
    l.set(1, tag * 0x9e3779b97f4a7c15ull + 7);
    return l;
}

// ---------------------------------------------------------------------
// Finite capacity: the live-line budget and the overflow area.
// ---------------------------------------------------------------------

TEST(Pressure, LiveLineBudgetGivesTypedOom)
{
    MemoryConfig c = baseCfg();
    c.maxLiveLines = 4;
    Memory mem(c);

    std::vector<Plid> held;
    for (Word i = 0; i < 4; ++i)
        held.push_back(mem.lookup(taggedLine(mem, i)));
    EXPECT_EQ(mem.liveLines(), 4u);

    try {
        (void)mem.lookup(taggedLine(mem, 99));
        FAIL() << "allocation beyond maxLiveLines must throw";
    } catch (const MemPressureError &e) {
        EXPECT_EQ(e.status(), MemStatus::OutOfMemory);
    }
    EXPECT_EQ(mem.liveLines(), 4u) << "failed alloc must not leak";
    EXPECT_GE(mem.oomEvents(), 1u);

    // Deduplicating against existing content still works at the limit.
    EXPECT_EQ(mem.lookup(taggedLine(mem, 2)), held[2]);
    mem.decRef(held[2]); // drop the extra reference just taken

    for (Plid p : held)
        mem.decRef(p);
    EXPECT_EQ(mem.liveLines(), 0u);
    expectCleanAudit(mem, nullptr);
}

TEST(Pressure, OverflowCapacityBoundsTheStore)
{
    MemoryConfig c = baseCfg();
    c.numBuckets = 4;         // tiny directory: buckets fill fast
    c.overflowCapacity = 2;   // ... and almost no overflow area
    Memory mem(c);

    std::vector<Plid> held;
    bool hitOom = false;
    for (Word i = 0; i < 512 && !hitOom; ++i) {
        try {
            held.push_back(mem.lookup(taggedLine(mem, i)));
        } catch (const MemPressureError &e) {
            EXPECT_EQ(e.status(), MemStatus::OutOfMemory);
            hitOom = true;
        }
    }
    EXPECT_TRUE(hitOom) << "4 buckets + overflow cap 2 must fill";
    EXPECT_GE(mem.oomEvents(), 1u);

    // The failed insert changed nothing: all prior lines intact.
    EXPECT_EQ(mem.liveLines(), held.size());
    Auditor::Options aopts;
    aopts.externalRefs = held;
    expectCleanAudit(mem, nullptr, aopts);

    for (Plid p : held)
        mem.decRef(p);
    EXPECT_EQ(mem.liveLines(), 0u);
    expectCleanAudit(mem, nullptr);
}

// ---------------------------------------------------------------------
// Saturating refcounts (§3.1) and their audit classification.
// ---------------------------------------------------------------------

TEST(Pressure, SaturatedRefcountIsStickyAndInformational)
{
    MemoryConfig c = baseCfg();
    c.refcountBits = 2; // ceiling = 3
    Memory mem(c);
    EXPECT_EQ(mem.store().refcountMax(), 3u);

    Plid p = mem.lookup(taggedLine(mem, 1));
    for (int i = 0; i < 5; ++i)
        mem.incRef(p);
    EXPECT_TRUE(mem.store().refcountSaturated(p));
    EXPECT_EQ(mem.store().saturatedLines(), 1u);

    // Sticky downward too: no number of releases frees the line.
    for (int i = 0; i < 10; ++i)
        mem.decRef(p);
    EXPECT_EQ(mem.liveLines(), 1u);
    EXPECT_TRUE(mem.store().refcountSaturated(p));

    // The auditor reports the pinned count as informational, and the
    // heap still audits clean (satellite: saturation != violation).
    AuditReport r = Auditor::audit(mem, nullptr, {});
    EXPECT_TRUE(r.clean()) << r.summary();
    EXPECT_GE(r.count(AuditKind::RefSaturated), 1u);
    EXPECT_EQ(r.infos.size(), 1u);
}

TEST(Pressure, InjectedSaturationCountsAndAuditsClean)
{
    Memory mem(baseCfg());
    Plid p = mem.lookup(taggedLine(mem, 5));
    FaultConfig fc;
    fc.saturateEvery = 1;
    mem.faults().reconfigure(fc);
    mem.incRef(p); // slammed to the ceiling by the injector
    mem.faults().reconfigure({});

    EXPECT_EQ(mem.faults().saturationsInjected(), 1u);
    EXPECT_TRUE(mem.store().refcountSaturated(p));
    AuditReport r = Auditor::audit(mem, nullptr, {});
    EXPECT_TRUE(r.clean()) << r.summary();
    EXPECT_GE(r.count(AuditKind::RefSaturated), 1u);
}

// ---------------------------------------------------------------------
// Injected allocation faults: mid-build, mid-commit, mid-merge.
// ---------------------------------------------------------------------

TEST(Pressure, BuildAbsorbsTransientAllocFaults)
{
    Memory mem(baseCfg());
    SegBuilder builder(mem);
    SegReader reader(mem);

    std::vector<Word> w(256);
    for (std::size_t i = 0; i < w.size(); ++i)
        w[i] = i * 1315423911ull + 3;
    std::vector<WordMeta> m(w.size(), WordMeta::raw());

    // Probability mode: every-Nth would fail each whole-build attempt
    // deterministically (a build makes far more than N fresh
    // allocations), while a fixed-seed random stream lets some
    // attempt run fault-free — the case the bounded retry absorbs.
    FaultConfig fc;
    fc.allocFailP = 0.008;
    mem.faults().reconfigure(fc);
    SegDesc d = builder.buildWords(w.data(), m.data(), w.size());
    mem.faults().reconfigure({});

    EXPECT_GT(mem.faults().allocFailsInjected(), 0u);
    EXPECT_GT(mem.contention().retries.load(), 0u);
    for (std::size_t i = 0; i < w.size(); i += 17)
        EXPECT_EQ(reader.readWord(d.root, d.height, i), w[i]);

    builder.releaseSeg(d);
    EXPECT_EQ(mem.liveLines(), 0u);
    expectCleanAudit(mem, nullptr);
}

TEST(Pressure, BuildRetriesExhaustIntoTypedError)
{
    Memory mem(baseCfg());
    SegBuilder builder(mem);

    std::vector<Word> w(64);
    for (std::size_t i = 0; i < w.size(); ++i)
        w[i] = i + 1;
    std::vector<WordMeta> m(w.size(), WordMeta::raw());

    FaultConfig fc;
    fc.allocFailEvery = 1; // every fresh allocation fails
    mem.faults().reconfigure(fc);
    try {
        (void)builder.buildWords(w.data(), m.data(), w.size());
        FAIL() << "build under total allocation failure must throw";
    } catch (const MemPressureError &e) {
        EXPECT_EQ(e.status(), MemStatus::OutOfMemory);
    }
    mem.faults().reconfigure({});

    EXPECT_GE(mem.contention().exhausted.load(), 1u);
    EXPECT_EQ(mem.liveLines(), 0u) << "failed build must roll back";
    expectCleanAudit(mem, nullptr);
}

TEST(Pressure, CommitOomRollsBackAndBuffersSurvive)
{
    Hicamp hc(baseCfg());
    {
        HArray<std::uint64_t> arr(hc);
        // Full-width values: data compaction would fold small content
        // into the root entry and the commit would never allocate.
        for (std::uint64_t i = 0; i < 8; ++i)
            arr.set(i, 0xa5a5a5a5a5a5a500ull + i);

        IteratorRegister it(hc.mem, hc.vsm);
        it.load(arr.vsid(), 3);
        it.write(0xfeedfeedfeedfeedULL);

        FaultConfig fc;
        fc.allocFailEvery = 1;
        hc.mem.faults().reconfigure(fc);
        EXPECT_FALSE(it.tryCommit());
        EXPECT_EQ(it.lastCommitStatus(), MemStatus::OutOfMemory);
        hc.mem.faults().reconfigure({});

        // The failed commit rolled back completely; the write buffer
        // is intact, so the same commit succeeds once pressure lifts.
        EXPECT_TRUE(it.tryCommit());
        EXPECT_EQ(arr.get(3), 0xfeedfeedfeedfeedULL);
        EXPECT_EQ(arr.get(0), 0xa5a5a5a5a5a5a500ull);
        expectCleanAudit(hc);
    }
    EXPECT_EQ(hc.mem.liveLines(), 0u);
    expectCleanAudit(hc);
}

TEST(Pressure, MergeOomUnwindsWithoutLeaking)
{
    Memory mem(baseCfg());
    SegmentMap vsm(mem);
    SegBuilder builder(mem);
    SegReader reader(mem);

    // Full-width words so the segment is made of real lines (small
    // content would be compacted into the entries and the merge would
    // never need to allocate).
    std::vector<Word> w(8);
    for (std::size_t i = 0; i < w.size(); ++i)
        w[i] = 0x0101010101010101ull * (i + 1);
    std::vector<WordMeta> m(w.size(), WordMeta::raw());
    SegDesc base = builder.buildWords(w.data(), m.data(), w.size());
    // create() takes over the build's root reference.
    Vsid v = vsm.create(base, kSegMergeUpdate);

    SegDesc snap = vsm.snapshot(v);

    // A concurrent writer moves the map past the snapshot, forcing
    // the next mcas down the merge-update path.
    Entry ea = builder.setWord(snap.root, snap.height, 1,
                               0xaaaaaaaaaaaaaaaaull, WordMeta::raw());
    ASSERT_TRUE(vsm.mcas(v, snap, {ea, snap.height, snap.byteLen}));

    // Build the second proposal with faults off, then let the merge
    // hit total allocation failure.
    Entry eb = builder.setWord(snap.root, snap.height, 6,
                               0xbbbbbbbbbbbbbbbbull, WordMeta::raw());
    FaultConfig fc;
    fc.allocFailEvery = 1;
    mem.faults().reconfigure(fc);
    EXPECT_THROW(vsm.mcas(v, snap, {eb, snap.height, snap.byteLen}),
                 MemPressureError);
    mem.faults().reconfigure({});

    // The failed merge consumed the proposal and left the committed
    // version untouched.
    SegDesc cur = vsm.get(v);
    EXPECT_EQ(reader.readWord(cur.root, cur.height, 1),
              0xaaaaaaaaaaaaaaaaull);
    EXPECT_EQ(reader.readWord(cur.root, cur.height, 6), w[6]);

    vsm.releaseSnapshot(snap);
    expectCleanAudit(mem, &vsm);
    vsm.destroy(v);
    EXPECT_EQ(mem.liveLines(), 0u);
    expectCleanAudit(mem, &vsm);
}

// ---------------------------------------------------------------------
// End-to-end: containers surface OOM cleanly and absorb injection.
// ---------------------------------------------------------------------

TEST(Pressure, HMapWorkloadPastCapacityFailsCleanly)
{
    MemoryConfig c = baseCfg();
    c.maxLiveLines = 64;
    Hicamp hc(c);
    {
        HMap map(hc);
        bool hitOom = false;
        for (int i = 0; i < 512 && !hitOom; ++i) {
            try {
                map.set(HString(hc, "key-" + std::to_string(i)),
                        HString(hc, "value-" + std::to_string(i)));
            } catch (const MemPressureError &e) {
                EXPECT_EQ(e.status(), MemStatus::OutOfMemory);
                hitOom = true;
            }
        }
        EXPECT_TRUE(hitOom) << "64-line budget must not fit 512 pairs";
        EXPECT_GE(hc.mem.oomEvents(), 1u);
        EXPECT_GE(hc.mem.contention().conflicts.load(), 1u);

        // Mid-operation rollback left the map usable and leak-free.
        EXPECT_TRUE(
            map.get(HString(hc, "key-0")).has_value());
        expectCleanAudit(hc);
    }
    EXPECT_EQ(hc.mem.liveLines(), 0u);
    expectCleanAudit(hc);
}

TEST(Pressure, HMapChurnUnderRandomAllocFaults)
{
    MemoryConfig c = baseCfg();
    c.faults.seed = 1234;
    c.faults.allocFailP = 0.001;
    Hicamp hc(c);
    {
        HMap map(hc);
        Rng rng(99);
        std::uint64_t surfaced = 0;
        for (int op = 0; op < 1500; ++op) {
            HString key(hc, "k" + std::to_string(rng.below(40)));
            try {
                if (rng.below(5) == 0) {
                    map.erase(key);
                } else {
                    map.set(key, HString(hc, "payload-" +
                                                 std::to_string(
                                                     rng.below(13))));
                }
            } catch (const MemPressureError &) {
                // Permitted (a fault can land where no retry applies)
                // but it must be rare and must not leak — the audits
                // below hold either way.
                ++surfaced;
            }
        }
        EXPECT_GT(hc.mem.faults().allocFailsInjected(), 0u);
        EXPECT_LT(surfaced, 5u) << "retries should absorb p=0.001";
        expectCleanAudit(hc);
    }
    EXPECT_EQ(hc.mem.liveLines(), 0u);
    expectCleanAudit(hc);
}

// ---------------------------------------------------------------------
// DRAM bit flips on the modelled fetch path.
// ---------------------------------------------------------------------

TEST(Pressure, BitFlipsOnDramFetchAreCountedAndMostlyDetected)
{
    Memory mem(baseCfg());
    std::vector<Plid> held;
    for (Word i = 0; i < 100; ++i)
        held.push_back(mem.lookup(taggedLine(mem, i)));

    // Force every next read to miss to DRAM, and flip one bit per
    // fetch.
    mem.coldResetTraffic();
    FaultConfig fc;
    fc.bitFlipEvery = 1;
    mem.faults().reconfigure(fc);
    for (std::size_t i = 0; i < held.size(); ++i) {
        Line got = mem.readLine(held[i]);
        // The stored ground truth is clean; the model re-fetches on
        // detection, so the caller still sees the true content.
        EXPECT_EQ(got.word(0), Word(i + 1));
    }
    mem.faults().reconfigure({});

    EXPECT_EQ(mem.faults().bitFlipsInjected(), 100u);
    EXPECT_EQ(mem.flipsRecovered() + mem.flipsSilent(), 100u);
    // A flip goes unnoticed only when the corrupt content hashes back
    // into the same bucket (~1/4096 per flip).
    EXPECT_GE(mem.flipsRecovered(), 95u);
    EXPECT_EQ(mem.errorsDetected(), mem.flipsRecovered());

    for (Plid p : held)
        mem.decRef(p);
    EXPECT_EQ(mem.liveLines(), 0u);
    expectCleanAudit(mem, nullptr);
}

} // namespace
} // namespace hicamp
