/**
 * @file
 * Multi-threaded stress tests: real std::threads hammering one
 * machine through every concurrency mechanism at once — per-thread
 * iterator registers over one merge-update segment (disjoint slices),
 * counter increments on a shared slot, map churn, and snapshot
 * readers validating isolation invariants throughout.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "common/rng.hh"
#include "lang/harray.hh"
#include "lang/hmap.hh"

namespace hicamp {
namespace {

MemoryConfig
cfg()
{
    MemoryConfig c;
    c.numBuckets = 1 << 14;
    return c;
}

TEST(ThreadStress, DisjointSlicesNeverInterfere)
{
    Hicamp hc(cfg());
    constexpr int kThreads = 4;
    constexpr std::uint64_t kSlice = 64;
    constexpr int kRounds = 60;
    HArray<std::uint64_t> arr(
        hc, std::vector<std::uint64_t>(kThreads * kSlice, 0),
        kSegMergeUpdate);

    std::vector<std::thread> ts;
    for (int t = 0; t < kThreads; ++t) {
        ts.emplace_back([&, t] {
            Rng rng(500 + t);
            IteratorRegister it(hc.mem, hc.vsm);
            for (int round = 0; round < kRounds; ++round) {
                // Each thread owns slice [t*kSlice, (t+1)*kSlice).
                std::uint64_t idx = t * kSlice + rng.below(kSlice);
                for (;;) {
                    it.load(arr.vsid(), idx);
                    it.write(it.read() + (t + 1));
                    if (it.tryCommit())
                        break;
                }
            }
        });
    }
    for (auto &t : ts)
        t.join();

    // Per-slice sums must equal each thread's total contribution.
    for (int t = 0; t < kThreads; ++t) {
        std::uint64_t sum = 0;
        for (std::uint64_t i = 0; i < kSlice; ++i)
            sum += arr.get(t * kSlice + i);
        EXPECT_EQ(sum, static_cast<std::uint64_t>(kRounds * (t + 1)))
            << "slice " << t;
    }
}

TEST(ThreadStress, SnapshotReadersSeeOnlyCommittedStates)
{
    Hicamp hc(cfg());
    // Invariant: word0 + word1 == 1000 in every committed version.
    HArray<std::uint64_t> pair(
        hc, std::vector<std::uint64_t>{600, 400}, kSegMergeUpdate);

    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> violations{0}, reads{0};

    std::thread writer([&] {
        Rng rng(9);
        IteratorRegister it(hc.mem, hc.vsm);
        while (!stop.load(std::memory_order_relaxed)) {
            std::uint64_t delta = 1 + rng.below(50);
            it.load(pair.vsid(), 0);
            std::uint64_t a = it.read();
            if (a < delta)
                continue;
            it.write(a - delta);
            it.seek(1);
            it.write(it.read() + delta);
            it.tryCommit();
        }
    });

    std::vector<std::thread> readers;
    for (int r = 0; r < 2; ++r) {
        readers.emplace_back([&] {
            IteratorRegister it(hc.mem, hc.vsm);
            for (int i = 0; i < 400; ++i) {
                it.load(pair.vsid(), 0);
                std::uint64_t a = it.read();
                it.seek(1);
                std::uint64_t b = it.read();
                ++reads;
                if (a + b != 1000)
                    ++violations;
            }
        });
    }
    for (auto &t : readers)
        t.join();
    stop = true;
    writer.join();

    EXPECT_EQ(violations.load(), 0u)
        << "a reader saw a torn (uncommitted) state";
    EXPECT_GE(reads.load(), 800u);
}

TEST(ThreadStress, MixedMapChurnStaysConsistent)
{
    Hicamp hc(cfg());
    HMap map(hc);
    constexpr int kThreads = 4;
    std::atomic<std::uint64_t> errors{0};

    std::vector<std::thread> ts;
    for (int t = 0; t < kThreads; ++t) {
        ts.emplace_back([&, t] {
            Rng rng(700 + t);
            for (int i = 0; i < 80; ++i) {
                std::string k =
                    "shared-" + std::to_string(rng.below(24));
                switch (rng.below(3)) {
                  case 0:
                    map.set(HString(hc, k),
                            HString(hc, "val-" + std::to_string(t)));
                    break;
                  case 1: {
                    auto v = map.get(HString(hc, k));
                    // Any present value must be well-formed.
                    if (v && v->str().rfind("val-", 0) != 0)
                        ++errors;
                    break;
                  }
                  case 2:
                    map.erase(HString(hc, k));
                    break;
                }
            }
        });
    }
    for (auto &t : ts)
        t.join();
    EXPECT_EQ(errors.load(), 0u);

    // Post-churn structural sanity: every surviving entry reads back.
    std::uint64_t live = 0;
    map.forEach([&](HString k, HString v) {
        EXPECT_EQ(k.str().rfind("shared-", 0), 0u);
        EXPECT_EQ(v.str().rfind("val-", 0), 0u);
        ++live;
    });
    EXPECT_EQ(live, map.size());
}

TEST(ThreadStress, RefcountsBalanceAfterParallelChurn)
{
    Hicamp hc(cfg());
    {
        HMap map(hc);
        std::vector<std::thread> ts;
        for (int t = 0; t < 3; ++t) {
            ts.emplace_back([&, t] {
                for (int i = 0; i < 50; ++i) {
                    HString k(hc, "c" + std::to_string(t) + "-" +
                                      std::to_string(i % 10));
                    map.set(k, HString(hc, std::string(50 + i, 'x')));
                    if (i % 3 == 0)
                        map.erase(k);
                }
            });
        }
        for (auto &t : ts)
            t.join();
    }
    // Map destroyed: the store must be completely empty again.
    EXPECT_EQ(hc.mem.liveLines(), 0u);
    EXPECT_EQ(hc.mem.store().totalRefs(), 0u);
}

} // namespace
} // namespace hicamp
