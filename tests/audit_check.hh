/**
 * @file
 * Shared end-of-test heap-audit helper: run the cross-layer invariant
 * checker and fail the current test with the report summary if any
 * violation (leaked line, dangling reference, dedup break, malformed
 * DAG, ...) survived the scenario under test.
 */

#ifndef HICAMP_TESTS_AUDIT_CHECK_HH
#define HICAMP_TESTS_AUDIT_CHECK_HH

#include <gtest/gtest.h>

#include "analysis/auditor.hh"
#include "lang/context.hh"
#include "mem/memory.hh"
#include "vsm/segment_map.hh"

namespace hicamp {

inline void
expectCleanAudit(Memory &mem, SegmentMap *vsm,
                 const Auditor::Options &opts = {})
{
    AuditReport r = Auditor::audit(mem, vsm, opts);
    EXPECT_TRUE(r.clean()) << r.summary();
}

inline void
expectCleanAudit(Hicamp &hc, const Auditor::Options &opts = {})
{
    AuditReport r = Auditor::audit(hc, opts);
    EXPECT_TRUE(r.clean()) << r.summary();
}

} // namespace hicamp

#endif // HICAMP_TESTS_AUDIT_CHECK_HH
