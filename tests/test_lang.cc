/**
 * @file
 * Programming-model tests: HString value semantics and O(1) equality,
 * HMap get/set/erase/iteration (including concurrent threads), HArray
 * and batched writers, merge-update counters (lost-update freedom
 * under real threads), HQueue FIFO behaviour, and multi-segment
 * atomicity via AtomicHeap.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "audit_check.hh"
#include "lang/atomic_heap.hh"
#include "lang/harray.hh"
#include "lang/hmap.hh"
#include "lang/hqueue.hh"
#include "lang/hstring.hh"

namespace hicamp {
namespace {

MemoryConfig
smallCfg()
{
    MemoryConfig c;
    c.lineBytes = 16;
    c.numBuckets = 1 << 13;
    return c;
}

struct LangFixture : ::testing::Test {
    LangFixture() : hc(smallCfg()) {}
    Hicamp hc;
};

TEST_F(LangFixture, StringEqualityIsDescriptorCompare)
{
    HString a(hc, "the quick brown fox jumps over the lazy dog");
    HString b(hc, "the quick brown fox jumps over the lazy dog");
    HString c(hc, "the quick brown fox jumps over the lazy cat");
    EXPECT_TRUE(a == b);
    EXPECT_FALSE(a == c);
    EXPECT_EQ(a.fingerprint(), b.fingerprint());
}

TEST_F(LangFixture, StringRoundTripAndAt)
{
    std::string text = "HICAMP string with some length to span lines!";
    HString s(hc, text);
    EXPECT_EQ(s.str(), text);
    EXPECT_EQ(s.size(), text.size());
    EXPECT_EQ(s.at(0), 'H');
    EXPECT_EQ(s.at(text.size() - 1), '!');
}

TEST_F(LangFixture, StringCopyAndDestructionBalanceRefs)
{
    {
        HString a(hc, std::string(500, 'r'));
        HString b = a;
        HString c(hc, "other");
        c = b;
        HString d = std::move(b);
        EXPECT_EQ(d.str(), std::string(500, 'r'));
    }
    EXPECT_EQ(hc.mem.liveLines(), 0u);
    EXPECT_EQ(hc.mem.store().totalRefs(), 0u);
}

TEST_F(LangFixture, IdenticalStringsShareAllLines)
{
    HString a(hc, std::string(1000, 'x') + "abc");
    std::uint64_t lines = hc.mem.liveLines();
    HString b(hc, std::string(1000, 'x') + "abc");
    EXPECT_EQ(hc.mem.liveLines(), lines);
}

TEST_F(LangFixture, BoxSegmentRoundTrip)
{
    // The box line is the single-word "name" of a whole segment:
    // unbox recovers the exact descriptor, and dedup makes the box
    // PLID unique per segment value.
    HString s(hc, "some segment value worth boxing");
    SegBuilder b(hc.mem);
    b.retain(s.desc().root);
    Plid box1 = hc.boxSegment(s.desc());
    SegDesc back = hc.unboxSegment(box1);
    EXPECT_EQ(back, s.desc());

    b.retain(s.desc().root);
    Plid box2 = hc.boxSegment(s.desc());
    EXPECT_EQ(box1, box2); // content-unique box

    HString other(hc, "different value");
    b.retain(other.desc().root);
    Plid box3 = hc.boxSegment(other.desc());
    EXPECT_NE(box3, box1);

    hc.mem.decRef(box1);
    hc.mem.decRef(box2);
    hc.mem.decRef(box3);
}

TEST_F(LangFixture, MapSetGetErase)
{
    HMap map(hc);
    HString k1(hc, "user:1001");
    HString v1(hc, "{\"name\":\"ada\"}");
    HString v2(hc, "{\"name\":\"grace\"}");

    EXPECT_FALSE(map.get(k1).has_value());
    map.set(k1, v1);
    auto got = map.get(k1);
    ASSERT_TRUE(got.has_value());
    EXPECT_TRUE(*got == v1);

    map.set(k1, v2); // overwrite
    EXPECT_TRUE(*map.get(k1) == v2);

    EXPECT_TRUE(map.erase(k1));
    EXPECT_FALSE(map.get(k1).has_value());
    EXPECT_FALSE(map.erase(k1));
}

TEST_F(LangFixture, MapManyKeysAndSize)
{
    HMap map(hc);
    for (int i = 0; i < 200; ++i) {
        HString k(hc, "key-" + std::to_string(i));
        HString v(hc, "value-" + std::to_string(i * 7));
        map.set(k, v);
    }
    EXPECT_EQ(map.size(), 200u);
    for (int i = 0; i < 200; ++i) {
        HString k(hc, "key-" + std::to_string(i));
        auto v = map.get(k);
        ASSERT_TRUE(v.has_value());
        EXPECT_EQ(v->str(), "value-" + std::to_string(i * 7));
    }
}

TEST_F(LangFixture, MapDeduplicatesEqualValues)
{
    HMap map(hc);
    HString big(hc, std::string(2000, 'v'));
    HString k1(hc, "k1"), k2(hc, "k2");
    map.set(k1, big);
    std::uint64_t lines = hc.mem.liveLines();
    map.set(k2, big); // same value: box and content dedup
    // Only the map path itself may add lines, not the value.
    EXPECT_LT(hc.mem.liveLines() - lines, 10u);
}

TEST_F(LangFixture, MapForEachVisitsSnapshot)
{
    HMap map(hc);
    for (int i = 0; i < 50; ++i) {
        map.set(HString(hc, "k" + std::to_string(i)),
                HString(hc, "v" + std::to_string(i)));
    }
    std::uint64_t visited = 0;
    map.forEach([&](HString k, HString v) {
        EXPECT_EQ(k.str()[0], 'k');
        EXPECT_EQ(v.str()[0], 'v');
        EXPECT_EQ(k.str().substr(1), v.str().substr(1));
        ++visited;
    });
    EXPECT_EQ(visited, 50u);
}

TEST_F(LangFixture, ConcurrentMapWritersDisjointKeys)
{
    HMap map(hc);
    constexpr int kThreads = 4;
    constexpr int kPerThread = 25;
    std::vector<std::thread> ts;
    for (int t = 0; t < kThreads; ++t) {
        ts.emplace_back([&, t] {
            for (int i = 0; i < kPerThread; ++i) {
                HString k(hc, "t" + std::to_string(t) + "-k" +
                                  std::to_string(i));
                HString v(hc, "t" + std::to_string(t) + "-v" +
                                  std::to_string(i));
                map.set(k, v);
            }
        });
    }
    for (auto &t : ts)
        t.join();
    EXPECT_EQ(map.size(),
              static_cast<std::uint64_t>(kThreads * kPerThread));
    for (int t = 0; t < kThreads; ++t) {
        for (int i = 0; i < kPerThread; ++i) {
            HString k(hc,
                      "t" + std::to_string(t) + "-k" + std::to_string(i));
            auto v = map.get(k);
            ASSERT_TRUE(v.has_value());
        }
    }
}

TEST_F(LangFixture, MapPinsKeysAgainstPlidRecycling)
{
    // Regression: the map indexes by the key's root PLID. If the key
    // segment were not pinned by the map entry, the key's line would
    // be reclaimed once the caller's HString dies and its PLID could
    // be recycled for a *different* string, aliasing two keys onto
    // one slot. Churning many short-lived keys exercises exactly the
    // recycling pattern that exposed this.
    HMap map(hc);
    for (int i = 0; i < 300; ++i) {
        map.set(HString(hc, "pin-" + std::to_string(i)),
                HString(hc, "val-" + std::to_string(i)));
        // churn: transient strings whose lines are freed immediately
        HString scratch(hc, "scratch-" + std::to_string(i));
    }
    EXPECT_EQ(map.size(), 300u);
    for (int i = 0; i < 300; ++i) {
        auto v = map.get(HString(hc, "pin-" + std::to_string(i)));
        ASSERT_TRUE(v.has_value()) << "lost key pin-" << i;
        EXPECT_EQ(v->str(), "val-" + std::to_string(i));
    }
}

TEST_F(LangFixture, ArrayBasics)
{
    HArray<std::uint64_t> a(hc, std::vector<std::uint64_t>{1, 2, 3, 4});
    EXPECT_EQ(a.size(), 4u);
    EXPECT_EQ(a.get(2), 3u);
    a.set(2, 33);
    EXPECT_EQ(a.get(2), 33u);
}

TEST_F(LangFixture, ArrayGrowsWithoutRealloc)
{
    HArray<std::uint64_t> a(hc);
    a.set(10000, 42); // far past the end: no copy, just a taller DAG
    EXPECT_EQ(a.get(10000), 42u);
    EXPECT_EQ(a.get(5000), 0u);
    EXPECT_EQ(a.size(), 10001u);
}

TEST_F(LangFixture, ArrayOfDoubles)
{
    HArray<double> a(hc, std::vector<double>{1.5, -2.25, 3.75});
    EXPECT_DOUBLE_EQ(a.get(0), 1.5);
    EXPECT_DOUBLE_EQ(a.get(1), -2.25);
    a.set(1, 9.125);
    EXPECT_DOUBLE_EQ(a.get(1), 9.125);
}

TEST_F(LangFixture, ArrayWriterCommitsAtomically)
{
    HArray<std::uint64_t> a(hc, std::vector<std::uint64_t>(64, 0));
    HArray<std::uint64_t>::Writer w(a);
    for (std::uint64_t i = 0; i < 64; i += 8)
        w.set(i, i + 1);
    EXPECT_EQ(a.get(8), 0u); // not yet visible
    ASSERT_TRUE(w.commit());
    EXPECT_EQ(a.get(8), 9u);
}

TEST_F(LangFixture, CounterMergeUnderThreads)
{
    // The headline merge-update property: concurrent increments to
    // the SAME counter never lose updates.
    HCounterArray counters(hc, 8);
    constexpr int kThreads = 4;
    constexpr int kIncrements = 50;
    std::vector<std::thread> ts;
    for (int t = 0; t < kThreads; ++t) {
        ts.emplace_back([&] {
            for (int i = 0; i < kIncrements; ++i)
                counters.add(3, 1);
        });
    }
    for (auto &t : ts)
        t.join();
    EXPECT_EQ(counters.get(3),
              static_cast<std::uint64_t>(kThreads * kIncrements));
}

TEST_F(LangFixture, QueueFifoOrder)
{
    HQueue q(hc);
    EXPECT_EQ(q.size(), 0u);
    EXPECT_FALSE(q.pop().has_value());
    for (int i = 0; i < 20; ++i)
        q.push(HString(hc, "item-" + std::to_string(i)));
    EXPECT_EQ(q.size(), 20u);
    for (int i = 0; i < 20; ++i) {
        auto v = q.pop();
        ASSERT_TRUE(v.has_value());
        EXPECT_EQ(v->str(), "item-" + std::to_string(i));
    }
    EXPECT_FALSE(q.pop().has_value());
}

TEST_F(LangFixture, QueueConcurrentProducersLoseNothing)
{
    HQueue q(hc);
    constexpr int kThreads = 4;
    constexpr int kItems = 20;
    std::vector<std::thread> ts;
    for (int t = 0; t < kThreads; ++t) {
        ts.emplace_back([&, t] {
            for (int i = 0; i < kItems; ++i) {
                q.push(HString(hc, "p" + std::to_string(t) + "-" +
                                       std::to_string(i)));
            }
        });
    }
    for (auto &t : ts)
        t.join();
    EXPECT_EQ(q.size(), static_cast<std::uint64_t>(kThreads * kItems));
    std::uint64_t popped = 0;
    while (q.pop().has_value())
        ++popped;
    EXPECT_EQ(popped, static_cast<std::uint64_t>(kThreads * kItems));
}

TEST_F(LangFixture, QueuePushAndPopMergeWithoutRetry)
{
    // Paper §4.3: a concurrent push and pop touch different slots and
    // different counters, so a stale commit is absorbed by
    // merge-update instead of retrying the whole operation.
    HQueue q(hc);
    q.push(HString(hc, "a"));
    q.push(HString(hc, "b"));

    // "Thread 2" loads its register FIRST (pinning the pre-pop
    // snapshot: head=0, tail=2)...
    IteratorRegister it(hc.mem, hc.vsm);
    it.load(q.vsid(), 1);
    EXPECT_EQ(it.read(), 2u); // tail in the snapshot

    // ..."thread 1" pops (advances head, clears slot 2+0) and
    // commits first.
    auto popped = q.pop();
    ASSERT_TRUE(popped.has_value());
    EXPECT_EQ(popped->str(), "a");

    // Thread 2 now pushes "c" against its stale snapshot: tail
    // counter diff (+1) and a previously-zero slot — merge-update
    // absorbs the conflict with the pop, no retry.
    std::uint64_t merges_before = hc.vsm.mergeCommits();
    {
        SegBuilder b(hc.mem);
        HString v(hc, "c");
        b.retain(v.desc().root);
        Plid box = hc.boxSegment(v.desc());
        it.write(3); // tail: 2 -> 3
        it.seek(2 + 2);
        it.write(box, WordMeta::plid());
        ASSERT_TRUE(it.tryCommit());
    }
    EXPECT_EQ(hc.vsm.mergeCommits(), merges_before + 1);

    EXPECT_EQ(q.size(), 2u);
    EXPECT_EQ(q.pop()->str(), "b");
    EXPECT_EQ(q.pop()->str(), "c");
}

TEST_F(LangFixture, AtomicHeapMultiSegmentCommit)
{
    AtomicHeap heap(hc);
    // A transaction that moves "money" between two account segments.
    {
        AtomicHeap::Tx tx(heap);
        tx.write(0, HString(hc, "balance:100"));
        tx.write(1, HString(hc, "balance:50"));
        ASSERT_TRUE(tx.commit());
    }
    {
        AtomicHeap::Tx tx(heap);
        EXPECT_EQ(tx.read(0).str(), "balance:100");
        tx.write(0, HString(hc, "balance:70"));
        tx.write(1, HString(hc, "balance:80"));
        ASSERT_TRUE(tx.commit());
    }
    // A concurrent reader opened before the second commit would have
    // seen 100/50; a fresh one sees 70/80 — never a mix.
    AtomicHeap::Tx check(heap);
    EXPECT_EQ(check.read(0).str(), "balance:70");
    EXPECT_EQ(check.read(1).str(), "balance:80");
}

TEST_F(LangFixture, AtomicHeapReaderSeesConsistentSnapshot)
{
    AtomicHeap heap(hc);
    {
        AtomicHeap::Tx tx(heap);
        tx.write(0, HString(hc, "v1-a"));
        tx.write(1, HString(hc, "v1-b"));
        ASSERT_TRUE(tx.commit());
    }
    AtomicHeap::Tx reader(heap); // snapshot taken here
    {
        AtomicHeap::Tx tx(heap);
        tx.write(0, HString(hc, "v2-a"));
        tx.write(1, HString(hc, "v2-b"));
        ASSERT_TRUE(tx.commit());
    }
    // The old reader still sees the complete v1 state.
    EXPECT_EQ(reader.read(0).str(), "v1-a");
    EXPECT_EQ(reader.read(1).str(), "v1-b");
}

TEST_F(LangFixture, TimestampOrderedCollection)
{
    // Paper §4.1: "an ordered collection of objects indexed by a
    // 64-bit time stamp can be efficiently represented as a segment
    // with the VSID of the object stored at the numeric index equal
    // to its time stamp" — no red-black tree, no rebalancing; the
    // sparse array plus next-non-zero iteration IS the ordered index.
    HArray<std::uint64_t> timeline(hc);
    const std::uint64_t stamps[] = {1699999999, 1700000042,
                                    1700867000, 1912345678};
    for (std::uint64_t i = 0; i < 4; ++i)
        timeline.set(stamps[i], i + 1); // payload handle
    // Iterate in timestamp order via the iterator register.
    IteratorRegister it(hc.mem, hc.vsm);
    it.load(timeline.vsid(), 0);
    std::vector<std::uint64_t> visited;
    if (it.nextFrom()) {
        visited.push_back(it.offset());
        while (it.next())
            visited.push_back(it.offset());
    }
    ASSERT_EQ(visited.size(), 4u);
    for (std::uint64_t i = 0; i < 4; ++i)
        EXPECT_EQ(visited[i], stamps[i]); // sorted for free
    // Range query: first event at-or-after a cutoff.
    it.seek(1700000000);
    ASSERT_TRUE(it.nextFrom());
    EXPECT_EQ(it.offset(), 1700000042u);
    // Despite the 2^31-wide index range, storage is a handful of
    // lines thanks to zero suppression and path compaction.
    SegDesc d = hc.vsm.get(timeline.vsid());
    SegReader r(hc.mem);
    std::unordered_set<Plid> seen;
    EXPECT_LE(r.countLines(d.root, d.height, seen), 24u);
}

TEST_F(LangFixture, EverythingReclaims)
{
    {
        HMap map(hc);
        for (int i = 0; i < 40; ++i) {
            map.set(HString(hc, "key" + std::to_string(i)),
                    HString(hc, std::string(100 + i, 'd')));
        }
        for (int i = 0; i < 40; i += 2)
            map.erase(HString(hc, "key" + std::to_string(i)));
        HQueue q(hc);
        q.push(HString(hc, "transient item"));
    }
    EXPECT_EQ(hc.mem.liveLines(), 0u);
    EXPECT_EQ(hc.mem.store().totalRefs(), 0u);
}

TEST_F(LangFixture, AuditSweepAfterStructureChurn)
{
    {
        HMap map(hc);
        for (int i = 0; i < 48; ++i) {
            map.set(HString(hc, "key" + std::to_string(i)),
                    HString(hc, "val" + std::to_string(i % 7)));
        }
        for (int i = 0; i < 48; i += 3)
            map.erase(HString(hc, "key" + std::to_string(i)));
        HArray<std::uint64_t> arr(hc);
        for (int i = 0; i < 32; ++i)
            arr.set(i, ~static_cast<Word>(i));

        // Live structures own map entries the auditor can see.
        expectCleanAudit(hc);
    }
    // All structures destroyed: zero leaked or dangling lines.
    expectCleanAudit(hc);
    EXPECT_EQ(hc.mem.liveLines(), 0u);
}

} // namespace
} // namespace hicamp
