/**
 * @file
 * Virtual-segment-map tests: create/get/snapshot isolation, CAS
 * semantics, read-only aliases, weak references, destroy, and mCAS
 * with merge-update (counters, disjoint writes, true conflicts).
 */

#include <gtest/gtest.h>

#include <vector>

#include "audit_check.hh"
#include "vsm/segment_map.hh"

namespace hicamp {
namespace {

struct VsmFixture : ::testing::Test {
    VsmFixture() : mem(cfg()), vsm(mem), builder(mem), reader(mem) {}

    static MemoryConfig
    cfg()
    {
        MemoryConfig c;
        c.lineBytes = 16;
        c.numBuckets = 1 << 12;
        return c;
    }

    SegDesc
    makeSeg(std::vector<Word> w)
    {
        std::vector<WordMeta> m(w.size(), WordMeta::raw());
        return builder.buildWords(w.data(), m.data(), w.size());
    }

    Word
    wordAt(const SegDesc &d, std::uint64_t idx)
    {
        return reader.readWord(d.root, d.height, idx);
    }

    Memory mem;
    SegmentMap vsm;
    SegBuilder builder;
    SegReader reader;
};

TEST_F(VsmFixture, CreateAndGet)
{
    SegDesc d = makeSeg({1, 2, 3, 4});
    Vsid v = vsm.create(d);
    EXPECT_EQ(vsm.get(v), d);
    EXPECT_EQ(vsm.liveEntries(), 1u);
}

TEST_F(VsmFixture, SnapshotIsolation)
{
    SegDesc d = makeSeg({10, 20, 30, 40});
    Vsid v = vsm.create(d);
    SegDesc snap = vsm.snapshot(v);

    // Another thread commits a new version.
    Entry e2 = builder.setWord(d.root, d.height, 1, 999, WordMeta::raw());
    SegDesc d2{e2, d.height, d.byteLen};
    ASSERT_TRUE(vsm.cas(v, d, d2));

    // The snapshot still reads the original content.
    EXPECT_EQ(wordAt(snap, 1), 20u);
    EXPECT_EQ(wordAt(vsm.get(v), 1), 999u);

    vsm.releaseSnapshot(snap);
    vsm.destroy(v);
    EXPECT_EQ(mem.liveLines(), 0u);
}

TEST_F(VsmFixture, CasFailsOnStaleExpected)
{
    SegDesc d = makeSeg({1, 2, 3, 4});
    Vsid v = vsm.create(d);

    Entry e2 = builder.setWord(d.root, d.height, 0, 77, WordMeta::raw());
    SegDesc d2{e2, d.height, d.byteLen};
    ASSERT_TRUE(vsm.cas(v, d, d2));

    // A second CAS with the stale expected value must fail and leave
    // ownership of the proposed root with the caller.
    Entry e3 = builder.setWord(d.root, d.height, 0, 88, WordMeta::raw());
    SegDesc d3{e3, d.height, d.byteLen};
    EXPECT_FALSE(vsm.cas(v, d, d3));
    EXPECT_EQ(wordAt(vsm.get(v), 0), 77u);
    builder.release(d3.root);
}

TEST_F(VsmFixture, ReadOnlyAliasRejectsCommit)
{
    SegDesc d = makeSeg({5, 6, 7, 8});
    Vsid v = vsm.create(d);
    Vsid ro = vsm.aliasReadOnly(v);

    // Reads forward to the target.
    EXPECT_EQ(vsm.get(ro), d);
    EXPECT_TRUE(vsm.isReadOnly(ro));
    EXPECT_FALSE(vsm.isReadOnly(v));

    Entry e2 = builder.setWord(d.root, d.height, 0, 1, WordMeta::raw());
    SegDesc d2{e2, d.height, d.byteLen};
    EXPECT_FALSE(vsm.cas(ro, d, d2));
    builder.release(d2.root);

    // Updates through the primary VSID are visible via the alias.
    Entry e3 = builder.setWord(d.root, d.height, 0, 42, WordMeta::raw());
    ASSERT_TRUE(vsm.cas(v, d, SegDesc{e3, d.height, d.byteLen}));
    EXPECT_EQ(wordAt(vsm.get(ro), 0), 42u);
}

TEST_F(VsmFixture, WeakEntryZeroedOnReclaim)
{
    // Values too large to inline-compact, so the root is a real line.
    SegDesc d = makeSeg({0x100000064ull, 0x1000000c8ull, 0x10000012cull,
                         0x100000190ull});
    ASSERT_TRUE(d.root.meta.isPlid());
    Vsid strong = vsm.create(d, 0);
    // Weak alias entry: holds the root without a reference.
    Vsid weak = vsm.create(vsm.get(strong), kSegWeak);
    EXPECT_EQ(vsm.get(weak), d);

    // Destroying the strong entry reclaims the segment; the weak
    // entry must observe a zeroed descriptor rather than dangle.
    vsm.destroy(strong);
    EXPECT_EQ(mem.liveLines(), 0u);
    EXPECT_TRUE(vsm.get(weak).isNull());
}

TEST_F(VsmFixture, McasMergesDisjointWrites)
{
    SegDesc base = makeSeg({0, 0, 0, 0, 0, 0, 0, 0});
    Vsid v = vsm.create(base, kSegMergeUpdate);

    // Thread A commits a write to index 1.
    SegDesc snapA = vsm.snapshot(v);
    Entry ea = builder.setWord(snapA.root, snapA.height, 1, 111,
                               WordMeta::raw());
    ASSERT_TRUE(vsm.mcas(v, snapA, {ea, snapA.height, snapA.byteLen}));

    // Thread B, still based on the original snapshot, writes index 6.
    Entry eb = builder.setWord(snapA.root, snapA.height, 6, 222,
                               WordMeta::raw());
    MergeStats stats;
    ASSERT_TRUE(vsm.mcas(v, snapA, {eb, snapA.height, snapA.byteLen},
                         &stats));

    SegDesc cur = vsm.get(v);
    EXPECT_EQ(wordAt(cur, 1), 111u);
    EXPECT_EQ(wordAt(cur, 6), 222u);
    EXPECT_EQ(vsm.mergeCommits(), 1u);

    vsm.releaseSnapshot(snapA);
}

TEST_F(VsmFixture, McasAddsCounterDeltas)
{
    // Counter semantics: two concurrent increments of the same word
    // merge to the sum.
    SegDesc base = makeSeg({1000, 0, 0, 0});
    Vsid v = vsm.create(base, kSegMergeUpdate);

    SegDesc snap = vsm.snapshot(v);
    Entry ea = builder.setWord(snap.root, snap.height, 0, 1005,
                               WordMeta::raw()); // +5
    ASSERT_TRUE(vsm.mcas(v, snap, {ea, snap.height, snap.byteLen}));

    Entry eb = builder.setWord(snap.root, snap.height, 0, 1003,
                               WordMeta::raw()); // +3 from same base
    ASSERT_TRUE(vsm.mcas(v, snap, {eb, snap.height, snap.byteLen}));

    EXPECT_EQ(wordAt(vsm.get(v), 0), 1008u); // 1000 + 5 + 3
    vsm.releaseSnapshot(snap);
}

TEST_F(VsmFixture, McasFailsOnConflictingReferences)
{
    // Two threads storing *different PLIDs* into the same slot is a
    // true conflict (paper §3.4).
    Line pay1 = mem.makeLine();
    pay1.set(0, 0xaaa);
    Line pay2 = mem.makeLine();
    pay2.set(0, 0xbbb);
    Plid p1 = mem.lookup(pay1);
    Plid p2 = mem.lookup(pay2);

    SegDesc base = makeSeg({0, 0, 0, 0});
    Vsid v = vsm.create(base, kSegMergeUpdate);
    SegDesc snap = vsm.snapshot(v);

    Entry ea =
        builder.setWord(snap.root, snap.height, 2, p1, WordMeta::plid());
    ASSERT_TRUE(vsm.mcas(v, snap, {ea, snap.height, snap.byteLen}));

    Entry eb =
        builder.setWord(snap.root, snap.height, 2, p2, WordMeta::plid());
    MergeStats stats;
    EXPECT_FALSE(vsm.mcas(v, snap, {eb, snap.height, snap.byteLen},
                          &stats));
    EXPECT_EQ(vsm.mergeFailures(), 1u);

    // The committed value is thread A's payload.
    WordMeta meta_out;
    SegDesc cur = vsm.get(v);
    EXPECT_EQ(reader.readWord(cur.root, cur.height, 2, &meta_out), p1);
    EXPECT_TRUE(meta_out.isPlid());

    vsm.releaseSnapshot(snap);
    // mCAS consumed thread B's proposal outright: its payload was
    // rolled back and reclaimed with it.
    EXPECT_FALSE(mem.isLive(p2));
}

TEST_F(VsmFixture, McasHandlesHeightGrowth)
{
    // Concurrent committer grew the segment taller; merge must lift
    // the shorter trees.
    SegDesc base = makeSeg({1, 2});
    Vsid v = vsm.create(base, kSegMergeUpdate);
    SegDesc snap = vsm.snapshot(v);

    // A grows the segment (writes far past the end).
    std::vector<Word> grown(64, 0);
    grown[0] = 1;
    grown[1] = 2;
    grown[60] = 60;
    SegDesc big = makeSeg(grown);
    ASSERT_TRUE(vsm.mcas(v, snap, big));

    // B (still at the short snapshot) updates word 0.
    Entry eb = builder.setWord(snap.root, snap.height, 0, 77,
                               WordMeta::raw());
    ASSERT_TRUE(vsm.mcas(v, snap, {eb, snap.height, snap.byteLen}));

    SegDesc cur = vsm.get(v);
    EXPECT_EQ(wordAt(cur, 0), 77u);
    EXPECT_EQ(wordAt(cur, 60), 60u);
    vsm.releaseSnapshot(snap);
}

TEST_F(VsmFixture, DestroyReclaimsSegment)
{
    SegDesc d = makeSeg({~Word{9}, ~Word{8}, ~Word{7}, ~Word{6},
                         ~Word{5}, ~Word{4}, ~Word{3}, ~Word{2}});
    Vsid v = vsm.create(d);
    EXPECT_GT(mem.liveLines(), 0u);
    vsm.destroy(v);
    EXPECT_EQ(mem.liveLines(), 0u);
    EXPECT_EQ(mem.store().totalRefs(), 0u);
}

TEST_F(VsmFixture, AuditSweepAfterMapChurn)
{
    Vsid a = vsm.create(makeSeg({~Word{1}, ~Word{2}, ~Word{3},
                                 ~Word{4}}));
    Vsid b = vsm.create(makeSeg({~Word{1}, ~Word{2}, ~Word{5},
                                 ~Word{6}}));
    SegDesc snap = vsm.snapshot(a);

    // Live entries + a held snapshot: the auditor sees the map's root
    // refs itself; only the snapshot needs declaring.
    Auditor::Options opts;
    opts.externalSegs.push_back(snap);
    expectCleanAudit(mem, &vsm, opts);

    vsm.releaseSnapshot(snap);
    vsm.destroy(a);
    vsm.destroy(b);
    expectCleanAudit(mem, &vsm);
    EXPECT_EQ(mem.liveLines(), 0u);
}

} // namespace
} // namespace hicamp
