/**
 * @file
 * Build-system smoke test: the library links and the most basic memory
 * operation round-trips.
 */

#include <gtest/gtest.h>

#include "mem/memory.hh"

namespace hicamp {
namespace {

TEST(Smoke, LookupRoundTrip)
{
    Memory mem;
    Line l = mem.makeLine();
    l.set(0, 0xdeadbeefull);
    Plid p = mem.lookup(l);
    EXPECT_NE(p, kZeroPlid);
    EXPECT_EQ(mem.readLine(p), l);
}

} // namespace
} // namespace hicamp
