/**
 * @file
 * Memcached model tests: conventional baseline correctness (hit/miss,
 * replace, delete, chain handling, DRAM traffic plausibility) and the
 * HICAMP implementation (correctness, dedup of repeated values,
 * category traffic), plus the workload generators.
 */

#include <gtest/gtest.h>

#include <thread>

#include "apps/memcached/conv_memcached.hh"
#include "apps/memcached/hicamp_memcached.hh"
#include "workloads/memcached_workload.hh"

namespace hicamp {
namespace {

TEST(WebCorpus, DeterministicAndSized)
{
    WebCorpus::Params p;
    p.numItems = 50;
    p.minBytes = 100;
    p.maxBytes = 5000;
    auto a = WebCorpus::generate(p);
    auto b = WebCorpus::generate(p);
    ASSERT_EQ(a.size(), 50u);
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].payload, b[i].payload);
        EXPECT_GE(a[i].payload.size(), 100u);
        EXPECT_LE(a[i].payload.size(), 5000u);
    }
}

TEST(WebCorpus, TextItemsShareContentImagesDoNot)
{
    WebCorpus::Params pages;
    pages.kind = WebCorpus::Kind::Pages;
    pages.numItems = 30;
    pages.minBytes = 2000;
    pages.maxBytes = 4000;
    auto html = WebCorpus::generate(pages);

    WebCorpus::Params imgs = pages;
    imgs.kind = WebCorpus::Kind::Images;
    imgs.seed = 7;
    // All-distinct blobs isolate the intra-file (non-)dedup property;
    // whole-file duplication is a separate knob.
    imgs.uniqueImageFraction = 1.0;
    auto bin = WebCorpus::generate(imgs);

    // Dedup rate through a real HICAMP store: text must compact,
    // images must not.
    MemoryConfig cfg;
    cfg.numBuckets = 1 << 15;
    auto dedup_ratio = [&](const std::vector<WebItem> &items) {
        Memory mem(cfg);
        SegBuilder b(mem);
        std::vector<SegDesc> keep;
        std::uint64_t raw = 0;
        for (const auto &it : items) {
            keep.push_back(
                b.buildBytes(it.payload.data(), it.payload.size()));
            raw += it.payload.size();
        }
        return static_cast<double>(raw) /
               static_cast<double>(mem.liveBytes());
    };
    EXPECT_GT(dedup_ratio(html), 1.3);
    EXPECT_LT(dedup_ratio(bin), 1.05);
}

TEST(WebCorpus, MutatePreservesLength)
{
    Rng rng(1);
    std::string s(500, 'a');
    std::string t = WebCorpus::mutate(s, rng);
    EXPECT_EQ(t.size(), s.size());
    EXPECT_NE(t, s);
}

TEST(McWorkload, RespectsMix)
{
    WebCorpus::Params p;
    p.numItems = 100;
    auto items = WebCorpus::generate(p);
    McWorkloadParams wp;
    wp.numRequests = 5000;
    auto reqs = generateMcRequests(items, wp);
    ASSERT_EQ(reqs.size(), 5000u);
    std::uint64_t gets = 0, sets = 0, dels = 0;
    for (const auto &r : reqs) {
        switch (r.op) {
          case McRequest::Op::Get:
            ++gets;
            break;
          case McRequest::Op::Set:
            ++sets;
            EXPECT_FALSE(r.newValue.empty());
            break;
          case McRequest::Op::Delete:
            ++dels;
            break;
        }
    }
    EXPECT_NEAR(static_cast<double>(gets) / 5000.0, 0.90, 0.03);
    EXPECT_GT(sets, 0u);
    EXPECT_GT(dels, 0u);
}

TEST(ConvMemcached, SetGetDelete)
{
    ConvMemcached mc(16, 100);
    EXPECT_FALSE(mc.get("absent"));
    mc.set("k1", 500);
    EXPECT_TRUE(mc.get("k1"));
    mc.set("k1", 700); // replace
    EXPECT_EQ(mc.itemCount(), 1u);
    EXPECT_TRUE(mc.del("k1"));
    EXPECT_FALSE(mc.get("k1"));
    EXPECT_FALSE(mc.del("k1"));
}

TEST(ConvMemcached, ManyKeysWithChains)
{
    ConvMemcached mc(16, 64); // small table forces chains
    for (int i = 0; i < 500; ++i)
        mc.set("key" + std::to_string(i), 100 + i % 50);
    EXPECT_EQ(mc.itemCount(), 500u);
    for (int i = 0; i < 500; ++i)
        EXPECT_TRUE(mc.get("key" + std::to_string(i)));
    for (int i = 0; i < 500; i += 3)
        EXPECT_TRUE(mc.del("key" + std::to_string(i)));
    for (int i = 0; i < 500; ++i) {
        EXPECT_EQ(mc.get("key" + std::to_string(i)), i % 3 != 0)
            << "key" << i;
    }
}

TEST(ConvMemcached, TrafficScalesWithValueSize)
{
    ConvMemcached mc(16, 100);
    mc.set("small", 64);
    mc.set("large", 64 * 1024);
    std::uint64_t before = mc.hierarchy().dramTotal();
    // Large value misses dwarf small value misses.
    mc.get("large");
    std::uint64_t large_cost = mc.hierarchy().dramTotal() - before;
    before = mc.hierarchy().dramTotal();
    mc.get("small");
    std::uint64_t small_cost = mc.hierarchy().dramTotal() - before;
    EXPECT_GT(large_cost, small_cost * 10);
}

TEST(ConvMemcached, SlabMemoryIsReused)
{
    ConvMemcached mc(16, 100);
    for (int round = 0; round < 10; ++round) {
        for (int i = 0; i < 20; ++i)
            mc.set("cycle" + std::to_string(i), 1000);
        for (int i = 0; i < 20; ++i)
            mc.del("cycle" + std::to_string(i));
    }
    // Reserved slab memory stays bounded by one round's worth.
    EXPECT_LT(mc.residentBytes(), 16u * (1 << 20));
}

struct HicampMcFixture : ::testing::Test {
    HicampMcFixture() : hc(cfg()), mc(hc) {}
    static MemoryConfig
    cfg()
    {
        MemoryConfig c;
        c.numBuckets = 1 << 14;
        return c;
    }
    Hicamp hc;
    HicampMemcached mc;
};

TEST_F(HicampMcFixture, SetGetDelete)
{
    EXPECT_FALSE(mc.get("absent").has_value());
    mc.set("k1", std::string(300, 'v'));
    auto got = mc.get("k1");
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, 300u);
    EXPECT_TRUE(mc.del("k1"));
    EXPECT_FALSE(mc.get("k1").has_value());
}

TEST_F(HicampMcFixture, RepeatedValuesDeduplicate)
{
    // A value with distinct lines (not self-deduplicating).
    std::string common;
    Rng rng(9);
    for (int i = 0; i < 500; ++i) {
        std::uint64_t w = rng.next();
        common.append(reinterpret_cast<const char *>(&w), 8);
    }
    mc.set("a", common);
    std::uint64_t after_one = hc.mem.liveBytes();
    EXPECT_GT(after_one, common.size()); // leaves + DAG overhead
    for (int i = 0; i < 10; ++i)
        mc.set("dup" + std::to_string(i), common);
    // Ten more copies of the same value add only map/pair overhead —
    // a few hundred bytes each, nothing like ten more value bodies.
    EXPECT_LT(hc.mem.liveBytes(), after_one + 10 * 600);
}

TEST_F(HicampMcFixture, GetGeneratesNoWriteTraffic)
{
    mc.set("ro", std::string(2000, 'r'));
    hc.mem.resetTraffic();
    mc.get("ro");
    EXPECT_EQ(hc.mem.dram().writes(), 0u);
    EXPECT_EQ(hc.mem.dram().deallocs(), 0u);
}

TEST_F(HicampMcFixture, AddOnlyIfAbsent)
{
    EXPECT_TRUE(mc.add("fresh", "v1"));
    EXPECT_FALSE(mc.add("fresh", "v2")); // already present
    mc.del("fresh");
    EXPECT_TRUE(mc.add("fresh", "v3")); // present again after delete
}

TEST_F(HicampMcFixture, ReplaceOnlyIfPresent)
{
    EXPECT_FALSE(mc.replace("ghost", "x"));
    mc.set("ghost", "v1");
    EXPECT_TRUE(mc.replace("ghost", "v2"));
    EXPECT_EQ(*mc.get("ghost"), 2u);
}

TEST_F(HicampMcFixture, IncrDecrSemantics)
{
    EXPECT_FALSE(mc.incr("counter", 1).has_value()); // absent
    mc.set("counter", "100");
    EXPECT_EQ(*mc.incr("counter", 5), 105);
    EXPECT_EQ(*mc.incr("counter", -30), 75);
    mc.set("notanumber", "abc");
    EXPECT_FALSE(mc.incr("notanumber", 1).has_value());
}

TEST_F(HicampMcFixture, IncrIsAtomicUnderThreads)
{
    mc.set("hits", "0");
    constexpr int kThreads = 4, kIncs = 40;
    std::vector<std::thread> ts;
    for (int t = 0; t < kThreads; ++t) {
        ts.emplace_back([&] {
            for (int i = 0; i < kIncs; ++i)
                mc.incr("hits", 1);
        });
    }
    for (auto &t : ts)
        t.join();
    auto end = mc.incr("hits", 0);
    ASSERT_TRUE(end.has_value());
    EXPECT_EQ(*end, kThreads * kIncs);
}

TEST_F(HicampMcFixture, ValueCasDetectsInterference)
{
    Hicamp &h = hc;
    HMap &map = mc.map();
    HString k(h, "cas-key");
    map.set(k, HString(h, "v1"));
    // CAS with the right expected value succeeds...
    EXPECT_TRUE(map.compareAndSet(k, HString(h, "v1"), HString(h, "v2")));
    // ...with a stale expected value fails...
    EXPECT_FALSE(map.compareAndSet(k, HString(h, "v1"), HString(h, "v3")));
    EXPECT_EQ(map.get(k)->str(), "v2");
    // ...and on a missing key fails.
    EXPECT_FALSE(map.compareAndSet(HString(h, "absent"), HString(h, "a"),
                                   HString(h, "b")));
}

TEST_F(HicampMcFixture, WorkloadEndToEnd)
{
    WebCorpus::Params p;
    p.numItems = 60;
    p.minBytes = 200;
    p.maxBytes = 3000;
    auto items = WebCorpus::generate(p);
    for (const auto &it : items)
        mc.set(it.key, it.payload);

    McWorkloadParams wp;
    wp.numRequests = 500;
    auto reqs = generateMcRequests(items, wp);
    std::uint64_t hits = 0, misses = 0;
    for (const auto &r : reqs) {
        const std::string &key = items[r.itemIndex].key;
        switch (r.op) {
          case McRequest::Op::Get:
            mc.get(key).has_value() ? ++hits : ++misses;
            break;
          case McRequest::Op::Set:
            mc.set(key, r.newValue);
            break;
          case McRequest::Op::Delete:
            mc.del(key);
            break;
        }
    }
    EXPECT_GT(hits, misses); // only deleted keys can miss
    EXPECT_GT(hc.mem.dram().lookups(), 0u);
    EXPECT_GT(hc.mem.dram().refcounts(), 0u);
}

} // namespace
} // namespace hicamp
