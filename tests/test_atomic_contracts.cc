/**
 * @file
 * Litmus tests for the three core memory-order contracts the
 * DESIGN.md §13 role vocabulary encodes (HICAMP_ATOMIC_PUBLISH,
 * HICAMP_ATOMIC_CLAIM_CAS, HICAMP_ATOMIC_SEQLOCK). Each test is a
 * minimal two-sided protocol exercised by real threads; the CI TSan
 * job runs them to prove the pairings race-free, and the assertions
 * fail loudly if an ordering edge is ever weakened (e.g. a release
 * store demoted to relaxed would let a consumer observe a
 * half-initialized payload).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "common/thread_annotations.hh"

namespace hicamp {
namespace {

/**
 * PUBLISH contract (§13): a writer fully constructs a payload, then
 * publishes its pointer with a release store; a reader's acquire
 * load of the pointer must make every payload field visible. This is
 * the OverflowShard chunk-directory idiom (line_store.hh) reduced to
 * its two edges.
 */
TEST(AtomicContracts, PublishAcquireHandoff)
{
    struct Payload {
        std::uint64_t a = 0;
        std::uint64_t b = 0;
        std::uint64_t c = 0;
    };
    constexpr int kRounds = 500;
    std::atomic<Payload *> published{nullptr};
    std::atomic<bool> consumed{false};

    std::thread producer([&] {
        for (int i = 1; i <= kRounds; ++i) {
            auto *p = new Payload;
            // Plain stores: only the release publication below may
            // order them for the consumer.
            p->a = static_cast<std::uint64_t>(i);
            p->b = static_cast<std::uint64_t>(i) * 3;
            p->c = p->a + p->b;
            published.store(p, std::memory_order_release);
            while (!consumed.load(std::memory_order_acquire))
                std::this_thread::yield();
            consumed.store(false, std::memory_order_relaxed);
        }
    });
    std::thread consumer([&] {
        for (int i = 1; i <= kRounds; ++i) {
            Payload *p = nullptr;
            while ((p = published.exchange(
                        nullptr, std::memory_order_acquire)) ==
                   nullptr) {
                std::this_thread::yield();
            }
            // The acquire above must carry all three plain stores.
            EXPECT_EQ(p->a, static_cast<std::uint64_t>(i));
            EXPECT_EQ(p->b, p->a * 3);
            EXPECT_EQ(p->c, p->a + p->b);
            delete p;
            consumed.store(true, std::memory_order_release);
        }
    });
    producer.join();
    consumer.join();
}

/**
 * CLAIM_CAS contract (§13): threads race a compare-exchange to claim
 * a slot; success carries acquire (the claimant inherits the prior
 * owner's plain-field writes) and the handback is a release. Exactly
 * one claimant may win each round, and the unsynchronized tally the
 * winners keep is single-writer-at-a-time by construction — a lost
 * ordering edge shows up as a TSan race or a miscount.
 */
TEST(AtomicContracts, CasClaimRace)
{
    constexpr int kThreads = 4;
    constexpr int kRounds = 2000;
    struct Slot {
        std::atomic<int> owner{0};
        std::uint64_t tally = 0; // guarded by owning the slot
    };
    Slot slot;
    std::atomic<std::uint64_t> wins{0};

    std::vector<std::thread> threads;
    for (int t = 1; t <= kThreads; ++t) {
        threads.emplace_back([&, t] {
            for (int i = 0; i < kRounds; ++i) {
                int expected = 0;
                // Failure order stays acquire (never release, never
                // stronger than success): losers just retry later.
                if (slot.owner.compare_exchange_strong(
                        expected, t, std::memory_order_acq_rel,
                        std::memory_order_acquire)) {
                    ++slot.tally; // exclusive by claim
                    wins.fetch_add(1, std::memory_order_relaxed);
                    slot.owner.store(0, std::memory_order_release);
                }
            }
        });
    }
    for (auto &th : threads)
        th.join();
    // Every successful claim incremented the plain tally exactly
    // once; the acquire/release claim chain makes them all visible.
    EXPECT_EQ(slot.tally, wins.load());
    EXPECT_GE(wins.load(), static_cast<std::uint64_t>(kRounds));
}

/**
 * SEQLOCK contract (§13): the Boehm read/validate protocol on the
 * repo's own SeqCount. A writer publishes a two-field invariant
 * (b == 2*a) inside writeBegin/writeEnd sections; readers loop on
 * readBegin/validate and must never act on a torn snapshot. Guarded
 * fields are relaxed atomics, the §7 idiom for seqlock-published
 * siblings — the SeqCount fences carry all the ordering.
 */
TEST(AtomicContracts, SeqlockTornReadRetry)
{
    SeqCount seq;
    std::atomic<std::uint64_t> a{0};
    std::atomic<std::uint64_t> b{0};
    constexpr int kWrites = 4000;
    std::atomic<bool> stop{false};

    std::thread writer([&] {
        for (std::uint64_t i = 1; i <= kWrites; ++i) {
            seq.writeBegin();
            a.store(i, std::memory_order_relaxed);
            b.store(2 * i, std::memory_order_relaxed);
            seq.writeEnd();
        }
        stop.store(true, std::memory_order_release);
    });
    std::vector<std::thread> readers;
    for (int t = 0; t < 2; ++t) {
        readers.emplace_back([&] {
            std::uint64_t snapshots = 0;
            while (!stop.load(std::memory_order_acquire) ||
                   snapshots == 0) {
                const std::uint32_t s1 = seq.readBegin();
                if (s1 & 1u)
                    continue; // writer in flight: retry
                const std::uint64_t ra =
                    a.load(std::memory_order_relaxed);
                const std::uint64_t rb =
                    b.load(std::memory_order_relaxed);
                if (!seq.validate(s1))
                    continue; // torn: retry, never consume
                ASSERT_EQ(rb, 2 * ra); // untorn snapshot invariant
                ++snapshots;
            }
            EXPECT_GT(snapshots, 0u);
        });
    }
    writer.join();
    for (auto &r : readers)
        r.join();
    EXPECT_EQ(a.load(std::memory_order_relaxed),
              static_cast<std::uint64_t>(kWrites));
}

} // namespace
} // namespace hicamp
