/**
 * @file
 * Tests of the memory-system facade: lookup/read protocol traffic
 * attribution, cache filtering, reference counting with recursive
 * reclamation, intern semantics and transient lines.
 */

#include <gtest/gtest.h>

#include <vector>

#include "audit_check.hh"
#include "mem/memory.hh"

namespace hicamp {
namespace {

MemoryConfig
smallCfg(unsigned line_bytes = 16)
{
    MemoryConfig cfg;
    cfg.lineBytes = line_bytes;
    cfg.numBuckets = 1 << 12;
    // Exact lookup/traffic counts: injected allocation failures would
    // perturb the measurements these tests assert.
    cfg.faults.allowEnvOverride = false;
    return cfg;
}

Line
dataLine(Memory &mem, Word tag)
{
    Line l = mem.makeLine();
    l.set(0, tag);
    l.set(1, tag * 31 + 7);
    return l;
}

TEST(Memory, LookupAllocatesOnce)
{
    Memory mem(smallCfg());
    bool fresh1 = false, fresh2 = false;
    Plid p1 = mem.lookup(dataLine(mem, 1), &fresh1);
    Plid p2 = mem.lookup(dataLine(mem, 1), &fresh2);
    EXPECT_TRUE(fresh1);
    EXPECT_FALSE(fresh2);
    EXPECT_EQ(p1, p2);
    EXPECT_EQ(mem.refCount(p1), 2u);
    EXPECT_EQ(mem.liveLines(), 1u);
}

TEST(Memory, ZeroContentIsZeroPlid)
{
    Memory mem(smallCfg());
    EXPECT_EQ(mem.lookup(mem.makeLine()), kZeroPlid);
    EXPECT_EQ(mem.liveLines(), 0u);
}

TEST(Memory, DecRefReclaims)
{
    Memory mem(smallCfg());
    Plid p = mem.lookup(dataLine(mem, 2));
    EXPECT_TRUE(mem.isLive(p));
    mem.decRef(p);
    EXPECT_FALSE(mem.isLive(p));
    EXPECT_EQ(mem.liveLines(), 0u);
}

TEST(Memory, RecursiveReclaimReleasesChildren)
{
    Memory mem(smallCfg());
    Plid leaf = mem.lookup(dataLine(mem, 3));
    // A parent line referencing the leaf twice; the intern consumes
    // one owned reference per PLID word, so acquire a second one and
    // hand both over (we keep no leaf handle of our own).
    Line parent = mem.makeLine();
    parent.set(0, leaf, WordMeta::plid());
    parent.set(1, leaf, WordMeta::plid());
    mem.incRef(leaf); // parent's second reference
    Plid pp = mem.internLine(parent);
    EXPECT_TRUE(mem.isLive(leaf));
    EXPECT_EQ(mem.refCount(leaf), 2u);
    // Releasing the parent cascades.
    mem.decRef(pp);
    EXPECT_FALSE(mem.isLive(leaf));
    EXPECT_EQ(mem.liveLines(), 0u);
    EXPECT_EQ(mem.deallocatedLines(), 2u);
}

TEST(Memory, InternReleasesChildRefsOnDedupHit)
{
    Memory mem(smallCfg());
    Plid leaf = mem.lookup(dataLine(mem, 4));

    Line parent = mem.makeLine();
    parent.set(0, leaf, WordMeta::plid());
    // First intern: consumes our leaf ref (we give it away).
    Plid p1 = mem.internLine(parent);
    EXPECT_EQ(mem.refCount(leaf), 1u);

    // Second intern of identical content: caller must own a child ref,
    // which the dedup hit releases.
    mem.incRef(leaf);
    Plid p2 = mem.internLine(parent);
    EXPECT_EQ(p1, p2);
    EXPECT_EQ(mem.refCount(leaf), 1u);
    EXPECT_EQ(mem.refCount(p1), 2u);

    mem.decRef(p1);
    mem.decRef(p1);
    EXPECT_EQ(mem.liveLines(), 0u);
}

TEST(Memory, LookupTrafficCategories)
{
    Memory mem(smallCfg());
    mem.resetTraffic();
    (void)mem.lookup(dataLine(mem, 5));
    // Fresh allocation with cold caches: at least the signature read
    // goes to DRAM in the lookup category; refcount traffic appears in
    // the RC category; nothing lands in plain reads/writes yet.
    EXPECT_GE(mem.dram().lookups(), 1u);
    EXPECT_GE(mem.dram().refcounts(), 1u);
    EXPECT_EQ(mem.dram().reads(), 0u);
}

TEST(Memory, CachedLookupAvoidsDram)
{
    Memory mem(smallCfg());
    Plid p = mem.lookup(dataLine(mem, 6));
    (void)p;
    mem.resetTraffic();
    // Same content again: the LLC content-search hits; only RC traffic
    // (which itself hits the cached RC line) may occur.
    (void)mem.lookup(dataLine(mem, 6));
    EXPECT_EQ(mem.dram().lookups(), 0u);
    EXPECT_EQ(mem.dram().reads(), 0u);
}

TEST(Memory, ReadThroughCacheCountsOnce)
{
    MemoryConfig cfg = smallCfg();
    Memory mem(cfg);
    Plid p = mem.lookup(dataLine(mem, 7));
    mem.resetTraffic();
    Line l1 = mem.readLine(p);
    Line l2 = mem.readLine(p);
    EXPECT_EQ(l1, l2);
    // Line was still in LLC from the lookup: zero DRAM reads.
    EXPECT_EQ(mem.dram().reads(), 0u);
    EXPECT_EQ(l1.word(0), 7u);
}

TEST(Memory, DeallocCancelsPendingWriteback)
{
    Memory mem(smallCfg());
    mem.resetTraffic();
    Plid p = mem.lookup(dataLine(mem, 8));
    mem.decRef(p);
    // The line never left the cache: its data writeback must have been
    // cancelled, so lookup-category DRAM traffic stays at protocol
    // reads (signature), not writes.
    EXPECT_EQ(mem.liveLines(), 0u);
}

TEST(Memory, TransientWriteNoDramUntilEviction)
{
    Memory mem(smallCfg());
    mem.resetTraffic();
    std::uint64_t t = mem.allocTransient();
    mem.transientAccess(t, true);
    mem.transientAccess(t, false);
    EXPECT_EQ(mem.dram().total(), 0u);
    mem.invalidateTransient(t);
    EXPECT_EQ(mem.dram().total(), 0u); // dirty line dropped, not written
}

TEST(Memory, SigFalsePositivesAreRare)
{
    Memory mem(smallCfg());
    for (Word v = 1; v <= 2000; ++v)
        (void)mem.lookup(dataLine(mem, v));
    // 8-bit signatures: expected false-positive rate well under 5%
    // (paper footnote 4). Allow slack for the small store.
    EXPECT_LT(mem.sigFalsePositives(), 2000u / 10);
}

TEST(Memory, WordTagsSurviveRoundTrip)
{
    Memory mem(smallCfg(32));
    Line l = mem.makeLine();
    l.set(0, 77, WordMeta::plid(2, 3));
    l.set(1, 88, WordMeta::vsid());
    l.set(2, 99, WordMeta::inlineData(1));
    // PLID-tagged word 77 needs a live target to keep refcounting
    // sane; use a raw line so word 0 refers to something real.
    Line target = mem.makeLine();
    target.set(0, 1234);
    Plid tp = mem.lookup(target);
    l.set(0, tp, WordMeta::plid(2, 3));
    Plid p = mem.internLine(l);
    Line back = mem.readLine(p);
    EXPECT_EQ(back.meta(0).skip(), 2u);
    EXPECT_EQ(back.meta(0).path(), 3u);
    EXPECT_TRUE(back.meta(1).isVsid());
    EXPECT_TRUE(back.meta(2).isInline());
    EXPECT_EQ(back.meta(2).inlineWidth(), 16u);
}

TEST(Memory, LiveBytesTracksLines)
{
    Memory mem(smallCfg());
    (void)mem.lookup(dataLine(mem, 10));
    (void)mem.lookup(dataLine(mem, 11));
    EXPECT_EQ(mem.liveBytes(), 2u * 16u);
}

// Different line sizes are exercised across the suite via this
// parameterized sanity check.
class MemoryLineSize : public ::testing::TestWithParam<unsigned>
{};

TEST_P(MemoryLineSize, RoundTripAtEachWidth)
{
    Memory mem(smallCfg(GetParam()));
    Line l = mem.makeLine();
    for (unsigned i = 0; i < mem.lineWords(); ++i)
        l.set(i, i + 100);
    Plid p = mem.lookup(l);
    EXPECT_EQ(mem.readLine(p), l);
    EXPECT_EQ(mem.lineBytes(), GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllWidths, MemoryLineSize,
                         ::testing::Values(16u, 32u, 64u));

TEST(Memory, AuditSweepAfterChurn)
{
    Memory mem(smallCfg());
    std::vector<Plid> held;
    for (Word t = 1; t <= 64; ++t)
        held.push_back(mem.lookup(dataLine(mem, t)));
    for (Word t = 1; t <= 64; t += 2)
        mem.decRef(held[t - 1]);

    // Mid-churn: the refs this test still holds are declared, and the
    // cross-layer auditor must account the heap exactly.
    Auditor::Options opts;
    for (Word t = 2; t <= 64; t += 2)
        opts.externalRefs.push_back(held[t - 1]);
    expectCleanAudit(mem, nullptr, opts);

    for (Word t = 2; t <= 64; t += 2)
        mem.decRef(held[t - 1]);
    expectCleanAudit(mem, nullptr);
    EXPECT_EQ(mem.liveLines(), 0u);
}

} // namespace
} // namespace hicamp
