/**
 * @file
 * Unit tests for the dual-mode HICAMP cache (paper Fig. 3): read-by-
 * key filling and LRU, content-searchability and the bucket-to-set
 * mapping invariant, dirty-writeback category propagation,
 * invalidation (including cancelled writebacks) and the kind-keyed
 * coexistence of data/signature/refcount/transient lines.
 */

#include <gtest/gtest.h>

#include "mem/hicamp_cache.hh"

namespace hicamp {
namespace {

Line
mkLine(Word a, Word b = 0)
{
    Line l(2);
    l.set(0, a);
    l.set(1, b);
    return l;
}

TEST(HicampCacheUnit, HitAfterFill)
{
    HicampCache c(1024, 2, 16, true);
    auto a1 = c.access({LineKind::Data, 42}, 7, false, DramCat::Read);
    EXPECT_FALSE(a1.hit);
    auto a2 = c.access({LineKind::Data, 42}, 7, false, DramCat::Read);
    EXPECT_TRUE(a2.hit);
}

TEST(HicampCacheUnit, KindsDoNotAlias)
{
    HicampCache c(1024, 4, 16, true);
    c.access({LineKind::Data, 9}, 3, false, DramCat::Read);
    auto sig = c.access({LineKind::Sig, 9}, 3, false, DramCat::Lookup);
    EXPECT_FALSE(sig.hit); // same id, different kind: distinct entry
    auto rc = c.access({LineKind::Rc, 9}, 3, false, DramCat::RefCount);
    EXPECT_FALSE(rc.hit);
    EXPECT_TRUE(c.contains({LineKind::Data, 9}, 3));
    EXPECT_TRUE(c.contains({LineKind::Sig, 9}, 3));
    EXPECT_TRUE(c.contains({LineKind::Rc, 9}, 3));
}

TEST(HicampCacheUnit, ContentLookupFindsResidentLine)
{
    HicampCache c(4096, 4, 16, true);
    Line content = mkLine(0xabc, 0xdef);
    std::uint64_t hash = content.contentHash();
    // The invariant: the line is inserted with its home (bucket) as
    // the set index source, and searched by content hash — both must
    // select the same set, which holds when home = hash mod buckets
    // and sets divide buckets. Use the hash itself as home here.
    c.access({LineKind::Data, 77}, hash, true, DramCat::Lookup,
             &content);
    auto found = c.lookupContent(content, hash);
    ASSERT_TRUE(found.has_value());
    EXPECT_EQ(*found, 77u);
}

TEST(HicampCacheUnit, ContentLookupMissesAbsentContent)
{
    HicampCache c(4096, 4, 16, true);
    Line a = mkLine(1), b = mkLine(2);
    c.access({LineKind::Data, 1}, a.contentHash(), false,
             DramCat::Read, &a);
    EXPECT_FALSE(c.lookupContent(b, b.contentHash()).has_value());
}

TEST(HicampCacheUnit, NonSearchableCacheNeverMatchesContent)
{
    HicampCache c(4096, 4, 16, /*content_searchable=*/false);
    Line a = mkLine(7);
    c.access({LineKind::Data, 5}, a.contentHash(), false, DramCat::Read,
             &a);
    EXPECT_FALSE(c.lookupContent(a, a.contentHash()).has_value());
}

TEST(HicampCacheUnit, WritebackCarriesCategory)
{
    HicampCache c(256, 2, 16, true); // 8 sets x 2 ways
    // Two dirty lookup-category entries in set 0, then force both out.
    c.access({LineKind::Data, 1}, 0, true, DramCat::Lookup);
    c.access({LineKind::Data, 2}, 8, true, DramCat::Write); // set 0 too
    auto ev1 = c.access({LineKind::Data, 3}, 16, false, DramCat::Read);
    ASSERT_TRUE(ev1.writeback.has_value());
    EXPECT_EQ(*ev1.writeback, DramCat::Lookup); // LRU victim was id 1
    EXPECT_EQ(ev1.victimKey.id, 1u);
    EXPECT_EQ(ev1.victimHome, 0u);
}

TEST(HicampCacheUnit, InvalidateCancelsDirty)
{
    HicampCache c(256, 2, 16, true);
    c.access({LineKind::Data, 1}, 0, true, DramCat::Lookup);
    EXPECT_TRUE(c.invalidate({LineKind::Data, 1}, 0));
    // Re-filling the set evicts nothing dirty.
    c.access({LineKind::Data, 2}, 8, false, DramCat::Read);
    auto ev = c.access({LineKind::Data, 3}, 16, false, DramCat::Read);
    EXPECT_FALSE(ev.writeback.has_value());
}

TEST(HicampCacheUnit, CleanAllDropsPendingWritebacks)
{
    HicampCache c(256, 2, 16, true);
    c.access({LineKind::Data, 1}, 0, true, DramCat::Write);
    c.cleanAll();
    c.access({LineKind::Data, 2}, 8, false, DramCat::Read);
    auto ev = c.access({LineKind::Data, 3}, 16, false, DramCat::Read);
    EXPECT_FALSE(ev.writeback.has_value());
}

TEST(HicampCacheUnit, InvalidateAllEmptiesCache)
{
    HicampCache c(256, 2, 16, true);
    c.access({LineKind::Data, 1}, 0, false, DramCat::Read);
    c.invalidateAll();
    EXPECT_FALSE(c.contains({LineKind::Data, 1}, 0));
}

TEST(HicampCacheUnit, HitRefreshesLru)
{
    HicampCache c(256, 2, 16, true);
    c.access({LineKind::Data, 1}, 0, false, DramCat::Read);
    c.access({LineKind::Data, 2}, 8, false, DramCat::Read);
    c.access({LineKind::Data, 1}, 0, false, DramCat::Read); // refresh
    c.access({LineKind::Data, 3}, 16, false, DramCat::Read); // evict 2
    EXPECT_TRUE(c.contains({LineKind::Data, 1}, 0));
    EXPECT_FALSE(c.contains({LineKind::Data, 2}, 8));
}

} // namespace
} // namespace hicamp
