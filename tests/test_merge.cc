/**
 * @file
 * Dedicated merge-update (§3.4) property tests across all line
 * widths: counter-difference semantics, commutativity of disjoint
 * merges, conflict detection (including matching double-stores,
 * which must not collapse), deep-tree merges through compacted
 * entries, and refcount hygiene after merges.
 */

#include <gtest/gtest.h>

#include "audit_check.hh"
#include "seg/merge.hh"

namespace hicamp {
namespace {

struct MergeFixture : ::testing::TestWithParam<unsigned> {
    MergeFixture() : mem(cfg()), builder(mem), reader(mem) {}

    MemoryConfig
    cfg() const
    {
        MemoryConfig c;
        c.lineBytes = GetParam();
        c.numBuckets = 1 << 12;
        return c;
    }

    SegDesc
    seg(const std::vector<Word> &w)
    {
        std::vector<WordMeta> m(w.size(), WordMeta::raw());
        return builder.buildWords(w.data(), m.data(), w.size());
    }

    std::vector<Word>
    words(const Entry &e, int h)
    {
        std::vector<Word> w;
        std::vector<WordMeta> m;
        reader.materialize(e, h, w, m);
        return w;
    }

    Memory mem;
    SegBuilder builder;
    SegReader reader;
};

TEST_P(MergeFixture, DisjointWritesBothSurvive)
{
    SegDesc o = seg({0, 0, 0, 0, 0, 0, 0, 0});
    Entry a = builder.setWord(o.root, o.height, 1, 11, WordMeta::raw());
    Entry b = builder.setWord(o.root, o.height, 6, 66, WordMeta::raw());
    auto m = mergeUpdate(mem, o.root, a, b, o.height);
    ASSERT_TRUE(m.has_value());
    auto w = words(*m, o.height);
    EXPECT_EQ(w[1], 11u);
    EXPECT_EQ(w[6], 66u);
}

TEST_P(MergeFixture, MergeIsCommutativeForDisjointWrites)
{
    SegDesc o = seg({5, 5, 5, 5, 5, 5, 5, 5});
    Entry a = builder.setWord(o.root, o.height, 0, 100, WordMeta::raw());
    Entry b = builder.setWord(o.root, o.height, 7, 700, WordMeta::raw());
    auto ab = mergeUpdate(mem, o.root, a, b, o.height);
    auto ba = mergeUpdate(mem, o.root, b, a, o.height);
    ASSERT_TRUE(ab && ba);
    // Canonical representation: same content, same entry.
    EXPECT_EQ(*ab, *ba);
    builder.release(*ab);
    builder.release(*ba);
}

TEST_P(MergeFixture, CounterDeltasSum)
{
    SegDesc o = seg({1000, 2000});
    Entry a = builder.setWord(o.root, o.height, 0, 1007,
                              WordMeta::raw()); // +7
    Entry b = builder.setWord(o.root, o.height, 0, 1003,
                              WordMeta::raw()); // +3
    auto m = mergeUpdate(mem, o.root, a, b, o.height);
    ASSERT_TRUE(m.has_value());
    EXPECT_EQ(words(*m, o.height)[0], 1010u); // 1000 + 7 + 3
}

TEST_P(MergeFixture, EqualDeltasStillSum)
{
    // Two +1s that produce identical words must still sum to +2.
    SegDesc o = seg({41, 0});
    Entry a = builder.setWord(o.root, o.height, 0, 42, WordMeta::raw());
    Entry b = builder.setWord(o.root, o.height, 0, 42, WordMeta::raw());
    auto m = mergeUpdate(mem, o.root, a, b, o.height);
    ASSERT_TRUE(m.has_value());
    EXPECT_EQ(words(*m, o.height)[0], 43u);
}

TEST_P(MergeFixture, NegativeDeltaWraps)
{
    SegDesc o = seg({100, 0});
    Entry a = builder.setWord(o.root, o.height, 0, 90,
                              WordMeta::raw()); // -10
    Entry b = builder.setWord(o.root, o.height, 0, 105,
                              WordMeta::raw()); // +5
    auto m = mergeUpdate(mem, o.root, a, b, o.height);
    ASSERT_TRUE(m.has_value());
    EXPECT_EQ(words(*m, o.height)[0], 95u); // 100 - 10 + 5
}

TEST_P(MergeFixture, SameReferenceDoubleStoreConflicts)
{
    // Two stores of the SAME reference into the same slot must
    // conflict, not collapse: a matching store may be a consume (two
    // queue pops claiming one slot, two pushes of equal content
    // filling one tail slot), and merging them would record one
    // operation while sibling counter words delta-merge as two.
    Line pay = mem.makeLine();
    pay.set(0, 0xabcdULL);
    Plid p = mem.lookup(pay);

    SegDesc o = seg({0, 0, 0, 0});
    Entry a = builder.setWord(o.root, o.height, 2, p, WordMeta::plid());
    mem.incRef(p);
    Entry b = builder.setWord(o.root, o.height, 2, p, WordMeta::plid());
    auto m = mergeUpdate(mem, o.root, a, b, o.height);
    EXPECT_FALSE(m.has_value());
}

TEST_P(MergeFixture, BothSidesClearingOneReferenceConflicts)
{
    // The pop/pop race: both sides clear the reference at slot 2 (a
    // queue pop's claim). The clears look identical but each pop
    // believes it consumed the item, so the merge must fail and force
    // an application retry.
    Line pay = mem.makeLine();
    pay.set(0, 0x5150ULL);
    Plid p = mem.lookup(pay);

    Word w0[4] = {0, 0, p, 0};
    WordMeta m0[4] = {WordMeta::raw(), WordMeta::raw(),
                      WordMeta::plid(), WordMeta::raw()};
    SegDesc o = builder.buildWords(w0, m0, 4);
    Entry a = builder.setWord(o.root, o.height, 2, 0, WordMeta::raw());
    Entry b = builder.setWord(o.root, o.height, 2, 0, WordMeta::raw());
    auto m = mergeUpdate(mem, o.root, a, b, o.height);
    EXPECT_FALSE(m.has_value());
}

TEST_P(MergeFixture, DistinctReferencesConflict)
{
    Line p1l = mem.makeLine(), p2l = mem.makeLine();
    p1l.set(0, 1);
    p2l.set(0, 2);
    Plid p1 = mem.lookup(p1l), p2 = mem.lookup(p2l);

    SegDesc o = seg({0, 0, 0, 0});
    Entry a = builder.setWord(o.root, o.height, 1, p1, WordMeta::plid());
    Entry b = builder.setWord(o.root, o.height, 1, p2, WordMeta::plid());
    MergeStats stats;
    auto m = mergeUpdate(mem, o.root, a, b, o.height, &stats);
    EXPECT_FALSE(m.has_value());
}

TEST_P(MergeFixture, RawVsReferenceConflict)
{
    Line pl = mem.makeLine();
    pl.set(0, 9);
    Plid p = mem.lookup(pl);

    SegDesc o = seg({7, 0});
    Entry a = builder.setWord(o.root, o.height, 0, 55, WordMeta::raw());
    Entry b = builder.setWord(o.root, o.height, 0, p, WordMeta::plid());
    auto m = mergeUpdate(mem, o.root, a, b, o.height);
    EXPECT_FALSE(m.has_value());
}

TEST_P(MergeFixture, DeepTreeDisjointSubtrees)
{
    std::vector<Word> base(4096, 0);
    SegDesc o = seg(base);
    Entry a = builder.setWord(o.root, o.height, 10, 0xAAAA,
                              WordMeta::raw());
    Entry b = builder.setWord(o.root, o.height, 4000, 0xBBBB,
                              WordMeta::raw());
    MergeStats stats;
    auto m = mergeUpdate(mem, o.root, a, b, o.height, &stats);
    ASSERT_TRUE(m.has_value());
    EXPECT_EQ(reader.readWord(*m, o.height, 10), 0xAAAAu);
    EXPECT_EQ(reader.readWord(*m, o.height, 4000), 0xBBBBu);
    // Unchanged subtrees were resolved by root comparison.
    EXPECT_GT(stats.subtreesSkipped, 0u);
    // The merge never expanded the whole tree.
    EXPECT_LT(stats.nodesVisited, 4096u / mem.fanout());
}

TEST_P(MergeFixture, MergeResultIsCanonical)
{
    SegDesc o = seg({0, 0, 0, 0, 0, 0, 0, 0});
    Entry a = builder.setWord(o.root, o.height, 2, 22, WordMeta::raw());
    Entry b = builder.setWord(o.root, o.height, 5, 55, WordMeta::raw());
    auto m = mergeUpdate(mem, o.root, a, b, o.height);
    ASSERT_TRUE(m.has_value());
    // The merged root equals a direct canonical build of the merged
    // content — segment content-uniqueness extends through merges.
    SegDesc direct = seg({0, 0, 22, 0, 0, 55, 0, 0});
    EXPECT_EQ(*m, direct.root);
}

TEST_P(MergeFixture, EverythingReclaimsAfterMerges)
{
    {
        SegDesc o = seg({1, 2, 3, 4, 5, 6, 7, 8});
        Entry a = builder.setWord(o.root, o.height, 0, 11,
                                  WordMeta::raw());
        Entry b = builder.setWord(o.root, o.height, 3, 44,
                                  WordMeta::raw());
        auto m = mergeUpdate(mem, o.root, a, b, o.height);
        ASSERT_TRUE(m.has_value());
        builder.release(*m);
        builder.release(a);
        builder.release(b);
        builder.releaseSeg(o);
    }
    EXPECT_EQ(mem.liveLines(), 0u);
    EXPECT_EQ(mem.store().totalRefs(), 0u);
}

TEST_P(MergeFixture, AuditSweepAfterMerge)
{
    SegDesc o = seg({0, 1, 2, 3, 4, 5, 6, 7});
    Entry a = builder.setWord(o.root, o.height, 1, 11, WordMeta::raw());
    Entry b = builder.setWord(o.root, o.height, 6, 66, WordMeta::raw());
    auto m = mergeUpdate(mem, o.root, a, b, o.height);
    ASSERT_TRUE(m.has_value());

    builder.release(a);
    builder.release(b);
    builder.release(*m);
    builder.releaseSeg(o);

    // After releasing every handle, no leaked or dangling line may
    // survive the merge machinery.
    expectCleanAudit(mem, nullptr);
    EXPECT_EQ(mem.liveLines(), 0u);
}

INSTANTIATE_TEST_SUITE_P(AllWidths, MergeFixture,
                         ::testing::Values(16u, 32u, 64u));

} // namespace
} // namespace hicamp
