/**
 * @file
 * Unit tests for the conventional baseline substrate: set-associative
 * cache behaviour (hits, LRU eviction, dirty writebacks,
 * invalidation), the two-level hierarchy's DRAM counting, and the
 * slab allocator's size classes and reuse.
 */

#include <gtest/gtest.h>

#include "cache/address_space.hh"
#include "cache/conv_cache.hh"

namespace hicamp {
namespace {

TEST(SetAssocCache, HitAfterFill)
{
    SetAssocCache c({1024, 2, 16}); // 32 sets x 2 ways
    auto a1 = c.access(100, false);
    EXPECT_FALSE(a1.hit);
    auto a2 = c.access(100, false);
    EXPECT_TRUE(a2.hit);
    EXPECT_EQ(c.hits.value(), 1u);
    EXPECT_EQ(c.misses.value(), 1u);
}

TEST(SetAssocCache, LruEvictsOldest)
{
    SetAssocCache c({1024, 2, 16}); // 32 sets, 2 ways
    // Three lines in the same set (ids congruent mod 32).
    c.access(0, false);
    c.access(32, false);
    c.access(0, false);  // refresh line 0
    c.access(64, false); // evicts 32 (LRU), not 0
    EXPECT_TRUE(c.contains(0));
    EXPECT_FALSE(c.contains(32));
    EXPECT_TRUE(c.contains(64));
}

TEST(SetAssocCache, DirtyVictimReportsWriteback)
{
    SetAssocCache c({1024, 2, 16});
    c.access(0, true); // dirty
    c.access(32, false);
    auto a = c.access(64, false); // evicts dirty 0
    EXPECT_TRUE(a.writeback);
    EXPECT_EQ(a.victimTag, 0u);
}

TEST(SetAssocCache, CleanVictimNoWriteback)
{
    SetAssocCache c({1024, 2, 16});
    c.access(0, false);
    c.access(32, false);
    auto a = c.access(64, false);
    EXPECT_FALSE(a.writeback);
}

TEST(SetAssocCache, InvalidateReturnsDirtiness)
{
    SetAssocCache c({1024, 2, 16});
    c.access(5, true);
    c.access(6, false);
    EXPECT_TRUE(c.invalidate(5));
    EXPECT_FALSE(c.invalidate(6));
    EXPECT_FALSE(c.invalidate(7)); // absent
    EXPECT_FALSE(c.contains(5));
}

TEST(ConvHierarchy, ColdReadCountsOneDramRead)
{
    ConvHierarchy h = ConvHierarchy::paperDefault(16);
    h.read(0x1000, 8);
    EXPECT_EQ(h.dramReads(), 1u);
    h.read(0x1000, 8); // L1 hit
    EXPECT_EQ(h.dramReads(), 1u);
}

TEST(ConvHierarchy, AccessSplitsAcrossLines)
{
    ConvHierarchy h = ConvHierarchy::paperDefault(16);
    h.read(0x1008, 16); // straddles two 16-byte lines
    EXPECT_EQ(h.dramReads(), 2u);
}

TEST(ConvHierarchy, WritebackReachesDramEventually)
{
    ConvHierarchy h = ConvHierarchy::paperDefault(16);
    h.write(0, 16);
    // Stream enough lines to force the dirty line out of both levels.
    for (Addr a = 1 << 20; a < (Addr{1} << 20) + (8u << 20); a += 16)
        h.read(a, 16);
    EXPECT_GE(h.dramWrites(), 1u);
}

TEST(ConvHierarchy, L2FiltersL1Misses)
{
    ConvHierarchy h = ConvHierarchy::paperDefault(16);
    // Working set bigger than L1 (32 KB) but smaller than L2 (4 MB).
    for (int round = 0; round < 3; ++round)
        for (Addr a = 0; a < 256 * 1024; a += 16)
            h.read(a, 8);
    // Only the first round misses to DRAM.
    EXPECT_EQ(h.dramReads(), 256u * 1024 / 16);
}

TEST(ConvHierarchy, SequentialBeatsRandom)
{
    ConvHierarchy seq = ConvHierarchy::paperDefault(16);
    for (Addr a = 0; a < 1 << 20; a += 4)
        seq.read(a, 4); // 4 accesses share each line

    ConvHierarchy rnd = ConvHierarchy::paperDefault(16);
    std::uint64_t x = 12345;
    for (int i = 0; i < (1 << 20) / 4; ++i) {
        x = x * 6364136223846793005ull + 1442695040888963407ull;
        rnd.read((x >> 16) % (64ull << 20), 4);
    }
    EXPECT_LT(seq.dramReads(), rnd.dramReads() / 2);
}

TEST(BumpRegionTest, AlignedAllocation)
{
    BumpRegion r(0x1000);
    Addr a = r.alloc(3);
    Addr b = r.alloc(40);
    EXPECT_EQ(a % 16, 0u);
    EXPECT_EQ(b % 16, 0u);
    EXPECT_GE(b, a + 3);
}

TEST(SlabAllocatorTest, ChunkSizesRoundUp)
{
    SlabAllocator s(0x1000'0000);
    EXPECT_GE(s.chunkSize(100), 100u);
    EXPECT_GE(s.chunkSize(5000), 5000u);
    // Geometric growth: consecutive classes within ~25%.
    EXPECT_LE(s.chunkSize(100), 150u);
}

TEST(SlabAllocatorTest, FreeListReuse)
{
    SlabAllocator s(0x1000'0000);
    Addr a = s.alloc(500);
    s.free(a, 500);
    Addr b = s.alloc(500);
    EXPECT_EQ(a, b); // same chunk reused
}

TEST(SlabAllocatorTest, DistinctClassesDistinctChunks)
{
    SlabAllocator s(0x1000'0000);
    Addr a = s.alloc(100);
    Addr b = s.alloc(100000);
    EXPECT_NE(a, b);
    s.free(a, 100);
    // Freeing a small chunk must not satisfy a big allocation.
    Addr c = s.alloc(100000);
    EXPECT_NE(c, a);
}

TEST(SlabAllocatorTest, ReservedGrowsInPages)
{
    SlabAllocator s(0x1000'0000);
    std::uint64_t r0 = s.reservedBytes();
    s.alloc(100);
    EXPECT_GE(s.reservedBytes(), r0 + (1u << 20));
}

} // namespace
} // namespace hicamp
