/**
 * @file
 * Ownership-path tests for the RAII reference layer (DESIGN.md §10):
 * PlidRef / EntryRef / OwnedEntries balance exactly one reference per
 * handle on every path, and the three historical box-ref leaks
 * (HTable::insert, HQueue::push, AtomicHeap::Tx::write) stay fixed —
 * each is pinned by the interleaving that used to leak: the box line
 * already interned (dedup, so boxing succeeds under total allocation
 * failure) and the operation failing *after* the box reference is in
 * flight.  A seeded fault-injection sweep then holds the tryRetain
 * failure paths to the same bar: after every rejected retain and
 * absorbed pressure error, the heap audits clean.
 */

#include <gtest/gtest.h>

#include <string>
#include <utility>

#include "audit_check.hh"
#include "common/fault.hh"
#include "common/status.hh"
#include "lang/atomic_heap.hh"
#include "lang/context.hh"
#include "lang/hqueue.hh"
#include "lang/hstring.hh"
#include "lang/htable.hh"
#include "mem/plid_ref.hh"
#include "seg/builder.hh"
#include "seg/entry_ref.hh"

namespace hicamp {
namespace {

MemoryConfig
baseCfg()
{
    MemoryConfig c;
    c.lineBytes = 16;
    c.numBuckets = 1 << 12;
    c.faults.allowEnvOverride = false;
    return c;
}

Line
taggedLine(Memory &mem, Word tag)
{
    Line l = mem.makeLine();
    l.set(0, tag + 1);
    l.set(1, tag * 0x9e3779b97f4a7c15ull + 7);
    return l;
}

// ---------------------------------------------------------------------
// PlidRef: one handle, one reference, every path.
// ---------------------------------------------------------------------

TEST(RefcountPaths, PlidRefReleasesOnScopeExit)
{
    Memory mem(baseCfg());
    {
        PlidRef p = PlidRef::lookup(mem, taggedLine(mem, 1));
        ASSERT_TRUE(p);
        EXPECT_EQ(mem.refCount(p.get()), 1u);
        EXPECT_EQ(mem.liveLines(), 1u);
    }
    EXPECT_EQ(mem.liveLines(), 0u);
    expectCleanAudit(mem, nullptr);
}

TEST(RefcountPaths, PlidRefMoveTransfersNotDuplicates)
{
    Memory mem(baseCfg());
    PlidRef a = PlidRef::lookup(mem, taggedLine(mem, 2));
    const Plid plid = a.get();
    PlidRef b = std::move(a);
    EXPECT_FALSE(a);
    ASSERT_TRUE(b);
    EXPECT_EQ(b.get(), plid);
    EXPECT_EQ(mem.refCount(plid), 1u) << "move must not add a ref";
    b.reset();
    EXPECT_EQ(mem.liveLines(), 0u);
    expectCleanAudit(mem, nullptr);
}

TEST(RefcountPaths, PlidRefAcquireAddsExactlyOne)
{
    Memory mem(baseCfg());
    PlidRef a = PlidRef::lookup(mem, taggedLine(mem, 3));
    {
        PlidRef extra = PlidRef::acquire(mem, a.get());
        EXPECT_EQ(mem.refCount(a.get()), 2u);
    }
    EXPECT_EQ(mem.refCount(a.get()), 1u);
    a.reset();
    EXPECT_EQ(mem.liveLines(), 0u);
}

TEST(RefcountPaths, PlidRefReleaseHandsOwnershipOver)
{
    Memory mem(baseCfg());
    PlidRef a = PlidRef::lookup(mem, taggedLine(mem, 4));
    Plid raw = a.release();
    EXPECT_FALSE(a);
    EXPECT_EQ(mem.refCount(raw), 1u) << "release transfers, not drops";
    mem.decRef(raw); // we own it now
    EXPECT_EQ(mem.liveLines(), 0u);
    expectCleanAudit(mem, nullptr);
}

TEST(RefcountPaths, PlidRefTryAcquireFailsEmptyOnDeadLine)
{
    Memory mem(baseCfg());
    Plid p;
    {
        PlidRef a = PlidRef::lookup(mem, taggedLine(mem, 5));
        p = a.get();
    } // reference dropped; the line is reclaimed
    EXPECT_EQ(mem.liveLines(), 0u);
    PlidRef again = PlidRef::tryAcquire(mem, p);
    EXPECT_FALSE(again) << "tryAcquire on a dead line must fail clean";
    expectCleanAudit(mem, nullptr);
}

// ---------------------------------------------------------------------
// EntryRef / OwnedEntries: builder-side rollback by scope.
// ---------------------------------------------------------------------

TEST(RefcountPaths, EntryRefBalancesARealLeafLine)
{
    Memory mem(baseCfg());
    SegBuilder b(mem);
    // Full-width words: compaction cannot fold the leaf into the
    // entry, so a real line (and a real reference) is at stake.
    Word w[kMaxLineWords] = {0xa1a1a1a1a1a1a1a1ull,
                             0xb2b2b2b2b2b2b2b2ull};
    WordMeta m[kMaxLineWords] = {WordMeta::raw(), WordMeta::raw()};
    {
        EntryRef e = EntryRef::adopt(b, b.makeLeaf(w, m));
        ASSERT_TRUE(e);
        EXPECT_EQ(mem.liveLines(), 1u);
        EntryRef extra = EntryRef::retain(b, e.entry());
        EXPECT_EQ(mem.refCount(e.entry().word), 2u);
    }
    EXPECT_EQ(mem.liveLines(), 0u);
    expectCleanAudit(mem, nullptr);
}

TEST(RefcountPaths, OwnedEntriesReleasesWhenNotDisowned)
{
    Memory mem(baseCfg());
    SegBuilder b(mem);
    Word w[kMaxLineWords] = {0xc3c3c3c3c3c3c3c3ull,
                             0xd4d4d4d4d4d4d4d4ull};
    WordMeta m[kMaxLineWords] = {WordMeta::raw(), WordMeta::raw()};
    {
        OwnedEntries kids(b);
        kids.push(b.makeLeaf(w, m));
        EXPECT_EQ(kids.size(), 1u);
        EXPECT_EQ(mem.liveLines(), 1u);
        // scope unwinds without disown(): the guard rolls back
    }
    EXPECT_EQ(mem.liveLines(), 0u);
    expectCleanAudit(mem, nullptr);
}

TEST(RefcountPaths, OwnedEntriesDisownTransfersToMakeNode)
{
    Memory mem(baseCfg());
    SegBuilder b(mem);
    Word w[kMaxLineWords] = {0xe5e5e5e5e5e5e5e5ull,
                             0xf6f6f6f6f6f6f6f6ull};
    WordMeta m[kMaxLineWords] = {WordMeta::raw(), WordMeta::raw()};
    OwnedEntries kids(b);
    kids.push(b.makeLeaf(w, m));
    kids.push(Entry::zero());
    Entry node = b.makeNode(kids.disown(), 0);
    EXPECT_EQ(kids.size(), 0u) << "disown empties the guard";
    b.release(node);
    EXPECT_EQ(mem.liveLines(), 0u);
    expectCleanAudit(mem, nullptr);
}

// ---------------------------------------------------------------------
// Regressions: the three box-ref leaks.  Interleaving that used to
// leak: box the value once (faults off, line interned), then repeat
// the operation under total allocation failure — boxSegment dedups
// (no fresh line, so the box reference gets in flight), and the
// retry loop exhausts on commit pressure with that reference live.
// ---------------------------------------------------------------------

TEST(RefcountPaths, HTableInsertSeekThrowDoesNotLeakBoxRef)
{
    Hicamp hc(baseCfg());
    {
        HTable table(hc);
        HString row(hc, "row payload long enough to need real lines");
        table.insert(row);
        // the live HString handle owns a root reference the auditor
        // cannot see on its own
        Auditor::Options held;
        held.externalSegs = {row.desc()};

        FaultConfig fc;
        fc.allocFailEvery = 1;
        hc.mem.faults().reconfigure(fc);
        EXPECT_THROW(table.insert(row), MemPressureError);
        hc.mem.faults().reconfigure({});
        expectCleanAudit(hc, held);

        // pressure lifted: the same insert succeeds and reads back
        EXPECT_EQ(table.insert(row), 1u);
        expectCleanAudit(hc, held);
    }
    EXPECT_EQ(hc.mem.liveLines(), 0u);
    expectCleanAudit(hc);
}

TEST(RefcountPaths, HQueuePushSeekThrowDoesNotLeakBoxRef)
{
    Hicamp hc(baseCfg());
    {
        HQueue q(hc);
        HString v(hc, "queued payload long enough to box for real");
        q.push(v);
        Auditor::Options held;
        held.externalSegs = {v.desc()};

        FaultConfig fc;
        fc.allocFailEvery = 1;
        hc.mem.faults().reconfigure(fc);
        EXPECT_THROW(q.push(v), MemPressureError);
        hc.mem.faults().reconfigure({});
        expectCleanAudit(hc, held);

        q.push(v);
        expectCleanAudit(hc, held);
    }
    EXPECT_EQ(hc.mem.liveLines(), 0u);
    expectCleanAudit(hc);
}

TEST(RefcountPaths, AtomicHeapTxWriteSeekThrowDoesNotLeakBoxRef)
{
    Hicamp hc(baseCfg());
    {
        AtomicHeap heap(hc);
        HString v(hc, "heap payload long enough to box for real");
        // built now so only its *box* line is missing under faults
        HString fresh(hc, "never yet boxed payload, also full lines");
        Auditor::Options held;
        held.externalSegs = {v.desc(), fresh.desc()};
        {
            AtomicHeap::Tx tx(heap);
            tx.write(0, v);
            ASSERT_TRUE(tx.commit());
        }
        expectCleanAudit(hc, held);

        FaultConfig fc;
        fc.allocFailEvery = 1;
        hc.mem.faults().reconfigure(fc);
        {
            // boxSegment dedup-misses on the never-boxed value and
            // throws with the retained root reference in flight;
            // consume-on-failure must balance it
            AtomicHeap::Tx tx(heap);
            EXPECT_THROW(tx.write(3, fresh), MemPressureError);
        }
        {
            // the dedup'd box buffers fine; the commit rebuild is
            // what hits pressure — abort must release the boxed ref
            AtomicHeap::Tx tx(heap);
            tx.write(50, v);
            EXPECT_FALSE(tx.commit());
            EXPECT_NE(tx.commitStatus(), MemStatus::Ok);
        } // Tx unwinds; its buffered state rolls back
        hc.mem.faults().reconfigure({});
        expectCleanAudit(hc, held);
    }
    EXPECT_EQ(hc.mem.liveLines(), 0u);
    expectCleanAudit(hc);
}

// ---------------------------------------------------------------------
// tryRetain failure paths: seeded sweep of alloc faults + refcount
// saturation; every rejected retain / absorbed pressure error must
// leave auditor-clean refcounts.
// ---------------------------------------------------------------------

TEST(RefcountPaths, SeededFaultSweepKeepsRefcountsAuditClean)
{
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
        Hicamp hc(baseCfg());
        HQueue q(hc);

        FaultConfig fc;
        fc.seed = 0x5eed0000 + seed;
        fc.allocFailP = 0.2;
        fc.saturateEvery = 7;
        hc.mem.faults().reconfigure(fc);

        for (int i = 0; i < 24; ++i) {
            try {
                // the boxed value itself allocates, so build it
                // inside the guarded region too
                HString v(hc, "sweep-" + std::to_string(i % 5));
                q.push(v);
            } catch (const MemPressureError &) {
                // retries exhausted under injection: the failed
                // operation must have unwound leak-free
            }
            AuditReport r = Auditor::audit(hc, {});
            ASSERT_TRUE(r.clean())
                << "seed " << seed << " op " << i << ": " << r.summary();
        }
        // the sweep is only meaningful if injection actually bit
        EXPECT_GT(hc.mem.faults().allocFailsInjected() +
                      hc.mem.faults().saturationsInjected(),
                  0u)
            << "seed " << seed << " injected nothing";

        hc.mem.faults().reconfigure({});
        expectCleanAudit(hc);
    }
}

TEST(RefcountPaths, RejectedTryRetainLeavesCountsIntact)
{
    Memory mem(baseCfg());
    Plid dead;
    {
        PlidRef a = PlidRef::lookup(mem, taggedLine(mem, 9));
        dead = a.get();
    }
    // a stream of rejected retains on a reclaimed line is a no-op
    for (int i = 0; i < 16; ++i)
        EXPECT_FALSE(mem.tryRetain(dead));
    EXPECT_EQ(mem.liveLines(), 0u);
    expectCleanAudit(mem, nullptr);
}

} // namespace
} // namespace hicamp
