/**
 * @file
 * Heap-auditor tests: clean machines audit clean, and each class of
 * injected corruption — leaked refcounts, forged duplicates, dangling
 * references, DAG cycles, uncompacted nodes, malformed descriptors,
 * in-place content rot — is detected and classified correctly.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/auditor.hh"
#include "lang/context.hh"
#include "lang/harray.hh"
#include "lang/hmap.hh"
#include "lang/hstring.hh"
#include "mem/memory.hh"
#include "seg/builder.hh"
#include "seg/iterator.hh"
#include "vsm/segment_map.hh"

namespace hicamp {
namespace {

struct AuditorFixture : ::testing::Test {
    AuditorFixture() : mem(cfg()), vsm(mem), builder(mem) {}

    static MemoryConfig
    cfg()
    {
        MemoryConfig c;
        c.lineBytes = 16; // fanout 2: smallest trees, easiest surgery
        c.numBuckets = 1 << 12;
        return c;
    }

    SegDesc
    makeSeg(std::vector<Word> w)
    {
        std::vector<WordMeta> m(w.size(), WordMeta::raw());
        return builder.buildWords(w.data(), m.data(), w.size());
    }

    AuditReport
    audit(const Auditor::Options &opts = {})
    {
        return Auditor::audit(mem, &vsm, opts);
    }

    Memory mem;
    SegmentMap vsm;
    SegBuilder builder;
};

TEST_F(AuditorFixture, EmptyMachineIsClean)
{
    AuditReport r = audit();
    EXPECT_TRUE(r.clean()) << r.summary();
    EXPECT_EQ(r.linesScanned, 0u);
}

TEST_F(AuditorFixture, LiveSegmentsAuditClean)
{
    // Non-packable payload so canonical form keeps real leaf lines.
    Vsid a = vsm.create(makeSeg({1ull << 40, 2ull << 40, 3ull << 40,
                                 4ull << 40}));
    Vsid b = vsm.create(makeSeg({1ull << 40, 2ull << 40, 3ull << 40,
                                 5ull << 40}));
    AuditReport r = audit();
    EXPECT_TRUE(r.clean()) << r.summary();
    EXPECT_EQ(r.rootsScanned, 2u);
    EXPECT_GT(r.linesScanned, 0u);

    vsm.destroy(a);
    vsm.destroy(b);
    AuditReport post = audit();
    EXPECT_TRUE(post.clean()) << post.summary();
    EXPECT_EQ(post.linesScanned, 0u);
}

TEST_F(AuditorFixture, UndeclaredCallerRefIsALeakDeclaredIsNot)
{
    SegDesc d = makeSeg({7ull << 40, 8ull << 40, 9ull << 40, 1});

    // The builder handed us an owned root reference the auditor
    // cannot see: without declaring it, that's a leak...
    AuditReport bad = audit();
    EXPECT_FALSE(bad.clean());
    EXPECT_GE(bad.count(AuditKind::RefLeak), 1u);

    // ...and declaring it as an external segment makes the heap
    // account exactly.
    Auditor::Options opts;
    opts.externalSegs.push_back(d);
    AuditReport good = audit(opts);
    EXPECT_TRUE(good.clean()) << good.summary();

    builder.releaseSeg(d);
    EXPECT_TRUE(audit().clean());
}

TEST_F(AuditorFixture, DetectsLeakedReference)
{
    Vsid v = vsm.create(makeSeg({1ull << 40, 2ull << 40, 3ull << 40,
                                 4ull << 40}));
    ASSERT_TRUE(audit().clean());

    Plid root = vsm.get(v).root.plid();
    mem.incRef(root); // a reference nobody owns

    AuditReport r = audit();
    EXPECT_FALSE(r.clean());
    EXPECT_GE(r.count(AuditKind::RefLeak), 1u);

    mem.decRef(root);
    EXPECT_TRUE(audit().clean());
}

TEST_F(AuditorFixture, DetectsRefcountDeficit)
{
    Vsid v = vsm.create(makeSeg({1ull << 40, 2ull << 40, 3ull << 40,
                                 4ull << 40}));
    Plid root = vsm.get(v).root.plid();

    // Drop the stored count below the model's in-edges: a free now
    // would dangle the segment-map root.
    mem.store().addRef(root, -1);

    AuditReport r = audit();
    EXPECT_FALSE(r.clean());
    EXPECT_GE(r.count(AuditKind::RefMismatch), 1u);

    mem.store().addRef(root, +1);
    EXPECT_TRUE(audit().clean());
}

TEST_F(AuditorFixture, DetectsForgedDuplicate)
{
    Vsid v = vsm.create(makeSeg({1ull << 40, 2ull << 40, 3ull << 40,
                                 4ull << 40}));
    Plid root = vsm.get(v).root.plid();

    // A second live line with the root's exact content breaks the
    // content-addressing contract: lookups may now return either.
    Plid forged = mem.store().forgeDuplicateForTest(root);
    ASSERT_NE(forged, root);

    AuditReport r = audit();
    EXPECT_FALSE(r.clean());
    EXPECT_GE(r.count(AuditKind::DedupDuplicate), 1u);
}

TEST_F(AuditorFixture, DetectsDanglingReference)
{
    Vsid v = vsm.create(makeSeg({1ull << 40, 2ull << 40, 3ull << 40,
                                 4ull << 40}));
    Plid root = vsm.get(v).root.plid();

    // Repoint the root's second child slot at a PLID that was never
    // allocated.
    const Line orig = mem.store().read(root);
    const Plid bogus = kOverflowBase + 0x1234;
    ASSERT_FALSE(mem.store().isLive(bogus));
    mem.store().poisonWordForTest(root, 1, bogus, WordMeta::plid());

    AuditReport r = audit();
    EXPECT_FALSE(r.clean());
    EXPECT_GE(r.count(AuditKind::RefDangling), 1u);

    // Undo the corruption so teardown does not chase the bogus PLID.
    mem.store().poisonWordForTest(root, 1, orig.word(1), orig.meta(1));
    EXPECT_TRUE(audit().clean());
}

TEST_F(AuditorFixture, DetectsCycle)
{
    Vsid v = vsm.create(makeSeg({1ull << 40, 2ull << 40, 3ull << 40,
                                 4ull << 40}));
    SegDesc d = vsm.get(v);
    Plid root = d.root.plid();
    Plid child = mem.store().read(root).word(0);
    ASSERT_TRUE(mem.store().isLive(child));

    // Make the leaf point back at its own parent: impossible under
    // content addressing (a line's name depends on its content), so
    // any cycle is corruption.
    const Line orig = mem.store().read(child);
    mem.store().poisonWordForTest(child, 0, root, WordMeta::plid());

    AuditReport r = audit();
    EXPECT_FALSE(r.clean());
    EXPECT_GE(r.count(AuditKind::DagCycle), 1u);

    // Undo the corruption so teardown does not follow the back edge.
    mem.store().poisonWordForTest(child, 0, orig.word(0), orig.meta(0));
    EXPECT_TRUE(audit().clean());
}

TEST_F(AuditorFixture, DetectsMissedPathCompaction)
{
    // Hand-build an interior line whose only child is non-zero: the
    // builder would have path-compacted this away.
    Line leaf = mem.makeLine();
    leaf.set(0, 1ull << 40);
    leaf.set(1, 2ull << 40);
    Plid lp = mem.internLine(leaf);

    Line interior = mem.makeLine();
    interior.set(0, lp, WordMeta::plid());
    Plid ip = mem.internLine(interior);

    SegDesc d;
    d.root = Entry::ofPlid(ip);
    d.height = 1;
    d.byteLen = 16;
    vsm.create(d);

    AuditReport r = audit();
    EXPECT_FALSE(r.clean());
    EXPECT_GE(r.count(AuditKind::CompactionPath), 1u);
}

TEST_F(AuditorFixture, DetectsMissedDataCompaction)
{
    // An all-raw leaf of two 32-bit-packable words must be an inline
    // entry in canonical form, never a stored line.
    Line leaf = mem.makeLine();
    leaf.set(0, 5);
    leaf.set(1, 6);
    Plid lp = mem.internLine(leaf);

    SegDesc d;
    d.root = Entry::ofPlid(lp);
    d.height = 0;
    d.byteLen = 16;
    vsm.create(d);

    AuditReport r = audit();
    EXPECT_FALSE(r.clean());
    EXPECT_GE(r.count(AuditKind::CompactionData), 1u);

    // The same heap audits clean when compaction checking is off —
    // the refcounts and layout themselves are fine.
    Auditor::Options lax;
    lax.checkCompaction = false;
    EXPECT_TRUE(audit(lax).clean());
}

TEST_F(AuditorFixture, DetectsMalformedDescriptor)
{
    SegDesc bad;
    bad.root = Entry::zero();
    bad.height = 99; // coverage math would overflow 64 bits
    bad.byteLen = 0;
    vsm.create(bad);

    SegDesc toolong;
    toolong.root = Entry::zero();
    toolong.height = 0; // covers 16 bytes at this geometry
    toolong.byteLen = 1000;
    vsm.create(toolong);

    AuditReport r = audit();
    EXPECT_FALSE(r.clean());
    EXPECT_GE(r.count(AuditKind::DagMalformed), 2u);
}

TEST_F(AuditorFixture, DetectsContentRot)
{
    Line l = mem.makeLine();
    l.set(0, 0xabcdefull << 20);
    l.set(1, 0x123456ull << 20);
    Plid p = mem.internLine(l);

    Auditor::Options opts;
    opts.externalRefs.push_back(p);
    ASSERT_TRUE(audit(opts).clean());

    // Flip a stored word in place: the line no longer lives in the
    // bucket (or under the signature) its content hash selects.
    mem.store().poisonWordForTest(p, 0, 0xfeedull << 20,
                                  WordMeta::raw());

    AuditReport r = audit(opts);
    EXPECT_FALSE(r.clean());
    EXPECT_GE(r.count(AuditKind::BucketLayout), 1u);
}

TEST_F(AuditorFixture, LiveIteratorRefsAreAccounted)
{
    Vsid v = vsm.create(makeSeg({1ull << 40, 2ull << 40, 3ull << 40,
                                 4ull << 40}));
    {
        IteratorRegister it(mem, vsm);
        it.load(v, 0);
        it.read();
        AuditReport r = audit();
        EXPECT_TRUE(r.clean()) << r.summary();
        EXPECT_EQ(r.iteratorsScanned, 1u);
    }
    EXPECT_TRUE(audit().clean());
}

TEST_F(AuditorFixture, DirtyIteratorBuffersAreAccounted)
{
    Vsid v = vsm.create(makeSeg({1ull << 40, 2ull << 40, 3ull << 40,
                                 4ull << 40}));
    IteratorRegister it(mem, vsm);
    it.load(v, 0);
    it.write(0xbeefull << 32);
    it.seek(3);
    it.write(0xcafeull << 32);

    // Uncommitted dirty state parks owned references in the register.
    AuditReport r = audit();
    EXPECT_TRUE(r.clean()) << r.summary();

    EXPECT_TRUE(it.tryCommit());
    EXPECT_TRUE(audit().clean());
}

TEST_F(AuditorFixture, FullLanguageMachineAuditsClean)
{
    Hicamp hc(cfg());
    {
        HMap map(hc);
        for (int i = 0; i < 64; ++i) {
            map.set(HString(hc, "k" + std::to_string(i)),
                    HString(hc, "v" + std::to_string(i % 5)));
        }
        HArray<std::uint64_t> arr(hc);
        for (int i = 0; i < 64; ++i)
            arr.set(i, i * 0x9e3779b97f4a7c15ull);

        AuditReport live = Auditor::audit(hc);
        EXPECT_TRUE(live.clean()) << live.summary();
        EXPECT_GT(live.linesScanned, 0u);
    }
    AuditReport post = Auditor::audit(hc);
    EXPECT_TRUE(post.clean()) << post.summary();
    EXPECT_EQ(post.linesScanned, 0u);
}

TEST_F(AuditorFixture, ViolationRecordingIsCapped)
{
    Vsid v = vsm.create(makeSeg({1ull << 40, 2ull << 40, 3ull << 40,
                                 4ull << 40}));
    Plid root = vsm.get(v).root.plid();
    for (int i = 0; i < 8; ++i)
        mem.incRef(root);

    Auditor::Options opts;
    opts.maxViolations = 0;
    AuditReport r = audit(opts);
    EXPECT_FALSE(r.clean());
    EXPECT_TRUE(r.violations.empty());
    EXPECT_GE(r.truncated, 1u);
}

TEST_F(AuditorFixture, ReportFormatsKindNamesAndSummary)
{
    EXPECT_STREQ(auditKindName(AuditKind::RefLeak), "refcount-leak");
    EXPECT_STREQ(auditKindName(AuditKind::DagCycle), "dag-cycle");

    AuditReport r = audit();
    EXPECT_NE(r.summary().find("clean"), std::string::npos);

    Vsid v = vsm.create(makeSeg({1ull << 40, 2ull << 40, 3ull << 40,
                                 4ull << 40}));
    mem.incRef(vsm.get(v).root.plid());
    AuditReport bad = audit();
    EXPECT_NE(bad.summary().find("FAILED"), std::string::npos);
    EXPECT_NE(bad.summary().find("refcount-leak"), std::string::npos);
}

using AuditorDeathTest = AuditorFixture;

TEST_F(AuditorDeathTest, ScopedAuditPanicsOnLeak)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_DEATH(
        {
            Memory m(cfg());
            ScopedAudit guard(m, nullptr);
            Line l = m.makeLine();
            l.set(0, 0xdeadull << 32);
            (void)m.internLine(l); // owned reference dropped on the floor
        },
        "heap audit");
}

TEST_F(AuditorDeathTest, ExitAuditHookPanicsOnLeak)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_DEATH(
        {
            Hicamp hc(cfg());
            installExitAudit(hc);
            Line l = hc.mem.makeLine();
            l.set(0, 0xdeadull << 32);
            (void)hc.mem.internLine(l); // owned reference never released
        },
        "heap audit");
}

TEST_F(AuditorFixture, ScopedAuditPassesOnCleanTeardown)
{
    Memory m(cfg());
    ScopedAudit guard(m, nullptr);
    Line l = m.makeLine();
    l.set(0, 0xdeadull << 32);
    Plid p = m.internLine(l);
    m.decRef(p); // balanced: line freed before the scope ends
}

} // namespace
} // namespace hicamp
