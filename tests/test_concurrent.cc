/**
 * @file
 * Concurrency tests for the sharded memory system: real std::threads
 * driving the programming-model containers (HMap, HQueue, merge-update
 * counters) through the striped-lock store, with and without injected
 * allocation failures, every scenario ending in a full cross-layer
 * heap audit — no leaked lines, no dangling references, no lost
 * updates may survive any interleaving.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hh"
#include "lang/harray.hh"
#include "lang/hmap.hh"
#include "lang/hqueue.hh"
#include "audit_check.hh"

namespace hicamp {
namespace {

MemoryConfig
cfg()
{
    MemoryConfig c;
    c.numBuckets = 1 << 14;
    c.faults.allowEnvOverride = false;
    return c;
}

TEST(Concurrent, MapSetsFromManyThreadsAllLand)
{
    Hicamp hc(cfg());
    constexpr int kThreads = 4;
    constexpr int kKeys = 40;
    {
        HMap map(hc);

        std::vector<std::thread> ts;
        for (int t = 0; t < kThreads; ++t) {
            ts.emplace_back([&, t] {
                Rng rng(100 + t);
                for (int i = 0; i < kKeys; ++i) {
                    map.set(HString(hc, "t" + std::to_string(t) + "-k" +
                                            std::to_string(i)),
                            HString(hc, "v" + std::to_string(i)));
                    // Interleave reads of other threads' namespaces:
                    // either absent or fully formed, never torn.
                    auto probe = map.get(HString(
                        hc, "t" + std::to_string(rng.below(kThreads)) +
                                "-k" + std::to_string(rng.below(kKeys))));
                    if (probe)
                        EXPECT_EQ(probe->str().substr(0, 1), "v");
                }
            });
        }
        for (auto &th : ts)
            th.join();

        for (int t = 0; t < kThreads; ++t) {
            for (int i = 0; i < kKeys; ++i) {
                auto got = map.get(HString(hc, "t" + std::to_string(t) +
                                                   "-k" +
                                                   std::to_string(i)));
                ASSERT_TRUE(got.has_value()) << "t" << t << "-k" << i;
                EXPECT_EQ(got->str(), "v" + std::to_string(i));
            }
        }
    }
    expectCleanAudit(hc);
}

TEST(Concurrent, QueueProducersConsumersLoseNothing)
{
    Hicamp hc(cfg());
    constexpr int kProducers = 2;
    constexpr int kConsumers = 2;
    constexpr int kPerProducer = 50;
    {
        HQueue q(hc);
        std::atomic<int> popped{0};
        std::mutex seen_mu;
        std::multiset<std::string> seen;

        std::vector<std::thread> ts;
        for (int p = 0; p < kProducers; ++p) {
            ts.emplace_back([&, p] {
                for (int i = 0; i < kPerProducer; ++i)
                    q.push(HString(hc, "p" + std::to_string(p) + "-" +
                                           std::to_string(i)));
            });
        }
        for (int c = 0; c < kConsumers; ++c) {
            ts.emplace_back([&] {
                while (popped.load(std::memory_order_relaxed) <
                       kProducers * kPerProducer) {
                    auto v = q.pop();
                    if (!v) {
                        std::this_thread::yield();
                        continue;
                    }
                    ++popped;
                    std::lock_guard<std::mutex> g(seen_mu);
                    seen.insert(v->str());
                }
            });
        }
        for (auto &th : ts)
            th.join();

        // Every pushed item was popped exactly once.
        EXPECT_EQ(seen.size(),
                  static_cast<std::size_t>(kProducers * kPerProducer));
        for (int p = 0; p < kProducers; ++p) {
            for (int i = 0; i < kPerProducer; ++i)
                EXPECT_EQ(seen.count("p" + std::to_string(p) + "-" +
                                     std::to_string(i)),
                          1u);
        }
        EXPECT_EQ(q.size(), 0u);
    }
    expectCleanAudit(hc);
}

TEST(Concurrent, SharedCounterMergeUpdateLosesNoIncrements)
{
    Hicamp hc(cfg());
    constexpr int kThreads = 4;
    constexpr int kIncrements = 80;
    {
        // All threads increment the SAME slot: every pair of
        // overlapping commits conflicts and must be resolved by
        // merge-update (paper §3.4) without losing either increment.
        HArray<std::uint64_t> counters(
            hc, std::vector<std::uint64_t>(4, 0), kSegMergeUpdate);

        std::vector<std::thread> ts;
        for (int t = 0; t < kThreads; ++t) {
            ts.emplace_back([&] {
                IteratorRegister it(hc.mem, hc.vsm);
                for (int i = 0; i < kIncrements; ++i) {
                    for (;;) {
                        it.load(counters.vsid(), 0);
                        it.write(it.read() + 1);
                        if (it.tryCommit())
                            break;
                    }
                }
            });
        }
        for (auto &th : ts)
            th.join();

        EXPECT_EQ(counters.get(0),
                  static_cast<std::uint64_t>(kThreads * kIncrements));
    }
    expectCleanAudit(hc);
}

TEST(Concurrent, MixedWorkloadUnderInjectedAllocFailures)
{
    MemoryConfig c = cfg();
    // Deterministic allocation-failure injection while four threads
    // hammer the containers: every failure must unwind leak-free no
    // matter which thread it lands on (the audit below is the proof).
    c.faults.seed = 4242;
    c.faults.allocFailP = 0.001;
    Hicamp hc(c);
    constexpr int kThreads = 4;
    constexpr int kOps = 60;
    std::atomic<std::uint64_t> gaveUp{0};
    {
        HMap map(hc);
        HQueue q(hc);

        std::vector<std::thread> ts;
        for (int t = 0; t < kThreads; ++t) {
            ts.emplace_back([&, t] {
                Rng rng(7000 + t);
                for (int i = 0; i < kOps; ++i) {
                    try {
                        switch (rng.below(4)) {
                        case 0:
                            map.set(HString(hc, "k" + std::to_string(
                                                         rng.below(64))),
                                    HString(hc, "val-" +
                                                    std::to_string(i)));
                            break;
                        case 1:
                            map.get(HString(
                                hc, "k" + std::to_string(rng.below(64))));
                            break;
                        case 2:
                            q.push(HString(hc,
                                           "q" + std::to_string(i)));
                            break;
                        default:
                            q.pop();
                            break;
                        }
                    } catch (const MemPressureError &) {
                        // Retry budget exhausted under injected
                        // faults: acceptable, must leak nothing.
                        ++gaveUp;
                    }
                }
            });
        }
        for (auto &th : ts)
            th.join();

        while (q.pop())
            ;
    }
    // The injector must actually have fired for this test to mean
    // anything.
    EXPECT_GT(hc.mem.faults().allocFailsInjected(), 0u);
    expectCleanAudit(hc);
}

TEST(Concurrent, GlobalLockBaselineStaysCorrect)
{
    // The in-binary global-lock baseline (MemoryConfig::globalLock)
    // must remain functionally identical to the sharded design — the
    // scaling bench depends on comparing the two on one workload.
    MemoryConfig c = cfg();
    c.globalLock = true;
    Hicamp hc(c);
    constexpr int kThreads = 4;
    constexpr int kKeys = 24;
    {
        HMap map(hc);
        std::vector<std::thread> ts;
        for (int t = 0; t < kThreads; ++t) {
            ts.emplace_back([&, t] {
                for (int i = 0; i < kKeys; ++i)
                    map.set(HString(hc, "g" + std::to_string(t) + "-" +
                                            std::to_string(i)),
                            HString(hc, "x" + std::to_string(i)));
            });
        }
        for (auto &th : ts)
            th.join();
        for (int t = 0; t < kThreads; ++t)
            for (int i = 0; i < kKeys; ++i)
                EXPECT_TRUE(map.contains(HString(
                    hc, "g" + std::to_string(t) + "-" +
                            std::to_string(i))));
    }
    expectCleanAudit(hc);
}

TEST(Concurrent, SnapshotsStayPinnedAcrossConcurrentCommits)
{
    Hicamp hc(cfg());
    {
        HArray<std::uint64_t> arr(
            hc, std::vector<std::uint64_t>(64, 1), kSegMergeUpdate);

        std::atomic<bool> stop{false};
        std::thread writer([&] {
            IteratorRegister it(hc.mem, hc.vsm);
            std::uint64_t i = 0;
            while (!stop.load(std::memory_order_relaxed)) {
                it.load(arr.vsid(), i++ % 64);
                it.write(it.read() + 1);
                it.tryCommit();
            }
        });

        // Readers take lock-free snapshots and hold them across many
        // commits: each snapshot's sum must be internally consistent
        // (>= 64, one per slot) and stable while held.
        for (int round = 0; round < 200; ++round) {
            SegDesc snap = hc.vsm.snapshot(arr.vsid());
            SegReader r(hc.mem);
            std::vector<Word> w;
            std::vector<WordMeta> m;
            r.materialize(snap.root, snap.height, w, m);
            std::uint64_t sum1 = 0;
            for (std::uint64_t i = 0; i < 64; ++i)
                sum1 += w[i];
            // Re-read through the SAME snapshot: identical (snapshot
            // isolation), regardless of the writer's progress.
            w.clear();
            m.clear();
            r.materialize(snap.root, snap.height, w, m);
            std::uint64_t sum2 = 0;
            for (std::uint64_t i = 0; i < 64; ++i)
                sum2 += w[i];
            EXPECT_EQ(sum1, sum2);
            EXPECT_GE(sum1, 64u);
            hc.vsm.releaseSnapshot(snap);
        }
        stop = true;
        writer.join();
    }
    expectCleanAudit(hc);
}

} // namespace
} // namespace hicamp
