/**
 * @file
 * Sparse-matrix study tests: generator well-formedness, CSR sizing
 * formulas, trace-SpMV sanity, and — most importantly — that the
 * HICAMP QTS and NZD formats compute exactly the same y = A x as the
 * host reference, dedup symmetric quadrants, and skip zero blocks.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "apps/spmv/hicamp_matrix.hh"
#include "workloads/matrixgen.hh"

namespace hicamp {
namespace {

MemoryConfig
spmvCfg(unsigned line_bytes = 16)
{
    MemoryConfig c;
    c.lineBytes = line_bytes;
    c.numBuckets = 1 << 15;
    // Exact traffic/dedup measurements; QTS builds also run through
    // single-shot setWord chains with no retry boundary, so opt out
    // of suite-wide fault injection.
    c.faults.allowEnvOverride = false;
    return c;
}

std::vector<double>
testVector(std::uint32_t n, std::uint64_t seed = 5)
{
    Rng rng(seed);
    std::vector<double> x(n);
    for (auto &v : x)
        v = rng.uniform() * 2.0 - 1.0;
    return x;
}

void
expectSameVector(const std::vector<double> &a,
                 const std::vector<double> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        ASSERT_NEAR(a[i], b[i], 1e-9) << "at row " << i;
}

TEST(MatrixGen, Fem2dShape)
{
    SparseMatrix m = MatrixGen::fem2d(16, MatrixGen::Coef::Random, true,
                                      1, "f");
    EXPECT_EQ(m.rows(), 256u);
    EXPECT_TRUE(m.symmetric());
    // 5-point stencil: ~5 nnz per row interior.
    EXPECT_GT(m.nnz(), 4u * 256u / 2);
    EXPECT_LT(m.nnz(), 6u * 256u);
    // Symmetry: for every (r,c,v) there is (c,r,v).
    for (const auto &t : m.elems()) {
        bool found = false;
        for (const auto &u : m.elems()) {
            if (u.r == t.c && u.c == t.r && u.v == t.v) {
                found = true;
                break;
            }
        }
        ASSERT_TRUE(found);
    }
}

TEST(MatrixGen, CsrBytesFormula)
{
    SparseMatrix m = MatrixGen::randomSparse(100, 100, 1000, 2, "r");
    // 8 * (1.5 nnz + 0.5 m)
    EXPECT_EQ(m.csrBytes(), 8u * (3 * m.nnz() + 100) / 2);
    EXPECT_LT(m.symCsrBytes(), m.csrBytes());
}

TEST(MatrixGen, StandardSuiteComposition)
{
    auto suite = MatrixGen::standardSuite(0.08);
    EXPECT_EQ(suite.size(), 100u);
    std::uint64_t sym = 0, fem = 0, lp = 0;
    for (const auto &m : suite) {
        sym += m.symmetric() ? 1 : 0;
        fem += m.category() == "FEM" ? 1 : 0;
        lp += m.category() == "LP" ? 1 : 0;
        EXPECT_GT(m.nnz(), 0u);
    }
    EXPECT_EQ(sym, 23u);
    EXPECT_EQ(fem, 29u);
    EXPECT_EQ(lp, 15u);
}

TEST(ConvSpmv, GeneratesTraffic)
{
    SparseMatrix m = MatrixGen::fem2d(48, MatrixGen::Coef::Random, true,
                                      3, "f");
    ConvHierarchy hier = ConvHierarchy::paperDefault(16);
    std::uint64_t traffic = convSpmvTraffic(m, hier);
    EXPECT_GT(traffic, 0u);
    // Cold run: traffic at least the compulsory misses of the value
    // array (8 bytes per stored nnz / 16-byte lines / both halves).
    EXPECT_GT(traffic, m.nnz() / 8);
}

struct QtsFixture : ::testing::TestWithParam<unsigned> {};

TEST_P(QtsFixture, MatchesReferenceMultiply)
{
    Memory mem(spmvCfg(GetParam()));
    SparseMatrix m = MatrixGen::fem2d(20, MatrixGen::Coef::Random,
                                      false, 7, "f");
    QtsMatrix q(mem, m);
    auto x = testVector(m.cols());
    expectSameVector(q.spmv(x), m.multiply(x));
}

TEST_P(QtsFixture, MatchesReferenceSymmetric)
{
    Memory mem(spmvCfg(GetParam()));
    SparseMatrix m = MatrixGen::fem2d(16, MatrixGen::Coef::Smooth, true,
                                      8, "f");
    QtsMatrix q(mem, m);
    auto x = testVector(m.cols());
    expectSameVector(q.spmv(x), m.multiply(x));
}

TEST_P(QtsFixture, MatchesReferenceRectangular)
{
    Memory mem(spmvCfg(GetParam()));
    SparseMatrix m = MatrixGen::lp(150, 420, 4, 9, "lp");
    QtsMatrix q(mem, m);
    auto x = testVector(m.cols());
    expectSameVector(q.spmv(x), m.multiply(x));
}

TEST_P(QtsFixture, NzdMatchesReference)
{
    Memory mem(spmvCfg(GetParam()));
    SparseMatrix m = MatrixGen::circuit(300, 4.0, 11, "c");
    NzdMatrix n(mem, m);
    auto x = testVector(m.cols());
    expectSameVector(n.spmv(x), m.multiply(x));
}

TEST_P(QtsFixture, NzdMatchesReferenceBanded)
{
    Memory mem(spmvCfg(GetParam()));
    SparseMatrix m = MatrixGen::banded(
        500, {0, 1, -1, 16, -16}, MatrixGen::Coef::Random, false, 12,
        "b");
    NzdMatrix n(mem, m);
    auto x = testVector(m.cols());
    expectSameVector(n.spmv(x), m.multiply(x));
}

INSTANTIATE_TEST_SUITE_P(AllWidths, QtsFixture,
                         ::testing::Values(16u, 32u, 64u));

TEST(QtsMatrix, SymmetricQuadrantsDeduplicate)
{
    // A symmetric matrix's A12 and A21^T are identical sub-DAGs; the
    // QTS layout makes them one. Compare footprints of a symmetric
    // matrix and a same-pattern non-symmetric one.
    MemoryConfig cfg = spmvCfg();
    SparseMatrix sym = MatrixGen::fem2d(32, MatrixGen::Coef::Random,
                                        true, 21, "s");
    SparseMatrix nonsym = MatrixGen::fem2d(32, MatrixGen::Coef::Random,
                                           false, 21, "n");
    std::uint64_t sym_lines, nonsym_lines;
    {
        Memory mem(cfg);
        sym_lines = QtsMatrix(mem, sym).uniqueLines();
    }
    {
        Memory mem(cfg);
        nonsym_lines = QtsMatrix(mem, nonsym).uniqueLines();
    }
    EXPECT_LT(sym_lines, nonsym_lines * 8 / 10);
}

TEST(QtsMatrix, ConstantStencilCollapses)
{
    // Constant-coefficient Laplacian: every interior block identical;
    // dedup collapses the whole matrix to a handful of lines (the
    // paper's "matrix compacted by 4000x").
    Memory mem(spmvCfg());
    SparseMatrix m = MatrixGen::fem2d(64, MatrixGen::Coef::Constant,
                                      true, 31, "c");
    QtsMatrix q(mem, m);
    EXPECT_LT(q.uniqueLines() * 100, m.convBytes() / 16);
    // And it still multiplies correctly.
    auto x = testVector(m.cols());
    expectSameVector(q.spmv(x), m.multiply(x));
}

TEST(QtsMatrix, ZeroBlocksCostNothing)
{
    // A matrix with one dense corner: the other three quadrants are
    // zero entries; footprint tracks the occupied corner only.
    std::vector<Triplet> t;
    Rng rng(41);
    for (int i = 0; i < 64; ++i)
        for (int j = 0; j < 64; ++j)
            if (rng.chance(0.3))
                t.push_back({static_cast<std::uint32_t>(i),
                             static_cast<std::uint32_t>(j),
                             rng.uniform()});
    SparseMatrix corner("corner", "Test", 4096, 4096, t, false);
    SparseMatrix small("small", "Test", 64, 64, t, false);
    std::uint64_t corner_lines, small_lines;
    MemoryConfig cfg = spmvCfg();
    {
        Memory mem(cfg);
        corner_lines = QtsMatrix(mem, corner).uniqueLines();
    }
    {
        Memory mem(cfg);
        small_lines = QtsMatrix(mem, small).uniqueLines();
    }
    // Path compaction keeps the empty 4096-wide shell nearly free.
    EXPECT_LE(corner_lines, small_lines + 8);
}

TEST(QtsMatrix, SpmvTrafficBenefitsFromDedup)
{
    // Same nnz count, but one matrix is a repeated constant stencil:
    // its lines are shared, so the SpMV touches far fewer DRAM lines.
    // Matrices must exceed the 4 MB LLC for the difference to show
    // (paper §5.2.1 restricts Fig. 7 to such matrices).
    SparseMatrix dedup = MatrixGen::fem2d(192, MatrixGen::Coef::Constant,
                                          true, 51, "d");
    SparseMatrix rnd = MatrixGen::fem2d(192, MatrixGen::Coef::Random,
                                        true, 52, "r");
    auto traffic = [&](const SparseMatrix &m) {
        Memory mem(spmvCfg());
        QtsMatrix q(mem, m);
        mem.resetTraffic();
        auto x = testVector(m.cols());
        q.spmv(x);
        return mem.dram().total();
    };
    EXPECT_LT(traffic(dedup), traffic(rnd) / 2);
}

TEST(Footprint, BestFormatBeatsCsrOnStructuredMatrices)
{
    SparseMatrix m = MatrixGen::blockTiled(
        512, 16, 0.25, MatrixGen::Coef::Constant, 61, "bt");
    auto fp = measureFootprint(m);
    EXPECT_LT(fp.bestBytes(), m.convBytes());
}

TEST(Footprint, RandomMatrixNearCsr)
{
    // Unstructured random values: dedup has little to find; HICAMP
    // may be somewhat above or below CSR but in the same ballpark
    // (paper: a few matrices show negligible increases).
    SparseMatrix m = MatrixGen::randomSparse(2048, 2048, 40000, 71, "r");
    auto fp = measureFootprint(m);
    EXPECT_LT(fp.bestBytes(), m.convBytes() * 3);
    EXPECT_GT(fp.bestBytes(), m.convBytes() / 4);
}

} // namespace
} // namespace hicamp
