/**
 * @file
 * Unit tests for the common substrate: tagged-word meta encodings,
 * Line operations and hashing, hash utilities (bucket/signature
 * derivation), deterministic RNG and the Zipf/power-law samplers.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/hash.hh"
#include "common/line.hh"
#include "common/rng.hh"
#include "common/types.hh"

namespace hicamp {
namespace {

TEST(WordMeta, RawIsDefault)
{
    WordMeta m;
    EXPECT_TRUE(m.isRaw());
    EXPECT_EQ(m.skip(), 0u);
    EXPECT_EQ(m.path(), 0u);
    EXPECT_EQ(m.value(), 0u);
}

TEST(WordMeta, PlidEncoding)
{
    for (unsigned skip = 0; skip <= 15; ++skip) {
        for (unsigned path : {0u, 1u, 5u, 1023u}) {
            WordMeta m = WordMeta::plid(skip, path);
            EXPECT_TRUE(m.isPlid());
            EXPECT_EQ(m.skip(), skip);
            EXPECT_EQ(m.path(), path);
            EXPECT_FALSE(m.isRaw());
            EXPECT_FALSE(m.isInline());
        }
    }
}

TEST(WordMeta, InlineEncoding)
{
    for (unsigned wc : {0u, 1u, 2u}) {
        WordMeta m = WordMeta::inlineData(wc, 3, 7);
        EXPECT_TRUE(m.isInline());
        EXPECT_EQ(m.widthCode(), wc);
        EXPECT_EQ(m.inlineWidth(), 8u << wc);
        EXPECT_EQ(m.inlineWordCount(), 64u / (8u << wc));
        EXPECT_EQ(m.skip(), 3u);
        EXPECT_EQ(m.path(), 7u);
    }
}

TEST(WordMeta, WithPathPreservesKindFields)
{
    WordMeta p = WordMeta::plid(2, 9).withPath(5, 100);
    EXPECT_TRUE(p.isPlid());
    EXPECT_EQ(p.skip(), 5u);
    EXPECT_EQ(p.path(), 100u);

    WordMeta i = WordMeta::inlineData(1, 0, 0).withPath(2, 3);
    EXPECT_TRUE(i.isInline());
    EXPECT_EQ(i.widthCode(), 1u);
    EXPECT_EQ(i.skip(), 2u);
    EXPECT_EQ(i.path(), 3u);
}

TEST(WordMeta, PathBitsPerKind)
{
    EXPECT_EQ(WordMeta::pathBits(TagKind::Plid), 10u);
    EXPECT_EQ(WordMeta::pathBits(TagKind::Inline), 8u);
}

TEST(LineBasics, ByteRoundTrip)
{
    Line l(4);
    const char data[] = "abcdefghij";
    l.loadBytes(data, 10);
    char out[32] = {};
    l.storeBytes(out);
    EXPECT_EQ(std::string(out, 10), "abcdefghij");
    EXPECT_EQ(out[10], 0); // zero padding
}

TEST(LineBasics, EqualityIncludesTags)
{
    Line a(2), b(2);
    a.set(0, 5);
    b.set(0, 5, WordMeta::plid());
    EXPECT_FALSE(a == b);
    b.set(0, 5, WordMeta::raw());
    EXPECT_TRUE(a == b);
}

TEST(LineBasics, HashSensitivity)
{
    Line a(2), b(2), c(2);
    a.set(0, 1);
    b.set(0, 2);
    c.set(1, 1);
    std::set<std::uint64_t> hashes{a.contentHash(), b.contentHash(),
                                   c.contentHash()};
    EXPECT_EQ(hashes.size(), 3u);
}

TEST(LineBasics, DifferentWidthsNeverEqual)
{
    Line a(2), b(4);
    EXPECT_FALSE(a == b);
}

TEST(HashUtils, BucketWithinRange)
{
    for (std::uint64_t h :
         {0ull, 1ull, 0xffffffffffffffffull, 0x123456789abcdefull}) {
        EXPECT_LT(bucketOfHash(h, 1 << 10), 1u << 10);
    }
}

TEST(HashUtils, SignatureNeverZero)
{
    for (std::uint64_t h = 0; h < 100000; h += 37)
        EXPECT_NE(signatureOfHash(mix64(h)), 0);
}

TEST(HashUtils, SignatureRoughlyUniform)
{
    std::map<std::uint8_t, int> counts;
    const int n = 255 * 200;
    for (int i = 0; i < n; ++i)
        counts[signatureOfHash(mix64(i))]++;
    // 255 possible values; each should land within 3x of the mean.
    for (auto &[sig, c] : counts) {
        (void)sig;
        EXPECT_GT(c, 200 / 3);
        EXPECT_LT(c, 200 * 3);
    }
}

TEST(HashUtils, Mix64Avalanche)
{
    // Flipping one input bit flips roughly half the output bits.
    int total = 0;
    for (int bit = 0; bit < 64; ++bit) {
        std::uint64_t a = mix64(0x1234567887654321ull);
        std::uint64_t b = mix64(0x1234567887654321ull ^ (1ull << bit));
        total += std::popcount(a ^ b);
    }
    double avg = static_cast<double>(total) / 64.0;
    EXPECT_GT(avg, 24.0);
    EXPECT_LT(avg, 40.0);
}

TEST(RngTests, Deterministic)
{
    Rng a(42), b(42), c(43);
    for (int i = 0; i < 100; ++i) {
        std::uint64_t va = a.next();
        EXPECT_EQ(va, b.next());
        (void)c.next();
    }
    Rng a2(42), c2(43);
    EXPECT_NE(a2.next(), c2.next());
}

TEST(RngTests, UniformInRange)
{
    Rng r(1);
    for (int i = 0; i < 1000; ++i) {
        double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        std::uint64_t v = r.range(10, 20);
        EXPECT_GE(v, 10u);
        EXPECT_LE(v, 20u);
    }
}

TEST(RngTests, PowerLawBounds)
{
    Rng r(2);
    double mean = 0;
    for (int i = 0; i < 5000; ++i) {
        std::uint64_t v = r.powerLaw(64, 8192, 1.0);
        EXPECT_GE(v, 64u);
        EXPECT_LE(v, 8192u);
        mean += static_cast<double>(v);
    }
    mean /= 5000;
    // Heavy-tailed: mean far below the max, above the min.
    EXPECT_GT(mean, 100.0);
    EXPECT_LT(mean, 2000.0);
}

TEST(ZipfTests, SkewOrdering)
{
    Rng r(3);
    Zipf z(100, 1.0);
    std::vector<int> counts(100, 0);
    for (int i = 0; i < 20000; ++i)
        counts[z.sample(r)]++;
    // Rank 0 dominates rank 10 dominates rank 90.
    EXPECT_GT(counts[0], counts[10]);
    EXPECT_GT(counts[10], counts[90]);
    // Rank 0 takes roughly 1/H(100) ~ 19% of the mass.
    EXPECT_GT(counts[0], 20000 / 10);
}

TEST(ZipfTests, CoversDomain)
{
    Rng r(4);
    Zipf z(8, 0.5);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 2000; ++i)
        seen.insert(z.sample(r));
    EXPECT_EQ(seen.size(), 8u);
}

} // namespace
} // namespace hicamp
