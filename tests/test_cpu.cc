/**
 * @file
 * Processor-model tests: ALU/branch semantics, iterator-register
 * instructions against real segments (sparse scan, buffered writes,
 * commit/abort), and complete kernels — sparse vector sum and a
 * two-iterator sparse dot product — validated against host
 * references.
 */

#include <gtest/gtest.h>

#include "cpu/processor.hh"
#include "seg/builder.hh"

namespace hicamp {
namespace {

struct CpuFixture : ::testing::Test {
    CpuFixture() : hc(cfg()), cpu(hc) {}

    static MemoryConfig
    cfg()
    {
        MemoryConfig c;
        c.numBuckets = 1 << 13;
        return c;
    }

    Vsid
    makeSeg(const std::vector<Word> &w)
    {
        std::vector<WordMeta> m(w.size(), WordMeta::raw());
        SegBuilder b(hc.mem);
        return hc.vsm.create(
            b.buildWords(w.data(), m.data(), w.size()));
    }

    Hicamp hc;
    HicampCpu cpu;
};

TEST_F(CpuFixture, AluAndBranches)
{
    Program p;
    p.emit(Op::Movi, 1, 0, 0, 10)
        .emit(Op::Movi, 2, 0, 0, 32)
        .emit(Op::Add, 3, 1, 2)        // r3 = 42
        .emit(Op::Movi, 4, 0, 0, 0)    // r4 = loop counter
        .emit(Op::Movi, 5, 0, 0, 5)    // r5 = bound
        .label("loop")
        .emit(Op::Addi, 4, 4, 0, 1)
        .branch(Op::Blt, "loop", 4, 5)
        .emit(Op::Halt);
    cpu.run(p);
    EXPECT_EQ(cpu.reg(3), 42u);
    EXPECT_EQ(cpu.reg(4), 5u);
    EXPECT_GT(cpu.stats().branches, 4u);
}

TEST_F(CpuFixture, SparseSumKernel)
{
    // sum all non-zero elements of a sparse segment using ITNEXT —
    // the §3.3 sparse-iteration primitive, in assembly.
    std::vector<Word> data(5000, 0);
    std::uint64_t expect = 0;
    for (std::uint64_t i = 7; i < data.size(); i += 311) {
        data[i] = i;
        expect += i;
    }
    Vsid v = makeSeg(data);

    Program p;
    // r1 = vsid, r2 = 0 (offset), r0 = sum, r3 = scratch
    p.emit(Op::Movi, 0, 0, 0, 0)
        .emit(Op::Movi, 2, 0, 0, 0)
        .emit(Op::ItLoad, /*it*/ 0, /*vsid reg*/ 1, /*off reg*/ 2)
        .label("loop")
        .emit(Op::ItNext, 3, 0) // r3 = advanced?
        .emit(Op::Movi, 4, 0, 0, 0)
        .branch(Op::Beq, "done", 3, 4)
        .emit(Op::ItRead, 5, 0)
        .emit(Op::Add, 0, 0, 5)
        .branch(Op::Jmp, "loop")
        .label("done")
        .emit(Op::Halt);
    cpu.setReg(1, v);
    cpu.run(p);
    EXPECT_EQ(cpu.reg(0), expect);
    // The scan visited exactly the non-zero elements (+1 end probe).
    EXPECT_EQ(cpu.stats().itReads, (5000 - 7 + 310) / 311);
}

TEST_F(CpuFixture, WriteAndCommitKernel)
{
    Vsid v = makeSeg({10, 20, 30, 40});
    Program p;
    // Double element 2 and commit.
    p.emit(Op::Movi, 2, 0, 0, 2)
        .emit(Op::ItLoad, 0, 1, 2)
        .emit(Op::ItRead, 3, 0)
        .emit(Op::Add, 3, 3, 3)
        .emit(Op::ItWrite, 0, 3)
        .emit(Op::ItCommit, 4, 0)
        .emit(Op::Halt);
    cpu.setReg(1, v);
    cpu.run(p);
    EXPECT_EQ(cpu.reg(4), 1u); // commit succeeded

    SegReader r(hc.mem);
    SegDesc d = hc.vsm.get(v);
    EXPECT_EQ(r.readWord(d.root, d.height, 2), 60u);
}

TEST_F(CpuFixture, AbortDiscardsKernelWrites)
{
    Vsid v = makeSeg({1, 2, 3, 4});
    Program p;
    p.emit(Op::Movi, 2, 0, 0, 0)
        .emit(Op::ItLoad, 0, 1, 2)
        .emit(Op::Movi, 3, 0, 0, 999)
        .emit(Op::ItWrite, 0, 3)
        .emit(Op::ItAbort, 0)
        .emit(Op::ItRead, 5, 0)
        .emit(Op::Halt);
    cpu.setReg(1, v);
    cpu.run(p);
    EXPECT_EQ(cpu.reg(5), 1u); // original value restored
}

TEST_F(CpuFixture, SparseDotProductTwoIterators)
{
    // dot(a, b) over sparse segments using two iterator registers:
    // walk a's non-zeros, seek b to the same offset.
    std::vector<Word> a(2000, 0), b(2000, 0);
    std::uint64_t expect = 0;
    for (std::uint64_t i = 3; i < a.size(); i += 97)
        a[i] = i % 7 + 1;
    for (std::uint64_t i = 0; i < b.size(); i += 5)
        b[i] = 2;
    for (std::uint64_t i = 0; i < a.size(); ++i)
        expect += a[i] * b[i];

    Vsid va = makeSeg(a), vb = makeSeg(b);
    Program p;
    p.emit(Op::Movi, 0, 0, 0, 0) // r0 = acc
        .emit(Op::Movi, 3, 0, 0, 0)
        .emit(Op::ItLoad, 0, 1, 3) // it0 over a
        .emit(Op::ItLoad, 1, 2, 3) // it1 over b
        .label("loop")
        .emit(Op::ItNext, 4, 0)
        .emit(Op::Movi, 5, 0, 0, 0)
        .branch(Op::Beq, "done", 4, 5)
        .emit(Op::ItOffs, 6, 0)  // r6 = a's position
        .emit(Op::ItSeek, 1, 6)  // align b
        .emit(Op::ItRead, 7, 0)
        .emit(Op::ItRead, 8, 1)
        .emit(Op::Mul, 9, 7, 8)
        .emit(Op::Add, 0, 0, 9)
        .branch(Op::Jmp, "loop")
        .label("done")
        .emit(Op::Halt);
    cpu.setReg(1, va);
    cpu.setReg(2, vb);
    cpu.run(p);
    EXPECT_EQ(cpu.reg(0), expect);
}

TEST_F(CpuFixture, RunawayProgramTrips)
{
    Program p;
    p.label("spin").branch(Op::Jmp, "spin").emit(Op::Halt);
    EXPECT_DEATH(cpu.run(p, 1000), "instruction budget");
}

} // namespace
} // namespace hicamp
