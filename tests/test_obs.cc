/**
 * @file
 * Tests for the observability layer (src/obs, DESIGN.md §9): metrics
 * registry registration/snapshot/delta/reset semantics, log2-histogram
 * bucket boundaries, the JSON exporters, the Memory integration (every
 * stats family reachable by name), the phase snapshot/delta discipline
 * that replaced warmup counter resets, the DramStats quiescent-read
 * contract, and — when compiled with HICAMP_TRACE — the flight
 * recorder's rings, masks and concurrent emitters.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "mem/dram_stats.hh"
#include "mem/memory.hh"
#include "vsm/segment_map.hh"
#include "obs/export.hh"
#include "obs/histogram.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace hicamp {
namespace {

using obs::Log2Histogram;
using obs::MetricsRegistry;
using obs::MetricsSnapshot;

// ---------------------------------------------------------------- //
// Log2Histogram                                                    //
// ---------------------------------------------------------------- //

TEST(Log2Histogram, BucketBoundaries)
{
    // Bucket 0 holds exactly 0; bucket b>0 holds [2^(b-1), 2^b - 1].
    EXPECT_EQ(Log2Histogram::bucketOf(0), 0u);
    EXPECT_EQ(Log2Histogram::bucketOf(1), 1u);
    EXPECT_EQ(Log2Histogram::bucketOf(2), 2u);
    EXPECT_EQ(Log2Histogram::bucketOf(3), 2u);
    EXPECT_EQ(Log2Histogram::bucketOf(4), 3u);
    EXPECT_EQ(Log2Histogram::bucketOf(~std::uint64_t{0}), 64u);
    for (unsigned b = 0; b < Log2Histogram::kBuckets; ++b) {
        EXPECT_EQ(Log2Histogram::bucketOf(Log2Histogram::bucketLo(b)), b)
            << "lo of bucket " << b;
        EXPECT_EQ(Log2Histogram::bucketOf(Log2Histogram::bucketHi(b)), b)
            << "hi of bucket " << b;
        if (b > 0 && b < 64) {
            // Buckets tile the range with no gap or overlap.
            EXPECT_EQ(Log2Histogram::bucketHi(b) + 1,
                      Log2Histogram::bucketLo(b + 1));
        }
    }
}

TEST(Log2Histogram, RecordCountSumReset)
{
    Log2Histogram h;
    h.record(0);
    h.record(1);
    h.record(7);
    h.record(7);
    EXPECT_EQ(h.count(), 4u);
    EXPECT_EQ(h.sum(), 15u);
    EXPECT_EQ(h.bucketCount(0), 1u);
    EXPECT_EQ(h.bucketCount(1), 1u);
    EXPECT_EQ(h.bucketCount(3), 2u);
    auto snap = h.bucketSnapshot();
    ASSERT_EQ(snap.size(), Log2Histogram::kBuckets);
    EXPECT_EQ(snap[3], 2u);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.sum(), 0u);
}

// ---------------------------------------------------------------- //
// MetricsRegistry                                                  //
// ---------------------------------------------------------------- //

TEST(MetricsRegistry, OwnedCounterIsStableAndNamed)
{
    MetricsRegistry reg("t");
    ShardedCounter &c = reg.counter("alpha");
    c += 3;
    // Re-requesting the name returns the same counter.
    ShardedCounter &again = reg.counter("alpha");
    EXPECT_EQ(&c, &again);
    again += 2;
    MetricsSnapshot s = reg.snapshot();
    EXPECT_EQ(s.registry, "t");
    EXPECT_TRUE(s.hasCounter("alpha"));
    EXPECT_EQ(s.counter("alpha"), 5u);
    EXPECT_EQ(s.counter("missing", 42), 42u);
    EXPECT_FALSE(s.hasCounter("missing"));
}

TEST(MetricsRegistry, NonOwningOverloadsAndResetAll)
{
    MetricsRegistry reg("t");
    ShardedCounter sc;
    AtomicCounter ac;
    Counter pc;
    std::atomic<std::uint64_t> raw{0};
    std::uint64_t lam = 0;
    reg.addCounter("sharded", &sc);
    reg.addCounter("atomic", &ac);
    reg.addCounter("plain", &pc);
    reg.addCounter("raw", &raw);
    reg.addCounter(
        "lambda", [&lam] { return lam; }, [&lam] { lam = 0; });
    reg.addGauge("level", [] { return std::uint64_t{7}; });
    sc += 1;
    ac += 2;
    ++pc;
    raw.fetch_add(4);
    lam = 5;
    MetricsSnapshot s = reg.snapshot();
    EXPECT_EQ(s.counter("sharded"), 1u);
    EXPECT_EQ(s.counter("atomic"), 2u);
    EXPECT_EQ(s.counter("plain"), 1u);
    EXPECT_EQ(s.counter("raw"), 4u);
    EXPECT_EQ(s.counter("lambda"), 5u);
    EXPECT_EQ(s.gauge("level"), 7u);
    EXPECT_EQ(s.gauge("absent", 9), 9u);
    reg.resetAll();
    MetricsSnapshot z = reg.snapshot();
    EXPECT_EQ(z.counter("sharded"), 0u);
    EXPECT_EQ(z.counter("atomic"), 0u);
    EXPECT_EQ(z.counter("plain"), 0u);
    EXPECT_EQ(z.counter("raw"), 0u);
    EXPECT_EQ(z.counter("lambda"), 0u);
    // Gauges are level values; resetAll leaves them alone.
    EXPECT_EQ(z.gauge("level"), 7u);
}

TEST(MetricsRegistry, SnapshotNamesAreSorted)
{
    MetricsRegistry reg("t");
    reg.counter("zebra") += 1;
    reg.counter("apple") += 1;
    reg.counter("mango") += 1;
    MetricsSnapshot s = reg.snapshot();
    ASSERT_EQ(s.counters.size(), 3u);
    EXPECT_EQ(s.counters[0].first, "apple");
    EXPECT_EQ(s.counters[1].first, "mango");
    EXPECT_EQ(s.counters[2].first, "zebra");
}

TEST(MetricsRegistry, RemoveByPrefixTombstonesAndRevives)
{
    MetricsRegistry reg("t");
    ShardedCounter &c = reg.counter("vsm.commits");
    c += 9;
    reg.counter("other") += 1;
    EXPECT_TRUE(reg.has("vsm.commits"));
    reg.removeByPrefix("vsm.");
    EXPECT_FALSE(reg.has("vsm.commits"));
    EXPECT_TRUE(reg.has("other"));
    EXPECT_FALSE(reg.snapshot().hasCounter("vsm.commits"));
    // Re-requesting the name revives the entry, zeroed.
    ShardedCounter &revived = reg.counter("vsm.commits");
    EXPECT_EQ(reg.snapshot().counter("vsm.commits"), 0u);
    revived += 1;
    EXPECT_EQ(reg.snapshot().counter("vsm.commits"), 1u);
}

TEST(MetricsRegistry, GlobalSnapshotPrefixesAndDedupesNames)
{
    MetricsRegistry a("dup");
    MetricsRegistry b("dup");
    EXPECT_EQ(a.name(), "dup");
    EXPECT_NE(b.name(), "dup"); // de-duplicated ("dup#2", ...)
    a.counter("c") += 1;
    b.counter("c") += 2;
    MetricsSnapshot g = MetricsRegistry::globalSnapshot();
    EXPECT_EQ(g.counter("dup.c"), 1u);
    EXPECT_EQ(g.counter(b.name() + ".c"), 2u);
}

TEST(MetricsDelta, SubtractsClampsAndDrops)
{
    MetricsSnapshot before, after;
    before.counters = {{"down", 10}, {"gone", 5}, {"up", 3}};
    before.gauges = {{"level", 100}};
    after.counters = {{"down", 4}, {"fresh", 7}, {"up", 8}};
    after.gauges = {{"level", 60}};
    MetricsSnapshot d = obs::delta(before, after);
    EXPECT_EQ(d.counter("up"), 5u);
    // A counter that went backwards (reset mid-run) clamps at zero
    // instead of underflowing to ~2^64.
    EXPECT_EQ(d.counter("down"), 0u);
    // Names only in `after` enter with their full value; names only
    // in `before` are dropped.
    EXPECT_EQ(d.counter("fresh"), 7u);
    EXPECT_FALSE(d.hasCounter("gone"));
    // Gauges are levels: delta keeps the `after` reading.
    EXPECT_EQ(d.gauge("level"), 60u);
}

TEST(MetricsRegistry, ConcurrentBumpsExactAtQuiescence)
{
    MetricsRegistry reg("t");
    ShardedCounter &c = reg.counter("hammer");
    constexpr int kThreads = 4;
    constexpr int kPerThread = 20000;
    std::atomic<bool> stop{false};
    // A snapshotter races the writers: reads must be safe (and
    // monotone) even mid-flight; TSan builds verify the former.
    std::thread snapper([&] {
        std::uint64_t last = 0;
        while (!stop.load(std::memory_order_acquire)) {
            std::uint64_t v = reg.snapshot().counter("hammer");
            EXPECT_GE(v, last);
            last = v;
        }
    });
    std::vector<std::thread> writers;
    for (int t = 0; t < kThreads; ++t)
        writers.emplace_back([&c] {
            for (int i = 0; i < kPerThread; ++i)
                ++c;
        });
    for (auto &t : writers)
        t.join();
    stop.store(true, std::memory_order_release);
    snapper.join();
    EXPECT_EQ(reg.snapshot().counter("hammer"),
              static_cast<std::uint64_t>(kThreads) * kPerThread);
}

// ---------------------------------------------------------------- //
// Exporters                                                        //
// ---------------------------------------------------------------- //

TEST(ObsExport, ToJsonCarriesAllSections)
{
    MetricsRegistry reg("t");
    reg.counter("a.count") += 3;
    reg.addGauge("a.level", [] { return std::uint64_t{11}; });
    reg.histogram("a.hist").record(5);
    std::string j = obs::toJson(reg.snapshot());
    EXPECT_NE(j.find("\"registry\": \"t\""), std::string::npos) << j;
    EXPECT_NE(j.find("\"a.count\": 3"), std::string::npos) << j;
    EXPECT_NE(j.find("\"a.level\": 11"), std::string::npos) << j;
    EXPECT_NE(j.find("\"a.hist\""), std::string::npos) << j;
    EXPECT_NE(j.find("\"count\": 1"), std::string::npos) << j;
    EXPECT_NE(j.find("\"sum\": 5"), std::string::npos) << j;
}

TEST(ObsExport, DumpMetricsFromEnvRoundTrips)
{
    MetricsRegistry reg("t");
    reg.counter("k") += 1;
    // Unset: no dump requested, returns false.
    unsetenv("HICAMP_OBS_METRICS");
    EXPECT_FALSE(obs::dumpMetricsFromEnv(reg.snapshot()));
    std::string path = testing::TempDir() + "obs_dump_test.json";
    setenv("HICAMP_OBS_METRICS", path.c_str(), 1);
    EXPECT_TRUE(obs::dumpMetricsFromEnv(reg.snapshot()));
    unsetenv("HICAMP_OBS_METRICS");
    std::ifstream f(path);
    ASSERT_TRUE(f.good());
    std::ostringstream body;
    body << f.rdbuf();
    EXPECT_NE(body.str().find("\"k\": 1"), std::string::npos);
    std::remove(path.c_str());
}

// ---------------------------------------------------------------- //
// Memory integration + the phase snapshot/delta discipline         //
// ---------------------------------------------------------------- //

MemoryConfig
obsCfg()
{
    MemoryConfig cfg;
    cfg.numBuckets = 1 << 12;
    cfg.faults.allowEnvOverride = false;
    return cfg;
}

Line
taggedLine(Memory &mem, Word tag)
{
    Line l = mem.makeLine();
    l.set(0, tag);
    l.set(1, tag * 131 + 17);
    return l;
}

TEST(ObsMemory, EveryStatsFamilyReachableByName)
{
    Memory mem(obsCfg());
    for (Word t = 1; t <= 32; ++t)
        (void)mem.lookup(taggedLine(mem, t));
    MetricsSnapshot s = mem.metrics().snapshot();
    EXPECT_EQ(s.registry, "mem");
    // DRAM categories agree with the raw quiescent-point reads.
    EXPECT_EQ(s.counter("dram.lookup"), mem.dram().lookups());
    EXPECT_EQ(s.counter("dram.read"), mem.dram().reads());
    EXPECT_EQ(s.counter("dram.write"), mem.dram().writes());
    // Op counters, cache families, gauges, and the candidate-scan
    // histogram are all present under their documented names.
    EXPECT_EQ(s.counter("ops.lookups"), 32u);
    EXPECT_TRUE(s.hasCounter("cache.l1.hits"));
    EXPECT_TRUE(s.hasCounter("cache.l2.misses"));
    EXPECT_TRUE(s.hasCounter("contention.retries"));
    EXPECT_TRUE(s.hasCounter("pressure.oom_events"));
    EXPECT_TRUE(s.hasCounter("lookup.dedup_hits"));
    EXPECT_EQ(s.gauge("store.live_lines"), mem.liveLines());
    bool have_hist = false;
    for (const auto &[name, h] : s.histograms)
        if (name == "lookup.candidates") {
            have_hist = true;
            EXPECT_EQ(h.buckets.size(), Log2Histogram::kBuckets);
        }
    EXPECT_TRUE(have_hist);
}

TEST(ObsMemory, VsmMetricsRegisterAndUnregister)
{
    Memory mem(obsCfg());
    {
        SegmentMap vsm(mem);
        EXPECT_TRUE(mem.metrics().has("vsm.commits"));
        EXPECT_TRUE(mem.metrics().has("vsm.merge_commits"));
    }
    // The map died before its Memory: its entries must be gone, not
    // dangling (snapshot would read freed memory otherwise).
    EXPECT_FALSE(mem.metrics().has("vsm.commits"));
    (void)mem.metrics().snapshot();
}

TEST(ObsMemory, PhaseDeltaExcludesWarmupWithoutReset)
{
    // The Fig. 6/7 bug this PR retires: benches used to reset counters
    // after warmup, destroying the cumulative view (and racing other
    // readers). The discipline now is flush + snapshot + delta.
    Memory mem(obsCfg());
    for (Word t = 1; t <= 20; ++t)
        (void)mem.lookup(taggedLine(mem, t)); // "warmup"
    std::uint64_t warm_lookups = mem.dram().lookups();
    ASSERT_GT(warm_lookups, 0u);

    mem.flushTraffic(); // cache maintenance only — NO counter reset
    MetricsSnapshot before = mem.metrics().snapshot();
    // Warmup traffic is still in the cumulative counters.
    EXPECT_EQ(before.counter("dram.lookup"), warm_lookups);

    for (Word t = 100; t < 110; ++t)
        (void)mem.lookup(taggedLine(mem, t)); // "measured"
    MetricsSnapshot d = obs::delta(before, mem.metrics().snapshot());
    EXPECT_EQ(d.counter("ops.lookups"), 10u);
    EXPECT_EQ(d.counter("dram.lookup"),
              mem.dram().lookups() - warm_lookups);
    // And the cumulative counters were never reset.
    EXPECT_GE(mem.dram().lookups(), warm_lookups);
    mem.coldCaches(); // the cold variant is also reset-free
    EXPECT_GE(mem.dram().lookups(), warm_lookups);
}

#ifndef NDEBUG
TEST(DramStatsDeath, ReadWhileWriterInFlightAsserts)
{
    // get()/total() are only exact at quiescent points; debug builds
    // turn a mid-flight read into a loud failure.
    DramStats s;
    s.count(DramCat::Read);
    EXPECT_EQ(s.total(), 1u); // quiescent: fine
    DramStats::WriterScope w(s);
    EXPECT_DEATH((void)s.total(), "quiescent");
}
#endif

// ---------------------------------------------------------------- //
// Flight recorder (only in -DHICAMP_TRACE=ON builds)               //
// ---------------------------------------------------------------- //

TEST(TraceMask, SpecParsing)
{
    constexpr std::uint32_t kAll =
        (1u << static_cast<unsigned>(obs::TraceCat::NumCats)) - 1;
    EXPECT_EQ(obs::traceMaskFor(nullptr), kAll);
    EXPECT_EQ(obs::traceMaskFor("all"), kAll);
    EXPECT_EQ(obs::traceMaskFor("mem"), 1u);
    EXPECT_EQ(obs::traceMaskFor("mem,cache"), 1u | (1u << 2));
    EXPECT_EQ(obs::traceMaskFor("0x5"), 0x5u);
    EXPECT_EQ(obs::traceMaskFor("3"), 3u);
}

TEST(TraceNames, CoverEveryEnumerator)
{
    for (unsigned c = 0; c < static_cast<unsigned>(obs::TraceCat::NumCats);
         ++c)
        EXPECT_STRNE(obs::traceCatName(static_cast<obs::TraceCat>(c)), "?");
    for (unsigned k = 0;
         k < static_cast<unsigned>(obs::TraceKind::NumKinds); ++k)
        EXPECT_STRNE(obs::traceKindName(static_cast<obs::TraceKind>(k)),
                     "?");
}

#ifdef HICAMP_TRACE

class FlightRecorderTest : public testing::Test
{
  protected:
    void
    SetUp() override
    {
        obs::FlightRecorder::instance().resetForTest(kCap);
        obs::FlightRecorder::instance().setMask(~0u);
    }
    void
    TearDown() override
    {
        // Leave a sane default for whatever test runs next.
        obs::FlightRecorder::instance().resetForTest(kCap);
        obs::FlightRecorder::instance().setMask(~0u);
    }
    static constexpr std::size_t kCap = 64;
};

TEST_F(FlightRecorderTest, RecordsAndDrainsInTickOrder)
{
    for (int i = 0; i < 10; ++i)
        HICAMP_TRACE_EVENT(App, Phase, i, i * 8);
    auto events = obs::FlightRecorder::instance().drain();
    ASSERT_EQ(events.size(), 10u);
    for (std::size_t i = 1; i < events.size(); ++i)
        EXPECT_LE(events[i - 1].tick, events[i].tick);
    EXPECT_EQ(events[3].id, 3u);
    EXPECT_EQ(events[3].bytes, 24u);
    EXPECT_EQ(events[3].cat, obs::TraceCat::App);
    EXPECT_EQ(events[3].kind, obs::TraceKind::Phase);
    // Drain cleared the rings.
    EXPECT_TRUE(obs::FlightRecorder::instance().drain().empty());
}

TEST_F(FlightRecorderTest, RingWrapsOverwritingOldest)
{
    const int kEmit = 3 * kCap;
    for (int i = 0; i < kEmit; ++i)
        HICAMP_TRACE_EVENT(App, Phase, i, 0);
    obs::FlightRecorder &fr = obs::FlightRecorder::instance();
    EXPECT_EQ(fr.recorded(), static_cast<std::uint64_t>(kEmit));
    EXPECT_EQ(fr.dropped(), static_cast<std::uint64_t>(kEmit - kCap));
    auto events = fr.drain();
    ASSERT_EQ(events.size(), kCap);
    // The survivors are exactly the newest kCap events.
    EXPECT_EQ(events.front().id, static_cast<std::uint64_t>(kEmit - kCap));
    EXPECT_EQ(events.back().id, static_cast<std::uint64_t>(kEmit - 1));
}

TEST_F(FlightRecorderTest, MaskGatesEmission)
{
    obs::FlightRecorder &fr = obs::FlightRecorder::instance();
    fr.setMask(0);
    HICAMP_TRACE_EVENT(App, Phase, 1, 0);
    EXPECT_TRUE(fr.drain().empty());
    // Enable only Seg: App events still don't record.
    fr.setMask(obs::traceMaskFor("seg"));
    HICAMP_TRACE_EVENT(App, Phase, 2, 0);
    HICAMP_TRACE_EVENT(Seg, Build, 3, 0);
    auto events = fr.drain();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].cat, obs::TraceCat::Seg);
}

TEST_F(FlightRecorderTest, ScopeRecordsDuration)
{
    {
        HICAMP_TRACE_SCOPE(Seg, Merge, 77, 0);
        HICAMP_TRACE_EVENT(App, Phase, 1, 0); // advances the clock
    }
    auto events = obs::FlightRecorder::instance().drain();
    ASSERT_EQ(events.size(), 2u);
    // The span began before the inner event and closed after it.
    EXPECT_EQ(events[0].kind, obs::TraceKind::Merge);
    EXPECT_GE(events[0].dur, 2u);
    EXPECT_EQ(events[1].kind, obs::TraceKind::Phase);
}

TEST_F(FlightRecorderTest, ConcurrentEmittersDontCorrupt)
{
    obs::FlightRecorder &fr = obs::FlightRecorder::instance();
    fr.resetForTest(1024);
    constexpr int kThreads = 4;
    constexpr int kPerThread = 5000;
    std::vector<std::thread> emitters;
    for (int t = 0; t < kThreads; ++t)
        emitters.emplace_back([t] {
            for (int i = 0; i < kPerThread; ++i)
                HICAMP_TRACE_EVENT(App, Phase,
                                   static_cast<std::uint64_t>(t) * 100000 +
                                       static_cast<std::uint64_t>(i),
                                   0);
        });
    for (auto &t : emitters)
        t.join();
    EXPECT_EQ(fr.recorded(),
              static_cast<std::uint64_t>(kThreads) * kPerThread);
    auto events = fr.drain();
    // Each thread has its own 1024-deep ring.
    EXPECT_EQ(events.size(), static_cast<std::size_t>(kThreads) * 1024);
    for (std::size_t i = 1; i < events.size(); ++i)
        EXPECT_LE(events[i - 1].tick, events[i].tick);
}

TEST_F(FlightRecorderTest, ChromeTraceJsonShape)
{
    HICAMP_TRACE_EVENT(Mem, Lookup, 42, 16);
    std::string j =
        obs::chromeTraceJson(obs::FlightRecorder::instance().drain());
    EXPECT_NE(j.find("\"traceEvents\""), std::string::npos) << j;
    EXPECT_NE(j.find("\"name\": \"lookup\""), std::string::npos) << j;
    EXPECT_NE(j.find("\"cat\": \"mem\""), std::string::npos) << j;
    EXPECT_NE(j.find("\"id\": 42"), std::string::npos) << j;
}

#endif // HICAMP_TRACE

} // namespace
} // namespace hicamp
