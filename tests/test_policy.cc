/**
 * @file
 * Compaction-policy ablation correctness: disabling data or path
 * compaction changes the representation (line counts) but NEVER the
 * semantics — materialized content, reads, next-non-zero scans and
 * functional updates agree across all policy combinations, and
 * canonical uniqueness holds within each policy.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "seg/builder.hh"
#include "seg/reader.hh"

namespace hicamp {
namespace {

struct PolicyCase {
    unsigned lineBytes;
    bool data;
    bool path;
};

class PolicyFixture : public ::testing::TestWithParam<PolicyCase>
{
  protected:
    MemoryConfig
    cfg() const
    {
        MemoryConfig c;
        c.lineBytes = GetParam().lineBytes;
        c.numBuckets = 1 << 12;
        return c;
    }

    CompactionPolicy
    policy() const
    {
        return {GetParam().data, GetParam().path};
    }
};

TEST_P(PolicyFixture, ContentSemanticsUnchanged)
{
    Memory mem(cfg());
    SegBuilder b(mem, false, policy());
    SegReader r(mem);
    Rng rng(31);

    std::vector<Word> w(2048, 0);
    for (auto &x : w) {
        if (rng.chance(0.2))
            x = rng.chance(0.5) ? rng.below(200) : rng.next();
    }
    std::vector<WordMeta> m(w.size(), WordMeta::raw());
    SegDesc d = b.buildWords(w.data(), m.data(), w.size());

    // Every word reads back identically regardless of policy.
    for (std::uint64_t i = 0; i < w.size(); i += 7)
        ASSERT_EQ(r.readWord(d.root, d.height, i), w[i]) << i;

    // next-non-zero agrees with a host scan.
    std::uint64_t pos = 0;
    for (std::uint64_t i = 0; i < w.size(); ++i) {
        if (w[i] == 0)
            continue;
        auto nxt = r.nextNonZero(d.root, d.height, pos);
        ASSERT_TRUE(nxt.has_value());
        ASSERT_EQ(*nxt, i);
        pos = i + 1;
    }
    EXPECT_FALSE(r.nextNonZero(d.root, d.height, pos).has_value());
}

TEST_P(PolicyFixture, CanonicalWithinPolicy)
{
    Memory mem(cfg());
    SegBuilder b(mem, false, policy());
    std::vector<Word> w(256, 0);
    w[3] = 7;
    w[200] = 9;
    std::vector<WordMeta> m(w.size(), WordMeta::raw());
    SegDesc d1 = b.buildWords(w.data(), m.data(), w.size());
    SegDesc d2 = b.buildWords(w.data(), m.data(), w.size());
    EXPECT_EQ(d1, d2);

    // Functional update converges to the bulk build of the result.
    Entry updated = b.setWord(d1.root, d1.height, 100, 5,
                              WordMeta::raw());
    w[100] = 5;
    SegDesc direct = b.buildWords(w.data(), m.data(), w.size());
    EXPECT_EQ(updated, direct.root);
}

TEST_P(PolicyFixture, ReclamationStillBalanced)
{
    Memory mem(cfg());
    {
        SegBuilder b(mem, false, policy());
        std::vector<Word> w(512);
        for (std::uint64_t i = 0; i < w.size(); ++i)
            w[i] = (i % 5 == 0) ? 0 : i + (Word{1} << 40);
        std::vector<WordMeta> m(w.size(), WordMeta::raw());
        SegDesc d = b.buildWords(w.data(), m.data(), w.size());
        b.releaseSeg(d);
    }
    EXPECT_EQ(mem.liveLines(), 0u);
    EXPECT_EQ(mem.store().totalRefs(), 0u);
}

std::vector<PolicyCase>
cases()
{
    std::vector<PolicyCase> out;
    for (unsigned ls : {16u, 32u, 64u})
        for (bool data : {true, false})
            for (bool path : {true, false})
                out.push_back({ls, data, path});
    return out;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PolicyFixture, ::testing::ValuesIn(cases()),
    [](const auto &info) {
        return "ls" + std::to_string(info.param.lineBytes) +
               (info.param.data ? "_data" : "_nodata") +
               (info.param.path ? "_path" : "_nopath");
    });

} // namespace
} // namespace hicamp
