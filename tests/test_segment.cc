/**
 * @file
 * Segment-layer tests: canonical DAG construction, zero/data/path
 * compaction, content-unique roots, copy-on-write functional updates,
 * snapshot stability, sparse iteration and reference-count hygiene.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "mem/memory.hh"
#include "seg/builder.hh"
#include "seg/reader.hh"

namespace hicamp {
namespace {

struct SegFixture : ::testing::TestWithParam<unsigned> {
    SegFixture()
        : mem(cfg()), builder(mem), reader(mem)
    {}

    MemoryConfig
    cfg() const
    {
        MemoryConfig c;
        c.lineBytes = GetParam();
        c.numBuckets = 1 << 12;
        // Single-shot setWord chains (no retry boundary): opt out of
        // suite-wide fault injection.
        c.faults.allowEnvOverride = false;
        return c;
    }

    std::vector<Word>
    wordsOf(const SegDesc &d)
    {
        std::vector<Word> w;
        std::vector<WordMeta> m;
        reader.materialize(d.root, d.height, w, m);
        return w;
    }

    Memory mem;
    SegBuilder builder;
    SegReader reader;
};

TEST_P(SegFixture, BytesRoundTrip)
{
    const std::string text =
        "This is a long string containing another string that is short.";
    SegDesc d = builder.buildBytes(text.data(), text.size());
    std::vector<Word> words = wordsOf(d);
    std::string back(reinterpret_cast<const char *>(words.data()),
                     text.size());
    EXPECT_EQ(back, text);
    EXPECT_EQ(d.byteLen, text.size());
}

TEST_P(SegFixture, ContentUniqueRoots)
{
    const std::string text = "identical segment content, built twice....";
    SegDesc d1 = builder.buildBytes(text.data(), text.size());
    SegDesc d2 = builder.buildBytes(text.data(), text.size());
    EXPECT_EQ(d1, d2);
    EXPECT_EQ(d1.fingerprint(), d2.fingerprint());
}

TEST_P(SegFixture, DifferentContentDifferentRoots)
{
    std::string a(300, 'a');
    std::string b = a;
    b[250] = 'b';
    SegDesc da = builder.buildBytes(a.data(), a.size());
    SegDesc db = builder.buildBytes(b.data(), b.size());
    EXPECT_FALSE(da == db);
}

TEST_P(SegFixture, SharedPrefixSharesLines)
{
    // Two long strings sharing a 4 KB prefix must share leaf lines:
    // total live lines well under the sum of their standalone DAGs.
    std::string prefix(4096, 'x');
    for (std::size_t i = 0; i < prefix.size(); ++i)
        prefix[i] = static_cast<char>('a' + (i * 131) % 26);
    std::string s1 = prefix + "-first-suffix";
    std::string s2 = prefix + "-second-suffix";

    SegDesc d1 = builder.buildBytes(s1.data(), s1.size());
    std::uint64_t after_first = mem.liveLines();
    SegDesc d2 = builder.buildBytes(s2.data(), s2.size());
    std::uint64_t after_second = mem.liveLines();

    // The second string should add far fewer lines than the first.
    EXPECT_LT(after_second - after_first, after_first / 2);

    std::unordered_set<Plid> seen;
    std::uint64_t lines1 = reader.countLines(d1.root, d1.height, seen);
    std::uint64_t shared_extra =
        reader.countLines(d2.root, d2.height, seen);
    EXPECT_LT(shared_extra, lines1 / 2);
}

TEST_P(SegFixture, IdenticalSegmentIsFreeDedup)
{
    std::string text(2048, 'q');
    (void)builder.buildBytes(text.data(), text.size());
    std::uint64_t lines_before = mem.liveLines();
    (void)builder.buildBytes(text.data(), text.size());
    EXPECT_EQ(mem.liveLines(), lines_before);
}

TEST_P(SegFixture, ZeroSuppression)
{
    std::vector<Word> w(1024, 0);
    std::vector<WordMeta> m(w.size(), WordMeta::raw());
    SegDesc d = builder.buildWords(w.data(), m.data(), w.size());
    EXPECT_TRUE(d.root.isZero());
    EXPECT_EQ(mem.liveLines(), 0u);
}

TEST_P(SegFixture, SparseSingleElementUsesFewLines)
{
    // One non-zero word in a 64K-word segment: zero suppression plus
    // path compaction keep the DAG tiny.
    std::vector<Word> w(65536, 0);
    w[40000] = 0xabcdef0123456789ull; // too big to inline
    std::vector<WordMeta> m(w.size(), WordMeta::raw());
    SegDesc d = builder.buildWords(w.data(), m.data(), w.size());
    std::unordered_set<Plid> seen;
    std::uint64_t lines = reader.countLines(d.root, d.height, seen);
    EXPECT_LE(lines, 4u);
    EXPECT_EQ(reader.readWord(d.root, d.height, 40000),
              0xabcdef0123456789ull);
    EXPECT_EQ(reader.readWord(d.root, d.height, 39999), 0u);
}

TEST_P(SegFixture, DataCompactionInlinesSmallValues)
{
    // An array of small integers compacts into inline words: a whole
    // leaf (or more) packs into parent slots, using fewer lines than
    // one per leaf.
    const std::uint64_t n = 512;
    std::vector<Word> w(n);
    for (std::uint64_t i = 0; i < n; ++i)
        w[i] = i % 200; // all fit in a byte
    std::vector<WordMeta> m(n, WordMeta::raw());
    SegDesc d = builder.buildWords(w.data(), m.data(), n);

    std::unordered_set<Plid> seen;
    std::uint64_t lines = reader.countLines(d.root, d.height, seen);
    const std::uint64_t leaves_uncompacted = n / mem.fanout();
    EXPECT_LT(lines, leaves_uncompacted / 2);

    for (std::uint64_t i = 0; i < n; i += 37)
        EXPECT_EQ(reader.readWord(d.root, d.height, i), i % 200);
}

TEST_P(SegFixture, CopyOnWritePreservesSnapshot)
{
    std::vector<Word> w(256);
    for (std::uint64_t i = 0; i < w.size(); ++i)
        w[i] = i + 1000;
    std::vector<WordMeta> m(w.size(), WordMeta::raw());
    SegDesc snap = builder.buildWords(w.data(), m.data(), w.size());

    Entry new_root = builder.setWord(snap.root, snap.height, 100,
                                     999999999ull, WordMeta::raw());
    // The snapshot still reads the old value; the new root the new one.
    EXPECT_EQ(reader.readWord(snap.root, snap.height, 100), 1100u);
    EXPECT_EQ(reader.readWord(new_root, snap.height, 100), 999999999ull);
    // Untouched words are shared and identical.
    EXPECT_EQ(reader.readWord(new_root, snap.height, 101), 1101u);
}

TEST_P(SegFixture, SetWordMatchesBulkBuild)
{
    // Canonicality: updating word-by-word must converge to exactly the
    // same root entry as a bulk build of the final content.
    std::vector<Word> w(128);
    for (std::uint64_t i = 0; i < w.size(); ++i)
        w[i] = i * 3 + 7;
    std::vector<WordMeta> m(w.size(), WordMeta::raw());
    SegDesc bulk = builder.buildWords(w.data(), m.data(), w.size());

    // Start from zero and set every word.
    int h = builder.geometry().heightForWords(w.size());
    Entry root = Entry::zero();
    for (std::uint64_t i = 0; i < w.size(); ++i) {
        Entry next = builder.setWord(root, h, i, w[i], WordMeta::raw());
        builder.release(root);
        root = next;
    }
    EXPECT_EQ(root, bulk.root);
    builder.release(root);
}

TEST_P(SegFixture, NextNonZeroSkipsHoles)
{
    std::vector<Word> w(4096, 0);
    w[3] = 1;
    w[700] = 2;
    w[701] = 3;
    w[4000] = 4;
    std::vector<WordMeta> m(w.size(), WordMeta::raw());
    SegDesc d = builder.buildWords(w.data(), m.data(), w.size());

    std::vector<std::uint64_t> found;
    std::uint64_t pos = 0;
    while (auto nxt = reader.nextNonZero(d.root, d.height, pos)) {
        found.push_back(*nxt);
        pos = *nxt + 1;
    }
    EXPECT_EQ(found, (std::vector<std::uint64_t>{3, 700, 701, 4000}));
}

TEST_P(SegFixture, ReleaseReclaimsEverything)
{
    std::string text(3000, 'z');
    for (std::size_t i = 0; i < text.size(); ++i)
        text[i] = static_cast<char>('A' + (i * 17) % 26);
    SegDesc d = builder.buildBytes(text.data(), text.size());
    EXPECT_GT(mem.liveLines(), 0u);
    builder.releaseSeg(d);
    EXPECT_EQ(mem.liveLines(), 0u);
    EXPECT_EQ(mem.store().totalRefs(), 0u);
}

TEST_P(SegFixture, SnapshotRetainSurvivesUpdaterRelease)
{
    std::vector<Word> w(64);
    for (std::uint64_t i = 0; i < w.size(); ++i)
        w[i] = i + 0x1000000ull;
    std::vector<WordMeta> m(w.size(), WordMeta::raw());
    SegDesc d = builder.buildWords(w.data(), m.data(), w.size());

    // A second thread takes a snapshot (retains the root).
    Entry snap = builder.retain(d.root);

    // The updater produces a new version and drops the old root.
    Entry v2 = builder.setWord(d.root, d.height, 10, 42, WordMeta::raw());
    builder.release(d.root);

    // The snapshot must still read the original data.
    EXPECT_EQ(reader.readWord(snap, d.height, 10), 0x100000aull);
    EXPECT_EQ(reader.readWord(v2, d.height, 10), 42u);

    builder.release(snap);
    builder.release(v2);
    EXPECT_EQ(mem.liveLines(), 0u);
}

TEST_P(SegFixture, TaggedWordsInLeaves)
{
    // Leaves can hold PLID-tagged words (e.g. a map's value slots).
    Line payload = mem.makeLine();
    payload.set(0, 0xfeedULL);
    Plid vp = mem.lookup(payload);

    int h = builder.geometry().heightForWords(256);
    Entry root = builder.setWord(Entry::zero(), h, 123, vp,
                                 WordMeta::plid());
    WordMeta meta_out;
    Word got = reader.readWord(root, h, 123, &meta_out);
    EXPECT_EQ(got, vp);
    EXPECT_TRUE(meta_out.isPlid());
    EXPECT_TRUE(mem.isLive(vp));

    // Releasing the tree releases the payload too.
    builder.release(root);
    EXPECT_FALSE(mem.isLive(vp));
    EXPECT_EQ(mem.liveLines(), 0u);
}

TEST_P(SegFixture, GrowByBuildingTallerTree)
{
    // Append semantics: content extended past its original coverage
    // re-roots at a larger height while sharing the original lines.
    std::string small(200, 's');
    SegDesc d1 = builder.buildBytes(small.data(), small.size());
    std::string big = small + std::string(4000, 't');
    std::uint64_t before = mem.liveLines();
    SegDesc d2 = builder.buildBytes(big.data(), big.size());
    EXPECT_GT(d2.height, d1.height);
    // The extension reuses the original leaves (same content), so the
    // marginal cost is roughly the new suffix only.
    std::uint64_t grown = mem.liveLines() - before;
    std::unordered_set<Plid> seen;
    std::uint64_t d2_lines = reader.countLines(d2.root, d2.height, seen);
    EXPECT_LT(grown, d2_lines);
}

INSTANTIATE_TEST_SUITE_P(AllWidths, SegFixture,
                         ::testing::Values(16u, 32u, 64u));

} // namespace
} // namespace hicamp
