// compile_fail case: acquires a stripe (rank 3) inside an
// epoch-pinned read section (rank 4) — violating the DESIGN.md §12
// rule that read sections are lock-free (a stripe taken under a pin
// could wait on a writer whose limbo flush reacquires stripes).
// EpochGuard co-acquires the `lockrank::epoch` anchor, declared
// ACQUIRED_AFTER the stripe anchor, so under `clang++
// -Wthread-safety-beta -Werror` the inversion is a compile error
// (the ctest entry is WILL_FAIL).
#include "common/thread_annotations.hh"
#include "mem/epoch.hh"

namespace {
hicamp::StripeBank stripes(4); // stripe rank (line-store buckets)
} // namespace

int
main()
{
    hicamp::EpochManager domain;
    hicamp::EpochGuard g(domain);
    hicamp::StripeExclusive s(stripes, 0); // BAD: stripe inside guard
    return 0;
}
