// Positive control for the compile_fail suite: the same constructs
// the failing cases abuse, used correctly — guarded field behind its
// guard, locks taken in the DESIGN.md §7 rank order. Must compile
// cleanly under `clang++ -Wthread-safety -Wthread-safety-beta` and
// under annotation-free compilers alike.
#include "common/thread_annotations.hh"

namespace {

class Ledger
{
  public:
    void
    deposit(int amount)
    {
        hicamp::CapLockGuard g(mutex_, hicamp::lockrank::vsm);
        balance_ += amount;
    }

  private:
    hicamp::CapMutex mutex_;
    int balance_ HICAMP_GUARDED_BY(mutex_) = 0;
};

hicamp::StripeBank stripes(4);
hicamp::CapMutex leafMutex;

int
stripeThenLeaf()
{
    hicamp::StripeShared s(stripes, 1);                         // rank 3
    hicamp::CapLockGuard g(leafMutex, hicamp::lockrank::leaf);  // rank 4
    return 0;
}

} // namespace

int
main()
{
    Ledger l;
    l.deposit(1);
    return stripeThenLeaf();
}
