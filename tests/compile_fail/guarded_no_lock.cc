// compile_fail case: writes a HICAMP_GUARDED_BY(mutex_) field without
// holding the mutex. Under `clang++ -Wthread-safety -Werror` this must
// NOT compile (the ctest entry is WILL_FAIL); under compilers without
// the attributes the annotations are no-ops and the file is plain C++.
#include "common/thread_annotations.hh"

namespace {

class Ledger
{
  public:
    void
    deposit(int amount)
    {
        balance_ += amount; // BAD: mutex_ not held
    }

    int
    balanceLocked()
    {
        hicamp::CapLockGuard g(mutex_, hicamp::lockrank::leaf);
        return balance_;
    }

  private:
    hicamp::CapMutex mutex_;
    int balance_ HICAMP_GUARDED_BY(mutex_) = 0;
};

} // namespace

int
main()
{
    Ledger l;
    l.deposit(1);
    return l.balanceLocked();
}
