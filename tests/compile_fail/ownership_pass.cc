// Positive control for the ownership negative-compilation cases:
// moving a handle, adopting an owned result, transferring with
// release(), and explicitly voiding a transfer all compile under the
// exact flags that reject plidref_copy.cc and discard_returns_ref.cc.
#include "mem/plid_ref.hh"
#include "seg/entry_ref.hh"

namespace hicamp {

Plid
adoptAndTransfer(Memory &mem, const Line &l)
{
    PlidRef held = PlidRef::adopt(mem, mem.lookup(l));
    PlidRef moved = std::move(held); // moves are fine; copies are not
    return moved.release();
}

void
adoptAndRelease(Memory &mem, const Line &l)
{
    PlidRef held = PlidRef::lookup(mem, l);
    held.reset();
    (void)held.release(); // explicit discard of an empty transfer
}

} // namespace hicamp
