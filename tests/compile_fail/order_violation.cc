// compile_fail case: acquires a stripe (rank 3) while holding a
// leaf-rank (rank 4) lock — the fault/stats tier — inverting the
// DESIGN.md §7 order declared on the lockrank anchors. Under
// `clang++ -Wthread-safety-beta -Werror` the ACQUIRED_AFTER edge
// makes this a compile error (the ctest entry is WILL_FAIL).
#include "common/thread_annotations.hh"

namespace {
hicamp::CapMutex faultMutex;     // leaf rank, like FaultInjector's
hicamp::StripeBank stripes(4);   // stripe rank (line-store buckets)
} // namespace

int
main()
{
    hicamp::CapLockGuard g(faultMutex, hicamp::lockrank::leaf);
    hicamp::StripeExclusive s(stripes, 0); // BAD: stripe after leaf
    return 0;
}
