// Negative compilation: copying a PlidRef would mint a second owner
// for a single reference, so the copy operations are deleted — a
// second reference must be an explicit PlidRef::acquire.  This file
// must fail to compile under ANY compiler (no TSA needed).
#include "mem/plid_ref.hh"

namespace hicamp {

PlidRef
duplicateHandle(PlidRef &held)
{
    PlidRef copy = held; // ill-formed: copy constructor is deleted
    return copy;
}

} // namespace hicamp
