// Negative compilation: HICAMP_RETURNS_REF carries [[nodiscard]], so
// silently dropping an owned reference is rejected when unused-result
// warnings are errors (the flag the harness passes).  Works under
// both gcc and clang.
#include "mem/memory.hh"

namespace hicamp {

void
dropLookupResult(Memory &mem, const Line &l)
{
    mem.lookup(l); // ill-formed-by-flags: owned reference discarded
}

} // namespace hicamp
