// compile_fail case caught by tools/lint/hicamp_lint.py, not the
// compiler: leakRef() acquires a line reference and neither releases
// it nor transfers ownership out. The ctest entry runs the lint over
// this file and requires a retain-balance finding.
#include <cstdint>

struct Store {
    bool incRefIfLive(std::uint64_t plid);
    void decRef(std::uint64_t plid);
};

void
leakRef(Store &s, std::uint64_t plid)
{
    (void)s.incRefIfLive(plid); // leaked: no release, no transfer
}
