/**
 * @file
 * Tests for HTable/HView (the §4.4 in-memory-database sketch) and
 * HShardedMap (the §5.1.1 contention split): CRUD, snapshot-consistent
 * views that survive concurrent mutation, zero-copy view references,
 * concurrent appends, and shard routing.
 */

#include <gtest/gtest.h>

#include <thread>

#include "lang/hsharded_map.hh"
#include "lang/htable.hh"

namespace hicamp {
namespace {

MemoryConfig
smallCfg()
{
    MemoryConfig c;
    c.numBuckets = 1 << 14;
    return c;
}

struct TableFixture : ::testing::Test {
    TableFixture() : hc(smallCfg()), table(hc) {}
    Hicamp hc;
    HTable table;
};

TEST_F(TableFixture, InsertGetUpdateErase)
{
    std::uint64_t a = table.insert(HString(hc, "row-a"));
    std::uint64_t b = table.insert(HString(hc, "row-b"));
    EXPECT_EQ(a, 0u);
    EXPECT_EQ(b, 1u);
    EXPECT_EQ(table.get(a)->str(), "row-a");
    EXPECT_TRUE(table.update(a, HString(hc, "row-a2")));
    EXPECT_EQ(table.get(a)->str(), "row-a2");
    EXPECT_TRUE(table.erase(b));
    EXPECT_FALSE(table.get(b).has_value());
    EXPECT_FALSE(table.erase(b));
    EXPECT_EQ(table.rowCount(), 2u);
}

TEST_F(TableFixture, SelectFiltersRows)
{
    for (int i = 0; i < 30; ++i) {
        table.insert(HString(
            hc, (i % 3 == 0 ? "urgent:" : "normal:") +
                    std::to_string(i)));
    }
    HView v = table.select([](const HString &row) {
        return row.str().rfind("urgent:", 0) == 0;
    });
    EXPECT_EQ(v.size(), 10u);
    for (std::uint64_t i = 0; i < v.size(); ++i)
        EXPECT_EQ(v.row(i).str().substr(0, 7), "urgent:");
}

TEST_F(TableFixture, ViewSurvivesLaterMutation)
{
    for (int i = 0; i < 10; ++i)
        table.insert(HString(hc, "balance:" + std::to_string(i * 100)));
    HView audit = table.select([](const HString &) { return true; });
    ASSERT_EQ(audit.size(), 10u);

    // Mutate the table heavily after the view was taken.
    for (std::uint64_t i = 0; i < 10; ++i)
        table.update(i, HString(hc, "changed"));
    table.erase(3);

    // The view still reads the original rows — it references the
    // original row segments, which its references keep alive.
    for (std::uint64_t i = 0; i < audit.size(); ++i)
        EXPECT_EQ(audit.row(i).str(),
                  "balance:" + std::to_string(i * 100));
}

TEST_F(TableFixture, ViewIsZeroCopy)
{
    // A view over large rows must cost reference words, not row data.
    std::vector<std::string> payloads;
    for (int i = 0; i < 8; ++i) {
        payloads.push_back(std::string(4000, static_cast<char>('A' + i)) +
                           std::to_string(i));
        table.insert(HString(hc, payloads.back()));
    }
    std::uint64_t before = hc.mem.liveBytes();
    HView v = table.select([](const HString &) { return true; });
    std::uint64_t view_cost = hc.mem.liveBytes() - before;
    EXPECT_EQ(v.size(), 8u);
    EXPECT_LT(view_cost, 1000u); // references only, no row copies
}

TEST_F(TableFixture, ConcurrentInsertsAllLand)
{
    constexpr int kThreads = 4, kRows = 30;
    std::vector<std::thread> ts;
    for (int t = 0; t < kThreads; ++t) {
        ts.emplace_back([&, t] {
            for (int i = 0; i < kRows; ++i) {
                table.insert(HString(hc, "t" + std::to_string(t) + ":" +
                                             std::to_string(i)));
            }
        });
    }
    for (auto &t : ts)
        ts.size(); // no-op; silence lints
    for (auto &t : ts)
        if (t.joinable())
            t.join();
    EXPECT_EQ(table.rowCount(),
              static_cast<std::uint64_t>(kThreads * kRows));
    // Every row id holds exactly one committed row.
    HView all = table.select([](const HString &) { return true; });
    EXPECT_EQ(all.size(), static_cast<std::uint64_t>(kThreads * kRows));
}

TEST(ShardedMap, RoutesAndStores)
{
    Hicamp hc(smallCfg());
    HShardedMap map(hc, 3);
    EXPECT_EQ(map.shardCount(), 8u);
    for (int i = 0; i < 100; ++i) {
        map.set(HString(hc, "k" + std::to_string(i)),
                HString(hc, "v" + std::to_string(i)));
    }
    EXPECT_EQ(map.size(), 100u);
    for (int i = 0; i < 100; ++i) {
        auto v = map.get(HString(hc, "k" + std::to_string(i)));
        ASSERT_TRUE(v.has_value());
        EXPECT_EQ(v->str(), "v" + std::to_string(i));
    }
    EXPECT_TRUE(map.erase(HString(hc, "k5")));
    EXPECT_FALSE(map.get(HString(hc, "k5")).has_value());
    EXPECT_EQ(map.size(), 99u);
}

TEST(ShardedMap, KeysSpreadAcrossShards)
{
    Hicamp hc(smallCfg());
    HShardedMap map(hc, 2); // 4 shards
    std::vector<int> used(4, 0);
    for (int i = 0; i < 200; ++i)
        used[map.shardOf(HString(hc, "key" + std::to_string(i)))]++;
    for (int s = 0; s < 4; ++s)
        EXPECT_GT(used[s], 10) << "shard " << s << " starved";
}

TEST(ShardedMap, ConcurrentWritersScaleAcrossShards)
{
    Hicamp hc(smallCfg());
    HShardedMap map(hc, 3);
    constexpr int kThreads = 4, kOps = 40;
    std::vector<std::thread> ts;
    for (int t = 0; t < kThreads; ++t) {
        ts.emplace_back([&, t] {
            for (int i = 0; i < kOps; ++i) {
                map.set(HString(hc, "w" + std::to_string(t) + "-" +
                                        std::to_string(i)),
                        HString(hc, "x"));
            }
        });
    }
    for (auto &t : ts)
        t.join();
    EXPECT_EQ(map.size(), static_cast<std::uint64_t>(kThreads * kOps));
}

} // namespace
} // namespace hicamp
