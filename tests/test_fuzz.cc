/**
 * @file
 * Randomized shadow-model tests: drive the iterator register and
 * builder with long random operation sequences and check every
 * observable against a plain std::vector<Word> model. This is the
 * widest net for canonical-form, path-cache, dirty-buffer and
 * refcount bugs.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hh"
#include "common/status.hh"
#include "seg/iterator.hh"

namespace hicamp {
namespace {

struct FuzzCase {
    unsigned lineBytes;
    std::uint64_t seed;
    /// P(fresh allocation fails) for the fault-injected variants
    double allocP = 0.0;
};

class IteratorFuzz : public ::testing::TestWithParam<FuzzCase>
{};

TEST_P(IteratorFuzz, MatchesShadowModel)
{
    MemoryConfig cfg;
    cfg.lineBytes = GetParam().lineBytes;
    cfg.numBuckets = 1 << 13;
    cfg.faults.allocFailP = GetParam().allocP;
    cfg.faults.seed = GetParam().seed * 31 + 7;
    Memory mem(cfg);
    SegmentMap vsm(mem);
    SegBuilder builder(mem);
    Rng rng(GetParam().seed);

    constexpr std::uint64_t kSpace = 2048; // word index space
    std::vector<Word> shadow(kSpace, 0);

    // Start from a random initial segment.
    for (auto &w : shadow) {
        if (rng.chance(0.3))
            w = rng.next() >> (rng.chance(0.5) ? 40 : 8);
    }
    std::vector<WordMeta> metas(kSpace, WordMeta::raw());
    Vsid v = vsm.create(
        builder.buildWords(shadow.data(), metas.data(), kSpace));

    IteratorRegister it(mem, vsm);
    it.load(v, 0);
    std::vector<Word> pending = shadow; // shadow incl. uncommitted

    for (int step = 0; step < 3000; ++step) {
        switch (rng.below(10)) {
          case 0:
          case 1:
          case 2: { // read at random offset
            std::uint64_t idx = rng.below(kSpace);
            it.seek(idx);
            ASSERT_EQ(it.read(), pending[idx])
                << "step " << step << " idx " << idx;
            break;
          }
          case 3:
          case 4:
          case 5: { // buffered write
            std::uint64_t idx = rng.below(kSpace);
            Word val = rng.chance(0.2)
                           ? 0
                           : rng.next() >> (rng.chance(0.5) ? 40 : 4);
            it.seek(idx);
            it.write(val);
            pending[idx] = val;
            break;
          }
          case 6: { // next() against the shadow
            std::uint64_t from = rng.below(kSpace);
            it.seek(from);
            bool found = it.next();
            std::uint64_t expect = from + 1;
            while (expect < kSpace && pending[expect] == 0)
                ++expect;
            if (expect < kSpace) {
                ASSERT_TRUE(found) << "step " << step;
                ASSERT_EQ(it.offset(), expect) << "step " << step;
            } else if (found) {
                // Beyond the shadow space everything must be zero.
                ASSERT_GE(it.offset(), kSpace);
                ASSERT_EQ(it.read(), 0u);
            }
            break;
          }
          case 7: { // commit
            if (it.tryCommit()) {
                shadow = pending;
            } else {
                // Single-threaded, so only injected memory pressure
                // can fail a commit; the rollback keeps the write
                // buffers intact for a later attempt.
                ASSERT_NE(it.lastCommitStatus(), MemStatus::Ok)
                    << "step " << step;
            }
            break;
          }
          case 8: { // abort
            it.abort();
            pending = shadow;
            break;
          }
          case 9: { // reload (drops buffered writes)
            it.load(v, rng.below(kSpace));
            pending = shadow;
            break;
          }
        }
    }

    // Final committed state equals a canonical rebuild of the shadow
    // (abort drops the uncommitted writes). Retry the empty commit:
    // even it can catch an injected fault.
    it.abort();
    while (!it.tryCommit())
        ASSERT_NE(it.lastCommitStatus(), MemStatus::Ok);
    SegDesc cur = vsm.get(v);
    SegDesc direct =
        builder.buildWords(shadow.data(), metas.data(), kSpace);
    // Heights can differ if the iterator grew the tree; compare by
    // materialized content.
    SegReader reader(mem);
    for (std::uint64_t i = 0; i < kSpace; ++i) {
        ASSERT_EQ(reader.readWord(cur.root, cur.height, i), shadow[i])
            << "final idx " << i;
    }
    builder.releaseSeg(direct);

    // Refcount hygiene: destroying everything empties the store.
    vsm.destroy(v);
    // The iterator still holds its snapshot; drop it.
    it.load(vsm.create(SegDesc{}), 0);
}

std::vector<FuzzCase>
cases()
{
    std::vector<FuzzCase> out;
    for (unsigned ls : {16u, 32u, 64u})
        for (std::uint64_t seed : {1ull, 2ull, 3ull, 4ull})
            out.push_back({ls, seed});
    // The same sweep under transient allocation faults (p = 0.001,
    // fixed seeds): injected failures must surface only as clean
    // tryCommit conflicts, never as shadow-model divergence.
    for (unsigned ls : {16u, 32u, 64u})
        out.push_back({ls, 5, 0.001});
    return out;
}

std::string
caseName(const ::testing::TestParamInfo<FuzzCase> &info)
{
    return "ls" + std::to_string(info.param.lineBytes) + "_seed" +
           std::to_string(info.param.seed) +
           (info.param.allocP > 0.0 ? "_faults" : "");
}

INSTANTIATE_TEST_SUITE_P(Sweep, IteratorFuzz, ::testing::ValuesIn(cases()),
                         caseName);

/**
 * Canonicality fuzz: any permutation of the same final content, built
 * through any mixture of bulk builds and single-word updates, must
 * produce the identical root entry.
 */
class CanonicalFuzz : public ::testing::TestWithParam<FuzzCase>
{};

TEST_P(CanonicalFuzz, OrderIndependentRoots)
{
    MemoryConfig cfg;
    cfg.lineBytes = GetParam().lineBytes;
    cfg.numBuckets = 1 << 12;
    // The bare setWord chains below have no retry boundary, so a
    // suite-wide injected allocation failure would abort the
    // canonicality check rather than exercise a recovery path.
    cfg.faults.allowEnvOverride = false;
    Memory mem(cfg);
    SegBuilder builder(mem);
    Rng rng(GetParam().seed * 77 + 5);

    constexpr std::uint64_t kWords = 256;
    std::vector<Word> target(kWords, 0);
    for (auto &w : target) {
        if (rng.chance(0.4))
            w = rng.next() >> (rng.chance(0.5) ? 48 : 0);
    }
    std::vector<WordMeta> metas(kWords, WordMeta::raw());
    SegDesc bulk = builder.buildWords(target.data(), metas.data(),
                                      kWords);

    // Apply the words in a random order via functional updates.
    std::vector<std::uint64_t> order(kWords);
    for (std::uint64_t i = 0; i < kWords; ++i)
        order[i] = i;
    for (std::uint64_t i = kWords; i > 1; --i)
        std::swap(order[i - 1], order[rng.below(i)]);

    int h = builder.geometry().heightForWords(kWords);
    Entry root = Entry::zero();
    for (std::uint64_t idx : order) {
        if (target[idx] == 0)
            continue;
        Entry next = builder.setWord(root, h, idx, target[idx],
                                     WordMeta::raw());
        builder.release(root);
        root = next;
    }
    EXPECT_EQ(root, bulk.root);
    builder.release(root);
    builder.releaseSeg(bulk);
    EXPECT_EQ(mem.liveLines(), 0u);
    EXPECT_EQ(mem.store().totalRefs(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Sweep, CanonicalFuzz,
                         ::testing::ValuesIn(cases()),
                         [](const auto &info) {
                             return "ls" +
                                    std::to_string(info.param.lineBytes) +
                                    "_seed" +
                                    std::to_string(info.param.seed);
                         });

} // namespace
} // namespace hicamp
