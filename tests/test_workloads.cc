/**
 * @file
 * Workload-generator tests: structural properties of each matrix
 * class (stencil shape, staircase LP structure, banded offsets, block
 * tiling, circuit symmetry of pattern), image-pool duplication in the
 * web corpus, and the VM profile sanity constraints the dedup model
 * relies on.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "apps/vm/vm_model.hh"
#include "workloads/matrixgen.hh"
#include "workloads/memcached_workload.hh"
#include "workloads/webcorpus.hh"

namespace hicamp {
namespace {

TEST(MatrixGenShapes, BandedOffsetsExact)
{
    SparseMatrix m = MatrixGen::banded(200, {0, 1, -1, 16, -16},
                                       MatrixGen::Coef::Random, false,
                                       3, "b");
    for (const auto &t : m.elems()) {
        std::int64_t off = static_cast<std::int64_t>(t.c) -
                           static_cast<std::int64_t>(t.r);
        EXPECT_TRUE(off == 0 || off == 1 || off == -1 || off == 16 ||
                    off == -16)
            << "offset " << off;
    }
}

TEST(MatrixGenShapes, BandedSymmetricMirrors)
{
    SparseMatrix m = MatrixGen::banded(100, {0, 2, -2},
                                       MatrixGen::Coef::Random, true, 4,
                                       "bs");
    ASSERT_TRUE(m.symmetric());
    std::map<std::pair<std::uint32_t, std::uint32_t>, double> at;
    for (const auto &t : m.elems())
        at[{t.r, t.c}] = t.v;
    for (const auto &[rc, v] : at) {
        auto mirror = at.find({rc.second, rc.first});
        ASSERT_NE(mirror, at.end());
        EXPECT_EQ(mirror->second, v);
    }
}

TEST(MatrixGenShapes, LpStaircaseStructure)
{
    SparseMatrix m = MatrixGen::lp(1000, 1400, 4, 5, "lp");
    EXPECT_GT(m.nnz(), 1000u);
    // All non-zeros live in the coupling band, the staircase, or the
    // inter-stage coupling diagonal: column stage index >= row stage
    // index - 1 roughly; just verify bounds and the +/-1-heavy values.
    std::uint64_t unit_vals = 0;
    for (const auto &t : m.elems()) {
        ASSERT_LT(t.r, 1000u);
        ASSERT_LT(t.c, 1400u);
        if (t.v == 1.0 || t.v == -1.0)
            ++unit_vals;
    }
    // The +/-1 dominance that drives LP value dedup.
    EXPECT_GT(unit_vals * 10, m.nnz() * 5);
}

TEST(MatrixGenShapes, BlockTiledRepeatsPattern)
{
    SparseMatrix m = MatrixGen::blockTiled(
        256, 16, 0.3, MatrixGen::Coef::Constant, 6, "bt");
    // Diagonal blocks share a pattern: the non-zero count per
    // diagonal block is identical.
    std::map<std::uint32_t, std::uint64_t> per_block;
    for (const auto &t : m.elems()) {
        if (t.r / 16 == t.c / 16)
            per_block[t.r / 16]++;
    }
    ASSERT_EQ(per_block.size(), 16u);
    for (auto &[b, n] : per_block)
        EXPECT_EQ(n, per_block.begin()->second) << "block " << b;
}

TEST(MatrixGenShapes, CircuitDiagonalDominant)
{
    SparseMatrix m = MatrixGen::circuit(500, 4.0, 7, "c");
    std::set<std::uint32_t> diag;
    for (const auto &t : m.elems()) {
        if (t.r == t.c) {
            EXPECT_GT(t.v, 0.0);
            diag.insert(t.r);
        } else {
            EXPECT_LT(t.v, 0.0); // conductances stamp negative
        }
    }
    EXPECT_EQ(diag.size(), 500u); // full diagonal
}

TEST(MatrixGenShapes, TripletsSortedAndDeduplicated)
{
    SparseMatrix m = MatrixGen::randomSparse(300, 300, 5000, 8, "r");
    const auto &e = m.elems();
    for (std::size_t i = 1; i < e.size(); ++i) {
        bool ordered = e[i - 1].r < e[i].r ||
                       (e[i - 1].r == e[i].r && e[i - 1].c < e[i].c);
        ASSERT_TRUE(ordered) << "at " << i;
    }
}

TEST(WebCorpusImages, PoolDuplicationControlsDedupFactor)
{
    WebCorpus::Params p;
    p.kind = WebCorpus::Kind::Images;
    p.numItems = 200;
    p.minBytes = 1000;
    p.maxBytes = 2000;
    p.uniqueImageFraction = 0.5;
    auto items = WebCorpus::generate(p);
    std::set<std::string> distinct;
    for (const auto &it : items)
        distinct.insert(it.payload);
    // At most the pool size; with zipf popularity, strictly fewer
    // distinct blobs than items.
    EXPECT_LE(distinct.size(), 100u);
    EXPECT_LT(distinct.size(), items.size());
}

TEST(VmProfiles, FractionsAreSane)
{
    for (const auto &p : VmProfile::tile()) {
        EXPECT_GT(p.memBytes, 0u) << p.name;
        EXPECT_GE(p.osFrac, 0.0);
        EXPECT_GE(p.cacheFrac, 0.0);
        EXPECT_GE(p.appFrac, 0.0);
        EXPECT_GE(p.zeroFrac, 0.0);
        EXPECT_GT(p.heapFrac(), 0.0) << p.name << " over-allocated";
        EXPECT_LE(p.osFrac + p.cacheFrac + p.appFrac + p.zeroFrac, 1.0)
            << p.name;
        EXPECT_LE(p.heapZeroLines + p.heapCommonLines, 1.0) << p.name;
        EXPECT_GE(p.osCoreFrac, 0.0);
        EXPECT_LE(p.osCoreFrac, 1.0);
    }
}

TEST(VmProfiles, TileAllocationMatchesFig9Slopes)
{
    auto tile = VmProfile::tile();
    ASSERT_EQ(tile.size(), 6u);
    auto gb = [](const VmProfile &p) {
        return static_cast<double>(p.memBytes) / (1ull << 30);
    };
    EXPECT_NEAR(gb(tile[0]), 1.86, 0.1);  // database
    EXPECT_NEAR(gb(tile[1]), 0.88, 0.05); // java
    EXPECT_NEAR(gb(tile[2]), 0.88, 0.05); // mail
    EXPECT_NEAR(gb(tile[3]), 0.44, 0.05); // web
    EXPECT_NEAR(gb(tile[4]), 0.21, 0.05); // file
    EXPECT_NEAR(gb(tile[5]), 0.21, 0.05); // standby
}

TEST(McRequestGen, EmptyCorpusYieldsNoRequests)
{
    // Regression: Zipf over an empty domain divided by zero.
    McWorkloadParams p;
    p.numRequests = 100;
    EXPECT_TRUE(generateMcRequests({}, p).empty());
}

TEST(McRequestGen, SetAfterDeleteRestartsFromBasePayload)
{
    // Regression: a Set following a Delete used to keep mutating the
    // stale pre-delete payload. WebCorpus::mutate overwrites ONE
    // short stamp (<= 9 bytes) per call, so a Set that restarts from
    // the base payload differs from it in at most 9 positions, while
    // the old compounding chain accumulates a stamp per Set and
    // drifts arbitrarily far. With one item and a delete-heavy mix,
    // every post-delete Set must stay within one stamp of base.
    std::vector<WebItem> items;
    items.push_back({"k0", std::string(256, 'a')});
    McWorkloadParams p;
    p.seed = 9;
    p.numRequests = 600;
    p.getFraction = 0.10;
    p.deleteFraction = 0.45;
    auto reqs = generateMcRequests(items, p);
    const std::string &base = items[0].payload;
    const auto diffBytes = [&](const std::string &s) {
        std::size_t d = 0;
        for (std::size_t i = 0; i < s.size(); ++i)
            d += s[i] != base[i];
        return d;
    };
    bool deleted = false;
    int setsAfterDelete = 0;
    for (const auto &r : reqs) {
        if (r.op == McRequest::Op::Delete) {
            deleted = true;
        } else if (r.op == McRequest::Op::Set) {
            ASSERT_EQ(r.newValue.size(), base.size());
            if (deleted) {
                ++setsAfterDelete;
                EXPECT_LE(diffBytes(r.newValue), 9u);
                deleted = false;
            }
        }
    }
    EXPECT_GT(setsAfterDelete, 10);
}

TEST(McRequestGen, IndicesStayInDomain)
{
    std::vector<WebItem> items;
    for (int i = 0; i < 17; ++i)
        items.push_back({"k" + std::to_string(i),
                         std::string(64, static_cast<char>('a' + i))});
    McWorkloadParams p;
    p.numRequests = 2000;
    for (const auto &r : generateMcRequests(items, p))
        EXPECT_LT(r.itemIndex, items.size());
}

TEST(VmModelDeterminism, SameSeedsSameCurves)
{
    VmDedupModel a, b;
    for (int i = 1; i <= 5; ++i) {
        a.addVm(VmProfile::webServer(), i);
        b.addVm(VmProfile::webServer(), i);
    }
    EXPECT_EQ(a.measure().hicampBytes, b.measure().hicampBytes);
    EXPECT_EQ(a.measure().pageSharedBytes, b.measure().pageSharedBytes);
}

} // namespace
} // namespace hicamp
