/**
 * @file
 * Iterator-register tests: load/seek/read, path-cache behaviour,
 * sparse next(), transient write buffering with read-your-writes,
 * commit/abort, snapshot isolation across registers, merge-update
 * commits and growth past the original coverage.
 */

#include <gtest/gtest.h>

#include <vector>

#include "seg/iterator.hh"

namespace hicamp {
namespace {

struct IterFixture : ::testing::Test {
    IterFixture() : mem(cfg()), vsm(mem), builder(mem), reader(mem) {}

    static MemoryConfig
    cfg()
    {
        MemoryConfig c;
        c.lineBytes = 16;
        c.numBuckets = 1 << 12;
        return c;
    }

    Vsid
    makeSeg(const std::vector<Word> &w, std::uint32_t flags = 0)
    {
        std::vector<WordMeta> m(w.size(), WordMeta::raw());
        return vsm.create(builder.buildWords(w.data(), m.data(), w.size()),
                          flags);
    }

    Word
    wordAt(Vsid v, std::uint64_t idx)
    {
        SegDesc d = vsm.get(v);
        return reader.readWord(d.root, d.height, idx);
    }

    Memory mem;
    SegmentMap vsm;
    SegBuilder builder;
    SegReader reader;
};

TEST_F(IterFixture, SequentialRead)
{
    std::vector<Word> w(64);
    for (std::uint64_t i = 0; i < w.size(); ++i)
        w[i] = i * 2 + 1;
    Vsid v = makeSeg(w);
    IteratorRegister it(mem, vsm);
    it.load(v);
    for (std::uint64_t i = 0; i < w.size(); ++i) {
        it.seek(i);
        EXPECT_EQ(it.read(), w[i]);
    }
}

TEST_F(IterFixture, PathCacheMakesSequentialCheap)
{
    std::vector<Word> w(4096);
    for (std::uint64_t i = 0; i < w.size(); ++i)
        w[i] = i + 1;
    Vsid v = makeSeg(w);
    IteratorRegister it(mem, vsm);
    it.load(v);
    for (std::uint64_t i = 0; i < w.size(); ++i) {
        it.seek(i);
        (void)it.read();
    }
    // Sequential access re-walks only boundary-crossing levels: hit
    // rate must dominate.
    EXPECT_GT(it.pathCacheHits(), it.pathCacheMisses() * 2);
}

TEST_F(IterFixture, NextSkipsZeros)
{
    std::vector<Word> w(512, 0);
    w[0] = 1;
    w[200] = 2;
    w[201] = 3;
    w[511] = 4;
    Vsid v = makeSeg(w);
    IteratorRegister it(mem, vsm);
    it.load(v);
    ASSERT_TRUE(it.nextFrom());
    EXPECT_EQ(it.offset(), 0u);
    ASSERT_TRUE(it.next());
    EXPECT_EQ(it.offset(), 200u);
    ASSERT_TRUE(it.next());
    EXPECT_EQ(it.offset(), 201u);
    ASSERT_TRUE(it.next());
    EXPECT_EQ(it.offset(), 511u);
    EXPECT_FALSE(it.next());
}

TEST_F(IterFixture, ReadYourOwnWrites)
{
    Vsid v = makeSeg({10, 20, 30, 40});
    IteratorRegister it(mem, vsm);
    it.load(v, 2);
    it.write(333);
    EXPECT_EQ(it.read(), 333u);
    // Not yet visible outside the register.
    EXPECT_EQ(wordAt(v, 2), 30u);
    ASSERT_TRUE(it.tryCommit());
    EXPECT_EQ(wordAt(v, 2), 333u);
}

TEST_F(IterFixture, AbortDiscardsWrites)
{
    Vsid v = makeSeg({10, 20, 30, 40});
    IteratorRegister it(mem, vsm);
    it.load(v, 1);
    it.write(999);
    it.abort();
    EXPECT_EQ(it.read(), 20u);
    ASSERT_TRUE(it.tryCommit()); // no-op commit succeeds
    EXPECT_EQ(wordAt(v, 1), 20u);
}

TEST_F(IterFixture, CommitIsAtomicAcrossLeaves)
{
    std::vector<Word> w(256, 7);
    Vsid v = makeSeg(w);
    IteratorRegister it(mem, vsm);
    it.load(v);
    for (std::uint64_t i = 0; i < 256; i += 16) {
        it.seek(i);
        it.write(i + 1000);
    }
    EXPECT_GT(it.dirtyLeaves(), 1u);
    ASSERT_TRUE(it.tryCommit());
    for (std::uint64_t i = 0; i < 256; i += 16)
        EXPECT_EQ(wordAt(v, i), i + 1000);
    EXPECT_EQ(wordAt(v, 1), 7u);
}

TEST_F(IterFixture, SnapshotIsolationBetweenRegisters)
{
    Vsid v = makeSeg({1, 2, 3, 4, 5, 6, 7, 8});
    IteratorRegister reader_reg(mem, vsm);
    reader_reg.load(v, 3);

    IteratorRegister writer(mem, vsm);
    writer.load(v, 3);
    writer.write(777);
    ASSERT_TRUE(writer.tryCommit());

    // The reader register still sees its snapshot.
    EXPECT_EQ(reader_reg.read(), 4u);
    reader_reg.load(v, 3); // reload observes the commit
    EXPECT_EQ(reader_reg.read(), 777u);
}

TEST_F(IterFixture, StaleCommitFailsWithoutMergeUpdate)
{
    Vsid v = makeSeg({1, 2, 3, 4});
    IteratorRegister a(mem, vsm);
    IteratorRegister b(mem, vsm);
    a.load(v, 0);
    b.load(v, 1);
    a.write(100);
    b.write(200);
    ASSERT_TRUE(a.tryCommit());
    EXPECT_FALSE(b.tryCommit()); // stale snapshot, plain CAS
    // Retry after reload succeeds (application-level retry).
    b.load(v, 1);
    b.write(200);
    ASSERT_TRUE(b.tryCommit());
    EXPECT_EQ(wordAt(v, 0), 100u);
    EXPECT_EQ(wordAt(v, 1), 200u);
}

TEST_F(IterFixture, StaleCommitMergesWithMergeUpdate)
{
    Vsid v = makeSeg(std::vector<Word>(64, 0), kSegMergeUpdate);
    IteratorRegister a(mem, vsm);
    IteratorRegister b(mem, vsm);
    a.load(v, 5);
    b.load(v, 50);
    a.write(55);
    b.write(505);
    ASSERT_TRUE(a.tryCommit());
    MergeStats stats;
    ASSERT_TRUE(b.tryCommit(&stats));
    EXPECT_EQ(wordAt(v, 5), 55u);
    EXPECT_EQ(wordAt(v, 50), 505u);
    EXPECT_GT(stats.subtreesSkipped, 0u);
}

TEST_F(IterFixture, GrowPastCoverage)
{
    Vsid v = makeSeg({1, 2});
    IteratorRegister it(mem, vsm);
    it.load(v);
    it.seek(1000);
    it.write(0xabc);
    ASSERT_TRUE(it.tryCommit());
    EXPECT_EQ(wordAt(v, 1000), 0xabcu);
    EXPECT_EQ(wordAt(v, 0), 1u);
    SegDesc d = vsm.get(v);
    EXPECT_EQ(d.byteLen, 1001u * kWordBytes);
}

TEST_F(IterFixture, NextSeesUncommittedWrites)
{
    Vsid v = makeSeg(std::vector<Word>(128, 0));
    IteratorRegister it(mem, vsm);
    it.load(v, 90);
    it.write(9); // uncommitted non-zero
    it.seek(0);
    ASSERT_TRUE(it.next());
    EXPECT_EQ(it.offset(), 90u);
}

TEST_F(IterFixture, NextHonoursUncommittedDeletes)
{
    std::vector<Word> w(128, 0);
    w[60] = 6;
    w[100] = 10;
    Vsid v = makeSeg(w);
    IteratorRegister it(mem, vsm);
    it.load(v, 60);
    it.write(0); // delete (uncommitted)
    it.seek(0);
    ASSERT_TRUE(it.next());
    EXPECT_EQ(it.offset(), 100u); // 60 is gone in the merged view
}

TEST_F(IterFixture, PlidWriteTransfersOwnership)
{
    Line payload = mem.makeLine();
    payload.set(0, 0x1234);
    Plid p = mem.lookup(payload); // we own one ref

    Vsid v = makeSeg(std::vector<Word>(32, 0));
    IteratorRegister it(mem, vsm);
    it.load(v, 17);
    it.write(p, WordMeta::plid()); // ref transferred to the register
    ASSERT_TRUE(it.tryCommit());
    EXPECT_TRUE(mem.isLive(p));
    EXPECT_EQ(mem.refCount(p), 1u); // only the committed leaf owns it

    // Deleting the slot reclaims the payload.
    it.load(v, 17);
    it.write(0);
    ASSERT_TRUE(it.tryCommit());
    EXPECT_FALSE(mem.isLive(p));
}

TEST_F(IterFixture, AbortReleasesPendingPlidWrites)
{
    Line payload = mem.makeLine();
    payload.set(0, 0x777);
    Plid p = mem.lookup(payload);

    Vsid v = makeSeg(std::vector<Word>(32, 0));
    {
        IteratorRegister it(mem, vsm);
        it.load(v, 3);
        it.write(p, WordMeta::plid());
        it.abort();
    }
    EXPECT_FALSE(mem.isLive(p)); // pending ref released on abort
}

TEST_F(IterFixture, ReadOnlyAliasRegisterCannotCommit)
{
    // Paper §2.3: passing a VSID read-only restricts the holder from
    // updating the root. A register loaded through the alias reads
    // normally but its commits are rejected.
    Vsid v = makeSeg({5, 6, 7, 8});
    Vsid ro = vsm.aliasReadOnly(v);
    IteratorRegister it(mem, vsm);
    it.load(ro, 1);
    EXPECT_EQ(it.read(), 6u);
    it.write(99);
    EXPECT_EQ(it.read(), 99u); // local buffering still works
    EXPECT_FALSE(it.tryCommit());
    EXPECT_EQ(wordAt(v, 1), 6u); // nothing published
    // Updates via the primary VSID are visible through the alias.
    IteratorRegister writer(mem, vsm);
    writer.load(v, 1);
    writer.write(60);
    ASSERT_TRUE(writer.tryCommit());
    it.load(ro, 1);
    EXPECT_EQ(it.read(), 60u);
}

TEST_F(IterFixture, SetByteLenShrinksLogicalLength)
{
    Vsid v = makeSeg({1, 2, 3, 4});
    IteratorRegister it(mem, vsm);
    it.load(v, 3);
    it.write(0);
    it.setByteLen(3 * kWordBytes); // truncate to 3 words
    ASSERT_TRUE(it.tryCommit());
    EXPECT_EQ(vsm.get(v).byteLen, 3 * kWordBytes);
}

TEST_F(IterFixture, EverythingReclaimedAtTheEnd)
{
    std::vector<Word> w(512);
    for (std::uint64_t i = 0; i < w.size(); ++i)
        w[i] = i ^ 0x5555;
    Vsid v = makeSeg(w);
    {
        IteratorRegister it(mem, vsm);
        it.load(v, 7);
        it.write(1);
        ASSERT_TRUE(it.tryCommit());
        it.seek(8);
        it.write(2); // left uncommitted; destructor cleans up
    }
    vsm.destroy(v);
    EXPECT_EQ(mem.liveLines(), 0u);
    EXPECT_EQ(mem.store().totalRefs(), 0u);
}

} // namespace
} // namespace hicamp
