/**
 * @file
 * HICAMP sparse-matrix formats (paper §5.2):
 *
 *  - QTS (symmetric quad-tree): the matrix is split recursively into
 *    four regions; A11/A22 go in the left subtree and A12/A21^T in
 *    the right, so a symmetric matrix's off-diagonal quadrants
 *    deduplicate to one sub-DAG. Zero quadrants collapse to the zero
 *    entry and content-unique lines share any repeated block.
 *
 *  - NZD (non-zero dense): a quad-tree over 8x8-block occupancy
 *    bitmasks (the pattern, which dedups well even when values do
 *    not) plus a nearly-dense segment of the non-zero values in
 *    traversal order.
 *
 * Both provide a tree-recursive SpMV whose line traffic flows through
 * the HICAMP cache hierarchy; x and y live in the conventional
 * (transient) part of memory, as thread-local kernel state.
 */

#ifndef HICAMP_APPS_SPMV_HICAMP_MATRIX_HH
#define HICAMP_APPS_SPMV_HICAMP_MATRIX_HH

#include <span>
#include <vector>

#include "apps/spmv/sparse_matrix.hh"
#include "seg/builder.hh"
#include "seg/reader.hh"

namespace hicamp {

/** Quad-tree-symmetric HICAMP matrix. */
class QtsMatrix
{
  public:
    /** Build from a host matrix; the DAG is interned in @p mem. */
    QtsMatrix(Memory &mem, const SparseMatrix &m);
    ~QtsMatrix();

    QtsMatrix(const QtsMatrix &) = delete;
    QtsMatrix &operator=(const QtsMatrix &) = delete;

    /** Padded dimension (power of two). */
    std::uint32_t dim() const { return dim_; }
    Entry root() const { return root_; }
    int height() const { return height_; }

    /** Unique lines (and bytes) of this matrix's DAG. */
    std::uint64_t uniqueLines() const;
    std::uint64_t footprintBytes() const;

    /**
     * y = A x through the memory system. Zero sub-DAGs are skipped by
     * entry inspection; duplicate sub-DAGs cost cache hits instead of
     * DRAM reads (content uniqueness makes them the same lines).
     */
    std::vector<double> spmv(const std::vector<double> &x) const;

  private:
    Entry buildQuad(std::span<const Triplet> elems, std::uint32_t r0,
                    std::uint32_t c0, std::uint32_t size,
                    bool transposed);
    void spmvRec(const Entry &e, int h, std::uint32_t r0,
                 std::uint32_t c0, std::uint32_t size, bool transposed,
                 const std::vector<double> &x,
                 std::vector<double> &y) const;
    void touchVector(std::uint64_t base_id, std::uint64_t elem,
                     bool write) const;

    Memory &mem_;
    SegBuilder builder_;
    mutable SegReader reader_;
    std::uint32_t rows_;
    std::uint32_t cols_;
    std::uint32_t dim_ = 0;
    Entry root_;
    int height_ = 0;
};

/** Non-zero-dense HICAMP matrix: pattern quad-tree + value segment. */
class NzdMatrix
{
  public:
    NzdMatrix(Memory &mem, const SparseMatrix &m);
    ~NzdMatrix();

    NzdMatrix(const NzdMatrix &) = delete;
    NzdMatrix &operator=(const NzdMatrix &) = delete;

    std::uint64_t uniqueLines() const;
    std::uint64_t footprintBytes() const;

    std::vector<double> spmv(const std::vector<double> &x) const;

    std::uint32_t dim() const { return dim_; }

  private:
    /// base block edge: one word = 8x8 occupancy bits
    static constexpr std::uint32_t kBlock = 8;

    Entry buildPattern(std::span<const Triplet> elems, std::uint32_t r0,
                       std::uint32_t c0, std::uint32_t size,
                       std::vector<double> &values_out);
    void spmvRec(const Entry &e, int h, std::uint32_t r0,
                 std::uint32_t c0, std::uint32_t size,
                 const std::vector<double> &x, std::vector<double> &y,
                 std::uint64_t &value_cursor) const;

    Memory &mem_;
    SegBuilder builder_;
    mutable SegReader reader_;
    std::uint32_t rows_;
    std::uint32_t cols_;
    std::uint32_t dim_ = 0;
    Entry pattern_;
    int patternHeight_ = 0;
    SegDesc values_;
    std::uint64_t nnz_ = 0;
};

/**
 * Footprint of the best HICAMP format for @p m (paper Table 2 picks
 * QTS or NZD per matrix), measured in a fresh private store.
 */
struct HicampMatrixFootprint {
    std::uint64_t qtsBytes;
    std::uint64_t nzdBytes;
    std::uint64_t
    bestBytes() const
    {
        return qtsBytes < nzdBytes ? qtsBytes : nzdBytes;
    }
};
HicampMatrixFootprint measureFootprint(const SparseMatrix &m,
                                       unsigned line_bytes = 16);

} // namespace hicamp

#endif // HICAMP_APPS_SPMV_HICAMP_MATRIX_HH
