#include "apps/spmv/hicamp_matrix.hh"

#include <algorithm>
#include <bit>

#include "common/logging.hh"

namespace hicamp {

namespace {

Word
wordOf(double v)
{
    return std::bit_cast<std::uint64_t>(v);
}

double
doubleOf(Word w)
{
    return std::bit_cast<double>(w);
}

/** Vector element ids for x and y in the transient region. */
constexpr std::uint64_t kXBase = std::uint64_t{1} << 36;
constexpr std::uint64_t kYBase = std::uint64_t{1} << 37;

/** Partition region-relative triplets into the four quadrants. */
struct QuadSplit {
    std::vector<Triplet> q11, q12, q21, q22;
};

QuadSplit
splitQuad(std::span<const Triplet> elems, std::uint32_t half)
{
    QuadSplit s;
    for (const auto &t : elems) {
        if (t.r < half) {
            if (t.c < half)
                s.q11.push_back(t);
            else
                s.q12.push_back({t.r, t.c - half, t.v});
        } else {
            if (t.c < half)
                s.q21.push_back({t.r - half, t.c, t.v});
            else
                s.q22.push_back({t.r - half, t.c - half, t.v});
        }
    }
    return s;
}

std::vector<Triplet>
transposeTriplets(std::vector<Triplet> v)
{
    for (auto &t : v)
        std::swap(t.r, t.c);
    return v;
}

} // namespace

QtsMatrix::QtsMatrix(Memory &mem, const SparseMatrix &m)
    : mem_(mem), builder_(mem), reader_(mem), rows_(m.rows()),
      cols_(m.cols())
{
    dim_ = std::bit_ceil(std::max({m.rows(), m.cols(), 2u}));
    // Region-relative copy of the elements.
    std::vector<Triplet> elems(m.elems().begin(), m.elems().end());
    root_ = buildQuad(elems, 0, 0, dim_, false);
    // Height: F=2 uses two DAG levels per quad level; wider fanouts
    // use one.
    const unsigned F = mem.fanout();
    int quad_levels = std::countr_zero(dim_) - 1; // down to size 2
    height_ = F == 2 ? 2 * quad_levels + 1 : quad_levels;
}

QtsMatrix::~QtsMatrix()
{
    builder_.release(root_);
}

Entry
QtsMatrix::buildQuad(std::span<const Triplet> elems, std::uint32_t r0,
                     std::uint32_t c0, std::uint32_t size,
                     bool transposed)
{
    (void)r0;
    (void)c0;
    (void)transposed;
    if (elems.empty())
        return Entry::zero();
    const unsigned F = mem_.fanout();

    if (size == 2) {
        double a11 = 0, a12 = 0, a21 = 0, a22 = 0;
        for (const auto &t : elems) {
            if (t.r == 0 && t.c == 0)
                a11 = t.v;
            else if (t.r == 0 && t.c == 1)
                a12 = t.v;
            else if (t.r == 1 && t.c == 0)
                a21 = t.v;
            else
                a22 = t.v;
        }
        WordMeta raw[kMaxLineWords];
        std::fill(raw, raw + kMaxLineWords, WordMeta::raw());
        if (F == 2) {
            Word l[2] = {wordOf(a11), wordOf(a22)};
            Word r[2] = {wordOf(a12), wordOf(a21)};
            Entry kids[kMaxLineWords];
            kids[0] = builder_.makeLeaf(l, raw);
            kids[1] = builder_.makeLeaf(r, raw);
            return builder_.makeNode(kids, 0);
        }
        Word w[kMaxLineWords] = {wordOf(a11), wordOf(a22), wordOf(a12),
                                 wordOf(a21)};
        return builder_.makeLeaf(w, raw);
    }

    const std::uint32_t half = size / 2;
    QuadSplit s = splitQuad(elems, half);
    Entry e11 = buildQuad(s.q11, 0, 0, half, transposed);
    Entry e22 = buildQuad(s.q22, 0, 0, half, transposed);
    Entry e12 = buildQuad(s.q12, 0, 0, half, transposed);
    std::vector<Triplet> q21t = transposeTriplets(std::move(s.q21));
    std::sort(q21t.begin(), q21t.end(),
              [](const Triplet &a, const Triplet &b) {
                  return a.r != b.r ? a.r < b.r : a.c < b.c;
              });
    Entry e21t = buildQuad(q21t, 0, 0, half, !transposed);

    const int child_quad_levels = std::countr_zero(half) - 1;
    const unsigned F2 = mem_.fanout();
    if (F2 == 2) {
        int ch = 2 * child_quad_levels + 1; // child subtree height
        Entry left_kids[kMaxLineWords] = {e11, e22};
        Entry left = builder_.makeNode(left_kids, ch);
        Entry right_kids[kMaxLineWords] = {e12, e21t};
        Entry right = builder_.makeNode(right_kids, ch);
        Entry top_kids[kMaxLineWords] = {left, right};
        return builder_.makeNode(top_kids, ch + 1);
    }
    int ch = child_quad_levels;
    Entry kids[kMaxLineWords] = {e11, e22, e12, e21t};
    return builder_.makeNode(kids, ch);
}

void
QtsMatrix::touchVector(std::uint64_t base_id, std::uint64_t elem,
                       bool write) const
{
    const std::uint64_t words_per_line = mem_.lineWords();
    mem_.transientAccess(base_id + elem / words_per_line, write);
}

std::uint64_t
QtsMatrix::uniqueLines() const
{
    std::unordered_set<Plid> seen;
    return reader_.countLines(root_, height_, seen);
}

std::uint64_t
QtsMatrix::footprintBytes() const
{
    return uniqueLines() * mem_.lineBytes();
}

std::vector<double>
QtsMatrix::spmv(const std::vector<double> &x) const
{
    HICAMP_ASSERT(x.size() >= cols_, "x too short");
    std::vector<double> y(dim_, 0.0);
    std::vector<double> xp(dim_, 0.0);
    std::copy(x.begin(), x.begin() + cols_, xp.begin());
    spmvRec(root_, height_, 0, 0, dim_, false, xp, y);
    y.resize(rows_);
    return y;
}

void
QtsMatrix::spmvRec(const Entry &e, int h, std::uint32_t r0,
                   std::uint32_t c0, std::uint32_t size, bool transposed,
                   const std::vector<double> &x,
                   std::vector<double> &y) const
{
    if (e.isZero())
        return; // zero sub-DAG detected by entry inspection: skip

    const unsigned F = mem_.fanout();
    auto scalar = [&](double v, std::uint32_t si, std::uint32_t sj) {
        if (v == 0.0)
            return;
        std::uint32_t row = r0 + (transposed ? sj : si);
        std::uint32_t col = c0 + (transposed ? si : sj);
        touchVector(kXBase, col, false);
        touchVector(kYBase, row, false);
        touchVector(kYBase, row, true);
        y[row] += v * x[col];
    };

    if (size == 2) {
        if (F == 2) {
            Entry kids[kMaxLineWords];
            reader_.children(e, h, kids);
            Word w[kMaxLineWords];
            WordMeta m[kMaxLineWords];
            reader_.leafWords(kids[0], w, m);
            scalar(doubleOf(w[0]), 0, 0);
            scalar(doubleOf(w[1]), 1, 1);
            reader_.leafWords(kids[1], w, m);
            scalar(doubleOf(w[0]), 0, 1);
            scalar(doubleOf(w[1]), 1, 0);
        } else {
            Word w[kMaxLineWords];
            WordMeta m[kMaxLineWords];
            reader_.leafWords(e, w, m);
            scalar(doubleOf(w[0]), 0, 0);
            scalar(doubleOf(w[1]), 1, 1);
            scalar(doubleOf(w[2]), 0, 1);
            scalar(doubleOf(w[3]), 1, 0);
        }
        return;
    }

    const std::uint32_t half = size / 2;
    // Multiply-coordinate bases for the four stored quadrants (see
    // header): A11, A22, A12 keep the orientation; A21^T flips it.
    const std::uint32_t r12 = r0 + (transposed ? half : 0);
    const std::uint32_t c12 = c0 + (transposed ? 0 : half);
    const std::uint32_t r21 = r0 + (transposed ? 0 : half);
    const std::uint32_t c21 = c0 + (transposed ? half : 0);

    Entry q11, q22, q12, q21t;
    int ch;
    if (F == 2) {
        Entry top[kMaxLineWords];
        reader_.children(e, h, top);
        Entry lk[kMaxLineWords], rk[kMaxLineWords];
        reader_.children(top[0], h - 1, lk);
        reader_.children(top[1], h - 1, rk);
        q11 = lk[0];
        q22 = lk[1];
        q12 = rk[0];
        q21t = rk[1];
        ch = h - 2;
    } else {
        Entry kids[kMaxLineWords];
        reader_.children(e, h, kids);
        q11 = kids[0];
        q22 = kids[1];
        q12 = kids[2];
        q21t = kids[3];
        ch = h - 1;
    }
    spmvRec(q11, ch, r0, c0, half, transposed, x, y);
    spmvRec(q22, ch, r0 + half, c0 + half, half, transposed, x, y);
    spmvRec(q12, ch, r12, c12, half, transposed, x, y);
    spmvRec(q21t, ch, r21, c21, half, !transposed, x, y);
}

// ---------------------------------------------------------------- NZD

NzdMatrix::NzdMatrix(Memory &mem, const SparseMatrix &m)
    : mem_(mem), builder_(mem), reader_(mem), rows_(m.rows()),
      cols_(m.cols()), nnz_(m.nnz())
{
    dim_ = std::bit_ceil(
        std::max({m.rows(), m.cols(), 2 * kBlock}));
    std::vector<Triplet> elems(m.elems().begin(), m.elems().end());
    std::vector<double> values;
    values.reserve(m.nnz());
    pattern_ = buildPattern(elems, 0, 0, dim_, values);

    const unsigned F = mem.fanout();
    int quad_levels =
        std::countr_zero(dim_ / kBlock) - 1; // down to 2x2 masks
    int base_h = F == 2 ? 1 : 0;             // 4 masks per base group
    patternHeight_ = (F == 2 ? 2 * quad_levels : quad_levels) + base_h;

    std::vector<Word> vw(values.size());
    for (std::size_t i = 0; i < values.size(); ++i)
        vw[i] = wordOf(values[i]);
    std::vector<WordMeta> vm(vw.size(), WordMeta::raw());
    values_ = vw.empty()
                  ? SegDesc{}
                  : builder_.buildWords(vw.data(), vm.data(), vw.size());
}

NzdMatrix::~NzdMatrix()
{
    builder_.release(pattern_);
    builder_.releaseSeg(values_);
}

Entry
NzdMatrix::buildPattern(std::span<const Triplet> elems, std::uint32_t r0,
                        std::uint32_t c0, std::uint32_t size,
                        std::vector<double> &values_out)
{
    (void)r0;
    (void)c0;
    if (elems.empty())
        return Entry::zero(); // empty region: zero subtree, no values
    const unsigned F = mem_.fanout();

    if (size == 2 * kBlock) {
        // Four 8x8 blocks -> four mask words (plus their values, in
        // bit order, appended to the dense value stream).
        Word masks[4] = {0, 0, 0, 0};
        double vals[4][64] = {};
        for (const auto &t : elems) {
            unsigned q = (t.r >= kBlock ? 2 : 0) + (t.c >= kBlock ? 1 : 0);
            unsigned bit =
                (t.r % kBlock) * kBlock + (t.c % kBlock);
            masks[q] |= Word{1} << bit;
            vals[q][bit] = t.v;
        }
        for (unsigned q = 0; q < 4; ++q) {
            for (unsigned bit = 0; bit < 64; ++bit) {
                if ((masks[q] >> bit) & 1)
                    values_out.push_back(vals[q][bit]);
            }
        }
        WordMeta raw[kMaxLineWords];
        std::fill(raw, raw + kMaxLineWords, WordMeta::raw());
        if (F == 2) {
            Word a[2] = {masks[0], masks[1]};
            Word b[2] = {masks[2], masks[3]};
            Entry kids[kMaxLineWords];
            kids[0] = builder_.makeLeaf(a, raw);
            kids[1] = builder_.makeLeaf(b, raw);
            return builder_.makeNode(kids, 0);
        }
        Word w[kMaxLineWords] = {masks[0], masks[1], masks[2], masks[3]};
        return builder_.makeLeaf(w, raw);
    }

    const std::uint32_t half = size / 2;
    QuadSplit s = splitQuad(elems, half);
    // Traversal (and value) order: Q11, Q12, Q21, Q22.
    Entry e11 = buildPattern(s.q11, 0, 0, half, values_out);
    Entry e12 = buildPattern(s.q12, 0, 0, half, values_out);
    Entry e21 = buildPattern(s.q21, 0, 0, half, values_out);
    Entry e22 = buildPattern(s.q22, 0, 0, half, values_out);

    const unsigned F2 = mem_.fanout();
    int child_quad = std::countr_zero(half / kBlock) - 1;
    if (F2 == 2) {
        int ch = 2 * child_quad + 1; // child pattern height
        Entry top_kids[kMaxLineWords] = {e11, e12};
        Entry top = builder_.makeNode(top_kids, ch);
        Entry bot_kids[kMaxLineWords] = {e21, e22};
        Entry bot = builder_.makeNode(bot_kids, ch);
        Entry kids[kMaxLineWords] = {top, bot};
        return builder_.makeNode(kids, ch + 1);
    }
    int ch = child_quad + 0;
    Entry kids[kMaxLineWords] = {e11, e12, e21, e22};
    return builder_.makeNode(kids, ch);
}

std::uint64_t
NzdMatrix::uniqueLines() const
{
    std::unordered_set<Plid> seen;
    std::uint64_t n = reader_.countLines(pattern_, patternHeight_, seen);
    n += reader_.countLines(values_.root, values_.height, seen);
    return n;
}

std::uint64_t
NzdMatrix::footprintBytes() const
{
    return uniqueLines() * mem_.lineBytes();
}

std::vector<double>
NzdMatrix::spmv(const std::vector<double> &x) const
{
    std::vector<double> y(dim_, 0.0);
    std::vector<double> xp(dim_, 0.0);
    std::copy(x.begin(), x.begin() + cols_, xp.begin());
    std::uint64_t cursor = 0;
    spmvRec(pattern_, patternHeight_, 0, 0, dim_, xp, y, cursor);
    y.resize(rows_);
    return y;
}

void
NzdMatrix::spmvRec(const Entry &e, int h, std::uint32_t r0,
                   std::uint32_t c0, std::uint32_t size,
                   const std::vector<double> &x, std::vector<double> &y,
                   std::uint64_t &cursor) const
{
    if (e.isZero())
        return;
    const unsigned F = mem_.fanout();

    auto do_mask = [&](Word mask, std::uint32_t br, std::uint32_t bc) {
        for (unsigned bit = 0; bit < 64 && mask >> bit; ++bit) {
            if (!((mask >> bit) & 1))
                continue;
            std::uint32_t row = br + bit / kBlock;
            std::uint32_t col = bc + bit % kBlock;
            double v = doubleOf(reader_.readWord(
                values_.root, values_.height, cursor));
            ++cursor;
            mem_.transientAccess(kXBase + col / mem_.lineWords(), false);
            mem_.transientAccess(kYBase + row / mem_.lineWords(), false);
            mem_.transientAccess(kYBase + row / mem_.lineWords(), true);
            y[row] += v * x[col];
        }
    };

    if (size == 2 * kBlock) {
        Word w[kMaxLineWords];
        WordMeta m[kMaxLineWords];
        if (F == 2) {
            Entry kids[kMaxLineWords];
            reader_.children(e, h, kids);
            reader_.leafWords(kids[0], w, m);
            do_mask(w[0], r0, c0);
            do_mask(w[1], r0, c0 + kBlock);
            reader_.leafWords(kids[1], w, m);
            do_mask(w[0], r0 + kBlock, c0);
            do_mask(w[1], r0 + kBlock, c0 + kBlock);
        } else {
            reader_.leafWords(e, w, m);
            do_mask(w[0], r0, c0);
            do_mask(w[1], r0, c0 + kBlock);
            do_mask(w[2], r0 + kBlock, c0);
            do_mask(w[3], r0 + kBlock, c0 + kBlock);
        }
        return;
    }

    const std::uint32_t half = size / 2;
    Entry q11, q12, q21, q22;
    int ch;
    if (F == 2) {
        Entry top[kMaxLineWords];
        reader_.children(e, h, top);
        Entry a[kMaxLineWords], b[kMaxLineWords];
        reader_.children(top[0], h - 1, a);
        reader_.children(top[1], h - 1, b);
        q11 = a[0];
        q12 = a[1];
        q21 = b[0];
        q22 = b[1];
        ch = h - 2;
    } else {
        Entry kids[kMaxLineWords];
        reader_.children(e, h, kids);
        q11 = kids[0];
        q12 = kids[1];
        q21 = kids[2];
        q22 = kids[3];
        ch = h - 1;
    }
    spmvRec(q11, ch, r0, c0, half, x, y, cursor);
    spmvRec(q12, ch, r0, c0 + half, half, x, y, cursor);
    spmvRec(q21, ch, r0 + half, c0, half, x, y, cursor);
    spmvRec(q22, ch, r0 + half, c0 + half, half, x, y, cursor);
}

HicampMatrixFootprint
measureFootprint(const SparseMatrix &m, unsigned line_bytes)
{
    MemoryConfig cfg;
    // Footprint measurement is an exact-count analysis built through
    // single-shot paths with no retry boundary; keep suite-wide fault
    // injection out of it.
    cfg.faults.allowEnvOverride = false;
    cfg.lineBytes = line_bytes;
    std::uint64_t want = std::max<std::uint64_t>(m.nnz() / 2, 1 << 12);
    cfg.numBuckets = std::bit_ceil(want);
    HicampMatrixFootprint fp{};
    {
        Memory mem(cfg);
        QtsMatrix q(mem, m);
        fp.qtsBytes = q.footprintBytes();
    }
    {
        Memory mem(cfg);
        NzdMatrix n(mem, m);
        fp.nzdBytes = n.footprintBytes();
    }
    return fp;
}

} // namespace hicamp
