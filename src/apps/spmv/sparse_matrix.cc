#include "apps/spmv/sparse_matrix.hh"

#include <algorithm>

#include "common/logging.hh"

namespace hicamp {

SparseMatrix::SparseMatrix(std::string name, std::string category,
                           std::uint32_t rows, std::uint32_t cols,
                           std::vector<Triplet> elems, bool symmetric)
    : name_(std::move(name)), category_(std::move(category)),
      rows_(rows), cols_(cols), symmetric_(symmetric),
      elems_(std::move(elems))
{
    std::sort(elems_.begin(), elems_.end(),
              [](const Triplet &a, const Triplet &b) {
                  return a.r != b.r ? a.r < b.r : a.c < b.c;
              });
    // Drop duplicates (keep first) and explicit zeros.
    std::vector<Triplet> clean;
    clean.reserve(elems_.size());
    for (const auto &t : elems_) {
        HICAMP_ASSERT(t.r < rows_ && t.c < cols_,
                      "triplet out of bounds");
        if (t.v == 0.0)
            continue;
        if (!clean.empty() && clean.back().r == t.r &&
            clean.back().c == t.c) {
            continue;
        }
        clean.push_back(t);
    }
    elems_ = std::move(clean);
}

std::uint64_t
SparseMatrix::diagNnz() const
{
    std::uint64_t d = 0;
    for (const auto &t : elems_)
        d += t.r == t.c ? 1 : 0;
    return d;
}

std::uint64_t
SparseMatrix::csrBytes() const
{
    // 8-byte doubles, 4-byte column indices, 4-byte row pointers:
    // 12*nnz + 4*(m+1) ~= 8*(1.5 nnz + 0.5 m)   (paper §5.2.2)
    return 8 * (3 * nnz() + rows_) / 2;
}

std::uint64_t
SparseMatrix::symCsrBytes() const
{
    std::uint64_t d = diagNnz();
    std::uint64_t eff = d + (nnz() - d) / 2;
    return 8 * (3 * eff + rows_) / 2;
}

std::vector<double>
SparseMatrix::multiply(const std::vector<double> &x) const
{
    HICAMP_ASSERT(x.size() >= cols_, "x too short");
    std::vector<double> y(rows_, 0.0);
    for (const auto &t : elems_)
        y[t.r] += t.v * x[t.c];
    return y;
}

std::uint64_t
convSpmvTraffic(const SparseMatrix &m, ConvHierarchy &hier)
{
    // Simulated layout.
    const Addr row_ptr = 0x1000'0000ull;
    const Addr col_idx = 0x2000'0000ull;
    const Addr vals = 0x3000'0000ull;
    const Addr xv = 0x4000'0000ull;
    const Addr yv = 0x5000'0000ull;

    const std::uint64_t before = hier.dramTotal();
    const auto &e = m.elems();

    if (!m.symmetric()) {
        std::uint64_t k = 0;
        for (std::uint32_t i = 0; i < m.rows(); ++i) {
            hier.read(row_ptr + i * 4, 8); // rowPtr[i], rowPtr[i+1]
            while (k < e.size() && e[k].r == i) {
                hier.read(col_idx + k * 4, 4);
                hier.read(vals + k * 8, 8);
                hier.read(xv + std::uint64_t{e[k].c} * 8, 8);
                ++k;
            }
            hier.write(yv + std::uint64_t{i} * 8, 8);
        }
    } else {
        // Symmetric CSR: upper triangle stored; off-diagonal elements
        // update y[j] as well (random write traffic).
        std::uint64_t k = 0;
        std::uint64_t stored = 0;
        for (std::uint32_t i = 0; i < m.rows(); ++i) {
            hier.read(row_ptr + i * 4, 8);
            while (k < e.size() && e[k].r == i) {
                if (e[k].c >= i) { // stored element
                    hier.read(col_idx + stored * 4, 4);
                    hier.read(vals + stored * 8, 8);
                    hier.read(xv + std::uint64_t{e[k].c} * 8, 8);
                    if (e[k].c != i) {
                        // y[j] += v * x[i]
                        hier.read(xv + std::uint64_t{i} * 8, 8);
                        hier.read(yv + std::uint64_t{e[k].c} * 8, 8);
                        hier.write(yv + std::uint64_t{e[k].c} * 8, 8);
                    }
                    ++stored;
                }
                ++k;
            }
            hier.write(yv + std::uint64_t{i} * 8, 8);
        }
    }
    return hier.dramTotal() - before;
}

} // namespace hicamp
