/**
 * @file
 * Host-side sparse matrix representation plus the conventional
 * baselines of paper §5.2: CSR and symmetric-CSR storage sizing
 * (8*(1.5nnz + 0.5m) bytes) and trace-driven SpMV kernels that emit
 * their memory accesses into the Dinero-class hierarchy.
 */

#ifndef HICAMP_APPS_SPMV_SPARSE_MATRIX_HH
#define HICAMP_APPS_SPMV_SPARSE_MATRIX_HH

#include <cstdint>
#include <string>
#include <vector>

#include "cache/conv_cache.hh"

namespace hicamp {

/** One non-zero element. */
struct Triplet {
    std::uint32_t r;
    std::uint32_t c;
    double v;
};

/**
 * A sparse matrix in triplet form (row-major sorted), with metadata
 * used by the evaluation (category, symmetry).
 */
class SparseMatrix
{
  public:
    SparseMatrix() = default;
    SparseMatrix(std::string name, std::string category,
                 std::uint32_t rows, std::uint32_t cols,
                 std::vector<Triplet> elems, bool symmetric);

    const std::string &name() const { return name_; }
    const std::string &category() const { return category_; }
    std::uint32_t rows() const { return rows_; }
    std::uint32_t cols() const { return cols_; }
    bool symmetric() const { return symmetric_; }
    std::uint64_t nnz() const { return elems_.size(); }
    const std::vector<Triplet> &elems() const { return elems_; }

    /** CSR storage bytes: 8 * (1.5 nnz + 0.5 m), paper §5.2.2. */
    std::uint64_t csrBytes() const;

    /**
     * Symmetric-CSR storage bytes: nnz replaced by on-diagonal plus
     * half the off-diagonal count.
     */
    std::uint64_t symCsrBytes() const;

    /** Best conventional representation for this matrix. */
    std::uint64_t
    convBytes() const
    {
        return symmetric_ ? symCsrBytes() : csrBytes();
    }

    /** Reference y = A x (dense vectors), for correctness checks. */
    std::vector<double> multiply(const std::vector<double> &x) const;

    /** Count of on-diagonal non-zeros. */
    std::uint64_t diagNnz() const;

  private:
    std::string name_;
    std::string category_;
    std::uint32_t rows_ = 0;
    std::uint32_t cols_ = 0;
    bool symmetric_ = false;
    std::vector<Triplet> elems_; ///< row-major sorted
};

/**
 * Trace-driven conventional SpMV: walks CSR (or symmetric CSR for
 * symmetric matrices, storing the upper triangle and updating both
 * y[i] and y[j] per off-diagonal element) and feeds every access into
 * the cache hierarchy. Returns DRAM accesses (reads + writes).
 */
std::uint64_t convSpmvTraffic(const SparseMatrix &m,
                              ConvHierarchy &hier);

} // namespace hicamp

#endif // HICAMP_APPS_SPMV_SPARSE_MATRIX_HH
