/**
 * @file
 * HICAMP memcached (paper §4.4): the key-value map is a sparse array
 * indexed by the key string's content identity; values are segments.
 * A get takes a snapshot through an iterator register — no sockets,
 * no locks, no copies: the consumer reads the value's lines directly.
 * A set builds the value segment (transient staging + lookups) and
 * commits it with mCAS, so concurrent non-conflicting updates merge.
 */

#ifndef HICAMP_APPS_MEMCACHED_HICAMP_MEMCACHED_HH
#define HICAMP_APPS_MEMCACHED_HICAMP_MEMCACHED_HH

#include <optional>
#include <string>

#include "common/backoff.hh"
#include "lang/hmap.hh"

namespace hicamp {

class HicampMemcached
{
  public:
    explicit HicampMemcached(Hicamp &hc)
        : hc_(hc), map_(hc, /*merge_update=*/true), reader_(hc.mem)
    {}

    /** Store a key/value pair. */
    void
    set(const std::string &key, const std::string &value)
    {
        HString k(hc_, key);
        HString v(hc_, value);
        map_.set(k, v);
    }

    /**
     * Look up a key. On a hit the consumer traverses the value's
     * lines once (the single read that replaces the conventional
     * path's four copies). Returns the value size, or nullopt.
     */
    std::optional<std::uint64_t>
    get(const std::string &key)
    {
        // Iterator registers are per-core hardware state: each client
        // thread uses its own; the paper's clients (re)load a register
        // per get command (§4.4).
        IteratorRegister reg(hc_.mem, hc_.vsm);
        HString k(hc_, key);
        auto v = map_.getWith(reg, k);
        if (!v)
            return std::nullopt;
        // Consumer reads the value content (snapshot-isolated).
        std::vector<Word> w;
        std::vector<WordMeta> m;
        reader_.materialize(v->desc().root, v->desc().height, w, m);
        return v->size();
    }

    bool
    del(const std::string &key)
    {
        HString k(hc_, key);
        return map_.erase(k);
    }

    /** memcached "add": store only if absent. */
    bool
    add(const std::string &key, const std::string &value)
    {
        return map_.add(HString(hc_, key), HString(hc_, value));
    }

    /** memcached "replace": store only if present. */
    bool
    replace(const std::string &key, const std::string &value)
    {
        return map_.replace(HString(hc_, key), HString(hc_, value));
    }

    /**
     * memcached "incr"/"decr": atomically adjust a numeric value.
     * Returns the new value, or nullopt if the key is absent or not
     * numeric. Implemented as a value-CAS loop: a racing increment
     * changes the value's content identity, so the commit retries.
     */
    std::optional<std::int64_t>
    incr(const std::string &key, std::int64_t delta)
    {
        HString k(hc_, key);
        CommitRetry retry(hc_.mem.retryPolicy(), &hc_.mem.contention());
        for (;;) {
            auto cur = map_.get(k);
            if (!cur)
                return std::nullopt;
            std::string s = cur->str();
            char *end = nullptr;
            long long v = std::strtoll(s.c_str(), &end, 10);
            if (end == s.c_str() || *end != '\0')
                return std::nullopt;
            std::int64_t nv = v + delta;
            if (map_.compareAndSet(k, *cur,
                                   HString(hc_, std::to_string(nv))))
                return nv;
            if (!retry.onConflict())
                throwRetriesExhausted(MemStatus::Ok,
                                      "memcached incr value race");
        }
    }

    HMap &map() { return map_; }

    /** Live HICAMP memory held by the store (deduplicated). */
    std::uint64_t residentBytes() const { return hc_.mem.liveBytes(); }

  private:
    Hicamp &hc_;
    HMap map_;
    SegReader reader_;
};

} // namespace hicamp

#endif // HICAMP_APPS_MEMCACHED_HICAMP_MEMCACHED_HH
