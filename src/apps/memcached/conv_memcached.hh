/**
 * @file
 * Conventional memcached model (the paper's baseline for Fig. 6).
 *
 * Models the full conventional path at memory-trace level: client
 * request marshalling, socket buffer copies, hash-table chain walks,
 * slab-allocated items (header + key + value) and the value copies on
 * the response path. Every load/store lands in the Dinero-class cache
 * hierarchy, whose misses/writebacks are the DRAM access counts the
 * evaluation consumes. No payload bytes are actually stored — only
 * realistically laid-out addresses.
 */

#ifndef HICAMP_APPS_MEMCACHED_CONV_MEMCACHED_HH
#define HICAMP_APPS_MEMCACHED_CONV_MEMCACHED_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "cache/address_space.hh"
#include "cache/conv_cache.hh"
#include "common/hash.hh"

namespace hicamp {

class ConvMemcached
{
  public:
    /**
     * @param line_bytes cache line size (16/32/64, per Fig. 6)
     * @param expected_items sizes the hash table (load factor ~0.7)
     */
    ConvMemcached(unsigned line_bytes, std::uint64_t expected_items);

    /**
     * Store (or replace) a key/value pair. Items too large for the
     * slab allocator are rejected (false; SERVER_ERROR in the real
     * protocol) without disturbing the stored state.
     */
    bool set(const std::string &key, std::uint64_t value_bytes);

    /** Sets rejected because the item exceeded the max chunk size. */
    std::uint64_t rejectedOversized() const { return rejectedOversized_; }

    /** Look up a key; models the full response path on a hit. */
    bool get(const std::string &key);

    /** Delete a key. */
    bool del(const std::string &key);

    ConvHierarchy &hierarchy() { return hier_; }
    const ConvHierarchy &hierarchy() const { return hier_; }

    /** Bytes of slab memory reserved (resident footprint). */
    std::uint64_t residentBytes() const;

    std::uint64_t itemCount() const { return items_.size(); }

  private:
    struct Item {
        Addr addr = 0;          ///< slab chunk base
        std::uint32_t keyLen = 0;
        std::uint32_t valLen = 0;
        std::uint64_t hash = 0;
        std::int64_t next = -1; ///< chain link (index into items_)
    };

    static constexpr std::uint64_t kHeaderBytes = 48;
    static constexpr std::uint64_t kReqHeader = 32;

    std::uint64_t bucketOf(std::uint64_t h) const
    {
        return h & (numBuckets_ - 1);
    }
    Addr bucketAddr(std::uint64_t b) const { return tableBase_ + b * 8; }

    /** Model the client->server request copy chain. */
    void requestPath(std::uint64_t payload_bytes);
    /** Model the server->client response copy chain. */
    void responsePath(std::uint64_t payload_bytes);

    /**
     * Walk the chain for @p key; touches bucket head, item headers and
     * key compares. Returns the item slot index or -1, and the
     * predecessor slot (for unlinking).
     */
    std::int64_t findInChain(const std::string &key, std::uint64_t h,
                             std::int64_t *prev_out);

    ConvHierarchy hier_;
    SlabAllocator slabs_;
    std::uint64_t numBuckets_;
    Addr tableBase_;
    std::uint64_t tableBytes_;

    // Rotating connection buffers (requests and responses reuse them).
    static constexpr unsigned kConns = 8;
    Addr sockBase_;
    Addr clientBase_;
    unsigned rr_ = 0;

    std::vector<Item> items_;
    std::vector<std::int64_t> freeSlots_;
    std::vector<std::int64_t> bucketHead_;
    std::unordered_map<std::string, std::int64_t> index_;
    std::uint64_t rejectedOversized_ = 0;
};

} // namespace hicamp

#endif // HICAMP_APPS_MEMCACHED_CONV_MEMCACHED_HH
