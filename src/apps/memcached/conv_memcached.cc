#include "apps/memcached/conv_memcached.hh"

#include <bit>

namespace hicamp {

ConvMemcached::ConvMemcached(unsigned line_bytes,
                             std::uint64_t expected_items)
    : hier_(ConvHierarchy::paperDefault(line_bytes)),
      slabs_(/*base=*/0x2000'0000ull)
{
    numBuckets_ = std::bit_ceil(expected_items + expected_items / 2 + 1);
    tableBase_ = 0x1000'0000ull;
    tableBytes_ = numBuckets_ * 8;
    sockBase_ = 0x0800'0000ull;
    clientBase_ = 0x0400'0000ull;
    bucketHead_.assign(numBuckets_, -1);
}

std::uint64_t
ConvMemcached::residentBytes() const
{
    return slabs_.reservedBytes() + tableBytes_;
}

void
ConvMemcached::requestPath(std::uint64_t payload_bytes)
{
    const unsigned conn = rr_++ % kConns;
    const Addr cli = clientBase_ + conn * (1 << 20);
    const Addr sock = sockBase_ + conn * (1 << 20);
    const std::uint64_t n = kReqHeader + payload_bytes;
    hier_.write(cli, n);       // client marshals the request
    hier_.read(cli, n);        // kernel copies into the socket buffer
    hier_.write(sock, n);
    hier_.read(sock, n);       // server parses the request
}

void
ConvMemcached::responsePath(std::uint64_t payload_bytes)
{
    const unsigned conn = rr_ % kConns; // same connection as request
    const Addr cli = clientBase_ + conn * (1 << 20) + (1 << 19);
    const Addr sock = sockBase_ + conn * (1 << 20) + (1 << 19);
    const std::uint64_t n = kReqHeader + payload_bytes;
    hier_.write(sock, n);      // server writes the response
    hier_.read(sock, n);       // kernel copies to the client side
    hier_.write(cli, n);
    hier_.read(cli, n);        // client application consumes it
}

std::int64_t
ConvMemcached::findInChain(const std::string &key, std::uint64_t h,
                           std::int64_t *prev_out)
{
    const std::uint64_t b = bucketOf(h);
    hier_.read(bucketAddr(b), 8); // bucket head pointer
    std::int64_t prev = -1;
    std::int64_t cur = bucketHead_[b];
    while (cur >= 0) {
        const Item &it = items_[cur];
        hier_.read(it.addr, kHeaderBytes); // item header (incl. hash)
        if (it.hash == h && it.keyLen == key.size()) {
            hier_.read(it.addr + kHeaderBytes, it.keyLen); // key compare
            // Ground truth resolves the compare exactly.
            if (index_.count(key) &&
                index_.at(key) == cur) {
                if (prev_out)
                    *prev_out = prev;
                return cur;
            }
        }
        prev = cur;
        cur = it.next;
    }
    if (prev_out)
        *prev_out = prev;
    return -1;
}

bool
ConvMemcached::set(const std::string &key, std::uint64_t value_bytes)
{
    const std::uint64_t h = fnv1a(key.data(), key.size());
    requestPath(key.size() + value_bytes);

    // Reject oversized items before touching the stored state (the
    // replace path below frees the old chunk first).
    if (kHeaderBytes + key.size() + value_bytes > slabs_.maxChunk()) {
        ++rejectedOversized_;
        responsePath(8); // "SERVER_ERROR object too large for cache"
        return false;
    }

    std::int64_t prev = -1;
    std::int64_t found = findInChain(key, h, &prev);
    if (found >= 0) {
        // Replace: free the old chunk, unlink from the chain.
        Item &old = items_[found];
        const std::uint64_t old_total =
            kHeaderBytes + old.keyLen + old.valLen;
        slabs_.free(old.addr, old_total);
        if (prev >= 0) {
            hier_.write(items_[prev].addr, 8); // prev->next
            items_[prev].next = old.next;
        } else {
            hier_.write(bucketAddr(bucketOf(h)), 8);
            bucketHead_[bucketOf(h)] = old.next;
        }
        index_.erase(key);
        freeSlots_.push_back(found);
    }

    // Allocate and fill the new item.
    const std::uint64_t total = kHeaderBytes + key.size() + value_bytes;
    Item it;
    it.addr = slabs_.alloc(total);
    it.keyLen = static_cast<std::uint32_t>(key.size());
    it.valLen = static_cast<std::uint32_t>(value_bytes);
    it.hash = h;
    hier_.write(it.addr, kHeaderBytes);               // header
    hier_.write(it.addr + kHeaderBytes, key.size());  // key bytes
    hier_.write(it.addr + kHeaderBytes + key.size(),  // value bytes
                value_bytes);

    // Link at the chain head.
    const std::uint64_t b = bucketOf(h);
    it.next = bucketHead_[b];
    std::int64_t slot;
    if (!freeSlots_.empty()) {
        slot = freeSlots_.back();
        freeSlots_.pop_back();
        items_[slot] = it;
    } else {
        slot = static_cast<std::int64_t>(items_.size());
        items_.push_back(it);
    }
    hier_.write(bucketAddr(b), 8);
    bucketHead_[b] = slot;
    index_[key] = slot;

    responsePath(8); // "STORED"
    return true;
}

bool
ConvMemcached::get(const std::string &key)
{
    const std::uint64_t h = fnv1a(key.data(), key.size());
    requestPath(key.size());
    std::int64_t found = findInChain(key, h, nullptr);
    if (found < 0) {
        responsePath(8); // "END"
        return false;
    }
    const Item &it = items_[found];
    // Server copies the value into the response; the response path
    // models the remaining kernel + client copies.
    hier_.read(it.addr + kHeaderBytes + it.keyLen, it.valLen);
    responsePath(it.valLen);
    return true;
}

bool
ConvMemcached::del(const std::string &key)
{
    const std::uint64_t h = fnv1a(key.data(), key.size());
    requestPath(key.size());
    std::int64_t prev = -1;
    std::int64_t found = findInChain(key, h, &prev);
    if (found < 0) {
        responsePath(8);
        return false;
    }
    Item &it = items_[found];
    if (prev >= 0) {
        hier_.write(items_[prev].addr, 8);
        items_[prev].next = it.next;
    } else {
        hier_.write(bucketAddr(bucketOf(h)), 8);
        bucketHead_[bucketOf(h)] = it.next;
    }
    slabs_.free(it.addr, kHeaderBytes + it.keyLen + it.valLen);
    index_.erase(key);
    freeSlots_.push_back(found);
    responsePath(8);
    return true;
}

} // namespace hicamp
