/**
 * @file
 * Virtual-machine hosting study (paper §5.3, Figs. 9-10).
 *
 * The paper loads VMmark VM memory snapshots into the HICAMP memory
 * simulator and compares three quantities: allocated memory, an ideal
 * page-sharing scheme (instantaneous 4 KB dedup — the upper bound for
 * ESX-style sharing) and HICAMP 64-byte-line dedup.
 *
 * We model VM memory images generatively instead of materializing
 * them: each VM's pages are drawn from content pools (per-OS kernel
 * and library images, per-OS file-cache contents, a global pool of
 * common heap constants), per-VM unique heap with controlled zero-
 * line and common-line fractions, and whole zero pages. Because every
 * pool is addressed by stable offsets, distinct-page and distinct-
 * line counting reduces to interval-union arithmetic — exact within
 * the model and fast at full scale (tens of GB).
 *
 * HICAMP accounting treats each 4 KB page as a segment of 64-byte
 * lines (64 leaves, 8 level-1 nodes, 1 root with fanout 8); zero
 * lines, zero nodes and zero pages cost nothing (zero entries).
 */

#ifndef HICAMP_APPS_VM_VM_MODEL_HH
#define HICAMP_APPS_VM_VM_MODEL_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/rng.hh"

namespace hicamp {

/** Composition of one VMmark-style workload VM. */
struct VmProfile {
    std::string name;
    std::string os;            ///< pool key: same-OS VMs share images
    std::uint64_t memBytes;    ///< allocated guest memory
    // Page-type fractions (sum <= 1; remainder is unique heap).
    double osFrac;             ///< kernel + shared library pages
    double cacheFrac;          ///< file-cache pages (per-OS pool)
    double appFrac;            ///< application data (per-profile pool):
                               ///< VMmark runs the same benchmark in
                               ///< every VM, so DB/file contents are
                               ///< identical across same-profile VMs
    double zeroFrac;           ///< entirely zero pages
    // Heap line composition.
    double heapZeroLines;      ///< zero lines inside heap pages
    double heapCommonLines;    ///< lines from the global-common pool
    // Pool geometry / sampling.
    std::uint64_t osPoolBytes = 768ull << 20;
    std::uint64_t cachePoolBytes = 2ull << 30;
    double osCoreFrac = 0.85;  ///< deterministic shared OS portion
    double cacheCoreFrac = 0.3;
    double appCoreFrac = 0.7;  ///< same data, similar resident set
    /**
     * Fraction of pool pages whose copy in this VM differs by a few
     * lines (relocation fixups, page LSNs, timestamps). These defeat
     * whole-page sharing but still deduplicate at line granularity —
     * the Difference Engine observation the paper builds on.
     */
    double osDirtyFrac = 0.30;
    double cacheDirtyFrac = 0.10;
    double appDirtyFrac = 0.40;
    /// unique lines in each dirty page (out of 64)
    static constexpr std::uint64_t kDirtyLinesPerPage = 2;

    double heapFrac() const
    {
        return 1.0 - osFrac - cacheFrac - appFrac - zeroFrac;
    }

    /// The six VMmark tile workloads (paper Fig. 9), sized to match
    /// the figure's per-VM allocated curves.
    static VmProfile databaseServer();
    static VmProfile javaServer();
    static VmProfile mailServer();
    static VmProfile webServer();
    static VmProfile fileServer();
    static VmProfile standbyServer();
    /** The whole tile, in Fig. 9 order. */
    static std::vector<VmProfile> tile();
};

/** Measured memory consumption at some point in VM scaling. */
struct VmUsage {
    std::uint64_t allocatedBytes = 0;
    std::uint64_t pageSharedBytes = 0; ///< ideal 4 KB page sharing
    std::uint64_t hicampBytes = 0;     ///< 64 B line dedup + DAG nodes
};

/**
 * Incremental dedup model: add VMs one at a time and measure the
 * three curves after each addition.
 */
class VmDedupModel
{
  public:
    VmDedupModel() = default;

    /** Add one VM instance (seeded per instance for sampling). */
    void addVm(const VmProfile &p, std::uint64_t vm_seed);

    VmUsage measure() const;

    static constexpr std::uint64_t kPageBytes = 4096;
    static constexpr std::uint64_t kLineBytes = 64;
    static constexpr std::uint64_t kLinesPerPage =
        kPageBytes / kLineBytes;

  private:
    struct Interval {
        std::uint64_t lo;
        std::uint64_t hi; ///< exclusive, page-granular
    };

    /** Union length of a set of intervals (pages). */
    static std::uint64_t unionPages(std::vector<Interval> &ivs);

    /// per-OS pools of page intervals in use
    std::map<std::string, std::vector<Interval>> osUse_;
    std::map<std::string, std::vector<Interval>> cacheUse_;
    /// per-profile application-data pools
    std::map<std::string, std::vector<Interval>> appUse_;
    std::uint64_t globalCommonLines_ = 0; ///< union of the common pool

    std::uint64_t allocated_ = 0;
    std::uint64_t totalPages_ = 0;
    std::uint64_t heapPages_ = 0;       ///< distinct per VM
    std::uint64_t heapUniqueLines_ = 0;
    std::uint64_t heapL1Nodes_ = 0;
    std::uint64_t dirtyPages_ = 0;      ///< per-VM modified pool pages
    bool zeroPageUsed_ = false;

    static constexpr std::uint64_t kCommonPoolLines = 1ull << 20;
};

} // namespace hicamp

#endif // HICAMP_APPS_VM_VM_MODEL_HH
