#include "apps/vm/vm_model.hh"

#include <algorithm>

#include "common/logging.hh"

namespace hicamp {

// Profile numbers are set so the "Allocated" curves match Fig. 9's
// per-VM slopes (database ~1.9 GB/VM, java/mail ~0.9 GB, web ~0.45 GB,
// file/standby ~0.22 GB) and the composition matches each workload's
// character: the database server is dominated by a unique buffer
// pool; the standby server is nearly all OS image and zero pages.

VmProfile
VmProfile::databaseServer()
{
    VmProfile p;
    p.name = "Database Server";
    p.os = "linux64";
    p.memBytes = 1900ull << 20;
    p.osFrac = 0.08;
    p.osCoreFrac = 0.90;
    p.cacheFrac = 0.08;
    p.cacheCoreFrac = 0.20;
    p.appFrac = 0.30; // identical benchmark database across VMs...
    p.appCoreFrac = 0.75;
    p.appDirtyFrac = 0.50; // ...but page LSNs/headers differ per VM
    p.zeroFrac = 0.05;
    p.heapZeroLines = 0.25;
    p.heapCommonLines = 0.12;
    return p;
}

VmProfile
VmProfile::javaServer()
{
    VmProfile p;
    p.name = "Java Server";
    p.os = "win64";
    p.memBytes = 900ull << 20;
    p.osFrac = 0.18;
    p.osCoreFrac = 0.95;
    p.cacheFrac = 0.08;
    p.cacheCoreFrac = 0.50;
    p.appFrac = 0.38; // same JVM, same benchmark classes/data
    p.appCoreFrac = 0.90;
    p.appDirtyFrac = 0.35;
    p.zeroFrac = 0.15;
    p.heapZeroLines = 0.50; // young-gen heap is zero-heavy
    p.heapCommonLines = 0.30;
    return p;
}

VmProfile
VmProfile::mailServer()
{
    VmProfile p;
    p.name = "Mail Server";
    p.os = "win64";
    p.memBytes = 900ull << 20;
    p.osFrac = 0.20;
    p.osCoreFrac = 0.95;
    p.cacheFrac = 0.25;
    p.cacheCoreFrac = 0.50;
    p.cacheDirtyFrac = 0.15;
    p.appFrac = 0.30; // identical mailbox dataset
    p.appCoreFrac = 0.85;
    p.appDirtyFrac = 0.35;
    p.zeroFrac = 0.08;
    p.heapZeroLines = 0.40;
    p.heapCommonLines = 0.25;
    return p;
}

VmProfile
VmProfile::webServer()
{
    VmProfile p;
    p.name = "Web Server";
    p.os = "linux32";
    p.memBytes = 450ull << 20;
    p.osFrac = 0.25;
    p.osCoreFrac = 0.95;
    p.cacheFrac = 0.28;
    p.cacheCoreFrac = 0.70;
    p.appFrac = 0.25; // served content identical across VMs
    p.appCoreFrac = 0.90;
    p.appDirtyFrac = 0.30;
    p.zeroFrac = 0.10;
    p.heapZeroLines = 0.40;
    p.heapCommonLines = 0.30;
    return p;
}

VmProfile
VmProfile::fileServer()
{
    VmProfile p;
    p.name = "File Server";
    p.os = "linux32";
    p.memBytes = 220ull << 20;
    p.osFrac = 0.30;
    p.osCoreFrac = 0.95;
    p.cacheFrac = 0.35;
    p.cacheCoreFrac = 0.70;
    p.appFrac = 0.18; // identical exported file set
    p.appCoreFrac = 0.85;
    p.appDirtyFrac = 0.25;
    p.zeroFrac = 0.08;
    p.heapZeroLines = 0.40;
    p.heapCommonLines = 0.30;
    return p;
}

VmProfile
VmProfile::standbyServer()
{
    VmProfile p;
    p.name = "Standby Server";
    p.os = "win32";
    p.memBytes = 220ull << 20;
    p.osFrac = 0.55;
    p.osCoreFrac = 0.98;
    p.osDirtyFrac = 0.10; // idle guest: almost no patched pages
    p.cacheFrac = 0.12;
    p.cacheCoreFrac = 0.95;
    p.cacheDirtyFrac = 0.05;
    p.appFrac = 0.0;
    p.zeroFrac = 0.25;
    p.heapZeroLines = 0.65; // barely-touched heap
    p.heapCommonLines = 0.25;
    return p;
}

std::vector<VmProfile>
VmProfile::tile()
{
    return {databaseServer(), javaServer(), mailServer(), webServer(),
            fileServer(), standbyServer()};
}

std::uint64_t
VmDedupModel::unionPages(std::vector<Interval> &ivs)
{
    std::sort(ivs.begin(), ivs.end(),
              [](const Interval &a, const Interval &b) {
                  return a.lo < b.lo;
              });
    std::uint64_t total = 0;
    std::uint64_t cur_lo = 0, cur_hi = 0;
    bool open = false;
    for (const auto &iv : ivs) {
        if (!open || iv.lo > cur_hi) {
            total += cur_hi - cur_lo;
            cur_lo = iv.lo;
            cur_hi = iv.hi;
            open = true;
        } else {
            cur_hi = std::max(cur_hi, iv.hi);
        }
    }
    total += cur_hi - cur_lo;
    return total;
}

void
VmDedupModel::addVm(const VmProfile &p, std::uint64_t vm_seed)
{
    Rng rng(hashCombine(vm_seed, fnv1a(p.name.data(), p.name.size())));
    const std::uint64_t pages = p.memBytes / kPageBytes;
    allocated_ += p.memBytes;
    totalPages_ += pages;

    auto pool_sample = [&](std::vector<Interval> &use,
                           std::uint64_t want_pages,
                           std::uint64_t pool_pages, double core_frac) {
        // Deterministic core (identical across VMs of this OS) plus
        // per-VM random 64-page regions.
        auto core = static_cast<std::uint64_t>(
            static_cast<double>(want_pages) * core_frac);
        if (core > 0)
            use.push_back({0, std::min(core, pool_pages)});
        std::uint64_t rest = want_pages - core;
        const std::uint64_t region = 64;
        while (rest > 0) {
            std::uint64_t n = std::min(region, rest);
            std::uint64_t start =
                rng.below(std::max<std::uint64_t>(pool_pages - n, 1));
            use.push_back({start, start + n});
            rest -= n;
        }
    };

    const auto os_pages =
        static_cast<std::uint64_t>(static_cast<double>(pages) *
                                   p.osFrac);
    const auto cache_pages =
        static_cast<std::uint64_t>(static_cast<double>(pages) *
                                   p.cacheFrac);
    const auto app_pages =
        static_cast<std::uint64_t>(static_cast<double>(pages) *
                                   p.appFrac);
    const auto zero_pages =
        static_cast<std::uint64_t>(static_cast<double>(pages) *
                                   p.zeroFrac);
    const std::uint64_t heap_pages =
        pages - os_pages - cache_pages - app_pages - zero_pages;

    pool_sample(osUse_[p.os], os_pages, p.osPoolBytes / kPageBytes,
                p.osCoreFrac);
    pool_sample(cacheUse_[p.os], cache_pages,
                p.cachePoolBytes / kPageBytes, p.cacheCoreFrac);
    // Application data is identical across same-profile VMs (same
    // benchmark dataset); its pool is ~1.3x one VM's resident share.
    pool_sample(appUse_[p.name], app_pages, app_pages * 13 / 10 + 1,
                p.appCoreFrac);
    if (zero_pages > 0)
        zeroPageUsed_ = true;

    // Per-VM-modified pool pages: whole-page identity broken, line
    // identity mostly preserved.
    const auto dirty = static_cast<std::uint64_t>(
        static_cast<double>(os_pages) * p.osDirtyFrac +
        static_cast<double>(cache_pages) * p.cacheDirtyFrac +
        static_cast<double>(app_pages) * p.appDirtyFrac);
    dirtyPages_ += dirty;

    // Heap pages: per-VM unique lines plus zero lines plus lines from
    // the global common pool (allocator metadata patterns, canonical
    // constants). Layout within a page is [unique | common | zero],
    // so level-1 nodes over the zero tail are zero entries (free).
    const std::uint64_t heap_lines = heap_pages * kLinesPerPage;
    const auto zero_lines = static_cast<std::uint64_t>(
        static_cast<double>(heap_lines) * p.heapZeroLines);
    const auto common_lines = static_cast<std::uint64_t>(
        static_cast<double>(heap_lines) * p.heapCommonLines);
    heapUniqueLines_ += heap_lines - zero_lines - common_lines;
    globalCommonLines_ =
        std::max(globalCommonLines_,
                 std::min(common_lines, kCommonPoolLines));
    heapPages_ += heap_pages;

    // Non-zero lines per heap page determine its level-1 node count.
    const double nz_frac = 1.0 - p.heapZeroLines;
    const auto nz_per_page = static_cast<std::uint64_t>(
        nz_frac * static_cast<double>(kLinesPerPage) + 0.999);
    heapL1Nodes_ += heap_pages * ((nz_per_page + 7) / 8);
}

VmUsage
VmDedupModel::measure() const
{
    VmUsage u;
    u.allocatedBytes = allocated_;

    std::uint64_t pool_pages = 0;
    for (auto &[os, ivs] : osUse_) {
        (void)os;
        auto copy = ivs;
        pool_pages += unionPages(copy);
    }
    for (auto &[os, ivs] : cacheUse_) {
        (void)os;
        auto copy = ivs;
        pool_pages += unionPages(copy);
    }
    for (auto &[profile, ivs] : appUse_) {
        (void)profile;
        auto copy = ivs;
        pool_pages += unionPages(copy);
    }

    // Ideal page sharing: distinct 4 KB pages. Per-VM dirty pool
    // pages are distinct at page granularity. (Counting each dirty
    // copy on top of the slot's clean copy slightly overcounts when
    // no clean user exists — only material at one or two VMs — so
    // cap at the total page population.)
    std::uint64_t distinct_pages = pool_pages + heapPages_ +
                                   dirtyPages_ + (zeroPageUsed_ ? 1 : 0);
    distinct_pages = std::min(distinct_pages, totalPages_);
    u.pageSharedBytes = distinct_pages * kPageBytes;

    // HICAMP: distinct 64 B lines plus DAG nodes (8 L1 + 1 root per
    // distinct page-worth of content; zero subtrees are free). A
    // dirty pool page costs its few modified lines, one modified L1
    // node and its own root; the other 62 lines stay shared.
    std::uint64_t lines = pool_pages * kLinesPerPage +
                          heapUniqueLines_ + globalCommonLines_ +
                          dirtyPages_ * VmProfile::kDirtyLinesPerPage;
    std::uint64_t l1_nodes = pool_pages * (kLinesPerPage / 8) +
                             heapL1Nodes_ + globalCommonLines_ / 8 +
                             dirtyPages_;
    std::uint64_t roots = pool_pages + heapPages_ + dirtyPages_;
    u.hicampBytes = (lines + l1_nodes + roots) * kLineBytes;
    return u;
}

} // namespace hicamp
