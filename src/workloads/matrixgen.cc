#include "workloads/matrixgen.hh"

#include <algorithm>
#include <cmath>
#include <set>

namespace hicamp {

double
MatrixGen::coefValue(Coef coef, Rng &rng, std::uint32_t r,
                     std::uint32_t c)
{
    switch (coef) {
      case Coef::Constant:
        return 1.0;
      case Coef::FewValues: {
        static const double kVals[] = {1.0, -1.0, 2.0, 0.5};
        return kVals[rng.below(4)];
      }
      case Coef::Smooth:
        return 1.0 + 0.001 * static_cast<double>((r + c) / 16);
      case Coef::Random:
      default:
        return rng.uniform() * 2.0 - 1.0;
    }
}

SparseMatrix
MatrixGen::fem2d(std::uint32_t grid, Coef coef, bool symmetric,
                 std::uint64_t seed, const std::string &name)
{
    Rng rng(seed);
    const std::uint32_t n = grid * grid;
    std::vector<Triplet> t;
    t.reserve(n * 5);
    auto id = [&](std::uint32_t i, std::uint32_t j) {
        return i * grid + j;
    };
    for (std::uint32_t i = 0; i < grid; ++i) {
        for (std::uint32_t j = 0; j < grid; ++j) {
            std::uint32_t me = id(i, j);
            double d = 4.0 * coefValue(coef, rng, me, me);
            t.push_back({me, me, d});
            auto off = [&](std::uint32_t other) {
                double v = -coefValue(coef, rng, me, other);
                t.push_back({me, other, v});
                if (symmetric) {
                    t.push_back({other, me, v});
                } else {
                    t.push_back({other, me,
                                 -coefValue(coef, rng, other, me)});
                }
            };
            // Emit each undirected edge once (to the east and south
            // neighbours); both directions are added inside off().
            if (j + 1 < grid)
                off(id(i, j + 1));
            if (i + 1 < grid)
                off(id(i + 1, j));
        }
    }
    return SparseMatrix(name, "FEM", n, n, std::move(t), symmetric);
}

SparseMatrix
MatrixGen::fem3d(std::uint32_t grid, Coef coef, bool symmetric,
                 std::uint64_t seed, const std::string &name)
{
    Rng rng(seed);
    const std::uint32_t n = grid * grid * grid;
    std::vector<Triplet> t;
    t.reserve(n * 7);
    auto id = [&](std::uint32_t i, std::uint32_t j, std::uint32_t k) {
        return (i * grid + j) * grid + k;
    };
    for (std::uint32_t i = 0; i < grid; ++i) {
        for (std::uint32_t j = 0; j < grid; ++j) {
            for (std::uint32_t k = 0; k < grid; ++k) {
                std::uint32_t me = id(i, j, k);
                t.push_back({me, me,
                             6.0 * coefValue(coef, rng, me, me)});
                auto off = [&](std::uint32_t other) {
                    double v = -coefValue(coef, rng, me, other);
                    t.push_back({me, other, v});
                    if (symmetric) {
                        t.push_back({other, me, v});
                    } else {
                        t.push_back({other, me,
                                     -coefValue(coef, rng, other, me)});
                    }
                };
                if (k + 1 < grid)
                    off(id(i, j, k + 1));
                if (j + 1 < grid)
                    off(id(i, j + 1, k));
                if (i + 1 < grid)
                    off(id(i + 1, j, k));
            }
        }
    }
    return SparseMatrix(name, "FEM", n, n, std::move(t), symmetric);
}

SparseMatrix
MatrixGen::lp(std::uint32_t rows, std::uint32_t cols,
              unsigned nnz_per_col, std::uint64_t seed,
              const std::string &name)
{
    // Staircase / time-staged LP: the same constraint block repeats
    // down the diagonal for every stage (multi-period models stamp
    // identical technology matrices per period), plus a band of
    // coupling constraints at the top. Values are overwhelmingly
    // +/-1. This is the structure that makes LPs the paper's most
    // compactable category (Table 2: 43%).
    Rng rng(seed);
    std::vector<Triplet> t;
    constexpr std::uint32_t kBlock = 64; // power of two: stays aligned

    // The per-stage block pattern (column-wise, like a constraint
    // matrix built from column structures).
    struct Elem {
        std::uint32_t r, c;
        double v;
    };
    std::vector<Elem> block;
    for (std::uint32_t c = 0; c < kBlock; ++c) {
        std::set<std::uint32_t> rs;
        while (rs.size() < nnz_per_col)
            rs.insert(static_cast<std::uint32_t>(rng.below(kBlock)));
        for (std::uint32_t r : rs) {
            double v = rng.chance(0.85) ? (rng.chance(0.5) ? 1.0 : -1.0)
                                        : 2.0;
            block.push_back({r, c, v});
        }
    }

    const std::uint32_t avail = std::min(rows, cols) / kBlock;
    const std::uint32_t stages = avail > 1 ? avail - 1 : 1;
    const std::uint32_t band = kBlock; // coupling rows on top
    for (std::uint32_t s = 0; s < stages; ++s) {
        std::uint32_t r0 = band + s * kBlock;
        std::uint32_t c0 = s * kBlock;
        for (const auto &e : block) {
            // A per-stage perturbation (bounds, RHS scaling, seasonal
            // coefficients) keeps stages from being perfectly
            // identical, as in real multi-period models.
            double v = rng.chance(0.10) ? e.v * (1.0 + rng.uniform())
                                        : e.v;
            if (r0 + e.r < rows && c0 + e.c < cols)
                t.push_back({r0 + e.r, c0 + e.c, v});
        }
        // Inter-stage coupling: a sparse identity into the next stage.
        for (std::uint32_t k = 0; k < kBlock; k += 4) {
            if (r0 + k < rows && c0 + kBlock + k < cols)
                t.push_back({r0 + k, c0 + kBlock + k, -1.0});
        }
    }
    // Coupling band: the objective/resource rows touch every column
    // sparsely with +/-1 coefficients.
    for (std::uint32_t c = 0; c < cols; c += 2) {
        std::uint32_t r = c % band;
        if (r < rows)
            t.push_back({r, c, rng.chance(0.7) ? 1.0 : -1.0});
    }
    return SparseMatrix(name, "LP", rows, cols, std::move(t), false);
}

SparseMatrix
MatrixGen::banded(std::uint32_t n,
                  const std::vector<std::int32_t> &offsets, Coef coef,
                  bool symmetric, std::uint64_t seed,
                  const std::string &name)
{
    Rng rng(seed);
    std::vector<Triplet> t;
    for (std::uint32_t i = 0; i < n; ++i) {
        for (std::int32_t off : offsets) {
            std::int64_t j = static_cast<std::int64_t>(i) + off;
            if (j < 0 || j >= static_cast<std::int64_t>(n))
                continue;
            if (symmetric && off < 0)
                continue; // mirrored below
            double v = coefValue(coef, rng, i,
                                 static_cast<std::uint32_t>(j));
            t.push_back({i, static_cast<std::uint32_t>(j), v});
            if (symmetric && off > 0) {
                t.push_back({static_cast<std::uint32_t>(j), i, v});
            }
        }
    }
    return SparseMatrix(name, "Banded", n, n, std::move(t), symmetric);
}

SparseMatrix
MatrixGen::circuit(std::uint32_t n, double avg_degree,
                   std::uint64_t seed, const std::string &name)
{
    Rng rng(seed);
    std::vector<Triplet> t;
    const auto edges =
        static_cast<std::uint64_t>(static_cast<double>(n) * avg_degree);
    for (std::uint32_t i = 0; i < n; ++i)
        t.push_back({i, i, 1.0 + rng.uniform()});
    Zipf hub(n, 0.7); // a few high-degree nets
    // Conductance values come from a small alphabet: real netlists
    // instantiate the same device models (and hence stamp the same
    // values) millions of times.
    static const double kG[] = {-1.0, -0.5, -2.0, -0.1, -10.0, -0.25};
    for (std::uint64_t e = 0; e < edges; ++e) {
        auto a = static_cast<std::uint32_t>(hub.sample(rng));
        auto b = static_cast<std::uint32_t>(rng.below(n));
        if (a == b)
            continue;
        double v = rng.chance(0.85) ? kG[rng.below(6)]
                                    : -(0.5 + rng.uniform());
        t.push_back({a, b, v});
        t.push_back({b, a, v});
    }
    return SparseMatrix(name, "Circuit", n, n, std::move(t), false);
}

SparseMatrix
MatrixGen::blockTiled(std::uint32_t n, std::uint32_t block_dim,
                      double block_density, Coef coef,
                      std::uint64_t seed, const std::string &name)
{
    Rng rng(seed);
    // One block pattern (with values), stamped on the block diagonal
    // and at a few repeated off-diagonal positions.
    std::vector<Triplet> pattern;
    Rng prng(seed * 7 + 1);
    for (std::uint32_t i = 0; i < block_dim; ++i) {
        for (std::uint32_t j = 0; j < block_dim; ++j) {
            if (prng.uniform() < block_density) {
                pattern.push_back(
                    {i, j, coefValue(coef, prng, i, j)});
            }
        }
    }
    std::vector<Triplet> t;
    const std::uint32_t blocks = n / block_dim;
    // Real repeating-pattern matrices are not perfectly self-similar:
    // a few elements per block carry block-specific values (boundary
    // conditions, local coefficients), which caps the dedup factor.
    const double perturb = 0.06;
    for (std::uint32_t b = 0; b < blocks; ++b) {
        for (const auto &p : pattern) {
            double v = rng.chance(perturb) ? p.v * (1.0 + rng.uniform())
                                           : p.v;
            t.push_back({b * block_dim + p.r, b * block_dim + p.c, v});
        }
        if (b + 1 < blocks && rng.chance(0.5)) {
            for (const auto &p : pattern) {
                t.push_back({b * block_dim + p.r,
                             (b + 1) * block_dim + p.c, p.v});
            }
        }
    }
    return SparseMatrix(name, "Block", n, n, std::move(t), false);
}

SparseMatrix
MatrixGen::randomSparse(std::uint32_t rows, std::uint32_t cols,
                        std::uint64_t nnz, std::uint64_t seed,
                        const std::string &name)
{
    Rng rng(seed);
    std::vector<Triplet> t;
    t.reserve(nnz);
    for (std::uint64_t k = 0; k < nnz; ++k) {
        t.push_back({static_cast<std::uint32_t>(rng.below(rows)),
                     static_cast<std::uint32_t>(rng.below(cols)),
                     rng.uniform() * 2.0 - 1.0});
    }
    return SparseMatrix(name, "Random", rows, cols, std::move(t),
                        false);
}

std::vector<SparseMatrix>
MatrixGen::standardSuite(double scale)
{
    auto sc = [&](std::uint32_t v) {
        auto s = static_cast<std::uint32_t>(static_cast<double>(v) *
                                            scale);
        return std::max(16u, s);
    };
    std::vector<SparseMatrix> suite;
    std::uint64_t seed = 1000;

    // --- FEM: 29 total (18 symmetric, 11 non-symmetric) -------------
    struct FemSpec {
        std::uint32_t grid;
        Coef coef;
        bool sym;
        bool threeD;
    };
    const FemSpec fems[] = {
        {48, Coef::Constant, true, false},
        {64, Coef::Constant, true, false},
        {96, Coef::Constant, true, false},
        {128, Coef::Constant, true, false}, // the extreme-dedup outlier
        {48, Coef::Smooth, true, false},
        {64, Coef::Smooth, true, false},
        {96, Coef::Smooth, true, false},
        {48, Coef::FewValues, true, false},
        {64, Coef::Random, true, false},
        {96, Coef::Smooth, true, false},
        {128, Coef::Random, true, false},
        {12, Coef::Constant, true, true},
        {16, Coef::Constant, true, true},
        {20, Coef::Smooth, true, true},
        {16, Coef::Random, true, true},
        {20, Coef::Random, true, true},
        {24, Coef::Random, true, true},
        {32, Coef::Smooth, true, false},
        {48, Coef::Constant, false, false},
        {64, Coef::Smooth, false, false},
        {96, Coef::Random, false, false},
        {128, Coef::Smooth, false, false},
        {12, Coef::FewValues, false, true},
        {16, Coef::Smooth, false, true},
        {20, Coef::Random, false, true},
        {64, Coef::FewValues, false, false},
        {96, Coef::FewValues, false, false},
        {32, Coef::Random, false, false},
        {24, Coef::Constant, false, true},
    };
    int fi = 0;
    for (const auto &f : fems) {
        std::string nm = "fem" + std::string(f.threeD ? "3d" : "2d") +
                         "-" + std::to_string(fi++);
        suite.push_back(f.threeD
                            ? fem3d(sc(f.grid) / 4 + 8, f.coef, f.sym,
                                    ++seed, nm)
                            : fem2d(sc(f.grid), f.coef, f.sym, ++seed,
                                    nm));
    }

    // --- LP: 15 (all non-symmetric) ---------------------------------
    for (int i = 0; i < 15; ++i) {
        std::uint32_t rows = sc(600 + 350 * i);
        std::uint32_t cols = sc(900 + 500 * i);
        suite.push_back(lp(rows, cols, 3 + i % 4, ++seed,
                           "lp-" + std::to_string(i)));
    }

    // --- Banded: 20 (3 symmetric) ------------------------------------
    for (int i = 0; i < 20; ++i) {
        std::uint32_t n = sc(1500 + 900 * i);
        std::vector<std::int32_t> offs = {0, 1, -1};
        if (i % 2)
            offs.insert(offs.end(), {16, -16});
        if (i % 3 == 0)
            offs.insert(offs.end(), {128, -128});
        Coef coef = i % 4 == 0   ? Coef::Constant
                    : i % 4 == 1 ? Coef::Smooth
                    : i % 4 == 2 ? Coef::FewValues
                                 : Coef::Random;
        bool sym = i < 5;
        suite.push_back(banded(n, offs, coef, sym, ++seed,
                               "banded-" + std::to_string(i)));
    }

    // --- Circuit: 16 --------------------------------------------------
    for (int i = 0; i < 16; ++i) {
        std::uint32_t n = sc(1200 + 850 * i);
        suite.push_back(circuit(n, 3.0 + (i % 5), ++seed,
                                "circuit-" + std::to_string(i)));
    }

    // --- Block-tiled: 12 ---------------------------------------------
    for (int i = 0; i < 12; ++i) {
        std::uint32_t n = sc(2048 + 1024 * i);
        suite.push_back(blockTiled(n, 16 << (i % 3), 0.2,
                                   i % 2 ? Coef::Constant
                                         : Coef::FewValues,
                                   ++seed,
                                   "block-" + std::to_string(i)));
    }

    // --- Random: 8 -----------------------------------------------------
    for (int i = 0; i < 8; ++i) {
        std::uint32_t n = sc(1000 + 700 * i);
        suite.push_back(randomSparse(
            n, n, std::uint64_t{n} * (4 + i % 6), ++seed,
            "random-" + std::to_string(i)));
    }

    return suite;
}

} // namespace hicamp
