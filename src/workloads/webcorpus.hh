/**
 * @file
 * Synthetic web-content corpus — the stand-in for the paper's
 * Wikipedia/Facebook page dumps (Table 1, Fig. 6 workload).
 *
 * Text-like items (HTML pages, scripts) are assembled from a shared
 * pool of template fragments plus unique runs, reproducing the
 * cross-item redundancy that line-level deduplication exploits;
 * image-like items are high-entropy random bytes, which dedup cannot
 * compress (the paper measures ~0.9-1.1x for JPEG/GIF data). Item
 * sizes follow a bounded power law, as typical for web objects.
 */

#ifndef HICAMP_WORKLOADS_WEBCORPUS_HH
#define HICAMP_WORKLOADS_WEBCORPUS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hh"

namespace hicamp {

/** One generated corpus item. */
struct WebItem {
    std::string key;
    std::string payload;
};

class WebCorpus
{
  public:
    enum class Kind {
        Pages,   ///< HTML-like: tags + words, heavy template reuse
        Scripts, ///< JS-like: denser punctuation, shared library code
        Images,  ///< compressed binary: high entropy, no reuse
    };

    struct Params {
        Kind kind = Kind::Pages;
        std::uint64_t seed = 1;
        std::uint64_t numItems = 1000;
        std::uint64_t minBytes = 256;
        std::uint64_t maxBytes = 32768;
        double sizeAlpha = 1.0;    ///< power-law shape for item sizes
        /**
         * Text corpora are built as *versions of base pages*: items
         * sharing a base are near-duplicates differing by small
         * length-preserving edits — the aligned redundancy (revisions,
         * per-user renderings of the same fragment) that line-level
         * dedup exploits in real dumps. basesPerItem ~ 1/5 means five
         * versions of each base on average.
         */
        double basesPerItem = 0.2;
        double exactDupFraction = 0.10; ///< unmodified re-stores
        /// one localized ~8-byte edit per this many bytes of version
        /// (edit density drives how dedup degrades with line size)
        std::uint64_t editEveryBytes = 384;
        /**
         * Images: fraction of distinct blobs. Real photo corpora
         * contain the same file under many keys (re-uploads,
         * multiple URLs); whole-file duplicates are the only dedup
         * opportunity in compressed media.
         */
        double uniqueImageFraction = 0.75;
        std::string keyPrefix = "item:";
    };

    /** Generate the full corpus deterministically from the seed. */
    static std::vector<WebItem> generate(const Params &p);

    /**
     * Produce an updated version of a payload (for memcached set
     * requests): a small localized edit, as when a dynamic page
     * fragment changes.
     */
    static std::string mutate(const std::string &payload, Rng &rng);

    /** Sum of payload bytes. */
    static std::uint64_t totalBytes(const std::vector<WebItem> &items);

  private:
    static std::string htmlFragment(Rng &rng, std::uint64_t bytes,
                                    bool script_like);
    static std::string randomWord(Rng &rng);
};

} // namespace hicamp

#endif // HICAMP_WORKLOADS_WEBCORPUS_HH
