#include "workloads/webcorpus.hh"

#include <algorithm>

namespace hicamp {

std::string
WebCorpus::randomWord(Rng &rng)
{
    static const char *kCommon[] = {
        "the",  "and",   "with",  "content", "page",  "data",
        "user", "value", "time",  "link",    "image", "section",
        "new",  "from",  "table", "style",   "class", "title",
    };
    if (rng.chance(0.5))
        return kCommon[rng.below(sizeof(kCommon) / sizeof(kCommon[0]))];
    std::string w;
    std::uint64_t len = rng.range(3, 9);
    for (std::uint64_t i = 0; i < len; ++i)
        w.push_back(static_cast<char>('a' + rng.below(26)));
    return w;
}

std::string
WebCorpus::htmlFragment(Rng &rng, std::uint64_t bytes, bool script_like)
{
    static const char *kTags[] = {"div", "span", "p", "a", "li", "td"};
    std::string out;
    out.reserve(bytes + 32);
    while (out.size() < bytes) {
        if (script_like) {
            switch (rng.below(4)) {
              case 0:
                out += "var " + randomWord(rng) + " = function(" +
                       randomWord(rng) + ") { return " +
                       randomWord(rng) + "." + randomWord(rng) + "(); };\n";
                break;
              case 1:
                out += "if (" + randomWord(rng) + " < " +
                       std::to_string(rng.below(1000)) + ") { " +
                       randomWord(rng) + "++; }\n";
                break;
              case 2:
                out += randomWord(rng) + ".addEventListener('" +
                       randomWord(rng) + "', " + randomWord(rng) + ");\n";
                break;
              default:
                out += "/* " + randomWord(rng) + " " + randomWord(rng) +
                       " */\n";
                break;
            }
        } else {
            const char *tag = kTags[rng.below(6)];
            out += "<";
            out += tag;
            out += " class=\"" + randomWord(rng) + "\">";
            std::uint64_t words = rng.range(4, 16);
            for (std::uint64_t i = 0; i < words; ++i) {
                out += randomWord(rng);
                out.push_back(' ');
            }
            out += "</";
            out += tag;
            out += ">\n";
        }
    }
    out.resize(bytes);
    return out;
}

std::vector<WebItem>
WebCorpus::generate(const Params &p)
{
    Rng rng(p.seed);
    std::vector<WebItem> items;
    items.reserve(p.numItems);

    if (p.kind == Kind::Images) {
        // High-entropy binary blobs: already-compressed media. Dedup
        // opportunity comes only from whole-file duplicates (the same
        // image stored under several keys).
        const std::uint64_t uniques = std::max<std::uint64_t>(
            1, static_cast<std::uint64_t>(
                   static_cast<double>(p.numItems) *
                   p.uniqueImageFraction));
        std::vector<std::string> pool(uniques);
        for (auto &blob : pool) {
            std::uint64_t n =
                rng.powerLaw(p.minBytes, p.maxBytes, p.sizeAlpha);
            blob.reserve(n);
            while (blob.size() + 8 <= n) {
                std::uint64_t w = rng.next();
                blob.append(reinterpret_cast<const char *>(&w), 8);
            }
            while (blob.size() < n)
                blob.push_back(static_cast<char>(rng.below(256)));
        }
        Zipf pop(uniques, 0.3);
        for (std::uint64_t i = 0; i < p.numItems; ++i) {
            items.push_back({p.keyPrefix + std::to_string(i),
                             pool[pop.sample(rng)]});
        }
        return items;
    }

    // Base pages: each item is a version of some base — identical
    // except for a handful of localized, length-preserving edits, so
    // line alignment (and therefore line-level dedup) is preserved,
    // exactly like page revisions or per-user renderings of one
    // template in the real dumps.
    const bool script_like = p.kind == Kind::Scripts;
    const std::uint64_t num_bases = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(
               static_cast<double>(p.numItems) * p.basesPerItem));
    std::vector<std::string> bases(num_bases);
    for (std::uint64_t b = 0; b < num_bases; ++b) {
        std::uint64_t target =
            rng.powerLaw(p.minBytes, p.maxBytes, p.sizeAlpha);
        bases[b] = htmlFragment(rng, target, script_like);
    }
    Zipf base_pop(num_bases, 0.6);

    for (std::uint64_t i = 0; i < p.numItems; ++i) {
        std::string body = bases[base_pop.sample(rng)];
        if (!rng.chance(p.exactDupFraction)) {
            std::uint64_t edits = std::max<std::uint64_t>(
                2, body.size() / p.editEveryBytes);
            for (std::uint64_t e = 0; e < edits; ++e)
                body = mutate(body, rng);
        }
        items.push_back({p.keyPrefix + std::to_string(i),
                         std::move(body)});
    }
    return items;
}

std::string
WebCorpus::mutate(const std::string &payload, Rng &rng)
{
    std::string out = payload;
    if (out.empty())
        return out;
    // A localized edit: overwrite a short run at a random position
    // (e.g. a timestamp or counter in a dynamic fragment).
    std::uint64_t pos = rng.below(out.size());
    std::string stamp = "[v" + std::to_string(rng.below(1000000)) + "]";
    for (std::size_t i = 0; i < stamp.size() && pos + i < out.size(); ++i)
        out[pos + i] = stamp[i];
    return out;
}

std::uint64_t
WebCorpus::totalBytes(const std::vector<WebItem> &items)
{
    std::uint64_t t = 0;
    for (const auto &it : items)
        t += it.payload.size();
    return t;
}

} // namespace hicamp
