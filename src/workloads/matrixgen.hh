/**
 * @file
 * Synthetic sparse-matrix suite — the stand-in for the University of
 * Florida Sparse Matrix Collection used in paper §5.2 (Figs. 7-8,
 * Table 2). Generators cover the structural classes whose properties
 * drive the results: FEM stencils (2D/3D, symmetric and not, constant
 * or varying coefficients), LP constraint matrices (tall patterns,
 * many +/-1 values), banded operators, circuit-like power-law graphs,
 * block-self-similar tilings and uniform random matrices.
 *
 * The standard suite mirrors Table 2's category counts: 100 matrices,
 * 23 symmetric, 29 FEM, 15 LP.
 */

#ifndef HICAMP_WORKLOADS_MATRIXGEN_HH
#define HICAMP_WORKLOADS_MATRIXGEN_HH

#include <vector>

#include "apps/spmv/sparse_matrix.hh"
#include "common/rng.hh"

namespace hicamp {

class MatrixGen
{
  public:
    /** How element values vary (drives value-level deduplication). */
    enum class Coef {
        Constant, ///< single repeated value (maximal self-similarity)
        FewValues, ///< small value alphabet (e.g. +/-1 in LP)
        Smooth,   ///< slowly varying
        Random,   ///< i.i.d. values (pattern dedup only)
    };

    /** 5-point (2D) Laplacian-style FEM stencil on an n x n grid. */
    static SparseMatrix fem2d(std::uint32_t grid, Coef coef,
                              bool symmetric, std::uint64_t seed,
                              const std::string &name);

    /** 7-point (3D) stencil on an n^3 grid. */
    static SparseMatrix fem3d(std::uint32_t grid, Coef coef,
                              bool symmetric, std::uint64_t seed,
                              const std::string &name);

    /** LP constraint matrix: m rows, n cols, k nnz/col, +/-1-heavy. */
    static SparseMatrix lp(std::uint32_t rows, std::uint32_t cols,
                           unsigned nnz_per_col, std::uint64_t seed,
                           const std::string &name);

    /** Banded matrix with the given diagonal offsets. */
    static SparseMatrix banded(std::uint32_t n,
                               const std::vector<std::int32_t> &offsets,
                               Coef coef, bool symmetric,
                               std::uint64_t seed,
                               const std::string &name);

    /** Circuit-like: power-law row degree, diagonal dominance. */
    static SparseMatrix circuit(std::uint32_t n, double avg_degree,
                                std::uint64_t seed,
                                const std::string &name);

    /** A small block pattern tiled across the matrix. */
    static SparseMatrix blockTiled(std::uint32_t n,
                                   std::uint32_t block_dim,
                                   double block_density, Coef coef,
                                   std::uint64_t seed,
                                   const std::string &name);

    /** Uniform random sparse matrix. */
    static SparseMatrix randomSparse(std::uint32_t rows,
                                     std::uint32_t cols,
                                     std::uint64_t nnz,
                                     std::uint64_t seed,
                                     const std::string &name);

    /**
     * The 100-matrix evaluation suite (category mix per Table 2).
     * @param scale shrinks all dimensions for quick test runs.
     */
    static std::vector<SparseMatrix> standardSuite(double scale = 1.0);

  private:
    static double coefValue(Coef coef, Rng &rng, std::uint32_t r,
                            std::uint32_t c);
};

} // namespace hicamp

#endif // HICAMP_WORKLOADS_MATRIXGEN_HH
