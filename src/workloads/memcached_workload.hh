/**
 * @file
 * Memcached request-trace generator (paper §5.1.2): after preloading
 * the corpus, a request stream with a configurable get:set ratio,
 * Zipf-popular keys and power-law value sizes — "typical for
 * memcached workloads" per the paper's footnote 11.
 */

#ifndef HICAMP_WORKLOADS_MEMCACHED_WORKLOAD_HH
#define HICAMP_WORKLOADS_MEMCACHED_WORKLOAD_HH

#include <cstdint>
#include <limits>
#include <vector>

#include "common/rng.hh"
#include "workloads/webcorpus.hh"

namespace hicamp {

/** One memcached request. */
struct McRequest {
    enum class Op { Get, Set, Delete } op;
    std::uint32_t itemIndex;   ///< which corpus key
    std::string newValue;      ///< for Set: the value to store
};

struct McWorkloadParams {
    std::uint64_t seed = 42;
    std::uint64_t numRequests = 15000;
    double getFraction = 0.90;
    double deleteFraction = 0.01;
    double zipfS = 0.95; ///< key popularity skew
};

/**
 * Generate a request stream over @p items. Set requests carry a
 * mutated version of the item's current payload (tracked so repeated
 * sets evolve realistically).
 */
inline std::vector<McRequest>
generateMcRequests(const std::vector<WebItem> &items,
                   const McWorkloadParams &p)
{
    // An empty corpus would otherwise construct Zipf over a zero
    // domain (divide-by-zero in the CDF normalization).
    if (items.empty())
        return {};
    HICAMP_ASSERT(items.size() <=
                      std::numeric_limits<std::uint32_t>::max(),
                  "corpus too large for McRequest::itemIndex");
    Rng rng(p.seed);
    Zipf pop(items.size(), p.zipfS);
    std::vector<McRequest> reqs;
    reqs.reserve(p.numRequests);
    // Evolving payloads for realistic set content; a deleted key's
    // stale payload must not keep evolving (see the Set branch).
    std::vector<std::string> current;
    current.reserve(items.size());
    for (const auto &it : items)
        current.push_back(it.payload);
    std::vector<bool> deleted(items.size(), false);

    for (std::uint64_t i = 0; i < p.numRequests; ++i) {
        const std::uint64_t rank = pop.sample(rng);
        // Zipf draws 0-based ranks < items.size(), which the assert
        // above bounds; the cast cannot truncate.
        auto idx = static_cast<std::uint32_t>(rank);
        double roll = rng.uniform();
        if (roll < p.getFraction) {
            reqs.push_back({McRequest::Op::Get, idx, {}});
        } else if (roll < p.getFraction + p.deleteFraction) {
            deleted[idx] = true;
            reqs.push_back({McRequest::Op::Delete, idx, {}});
        } else {
            // Set after Delete models a fresh insert: restart from
            // the item's base payload instead of mutating the stale
            // pre-delete content (which no live store holds anymore).
            if (deleted[idx]) {
                current[idx] = items[idx].payload;
                deleted[idx] = false;
            }
            current[idx] = WebCorpus::mutate(current[idx], rng);
            reqs.push_back({McRequest::Op::Set, idx, current[idx]});
        }
    }
    return reqs;
}

} // namespace hicamp

#endif // HICAMP_WORKLOADS_MEMCACHED_WORKLOAD_HH
