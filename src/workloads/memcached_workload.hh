/**
 * @file
 * Memcached request-trace generator (paper §5.1.2): after preloading
 * the corpus, a request stream with a configurable get:set ratio,
 * Zipf-popular keys and power-law value sizes — "typical for
 * memcached workloads" per the paper's footnote 11.
 */

#ifndef HICAMP_WORKLOADS_MEMCACHED_WORKLOAD_HH
#define HICAMP_WORKLOADS_MEMCACHED_WORKLOAD_HH

#include <cstdint>
#include <vector>

#include "common/rng.hh"
#include "workloads/webcorpus.hh"

namespace hicamp {

/** One memcached request. */
struct McRequest {
    enum class Op { Get, Set, Delete } op;
    std::uint32_t itemIndex;   ///< which corpus key
    std::string newValue;      ///< for Set: the value to store
};

struct McWorkloadParams {
    std::uint64_t seed = 42;
    std::uint64_t numRequests = 15000;
    double getFraction = 0.90;
    double deleteFraction = 0.01;
    double zipfS = 0.95; ///< key popularity skew
};

/**
 * Generate a request stream over @p items. Set requests carry a
 * mutated version of the item's current payload (tracked so repeated
 * sets evolve realistically).
 */
inline std::vector<McRequest>
generateMcRequests(const std::vector<WebItem> &items,
                   const McWorkloadParams &p)
{
    Rng rng(p.seed);
    Zipf pop(items.size(), p.zipfS);
    std::vector<McRequest> reqs;
    reqs.reserve(p.numRequests);
    // Evolving payloads for realistic set content.
    std::vector<std::string> current;
    current.reserve(items.size());
    for (const auto &it : items)
        current.push_back(it.payload);

    for (std::uint64_t i = 0; i < p.numRequests; ++i) {
        auto idx = static_cast<std::uint32_t>(pop.sample(rng));
        double roll = rng.uniform();
        if (roll < p.getFraction) {
            reqs.push_back({McRequest::Op::Get, idx, {}});
        } else if (roll < p.getFraction + p.deleteFraction) {
            reqs.push_back({McRequest::Op::Delete, idx, {}});
        } else {
            current[idx] = WebCorpus::mutate(current[idx], rng);
            reqs.push_back({McRequest::Op::Set, idx, current[idx]});
        }
    }
    return reqs;
}

} // namespace hicamp

#endif // HICAMP_WORKLOADS_MEMCACHED_WORKLOAD_HH
