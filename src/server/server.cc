/**
 * @file
 * McServer implementation. See server.hh for the thread shape and
 * DESIGN.md §14 for the serving architecture; the short version:
 *
 *  - The network thread owns epoll, every socket, every Conn's parse
 *    and write state, the connection table and the backpressure
 *    queue. Nothing here locks except the per-connection output
 *    buffer handoff.
 *  - Workers own the heap: they pop command batches, materialize full
 *    responses against McStore, and only then take the connection's
 *    output lock (terminal `lockrank::server` rank) to append — the
 *    lock is held for a memcpy, never across a heap call.
 *  - An eventfd is the only worker→net signal; the request ring full
 *    is the only net→worker backpressure (the connection's batch
 *    stays staged and its socket stops being polled for reads).
 */

#include "server/server.hh"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "common/logging.hh"

namespace hicamp::server {

/**
 * Per-connection state. Owned by the network thread except `out`,
 * which workers append to under `outMu` (rank `server`, terminal).
 * The shared_ptr travels inside ring slots, so a connection that
 * closes mid-flight stays alive (as a buffer sink) until its last
 * batch completes — churn can never dangle, and since Conn holds no
 * heap references at all, churn can never leak PLIDs either.
 */
struct McServer::Conn {
    int fd = -1;
    std::uint32_t epollMask = 0;

    /// Receive side: bytes land in `in`, the parser consumes from
    /// `inOff`, and the prefix is compacted off lazily.
    std::string in;
    std::size_t inOff = 0;
    ProtoParser parser;

    /// Parsed commands not yet handed to a worker; `staged` is a
    /// batch that lost a full-ring race and waits in `deferred_`.
    std::deque<McCommand> pending;
    std::vector<McCommand> cmdStage;
    bool inFlight = false;
    bool deferred = false;

    bool quitAfter = false; ///< quit parsed: close once drained
    bool sawEof = false;
    bool broken = false; ///< socket error / fatal parse: drop now

    /// Transmit side (net thread only): flushOut() moves `out` here,
    /// then writes; a short write parks the rest for EPOLLOUT.
    std::string wbuf;
    std::size_t wOff = 0;

    CapMutex outMu;
    std::string out HICAMP_GUARDED_BY(outMu);
};

namespace {

/** Worker idle path: spin briefly, then yield, then doze — keeps the
 *  pop latency low under load without burning a core when idle. */
void
idleBackoff(unsigned &idle)
{
    ++idle;
    if (idle < 64)
        return;
    if (idle < 512) {
        std::this_thread::yield();
        return;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(200));
}

} // namespace

McServer::Stats::Stats(obs::MetricsRegistry &m)
    : accepted(m.counter("server.conns.accepted")),
      closed(m.counter("server.conns.closed")),
      rejected(m.counter("server.conns.rejected")),
      cmdGet(m.counter("server.cmds.get")),
      cmdSet(m.counter("server.cmds.set")),
      cmdDelete(m.counter("server.cmds.delete")),
      cmdArith(m.counter("server.cmds.arith")),
      cmdBad(m.counter("server.cmds.bad")),
      hits(m.counter("server.get.hits")),
      misses(m.counter("server.get.misses")),
      oom(m.counter("server.oom_errors")),
      bytesIn(m.counter("server.bytes.in")),
      bytesOut(m.counter("server.bytes.out")),
      stalls(m.counter("server.backpressure.stalls")),
      batchCmds(m.histogram("server.batch.cmds"))
{
}

McServer::McServer(McStore &store, ServerConfig cfg)
    : store_(store), cfg_(std::move(cfg)), metrics_("server"),
      st_(metrics_)
{
    if (cfg_.workers == 0)
        cfg_.workers = 1;
    if (cfg_.maxBatch == 0)
        cfg_.maxBatch = 1;
    requests_ = std::make_unique<MpmcRing<Batch>>(cfg_.ringSlots);
    // Sized so it can never fill: at most one in-flight batch per
    // connection, and closed conns free their slot at completion.
    completions_ =
        std::make_unique<MpmcRing<Completion>>(cfg_.maxConns + 1);
    metrics_.addGauge("server.conns.open", [this] {
        return connsOpen_.load(std::memory_order_relaxed);
    });
    metrics_.addGauge("server.reqring.occupancy",
                      [this] { return requests_->sizeApprox(); });
}

McServer::~McServer() { stop(); }

void
McServer::start()
{
    HICAMP_ASSERT(!netThread_.joinable(), "server already started");

    listenFd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK |
                                      SOCK_CLOEXEC,
                         0);
    if (listenFd_ < 0)
        HICAMP_FATAL(std::string("socket: ") + std::strerror(errno));
    int one = 1;
    ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(cfg_.port);
    if (::inet_pton(AF_INET, cfg_.host.c_str(), &addr.sin_addr) != 1)
        HICAMP_FATAL("bad listen host: " + cfg_.host);
    if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof addr) != 0)
        HICAMP_FATAL(std::string("bind: ") + std::strerror(errno));
    if (::listen(listenFd_, 128) != 0)
        HICAMP_FATAL(std::string("listen: ") + std::strerror(errno));

    sockaddr_in got{};
    socklen_t gotLen = sizeof got;
    ::getsockname(listenFd_, reinterpret_cast<sockaddr *>(&got),
                  &gotLen);
    port_ = ntohs(got.sin_port);

    epollFd_ = ::epoll_create1(EPOLL_CLOEXEC);
    eventFd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (epollFd_ < 0 || eventFd_ < 0)
        HICAMP_FATAL("epoll/eventfd setup failed");

    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = listenFd_;
    ::epoll_ctl(epollFd_, EPOLL_CTL_ADD, listenFd_, &ev);
    ev.data.fd = eventFd_;
    ::epoll_ctl(epollFd_, EPOLL_CTL_ADD, eventFd_, &ev);

    running_.store(true, std::memory_order_relaxed);
    workersRun_.store(true, std::memory_order_relaxed);
    workers_.reserve(cfg_.workers);
    for (unsigned w = 0; w < cfg_.workers; ++w)
        workers_.emplace_back(&McServer::workerLoop, this, w);
    netThread_ = std::thread(&McServer::netLoop, this);
}

void
McServer::stop()
{
    if (!netThread_.joinable() && workers_.empty())
        return;
    running_.store(false, std::memory_order_relaxed);
    wakeNet();
    if (netThread_.joinable())
        netThread_.join();
    // The net thread drained every in-flight batch before exiting, so
    // the request ring is empty: workers park on the stop flag only.
    workersRun_.store(false, std::memory_order_relaxed);
    for (auto &w : workers_)
        if (w.joinable())
            w.join();
    workers_.clear();
    for (int *fd : {&listenFd_, &epollFd_, &eventFd_}) {
        if (*fd >= 0)
            ::close(*fd);
        *fd = -1;
    }
}

void
McServer::wakeNet()
{
    if (eventFd_ < 0)
        return;
    const std::uint64_t one = 1;
    // The write syscall is the ordering point the relaxed lifecycle
    // flags lean on; a full eventfd counter (impossible here) or
    // EINTR would only mean the net thread is already awake.
    [[maybe_unused]] ssize_t n = ::write(eventFd_, &one, sizeof one);
}

// ---------------------------------------------------------------------
// Network thread
// ---------------------------------------------------------------------

void
McServer::netLoop()
{
    constexpr int kMaxEvents = 64;
    epoll_event evs[kMaxEvents];
    while (running_.load(std::memory_order_relaxed)) {
        // The timeout is a safety net only; eventfd provides prompt
        // wakeups for completions and stop().
        const int n = ::epoll_wait(epollFd_, evs, kMaxEvents, 100);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        for (int i = 0; i < n; ++i) {
            const int fd = evs[i].data.fd;
            if (fd == listenFd_) {
                acceptReady();
                continue;
            }
            if (fd == eventFd_) {
                std::uint64_t tick;
                while (::read(eventFd_, &tick, sizeof tick) > 0) {
                }
                drainCompletions();
                retryDeferred();
                continue;
            }
            auto itc = conns_.find(fd);
            if (itc == conns_.end())
                continue; // closed earlier in this wait batch
            ConnPtr c = itc->second;
            if (evs[i].events & EPOLLERR)
                c->broken = true;
            if (evs[i].events & EPOLLOUT)
                connWritable(c);
            if (c->fd >= 0 && (evs[i].events & (EPOLLIN | EPOLLHUP)))
                connReadable(c);
            if (c->fd >= 0)
                maybeFinish(c);
        }
    }
    drainOnStop();
}

void
McServer::acceptReady()
{
    for (;;) {
        const int fd = ::accept4(listenFd_, nullptr, nullptr,
                                 SOCK_NONBLOCK | SOCK_CLOEXEC);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            break; // EAGAIN or transient accept error
        }
        if (conns_.size() >= cfg_.maxConns) {
            ::close(fd);
            st_.rejected++;
            continue;
        }
        int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
        auto c = std::make_shared<Conn>();
        c->fd = fd;
        c->epollMask = EPOLLIN;
        epoll_event ev{};
        ev.events = EPOLLIN;
        ev.data.fd = fd;
        ::epoll_ctl(epollFd_, EPOLL_CTL_ADD, fd, &ev);
        conns_.emplace(fd, std::move(c));
        connsOpen_.fetch_add(1, std::memory_order_relaxed);
        st_.accepted++;
    }
}

void
McServer::connReadable(const ConnPtr &c)
{
    char buf[16384];
    for (;;) {
        const ssize_t n = ::read(c->fd, buf, sizeof buf);
        if (n > 0) {
            c->in.append(buf, static_cast<std::size_t>(n));
            st_.bytesIn += static_cast<std::uint64_t>(n);
            if (c->in.size() - c->inOff > kMaxLineBytes + kMaxValueBytes)
                break; // let the parser catch up before reading more
            continue;
        }
        if (n == 0) {
            c->sawEof = true;
            break;
        }
        if (errno == EINTR)
            continue;
        if (errno != EAGAIN && errno != EWOULDBLOCK)
            c->broken = true;
        break;
    }
    parseAndStage(c);
    dispatch(c);
}

void
McServer::parseAndStage(const ConnPtr &c)
{
    while (!c->quitAfter && !c->broken &&
           c->pending.size() < cfg_.maxPending) {
        const std::string_view view(c->in.data() + c->inOff,
                                    c->in.size() - c->inOff);
        if (view.empty())
            break;
        std::size_t consumed = 0;
        McCommand cmd;
        const ParseResult r = c->parser.step(view, consumed, cmd);
        c->inOff += consumed;
        if (r == ParseResult::NeedMore)
            break;
        if (r == ParseResult::Fatal) {
            // Unterminated garbage beyond any resync point.
            st_.cmdBad++;
            c->broken = true;
            break;
        }
        if (cmd.op == McCommand::Op::Quit) {
            // Stop parsing: commands already pending still run and
            // their responses flush, later pipelined input is dead.
            c->quitAfter = true;
            break;
        }
        cmd.own(); // the views die with the next buffer compaction
        c->pending.push_back(std::move(cmd));
    }
    // Compact the consumed prefix once it dominates the buffer.
    if (c->inOff > 4096 && c->inOff * 2 >= c->in.size()) {
        c->in.erase(0, c->inOff);
        c->inOff = 0;
    }
}

bool
McServer::tryDispatch(const ConnPtr &c)
{
    if (c->inFlight)
        return true;
    if (c->cmdStage.empty()) {
        const std::size_t n =
            std::min(cfg_.maxBatch, c->pending.size());
        c->cmdStage.reserve(n);
        for (std::size_t i = 0; i < n; ++i) {
            c->cmdStage.push_back(std::move(c->pending.front()));
            c->pending.pop_front();
        }
    }
    if (c->cmdStage.empty())
        return true;
    Batch b;
    b.conn = c;
    b.cmds = std::move(c->cmdStage);
    const auto sz = static_cast<std::uint64_t>(b.cmds.size());
    if (requests_->tryPush(std::move(b))) {
        c->inFlight = true;
        st_.batchCmds.record(sz);
        return true;
    }
    // Ring full: tryPush left the batch intact — keep it staged and
    // let the caller park the connection (backpressure, not loss).
    c->cmdStage = std::move(b.cmds);
    return false;
}

void
McServer::dispatch(const ConnPtr &c)
{
    if (c->fd >= 0 && !tryDispatch(c) && !c->deferred) {
        c->deferred = true;
        deferred_.push_back(c);
        st_.stalls++;
    }
    updateMask(c);
}

void
McServer::retryDeferred()
{
    for (auto it = deferred_.begin(); it != deferred_.end();) {
        const ConnPtr c = *it;
        if (c->fd < 0) {
            c->deferred = false;
            it = deferred_.erase(it);
            continue;
        }
        if (!tryDispatch(c))
            break; // ring still full: keep FIFO order, stop here
        c->deferred = false;
        it = deferred_.erase(it);
        updateMask(c);
    }
}

void
McServer::drainCompletions()
{
    Completion comp;
    while (completions_->tryPop(comp)) {
        const ConnPtr c = std::move(comp.conn);
        c->inFlight = false;
        if (c->fd < 0)
            continue; // closed while the batch was in flight
        flushOut(c);
        dispatch(c);
        maybeFinish(c);
    }
}

void
McServer::flushOut(const ConnPtr &c)
{
    {
        CapLockGuard g(c->outMu, lockrank::server);
        if (!c->out.empty()) {
            c->wbuf.append(c->out);
            c->out.clear();
        }
    }
    while (c->wOff < c->wbuf.size()) {
        const ssize_t n = ::write(c->fd, c->wbuf.data() + c->wOff,
                                  c->wbuf.size() - c->wOff);
        if (n > 0) {
            c->wOff += static_cast<std::size_t>(n);
            st_.bytesOut += static_cast<std::uint64_t>(n);
            continue;
        }
        if (errno == EINTR)
            continue;
        if (errno != EAGAIN && errno != EWOULDBLOCK)
            c->broken = true;
        break;
    }
    if (c->wOff == c->wbuf.size()) {
        c->wbuf.clear();
        c->wOff = 0;
    }
    updateMask(c);
}

void
McServer::connWritable(const ConnPtr &c) { flushOut(c); }

void
McServer::updateMask(const ConnPtr &c)
{
    if (c->fd < 0)
        return;
    std::uint32_t mask = 0;
    // Reads pause under backpressure (a staged batch the ring refused
    // or a full pending queue) and once the connection is ending —
    // TCP's receive window then pushes back on the client.
    const bool paused = !c->cmdStage.empty() ||
                        c->pending.size() >= cfg_.maxPending ||
                        c->quitAfter || c->sawEof || c->broken;
    if (!paused)
        mask |= EPOLLIN;
    if (c->wOff < c->wbuf.size())
        mask |= EPOLLOUT;
    if (mask == c->epollMask)
        return;
    epoll_event ev{};
    ev.events = mask;
    ev.data.fd = c->fd;
    ::epoll_ctl(epollFd_, EPOLL_CTL_MOD, c->fd, &ev);
    c->epollMask = mask;
}

void
McServer::maybeFinish(const ConnPtr &c)
{
    if (c->fd < 0)
        return;
    if (c->broken) {
        closeConn(c);
        return;
    }
    if (!c->quitAfter && !c->sawEof)
        return;
    if (c->inFlight || !c->cmdStage.empty() || !c->pending.empty())
        return;
    if (c->wOff < c->wbuf.size())
        return; // responses still draining to the socket
    {
        CapLockGuard g(c->outMu, lockrank::server);
        if (!c->out.empty())
            return; // a completion beat us; its drain will finish
    }
    closeConn(c);
}

void
McServer::closeConn(const ConnPtr &c)
{
    if (c->fd < 0)
        return;
    ::epoll_ctl(epollFd_, EPOLL_CTL_DEL, c->fd, nullptr);
    ::close(c->fd);
    conns_.erase(c->fd);
    c->fd = -1;
    connsOpen_.fetch_sub(1, std::memory_order_relaxed);
    st_.closed++;
    // A deferred_ entry for this conn is dropped lazily by
    // retryDeferred(); the shared_ptr keeps the carcass valid.
}

void
McServer::drainOnStop()
{
    // Answer work already accepted: wait (bounded) for in-flight
    // batches, flushing as completions land.
    for (int spin = 0; spin < 200; ++spin) {
        drainCompletions();
        bool busy = false;
        for (const auto &[fd, c] : conns_)
            if (c->inFlight) {
                busy = true;
                break;
            }
        if (!busy)
            break;
        epoll_event ev;
        ::epoll_wait(epollFd_, &ev, 1, 10);
        std::uint64_t tick;
        while (::read(eventFd_, &tick, sizeof tick) > 0) {
        }
    }
    std::vector<ConnPtr> open;
    open.reserve(conns_.size());
    for (const auto &[fd, c] : conns_)
        open.push_back(c);
    for (const ConnPtr &c : open) {
        flushOut(c);
        closeConn(c);
    }
    conns_.clear();
    deferred_.clear();
}

// ---------------------------------------------------------------------
// Workers
// ---------------------------------------------------------------------

void
McServer::workerLoop(unsigned)
{
    // Paper §4.4: one iterator register per serving thread; every GET
    // reloads it, taking a fresh snapshot that concurrent SET commits
    // cannot tear. The register's references die with this scope, so
    // worker exit leaves the heap audit-clean.
    IteratorRegister it(store_.heap().mem, store_.heap().vsm);
    unsigned idle = 0;
    for (;;) {
        Batch b;
        if (!requests_->tryPop(b)) {
            // stop() only clears the flag after the net thread has
            // drained every in-flight batch, so flag-clear implies an
            // empty ring: no final re-check needed.
            if (!workersRun_.load(std::memory_order_relaxed))
                break;
            idleBackoff(idle);
            continue;
        }
        idle = 0;
        std::string resp;
        for (const McCommand &cmd : b.cmds)
            execute(cmd, it, resp);
        {
            // Terminal-rank lock: held for the append only. The
            // responses above were fully materialized first — a heap
            // call here would invert the §7 order and fail the
            // thread-safety build.
            CapLockGuard g(b.conn->outMu, lockrank::server);
            b.conn->out.append(resp);
        }
        const bool pushed =
            completions_->tryPush(Completion{std::move(b.conn)});
        HICAMP_ASSERT(pushed,
                      "completion ring overflow: sized >= maxConns, "
                      "one in-flight batch per connection");
        wakeNet();
    }
}

void
McServer::execute(const McCommand &cmd, IteratorRegister &it,
                  std::string &resp)
{
    using Op = McCommand::Op;
    switch (cmd.op) {
      case Op::Get: {
        st_.cmdGet++;
        for (const std::string &key : cmd.ownedKeys) {
            auto v = store_.get(it, key);
            if (!v) {
                st_.misses++;
                continue;
            }
            st_.hits++;
            resp += "VALUE ";
            resp += key;
            resp += ' ';
            resp += std::to_string(v->flags);
            resp += ' ';
            resp += std::to_string(v->data.size());
            resp += "\r\n";
            resp += v->data;
            resp += "\r\n";
        }
        resp += resp::kEnd;
        break;
      }
      case Op::Set:
      case Op::Add:
      case Op::Replace: {
        st_.cmdSet++;
        std::string_view verdict;
        try {
            const std::string &key = cmd.ownedKeys.front();
            if (cmd.op == Op::Set) {
                store_.set(key, cmd.flags, cmd.ownedData);
                verdict = resp::kStored;
            } else if (cmd.op == Op::Add) {
                verdict = store_.add(key, cmd.flags, cmd.ownedData)
                              ? resp::kStored
                              : resp::kNotStored;
            } else {
                verdict =
                    store_.replace(key, cmd.flags, cmd.ownedData)
                        ? resp::kStored
                        : resp::kNotStored;
            }
        } catch (const MemPressureError &) {
            // Graceful degradation: this request failed, the
            // connection and the server carry on.
            st_.oom++;
            verdict = resp::kOom;
        }
        if (!cmd.noreply)
            resp += verdict;
        break;
      }
      case Op::Delete: {
        st_.cmdDelete++;
        std::string_view verdict;
        try {
            verdict = store_.erase(cmd.ownedKeys.front())
                          ? resp::kDeleted
                          : resp::kNotFound;
        } catch (const MemPressureError &) {
            st_.oom++;
            verdict = resp::kOom;
        }
        if (!cmd.noreply)
            resp += verdict;
        break;
      }
      case Op::Incr:
      case Op::Decr: {
        st_.cmdArith++;
        std::string line;
        try {
            std::uint64_t value = 0;
            switch (store_.arith(cmd.ownedKeys.front(), cmd.delta,
                                 cmd.op == Op::Incr, value)) {
              case McStore::ArithStatus::Ok:
                line = std::to_string(value) + "\r\n";
                break;
              case McStore::ArithStatus::NotFound:
                line = std::string(resp::kNotFound);
                break;
              case McStore::ArithStatus::NotNumber:
                line = "CLIENT_ERROR cannot increment or decrement "
                       "non-numeric value\r\n";
                break;
            }
        } catch (const MemPressureError &) {
            st_.oom++;
            line = std::string(resp::kOom);
        }
        if (!cmd.noreply)
            resp += line;
        break;
      }
      case Op::Stats: {
        const auto stat = [&resp](std::string_view k,
                                  std::uint64_t v) {
            resp += "STAT ";
            resp += k;
            resp += ' ';
            resp += std::to_string(v);
            resp += "\r\n";
        };
        stat("cmd_get", st_.cmdGet.value());
        stat("cmd_set", st_.cmdSet.value());
        stat("get_hits", st_.hits.value());
        stat("get_misses", st_.misses.value());
        stat("oom_errors", st_.oom.value());
        stat("bytes_read", st_.bytesIn.value());
        stat("bytes_written", st_.bytesOut.value());
        stat("curr_connections",
             connsOpen_.load(std::memory_order_relaxed));
        resp += resp::kEnd;
        break;
      }
      case Op::Version:
        resp += "VERSION hicamp-mc 1.0\r\n";
        break;
      case Op::Quit:
        break; // consumed at parse time; never reaches a worker
      case Op::BadLine:
        st_.cmdBad++;
        resp += cmd.error;
        break;
    }
}

} // namespace hicamp::server
