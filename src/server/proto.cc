/**
 * @file
 * Incremental memcached text-protocol parser (see proto.hh for the
 * contract). The good path never consumes a partial command: a
 * storage command whose data block is not fully buffered re-parses
 * from scratch on the next read, which keeps the parser stateless for
 * well-formed traffic. The one piece of cross-read state is the drain
 * of a *doomed* data block (oversized key, malformed arguments): its
 * bytes may exceed what we are willing to buffer, so they are
 * swallowed incrementally and the error response is emitted once the
 * stream is back in sync.
 */

#include "server/proto.hh"

#include <charconv>

namespace hicamp::server {

namespace {

/** Split the next space-delimited token off @p s (memcached allows
 *  runs of spaces between fields). Empty view when exhausted. */
std::string_view
nextToken(std::string_view &s)
{
    std::size_t b = 0;
    while (b < s.size() && s[b] == ' ')
        ++b;
    std::size_t e = b;
    while (e < s.size() && s[e] != ' ')
        ++e;
    std::string_view tok = s.substr(b, e - b);
    s.remove_prefix(e);
    return tok;
}

template <typename UInt>
bool
parseUInt(std::string_view tok, UInt &out)
{
    if (tok.empty())
        return false;
    auto [p, ec] =
        std::from_chars(tok.data(), tok.data() + tok.size(), out);
    return ec == std::errc() && p == tok.data() + tok.size();
}

McCommand
badLine(std::string_view response)
{
    McCommand c;
    c.op = McCommand::Op::BadLine;
    c.error.assign(response.data(), response.size());
    return c;
}

constexpr std::string_view kBadFormat =
    "CLIENT_ERROR bad command line format\r\n";
constexpr std::string_view kBadChunk =
    "CLIENT_ERROR bad data chunk\r\n";
constexpr std::string_view kTooLarge =
    "SERVER_ERROR object too large for cache\r\n";

} // namespace

ParseResult
ProtoParser::step(std::string_view buf, std::size_t &consumed,
                  McCommand &out)
{
    consumed = 0;

    // Finish swallowing a doomed data block before looking at bytes
    // as protocol again.
    if (drainLeft_ > 0) {
        const std::size_t eat = std::min(drainLeft_, buf.size());
        drainLeft_ -= eat;
        consumed = eat;
        if (drainLeft_ > 0)
            return ParseResult::NeedMore;
        out = badLine(drainError_);
        drainError_.clear();
        return ParseResult::Ok;
    }

    // One command per line; accept \r\n (protocol) and tolerate bare
    // \n from sloppy clients rather than desynchronizing on it.
    const std::size_t nl = buf.find('\n');
    if (nl == std::string_view::npos) {
        if (buf.size() > kMaxLineBytes)
            return ParseResult::Fatal; // can never resynchronize
        return ParseResult::NeedMore;
    }
    if (nl > kMaxLineBytes)
        return ParseResult::Fatal;

    std::string_view line = buf.substr(0, nl);
    if (!line.empty() && line.back() == '\r')
        line.remove_suffix(1);
    return parseLine(line, buf.substr(nl + 1), nl + 1, consumed, out);
}

ParseResult
ProtoParser::parseLine(std::string_view line, std::string_view rest,
                       std::size_t line_consumed,
                       std::size_t &consumed, McCommand &out)
{
    std::string_view s = line;
    const std::string_view cmd = nextToken(s);

    const bool is_get = cmd == "get" || cmd == "gets";
    const bool is_store =
        cmd == "set" || cmd == "add" || cmd == "replace";
    const bool is_arith = cmd == "incr" || cmd == "decr";

    if (is_get) {
        out = McCommand{};
        out.op = McCommand::Op::Get;
        for (;;) {
            std::string_view key = nextToken(s);
            if (key.empty())
                break;
            if (key.size() > kMaxKeyBytes) {
                out = badLine(kBadFormat);
                consumed = line_consumed;
                return ParseResult::Ok;
            }
            out.keys.push_back(key);
        }
        if (out.keys.empty())
            out = badLine(resp::kError);
        consumed = line_consumed;
        return ParseResult::Ok;
    }

    if (is_store) {
        std::string_view key = nextToken(s);
        std::uint32_t flags = 0, exptime = 0;
        std::uint64_t bytes = 0;
        const bool args_ok = !key.empty() &&
                             parseUInt(nextToken(s), flags) &&
                             parseUInt(nextToken(s), exptime) &&
                             parseUInt(nextToken(s), bytes);
        std::string_view tail = nextToken(s);
        const bool noreply = tail == "noreply";
        const bool tail_ok = tail.empty() || noreply;

        if (!args_ok) {
            // The announced block size is unknowable: answer now and
            // hope the client did not send one (memcached does the
            // same — a stray block then parses as garbage commands,
            // each answered with ERROR, and the stream re-syncs at
            // the next real command line).
            out = badLine(kBadFormat);
            consumed = line_consumed;
            return ParseResult::Ok;
        }

        std::string_view doom; // non-empty: swallow block, then err
        if (!tail_ok || key.size() > kMaxKeyBytes)
            doom = kBadFormat;
        else if (bytes > kMaxValueBytes)
            doom = kTooLarge;

        if (!doom.empty()) {
            const std::size_t block = bytes + 2; // incl CRLF
            if (rest.size() >= block) {
                out = badLine(doom);
                consumed = line_consumed + block;
            } else {
                drainLeft_ = block - rest.size();
                drainError_.assign(doom.data(), doom.size());
                consumed = line_consumed + rest.size();
                return ParseResult::NeedMore;
            }
            return ParseResult::Ok;
        }

        // Good command: wait until the whole block (and its CRLF) is
        // buffered, then hand out a zero-copy view of it.
        if (rest.size() < bytes + 2)
            return ParseResult::NeedMore; // consumed stays 0
        out = McCommand{};
        out.op = cmd == "set"   ? McCommand::Op::Set
                 : cmd == "add" ? McCommand::Op::Add
                                : McCommand::Op::Replace;
        out.keys.push_back(key);
        out.flags = flags;
        out.exptime = exptime;
        out.noreply = noreply;
        out.data = rest.substr(0, bytes);
        consumed = line_consumed + bytes + 2;
        if (rest[bytes] != '\r' || rest[bytes + 1] != '\n') {
            // Client lied about the size; the stream is suspect but
            // memcached stays up: reject the chunk, keep parsing.
            out = badLine(kBadChunk);
        }
        return ParseResult::Ok;
    }

    if (cmd == "delete" || is_arith) {
        std::string_view key = nextToken(s);
        std::uint64_t delta = 0;
        bool ok = !key.empty() && key.size() <= kMaxKeyBytes;
        if (is_arith)
            ok = ok && parseUInt(nextToken(s), delta);
        std::string_view tail = nextToken(s);
        const bool noreply = tail == "noreply";
        ok = ok && (tail.empty() || noreply);
        if (!ok) {
            out = badLine(is_arith
                              ? std::string_view(
                                    "CLIENT_ERROR invalid numeric "
                                    "delta argument\r\n")
                              : kBadFormat);
        } else {
            out = McCommand{};
            out.op = cmd == "delete" ? McCommand::Op::Delete
                     : cmd == "incr" ? McCommand::Op::Incr
                                     : McCommand::Op::Decr;
            out.keys.push_back(key);
            out.delta = delta;
            out.noreply = noreply;
        }
        consumed = line_consumed;
        return ParseResult::Ok;
    }

    out = McCommand{};
    if (cmd == "stats") {
        out.op = McCommand::Op::Stats;
    } else if (cmd == "version") {
        out.op = McCommand::Op::Version;
    } else if (cmd == "quit") {
        out.op = McCommand::Op::Quit;
    } else {
        // Unknown command — including the empty line.
        out = badLine(resp::kError);
    }
    consumed = line_consumed;
    return ParseResult::Ok;
}

} // namespace hicamp::server
