/**
 * @file
 * Bounded MPMC ring for the network/worker handoff (DESIGN.md §14).
 *
 * The ck_ring-shaped queue in the Vyukov bounded-MPMC style: a
 * power-of-two slot array where each slot carries its own sequence
 * word. Producers claim a slot by CASing the tail cursor, fill it,
 * and *publish* it with a release store of the slot's sequence;
 * consumers acquire-load that sequence, claim with a CAS on the head
 * cursor, drain the payload and recycle the slot for the producer one
 * lap ahead. Nothing ever blocks and no mutex exists on the handoff —
 * the partially-cache-coherent-index guideline the serving front-end
 * follows (PAPERS.md, arXiv 2511.06460): cross-thread communication
 * through explicit publication points only.
 *
 * Memory-order roles (§13): the cursors are claim-CAS words — a
 * successful CAS only *reserves* an index; it publishes nothing, so
 * relaxed success order is correct and the slot sequence carries all
 * ordering. Each slot's sequence word is a publish field: its release
 * store makes the payload visible, the paired acquire load on the
 * other side receives it.
 *
 * Capacity is fixed at construction; tryPush/tryPop fail fast instead
 * of waiting, which is what the server's backpressure builds on: a
 * full request ring parks the connection's batch until a worker
 * drains (never drops), and the completion ring is sized so it cannot
 * fill (at most one in-flight batch per connection).
 */

#ifndef HICAMP_SERVER_RING_HH
#define HICAMP_SERVER_RING_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>

#include "common/atomic_annotations.hh"
#include "common/logging.hh"

namespace hicamp::server {

template <typename T>
class MpmcRing
{
  public:
    /** @param capacity slot count; rounded up to a power of two. */
    explicit MpmcRing(std::size_t capacity)
    {
        std::size_t cap = 2;
        while (cap < capacity)
            cap <<= 1;
        mask_ = cap - 1;
        slots_ = std::make_unique<Slot[]>(cap);
        // hicamp-atomic: waive(pre-publication init: the ring is not
        // shared until the constructor returns, and handing the ring
        // to another thread provides the ordering)
        for (std::size_t i = 0; i < cap; ++i)
            slots_[i].seq.store(i, std::memory_order_relaxed);
    }

    MpmcRing(const MpmcRing &) = delete;
    MpmcRing &operator=(const MpmcRing &) = delete;

    std::size_t capacity() const { return mask_ + 1; }

    /**
     * Enqueue by move; returns false (leaving @p v intact) when the
     * ring is full. Lock-free: a stalled producer never blocks other
     * producers or any consumer.
     */
    bool
    tryPush(T &&v)
    {
        std::uint64_t pos = tail_.load(std::memory_order_relaxed);
        for (;;) {
            Slot &s = slots_[pos & mask_];
            const std::uint64_t seq =
                s.seq.load(std::memory_order_acquire);
            const std::int64_t dif =
                static_cast<std::int64_t>(seq) -
                static_cast<std::int64_t>(pos);
            if (dif == 0) {
                // Slot free at our lap: reserve it. Relaxed success
                // is correct for a pure index reservation — the
                // slot-sequence release below publishes the payload.
                if (tail_.compare_exchange_weak(
                        pos, pos + 1, std::memory_order_relaxed,
                        std::memory_order_relaxed)) {
                    s.value = std::move(v);
                    s.seq.store(pos + 1, std::memory_order_release);
                    return true;
                }
            } else if (dif < 0) {
                return false; // full: consumer a whole lap behind
            } else {
                pos = tail_.load(std::memory_order_relaxed);
            }
        }
    }

    /** Dequeue into @p out; false when the ring is empty. */
    bool
    tryPop(T &out)
    {
        std::uint64_t pos = head_.load(std::memory_order_relaxed);
        for (;;) {
            Slot &s = slots_[pos & mask_];
            const std::uint64_t seq =
                s.seq.load(std::memory_order_acquire);
            const std::int64_t dif =
                static_cast<std::int64_t>(seq) -
                static_cast<std::int64_t>(pos + 1);
            if (dif == 0) {
                if (head_.compare_exchange_weak(
                        pos, pos + 1, std::memory_order_relaxed,
                        std::memory_order_relaxed)) {
                    out = std::move(s.value);
                    s.value = T{};
                    // Recycle for the producer one lap ahead; release
                    // publishes the drained slot state.
                    s.seq.store(pos + mask_ + 1,
                                std::memory_order_release);
                    return true;
                }
            } else if (dif < 0) {
                return false; // empty (or producer mid-publish)
            } else {
                pos = head_.load(std::memory_order_relaxed);
            }
        }
    }

    /** Approximate occupancy (racy by nature; for gauges only). */
    std::size_t
    sizeApprox() const
    {
        const std::uint64_t t = tail_.load(std::memory_order_relaxed);
        const std::uint64_t h = head_.load(std::memory_order_relaxed);
        return t >= h ? static_cast<std::size_t>(t - h) : 0;
    }

  private:
    struct Slot {
        /// Publication word of this slot: release-stored after the
        /// payload write, acquire-loaded before the payload read.
        HICAMP_ATOMIC_PUBLISH std::atomic<std::uint64_t> seq{0};
        T value{};
        // Payload and sequence share the slot; the cursors below are
        // padded so producers and consumers do not false-share them.
    };

    std::unique_ptr<Slot[]> slots_;
    std::size_t mask_ = 0;
    /// Producer cursor: CAS reserves an index, publishes nothing.
    alignas(64) HICAMP_ATOMIC_CLAIM_CAS std::atomic<std::uint64_t>
        tail_{0};
    /// Consumer cursor: same reservation-only contract.
    alignas(64) HICAMP_ATOMIC_CLAIM_CAS std::atomic<std::uint64_t>
        head_{0};
};

} // namespace hicamp::server

#endif // HICAMP_SERVER_RING_HH
