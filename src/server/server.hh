/**
 * @file
 * McServer — the networked memcached-text-protocol front-end over the
 * HICAMP heap (DESIGN.md §14, paper §4.4).
 *
 * Thread shape: one network thread owns the epoll loop, every socket,
 * and all per-connection parse state; N worker threads own the heap
 * work. The two sides meet at a pair of bounded MPMC rings
 * (server/ring.hh) plus one eventfd:
 *
 *   net --[Batch: conn + parsed commands]--> request ring --> workers
 *   workers --[append under conn output lock; Completion]--> net
 *
 * At most one batch per connection is in flight, which preserves
 * memcached's response ordering with no reorder buffer while separate
 * connections scale across workers. A full request ring is
 * backpressure, never loss: the connection's batch stays staged, its
 * socket stops being read (TCP pushes back on the client), and the
 * next completion retries the handoff.
 *
 * Workers never touch a socket and the network thread never touches
 * the heap. The only shared mutable state is each connection's output
 * buffer, guarded by a CapMutex at the terminal `lockrank::server`
 * rank: heap calls under that lock invert the declared §7 order and
 * fail the thread-safety build.
 *
 * Memory pressure degrades per-request: a MemPressureError inside a
 * command answers "SERVER_ERROR out of memory" on that request alone;
 * the connection, the batch, and the process all carry on.
 */

#ifndef HICAMP_SERVER_SERVER_HH
#define HICAMP_SERVER_SERVER_HH

#include <atomic>
#include <cstdint>
#include <deque>
#include <list>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/thread_annotations.hh"
#include "obs/metrics.hh"
#include "server/proto.hh"
#include "server/ring.hh"
#include "server/store.hh"

namespace hicamp::server {

struct ServerConfig {
    std::string host = "127.0.0.1";
    std::uint16_t port = 0; ///< 0 = ephemeral (see McServer::port())
    unsigned workers = 1;
    std::size_t maxConns = 1024;
    std::size_t ringSlots = 256;  ///< request-ring capacity
    std::size_t maxBatch = 64;    ///< commands per worker handoff
    std::size_t maxPending = 1024; ///< parsed-but-unsent cap per conn
};

class McServer
{
  public:
    /** @p store outlives the server; the heap it wraps is shared. */
    McServer(McStore &store, ServerConfig cfg = {});
    ~McServer();

    McServer(const McServer &) = delete;
    McServer &operator=(const McServer &) = delete;

    /** Bind, listen, and spawn the network + worker threads. */
    void start();

    /** Graceful: stop accepting, drain in-flight batches, flush
     *  pending responses, close every socket, join all threads.
     *  Idempotent; also run by the destructor. */
    void stop();

    /** The bound port (resolves an ephemeral request). */
    std::uint16_t port() const { return port_; }

    bool running() const
    {
        return running_.load(std::memory_order_relaxed);
    }

    /** The server's observability surface ("server." namespace). */
    obs::MetricsRegistry &metrics() { return metrics_; }

  private:
    struct Conn;
    using ConnPtr = std::shared_ptr<Conn>;

    /** One handoff unit: a slice of parsed commands for one conn. */
    struct Batch {
        ConnPtr conn;
        std::vector<McCommand> cmds;
    };

    /** Worker -> net: "this connection has fresh output". */
    struct Completion {
        ConnPtr conn;
    };

    /** Cached references to the registry-owned hot-path tallies (the
     *  registry hands out stable references; caching skips its lookup
     *  lock on every bump — per-connection stats never serialize). */
    struct Stats {
        explicit Stats(obs::MetricsRegistry &m);
        ShardedCounter &accepted, &closed, &rejected;
        ShardedCounter &cmdGet, &cmdSet, &cmdDelete, &cmdArith,
            &cmdBad;
        ShardedCounter &hits, &misses, &oom;
        ShardedCounter &bytesIn, &bytesOut, &stalls;
        obs::Log2Histogram &batchCmds;
    };

    void netLoop();
    void workerLoop(unsigned idx);

    void acceptReady();
    void connReadable(const ConnPtr &c);
    void connWritable(const ConnPtr &c);
    void parseAndStage(const ConnPtr &c);
    void dispatch(const ConnPtr &c);
    bool tryDispatch(const ConnPtr &c);
    void retryDeferred();
    void drainCompletions();
    void flushOut(const ConnPtr &c);
    void maybeFinish(const ConnPtr &c);
    void closeConn(const ConnPtr &c);
    void updateMask(const ConnPtr &c);
    void wakeNet();
    void drainOnStop();

    /** Execute one command, appending its response to @p resp. */
    void execute(const McCommand &cmd, IteratorRegister &it,
                 std::string &resp);

    McStore &store_;
    ServerConfig cfg_;
    obs::MetricsRegistry metrics_;
    Stats st_;

    /// Open-connection level, bumped by the net thread, read by the
    /// registry gauge (module-local accessor lambda).
    HICAMP_ATOMIC_COUNTER std::atomic<std::uint64_t> connsOpen_{0};

    int listenFd_ = -1;
    int epollFd_ = -1;
    int eventFd_ = -1;
    std::uint16_t port_ = 0;

    /// Lifecycle words. All-relaxed FLAG use is sound: every
    /// transition is followed by an eventfd write (a syscall the
    /// sleeping side orders against) and thread join provides the
    /// final happens-before at shutdown.
    HICAMP_ATOMIC_FLAG std::atomic<bool> running_{false};
    HICAMP_ATOMIC_FLAG std::atomic<bool> workersRun_{false};

    std::unique_ptr<MpmcRing<Batch>> requests_;
    std::unique_ptr<MpmcRing<Completion>> completions_;

    /// Net-thread-only connection table and backpressure queue.
    std::unordered_map<int, ConnPtr> conns_;
    std::list<ConnPtr> deferred_;

    std::thread netThread_;
    std::vector<std::thread> workers_;
};

} // namespace hicamp::server

#endif // HICAMP_SERVER_SERVER_HH
