/**
 * @file
 * Incremental memcached text-protocol parser (DESIGN.md §14).
 *
 * The parser runs over the connection's receive buffer *in place*: it
 * consumes bytes and produces McCommand records whose key/data fields
 * are std::string_view windows into that buffer — no copy happens at
 * parse time. The single unavoidable copy (crossing the thread
 * boundary into the worker batch) is taken explicitly by the caller
 * via McCommand::own() once per command.
 *
 * It is resumable at every byte: a command line or data block split
 * across any number of reads ("torn reads") parses identically to one
 * arriving whole, because the parser never consumes a partial
 * command — it returns NeedMore and is re-run when more bytes land.
 *
 * Malformed traffic degrades per the memcached protocol instead of
 * killing the connection: an unknown command answers "ERROR\r\n", bad
 * arguments and oversized keys answer "CLIENT_ERROR ...\r\n" (for
 * storage commands the announced data block is still swallowed so the
 * stream stays in sync), and only an unterminated line longer than
 * kMaxLineBytes — a stream that can never resynchronize — asks the
 * caller to close the connection.
 */

#ifndef HICAMP_SERVER_PROTO_HH
#define HICAMP_SERVER_PROTO_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace hicamp::server {

/** memcached's protocol limits. */
constexpr std::size_t kMaxKeyBytes = 250;
/** A command line that exceeds this without a terminator is garbage
 *  we can never resync from; the connection must close. */
constexpr std::size_t kMaxLineBytes = 8192;
/** Largest accepted value block (memcached's classic 1 MB default). */
constexpr std::size_t kMaxValueBytes = 1u << 20;

/** One parsed client command. Views point into the receive buffer and
 *  are valid only until the next feed/consume; own() materializes
 *  them (the one copy, taken when crossing to a worker). */
struct McCommand {
    enum class Op : std::uint8_t {
        Get,     ///< get/gets with one or more keys
        Set,
        Add,
        Replace,
        Delete,
        Incr,
        Decr,
        Stats,
        Version,
        Quit,
        /// protocol error: emit `error` verbatim, keep the stream
        BadLine,
    };

    Op op = Op::BadLine;
    std::vector<std::string_view> keys; ///< get: all keys; others: [0]
    std::string_view data;              ///< set/add/replace payload
    std::uint32_t flags = 0;
    std::uint32_t exptime = 0; ///< parsed, stored, not enforced
    std::uint64_t delta = 0;   ///< incr/decr amount
    bool noreply = false;
    std::string error; ///< BadLine: the full response line to emit

    /// Owned copies of the views (filled by own()).
    std::vector<std::string> ownedKeys;
    std::string ownedData;

    /** Copy the buffer views into owned storage; after this the
     *  command survives buffer compaction and thread handoff. */
    void
    own()
    {
        ownedKeys.reserve(keys.size());
        for (auto k : keys)
            ownedKeys.emplace_back(k);
        keys.clear();
        ownedData.assign(data.data(), data.size());
        data = {};
    }
};

/** Parser verdict for one step. */
enum class ParseResult : std::uint8_t {
    Ok,       ///< one command produced, bytes consumed
    NeedMore, ///< no full command in the buffer yet
    Fatal,    ///< unresynchronizable stream: close the connection
};

/**
 * Incremental parser state for one connection. step() is fed the
 * unconsumed window of the receive buffer and reports how many bytes
 * it consumed; the connection discards consumed bytes at its leisure
 * (compaction), so a pipelined burst parses with zero intermediate
 * copies.
 */
class ProtoParser
{
  public:
    /**
     * Try to parse one command from @p buf.
     *
     * @param buf       unconsumed receive bytes
     * @param consumed  out: bytes eaten from the front of @p buf
     * @param out       out: the parsed command when Ok
     */
    ParseResult step(std::string_view buf, std::size_t &consumed,
                     McCommand &out);

  private:
    ParseResult parseLine(std::string_view line, std::string_view rest,
                          std::size_t line_consumed,
                          std::size_t &consumed, McCommand &out);

    /// A doomed storage command (oversized key, bad arguments) still
    /// announced a data block; those bytes are swallowed — possibly
    /// across many reads — so the stream stays in sync, and the error
    /// is emitted once the drain completes.
    std::size_t drainLeft_ = 0; ///< data-block bytes left to swallow
    std::string drainError_;    ///< response to emit once drained
};

/** Well-formed single-word responses, shared by server and tests. */
namespace resp {
inline constexpr std::string_view kStored = "STORED\r\n";
inline constexpr std::string_view kNotStored = "NOT_STORED\r\n";
inline constexpr std::string_view kDeleted = "DELETED\r\n";
inline constexpr std::string_view kNotFound = "NOT_FOUND\r\n";
inline constexpr std::string_view kEnd = "END\r\n";
inline constexpr std::string_view kError = "ERROR\r\n";
inline constexpr std::string_view kOom =
    "SERVER_ERROR out of memory\r\n";
} // namespace resp

} // namespace hicamp::server

#endif // HICAMP_SERVER_PROTO_HH
