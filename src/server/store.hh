/**
 * @file
 * McStore — the server's storage engine: memcached item semantics
 * (value + 32-bit client flags) over the sharded HICAMP map.
 *
 * The paper's §4.4 memcached sketch maps directly: each item is a
 * content-unique HString, the key space is an HShardedMap (per-shard
 * VSIDs, so commits to different shards never contend), GETs read a
 * point-in-time snapshot through an iterator register the calling
 * worker owns, and SETs commit through merge-update. The client's
 * opaque flags word rides as a fixed 4-byte prefix on the value
 * segment — equal payloads with equal flags still dedup to one
 * segment, and the prefix costs one line at most.
 *
 * Memory pressure is the caller's protocol concern: set/add/replace
 * propagate MemPressureError (after HMap's leak-free unwind) and the
 * server maps it to a per-request "SERVER_ERROR out of memory",
 * never a crash.
 */

#ifndef HICAMP_SERVER_STORE_HH
#define HICAMP_SERVER_STORE_HH

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "lang/hsharded_map.hh"

namespace hicamp::server {

/** A decoded item: client flags + payload bytes. */
struct McValue {
    std::uint32_t flags = 0;
    std::string data;
};

class McStore
{
  public:
    explicit McStore(Hicamp &hc, unsigned shard_bits = 4)
        : hc_(hc), map_(hc, shard_bits)
    {
    }

    /** Unconditional store. Throws MemPressureError when the heap
     *  cannot take the item (caller answers SERVER_ERROR). */
    void
    set(std::string_view key, std::uint32_t flags,
        std::string_view data)
    {
        HString k(hc_, key);
        HString v = encode(flags, data);
        map_.shard(map_.shardOf(k)).set(k, v);
    }

    /** memcached "add": store only if absent. */
    bool
    add(std::string_view key, std::uint32_t flags,
        std::string_view data)
    {
        HString k(hc_, key);
        HString v = encode(flags, data);
        return map_.shard(map_.shardOf(k)).add(k, v);
    }

    /** memcached "replace": store only if present. */
    bool
    replace(std::string_view key, std::uint32_t flags,
            std::string_view data)
    {
        HString k(hc_, key);
        HString v = encode(flags, data);
        return map_.shard(map_.shardOf(k)).replace(k, v);
    }

    /**
     * Snapshot read through the caller's iterator register (paper
     * §4.4: one register per client-serving thread; the register
     * reloads per command, taking a fresh snapshot that concurrent
     * SET commits cannot tear).
     */
    std::optional<McValue>
    get(IteratorRegister &it, std::string_view key)
    {
        HString k(hc_, key);
        auto v = map_.shard(map_.shardOf(k)).getWith(it, k);
        if (!v)
            return std::nullopt;
        return decode(*v);
    }

    bool
    erase(std::string_view key)
    {
        HString k(hc_, key);
        return map_.shard(map_.shardOf(k)).erase(k);
    }

    enum class ArithStatus : std::uint8_t { Ok, NotFound, NotNumber };

    /**
     * memcached incr/decr: the value must be an ASCII uint64. Incr
     * wraps at 2^64 (protocol behaviour), decr saturates at zero.
     * Atomic via value-conditional commit: losing a race with a
     * concurrent writer re-reads and retries, so no update is lost.
     */
    ArithStatus
    arith(std::string_view key, std::uint64_t delta, bool incr,
          std::uint64_t &result)
    {
        HString k(hc_, key);
        HMap &shard = map_.shard(map_.shardOf(k));
        for (;;) {
            auto cur = shard.get(k);
            if (!cur)
                return ArithStatus::NotFound;
            McValue mv = decode(*cur);
            std::uint64_t n = 0;
            if (!parseNumber(mv.data, n))
                return ArithStatus::NotNumber;
            const std::uint64_t nv =
                incr ? n + delta : (n < delta ? 0 : n - delta);
            HString next = encode(mv.flags, std::to_string(nv));
            if (shard.compareAndSet(k, *cur, next)) {
                result = nv;
                return ArithStatus::Ok;
            }
            // Value moved under us (or was deleted): loop re-reads.
        }
    }

    std::uint64_t itemCount() { return map_.size(); }

    Hicamp &heap() { return hc_; }

  private:
    /** Value segment layout: 4-byte little-endian flags, then data. */
    HString
    encode(std::uint32_t flags, std::string_view data)
    {
        std::string raw;
        raw.reserve(4 + data.size());
        for (int i = 0; i < 4; ++i)
            raw.push_back(static_cast<char>((flags >> (8 * i)) & 0xff));
        raw.append(data);
        return HString(hc_, raw);
    }

    static McValue
    decode(const HString &v)
    {
        std::string raw = v.str();
        HICAMP_ASSERT(raw.size() >= 4, "undersized mc value segment");
        McValue mv;
        for (int i = 0; i < 4; ++i)
            mv.flags |= static_cast<std::uint32_t>(
                            static_cast<unsigned char>(raw[i]))
                        << (8 * i);
        mv.data = raw.substr(4);
        return mv;
    }

    static bool
    parseNumber(std::string_view s, std::uint64_t &out)
    {
        if (s.empty() || s.size() > 20)
            return false;
        std::uint64_t n = 0;
        for (char c : s) {
            if (c < '0' || c > '9')
                return false;
            n = n * 10 + static_cast<std::uint64_t>(c - '0');
        }
        out = n;
        return true;
    }

    Hicamp &hc_;
    HShardedMap map_;
};

} // namespace hicamp::server

#endif // HICAMP_SERVER_STORE_HH
