/**
 * @file
 * Single-include public API for the HICAMP library.
 *
 * The paper's primary contribution — the content-unique deduplicating
 * memory system, canonical segment DAGs, iterator registers, the
 * virtual segment map and merge-update — lives in mem/, seg/ and
 * vsm/; the programming model built on it lives in lang/ and the
 * processor model in cpu/. This header pulls in everything a
 * downstream application needs:
 *
 *   #include "core/hicamp.hh"
 *   hicamp::Hicamp hc;
 *   hicamp::HMap map(hc);
 *   ...
 */

#ifndef HICAMP_CORE_HICAMP_HH
#define HICAMP_CORE_HICAMP_HH

// Memory system: content-unique lines, dedup store, caches, traffic.
#include "mem/memory.hh"

// Segments: canonical DAGs, compaction, readers, iterator registers,
// merge-update.
#include "seg/builder.hh"
#include "seg/iterator.hh"
#include "seg/merge.hh"
#include "seg/reader.hh"

// Virtual segment map: VSIDs, snapshots, CAS/mCAS.
#include "vsm/segment_map.hh"

// Programming model.
#include "lang/atomic_heap.hh"
#include "lang/context.hh"
#include "lang/harray.hh"
#include "lang/hmap.hh"
#include "lang/hobject.hh"
#include "lang/hqueue.hh"
#include "lang/hsharded_map.hh"
#include "lang/hstring.hh"
#include "lang/htable.hh"

// Processor model (iterator-register ISA).
#include "cpu/processor.hh"

#endif // HICAMP_CORE_HICAMP_HH
