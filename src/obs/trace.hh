/**
 * @file
 * Per-thread flight recorder: fixed-size ring buffers of compact trace
 * events answering "what did the memory system do between t0 and t1".
 *
 * Compile-time gate: everything behind `-DHICAMP_TRACE=ON` (the CMake
 * option adds the HICAMP_TRACE definition project-wide). When OFF the
 * HICAMP_TRACE_EVENT / HICAMP_TRACE_SCOPE macros expand to ((void)0),
 * the FlightRecorder class is not even declared, and the binary
 * contains no trace symbols (enforced by the obs_trace_symbols_absent
 * ctest). When ON, a runtime category mask (HICAMP_TRACE_MASK) gates
 * each emission behind one relaxed load.
 *
 * Event schema (DESIGN.md §9): {tick, dur, id, bytes, kind, cat, tid}.
 * `tick` is a process-global logical clock (one atomic increment per
 * recorded event) — cross-thread ordering of ticks is the commit order
 * of those increments, not wall time. `id` carries the PLID / VSID /
 * cache key the op touched; `bytes` the payload size when meaningful.
 *
 * Each thread records into its own ring (no sharing on the emit path;
 * a mutex is taken only once per thread to register the ring). Rings
 * are fixed-size and overwrite oldest on wrap; overwritten events are
 * tallied per ring and reported by dropped(). drain() has the same
 * quiescent-point contract as the stats layer: call it when no
 * emitters are running (end of phase, after joins).
 */

#ifndef HICAMP_OBS_TRACE_HH
#define HICAMP_OBS_TRACE_HH

#include <cstdint>

namespace hicamp::obs {

/** Event category — one runtime mask bit each. */
enum class TraceCat : std::uint8_t {
    Mem = 0, ///< memory-system ops (lookup, read, refcount)
    Store,   ///< line store (publish, retire, overflow)
    Cache,   ///< HICAMP + conventional cache hierarchies
    Seg,     ///< segment layer (build, merge, retain/release)
    Vsm,     ///< virtual segment map (commit, snapshot)
    App,     ///< drivers / benches (phase markers)
    NumCats
};

/** What happened. Names must stay in sync with traceKindName(). */
enum class TraceKind : std::uint8_t {
    Lookup = 0,
    ReadLine,
    IncRef,
    DecRef,
    Reclaim,
    Transient,
    VsmTouch,
    Publish,
    Retire,
    OverflowAlloc,
    CacheHit,
    CacheMiss,
    ConvRead,
    ConvWrite,
    Build,
    Retain,
    Release,
    Merge,
    VsmCommit,
    VsmCommitFail,
    VsmSnapshot,
    Phase,
    NumKinds
};

/** Compact fixed-size trace record (32 bytes). */
struct TraceEvent {
    std::uint64_t tick;  ///< logical start time
    std::uint64_t id;    ///< PLID / VSID / key / phase id
    std::uint32_t dur;   ///< logical duration in ticks (0 = instant)
    std::uint32_t bytes; ///< payload size when meaningful
    TraceKind kind;
    TraceCat cat;
    std::uint16_t tid; ///< recorder-assigned thread index
};

const char *traceCatName(TraceCat c);
const char *traceKindName(TraceKind k);

/**
 * Category mask from a spec string: "all", a comma-separated list of
 * category names ("mem,cache"), or a number ("0x15"). Panics on an
 * unknown name — a typo'd mask must fail loudly, not trace nothing.
 */
std::uint32_t traceMaskFor(const char *spec);

} // namespace hicamp::obs

#ifdef HICAMP_TRACE

#include <atomic>
#include <memory>
#include <mutex>
#include <vector>

#include "common/atomic_annotations.hh"

namespace hicamp::obs {

class FlightRecorder
{
  public:
    static FlightRecorder &instance();

    bool
    enabled(TraceCat c) const
    {
        return (mask_.load(std::memory_order_relaxed) >>
                static_cast<unsigned>(c)) &
               1u;
    }

    std::uint32_t mask() const { return mask_.load(std::memory_order_relaxed); }
    void setMask(std::uint32_t m) { mask_.store(m, std::memory_order_relaxed); }

    /** Advance and return the logical clock. */
    std::uint64_t
    nextTick()
    {
        return tick_.fetch_add(1, std::memory_order_relaxed);
    }

    /** Record an instant event stamped with a fresh tick. */
    void
    record(TraceCat cat, TraceKind kind, std::uint64_t id,
           std::uint32_t bytes)
    {
        recordAt(nextTick(), cat, kind, id, bytes, 0);
    }

    /** Record a completed span (TraceScope's destructor path). */
    void recordAt(std::uint64_t tick, TraceCat cat, TraceKind kind,
                  std::uint64_t id, std::uint32_t bytes, std::uint32_t dur);

    std::size_t capacity() const { return capacity_; }

    /**
     * Collect every ring's events in tick order and clear the rings.
     * Quiescent-point contract: no emitters may be running.
     */
    std::vector<TraceEvent> drain();

    /** Events overwritten by ring wrap since the last drain(). */
    std::uint64_t dropped() const;

    /** Total events recorded (including later-overwritten ones). */
    std::uint64_t recorded() const;

    /**
     * Tests only: drop all rings and install a new per-ring capacity.
     * Quiescent-point contract; threads re-register on next emit.
     */
    void resetForTest(std::size_t capacity);

  private:
    struct Ring {
        Ring(std::size_t cap, std::uint16_t tid_in)
            : buf(cap), tid(tid_in)
        {
        }
        std::vector<TraceEvent> buf;
        /// total events this ring ever received; single writer (the
        /// owning thread), relaxed so a racy dropped() read is benign
        HICAMP_ATOMIC_COUNTER std::atomic<std::uint64_t> count{0};
        std::uint16_t tid;
    };

    FlightRecorder();
    Ring &myRing();

    HICAMP_ATOMIC_FLAG std::atomic<std::uint32_t> mask_;
    HICAMP_ATOMIC_COUNTER std::atomic<std::uint64_t> tick_{0};
    std::size_t capacity_;
    /// bumped by resetForTest() to invalidate threads' cached rings
    HICAMP_ATOMIC_PUBLISH std::atomic<std::uint64_t> generation_{1};
    mutable std::mutex mutex_;
    std::vector<std::unique_ptr<Ring>> rings_;
};

/** RAII span: stamps a begin tick, records (dur = end - begin) on exit. */
class TraceScope
{
  public:
    TraceScope(TraceCat cat, TraceKind kind, std::uint64_t id,
               std::uint32_t bytes)
        : cat_(cat), kind_(kind), id_(id), bytes_(bytes),
          armed_(FlightRecorder::instance().enabled(cat)),
          begin_(armed_ ? FlightRecorder::instance().nextTick() : 0)
    {
    }
    ~TraceScope()
    {
        if (!armed_)
            return;
        FlightRecorder &fr = FlightRecorder::instance();
        std::uint64_t end = fr.nextTick();
        fr.recordAt(begin_, cat_, kind_, id_, bytes_,
                    static_cast<std::uint32_t>(end - begin_));
    }
    TraceScope(const TraceScope &) = delete;
    TraceScope &operator=(const TraceScope &) = delete;

  private:
    TraceCat cat_;
    TraceKind kind_;
    std::uint64_t id_;
    std::uint32_t bytes_;
    bool armed_;
    std::uint64_t begin_;
};

} // namespace hicamp::obs

#define HICAMP_OBS_CAT2(a, b) a##b
#define HICAMP_OBS_CAT(a, b) HICAMP_OBS_CAT2(a, b)

#define HICAMP_TRACE_EVENT(cat, kind, id, bytes)                             \
    do {                                                                     \
        ::hicamp::obs::FlightRecorder &hicampFr_ =                           \
            ::hicamp::obs::FlightRecorder::instance();                       \
        if (hicampFr_.enabled(::hicamp::obs::TraceCat::cat))                 \
            hicampFr_.record(::hicamp::obs::TraceCat::cat,                   \
                             ::hicamp::obs::TraceKind::kind,                 \
                             static_cast<std::uint64_t>(id),                 \
                             static_cast<std::uint32_t>(bytes));             \
    } while (0)

#define HICAMP_TRACE_SCOPE(cat, kind, id, bytes)                             \
    ::hicamp::obs::TraceScope HICAMP_OBS_CAT(hicampTraceScope_, __LINE__)(   \
        ::hicamp::obs::TraceCat::cat, ::hicamp::obs::TraceKind::kind,        \
        static_cast<std::uint64_t>(id), static_cast<std::uint32_t>(bytes))

#else // !HICAMP_TRACE

// Zero-cost when off: arguments are not evaluated, no symbols emitted.
#define HICAMP_TRACE_EVENT(cat, kind, id, bytes) ((void)0)
#define HICAMP_TRACE_SCOPE(cat, kind, id, bytes) ((void)0)

#endif // HICAMP_TRACE

#endif // HICAMP_OBS_TRACE_HH
