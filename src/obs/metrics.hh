/**
 * @file
 * Process-wide metrics registry: one named interface over every tally
 * the system keeps (DRAM traffic, cache hit/miss, dedup hits, refcount
 * saturation, VSM commit/retry, contention telemetry, ...).
 *
 * Components either register their existing counters (non-owning, a
 * getter + reset pair, like StatGroup) or ask the registry to own a
 * ShardedCounter / Log2Histogram for them. Writers stay lock-free —
 * the registry never interposes on the bump path, it only enumerates.
 *
 * Snapshot/delta semantics are the point: a bench snapshots after
 * warmup and again after the measured phase, and reports the
 * difference, so warmup traffic can no longer pollute reported
 * numbers (the Fig. 6/7 phase-reset bug). Snapshots are exact at
 * quiescent points, monotone and race-free always (DESIGN.md §7).
 *
 * Naming convention (DESIGN.md §9): dot-separated lowercase paths,
 * "<component>.<thing>[.<detail>]", e.g. "dram.lookup",
 * "cache.l2.hits", "vsm.merge_commits". Each registry instance has a
 * short name ("mem"); the process-wide snapshot prefixes it.
 *
 * Each registry attaches itself to a process-wide list on
 * construction so globalSnapshot() can see every live instance;
 * components whose lifetime is shorter than their registry's (the
 * SegmentMap registers into its Memory's registry but dies first)
 * remove their entries with removeByPrefix().
 */

#ifndef HICAMP_OBS_METRICS_HH
#define HICAMP_OBS_METRICS_HH

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/atomic_annotations.hh"
#include "common/stats.hh"

#include "obs/histogram.hh"

namespace hicamp::obs {

/** Point-in-time copy of one histogram's state. */
struct HistogramSnapshot {
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::vector<std::uint64_t> buckets; ///< Log2Histogram::kBuckets wide
};

/**
 * Point-in-time copy of a registry (or of the whole process). Name
 * lists are sorted; lookups are by linear scan, fine at report sizes.
 */
struct MetricsSnapshot {
    std::string registry; ///< source registry name ("" for merged)
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::pair<std::string, std::uint64_t>> gauges;
    std::vector<std::pair<std::string, HistogramSnapshot>> histograms;

    /** Counter value by name; @p dflt when absent. */
    std::uint64_t counter(std::string_view name,
                          std::uint64_t dflt = 0) const;
    /** Gauge value by name; @p dflt when absent. */
    std::uint64_t gauge(std::string_view name, std::uint64_t dflt = 0) const;
    bool hasCounter(std::string_view name) const;
};

/**
 * Per-name difference @p after - @p before: counters and histograms
 * subtract (clamped at zero — a reset between the two snapshots
 * would otherwise underflow), gauges are level values and keep the
 * @p after reading. Names only in @p after enter with their full
 * value; names only in @p before are dropped.
 */
MetricsSnapshot delta(const MetricsSnapshot &before,
                      const MetricsSnapshot &after);

class MetricsRegistry
{
  public:
    /**
     * @p name is the instance's short prefix in process-wide
     * snapshots; de-duplicated ("mem", "mem#2", ...) if another live
     * registry already claimed it.
     */
    explicit MetricsRegistry(std::string name);
    ~MetricsRegistry();
    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    const std::string &name() const { return name_; }

    /// @name Non-owning registration of a component's own counters
    /// @{
    void addCounter(std::string name, std::function<std::uint64_t()> get,
                    std::function<void()> reset);
    void addCounter(std::string name, const ShardedCounter *c);
    void addCounter(std::string name, const AtomicCounter *c);
    void addCounter(std::string name, const Counter *c);
    void addCounter(std::string name,
                    HICAMP_ATOMIC_COUNTER std::atomic<std::uint64_t> *c);
    /// @}

    /** A level reading (live lines, ring occupancy): no reset. */
    void addGauge(std::string name, std::function<std::uint64_t()> get);

    /**
     * Registry-owned counter/histogram, created on first use; the
     * returned reference is stable for the registry's lifetime.
     * Re-requesting a name returns the same object.
     */
    ShardedCounter &counter(std::string name);
    Log2Histogram &histogram(std::string name);

    /**
     * Drop every metric whose name starts with @p prefix. Components
     * registered into a longer-lived registry MUST call this before
     * dying, or snapshot() reads freed memory.
     */
    void removeByPrefix(std::string_view prefix);

    bool has(std::string_view name) const;

    MetricsSnapshot snapshot() const;

    /** Reset counters and histograms (gauges are level values). */
    void resetAll();

    /**
     * Merged snapshot over every live registry, each metric prefixed
     * "<registry>.". Quiescent-point semantics as usual.
     */
    static MetricsSnapshot globalSnapshot();

  private:
    struct CounterSlot {
        std::string name;
        std::function<std::uint64_t()> get;
        std::function<void()> reset;
    };
    struct GaugeSlot {
        std::string name;
        std::function<std::uint64_t()> get;
    };
    // Owned metrics are never physically erased (the references
    // counter()/histogram() hand out must stay valid); removeByPrefix
    // tombstones them instead, and re-requesting the name revives
    // (and resets) the entry.
    struct OwnedCounter {
        explicit OwnedCounter(std::string n) : name(std::move(n)) {}
        std::string name;
        ShardedCounter c;
        bool hidden = false;
    };
    struct OwnedHistogram {
        explicit OwnedHistogram(std::string n) : name(std::move(n)) {}
        std::string name;
        Log2Histogram h;
        bool hidden = false;
    };

    bool hasLocked(std::string_view name) const;

    std::string name_;
    mutable std::mutex mutex_;
    std::vector<CounterSlot> counters_;
    std::vector<GaugeSlot> gauges_;
    // deques: element addresses stay stable across growth, so the
    // references counter()/histogram() hand out survive later adds
    std::deque<OwnedCounter> owned_;
    std::deque<OwnedHistogram> hists_;
};

} // namespace hicamp::obs

#endif // HICAMP_OBS_METRICS_HH
