#include "obs/metrics.hh"

#include <algorithm>

#include "common/logging.hh"

namespace hicamp::obs {

namespace {

/**
 * Process-wide list of live registries. A plain mutex + vector:
 * registries are created/destroyed at configuration points, never on
 * hot paths.
 */
struct GlobalList {
    std::mutex mutex;
    std::vector<MetricsRegistry *> registries;
};

GlobalList &
globalList()
{
    static GlobalList list;
    return list;
}

template <typename Vec>
void
sortByName(Vec &v)
{
    std::sort(v.begin(), v.end(),
              [](const auto &a, const auto &b) { return a.first < b.first; });
}

template <typename Vec>
const typename Vec::value_type::second_type *
findByName(const Vec &v, std::string_view name)
{
    for (const auto &e : v)
        if (e.first == name)
            return &e.second;
    return nullptr;
}

} // namespace

std::uint64_t
MetricsSnapshot::counter(std::string_view name, std::uint64_t dflt) const
{
    const std::uint64_t *v = findByName(counters, name);
    return v ? *v : dflt;
}

std::uint64_t
MetricsSnapshot::gauge(std::string_view name, std::uint64_t dflt) const
{
    const std::uint64_t *v = findByName(gauges, name);
    return v ? *v : dflt;
}

bool
MetricsSnapshot::hasCounter(std::string_view name) const
{
    return findByName(counters, name) != nullptr;
}

MetricsSnapshot
delta(const MetricsSnapshot &before, const MetricsSnapshot &after)
{
    MetricsSnapshot out;
    out.registry = after.registry;
    out.counters.reserve(after.counters.size());
    for (const auto &[name, v] : after.counters) {
        std::uint64_t prev = before.counter(name, 0);
        out.counters.emplace_back(name, v >= prev ? v - prev : 0);
    }
    out.gauges = after.gauges;
    out.histograms.reserve(after.histograms.size());
    for (const auto &[name, h] : after.histograms) {
        const HistogramSnapshot *prev = findByName(before.histograms, name);
        HistogramSnapshot d = h;
        if (prev) {
            d.count = h.count >= prev->count ? h.count - prev->count : 0;
            d.sum = h.sum >= prev->sum ? h.sum - prev->sum : 0;
            for (std::size_t b = 0;
                 b < d.buckets.size() && b < prev->buckets.size(); ++b)
                d.buckets[b] = d.buckets[b] >= prev->buckets[b]
                                   ? d.buckets[b] - prev->buckets[b]
                                   : 0;
        }
        out.histograms.emplace_back(name, std::move(d));
    }
    return out;
}

MetricsRegistry::MetricsRegistry(std::string name) : name_(std::move(name))
{
    GlobalList &g = globalList();
    std::lock_guard<std::mutex> lk(g.mutex);
    // De-duplicate the instance name against live registries so the
    // merged snapshot's keys stay unique ("mem", "mem#2", ...).
    std::string base = name_;
    unsigned n = 1;
    auto taken = [&](const std::string &cand) {
        for (const MetricsRegistry *r : g.registries)
            if (r->name_ == cand)
                return true;
        return false;
    };
    while (taken(name_))
        name_ = base + "#" + std::to_string(++n);
    g.registries.push_back(this);
}

MetricsRegistry::~MetricsRegistry()
{
    GlobalList &g = globalList();
    std::lock_guard<std::mutex> lk(g.mutex);
    std::erase(g.registries, this);
}

void
MetricsRegistry::addCounter(std::string name,
                            std::function<std::uint64_t()> get,
                            std::function<void()> reset)
{
    std::lock_guard<std::mutex> lk(mutex_);
    HICAMP_ASSERT(!hasLocked(name), "duplicate metric name");
    counters_.push_back({std::move(name), std::move(get), std::move(reset)});
}

void
MetricsRegistry::addCounter(std::string name, const ShardedCounter *c)
{
    addCounter(std::move(name), [c] { return c->value(); },
               [c] { const_cast<ShardedCounter *>(c)->reset(); });
}

void
MetricsRegistry::addCounter(std::string name, const AtomicCounter *c)
{
    addCounter(std::move(name), [c] { return c->value(); },
               [c] { const_cast<AtomicCounter *>(c)->reset(); });
}

void
MetricsRegistry::addCounter(std::string name, const Counter *c)
{
    addCounter(std::move(name), [c] { return c->value(); },
               [c] { const_cast<Counter *>(c)->reset(); });
}

void
MetricsRegistry::addCounter(std::string name,
                            HICAMP_ATOMIC_COUNTER
                            std::atomic<std::uint64_t> *c)
{
    addCounter(std::move(name),
               [c] { return c->load(std::memory_order_relaxed); },
               [c] { c->store(0, std::memory_order_relaxed); });
}

void
MetricsRegistry::addGauge(std::string name, std::function<std::uint64_t()> get)
{
    std::lock_guard<std::mutex> lk(mutex_);
    HICAMP_ASSERT(!hasLocked(name), "duplicate metric name");
    gauges_.push_back({std::move(name), std::move(get)});
}

ShardedCounter &
MetricsRegistry::counter(std::string name)
{
    std::lock_guard<std::mutex> lk(mutex_);
    for (auto &o : owned_)
        if (o.name == name) {
            if (o.hidden) {
                o.hidden = false;
                o.c.reset();
            }
            return o.c;
        }
    HICAMP_ASSERT(!hasLocked(name), "metric name taken by another kind");
    owned_.emplace_back(std::move(name));
    return owned_.back().c;
}

Log2Histogram &
MetricsRegistry::histogram(std::string name)
{
    std::lock_guard<std::mutex> lk(mutex_);
    for (auto &o : hists_)
        if (o.name == name) {
            if (o.hidden) {
                o.hidden = false;
                o.h.reset();
            }
            return o.h;
        }
    HICAMP_ASSERT(!hasLocked(name), "metric name taken by another kind");
    hists_.emplace_back(std::move(name));
    return hists_.back().h;
}

void
MetricsRegistry::removeByPrefix(std::string_view prefix)
{
    std::lock_guard<std::mutex> lk(mutex_);
    auto match = [prefix](const auto &slot) {
        return std::string_view(slot.name).substr(0, prefix.size()) == prefix;
    };
    std::erase_if(counters_, match);
    std::erase_if(gauges_, match);
    for (auto &o : owned_)
        if (match(o))
            o.hidden = true;
    for (auto &o : hists_)
        if (match(o))
            o.hidden = true;
}

bool
MetricsRegistry::hasLocked(std::string_view name) const
{
    for (const auto &s : counters_)
        if (s.name == name)
            return true;
    for (const auto &s : gauges_)
        if (s.name == name)
            return true;
    for (const auto &o : owned_)
        if (!o.hidden && o.name == name)
            return true;
    for (const auto &o : hists_)
        if (!o.hidden && o.name == name)
            return true;
    return false;
}

bool
MetricsRegistry::has(std::string_view name) const
{
    std::lock_guard<std::mutex> lk(mutex_);
    return hasLocked(name);
}

MetricsSnapshot
MetricsRegistry::snapshot() const
{
    std::lock_guard<std::mutex> lk(mutex_);
    MetricsSnapshot out;
    out.registry = name_;
    out.counters.reserve(counters_.size() + owned_.size());
    for (const auto &s : counters_)
        out.counters.emplace_back(s.name, s.get());
    for (const auto &o : owned_)
        if (!o.hidden)
            out.counters.emplace_back(o.name, o.c.value());
    for (const auto &s : gauges_)
        out.gauges.emplace_back(s.name, s.get());
    for (const auto &o : hists_) {
        if (o.hidden)
            continue;
        HistogramSnapshot h;
        h.count = o.h.count();
        h.sum = o.h.sum();
        h.buckets = o.h.bucketSnapshot();
        out.histograms.emplace_back(o.name, std::move(h));
    }
    sortByName(out.counters);
    sortByName(out.gauges);
    sortByName(out.histograms);
    return out;
}

void
MetricsRegistry::resetAll()
{
    std::lock_guard<std::mutex> lk(mutex_);
    for (auto &s : counters_)
        if (s.reset)
            s.reset();
    for (auto &o : owned_)
        o.c.reset();
    for (auto &o : hists_)
        o.h.reset();
}

MetricsSnapshot
MetricsRegistry::globalSnapshot()
{
    // Snapshot under the list lock: a registry dying mid-iteration
    // would otherwise leave a dangling pointer. Registries take their
    // own mutex_ inside snapshot(); list lock > instance lock is the
    // only order used, so no inversion is possible.
    GlobalList &g = globalList();
    std::lock_guard<std::mutex> lk(g.mutex);
    MetricsSnapshot out;
    out.registry = "global";
    for (const MetricsRegistry *r : g.registries) {
        MetricsSnapshot s = r->snapshot();
        for (auto &[name, v] : s.counters)
            out.counters.emplace_back(s.registry + "." + name, v);
        for (auto &[name, v] : s.gauges)
            out.gauges.emplace_back(s.registry + "." + name, v);
        for (auto &[name, h] : s.histograms)
            out.histograms.emplace_back(s.registry + "." + name,
                                        std::move(h));
    }
    sortByName(out.counters);
    sortByName(out.gauges);
    sortByName(out.histograms);
    return out;
}

} // namespace hicamp::obs
