/**
 * @file
 * Log2-bucketed histogram for latency/size distributions.
 *
 * Values land in bucket `bit_width(v)` (bucket 0 holds exactly the
 * value 0, bucket b>0 holds [2^(b-1), 2^b - 1]), so the 65 buckets
 * cover the full uint64 range with one `bit_width` and one relaxed
 * fetch_add per record — cheap enough for hot paths. Like the rest of
 * the stats layer (DESIGN.md §7), reads are exact at quiescent points
 * and monotone/race-free always.
 */

#ifndef HICAMP_OBS_HISTOGRAM_HH
#define HICAMP_OBS_HISTOGRAM_HH

#include <atomic>
#include <bit>
#include <cstdint>
#include <vector>

#include "common/atomic_annotations.hh"

namespace hicamp::obs {

class Log2Histogram
{
  public:
    /// bucket index = bit_width(value): 0..64
    static constexpr unsigned kBuckets = 65;

    Log2Histogram() = default;
    Log2Histogram(const Log2Histogram &) = delete;
    Log2Histogram &operator=(const Log2Histogram &) = delete;

    static unsigned
    bucketOf(std::uint64_t v)
    {
        return static_cast<unsigned>(std::bit_width(v));
    }

    /// Smallest value landing in bucket @p b.
    static std::uint64_t
    bucketLo(unsigned b)
    {
        return b == 0 ? 0 : std::uint64_t{1} << (b - 1);
    }

    /// Largest value landing in bucket @p b.
    static std::uint64_t
    bucketHi(unsigned b)
    {
        if (b == 0)
            return 0;
        if (b >= 64)
            return ~std::uint64_t{0};
        return (std::uint64_t{1} << b) - 1;
    }

    void
    record(std::uint64_t v)
    {
        buckets_[bucketOf(v)].fetch_add(1, std::memory_order_relaxed);
        sum_.fetch_add(v, std::memory_order_relaxed);
    }

    std::uint64_t
    bucketCount(unsigned b) const
    {
        return buckets_[b].load(std::memory_order_relaxed);
    }

    std::uint64_t
    count() const
    {
        std::uint64_t t = 0;
        for (const auto &b : buckets_)
            t += b.load(std::memory_order_relaxed);
        return t;
    }

    std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }

    std::vector<std::uint64_t>
    bucketSnapshot() const
    {
        std::vector<std::uint64_t> out(kBuckets, 0);
        for (unsigned b = 0; b < kBuckets; ++b)
            out[b] = bucketCount(b);
        return out;
    }

    void
    reset()
    {
        for (auto &b : buckets_)
            b.store(0, std::memory_order_relaxed);
        sum_.store(0, std::memory_order_relaxed);
    }

  private:
    HICAMP_ATOMIC_COUNTER std::atomic<std::uint64_t> buckets_[kBuckets] =
        {};
    HICAMP_ATOMIC_COUNTER std::atomic<std::uint64_t> sum_{0};
};

} // namespace hicamp::obs

#endif // HICAMP_OBS_HISTOGRAM_HH
