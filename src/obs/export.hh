/**
 * @file
 * Exporters for the observability layer: metrics snapshots as JSON
 * (consumed by tools/obs and the BENCH_*.json writers) and flight
 * recorder drains as Chrome trace_event JSON (loads directly in
 * chrome://tracing or ui.perfetto.dev).
 *
 * The env-driven helpers let any driver binary dump artifacts without
 * new flags: set HICAMP_OBS_METRICS=/path/metrics.json and/or
 * HICAMP_TRACE_OUT=/path/trace.json before running. The trace helper
 * is an inline no-op stub when HICAMP_TRACE is off, so callers need
 * no #ifdef.
 */

#ifndef HICAMP_OBS_EXPORT_HH
#define HICAMP_OBS_EXPORT_HH

#include <string>
#include <vector>

#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace hicamp::obs {

/** Snapshot as one JSON object (registry/counters/gauges/histograms). */
std::string toJson(const MetricsSnapshot &s);

/** Write @p body to @p path; false (with a stderr note) on failure. */
bool writeFile(const std::string &path, const std::string &body);

/**
 * If HICAMP_OBS_METRICS is set, write @p s there as JSON.
 * @return true if a file was written.
 */
bool dumpMetricsFromEnv(const MetricsSnapshot &s);

#ifdef HICAMP_TRACE

/** Chrome trace_event JSON ("X" phase events on logical-tick time). */
std::string chromeTraceJson(const std::vector<TraceEvent> &events);

/**
 * If HICAMP_TRACE_OUT is set, drain the flight recorder and write the
 * Chrome trace there. @return true if a file was written.
 */
bool dumpChromeTraceFromEnv();

#else // !HICAMP_TRACE

inline bool
dumpChromeTraceFromEnv()
{
    return false;
}

#endif // HICAMP_TRACE

} // namespace hicamp::obs

#endif // HICAMP_OBS_EXPORT_HH
