#include "obs/export.hh"

#include <cstdio>
#include <cstdlib>

namespace hicamp::obs {

namespace {

void
appendEscaped(std::string &out, const std::string &s)
{
    for (char ch : s) {
        switch (ch) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(ch) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(ch));
                out += buf;
            } else {
                out += ch;
            }
        }
    }
}

void
appendKey(std::string &out, const std::string &name)
{
    out += '"';
    appendEscaped(out, name);
    out += "\": ";
}

void
appendScalarMap(
    std::string &out, const char *key,
    const std::vector<std::pair<std::string, std::uint64_t>> &entries)
{
    out += "  \"";
    out += key;
    out += "\": {";
    bool first = true;
    for (const auto &[name, v] : entries) {
        out += first ? "\n    " : ",\n    ";
        first = false;
        appendKey(out, name);
        out += std::to_string(v);
    }
    out += first ? "}" : "\n  }";
}

} // namespace

std::string
toJson(const MetricsSnapshot &s)
{
    std::string out = "{\n  \"registry\": \"";
    appendEscaped(out, s.registry);
    out += "\",\n";
    appendScalarMap(out, "counters", s.counters);
    out += ",\n";
    appendScalarMap(out, "gauges", s.gauges);
    out += ",\n  \"histograms\": {";
    bool first = true;
    for (const auto &[name, h] : s.histograms) {
        out += first ? "\n    " : ",\n    ";
        first = false;
        appendKey(out, name);
        out += "{\"count\": " + std::to_string(h.count) +
               ", \"sum\": " + std::to_string(h.sum) + ", \"buckets\": [";
        for (std::size_t b = 0; b < h.buckets.size(); ++b) {
            if (b != 0)
                out += ", ";
            out += std::to_string(h.buckets[b]);
        }
        out += "]}";
    }
    out += first ? "}" : "\n  }";
    out += "\n}\n";
    return out;
}

bool
writeFile(const std::string &path, const std::string &body)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        std::fprintf(stderr, "obs: cannot open %s for writing\n",
                     path.c_str());
        return false;
    }
    std::size_t n = std::fwrite(body.data(), 1, body.size(), f);
    bool ok = n == body.size() && std::fclose(f) == 0;
    if (!ok)
        std::fprintf(stderr, "obs: short write to %s\n", path.c_str());
    return ok;
}

bool
dumpMetricsFromEnv(const MetricsSnapshot &s)
{
    // NOLINTNEXTLINE(concurrency-mt-unsafe): end-of-run reporting
    const char *path = std::getenv("HICAMP_OBS_METRICS");
    if (path == nullptr || *path == '\0')
        return false;
    return writeFile(path, toJson(s));
}

#ifdef HICAMP_TRACE

std::string
chromeTraceJson(const std::vector<TraceEvent> &events)
{
    std::string out = "{\"traceEvents\": [";
    char buf[256];
    bool first = true;
    for (const TraceEvent &e : events) {
        std::snprintf(
            buf, sizeof buf,
            "%s\n  {\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"X\", "
            "\"ts\": %llu, \"dur\": %u, \"pid\": 0, \"tid\": %u, "
            "\"args\": {\"id\": %llu, \"bytes\": %u}}",
            first ? "" : ",", traceKindName(e.kind), traceCatName(e.cat),
            static_cast<unsigned long long>(e.tick),
            e.dur == 0 ? 1u : e.dur, static_cast<unsigned>(e.tid),
            static_cast<unsigned long long>(e.id), e.bytes);
        out += buf;
        first = false;
    }
    out += "\n], \"displayTimeUnit\": \"ns\"}\n";
    return out;
}

bool
dumpChromeTraceFromEnv()
{
    // NOLINTNEXTLINE(concurrency-mt-unsafe): end-of-run reporting
    const char *path = std::getenv("HICAMP_TRACE_OUT");
    if (path == nullptr || *path == '\0')
        return false;
    return writeFile(path, chromeTraceJson(FlightRecorder::instance().drain()));
}

#endif // HICAMP_TRACE

} // namespace hicamp::obs
