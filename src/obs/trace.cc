#include "obs/trace.hh"

#include <cstdlib>
#include <cstring>

#include "common/logging.hh"

namespace hicamp::obs {

const char *
traceCatName(TraceCat c)
{
    switch (c) {
      case TraceCat::Mem: return "mem";
      case TraceCat::Store: return "store";
      case TraceCat::Cache: return "cache";
      case TraceCat::Seg: return "seg";
      case TraceCat::Vsm: return "vsm";
      case TraceCat::App: return "app";
      default: return "?";
    }
}

const char *
traceKindName(TraceKind k)
{
    switch (k) {
      case TraceKind::Lookup: return "lookup";
      case TraceKind::ReadLine: return "read_line";
      case TraceKind::IncRef: return "inc_ref";
      case TraceKind::DecRef: return "dec_ref";
      case TraceKind::Reclaim: return "reclaim";
      case TraceKind::Transient: return "transient";
      case TraceKind::VsmTouch: return "vsm_touch";
      case TraceKind::Publish: return "publish";
      case TraceKind::Retire: return "retire";
      case TraceKind::OverflowAlloc: return "overflow_alloc";
      case TraceKind::CacheHit: return "cache_hit";
      case TraceKind::CacheMiss: return "cache_miss";
      case TraceKind::ConvRead: return "conv_read";
      case TraceKind::ConvWrite: return "conv_write";
      case TraceKind::Build: return "build";
      case TraceKind::Retain: return "retain";
      case TraceKind::Release: return "release";
      case TraceKind::Merge: return "merge";
      case TraceKind::VsmCommit: return "vsm_commit";
      case TraceKind::VsmCommitFail: return "vsm_commit_fail";
      case TraceKind::VsmSnapshot: return "vsm_snapshot";
      case TraceKind::Phase: return "phase";
      default: return "?";
    }
}

std::uint32_t
traceMaskFor(const char *spec)
{
    constexpr std::uint32_t kAll =
        (1u << static_cast<unsigned>(TraceCat::NumCats)) - 1;
    if (spec == nullptr || std::strcmp(spec, "all") == 0 ||
        std::strcmp(spec, "") == 0)
        return kAll;
    // Numeric spec ("0x15", "21"): must consume the whole string.
    if (spec[0] >= '0' && spec[0] <= '9') {
        char *end = nullptr;
        unsigned long v = std::strtoul(spec, &end, 0);
        if (end != nullptr && *end == '\0')
            return static_cast<std::uint32_t>(v) & kAll;
        HICAMP_FATAL(std::string("HICAMP_TRACE_MASK: malformed number '") +
                     spec + "'");
    }
    std::uint32_t mask = 0;
    const char *p = spec;
    while (*p != '\0') {
        const char *comma = std::strchr(p, ',');
        std::size_t len = comma ? static_cast<std::size_t>(comma - p)
                                : std::strlen(p);
        bool matched = false;
        for (unsigned c = 0; c < static_cast<unsigned>(TraceCat::NumCats);
             ++c) {
            const char *n = traceCatName(static_cast<TraceCat>(c));
            if (std::strlen(n) == len && std::strncmp(p, n, len) == 0) {
                mask |= 1u << c;
                matched = true;
                break;
            }
        }
        if (!matched)
            HICAMP_FATAL("HICAMP_TRACE_MASK: unknown category '" +
                         std::string(p, len) +
                         "' (known: mem,store,cache,seg,vsm,app,all)");
        p = comma ? comma + 1 : p + len;
    }
    return mask;
}

} // namespace hicamp::obs

#ifdef HICAMP_TRACE

#include <algorithm>

namespace hicamp::obs {

namespace {

/** Per-thread cache of (ring, recorder generation). */
struct RingCache {
    void *ring = nullptr;
    std::uint64_t generation = 0;
};

thread_local RingCache tlsRing; // NOLINT(misc-use-internal-linkage)

} // namespace

FlightRecorder::FlightRecorder()
{
    // NOLINTBEGIN(concurrency-mt-unsafe): first-use configuration,
    // same contract as the HICAMP_FAULT_* overlay.
    capacity_ = std::size_t{1} << 16;
    if (const char *s = std::getenv("HICAMP_TRACE_EVENTS")) {
        char *end = nullptr;
        unsigned long long v = std::strtoull(s, &end, 0);
        if (end == s || *end != '\0' || v < 16)
            HICAMP_FATAL(std::string("HICAMP_TRACE_EVENTS: expected "
                                     "integer >= 16, got '") +
                         s + "'");
        capacity_ = static_cast<std::size_t>(v);
    }
    mask_.store(traceMaskFor(std::getenv("HICAMP_TRACE_MASK")),
                std::memory_order_relaxed);
    // NOLINTEND(concurrency-mt-unsafe)
}

FlightRecorder &
FlightRecorder::instance()
{
    static FlightRecorder recorder;
    return recorder;
}

FlightRecorder::Ring &
FlightRecorder::myRing()
{
    std::uint64_t gen = generation_.load(std::memory_order_acquire);
    if (tlsRing.ring != nullptr && tlsRing.generation == gen)
        return *static_cast<Ring *>(tlsRing.ring);
    std::lock_guard<std::mutex> lk(mutex_);
    rings_.push_back(std::make_unique<Ring>(
        capacity_, static_cast<std::uint16_t>(rings_.size())));
    tlsRing.ring = rings_.back().get();
    // hicamp-atomic: waive(mutex_-serialized with resetForTest's
    // generation bump; the lock-free fast path above re-reads with
    // acquire)
    tlsRing.generation = generation_.load(std::memory_order_relaxed);
    return *rings_.back();
}

void
FlightRecorder::recordAt(std::uint64_t tick, TraceCat cat, TraceKind kind,
                         std::uint64_t id, std::uint32_t bytes,
                         std::uint32_t dur)
{
    Ring &r = myRing();
    std::uint64_t c = r.count.load(std::memory_order_relaxed);
    TraceEvent &slot = r.buf[c % r.buf.size()];
    slot.tick = tick;
    slot.id = id;
    slot.dur = dur;
    slot.bytes = bytes;
    slot.kind = kind;
    slot.cat = cat;
    slot.tid = r.tid;
    r.count.store(c + 1, std::memory_order_relaxed);
}

std::vector<TraceEvent>
FlightRecorder::drain()
{
    std::lock_guard<std::mutex> lk(mutex_);
    std::vector<TraceEvent> out;
    for (auto &ring : rings_) {
        std::uint64_t c = ring->count.load(std::memory_order_relaxed);
        std::size_t live = static_cast<std::size_t>(
            std::min<std::uint64_t>(c, ring->buf.size()));
        out.insert(out.end(), ring->buf.begin(),
                   ring->buf.begin() + static_cast<std::ptrdiff_t>(live));
        ring->count.store(0, std::memory_order_relaxed);
    }
    std::sort(out.begin(), out.end(),
              [](const TraceEvent &a, const TraceEvent &b) {
                  return a.tick < b.tick;
              });
    return out;
}

std::uint64_t
FlightRecorder::dropped() const
{
    std::lock_guard<std::mutex> lk(mutex_);
    std::uint64_t d = 0;
    for (const auto &ring : rings_) {
        std::uint64_t c = ring->count.load(std::memory_order_relaxed);
        if (c > ring->buf.size())
            d += c - ring->buf.size();
    }
    return d;
}

std::uint64_t
FlightRecorder::recorded() const
{
    std::lock_guard<std::mutex> lk(mutex_);
    std::uint64_t n = 0;
    for (const auto &ring : rings_)
        n += ring->count.load(std::memory_order_relaxed);
    return n;
}

void
FlightRecorder::resetForTest(std::size_t capacity)
{
    std::lock_guard<std::mutex> lk(mutex_);
    rings_.clear();
    capacity_ = capacity < 16 ? 16 : capacity;
    // Invalidate every thread's cached ring pointer *before* any new
    // emit: release pairs with the acquire in myRing().
    generation_.fetch_add(1, std::memory_order_release);
}

} // namespace hicamp::obs

#endif // HICAMP_TRACE
