#include "cpu/processor.hh"

namespace hicamp {

void
HicampCpu::run(Program &prog, std::uint64_t max_instructions)
{
    prog.link();
    const auto &code = prog.code();
    std::size_t pc = 0;

    auto jump = [&](std::int64_t target) {
        HICAMP_ASSERT(target >= 0 &&
                          target <= static_cast<std::int64_t>(code.size()),
                      "branch target out of range");
        pc = static_cast<std::size_t>(target);
    };

    while (pc < code.size()) {
        HICAMP_ASSERT(stats_.instructions < max_instructions,
                      "instruction budget exceeded (runaway program?)");
        const Instr &in = code[pc];
        ++pc;
        ++stats_.instructions;
        switch (in.op) {
          case Op::Add:
            gp_.at(in.a) = gp_.at(in.b) + gp_.at(in.c);
            ++stats_.aluOps;
            break;
          case Op::Sub:
            gp_.at(in.a) = gp_.at(in.b) - gp_.at(in.c);
            ++stats_.aluOps;
            break;
          case Op::Mul:
            gp_.at(in.a) = gp_.at(in.b) * gp_.at(in.c);
            ++stats_.aluOps;
            break;
          case Op::And:
            gp_.at(in.a) = gp_.at(in.b) & gp_.at(in.c);
            ++stats_.aluOps;
            break;
          case Op::Or:
            gp_.at(in.a) = gp_.at(in.b) | gp_.at(in.c);
            ++stats_.aluOps;
            break;
          case Op::Xor:
            gp_.at(in.a) = gp_.at(in.b) ^ gp_.at(in.c);
            ++stats_.aluOps;
            break;
          case Op::Shl:
            gp_.at(in.a) = gp_.at(in.b) << (gp_.at(in.c) & 63);
            ++stats_.aluOps;
            break;
          case Op::Shr:
            gp_.at(in.a) = gp_.at(in.b) >> (gp_.at(in.c) & 63);
            ++stats_.aluOps;
            break;
          case Op::Movi:
            gp_.at(in.a) = static_cast<Word>(in.imm);
            ++stats_.aluOps;
            break;
          case Op::Addi:
            gp_.at(in.a) =
                gp_.at(in.b) + static_cast<Word>(in.imm);
            ++stats_.aluOps;
            break;
          case Op::Beq:
            ++stats_.branches;
            if (gp_.at(in.a) == gp_.at(in.b))
                jump(in.imm);
            break;
          case Op::Bne:
            ++stats_.branches;
            if (gp_.at(in.a) != gp_.at(in.b))
                jump(in.imm);
            break;
          case Op::Blt:
            ++stats_.branches;
            if (gp_.at(in.a) < gp_.at(in.b))
                jump(in.imm);
            break;
          case Op::Jmp:
            ++stats_.branches;
            jump(in.imm);
            break;
          case Op::Halt:
            return;
          case Op::ItLoad:
            iters_.at(in.a)->load(gp_.at(in.b), gp_.at(in.c));
            break;
          case Op::ItSeek:
            iters_.at(in.a)->seek(gp_.at(in.b));
            break;
          case Op::ItRead:
            gp_.at(in.a) = iters_.at(in.b)->read();
            ++stats_.itReads;
            break;
          case Op::ItWrite:
            iters_.at(in.a)->write(gp_.at(in.b));
            ++stats_.itWrites;
            break;
          case Op::ItNext:
            gp_.at(in.a) = iters_.at(in.b)->next() ? 1 : 0;
            ++stats_.itNexts;
            break;
          case Op::ItOffs:
            gp_.at(in.a) = iters_.at(in.b)->offset();
            break;
          case Op::ItCommit:
            gp_.at(in.a) = iters_.at(in.b)->tryCommit() ? 1 : 0;
            ++stats_.commits;
            break;
          case Op::ItAbort:
            iters_.at(in.a)->abort();
            break;
        }
    }
}

} // namespace hicamp
