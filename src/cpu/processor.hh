/**
 * @file
 * A minimal HICAMP processor model (the P in HICAMP): a register
 * machine whose ONLY path to memory is through iterator registers
 * (paper §3.3 — "In HICAMP, each memory access is made through an
 * iterator register", Fig. 5), with 16 general-purpose registers and
 * 16 iterator registers as architectural state.
 *
 * The instruction set is deliberately small but complete enough to
 * express the paper's kernels: ALU ops, conditional branches, and the
 * iterator operations (load/seek/read/write/next/commit/abort). A
 * tiny assembler-style builder with labels constructs programs; the
 * interpreter executes them against a real simulated machine, so
 * every ITREAD/ITWRITE generates the same modelled memory traffic as
 * the library API.
 */

#ifndef HICAMP_CPU_PROCESSOR_HH
#define HICAMP_CPU_PROCESSOR_HH

#include <array>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "lang/context.hh"
#include "seg/iterator.hh"

namespace hicamp {

/** Opcodes of the model ISA. */
enum class Op : std::uint8_t {
    // ALU: rd <- ra (op) rb
    Add,
    Sub,
    Mul,
    And,
    Or,
    Xor,
    Shl,
    Shr,
    // immediates
    Movi, ///< rd <- imm
    Addi, ///< rd <- ra + imm
    // control flow (branch targets are label ids)
    Beq, ///< if ra == rb goto target
    Bne,
    Blt, ///< unsigned <
    Jmp,
    Halt,
    // iterator register ops
    ItLoad,   ///< it[a] loads segment vsid=reg[b] at offset reg[c]
    ItSeek,   ///< it[a] seeks to offset reg[b]
    ItRead,   ///< rd <- current word of it[a]
    ItWrite,  ///< it[a] current word <- reg[b] (buffered)
    ItNext,   ///< rd <- 1 and advance if a next non-zero exists else 0
    ItOffs,   ///< rd <- current offset of it[a]
    ItCommit, ///< rd <- tryCommit(it[a])
    ItAbort,  ///< discard it[a]'s buffered writes
};

/** One decoded instruction. */
struct Instr {
    Op op;
    std::uint8_t a = 0; ///< rd or iterator index
    std::uint8_t b = 0;
    std::uint8_t c = 0;
    std::int64_t imm = 0; ///< immediate or branch label id
};

/** Label-aware program builder (a two-pass mini assembler). */
class Program
{
  public:
    /** Define (or forward-declare) a label at the current position. */
    Program &
    label(const std::string &name)
    {
        labels_[name] = code_.size();
        return *this;
    }

    Program &
    emit(Op op, std::uint8_t a = 0, std::uint8_t b = 0,
         std::uint8_t c = 0, std::int64_t imm = 0)
    {
        code_.push_back({op, a, b, c, imm});
        return *this;
    }

    /** Emit a branch/jump to a (possibly not yet defined) label. */
    Program &
    branch(Op op, const std::string &target, std::uint8_t a = 0,
           std::uint8_t b = 0)
    {
        fixups_.emplace_back(code_.size(), target);
        code_.push_back({op, a, b, 0, 0});
        return *this;
    }

    /** Resolve label fixups; call once before execution. */
    void
    link()
    {
        for (auto &[pos, name] : fixups_) {
            auto it = labels_.find(name);
            HICAMP_ASSERT(it != labels_.end(),
                          "undefined label: " + name);
            code_[pos].imm = static_cast<std::int64_t>(it->second);
        }
        fixups_.clear();
    }

    const std::vector<Instr> &code() const { return code_; }

  private:
    std::vector<Instr> code_;
    std::unordered_map<std::string, std::size_t> labels_;
    std::vector<std::pair<std::size_t, std::string>> fixups_;
};

/** Execution statistics. */
struct CpuStats {
    std::uint64_t instructions = 0;
    std::uint64_t aluOps = 0;
    std::uint64_t branches = 0;
    std::uint64_t itReads = 0;
    std::uint64_t itWrites = 0;
    std::uint64_t itNexts = 0;
    std::uint64_t commits = 0;
};

class HicampCpu
{
  public:
    static constexpr unsigned kGpRegs = 16;
    static constexpr unsigned kItRegs = 16;

    explicit HicampCpu(Hicamp &hc) : hc_(hc)
    {
        for (auto &it : iters_)
            it = std::make_unique<IteratorRegister>(hc.mem, hc.vsm);
    }

    Word reg(unsigned r) const { return gp_.at(r); }
    void setReg(unsigned r, Word v) { gp_.at(r) = v; }

    const CpuStats &stats() const { return stats_; }

    /**
     * Run @p prog until Halt (or the instruction budget trips, which
     * panics — runaway programs are simulator bugs).
     */
    void run(Program &prog, std::uint64_t max_instructions = 100000000);

  private:
    Hicamp &hc_;
    std::array<Word, kGpRegs> gp_{};
    std::array<std::unique_ptr<IteratorRegister>, kItRegs> iters_;
    CpuStats stats_;
};

} // namespace hicamp

#endif // HICAMP_CPU_PROCESSOR_HH
