/**
 * @file
 * EpochManager thread registration: each thread lazily claims one
 * padded record per epoch domain and caches the claim in a
 * thread-local table, releasing it again from the thread-exit
 * destructor so short-lived threads recycle record slots. A released
 * (or never-claimed) record is parked — pinned epoch 0 — so exited
 * and idle threads never stall a grace period (DESIGN.md §12).
 */

#include "mem/epoch.hh"

namespace hicamp {

std::atomic<std::uint64_t> EpochManager::serialCounter_{0};

/**
 * One thread's record claims across every epoch domain it has
 * entered. Keyed by the domain's process-unique serial — a dead
 * domain's serial is never looked up again, and the weak_ptr keeps
 * the exit-time release safe against domains that died first.
 */
struct EpochThreadSlots {
    struct Entry {
        std::uint64_t serial;
        std::weak_ptr<EpochManager::State> state;
        EpochManager::Record *rec;
    };
    std::vector<Entry> entries;

    ~EpochThreadSlots()
    {
        for (Entry &e : entries) {
            if (auto sp = e.state.lock()) {
                HICAMP_DEBUG_ASSERT(
                    e.rec->nesting == 0,
                    "thread exited inside an EpochGuard");
                // Park, then free the slot; the release hand-off
                // pairs with the next claimer's acquire CAS.
                e.rec->epoch.store(0, std::memory_order_release);
                e.rec->owner.store(0, std::memory_order_release);
            }
        }
    }

    static EpochThreadSlots &
    get()
    {
        static thread_local EpochThreadSlots slots;
        return slots;
    }
};

EpochManager::Record &
EpochManager::threadRecord()
{
    auto &entries = EpochThreadSlots::get().entries;
    for (auto &e : entries)
        if (e.serial == state_->serial)
            return *e.rec;

    HICAMP_ATOMIC_COUNTER static std::atomic<std::uint64_t> tokenCounter{0};
    const std::uint64_t token =
        tokenCounter.fetch_add(1, std::memory_order_relaxed) + 1;
    for (unsigned i = 0; i < kMaxRecords; ++i) {
        Record &r = state_->recs[i];
        // hicamp-lint: relaxed-ok(pre-screen only; the acq_rel CAS
        // below is the authoritative claim)
        if (r.owner.load(std::memory_order_relaxed) != 0)
            continue;
        std::uint64_t expect = 0;
        if (!r.owner.compare_exchange_strong(
                expect, token, std::memory_order_acq_rel,
                std::memory_order_relaxed))
            continue;
        // hicamp-atomic: waive(the acq_rel owner CAS above
        // synchronized with the releasing park stores of the previous
        // holder, so the relaxed check sees the parked value)
        HICAMP_DEBUG_ASSERT(
            r.epoch.load(std::memory_order_relaxed) == 0,
            "claimed epoch record was not parked");
        r.nesting = 0;
        // Publish the scan bound. A grace check that races this and
        // still misses the record is safe: the record is parked
        // until enter() pins it, and a pin racing a grace check is
        // the case the kGraceEpochs aging bound covers (§12).
        unsigned hw = state_->highWater.load(std::memory_order_relaxed);
        while (hw < i + 1 &&
               !state_->highWater.compare_exchange_weak(
                   hw, i + 1, std::memory_order_acq_rel,
                   std::memory_order_relaxed)) {
        }
        entries.push_back(
            EpochThreadSlots::Entry{state_->serial, state_, &r});
        return r;
    }
    HICAMP_PANIC("epoch record table exhausted: more than "
                 "kMaxRecords concurrently registered threads");
}

EpochManager::Record *
EpochManager::findThreadRecord() const
{
    for (auto &e : EpochThreadSlots::get().entries)
        if (e.serial == state_->serial)
            return e.rec;
    return nullptr;
}

} // namespace hicamp
