#include "mem/memory.hh"

#include <vector>

#include "common/logging.hh"

namespace hicamp {

namespace {

/** Transient-id namespace for virtual-segment-map entries. */
constexpr std::uint64_t kVsmIdBase = std::uint64_t{1} << 40;

} // namespace

Memory::Memory(const MemoryConfig &cfg)
    : cfg_(cfg),
      store_(cfg.numBuckets, cfg.lineBytes / kWordBytes,
             LineStore::Limits{cfg.overflowCapacity, cfg.maxLiveLines,
                               cfg.refcountBits}),
      l1_(cfg.l1Bytes, cfg.l1Ways, cfg.lineBytes,
          /*content_searchable=*/false),
      l2_(cfg.l2Bytes, cfg.l2Ways, cfg.lineBytes,
          /*content_searchable=*/true),
      faults_(cfg.faults.allowEnvOverride
                  ? FaultConfig::fromEnv(cfg.faults)
                  : cfg.faults)
{
    HICAMP_ASSERT(cfg.lineBytes == 16 || cfg.lineBytes == 32 ||
                      cfg.lineBytes == 64,
                  "line size must be 16, 32 or 64 bytes");
    pressure_.add("oom_events", &oomEvents_);
    pressure_.add("flips_recovered", &flipsRecovered_);
    pressure_.add("flips_silent", &flipsSilent_);
    pressure_.add("commit_conflicts", &contention_.conflicts);
    pressure_.add("commit_retries", &contention_.retries);
    pressure_.add("backoff_iters", &contention_.backoffIters);
    pressure_.add("commit_exhausted", &contention_.exhausted);
}

void
Memory::countWriteback(const HicampCache::Access &a)
{
    if (a.writeback)
        dram_.count(*a.writeback);
}

void
Memory::rcTouch(Plid plid)
{
    const std::uint64_t home = store_.bucketOfPlid(plid);
    auto a = l2_.access({LineKind::Rc, home}, home, /*dirty=*/true,
                        DramCat::RefCount);
    if (!a.hit)
        dram_.count(DramCat::RefCount); // fetch the RC line
    countWriteback(a);
}

Plid
Memory::lookup(const Line &content, bool *was_new)
{
    std::lock_guard<std::recursive_mutex> g(mutex_);
    return lookupLocked(content, was_new);
}

Plid
Memory::lookupLocked(const Line &content, bool *was_new)
{
    if (was_new)
        *was_new = false;
    if (content.isZero())
        return kZeroPlid;

    ++lookupOps_;
    const std::uint64_t hash = content.contentHash();

    // Fast path: the line is resident in the LLC; the content search
    // needs only the single set the hash bucket maps to (Fig. 3).
    if (auto cached = l2_.lookupContent(content, hash)) {
        ++l2_.hits;
        store_.addRef(*cached, +1);
        rcTouch(*cached);
        return *cached;
    }
    ++l2_.misses;

    const std::uint64_t home = store_.bucketOf(hash);

    // Fault injection: a fresh allocation (the content is not yet
    // stored) may fail transiently. Decided before any state or
    // traffic changes, so the failure path has no side effects.
    if (faults_.config().anyEnabled() && !store_.find(content).found &&
        faults_.failAlloc()) {
        ++oomEvents_;
        throw MemPressureError(MemStatus::OutOfMemory,
                               "injected allocation failure");
    }

    auto res = store_.findOrInsert(content);
    const std::uint64_t dram_before = dram_.total();

    // Protocol step: read the bucket's signature line.
    {
        auto a = l2_.access({LineKind::Sig, home}, home, /*dirty=*/false,
                            DramCat::Lookup);
        if (!a.hit)
            dram_.count(DramCat::Lookup);
        countWriteback(a);
    }

    // Probe each signature-matching candidate's data line.
    for (Plid cand : res.candidates) {
        const Line &cand_line = store_.read(cand);
        auto a = l2_.access({LineKind::Data, cand}, home, /*dirty=*/false,
                            DramCat::Lookup, &cand_line);
        if (!a.hit)
            dram_.count(DramCat::Lookup);
        countWriteback(a);
    }
    sigFalsePositives_ +=
        res.candidates.size() - (res.found && !res.overflow ? 1 : 0);

    // Walking the overflow pointer area costs an extra row access.
    if (res.overflow)
        dram_.count(DramCat::Lookup);

    if (res.status != MemStatus::Ok) {
        // Capacity exhausted: the probe traffic above was still paid,
        // but nothing was allocated and no references were taken.
        ++oomEvents_;
        if (dram_.total() > dram_before)
            ++rowActs_;
        throw MemPressureError(res.status,
                               "line allocation failed: store at "
                               "capacity");
    }

    if (!res.found) {
        // Fresh allocation: update the signature line and place the
        // new content in the LLC; both write back in the lookup
        // category when evicted (paper footnote 12).
        auto sig = l2_.access({LineKind::Sig, home}, home, /*dirty=*/true,
                              DramCat::Lookup);
        countWriteback(sig);
        auto dat = l2_.access({LineKind::Data, res.plid}, home,
                              /*dirty=*/true, DramCat::Lookup, &content);
        countWriteback(dat);
        if (was_new)
            *was_new = true;
    }

    store_.addRef(res.plid, +1);
    rcTouch(res.plid);
    // All protocol commands (signature, candidates, allocation, the
    // RC line) target the home bucket's DRAM row: one activation,
    // plus one for the overflow area when it was walked.
    if (dram_.total() > dram_before)
        rowActs_ += 1 + (res.overflow ? 1 : 0);
    return res.plid;
}

Plid
Memory::internLine(const Line &content)
{
    std::lock_guard<std::recursive_mutex> g(mutex_);
    bool fresh = false;
    Plid plid;
    try {
        plid = lookupLocked(content, &fresh);
    } catch (const MemPressureError &) {
        // Consume-on-failure: the caller handed over one reference
        // per child; release them so the failed intern leaks nothing.
        for (unsigned i = 0; i < content.size(); ++i) {
            if (content.meta(i).isPlid() && content.word(i) != 0)
                decRefLocked(content.word(i));
        }
        throw;
    }
    if (!fresh && plid != kZeroPlid) {
        // Dedup hit: the existing line already owns references to its
        // children; release the caller's.
        for (unsigned i = 0; i < content.size(); ++i) {
            if (content.meta(i).isPlid() && content.word(i) != 0)
                decRefLocked(content.word(i));
        }
    }
    return plid;
}

Line
Memory::readLine(Plid plid, DramCat cat)
{
    std::lock_guard<std::recursive_mutex> g(mutex_);
    return readLineLocked(plid, cat);
}

Line
Memory::readLineLocked(Plid plid, DramCat cat)
{
    if (plid == kZeroPlid)
        return makeLine();
    ++readOps_;
    const std::uint64_t home = store_.bucketOfPlid(plid);
    const CacheKey key{LineKind::Data, plid};
    auto a1 = l1_.access(key, home, /*dirty=*/false, cat);
    if (a1.writeback) {
        // Only transient lines are ever dirty in L1; spill into L2
        // (full-line write: no fetch needed).
        auto spill = l2_.access(a1.victimKey, a1.victimHome,
                                /*dirty=*/true, *a1.writeback);
        countWriteback(spill);
    }
    if (!a1.hit) {
        const Line &content = store_.read(plid);
        auto a2 = l2_.access(key, home, /*dirty=*/false, cat, &content);
        if (!a2.hit) {
            dram_.count(cat);
            ++rowActs_;
            // Fault injection: the fetched copy may arrive with a
            // multi-bit error past per-line ECC. The §3.1 check
            // catches it when the corrupted content hashes to a
            // different bucket; the model then refetches (one more
            // DRAM access) and recovers. A flip that hashes back to
            // the same bucket would escape — counted, but the model
            // keeps serving ground truth to stay self-consistent.
            unsigned widx = 0, bidx = 0;
            if (faults_.flipBit(content.size(), &widx, &bidx)) {
                Line flipped = content;
                flipped.set(widx, flipped.word(widx) ^ (Word{1} << bidx),
                            flipped.meta(widx));
                if (store_.bucketOf(flipped.contentHash()) != home) {
                    ++errorsDetected_;
                    ++flipsRecovered_;
                    dram_.count(cat); // the recovery refetch
                } else {
                    ++flipsSilent_;
                }
            }
            // §3.1 error detection: the line was fetched from DRAM;
            // recompute its content hash and check it still selects
            // the bucket it lives in. Escapes only if the corruption
            // happens to hash back to the same bucket.
            if (store_.bucketOf(content.contentHash()) != home) {
                ++errorsDetected_;
                warn("memory error detected: line content no longer "
                     "matches its hash bucket");
            }
        }
        countWriteback(a2);
    }
    return store_.read(plid);
}

void
Memory::incRef(Plid plid)
{
    if (plid == kZeroPlid)
        return;
    std::lock_guard<std::recursive_mutex> g(mutex_);
    // Fault injection: model a refcount update that overflows its
    // §3.1 field width — the count pins sticky at the ceiling and the
    // line becomes immortal (graceful degradation, not an error).
    if (faults_.saturateRef())
        store_.saturateRef(plid);
    else
        store_.addRef(plid, +1);
    rcTouch(plid);
}

void
Memory::decRef(Plid plid)
{
    std::lock_guard<std::recursive_mutex> g(mutex_);
    decRefLocked(plid);
}

void
Memory::decRefLocked(Plid plid)
{
    if (plid == kZeroPlid)
        return;
    rcTouch(plid);
    if (store_.addRef(plid, -1) == 0)
        reclaim(plid);
}

void
Memory::reclaim(Plid first)
{
    // Hardware state machine for recursive deallocation (paper §3.1),
    // modelled as an explicit worklist.
    std::vector<Plid> work{first};
    while (!work.empty()) {
        Plid p = work.back();
        work.pop_back();

        // Read the dying line to find its children.
        Line content = readLineLocked(p, DramCat::Dealloc);
        for (unsigned i = 0; i < content.size(); ++i) {
            Word w = content.word(i);
            if (w == 0)
                continue;
            if (content.meta(i).isPlid()) {
                rcTouch(w);
                if (store_.addRef(w, -1) == 0)
                    work.push_back(w);
            } else if (content.meta(i).isVsid() && vsidRelease_) {
                vsidRelease_(w);
            }
        }

        // Invalidate in all caches; a dirty (never-written) line's
        // writeback is cancelled outright.
        const std::uint64_t home = store_.bucketOfPlid(p);
        l1_.invalidate({LineKind::Data, p}, home);
        l2_.invalidate({LineKind::Data, p}, home);

        // Clear the signature: mark the bucket's signature line dirty.
        auto sig = l2_.access({LineKind::Sig, home}, home, /*dirty=*/true,
                              DramCat::Dealloc);
        if (!sig.hit)
            dram_.count(DramCat::Dealloc);
        countWriteback(sig);

        store_.freeLine(p);
        ++deallocs_;
        if (lineFreed_)
            lineFreed_(p);
    }
}

std::uint32_t
Memory::refCount(Plid plid) const
{
    std::lock_guard<std::recursive_mutex> g(mutex_);
    return store_.refCount(plid);
}

bool
Memory::isLive(Plid plid) const
{
    std::lock_guard<std::recursive_mutex> g(mutex_);
    return store_.isLive(plid);
}

std::uint64_t
Memory::allocTransient()
{
    std::lock_guard<std::recursive_mutex> g(mutex_);
    return nextTransient_++;
}

void
Memory::transientAccess(std::uint64_t transient_id, bool write)
{
    std::lock_guard<std::recursive_mutex> g(mutex_);
    const CacheKey key{LineKind::Transient, transient_id};
    const std::uint64_t home = mix64(transient_id);
    auto a1 = l1_.access(key, home, write, DramCat::Write);
    if (a1.writeback) {
        auto spill = l2_.access(a1.victimKey, a1.victimHome,
                                /*dirty=*/true, *a1.writeback);
        countWriteback(spill);
    }
    if (!a1.hit) {
        auto a2 = l2_.access(key, home, write, DramCat::Write);
        // A store miss on a transient is a full-line write: no fetch.
        if (!a2.hit && !write) {
            dram_.count(DramCat::Read);
            ++rowActs_;
        }
        countWriteback(a2);
    }
}

void
Memory::invalidateTransient(std::uint64_t transient_id)
{
    std::lock_guard<std::recursive_mutex> g(mutex_);
    const CacheKey key{LineKind::Transient, transient_id};
    const std::uint64_t home = mix64(transient_id);
    l1_.invalidate(key, home);
    l2_.invalidate(key, home);
}

void
Memory::vsmAccess(Vsid vsid, bool write)
{
    std::lock_guard<std::recursive_mutex> g(mutex_);
    const std::uint64_t id = kVsmIdBase | vsid;
    const CacheKey key{LineKind::Transient, id};
    const std::uint64_t home = mix64(id);
    auto a = l2_.access(key, home, write, DramCat::Write);
    if (!a.hit && !write) {
        dram_.count(DramCat::Read);
        ++rowActs_;
    }
    countWriteback(a);
}

void
Memory::setVsidReleaseHook(std::function<void(Vsid)> hook)
{
    std::lock_guard<std::recursive_mutex> g(mutex_);
    vsidRelease_ = std::move(hook);
}

void
Memory::setLineFreedHook(std::function<void(Plid)> hook)
{
    std::lock_guard<std::recursive_mutex> g(mutex_);
    lineFreed_ = std::move(hook);
}

void
Memory::resetTraffic()
{
    std::lock_guard<std::recursive_mutex> g(mutex_);
    dram_.reset();
    lookupOps_.reset();
    readOps_.reset();
    sigFalsePositives_.reset();
    deallocs_.reset();
    rowActs_.reset();
    l1_.hits.reset();
    l1_.misses.reset();
    l2_.hits.reset();
    l2_.misses.reset();
}

} // namespace hicamp
