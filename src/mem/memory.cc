#include "mem/memory.hh"

#include <vector>

#include "common/logging.hh"
#include "obs/trace.hh"

namespace hicamp {

namespace {

/** Transient-id namespace for virtual-segment-map entries. */
constexpr std::uint64_t kVsmIdBase = std::uint64_t{1} << 40;

} // namespace

Memory::Memory(const MemoryConfig &cfg)
    : cfg_(cfg),
      store_(cfg.numBuckets, cfg.lineBytes / kWordBytes,
             LineStore::Limits{cfg.overflowCapacity, cfg.maxLiveLines,
                               cfg.refcountBits, cfg.epochReclaim,
                               cfg.epochBatchSize},
             cfg.lockStripes),
      l1_(cfg.l1Bytes, cfg.l1Ways, cfg.lineBytes,
          /*content_searchable=*/false),
      l2_(cfg.l2Bytes, cfg.l2Ways, cfg.lineBytes,
          /*content_searchable=*/true),
      faults_(cfg.faults.allowEnvOverride
                  ? FaultConfig::fromEnv(cfg.faults)
                  : cfg.faults)
{
    HICAMP_ASSERT(cfg.lineBytes == 16 || cfg.lineBytes == 32 ||
                      cfg.lineBytes == 64,
                  "line size must be 16, 32 or 64 bytes");
    bankActs_.reset(new std::atomic<std::uint64_t>[store_.numStripes()]);
    for (unsigned s = 0; s < store_.numStripes(); ++s)
        bankActs_[s].store(0, std::memory_order_relaxed);
    pressure_.add("oom_events", &oomEvents_);
    pressure_.add("flips_recovered", &flipsRecovered_);
    pressure_.add("flips_silent", &flipsSilent_);
    pressure_.add("commit_conflicts", &contention_.conflicts);
    pressure_.add("commit_retries", &contention_.retries);
    pressure_.add("backoff_iters", &contention_.backoffIters);
    pressure_.add("commit_exhausted", &contention_.exhausted);
    registerMetrics();
}

Memory::~Memory()
{
    // Members die in reverse declaration order: metrics_ (and the
    // grace histogram it owns) before store_, whose destructor drains
    // the remaining limbo and would fire the observer into the freed
    // histogram. Detach it first; the final drains go unobserved.
    store_.epochDomain().setGraceObserver({});
}

void
Memory::registerMetrics()
{
    // DRAM traffic by Fig. 6 category. Registered per category (not as
    // one total) so snapshot deltas preserve the attribution.
    struct CatName {
        DramCat cat;
        const char *name;
    };
    static constexpr CatName kCats[] = {
        {DramCat::Read, "dram.read"},       {DramCat::Write, "dram.write"},
        {DramCat::Lookup, "dram.lookup"},   {DramCat::Dealloc, "dram.dealloc"},
        {DramCat::RefCount, "dram.refcount"},
    };
    for (const auto &[cat, name] : kCats) {
        DramCat c = cat;
        metrics_.addCounter(name, [this, c] { return dram_.get(c); },
                            [this, c] { dram_.resetCat(c); });
    }

    metrics_.addCounter("ops.lookups", &lookupOps_);
    metrics_.addCounter("ops.reads", &readOps_);
    metrics_.addCounter("lookup.sig_false_positives", &sigFalsePositives_);
    metrics_.addCounter("lookup.dedup_hits", &dedupHits_);
    metrics_.addCounter("lookup.overflow_walks", &overflowWalks_);
    metrics_.addCounter("deallocs", &deallocs_);
    metrics_.addCounter("errors_detected", &errorsDetected_);
    metrics_.addCounter("row_activations", &rowActs_);

    metrics_.addCounter("cache.l1.hits", &l1_.hits);
    metrics_.addCounter("cache.l1.misses", &l1_.misses);
    metrics_.addCounter("cache.l2.hits", &l2_.hits);
    metrics_.addCounter("cache.l2.misses", &l2_.misses);

    metrics_.addCounter("pressure.oom_events", &oomEvents_);
    metrics_.addCounter("pressure.flips_recovered", &flipsRecovered_);
    metrics_.addCounter("pressure.flips_silent", &flipsSilent_);
    metrics_.addCounter("contention.conflicts", &contention_.conflicts);
    metrics_.addCounter("contention.retries", &contention_.retries);
    metrics_.addCounter("contention.backoff_iters",
                        &contention_.backoffIters);
    metrics_.addCounter("contention.exhausted", &contention_.exhausted);

    metrics_.addGauge("store.live_lines", [this] { return liveLines(); });
    metrics_.addGauge("store.live_bytes", [this] { return liveBytes(); });
    metrics_.addGauge("store.overflow_lines",
                      [this] { return store_.overflowLines(); });
    metrics_.addGauge("store.saturated_lines",
                      [this] { return store_.saturatedLines(); });

    candHist_ = &metrics_.histogram("lookup.candidates");

    // Epoch-reclamation telemetry (§12): advance/free tallies and the
    // current limbo depth as gauges (they are the domain's own
    // monotone counters; a registry reset must not clear them), plus
    // the grace-period latency histogram, fed by the observer below.
    // Wired here — before any concurrent use — per the observer's
    // installation contract.
    EpochManager &ep = store_.epochDomain();
    metrics_.addGauge("epoch.epoch", [&ep] { return ep.epoch(); });
    metrics_.addGauge("epoch.advances", [&ep] { return ep.advances(); });
    metrics_.addGauge("epoch.deferred_frees",
                      [&ep] { return ep.deferredFrees(); });
    metrics_.addGauge("epoch.limbo_depth", [&ep] {
        return static_cast<std::uint64_t>(ep.limboDepth());
    });
    graceHist_ = &metrics_.histogram("epoch.grace_ns");
    ep.setGraceObserver(
        [this](std::uint64_t ns) { graceHist_->record(ns); });
}

void
Memory::bankTouch(std::uint64_t home, std::uint64_t n)
{
    rowActs_ += n;
    bankActs_[store_.stripeOfBucket(home)].fetch_add(
        n, std::memory_order_relaxed);
}

bool
Memory::countWriteback(const HicampCache::Access &a)
{
    if (a.writeback) {
        dram_.count(*a.writeback);
        return true;
    }
    return false;
}

bool
Memory::rcTouch(Plid plid)
{
    const std::uint64_t home = store_.bucketOfPlid(plid);
    bool touched = false;
    auto a = l2_.access({LineKind::Rc, home}, home, /*dirty=*/true,
                        DramCat::RefCount);
    if (!a.hit) {
        dram_.count(DramCat::RefCount); // fetch the RC line
        touched = true;
    }
    return countWriteback(a) || touched;
}

HICAMP_REF_PRIMITIVE Plid
Memory::lookup(const Line &content, bool *was_new)
{
    auto g = guard();
    DramStats::WriterScope ws(dram_);
    return lookupImpl(content, was_new);
}

HICAMP_REF_PRIMITIVE Plid
Memory::lookupImpl(const Line &content, bool *was_new)
{
    if (was_new)
        *was_new = false;
    if (content.isZero())
        return kZeroPlid;

    ++lookupOps_;
    const std::uint64_t hash = content.contentHash();

    // Fast path: the line is resident in the LLC; the content search
    // needs only the single set the hash bucket maps to (Fig. 3). The
    // cache entry is an unsynchronized hint, though: the line may be
    // mid-retirement, or — vanishingly rare — its slot reused for
    // other content. Acquire a reference only if it is still live,
    // then re-verify against ground truth before trusting it.
    if (auto cached = l2_.lookupContent(content, hash)) {
        if (store_.incRefIfLive(*cached)) {
            if (store_.read(*cached) == content) {
                ++l2_.hits;
                ++dedupHits_;
                rcTouch(*cached);
                HICAMP_TRACE_EVENT(Mem, Lookup, *cached, cfg_.lineBytes);
                return *cached;
            }
            decRefImpl(*cached); // reused slot: undo, take slow path
        }
    }
    ++l2_.misses;

    const std::uint64_t home = store_.bucketOf(hash);

    // Fault injection: a fresh allocation (the content is not yet
    // stored) may fail transiently. Decided before any state or
    // traffic changes, so the failure path has no side effects.
    if (faults_.config().anyEnabled() && !store_.find(content).found &&
        faults_.failAlloc()) {
        ++oomEvents_;
        throw MemPressureError(MemStatus::OutOfMemory,
                               "injected allocation failure");
    }

    // The reference for a hit is taken inside the bucket's critical
    // section, so a hit on a dying (count zero) line resurrects it
    // before its retirement can proceed (DESIGN.md §7).
    auto res = store_.findOrInsert(content, /*take_ref=*/true);
    bool dram_touched = false;

    // Protocol step: read the bucket's signature line.
    {
        auto a = l2_.access({LineKind::Sig, home}, home, /*dirty=*/false,
                            DramCat::Lookup);
        if (!a.hit) {
            dram_.count(DramCat::Lookup);
            dram_touched = true;
        }
        dram_touched |= countWriteback(a);
    }

    // Probe each signature-matching candidate's data line, using the
    // content copies captured under the bucket lock (the slots
    // themselves may since have been freed by other threads).
    for (std::size_t i = 0; i < res.candidates.size(); ++i) {
        auto a = l2_.access({LineKind::Data, res.candidates[i]}, home,
                            /*dirty=*/false, DramCat::Lookup,
                            &res.candidateLines[i]);
        if (!a.hit) {
            dram_.count(DramCat::Lookup);
            dram_touched = true;
        }
        dram_touched |= countWriteback(a);
    }
    sigFalsePositives_ +=
        res.candidates.size() - (res.found && !res.overflow ? 1 : 0);
    candHist_->record(res.candidates.size());

    // Walking the overflow pointer area costs an extra row access.
    if (res.overflow) {
        ++overflowWalks_;
        dram_.count(DramCat::Lookup);
        dram_touched = true;
    }

    if (res.status != MemStatus::Ok) {
        // Capacity exhausted: the probe traffic above was still paid,
        // but nothing was allocated and no references were taken.
        ++oomEvents_;
        if (dram_touched)
            bankTouch(home);
        throw MemPressureError(res.status,
                               "line allocation failed: store at "
                               "capacity");
    }

    if (!res.found) {
        // Fresh allocation: update the signature line and place the
        // new content in the LLC; both write back in the lookup
        // category when evicted (paper footnote 12).
        auto sig = l2_.access({LineKind::Sig, home}, home, /*dirty=*/true,
                              DramCat::Lookup);
        dram_touched |= countWriteback(sig);
        auto dat = l2_.access({LineKind::Data, res.plid}, home,
                              /*dirty=*/true, DramCat::Lookup, &content);
        dram_touched |= countWriteback(dat);
        if (was_new)
            *was_new = true;
    }

    if (res.found)
        ++dedupHits_;
    dram_touched |= rcTouch(res.plid);
    // All protocol commands (signature, candidates, allocation, the
    // RC line) target the home bucket's DRAM row: one activation,
    // plus one for the overflow area when it was walked.
    if (dram_touched)
        bankTouch(home, 1 + (res.overflow ? 1 : 0));
    HICAMP_TRACE_EVENT(Mem, Lookup, res.plid, cfg_.lineBytes);
    return res.plid;
}

HICAMP_REF_PRIMITIVE Plid
Memory::internLine(const Line &content)
{
    auto g = guard();
    DramStats::WriterScope ws(dram_);
    bool fresh = false;
    Plid plid;
    try {
        plid = lookupImpl(content, &fresh);
    } catch (const MemPressureError &) {
        // Consume-on-failure: the caller handed over one reference
        // per child; release them so the failed intern leaks nothing.
        for (unsigned i = 0; i < content.size(); ++i) {
            if (content.meta(i).isPlid() && content.word(i) != 0)
                decRefImpl(content.word(i));
        }
        throw;
    }
    if (!fresh && plid != kZeroPlid) {
        // Dedup hit: the existing line already owns references to its
        // children; release the caller's.
        for (unsigned i = 0; i < content.size(); ++i) {
            if (content.meta(i).isPlid() && content.word(i) != 0)
                decRefImpl(content.word(i));
        }
    }
    return plid;
}

Line
Memory::readLine(Plid plid, DramCat cat)
{
    auto g = guard();
    DramStats::WriterScope ws(dram_);
    return readLineImpl(plid, cat);
}

void
Memory::modelLineFetch(Plid plid, std::uint64_t home,
                       const Line &content, DramCat cat)
{
    const CacheKey key{LineKind::Data, plid};
    auto a1 = l1_.access(key, home, /*dirty=*/false, cat);
    if (a1.writeback) {
        // Only transient lines are ever dirty in L1; spill into L2
        // (full-line write: no fetch needed).
        auto spill = l2_.access(a1.victimKey, a1.victimHome,
                                /*dirty=*/true, *a1.writeback);
        countWriteback(spill);
    }
    if (a1.hit)
        return;
    auto a2 = l2_.access(key, home, /*dirty=*/false, cat, &content);
    if (!a2.hit) {
        dram_.count(cat);
        bankTouch(home);
        // Fault injection: the fetched copy may arrive with a
        // multi-bit error past per-line ECC. The §3.1 check catches
        // it when the corrupted content hashes to a different bucket;
        // the model then refetches (one more DRAM access) and
        // recovers. A flip that hashes back to the same bucket would
        // escape — counted, but the model keeps serving ground truth
        // to stay self-consistent.
        unsigned widx = 0, bidx = 0;
        if (faults_.flipBit(content.size(), &widx, &bidx)) {
            Line flipped = content;
            flipped.set(widx, flipped.word(widx) ^ (Word{1} << bidx),
                        flipped.meta(widx));
            if (store_.bucketOf(flipped.contentHash()) != home) {
                ++errorsDetected_;
                ++flipsRecovered_;
                dram_.count(cat); // the recovery refetch
            } else {
                ++flipsSilent_;
            }
        }
        // §3.1 error detection: the line was fetched from DRAM;
        // recompute its content hash and check it still selects the
        // bucket it lives in. Escapes only if the corruption happens
        // to hash back to the same bucket.
        if (store_.bucketOf(content.contentHash()) != home) {
            ++errorsDetected_;
            warn("memory error detected: line content no longer "
                 "matches its hash bucket");
        }
    }
    countWriteback(a2);
}

Line
Memory::readLineImpl(Plid plid, DramCat cat)
{
    if (plid == kZeroPlid)
        return makeLine();
    HICAMP_TRACE_SCOPE(Mem, ReadLine, plid, cfg_.lineBytes);
    ++readOps_;
    Line content;
    std::uint64_t home;
    if (cfg_.epochReclaim) {
        // Zero-lock read section (§12): one guard pins the epoch
        // across the ground-truth copy and the home-bucket fetch; the
        // store's internal guards simply re-enter it (the nesting
        // count deepens — no second pin, no lock). The caller holds a
        // reference, so the worst case is a line sitting in limbo,
        // whose content is intact by the limbo invariant.
        EpochGuard eg(store_.epochDomain());
        content = store_.read(plid);
        home = store_.bucketOfPlid(plid);
    } else {
        // Legacy mode: the store takes stripe shared locks internally
        // for overflow lines; home-bucket reads stay lock-free via
        // publication ordering.
        content = store_.read(plid);
        home = store_.bucketOfPlid(plid);
    }
    modelLineFetch(plid, home, content, cat);
    return content;
}

HICAMP_REF_PRIMITIVE void
Memory::incRef(Plid plid)
{
    if (plid == kZeroPlid)
        return;
    auto g = guard();
    DramStats::WriterScope ws(dram_);
    HICAMP_TRACE_EVENT(Mem, IncRef, plid, 0);
    // Fault injection: model a refcount update that overflows its
    // §3.1 field width — the count pins sticky at the ceiling and the
    // line becomes immortal (graceful degradation, not an error).
    if (faults_.saturateRef())
        store_.saturateRef(plid);
    else
        // hicamp-lint: retain-ok(incRef IS the acquire primitive; the
        // caller owns the reference it asked for)
        store_.addRef(plid, +1);
    rcTouch(plid);
}

HICAMP_REF_PRIMITIVE bool
Memory::tryRetain(Plid plid)
{
    if (plid == kZeroPlid)
        return true;
    auto g = guard();
    DramStats::WriterScope ws(dram_);
    {
        // §12: pin the conditional CAS and its liveness revalidation
        // in one epoch section, so the slot cannot be physically
        // recycled between the count update and the re-check. The
        // assert is the revalidation: a successful CAS implies a
        // nonzero prior count, which retire()'s locked zero-check can
        // never have passed — so the line must still be published.
        EpochGuard eg(store_.epochDomain());
        if (!store_.incRefIfLive(plid))
            return false;
        HICAMP_DEBUG_ASSERT(store_.isLive(plid),
                            "tryRetain raced a retirement that "
                            "unpublished a referenced line");
    }
    HICAMP_TRACE_EVENT(Mem, IncRef, plid, 0);
    rcTouch(plid);
    return true;
}

HICAMP_REF_PRIMITIVE void
Memory::decRef(Plid plid)
{
    auto g = guard();
    DramStats::WriterScope ws(dram_);
    decRefImpl(plid);
}

HICAMP_REF_PRIMITIVE void
Memory::decRefImpl(Plid plid)
{
    if (plid == kZeroPlid)
        return;
    HICAMP_TRACE_EVENT(Mem, DecRef, plid, 0);
    rcTouch(plid);
    if (store_.addRef(plid, -1) == 0)
        reclaim(plid);
}

HICAMP_REF_PRIMITIVE void
Memory::reclaim(Plid first)
{
    // Hardware state machine for recursive deallocation (paper §3.1),
    // modelled as an explicit worklist.
    std::vector<Plid> work{first};
    while (!work.empty()) {
        Plid p = work.back();
        work.pop_back();

        // Atomically unpublish the line if its count is still zero.
        // A concurrent lookup may have dedup-hit (resurrected) it in
        // the meantime — both paths serialize on the bucket's stripe
        // lock, and a resurrected line is simply kept.
        auto retired = store_.retire(p);
        if (!retired)
            continue;
        HICAMP_TRACE_EVENT(Mem, Reclaim, p, cfg_.lineBytes);

        // Model the dealloc read of the dying line; its content now
        // lives only in the retired copy.
        ++readOps_;
        modelLineFetch(p, retired->homeBucket, retired->content,
                       DramCat::Dealloc);
        const Line &content = retired->content;
        for (unsigned i = 0; i < content.size(); ++i) {
            Word w = content.word(i);
            if (w == 0)
                continue;
            if (content.meta(i).isPlid()) {
                rcTouch(w);
                if (store_.addRef(w, -1) == 0)
                    work.push_back(w);
            } else if (content.meta(i).isVsid() && vsidRelease_) {
                vsidRelease_(w);
            }
        }

        // Invalidate in all caches; a dirty (never-written) line's
        // writeback is cancelled outright.
        l1_.invalidate({LineKind::Data, p}, retired->homeBucket);
        l2_.invalidate({LineKind::Data, p}, retired->homeBucket);

        // Clear the signature: mark the bucket's signature line dirty.
        auto sig = l2_.access({LineKind::Sig, retired->homeBucket},
                              retired->homeBucket, /*dirty=*/true,
                              DramCat::Dealloc);
        if (!sig.hit)
            dram_.count(DramCat::Dealloc);
        countWriteback(sig);

        ++deallocs_;
        // Invoked with no memory-system lock held (DESIGN.md §7).
        if (lineFreed_)
            lineFreed_(p);
    }
}

std::uint32_t
Memory::refCount(Plid plid) const
{
    auto g = guard();
    return store_.refCount(plid);
}

bool
Memory::isLive(Plid plid) const
{
    auto g = guard();
    return store_.isLive(plid);
}

std::uint64_t
Memory::allocTransient()
{
    return nextTransient_.fetch_add(1, std::memory_order_relaxed);
}

void
Memory::transientAccess(std::uint64_t transient_id, bool write)
{
    auto g = guard();
    DramStats::WriterScope ws(dram_);
    HICAMP_TRACE_EVENT(Mem, Transient, transient_id, cfg_.lineBytes);
    const CacheKey key{LineKind::Transient, transient_id};
    const std::uint64_t home = mix64(transient_id);
    auto a1 = l1_.access(key, home, write, DramCat::Write);
    if (a1.writeback) {
        auto spill = l2_.access(a1.victimKey, a1.victimHome,
                                /*dirty=*/true, *a1.writeback);
        countWriteback(spill);
    }
    if (!a1.hit) {
        auto a2 = l2_.access(key, home, write, DramCat::Write);
        // A store miss on a transient is a full-line write: no fetch.
        if (!a2.hit && !write) {
            dram_.count(DramCat::Read);
            bankTouch(home);
        }
        countWriteback(a2);
    }
}

void
Memory::invalidateTransient(std::uint64_t transient_id)
{
    auto g = guard();
    const CacheKey key{LineKind::Transient, transient_id};
    const std::uint64_t home = mix64(transient_id);
    l1_.invalidate(key, home);
    l2_.invalidate(key, home);
}

void
Memory::vsmAccess(Vsid vsid, bool write)
{
    auto g = guard();
    DramStats::WriterScope ws(dram_);
    HICAMP_TRACE_EVENT(Mem, VsmTouch, vsid, 0);
    const std::uint64_t id = kVsmIdBase | vsid;
    const CacheKey key{LineKind::Transient, id};
    const std::uint64_t home = mix64(id);
    auto a = l2_.access(key, home, write, DramCat::Write);
    if (!a.hit && !write) {
        dram_.count(DramCat::Read);
        bankTouch(home);
    }
    countWriteback(a);
}

void
Memory::setVsidReleaseHook(std::function<void(Vsid)> hook)
{
    auto g = guard();
    vsidRelease_ = std::move(hook);
}

void
Memory::setLineFreedHook(std::function<void(Plid)> hook)
{
    auto g = guard();
    lineFreed_ = std::move(hook);
}

void
Memory::resetTraffic()
{
    auto g = guard();
    dram_.reset();
    lookupOps_.reset();
    readOps_.reset();
    sigFalsePositives_.reset();
    deallocs_.reset();
    rowActs_.reset();
    for (unsigned s = 0; s < store_.numStripes(); ++s)
        bankActs_[s].store(0, std::memory_order_relaxed);
    l1_.hits.reset();
    l1_.misses.reset();
    l2_.hits.reset();
    l2_.misses.reset();
}

} // namespace hicamp
