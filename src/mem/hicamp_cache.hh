/**
 * @file
 * The HICAMP cache of paper Fig. 3: a set-associative cache supporting
 * both read-by-PLID and lookup-by-content. The key structural property
 * is that every main-memory hash bucket maps to exactly one cache set
 * (the set index is a subset of the content-hash bits carried in the
 * PLID), so a content lookup needs to search only one set.
 *
 * Besides data lines the cache also holds signature lines and
 * reference-count lines (one of each per bucket) and transient
 * (non-deduplicated) lines, so that the protocol traffic of lookups,
 * refcounting and iterator writes is filtered by the cache exactly as
 * in the paper's model.
 */

#ifndef HICAMP_MEM_HICAMP_CACHE_HH
#define HICAMP_MEM_HICAMP_CACHE_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/atomic_annotations.hh"
#include "common/line.hh"

#include "common/stats.hh"
#include "common/thread_annotations.hh"
#include "common/types.hh"
#include "mem/dram_stats.hh"

namespace hicamp {

/** What a cached line holds. */
enum class LineKind : std::uint8_t {
    Data = 0,   ///< an immutable content-unique line, keyed by PLID
    Sig,        ///< a bucket's signature line, keyed by bucket number
    Rc,         ///< a bucket's reference-count line, keyed by bucket
    Transient,  ///< a mutable per-core transient line, keyed by address
};

/** Cache tag: kind plus kind-specific id. */
struct CacheKey {
    LineKind kind;
    std::uint64_t id;

    friend bool
    operator==(const CacheKey &a, const CacheKey &b)
    {
        return a.kind == b.kind && a.id == b.id;
    }
};

/**
 * One level of the HICAMP cache. Data entries keep a copy of their
 * line content so lookup-by-content can match in-cache lines without a
 * memory access.
 *
 * Thread-safe: sets are guarded by an array of striped spinlocks (a
 * set maps to one lock; distinct sets mostly take distinct locks), so
 * accesses to different sets — like lookups in different memory
 * buckets — proceed in parallel. Hit/miss tallies are sharded and the
 * LRU clock is a relaxed atomic. These are leaf locks in the memory
 * system's lock order (DESIGN.md §7): no other lock is ever acquired
 * while one is held.
 */
class HicampCache
{
  public:
    /**
     * @param size_bytes  capacity
     * @param ways        associativity
     * @param line_bytes  line size (16/32/64)
     * @param content_searchable retain line content for content lookups
     */
    HicampCache(std::uint64_t size_bytes, unsigned ways,
                unsigned line_bytes, bool content_searchable);

    struct Access {
        bool hit;
        /// category of the dirty victim's writeback, if any
        std::optional<DramCat> writeback;
        /// identity of the dirty victim (for L1 -> L2 writebacks)
        CacheKey victimKey{LineKind::Data, 0};
        std::uint64_t victimHome = 0;
    };

    /**
     * Probe-and-fill. @p home supplies the set-index bits: the home
     * bucket for Data/Sig/Rc lines, the line address for transients.
     * @p dirty marks the (inserted or hit) entry dirty; @p wb_cat is
     * the DRAM category its eventual writeback belongs to.
     * @p content is retained for Data entries when content-searchable.
     */
    Access access(const CacheKey &key, std::uint64_t home, bool dirty,
                  DramCat wb_cat, const Line *content = nullptr)
        HICAMP_EXCLUDES(locks_);

    /**
     * Lookup-by-content: search the single set identified by
     * @p content_hash for a Data entry matching @p content.
     * Returns the matching PLID, or nullopt.
     */
    std::optional<Plid> lookupContent(const Line &content,
                                      std::uint64_t content_hash) const
        HICAMP_EXCLUDES(locks_);

    /**
     * Drop an entry (e.g. on deallocation-invalidate). Returns true if
     * the entry was present and dirty (its writeback is cancelled).
     */
    bool invalidate(const CacheKey &key, std::uint64_t home)
        HICAMP_EXCLUDES(locks_);

    bool contains(const CacheKey &key, std::uint64_t home) const
        HICAMP_EXCLUDES(locks_);

    /** Clear all dirty bits (writebacks completed out-of-band). */
    void cleanAll() HICAMP_EXCLUDES(locks_);

    /** Drop every entry (cold-start a measurement). */
    void invalidateAll() HICAMP_EXCLUDES(locks_);

    std::uint64_t numSets() const { return numSets_; }

    // hicamp-lint: stat-ok(registered as cache.l1.* / cache.l2.* into
    // the owning Memory's registry by Memory::registerMetrics())
    ShardedCounter hits;
    ShardedCounter misses;

  private:
    struct Entry {
        bool valid = false;
        bool dirty = false;
        CacheKey key{LineKind::Data, 0};
        std::uint64_t home = 0;
        std::uint64_t lru = 0;
        DramCat wbCat = DramCat::Write;
        Line content; ///< valid for Data entries when searchable
        bool hasContent = false;
    };

    /**
     * RAII guard over the spinlock covering @p set (§7 rank 4, leaf:
     * co-acquires the leaf anchor, so taking any other memory-system
     * lock under it is a lock-order error).
     */
    class HICAMP_SCOPED_CAPABILITY SetGuard
    {
      public:
        SetGuard(const HicampCache &c, std::uint64_t set)
            HICAMP_ACQUIRE(c.locks_, lockrank::leaf)
            : bank_(c.locks_),
              idx_(static_cast<unsigned>(set & (kLockStripes - 1)))
        {
            bank_.lock(idx_);
        }
        ~SetGuard() HICAMP_RELEASE() { bank_.unlock(idx_); }
        SetGuard(const SetGuard &) = delete;
        SetGuard &operator=(const SetGuard &) = delete;

      private:
        SpinBank &bank_;
        unsigned idx_;
    };

    static constexpr unsigned kLockStripes = 256; // power of two

    std::uint64_t setIndex(std::uint64_t home) const
    {
        return home & (numSets_ - 1);
    }

    unsigned ways_;
    std::uint64_t numSets_;
    bool searchable_;
    HICAMP_ATOMIC_COUNTER std::atomic<std::uint64_t> lruClock_{0};
    std::vector<Entry> entries_ HICAMP_GUARDED_BY(locks_);
    mutable SpinBank locks_;
};

} // namespace hicamp

#endif // HICAMP_MEM_HICAMP_CACHE_HH
