/**
 * @file
 * The HICAMP cache of paper Fig. 3: a set-associative cache supporting
 * both read-by-PLID and lookup-by-content. The key structural property
 * is that every main-memory hash bucket maps to exactly one cache set
 * (the set index is a subset of the content-hash bits carried in the
 * PLID), so a content lookup needs to search only one set.
 *
 * Besides data lines the cache also holds signature lines and
 * reference-count lines (one of each per bucket) and transient
 * (non-deduplicated) lines, so that the protocol traffic of lookups,
 * refcounting and iterator writes is filtered by the cache exactly as
 * in the paper's model.
 */

#ifndef HICAMP_MEM_HICAMP_CACHE_HH
#define HICAMP_MEM_HICAMP_CACHE_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "common/line.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "mem/dram_stats.hh"

namespace hicamp {

/** What a cached line holds. */
enum class LineKind : std::uint8_t {
    Data = 0,   ///< an immutable content-unique line, keyed by PLID
    Sig,        ///< a bucket's signature line, keyed by bucket number
    Rc,         ///< a bucket's reference-count line, keyed by bucket
    Transient,  ///< a mutable per-core transient line, keyed by address
};

/** Cache tag: kind plus kind-specific id. */
struct CacheKey {
    LineKind kind;
    std::uint64_t id;

    friend bool
    operator==(const CacheKey &a, const CacheKey &b)
    {
        return a.kind == b.kind && a.id == b.id;
    }
};

/**
 * One level of the HICAMP cache. Data entries keep a copy of their
 * line content so lookup-by-content can match in-cache lines without a
 * memory access.
 */
class HicampCache
{
  public:
    /**
     * @param size_bytes  capacity
     * @param ways        associativity
     * @param line_bytes  line size (16/32/64)
     * @param content_searchable retain line content for content lookups
     */
    HicampCache(std::uint64_t size_bytes, unsigned ways,
                unsigned line_bytes, bool content_searchable);

    struct Access {
        bool hit;
        /// category of the dirty victim's writeback, if any
        std::optional<DramCat> writeback;
        /// identity of the dirty victim (for L1 -> L2 writebacks)
        CacheKey victimKey{LineKind::Data, 0};
        std::uint64_t victimHome = 0;
    };

    /**
     * Probe-and-fill. @p home supplies the set-index bits: the home
     * bucket for Data/Sig/Rc lines, the line address for transients.
     * @p dirty marks the (inserted or hit) entry dirty; @p wb_cat is
     * the DRAM category its eventual writeback belongs to.
     * @p content is retained for Data entries when content-searchable.
     */
    Access access(const CacheKey &key, std::uint64_t home, bool dirty,
                  DramCat wb_cat, const Line *content = nullptr);

    /**
     * Lookup-by-content: search the single set identified by
     * @p content_hash for a Data entry matching @p content.
     * Returns the matching PLID, or nullopt.
     */
    std::optional<Plid> lookupContent(const Line &content,
                                      std::uint64_t content_hash) const;

    /**
     * Drop an entry (e.g. on deallocation-invalidate). Returns true if
     * the entry was present and dirty (its writeback is cancelled).
     */
    bool invalidate(const CacheKey &key, std::uint64_t home);

    bool contains(const CacheKey &key, std::uint64_t home) const;

    /** Clear all dirty bits (writebacks completed out-of-band). */
    void
    cleanAll()
    {
        for (auto &e : entries_)
            e.dirty = false;
    }

    /** Drop every entry (cold-start a measurement). */
    void
    invalidateAll()
    {
        for (auto &e : entries_) {
            e.valid = false;
            e.dirty = false;
            e.hasContent = false;
        }
    }

    std::uint64_t numSets() const { return numSets_; }

    Counter hits;
    Counter misses;

  private:
    struct Entry {
        bool valid = false;
        bool dirty = false;
        CacheKey key{LineKind::Data, 0};
        std::uint64_t home = 0;
        std::uint64_t lru = 0;
        DramCat wbCat = DramCat::Write;
        Line content; ///< valid for Data entries when searchable
        bool hasContent = false;
    };

    std::uint64_t setIndex(std::uint64_t home) const
    {
        return home & (numSets_ - 1);
    }

    unsigned ways_;
    std::uint64_t numSets_;
    bool searchable_;
    std::uint64_t lruClock_ = 0;
    std::vector<Entry> entries_;
};

} // namespace hicamp

#endif // HICAMP_MEM_HICAMP_CACHE_HH
