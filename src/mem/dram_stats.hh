/**
 * @file
 * DRAM traffic accounting for the HICAMP memory system, split into the
 * categories of paper Figure 6: data reads, writebacks, lookup traffic
 * (signature line reads/updates plus data line reads/writes performed
 * by lookup-by-content), deallocation traffic and reference-count
 * traffic.
 */

#ifndef HICAMP_MEM_DRAM_STATS_HH
#define HICAMP_MEM_DRAM_STATS_HH

#include <atomic>
#include <cstdint>

#include "common/atomic_annotations.hh"
#include "common/logging.hh"

#include "common/stats.hh"

namespace hicamp {

/** Category a DRAM access is attributed to (Fig. 6 stack). */
enum class DramCat : std::uint8_t {
    Read = 0,    ///< data line read (cache miss on read-by-PLID)
    Write,       ///< writeback of mutable state (transient, segment map)
    Lookup,      ///< signature reads/updates + data traffic of lookups
    Dealloc,     ///< signature clears + line reads during deallocation
    RefCount,    ///< reference-count line reads/writebacks
    NumCats
};

/**
 * Per-category DRAM access counters. Counted concurrently from every
 * thread driving the memory system, so each category is a sharded
 * (cache-line-striped, relaxed-atomic) tally.
 *
 * Quiescent-point contract (DESIGN.md §9): get()/total() sum the
 * stripes with relaxed loads, so a read concurrent with writers can
 * tear across categories — e.g. a lookup's DRAM access landing after
 * total() passed its stripe but before it passed the RC stripe.
 * Totals are therefore only *exact* when no memory operation is in
 * flight (end of phase, after joins), which is when benches and tests
 * read them. Debug builds enforce the contract: Memory's public
 * mutating ops hold a WriterScope, and get()/total() assert that no
 * writer is registered instead of silently returning mid-flight
 * values.
 */
class DramStats
{
  public:
    /**
     * Registered-writer epoch mark: Memory's public ops hold one for
     * their duration so debug builds can detect counter reads that
     * race an in-flight operation. Compiled to nothing under NDEBUG.
     */
    class WriterScope
    {
      public:
#ifndef NDEBUG
        explicit WriterScope(const DramStats &s) : s_(&s)
        {
            // hicamp-atomic: waive(scope-open mark only; the release
            // decrement is the publication quiescent()'s acquire
            // pairs with, and an open that races the quiescence check
            // is invisible to it at any order)
            s_->writers_.fetch_add(1, std::memory_order_relaxed);
        }
        ~WriterScope()
        {
            s_->writers_.fetch_sub(1, std::memory_order_release);
        }
#else
        explicit WriterScope(const DramStats &s) { (void)s; }
#endif
        WriterScope(const WriterScope &) = delete;
        WriterScope &operator=(const WriterScope &) = delete;

      private:
#ifndef NDEBUG
        const DramStats *s_;
#endif
    };

    /** True when no registered writer (memory op) is in flight. */
    bool
    quiescent() const
    {
        return writers_.load(std::memory_order_acquire) == 0;
    }

    void
    count(DramCat cat, std::uint64_t n = 1)
    {
        counts_[static_cast<unsigned>(cat)] += n;
    }

    std::uint64_t
    get(DramCat cat) const
    {
        HICAMP_DEBUG_ASSERT(quiescent(),
                            "DramStats read while a memory op is in "
                            "flight: counters are only exact at "
                            "quiescent points");
        return counts_[static_cast<unsigned>(cat)].value();
    }

    std::uint64_t reads() const { return get(DramCat::Read); }
    std::uint64_t writes() const { return get(DramCat::Write); }
    std::uint64_t lookups() const { return get(DramCat::Lookup); }
    std::uint64_t deallocs() const { return get(DramCat::Dealloc); }
    std::uint64_t refcounts() const { return get(DramCat::RefCount); }

    std::uint64_t
    total() const
    {
        HICAMP_DEBUG_ASSERT(quiescent(),
                            "DramStats read while a memory op is in "
                            "flight: counters are only exact at "
                            "quiescent points");
        std::uint64_t t = 0;
        for (const auto &c : counts_)
            t += c.value();
        return t;
    }

    void
    reset()
    {
        for (auto &c : counts_)
            c.reset();
    }

    void
    resetCat(DramCat cat)
    {
        counts_[static_cast<unsigned>(cat)].reset();
    }

  private:
    // hicamp-lint: stat-ok(absorbed into the registry by Memory's
    // constructor — dram.<category> entries)
    ShardedCounter counts_[static_cast<unsigned>(DramCat::NumCats)];
    /// in-flight WriterScope holders (debug contract check only)
    HICAMP_ATOMIC_PUBLISH mutable std::atomic<std::uint64_t> writers_{0};
};

} // namespace hicamp

#endif // HICAMP_MEM_DRAM_STATS_HH
