/**
 * @file
 * DRAM traffic accounting for the HICAMP memory system, split into the
 * categories of paper Figure 6: data reads, writebacks, lookup traffic
 * (signature line reads/updates plus data line reads/writes performed
 * by lookup-by-content), deallocation traffic and reference-count
 * traffic.
 */

#ifndef HICAMP_MEM_DRAM_STATS_HH
#define HICAMP_MEM_DRAM_STATS_HH

#include <cstdint>

#include "common/stats.hh"

namespace hicamp {

/** Category a DRAM access is attributed to (Fig. 6 stack). */
enum class DramCat : std::uint8_t {
    Read = 0,    ///< data line read (cache miss on read-by-PLID)
    Write,       ///< writeback of mutable state (transient, segment map)
    Lookup,      ///< signature reads/updates + data traffic of lookups
    Dealloc,     ///< signature clears + line reads during deallocation
    RefCount,    ///< reference-count line reads/writebacks
    NumCats
};

/**
 * Per-category DRAM access counters. Counted concurrently from every
 * thread driving the memory system, so each category is a sharded
 * (cache-line-striped, relaxed-atomic) tally; totals are exact at
 * quiescent points, which is when benches and tests read them.
 */
class DramStats
{
  public:
    void
    count(DramCat cat, std::uint64_t n = 1)
    {
        counts_[static_cast<unsigned>(cat)] += n;
    }

    std::uint64_t
    get(DramCat cat) const
    {
        return counts_[static_cast<unsigned>(cat)].value();
    }

    std::uint64_t reads() const { return get(DramCat::Read); }
    std::uint64_t writes() const { return get(DramCat::Write); }
    std::uint64_t lookups() const { return get(DramCat::Lookup); }
    std::uint64_t deallocs() const { return get(DramCat::Dealloc); }
    std::uint64_t refcounts() const { return get(DramCat::RefCount); }

    std::uint64_t
    total() const
    {
        std::uint64_t t = 0;
        for (const auto &c : counts_)
            t += c.value();
        return t;
    }

    void
    reset()
    {
        for (auto &c : counts_)
            c.reset();
    }

  private:
    ShardedCounter counts_[static_cast<unsigned>(DramCat::NumCats)];
};

} // namespace hicamp

#endif // HICAMP_MEM_DRAM_STATS_HH
