#include "mem/hicamp_cache.hh"

#include <bit>

#include "common/logging.hh"
#include "obs/trace.hh"

namespace hicamp {

HicampCache::HicampCache(std::uint64_t size_bytes, unsigned ways,
                         unsigned line_bytes, bool content_searchable)
    : ways_(ways), numSets_(size_bytes / (line_bytes * ways)),
      searchable_(content_searchable), entries_(numSets_ * ways_),
      locks_(kLockStripes)
{
    HICAMP_ASSERT(numSets_ > 0 && std::has_single_bit(numSets_),
                  "cache set count must be a power of two");
}

HicampCache::Access
HicampCache::access(const CacheKey &key, std::uint64_t home, bool dirty,
                    DramCat wb_cat, const Line *content)
{
    const std::uint64_t set = setIndex(home);
    SetGuard g(*this, set);
    Entry *base = &entries_[set * ways_];
    Entry *victim = base;
    for (unsigned w = 0; w < ways_; ++w) {
        Entry &e = base[w];
        if (e.valid && e.key == key) {
            e.lru = lruClock_.fetch_add(1, std::memory_order_relaxed) + 1;
            if (dirty) {
                e.dirty = true;
                e.wbCat = wb_cat;
            }
            if (content && searchable_) {
                e.content = *content;
                e.hasContent = true;
            }
            ++hits;
            HICAMP_TRACE_EVENT(Cache, CacheHit, key.id, 0);
            return {true, std::nullopt};
        }
        if (!e.valid) {
            victim = &e;
        } else if (victim->valid && e.lru < victim->lru) {
            victim = &e;
        }
    }
    ++misses;
    HICAMP_TRACE_EVENT(Cache, CacheMiss, key.id, 0);
    Access result{false, std::nullopt};
    if (victim->valid && victim->dirty) {
        result.writeback = victim->wbCat;
        result.victimKey = victim->key;
        result.victimHome = victim->home;
    }
    victim->valid = true;
    victim->dirty = dirty;
    victim->key = key;
    victim->home = home;
    victim->lru = lruClock_.fetch_add(1, std::memory_order_relaxed) + 1;
    victim->wbCat = wb_cat;
    if (content && searchable_) {
        victim->content = *content;
        victim->hasContent = true;
    } else {
        victim->hasContent = false;
    }
    return result;
}

std::optional<Plid>
HicampCache::lookupContent(const Line &content,
                           std::uint64_t content_hash) const
{
    if (!searchable_)
        return std::nullopt;
    const std::uint64_t set = setIndex(content_hash);
    SetGuard g(*this, set);
    const Entry *base = &entries_[set * ways_];
    for (unsigned w = 0; w < ways_; ++w) {
        const Entry &e = base[w];
        if (e.valid && e.key.kind == LineKind::Data && e.hasContent &&
            e.content == content) {
            return e.key.id;
        }
    }
    return std::nullopt;
}

bool
HicampCache::invalidate(const CacheKey &key, std::uint64_t home)
{
    const std::uint64_t set = setIndex(home);
    SetGuard g(*this, set);
    Entry *base = &entries_[set * ways_];
    for (unsigned w = 0; w < ways_; ++w) {
        Entry &e = base[w];
        if (e.valid && e.key == key) {
            bool dirty = e.dirty;
            e.valid = false;
            e.dirty = false;
            e.hasContent = false;
            return dirty;
        }
    }
    return false;
}

bool
HicampCache::contains(const CacheKey &key, std::uint64_t home) const
{
    const std::uint64_t set = setIndex(home);
    SetGuard g(*this, set);
    const Entry *base = &entries_[set * ways_];
    for (unsigned w = 0; w < ways_; ++w) {
        if (base[w].valid && base[w].key == key)
            return true;
    }
    return false;
}

void
HicampCache::cleanAll()
{
    for (std::uint64_t set = 0; set < numSets_; ++set) {
        SetGuard g(*this, set);
        Entry *base = &entries_[set * ways_];
        for (unsigned w = 0; w < ways_; ++w)
            base[w].dirty = false;
    }
}

void
HicampCache::invalidateAll()
{
    for (std::uint64_t set = 0; set < numSets_; ++set) {
        SetGuard g(*this, set);
        Entry *base = &entries_[set * ways_];
        for (unsigned w = 0; w < ways_; ++w) {
            base[w].valid = false;
            base[w].dirty = false;
            base[w].hasContent = false;
        }
    }
}

} // namespace hicamp
