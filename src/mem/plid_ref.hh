/**
 * @file
 * RAII ownership handle for line references (DESIGN.md §10).
 *
 * A PlidRef owns exactly one reference to a line (or nothing). It is
 * move-only — copying a handle would need a second reference, which is
 * an explicit `PlidRef::acquire` — and its destructor releases the
 * reference, so every early return, thrown MemPressureError and
 * forgotten branch is balanced by construction. The escape hatches for
 * the residual manual-transfer points are `release()` (give up
 * ownership, e.g. when a line or container takes the reference over)
 * and `adopt()` (take over a reference acquired elsewhere); both are
 * annotated so `tools/analyze/refcount_check.py` tracks the transfer.
 *
 * The handle holds a Memory* rather than requiring one per call so a
 * default-constructed (empty) PlidRef is a valid "no reference" value.
 */

#ifndef HICAMP_MEM_PLID_REF_HH
#define HICAMP_MEM_PLID_REF_HH

#include <utility>

#include "common/ownership.hh"
#include "mem/memory.hh"

namespace hicamp {

class PlidRef
{
  public:
    /** Empty handle: owns nothing. */
    PlidRef() = default;

    ~PlidRef() { reset(); }

    PlidRef(PlidRef &&o) noexcept
        : mem_(std::exchange(o.mem_, nullptr)),
          plid_(std::exchange(o.plid_, kZeroPlid))
    {
    }

    PlidRef &
    operator=(PlidRef &&o) noexcept
    {
        if (this != &o) {
            reset();
            mem_ = std::exchange(o.mem_, nullptr);
            plid_ = std::exchange(o.plid_, kZeroPlid);
        }
        return *this;
    }

    /// One handle = one reference; a second reference is an explicit
    /// PlidRef::acquire (see tests/compile_fail/plidref_copy.cc).
    PlidRef(const PlidRef &) = delete;
    PlidRef &operator=(const PlidRef &) = delete;

    /** Take over a reference the caller already owns (e.g. the result
     *  of Memory::lookup / internLine / Hicamp::boxSegment). */
    static PlidRef
    adopt(Memory &mem, HICAMP_CONSUMES_REF Plid plid)
    {
        return PlidRef(&mem, plid);
    }

    /** Acquire a fresh reference on a PLID the caller can prove live
     *  (it holds another reference). */
    static PlidRef
    acquire(Memory &mem, HICAMP_BORROWS_REF Plid plid)
    {
        mem.incRef(plid);
        return PlidRef(&mem, plid);
    }

    /** Conditional acquisition through Memory::tryRetain: returns an
     *  owning handle, or an empty one when the line was unpublished or
     *  mid-reclamation (the caller must fall back or retry).
     *
     *  The retain and its liveness revalidation run inside one epoch
     *  guard (DESIGN.md §12): the guard keeps the slot's storage from
     *  being recycled between the count CAS and the re-check, so a
     *  returned handle names a line that was provably live at a point
     *  inside the guard. The defensive undo runs *after* the guard
     *  exits — releasing a reference can reclaim, and reclamation
     *  takes stripe locks, which are forbidden inside a pinned
     *  section (§7 rank order; the epoch-guard lint rule). */
    static PlidRef
    tryAcquire(Memory &mem, Plid plid)
    {
        bool retained, revalidated;
        {
            EpochGuard g(mem.store().epochDomain());
            retained = mem.tryRetain(plid);
            revalidated = retained && mem.isLive(plid);
        }
        if (!retained)
            return PlidRef();
        if (!revalidated) {
            mem.decRef(plid); // lost a race with retirement: undo
            return PlidRef();
        }
        return PlidRef(&mem, plid);
    }

    /** Lookup-by-content, owning the fresh reference.
     *  @throws MemPressureError like Memory::lookup. */
    static PlidRef
    lookup(Memory &mem, const Line &content, bool *was_new = nullptr)
    {
        return PlidRef(&mem, mem.lookup(content, was_new));
    }

    /** Dedup-aware interning (Memory::internLine): consumes the child
     *  references inside @p content, owns the result. */
    static PlidRef
    intern(Memory &mem, HICAMP_CONSUMES_REF const Line &content)
    {
        return PlidRef(&mem, mem.internLine(content));
    }

    /** The referenced PLID (kZeroPlid when empty); ownership stays
     *  with the handle. */
    HICAMP_BORROWS_REF Plid get() const { return plid_; }

    /** True when the handle owns a reference to a nonzero line. */
    explicit operator bool() const
    {
        return mem_ != nullptr && plid_ != kZeroPlid;
    }

    /** Give up ownership: the caller (or whatever structure it hands
     *  the PLID to) now owns the reference. The handle is empty
     *  afterwards. */
    HICAMP_RETURNS_REF Plid
    release()
    {
        mem_ = nullptr;
        return std::exchange(plid_, kZeroPlid);
    }

    /** Release the owned reference now (no-op when empty). */
    void
    reset()
    {
        Memory *m = std::exchange(mem_, nullptr);
        Plid p = std::exchange(plid_, kZeroPlid);
        if (m != nullptr)
            m->decRef(p);
    }

  private:
    PlidRef(Memory *mem, Plid plid) : mem_(mem), plid_(plid) {}

    Memory *mem_ = nullptr;
    Plid plid_ = kZeroPlid;
};

} // namespace hicamp

#endif // HICAMP_MEM_PLID_REF_HH
