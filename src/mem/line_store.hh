/**
 * @file
 * Ground-truth state of the deduplicating HICAMP main memory,
 * organized per paper Fig. 2: DRAM is divided into hash buckets (one
 * per DRAM row), each holding a signature line, a reference-count
 * line, twelve data ways and an overflow pointer area. A line lives in
 * the bucket selected by the hash of its content; its PLID is the
 * concatenation of bucket number and way.
 *
 * Concurrency model (DESIGN.md §7, §12): synchronization mirrors the
 * paper's memory organization instead of a single global lock.
 *  - A striped std::shared_mutex array covers the hash buckets for
 *    the *mutating* paths: insert-on-miss, 1→0 retirement and the
 *    overflow hash chain. Mutations in different stripes run in
 *    parallel, exactly as independent DRAM rows would service
 *    independent commands.
 *  - Reference counts are std::atomic, updated with commutative CAS
 *    loops that need no bucket lock; only the dealloc path (a count
 *    observed at zero) takes the bucket stripe exclusively, via
 *    retire(), to unpublish the line.
 *  - Lines are immutable once published (the architecture's core
 *    invariant), so the *read* paths — read(), isLive(), refCount(),
 *    incRefIfLive() and the dedup probe of find()/findOrInsert() —
 *    acquire no lock at all. Publication is a release-store of the
 *    bucket's occupancy bit after the content is written; readers
 *    acquire-load that bit before materializing. Overflow lines live
 *    in per-stripe chunked slabs whose chunk directory only grows,
 *    so they are indexable lock-free too.
 *  - What makes lock-free reads safe against slot *reuse* is epoch-
 *    based reclamation (mem/epoch.hh, ck_epoch style): retire()
 *    unpublishes a line but parks its storage in limbo, and the slot
 *    is cleared and reused only after a grace period proves no
 *    reader that could still see it remains. Content-reading paths
 *    pin an EpochGuard for their extent. Limits::epochReclaim=false
 *    restores the seed's immediate-free behavior (reads of overflow
 *    content then fall back to the stripe's shared lock).
 *
 * This class is pure state plus protocol *descriptions* (which DRAM
 * rows an operation touches); traffic attribution and cache filtering
 * are the job of mem/memory.hh. Storage is flat arrays so multi-
 * million-line workloads stay compact.
 */

#ifndef HICAMP_MEM_LINE_STORE_HH
#define HICAMP_MEM_LINE_STORE_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <utility>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/atomic_annotations.hh"
#include "common/line.hh"
#include "common/ownership.hh"
#include "common/status.hh"
#include "common/thread_annotations.hh"
#include "common/types.hh"
#include "mem/epoch.hh"

namespace hicamp {

/** "No limit" value for the capacity knobs below. */
inline constexpr std::uint64_t kUnlimited = ~std::uint64_t{0};

/** Layout constants of a hash bucket (Fig. 2). */
struct BucketLayout {
    static constexpr unsigned kWays = 16;      ///< ways per bucket
    static constexpr unsigned kFirstData = 2;  ///< way 0 = sigs, 1 = RCs
    static constexpr unsigned kNumData = 12;   ///< data ways 2..13
    static constexpr unsigned kWayBits = 4;    ///< log2(kWays)
};

/** PLIDs above this base address the overflow area. */
inline constexpr Plid kOverflowBase = Plid{1} << 48;

/** Overflow PLID layout: stripe in bits [47:32], shard index below. */
inline constexpr unsigned kOverflowStripeShift = 32;
inline constexpr std::uint64_t kOverflowIdxMask =
    (std::uint64_t{1} << kOverflowStripeShift) - 1;

/**
 * Deduplicated line storage with per-line reference counts.
 *
 * Reference-count discipline: every PLID value held by the software
 * model (inside a committed line, in a segment-map root, or in a
 * snapshot/iterator handle) owns one reference. Lines whose count
 * reaches zero are unpublished and freed through retire(), which the
 * Memory layer drives (it also handles the recursive release of
 * children, since that requires reading line content through the
 * cache model).
 */
class LineStore
{
  public:
    /** Finite-capacity knobs (paper Fig. 2 / §3.1). */
    struct Limits {
        /// lines the overflow area can hold at once
        std::uint64_t overflowCapacity = kUnlimited;
        /// total live lines (home buckets + overflow)
        std::uint64_t maxLiveLines = kUnlimited;
        /// reference-count field width; counts saturate sticky at
        /// 2^bits - 1 (§3.1: limited-width counts, saturating)
        unsigned refcountBits = 32;
        /// Epoch-based reclamation (§12): retire() parks storage in
        /// limbo and read paths run lock-free under an EpochGuard.
        /// false restores the seed's immediate-free, stripe-locked
        /// behavior (the bench's "sharded" mode).
        bool epochReclaim = true;
        /// retirements batched per epoch-advance attempt
        unsigned epochBatchSize = 32;
    };

    /**
     * @param num_buckets number of hash buckets (power of two)
     * @param line_words  words per line (2, 4 or 8)
     * @param limits      finite-capacity model (default: unlimited)
     * @param stripes     lock stripes over the buckets (power of two;
     *                    clamped to num_buckets)
     */
    LineStore(std::uint64_t num_buckets, unsigned line_words,
              const Limits &limits, unsigned stripes = kDefaultStripes);
    LineStore(std::uint64_t num_buckets, unsigned line_words);

    /** Drains limbo (no concurrent readers may exist) and frees the
     *  overflow slabs. */
    ~LineStore();

    static constexpr unsigned kDefaultStripes = 64;

    unsigned lineWords() const { return lineWords_; }
    std::uint64_t numBuckets() const { return numBuckets_; }
    unsigned numStripes() const { return numStripes_; }

    /** Home bucket for a content hash. */
    std::uint64_t bucketOf(std::uint64_t content_hash) const
    {
        return bucketOfHash(content_hash, numBuckets_);
    }

    /** Lock stripe covering a bucket. */
    unsigned stripeOfBucket(std::uint64_t bucket) const
    {
        return static_cast<unsigned>(bucket) & (numStripes_ - 1);
    }

    /** Home bucket of an existing line (overflow lines know theirs). */
    std::uint64_t bucketOfPlid(Plid plid) const;

    /** Result of a find-or-insert style probe. */
    struct FindResult {
        Plid plid = kZeroPlid;
        bool found = false;
        /// line landed in (or was found in) the overflow area
        bool overflow = false;
        /// OutOfMemory when an allocation was needed but the home
        /// bucket was full and the overflow area / live-line budget
        /// was exhausted (plid stays 0; the probe traffic in
        /// `candidates` was still paid)
        MemStatus status = MemStatus::Ok;
        /// PLIDs whose signature matched, in probe order (the final
        /// element is the match itself when found in the home bucket)
        std::vector<Plid> candidates;
        /// content of each candidate, captured under the bucket lock
        /// so callers can model probe traffic without re-reading
        /// slots that may concurrently be freed
        std::vector<Line> candidateLines;
    };

    /**
     * Look for @p content; if absent, allocate it (in its home bucket
     * or, when full, the overflow area). With @p take_ref the result
     * additionally owns one reference, acquired atomically inside the
     * bucket's critical section — the only way a dedup hit on a
     * dying (count zero, not yet retired) line can safely resurrect
     * it. Allocation can fail against the Limits: the result then
     * carries MemStatus::OutOfMemory, no reference is taken and no
     * state was changed.
     */
    HICAMP_REF_PRIMITIVE FindResult
    findOrInsert(const Line &content, bool take_ref = false)
        HICAMP_EXCLUDES(stripes_);

    /** Probe only; plid==0 in the result if absent. */
    FindResult find(const Line &content) const
        HICAMP_EXCLUDES(stripes_);

    /**
     * Read a line by PLID. Zero PLID returns the all-zero line.
     * Entirely lock-free under epoch reclamation: the whole copy
     * runs inside an EpochGuard, so a concurrent retire() parks the
     * storage in limbo instead of clearing it under us (§12). With
     * epochReclaim off, overflow lines are copied under the stripe's
     * shared lock instead. The caller must hold a reference or be
     * inside a guard that predates retirement — reading a PLID that
     * was already *physically* freed is undefined. Exempt from the
     * capability analysis: reads published content with no lock,
     * made sound by the liveMask_ release/acquire publication
     * protocol plus the epoch grace period (DESIGN.md §7/§12), which
     * the lock model cannot express.
     */
    Line read(Plid plid) const HICAMP_NO_THREAD_SAFETY_ANALYSIS;

    /** True if the PLID names a live line. Lock-free. */
    bool isLive(Plid plid) const HICAMP_EXCLUDES(stripes_);

    /**
     * Reference-count snapshot. Lock-free; pins an EpochGuard so the
     * counter word itself is stable storage for the duration of the
     * load. The value is *advisory* the instant it returns —
     * concurrent holders may retain/release at any time — so it must
     * only feed statistics, audits at quiescent points, or
     * heuristics, never a free decision (retire() re-checks the
     * count under the stripe lock; DESIGN.md §12).
     */
    std::uint32_t refCount(Plid plid) const HICAMP_EXCLUDES(stripes_);

    /// @name Epoch reclamation surface (DESIGN.md §12)
    /// @{
    /** This store's epoch domain (guard entry for composite read
     *  sections, metrics export, tests). */
    EpochManager &epochDomain() const { return epoch_; }

    /** Lines retired but still parked in limbo (unpublished, storage
     *  intact until grace expiry). */
    std::uint64_t
    limboLines() const
    {
        return limboLines_.load(std::memory_order_relaxed);
    }

    /**
     * Drive the epoch until every retirement deferred before the
     * call is physically freed (best effort if readers stay pinned).
     * The auditor runs this before exact-snapshot passes; returns
     * the number of deferred frees executed. Must not be called with
     * a stripe lock held.
     */
    std::size_t
    epochSynchronize() const HICAMP_EXCLUDES(stripes_)
    {
        return epoch_.synchronize();
    }

    /**
     * Visit the PLID of every line currently parked in limbo
     * (auditor support: limbo lines are retired-but-not-freed, never
     * dangling). Runs under the limbo lock; @p fn must not retire,
     * defer or advance.
     */
    void forEachLimbo(const std::function<void(Plid)> &fn) const;
    /// @}

    /// @name Stripe-lock traffic counters (bench lock-wall model)
    /// @{
    /** Exclusive stripe-lock acquisitions since construction. */
    std::uint64_t stripeLockExclusiveOps() const;
    /** Shared stripe-lock acquisitions since construction. */
    std::uint64_t stripeLockSharedOps() const;
    /// @}

    /**
     * Adjust a refcount; returns the new value. Lock-free commutative
     * CAS loop (Balaji et al.: unordered commutative updates need no
     * serialization). Counts saturate sticky at refcountMax() (§3.1):
     * once pinned, neither increments nor decrements move the count
     * again and the line is immortal.
     */
    HICAMP_REF_PRIMITIVE std::uint32_t addRef(Plid plid, std::int32_t delta)
        HICAMP_EXCLUDES(stripes_);

    /**
     * Take a reference iff the line is currently live with a nonzero
     * (or saturated) count — the acquire path for PLIDs obtained from
     * unsynchronized channels (LLC content hits, seqlock-published
     * roots), where the line may concurrently be retired. Returns
     * false when the count was zero or the line is gone; the caller
     * must then fall back to a locked lookup.
     */
    HICAMP_REF_PRIMITIVE bool incRefIfLive(Plid plid)
        HICAMP_EXCLUDES(stripes_);

    /// @name Finite-capacity model
    /// @{
    /** Saturation ceiling implied by Limits::refcountBits. */
    std::uint32_t refcountMax() const { return refMax_; }

    /** True if this line's count is pinned at the ceiling. */
    bool
    refcountSaturated(Plid plid) const
    {
        return plid != kZeroPlid && refCount(plid) == refMax_;
    }

    /** Pin a line's count at the ceiling (fault injection). */
    HICAMP_REF_PRIMITIVE void saturateRef(Plid plid)
        HICAMP_EXCLUDES(stripes_);

    /** Lines whose counts have saturated (they can never be freed). */
    std::uint64_t
    saturatedLines() const
    {
        return saturatedLines_.load(std::memory_order_relaxed);
    }

    std::uint64_t overflowCapacity() const
    {
        return limits_.overflowCapacity;
    }
    std::uint64_t maxLiveLines() const { return limits_.maxLiveLines; }
    /// @}

    /** A line atomically unpublished by retire(). */
    struct Retired {
        Line content;
        std::uint64_t homeBucket = 0;
        bool overflow = false;
    };

    /**
     * Atomically unpublish and free @p plid if it is still live with
     * refcount zero; returns its content for the caller's recursive
     * child release. Returns nullopt when a concurrent dedup hit
     * resurrected the line (or another thread already retired it) —
     * the caller must then do nothing. This closes the classic
     * dedup-store race between a count dropping to zero and a lookup
     * re-finding the same content: both paths serialize on the
     * bucket's stripe lock, and findOrInsert(take_ref) re-increments
     * under it.
     *
     * Under epoch reclamation the unpublish is immediate but the
     * physical free is deferred: the slot goes to limbo and is
     * cleared/reused only at grace expiry, so lock-free readers that
     * entered their guard before this call still see intact storage
     * (§12). The store's one reference on the content is consumed
     * here, at retirement — limbo parks storage, not ownership.
     */
    HICAMP_REF_PRIMITIVE std::optional<Retired> retire(Plid plid)
        HICAMP_EXCLUDES(stripes_);

    /**
     * Free a (zero-refcount) line slot; clears its signature.
     * Asserts the line is live with refcount zero (single-owner
     * teardown paths; concurrent code uses retire()).
     */
    HICAMP_REF_PRIMITIVE void freeLine(Plid plid)
        HICAMP_EXCLUDES(stripes_);

    /** Number of live lines (excluding the implicit zero line). */
    std::uint64_t
    liveLines() const
    {
        return liveLines_.load(std::memory_order_relaxed);
    }
    /** Bytes of live line payload. */
    std::uint64_t liveBytes() const
    {
        return liveLines() * lineWords_ * kWordBytes;
    }
    /** Lines currently resident in the overflow area. */
    std::uint64_t
    overflowLines() const
    {
        return overflowLive_.load(std::memory_order_relaxed);
    }

    /** Sum of all live reference counts (for invariant checks). */
    std::uint64_t totalRefs() const HICAMP_EXCLUDES(stripes_);

    /**
     * Fault injection (tests/benches): XOR a stored word of a live
     * home-bucket line, emulating a multi-bit DRAM error that slips
     * past per-line ECC. The paper's §3.1 content-hash-vs-bucket
     * check is expected to catch almost all such corruptions.
     */
    void corruptForTest(Plid plid, unsigned word_idx, Word xor_mask)
        HICAMP_EXCLUDES(stripes_);

    /// @name Audit support (src/analysis)
    /// @{
    /**
     * Invoke @p fn for every live line: home-bucket lines in slot
     * order, then overflow lines per stripe. Passes the PLID, the
     * materialized content and the stored reference count. Takes each
     * stripe's shared lock while scanning it; run at quiescent points
     * for an exact snapshot.
     */
    void forEachLive(
        const std::function<void(Plid, const Line &, std::uint32_t)> &fn)
        const HICAMP_EXCLUDES(stripes_);

    /** Stored signature byte of a live home-bucket line. */
    std::uint8_t storedSignature(Plid plid) const
        HICAMP_EXCLUDES(stripes_);

    /**
     * True if a live overflow line is reachable through the overflow
     * pointer chain indexed by its content hash (Fig. 2); an
     * unindexed line would never dedup against future lookups.
     */
    bool overflowChainContains(Plid plid) const
        HICAMP_EXCLUDES(stripes_);
    /// @}

    /// @name Corruption injection (tests of the auditor itself)
    /// @{
    /**
     * Duplicate a live line's content into the overflow area,
     * bypassing the find-before-insert protocol — forges a dedup
     * violation (two PLIDs for one content). Returns the new PLID,
     * live with refcount 0.
     */
    Plid forgeDuplicateForTest(Plid plid) HICAMP_EXCLUDES(stripes_);

    /**
     * Overwrite one stored word *and* its tag in place, bypassing
     * content-uniqueness — forges dangling references, DAG cycles or
     * non-canonical structure for auditor detection tests.
     */
    void poisonWordForTest(Plid plid, unsigned word_idx, Word w,
                           WordMeta m) HICAMP_EXCLUDES(stripes_);
    /// @}

  private:
    struct OverflowEntry {
        Line line;
        std::uint64_t homeBucket = 0;
        std::uint64_t hash = 0; ///< memoized content hash (satellite:
                                ///< no recompute on free/chain checks)
        HICAMP_ATOMIC_CLAIM_CAS std::atomic<std::uint32_t> refs{0};
        HICAMP_ATOMIC_PUBLISH std::atomic<bool> live{false};
        /// retired but parked in limbo: content stays intact for
        /// readers whose guard predates the retirement (§12)
        HICAMP_ATOMIC_PUBLISH std::atomic<bool> limbo{false};
    };

    /**
     * Per-stripe overflow area: a chunked slab plus the Fig. 2 hash
     * chain. The chunk directory and published size are atomic and
     * only ever grow, so entry *lookup* by index is lock-free (an
     * acquire load of the directory slot pairs with the release
     * publish in overflowGrow); entry allocation, the free list and
     * the hash-chain index are mutated under the stripe's exclusive
     * lock.
     */
    struct OverflowShard {
        /// 1024 entries per chunk, 512 chunks: 512Ki entries/shard
        static constexpr unsigned kChunkShift = 10;
        static constexpr std::uint64_t kChunkSize = std::uint64_t{1}
                                                    << kChunkShift;
        static constexpr std::uint64_t kMaxChunks = 512;

        HICAMP_ATOMIC_PUBLISH std::vector<std::atomic<OverflowEntry *>>
            chunks{kMaxChunks};
        /// published entry count
        HICAMP_ATOMIC_PUBLISH std::atomic<std::uint64_t> size{0};
        std::vector<std::uint64_t> freeList;
        /// content-hash -> entry indices (Fig. 2 overflow chains)
        std::unordered_multimap<std::uint64_t, std::uint64_t> index;

        ~OverflowShard()
        {
            for (auto &c : chunks)
                // hicamp-atomic: waive(single-threaded destruction;
                // no reader outlives the shard)
                delete[] c.load(std::memory_order_relaxed);
        }
    };

    bool isOverflow(Plid plid) const { return plid >= kOverflowBase; }

    static unsigned
    overflowStripe(Plid plid)
    {
        return static_cast<unsigned>((plid >> kOverflowStripeShift) &
                                     0xffff);
    }
    static std::uint64_t
    overflowIdx(Plid plid)
    {
        return plid & kOverflowIdxMask;
    }
    Plid
    overflowPlid(unsigned stripe, std::uint64_t idx) const
    {
        return kOverflowBase |
               (static_cast<std::uint64_t>(stripe)
                << kOverflowStripeShift) |
               idx;
    }

    /** Flat slot index of a home-bucket PLID. */
    std::uint64_t slotOf(Plid plid) const;
    bool slotLive(std::uint64_t slot) const
    {
        return (liveMask_[slot / BucketLayout::kNumData].load(
                    std::memory_order_acquire) >>
                (slot % BucketLayout::kNumData)) &
               1;
    }
    void setSlotLive(std::uint64_t slot, bool live)
        HICAMP_REQUIRES(stripes_);
    bool slotEquals(std::uint64_t slot, const Line &content) const
        HICAMP_REQUIRES_SHARED(stripes_);
    Line materialize(std::uint64_t slot) const
        HICAMP_REQUIRES_SHARED(stripes_);

    /**
     * Lock-free entry lookup by index; nullptr for out-of-range or
     * not-yet-published indices. Safe without any lock: the chunk
     * directory only grows and chunks are freed only at destruction.
     */
    const OverflowEntry *overflowEntryAcquire(unsigned stripe,
                                              std::uint64_t idx) const;
    OverflowEntry *
    overflowEntryAcquire(unsigned stripe, std::uint64_t idx)
    {
        return const_cast<OverflowEntry *>(
            std::as_const(*this).overflowEntryAcquire(stripe, idx));
    }
    /** Entry lookup under the stripe lock (index already validated
     *  by the caller's chain walk or reservation). */
    OverflowEntry &overflowEntryAt(unsigned stripe, std::uint64_t idx)
        const HICAMP_REQUIRES_SHARED(stripes_);
    /** Pop the free list or grow the slab by one published entry. */
    std::uint64_t overflowAllocSlot(OverflowShard &shard)
        HICAMP_REQUIRES(stripes_);

    /** Probe under the caller-held stripe lock. */
    FindResult findImpl(const Line &content, std::uint64_t hash) const
        HICAMP_REQUIRES_SHARED(stripes_);

    /**
     * Lock-free home-bucket probe (§12, ck_hs style): walks the
     * bucket's ways with acquire loads + signature filtering. The
     * caller must hold an EpochGuard (debug-asserted) — that is what
     * keeps a slot's content stable between the occupancy check and
     * the materialize. Exempt from the capability analysis for the
     * same reason as read().
     */
    FindResult probeHome(const Line &content, std::uint64_t hash) const
        HICAMP_NO_THREAD_SAFETY_ANALYSIS;

    /** retire() body (stripe-locked); the public wrapper runs the
     *  epoch batching step after the lock is released. */
    std::optional<Retired> retireLocked(Plid plid)
        HICAMP_EXCLUDES(stripes_);

    /// @name Limbo plumbing (§12)
    /// @{
    bool
    slotLimbo(std::uint64_t slot) const
    {
        // hicamp-atomic: waive(ordering carried by liveMask_: the
        // lock-free live-or-limbo check consults this only after
        // slotLive()'s acquire observed the release clear that
        // retire() sequences after setting limbo; all other callers
        // hold the stripe lock — see setSlotLimbo)
        return (limboMask_[slot / BucketLayout::kNumData].load(
                    std::memory_order_relaxed) >>
                (slot % BucketLayout::kNumData)) &
               1;
    }
    void setSlotLimbo(std::uint64_t slot, bool limbo)
        HICAMP_REQUIRES(stripes_);
    /** Deferred physical frees, run at grace expiry (they take the
     *  stripe lock themselves; never invoked with one held). */
    static void limboFreeHomeThunk(void *self, std::uint64_t slot);
    static void limboFreeOverflowThunk(void *self, std::uint64_t plid);
    void limboFreeHome(std::uint64_t slot) HICAMP_EXCLUDES(stripes_);
    void limboFreeOverflow(Plid plid) HICAMP_EXCLUDES(stripes_);
    /// @}

    void
    noteExcl(unsigned stripe) const
    {
        lockExcl_[stripe].fetch_add(1, std::memory_order_relaxed);
    }
    void
    noteShared(unsigned stripe) const
    {
        lockShared_[stripe].fetch_add(1, std::memory_order_relaxed);
    }

    /** refCount() body; debug-asserts the epoch-guard discipline. */
    std::uint32_t refCountImpl(Plid plid) const;

    /** Saturating commutative refcount adjust (shared CAS loop). */
    std::uint32_t adjustRef(HICAMP_ATOMIC_CLAIM_CAS
                            std::atomic<std::uint32_t> &r,
                            std::int32_t delta);
    /** Increment iff nonzero (or saturated); see incRefIfLive. */
    bool tryAcquireRef(HICAMP_ATOMIC_CLAIM_CAS std::atomic<std::uint32_t> &r);
    void saturateRefSlot(HICAMP_ATOMIC_CLAIM_CAS
                         std::atomic<std::uint32_t> &r);

    /** Reserve one live line against maxLiveLines (CAS, exact). */
    bool tryReserveLine();
    /** Reserve one overflow slot against overflowCapacity. */
    bool tryReserveOverflow();

    std::uint64_t numBuckets_;
    unsigned lineWords_;
    Limits limits_;
    unsigned numStripes_;
    std::uint32_t refMax_;
    HICAMP_ATOMIC_COUNTER std::atomic<std::uint64_t> saturatedLines_{0};

    /// Bucket-striped locks: allocation/dedup/free per stripe. The
    /// whole bank is one capability — stripes are never nested, so
    /// holding *any* stripe licenses access to that stripe's share of
    /// the guarded state below (DESIGN.md §8).
    mutable StripeBank stripes_;

    /// numBuckets * kNumData * lineWords
    std::vector<Word> words_ HICAMP_GUARDED_BY(stripes_);
    std::vector<std::uint16_t> metas_ HICAMP_GUARDED_BY(stripes_);
    /// numBuckets * kNumData
    std::vector<std::uint8_t> sigs_ HICAMP_GUARDED_BY(stripes_);
    HICAMP_ATOMIC_CLAIM_CAS std::vector<std::atomic<std::uint32_t>> refs_;
    /// per-bucket occupancy bitmask over data ways; the release-store
    /// publication point for lock-free readers
    HICAMP_ATOMIC_PUBLISH std::vector<std::atomic<std::uint16_t>> liveMask_;
    /// per-bucket limbo bitmask: retired slots whose storage is
    /// still parked for in-flight readers. Mutated only under the
    /// stripe's exclusive lock; the allocator treats live|limbo as
    /// occupied (§12). Not TSA-guarded: read lock-free by the debug
    /// live-or-limbo assertions on read paths.
    HICAMP_ATOMIC_PUBLISH std::vector<std::atomic<std::uint16_t>> limboMask_;

    /// Per-stripe overflow areas (index == stripe). Not TSA-guarded
    /// as a whole: the chunk directory and published size inside are
    /// lock-free by protocol (see OverflowShard); freeList and index
    /// are mutated only under the stripe's exclusive lock and walked
    /// under at least its shared lock (§8 exemption table).
    std::vector<OverflowShard> overflow_;
    HICAMP_ATOMIC_CLAIM_CAS std::atomic<std::uint64_t> overflowLive_{0};

    HICAMP_ATOMIC_CLAIM_CAS std::atomic<std::uint64_t> liveLines_{0};
    HICAMP_ATOMIC_COUNTER std::atomic<std::uint64_t> limboLines_{0};

    /// Epoch domain for this store's deferred reclamation (§12).
    /// mutable: const read paths pin guards. Declared after the
    /// storage it references; ~LineStore drains limbo explicitly
    /// before any member is destroyed.
    mutable EpochManager epoch_;

    /// per-stripe lock-acquisition tallies (bench lock-wall model)
    HICAMP_ATOMIC_COUNTER mutable std::vector<std::atomic<std::uint64_t>>
        lockExcl_;
    HICAMP_ATOMIC_COUNTER mutable std::vector<std::atomic<std::uint64_t>>
        lockShared_;
};

} // namespace hicamp

#endif // HICAMP_MEM_LINE_STORE_HH
