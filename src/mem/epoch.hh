/**
 * @file
 * Epoch-based safe memory reclamation for the line store
 * (DESIGN.md §12), in the style of ck_epoch: readers pin the global
 * epoch in a per-thread record for the duration of a lock-free read
 * section; writers retire storage into per-epoch limbo lists and
 * physically free a limbo batch only once every reader is known to
 * have observed a later epoch (a *grace period*). This is what lets
 * `readLine`/`refCount`/`isLive` and the dedup probe run with zero
 * locks while 1→0 retirement still reuses slots safely.
 *
 * Protocol summary (full derivation in DESIGN.md §12):
 *
 *  - Each registered thread owns one cache-line-padded Record. A
 *    record is *parked* (quiescent) whenever its pinned epoch is 0 —
 *    idle and exited threads are parked, so they never stall a grace
 *    period.
 *  - EpochGuard pins: `rec.epoch = globalEpoch` with a seq_cst
 *    store + fence *before* any protected load. Guards nest
 *    (re-entrant per thread); only the outermost unpin parks the
 *    record (release store of 0).
 *  - Writers retire via defer(): the callback lands in the limbo
 *    bucket tagged with the current epoch. tryAdvance() bumps the
 *    global epoch only when every non-parked record has observed the
 *    current one, then runs the limbo buckets whose tag is at least
 *    kGraceEpochs behind — by then no reader can still be inside a
 *    section that began before the retirement.
 *  - The TSan-visible ordering chain: a reader's protected loads are
 *    sequenced before its release store of 0 (or of a later epoch);
 *    the grace check acquire-loads that store; the physical free runs
 *    after the check. Deferred frees therefore never race reads that
 *    began before retirement.
 */

#ifndef HICAMP_MEM_EPOCH_HH
#define HICAMP_MEM_EPOCH_HH

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "common/atomic_annotations.hh"
#include "common/logging.hh"
#include "common/thread_annotations.hh"

namespace hicamp {

/**
 * One memory system's epoch domain: the global epoch, the per-thread
 * record table and the per-epoch limbo lists. Also a TSA capability
 * ("epoch", §7 rank 4): EpochGuard co-acquires `lockrank::epoch`, so
 * acquiring a stripe lock inside a pinned read section is a compile
 * error under `-Wthread-safety-beta`.
 *
 * Thread-safety: everything here is safe for concurrent use except
 * setGraceObserver(), which must run before concurrent use begins
 * (it is wired up once, from Memory's metric registration).
 */
class HICAMP_CAPABILITY("epoch") EpochManager
{
  public:
    /** Deferred physical free: fn(ctx, arg). Plain function pointer +
     *  context so retiring a line allocates nothing. */
    using DeferFn = void (*)(void *, std::uint64_t);

    /** Record-table capacity: upper bound on threads concurrently
     *  *registered* in one domain (slots recycle on thread exit). */
    static constexpr unsigned kMaxRecords = 512;
    /** Epochs a retirement must age before it may drain: an item
     *  tagged g frees only once the global epoch reaches g+3, which
     *  puts at least one full grace check after any reader whose pin
     *  raced the retirement (§12 derives the bound). */
    static constexpr std::uint64_t kGraceEpochs = 3;

    explicit EpochManager(unsigned batch_size = 32)
        : batchSize_(batch_size ? batch_size : 1)
    {
        state_ = std::make_shared<State>();
        state_->serial =
            serialCounter_.fetch_add(1, std::memory_order_relaxed) + 1;
    }

    /**
     * The owner must drain limbo (drainAllUnsafe at a point with no
     * concurrent readers) before destruction: deferred callbacks
     * reference the owning store's slots.
     */
    ~EpochManager()
    {
        HICAMP_DEBUG_ASSERT(limboDepth() == 0,
                            "EpochManager died with limbo entries; "
                            "owner must drainAllUnsafe() first");
    }

    EpochManager(const EpochManager &) = delete;
    EpochManager &operator=(const EpochManager &) = delete;

    /// @name Read side (used by EpochGuard)
    /// @{

    /**
     * Enter a read-side section: pin this thread's record at the
     * current global epoch (outermost entry only; nested entries just
     * deepen the per-thread count). Never blocks.
     */
    void
    enter()
    {
        Record &r = threadRecord();
        if (r.nesting++ != 0)
            return; // re-entrant: already pinned
        // Stable-pin loop (Fraser): publish the pin, fence, and
        // re-read until the global epoch held still across the
        // fence. On exit the pin equals an epoch observed *after*
        // the fence, which is what the §12 safety proof needs: any
        // retirement this section could still reach either parks
        // its free behind a grace check that sees this record, or
        // its unpublish is already visible to our reads. The loop
        // terminates because a half-published stale pin blocks
        // further advances as soon as a grace check sees it.
        std::uint64_t e = state_->global.load(std::memory_order_seq_cst);
        for (;;) {
            r.epoch.store(e, std::memory_order_seq_cst);
            // hicamp-atomic: waive(stable-pin fence (§12): orders the
            // pin store before the global re-read so pin and advance
            // cannot both miss each other)
            std::atomic_thread_fence(std::memory_order_seq_cst);
            const std::uint64_t cur =
                state_->global.load(std::memory_order_seq_cst);
            if (cur == e)
                break;
            e = cur; // an advance raced the pin: re-pin and retry
        }
    }

    /** Leave a read-side section; the outermost exit parks the
     *  record (release: orders the section's loads before any
     *  subsequent grace check that observes the park). */
    void
    exit()
    {
        Record &r = threadRecord();
        HICAMP_DEBUG_ASSERT(r.nesting > 0, "epoch exit() underflow");
        if (--r.nesting == 0)
            r.epoch.store(0, std::memory_order_release);
    }

    /** True while the calling thread is inside a guard on this
     *  domain (debug contract checks on lock-free read paths). */
    bool
    activeOnThisThread() const
    {
        Record *r = findThreadRecord();
        return r && r->nesting > 0;
    }
    /// @}

    /// @name Write side
    /// @{

    /**
     * Retire storage: run `fn(ctx, arg)` once no reader that could
     * have observed the storage remains. Callbacks run on whichever
     * thread triggers the drain, with no limbo lock held — they may
     * take stripe locks but must not re-enter defer()'s domain
     * recursively on the same storage.
     */
    void
    defer(DeferFn fn, void *ctx, std::uint64_t arg)
    {
        // Retirement fence (§12): the caller's unpublish stores are
        // sequenced before this fence, and the epoch tag below is a
        // seq_cst load *after* it. A reader whose stable pin lands at
        // tag+1 or later therefore provably sees the unpublish, and a
        // reader pinned at or before the tag holds the drain back —
        // the two cases the grace bound is proved from.
        // hicamp-atomic: waive(retirement fence (§12): orders the
        // caller's unpublish stores before the epoch tag load)
        std::atomic_thread_fence(std::memory_order_seq_cst);
        const auto now = std::chrono::steady_clock::now();
        std::lock_guard<std::mutex> g(state_->limboMu);
        // The epoch tag is read under the limbo lock so an item can
        // never be tagged older than any drain decision that already
        // swept the list.
        const std::uint64_t e =
            state_->global.load(std::memory_order_seq_cst);
        state_->limbo.push_back(Deferred{fn, ctx, arg, e, now});
        depth_.fetch_add(1, std::memory_order_relaxed);
        pending_.fetch_add(1, std::memory_order_relaxed);
    }

    /**
     * One epoch step: succeeds iff every non-parked record has
     * observed the current epoch, then drains every limbo bucket at
     * least kGraceEpochs old. Never blocks; returns whether the
     * epoch moved.
     */
    bool
    tryAdvance()
    {
        std::uint64_t e =
            state_->global.load(std::memory_order_seq_cst);
        // hicamp-atomic: waive(grace-check fence (§12): orders the
        // global read before the per-record pin scan so a pin that
        // raced the read is seen by the scan)
        std::atomic_thread_fence(std::memory_order_seq_cst);
        const unsigned hwm =
            state_->highWater.load(std::memory_order_acquire);
        for (unsigned i = 0; i < hwm; ++i) {
            const std::uint64_t le =
                state_->recs[i].epoch.load(std::memory_order_acquire);
            if (le != 0 && le != e)
                return false; // a reader has not observed e yet
        }
        if (!state_->global.compare_exchange_strong(
                e, e + 1, std::memory_order_acq_rel,
                std::memory_order_relaxed))
            return false; // another writer advanced; let it drain
        advances_.fetch_add(1, std::memory_order_relaxed);
        pending_.store(0, std::memory_order_relaxed);
        drainExpired(e + 1);
        return true;
    }

    /** Batched advance: step the epoch only once batchSize_
     *  retirements have accumulated since the last advance. The
     *  caller must not hold any stripe lock (drained callbacks
     *  reacquire stripes). */
    void
    maybeAdvance()
    {
        // hicamp-lint: relaxed-ok(batching heuristic only; a stale
        // read merely delays the advance to the next retirement)
        if (pending_.load(std::memory_order_relaxed) >= batchSize_)
            tryAdvance();
    }

    /**
     * Drive the epoch far enough that every retirement deferred
     * before the call is freed — provided no reader stays pinned
     * throughout (a pinned reader legitimately holds limbo back; the
     * call then frees what it can and returns). Returns the number
     * of deferred frees executed. Safe to call from a thread that is
     * itself inside a guard: it returns after the partial drain
     * rather than spinning on its own pin.
     */
    std::size_t
    synchronize()
    {
        const std::uint64_t before =
            frees_.load(std::memory_order_relaxed);
        for (unsigned step = 0;
             step <= kGraceEpochs && limboDepth() != 0; ++step) {
            if (!tryAdvance())
                break;
        }
        return static_cast<std::size_t>(
            frees_.load(std::memory_order_relaxed) - before);
    }

    /**
     * Destruction-time drain: run every deferred callback with no
     * grace-period check. Only legal once no concurrent readers can
     * exist (the owning store's destructor, after threads joined).
     */
    void
    drainAllUnsafe()
    {
        std::vector<Deferred> work;
        {
            std::lock_guard<std::mutex> g(state_->limboMu);
            work.swap(state_->limbo);
        }
        runDeferred(work);
    }
    /// @}

    /// @name Introspection / metrics (DESIGN.md §9)
    /// @{
    std::uint64_t
    epoch() const
    {
        // hicamp-atomic: waive(metrics snapshot: a stale epoch value
        // is fine, no protocol decision is taken on it)
        return state_->global.load(std::memory_order_relaxed);
    }
    /** Successful epoch advances (`epoch.advances`). */
    std::uint64_t
    advances() const
    {
        return advances_.load(std::memory_order_relaxed);
    }
    /** Deferred callbacks executed (`epoch.deferred_frees`). */
    std::uint64_t
    deferredFrees() const
    {
        return frees_.load(std::memory_order_relaxed);
    }
    /** Retirements currently parked in limbo (`epoch.limbo_depth`). */
    std::size_t
    limboDepth() const
    {
        return depth_.load(std::memory_order_relaxed);
    }
    unsigned batchSize() const { return batchSize_; }

    /**
     * Observer for grace-period latency: called once per executed
     * deferred free with the nanoseconds the item spent in limbo.
     * Install before concurrent use (Memory's metric registration
     * wires it to the `epoch.grace_ns` histogram).
     */
    void
    setGraceObserver(std::function<void(std::uint64_t)> fn)
    {
        graceObserver_ = std::move(fn);
    }

    /**
     * Visit every retirement currently in limbo (auditor support:
     * limbo lines are live-but-retired, never dangling). The visitor
     * runs under the limbo lock — it must not defer or advance.
     */
    void
    forEachDeferred(
        const std::function<void(DeferFn, void *, std::uint64_t)> &fn)
        const
    {
        std::lock_guard<std::mutex> g(state_->limboMu);
        for (const Deferred &d : state_->limbo)
            fn(d.fn, d.ctx, d.arg);
    }
    /// @}

  private:
    friend class EpochGuard;
    friend struct EpochThreadSlots; // thread-exit slot release

    /** One thread's pin state, padded so records never share a cache
     *  line (the grace check scans them; readers write them). */
    struct alignas(64) Record {
        /** 0 = parked (quiescent); else the pinned global epoch. */
        HICAMP_ATOMIC_EPOCH std::atomic<std::uint64_t> epoch{0};
        /** Slot owner token; 0 = free. Claim/release hand-off is the
         *  acq_rel CAS, so `nesting` below needs no atomicity. */
        HICAMP_ATOMIC_CLAIM_CAS std::atomic<std::uint64_t> owner{0};
        /** Guard re-entrancy depth; touched only by the owner. */
        std::uint32_t nesting = 0;
    };

    struct Deferred {
        DeferFn fn;
        void *ctx;
        std::uint64_t arg;
        std::uint64_t epoch; ///< global epoch at retirement
        std::chrono::steady_clock::time_point retiredAt;
    };

    /**
     * Shared between the manager and thread-exit hooks: a thread's
     * cached record pointer stays releasable exactly as long as the
     * domain lives (thread-local destructors hold a weak_ptr).
     */
    struct State {
        HICAMP_ATOMIC_EPOCH std::atomic<std::uint64_t> global{1};
        HICAMP_ATOMIC_CLAIM_CAS std::atomic<unsigned> highWater{0};
        std::array<Record, kMaxRecords> recs;
        std::mutex limboMu;
        std::vector<Deferred> limbo; // guarded by limboMu
        std::uint64_t serial = 0;    ///< process-unique domain id
    };

    /** This thread's record in this domain, claiming a slot on first
     *  use (released again by the thread-exit hook). */
    Record &threadRecord();
    /** Cached record, or nullptr if this thread never entered. */
    Record *findThreadRecord() const;

    /** Drain every item tagged >= kGraceEpochs behind @p new_epoch;
     *  callbacks run outside the limbo lock. */
    void
    drainExpired(std::uint64_t new_epoch)
    {
        std::vector<Deferred> work;
        {
            std::lock_guard<std::mutex> g(state_->limboMu);
            auto &l = state_->limbo;
            auto keep = std::stable_partition(
                l.begin(), l.end(), [new_epoch](const Deferred &d) {
                    return d.epoch + kGraceEpochs > new_epoch;
                });
            work.assign(keep, l.end());
            l.erase(keep, l.end());
        }
        runDeferred(work);
    }

    void
    runDeferred(std::vector<Deferred> &work)
    {
        if (work.empty())
            return;
        const auto now = std::chrono::steady_clock::now();
        for (const Deferred &d : work) {
            d.fn(d.ctx, d.arg);
            if (graceObserver_)
                graceObserver_(static_cast<std::uint64_t>(
                    std::chrono::duration_cast<
                        std::chrono::nanoseconds>(now - d.retiredAt)
                        .count()));
        }
        depth_.fetch_sub(work.size(), std::memory_order_relaxed);
        frees_.fetch_add(work.size(), std::memory_order_relaxed);
    }

    std::shared_ptr<State> state_;
    unsigned batchSize_;
    HICAMP_ATOMIC_COUNTER std::atomic<std::uint64_t> advances_{0};
    HICAMP_ATOMIC_COUNTER std::atomic<std::uint64_t> frees_{0};
    HICAMP_ATOMIC_COUNTER std::atomic<std::size_t> depth_{0};
    HICAMP_ATOMIC_COUNTER std::atomic<std::uint64_t> pending_{0};
    std::function<void(std::uint64_t)> graceObserver_;

    HICAMP_ATOMIC_COUNTER static std::atomic<std::uint64_t> serialCounter_;
};

/**
 * RAII read-side section (§12): pins the calling thread's epoch
 * record for its extent. Re-entrant per thread and never blocking.
 * Co-acquires `lockrank::epoch` (§7 rank 4), making any stripe-lock
 * acquisition inside the section a `-Wthread-safety-beta` ordering
 * error — the machine-checked form of "read sections are lock-free".
 */
class HICAMP_SCOPED_CAPABILITY EpochGuard
{
  public:
    explicit EpochGuard(EpochManager &m)
        HICAMP_ACQUIRE_SHARED(m, lockrank::epoch)
        : mgr_(m)
    {
        mgr_.enter();
    }
    ~EpochGuard() HICAMP_RELEASE_GENERIC() { mgr_.exit(); }

    EpochGuard(const EpochGuard &) = delete;
    EpochGuard &operator=(const EpochGuard &) = delete;

  private:
    EpochManager &mgr_;
};

} // namespace hicamp

#endif // HICAMP_MEM_EPOCH_HH
