/**
 * @file
 * The HICAMP memory system facade: deduplicating line store + two-level
 * HICAMP cache + DRAM traffic attribution. All higher layers (segments,
 * iterator registers, the virtual segment map, the programming model)
 * perform their line traffic through this class so that every simulated
 * DRAM access lands in the right Figure-6 category.
 *
 * Reference-count discipline: every PLID value held by the model —
 * inside a committed line, in a segment-map root, or in a snapshot
 * handle — owns one reference. lookup()/internLine() return a PLID
 * carrying a fresh reference; decRef() releases one and reclaims the
 * line (recursively releasing its children) when the count reaches
 * zero.
 */

#ifndef HICAMP_MEM_MEMORY_HH
#define HICAMP_MEM_MEMORY_HH

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>

#include "common/atomic_annotations.hh"
#include "common/backoff.hh"

#include "common/fault.hh"
#include "common/line.hh"
#include "common/ownership.hh"
#include "common/stats.hh"
#include "common/status.hh"
#include "common/thread_annotations.hh"
#include "common/types.hh"
#include "mem/dram_stats.hh"
#include "mem/hicamp_cache.hh"
#include "mem/line_store.hh"
#include "obs/metrics.hh"

namespace hicamp {

/** Memory-system configuration (paper §5 defaults). */
struct MemoryConfig {
    unsigned lineBytes = 16;           ///< 16, 32 or 64
    std::uint64_t numBuckets = 1 << 16; ///< DRAM rows (hash buckets)
    std::uint64_t l1Bytes = 32 * 1024;
    unsigned l1Ways = 4;
    std::uint64_t l2Bytes = 4 * 1024 * 1024;
    unsigned l2Ways = 16;

    /// @name Concurrency model
    /// @{
    /// lock stripes over the hash buckets (power of two; clamped to
    /// numBuckets): operations in distinct stripes proceed in
    /// parallel, as independent DRAM rows would
    unsigned lockStripes = 64;
    /// serialize every operation through one global recursive lock —
    /// the pre-sharding behavior, kept as an in-binary baseline so
    /// scaling benches can measure the sharded design against the
    /// global-lock convoy on identical workloads
    bool globalLock = false;
    /// epoch-based reclamation (DESIGN.md §12): read/lookup hot paths
    /// run under an EpochGuard instead of the stripe shared lock, and
    /// 1→0 retirement parks storage in limbo until a grace period
    /// expires. Clearing this restores the immediate-free, fully
    /// stripe-locked design (the "sharded" bench baseline).
    bool epochReclaim = true;
    /// retirements that accumulate before a retiring writer attempts
    /// an epoch advance (grace-period batching: higher values
    /// amortize the grace check's record scan over more frees at the
    /// cost of deeper limbo; see README "Threading knobs")
    unsigned epochBatchSize = 32;
    /// @}

    /// @name Finite-capacity / fault model
    /// @{
    /// lines the overflow area can hold at once (Fig. 2's overflow
    /// pointer area is a bounded DRAM region)
    std::uint64_t overflowCapacity = kUnlimited;
    /// hard budget on total live lines
    std::uint64_t maxLiveLines = kUnlimited;
    /// reference-count field width; counts saturate sticky at
    /// 2^bits - 1 (§3.1)
    unsigned refcountBits = 32;
    /// fault injection plan (off by default; the Memory constructor
    /// overlays HICAMP_FAULT_* environment variables unless
    /// faults.allowEnvOverride is cleared)
    FaultConfig faults;
    /// shape of every bounded commit-retry loop above this memory
    RetryPolicy retry;
    /// @}
};

/**
 * The complete simulated HICAMP memory system.
 *
 * Thread-safe, without a global ordering point: synchronization is
 * striped over the store's hash buckets, reference counts are atomic,
 * and reads of (immutable) published lines are lock-free — under
 * epoch reclamation (the default, §12) the read/lookup hot paths run
 * in epoch-pinned sections that acquire no lock at all — see
 * DESIGN.md §7 for the full concurrency model and lock order. The
 * paper's architecture needs no data-line coherence because lines are
 * immutable; the sharding here is the software analogue of its
 * per-bucket DRAM parallelism.
 */
class Memory
{
  public:
    explicit Memory(const MemoryConfig &cfg = {});
    ~Memory();

    unsigned lineBytes() const { return cfg_.lineBytes; }
    unsigned lineWords() const { return cfg_.lineBytes / kWordBytes; }
    /** DAG fanout: child entries per interior line. */
    unsigned fanout() const { return lineWords(); }

    /** A fresh all-zero line of this machine's width. */
    Line makeLine() const { return Line(lineWords()); }

    /**
     * Lookup-by-content: find or allocate @p content, returning a PLID
     * that owns one fresh reference. All-zero content returns PLID 0.
     * @p was_new reports whether the line was freshly allocated.
     *
     * @throws MemPressureError when a fresh allocation is needed but
     * the store is at capacity (or the fault injector failed it). No
     * state is changed on the failure path.
     *
     * Excluded from rank-2 (vsm) callers: allocation can race a
     * reclamation that fires the lineFreed hook, which takes the
     * segment map's mutex (DESIGN.md §7 "hooks run unlocked").
     */
    HICAMP_RETURNS_REF Plid lookup(const Line &content,
                                   bool *was_new = nullptr)
        HICAMP_EXCLUDES(lockrank::vsm);

    /**
     * Dedup-aware interning for DAG nodes: like lookup(), but manages
     * child references. The caller must own one reference per non-zero
     * PLID word in @p content; on a dedup hit those references are
     * released (the existing line already owns its children), on a
     * fresh allocation the new line takes them over.
     *
     * @throws MemPressureError on allocation failure; the caller's
     * child references are released first (consume-on-failure), so a
     * failed intern leaks nothing.
     *
     * Excluded from rank-2 (vsm) callers: both the dedup-hit and the
     * failure path release child references, which can reclaim and
     * fire the lineFreed hook into the segment map (DESIGN.md §7).
     */
    HICAMP_RETURNS_REF Plid internLine(HICAMP_CONSUMES_REF const Line &content)
        HICAMP_EXCLUDES(lockrank::vsm);

    /** Read a line by PLID through the cache hierarchy. */
    Line readLine(Plid plid, DramCat cat = DramCat::Read);

    /** Acquire an additional reference to a line. */
    HICAMP_ACQUIRES_REF void incRef(Plid plid);

    /**
     * Conditional reference acquisition: atomically acquire a
     * reference iff @p plid currently names a live line with a
     * nonzero count. Returns false when the line is unpublished or
     * mid-reclamation — the caller must retry or fall back. This is
     * the primitive behind lock-free snapshots (DESIGN.md §7): unlike
     * incRef(), the caller need not already hold a reference proving
     * the line stays live.
     *
     * Under epoch reclamation the CAS and its liveness revalidation
     * are pinned inside one epoch guard (§12), so the slot cannot be
     * physically recycled between the count update and the re-check.
     */
    HICAMP_ACQUIRES_REF bool tryRetain(Plid plid);

    /**
     * Release one reference; reclaims the line (and recursively its
     * children) if the count reaches zero.
     *
     * Excluded from rank-2 (vsm) callers — the §7 deadlock rule:
     * reclamation fires the lineFreed/vsidRelease hooks, which
     * reacquire the segment map's mutex, so a caller already holding
     * it would self-deadlock. This is the machine-checked form of
     * "never call into release/reclaim while holding mapMutex_".
     */
    HICAMP_RELEASES_REF void decRef(Plid plid)
        HICAMP_EXCLUDES(lockrank::vsm);

    /**
     * Current refcount (test/diagnostic use). An *advisory* snapshot
     * (§12): the store reads the count inside an epoch guard, but by
     * the time the caller inspects the value concurrent inc/dec may
     * have moved it. Exact totals require an epoch-quiescent point —
     * see StoreAuditor and LineStore::epochSynchronize().
     */
    std::uint32_t refCount(Plid plid) const;

    /** True if the PLID names a live line (diagnostic). */
    bool isLive(Plid plid) const;

    /**
     * Allocate a transient (non-deduplicated, per-core) line id for
     * iterator write buffering.
     */
    std::uint64_t allocTransient();

    /** Cache-modelled access to a transient line. */
    void transientAccess(std::uint64_t transient_id, bool write);

    /**
     * Drop a transient line after its content has been converted to a
     * permanent line (or the iterator aborted); a still-cached dirty
     * transient never reaches DRAM.
     */
    void invalidateTransient(std::uint64_t transient_id);

    /** Cache-modelled access to a virtual-segment-map entry. */
    void vsmAccess(Vsid vsid, bool write);

    /**
     * Hook invoked when line reclamation drops a VSID-tagged word
     * (weak-reference bookkeeping in the segment map). Hooks are
     * invoked with no memory-system lock held (DESIGN.md §7); install
     * them at quiescent points, before concurrent use begins.
     */
    void setVsidReleaseHook(std::function<void(Vsid)> hook);

    /**
     * Hook invoked for every reclaimed line (weak segment references
     * watch for their root's reclamation). Invoked with no
     * memory-system lock held; the hook may take its own locks but
     * must not re-enter reclamation (e.g. by dropping references).
     */
    void setLineFreedHook(std::function<void(Plid)> hook);

    /// @name Statistics and introspection
    /// @{
    DramStats &dram() { return dram_; }
    const DramStats &dram() const { return dram_; }
    LineStore &store() { return store_; }
    const LineStore &store() const { return store_; }
    HicampCache &l1() { return l1_; }
    HicampCache &l2() { return l2_; }

    std::uint64_t liveLines() const { return store_.liveLines(); }
    std::uint64_t liveBytes() const { return store_.liveBytes(); }

    std::uint64_t lookupOps() const { return lookupOps_.value(); }
    std::uint64_t readOps() const { return readOps_.value(); }
    std::uint64_t sigFalsePositives() const
    {
        return sigFalsePositives_.value();
    }
    std::uint64_t deallocatedLines() const { return deallocs_.value(); }

    /**
     * Memory errors detected by the §3.1 integrity check: on every
     * DRAM line fetch the content hash is recomputed and compared to
     * the hash-bucket number the line was read from; a mismatch means
     * the stored bits no longer match the content the line was
     * allocated for.
     */
    std::uint64_t errorsDetected() const { return errorsDetected_.value(); }

    /**
     * DRAM row activations (paper §3.1: all DRAM commands of a lookup
     * target the same row — the hash bucket — minimizing command
     * bandwidth and energy). Each operation counts a row at most
     * once; compare against dram().total() to see ops per activation.
     */
    std::uint64_t rowActivations() const { return rowActs_.value(); }

    /**
     * Row activations attributed to one DRAM bank (= lock stripe:
     * operations in distinct stripes target independent rows, so a
     * stripe is the unit of DRAM-level serialization). The §5.1.1
     * scaling bench uses the per-bank distribution to model
     * bank-parallel throughput: commands within one bank serialize,
     * banks overlap.
     */
    std::uint64_t
    bankActivations(unsigned stripe) const
    {
        return bankActs_[stripe].load(std::memory_order_relaxed);
    }

    /** Activations of the hottest bank (the bank-parallel critical path). */
    std::uint64_t
    maxBankActivations() const
    {
        std::uint64_t m = 0;
        for (unsigned s = 0; s < store_.numStripes(); ++s)
            m = std::max(m, bankActivations(s));
        return m;
    }

    /// @name Memory-pressure model
    /// @{
    /** The deterministic fault injector driving this memory. */
    FaultInjector &faults() { return faults_; }
    const FaultInjector &faults() const { return faults_; }

    /** Contention telemetry shared by all commit-retry loops. */
    ContentionStats &contention() { return contention_; }
    const ContentionStats &contention() const { return contention_; }

    /** Retry shape the container layer should use. */
    const RetryPolicy &retryPolicy() const { return cfg_.retry; }

    /**
     * Pressure / contention counters as a stats-layer group
     * (oom_events, flip recovery tallies, commit conflict counters).
     */
    const StatGroup &pressureStats() const { return pressure_; }

    /**
     * This memory system's metrics registry (DESIGN.md §9): every
     * tally above — DRAM categories, cache hit/miss, dedup hits,
     * pressure and contention counters, line-store occupancy gauges —
     * registered under one named interface with snapshot/delta
     * semantics. Components layered on this memory (the segment map)
     * register their own metrics here and remove them by prefix
     * before dying.
     */
    obs::MetricsRegistry &metrics() { return metrics_; }
    const obs::MetricsRegistry &metrics() const { return metrics_; }

    /** Dedup hits: lookups answered by an already-live line. */
    std::uint64_t dedupHits() const { return dedupHits_.value(); }
    /** Lookups that had to walk the overflow pointer area. */
    std::uint64_t overflowWalks() const { return overflowWalks_.value(); }

    /** Allocation failures surfaced as MemPressureError. */
    std::uint64_t oomEvents() const { return oomEvents_.value(); }
    /** Injected DRAM flips caught by the §3.1 check and refetched. */
    std::uint64_t flipsRecovered() const
    {
        return flipsRecovered_.value();
    }
    /** Injected flips that hashed back to the same bucket (escapes). */
    std::uint64_t flipsSilent() const { return flipsSilent_.value(); }
    /// @}

    void resetTraffic();

    /**
     * Complete all pending writebacks without counting them, then
     * clear traffic counters: the measurement baseline for kernels
     * that run on an already-materialized data structure (the
     * conventional baseline likewise pays nothing for its setup).
     */
    void
    flushAndResetTraffic()
    {
        auto g = guard();
        l1_.cleanAll();
        l2_.cleanAll();
        resetTraffic();
    }

    /**
     * Complete all pending writebacks without counting them, leaving
     * every traffic counter intact: the snapshot/delta phase baseline
     * (bench_obs.hh). Warmup traffic stays in the cumulative
     * counters; the measured phase is a registry delta, so nothing is
     * destroyed between phases.
     */
    void
    flushTraffic()
    {
        auto g = guard();
        l1_.cleanAll();
        l2_.cleanAll();
    }

    /**
     * Cold-start a measurement: complete pending writebacks, drop all
     * cached lines and zero the traffic counters, so the next kernel
     * pays its compulsory misses exactly like a fresh baseline run.
     */
    void
    coldResetTraffic()
    {
        auto g = guard();
        l1_.invalidateAll();
        l2_.invalidateAll();
        resetTraffic();
    }

    /**
     * Cold-start the caches without touching the traffic counters:
     * drop all cached lines so the next kernel pays its compulsory
     * misses, and measure the kernel as a registry delta
     * (bench_obs.hh) instead of resetting between phases.
     */
    void
    coldCaches()
    {
        auto g = guard();
        l1_.invalidateAll();
        l2_.invalidateAll();
    }
    /// @}

  private:
    /**
     * The globalLock baseline: every public operation funnels through
     * one recursive mutex, exactly as before the sharded design. In
     * the default mode the guard is empty and synchronization lives in
     * the layers below (stripe locks, atomic counts, cache set locks).
     */
    std::unique_lock<std::recursive_mutex>
    guard() const
    {
        return cfg_.globalLock
                   ? std::unique_lock<std::recursive_mutex>(mutex_)
                   : std::unique_lock<std::recursive_mutex>();
    }

    HICAMP_REF_PRIMITIVE Plid lookupImpl(const Line &content, bool *was_new);
    Line readLineImpl(Plid plid, DramCat cat);
    HICAMP_REF_PRIMITIVE void decRefImpl(Plid plid)
        HICAMP_EXCLUDES(lockrank::vsm);
    HICAMP_REF_PRIMITIVE void reclaim(Plid plid)
        HICAMP_EXCLUDES(lockrank::vsm);
    /** Model a line fetch through L1/L2/DRAM, with §3.1 checking. */
    void modelLineFetch(Plid plid, std::uint64_t home,
                        const Line &content, DramCat cat);
    bool countWriteback(const HicampCache::Access &a);
    /** Touch a line's RC cache line; true if DRAM was accessed. */
    bool rcTouch(Plid plid);
    /** Count @p n row activations against @p home's DRAM bank. */
    void bankTouch(std::uint64_t home, std::uint64_t n = 1);

    MemoryConfig cfg_;
    LineStore store_;
    HicampCache l1_;
    HicampCache l2_;
    DramStats dram_;
    std::function<void(Vsid)> vsidRelease_;
    std::function<void(Plid)> lineFreed_;
    HICAMP_ATOMIC_COUNTER std::atomic<std::uint64_t> nextTransient_{1};

    // hicamp-lint: stat-ok(every counter below is registered into
    // metrics_ by registerMetrics(), called from the constructor)
    ShardedCounter lookupOps_;
    ShardedCounter readOps_;
    ShardedCounter sigFalsePositives_;
    ShardedCounter deallocs_;
    ShardedCounter errorsDetected_;
    ShardedCounter rowActs_;
    ShardedCounter dedupHits_;
    ShardedCounter overflowWalks_;
    /// per-bank (= per-stripe) share of rowActs_, for the scaling model
    HICAMP_ATOMIC_COUNTER std::unique_ptr<std::atomic<std::uint64_t>[]>
        bankActs_;

    FaultInjector faults_;
    ContentionStats contention_;
    AtomicCounter oomEvents_;
    AtomicCounter flipsRecovered_;
    AtomicCounter flipsSilent_;
    StatGroup pressure_{"mem.pressure"};

    /// globalLock baseline only (§7 rank 1). Deliberately unannotated:
    /// guard() acquires it *conditionally*, which the capability
    /// analysis cannot express (DESIGN.md §8) — the baseline path is
    /// covered by the TSan job instead.
    mutable std::recursive_mutex mutex_;

    /// Declared last: destroyed first, so registered callbacks (which
    /// capture pointers into this object) are detached from the
    /// process-wide registry list before any counter dies.
    obs::MetricsRegistry metrics_{"mem"};
    /// candidate data-line probes per lookup (registry-owned)
    obs::Log2Histogram *candHist_ = nullptr;
    /// nanoseconds each retired line spent in limbo (§12 grace
    /// latency; registry-owned, fed by the store's grace observer)
    obs::Log2Histogram *graceHist_ = nullptr;

    void registerMetrics();
};

} // namespace hicamp

#endif // HICAMP_MEM_MEMORY_HH
