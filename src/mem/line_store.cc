#include "mem/line_store.hh"

#include <bit>

#include "common/logging.hh"

namespace hicamp {

namespace {

Plid
plidOf(std::uint64_t bucket, unsigned data_way)
{
    return (bucket << BucketLayout::kWayBits) |
           (BucketLayout::kFirstData + data_way);
}

} // namespace

LineStore::LineStore(std::uint64_t num_buckets, unsigned line_words)
    : LineStore(num_buckets, line_words, Limits{})
{
}

LineStore::LineStore(std::uint64_t num_buckets, unsigned line_words,
                     const Limits &limits)
    : numBuckets_(num_buckets), lineWords_(line_words), limits_(limits),
      words_(num_buckets * BucketLayout::kNumData * line_words, 0),
      metas_(num_buckets * BucketLayout::kNumData * line_words, 0),
      sigs_(num_buckets * BucketLayout::kNumData, 0),
      refs_(num_buckets * BucketLayout::kNumData, 0),
      liveMask_(num_buckets, 0)
{
    HICAMP_ASSERT(std::has_single_bit(num_buckets),
                  "bucket count must be a power of two");
    HICAMP_ASSERT(line_words == 2 || line_words == 4 || line_words == 8,
                  "line width must be 2, 4 or 8 words");
    HICAMP_ASSERT(limits.refcountBits >= 2 && limits.refcountBits <= 32,
                  "refcount width must be 2..32 bits");
    refMax_ = limits.refcountBits == 32
                  ? ~std::uint32_t{0}
                  : (std::uint32_t{1} << limits.refcountBits) - 1;
}

std::uint64_t
LineStore::bucketOfPlid(Plid plid) const
{
    if (isOverflow(plid))
        return overflow_[plid - kOverflowBase].homeBucket;
    return plid >> BucketLayout::kWayBits;
}

std::uint64_t
LineStore::slotOf(Plid plid) const
{
    std::uint64_t bucket = plid >> BucketLayout::kWayBits;
    unsigned way = static_cast<unsigned>(plid & (BucketLayout::kWays - 1));
    HICAMP_DEBUG_ASSERT(
        bucket < numBuckets_ && way >= BucketLayout::kFirstData &&
            way < BucketLayout::kFirstData + BucketLayout::kNumData,
        "malformed PLID");
    return bucket * BucketLayout::kNumData +
           (way - BucketLayout::kFirstData);
}

void
LineStore::setSlotLive(std::uint64_t slot, bool live)
{
    std::uint64_t bucket = slot / BucketLayout::kNumData;
    unsigned bit = static_cast<unsigned>(slot % BucketLayout::kNumData);
    if (live)
        liveMask_[bucket] |= static_cast<std::uint16_t>(1u << bit);
    else
        liveMask_[bucket] &= static_cast<std::uint16_t>(~(1u << bit));
}

bool
LineStore::slotEquals(std::uint64_t slot, const Line &content) const
{
    const Word *w = &words_[slot * lineWords_];
    const std::uint16_t *m = &metas_[slot * lineWords_];
    for (unsigned i = 0; i < lineWords_; ++i) {
        if (w[i] != content.word(i) || m[i] != content.meta(i).value())
            return false;
    }
    return true;
}

Line
LineStore::materialize(std::uint64_t slot) const
{
    Line l(lineWords_);
    const Word *w = &words_[slot * lineWords_];
    const std::uint16_t *m = &metas_[slot * lineWords_];
    for (unsigned i = 0; i < lineWords_; ++i)
        l.set(i, w[i], WordMeta(m[i]));
    return l;
}

LineStore::FindResult
LineStore::find(const Line &content) const
{
    HICAMP_ASSERT(content.size() == lineWords_, "line width mismatch");
    HICAMP_ASSERT(!content.isZero(), "zero line is implicit (PLID 0)");
    FindResult r;
    const std::uint64_t hash = content.contentHash();
    const std::uint64_t b = bucketOf(hash);
    const std::uint8_t sig = signatureOfHash(hash);
    const std::uint64_t base = b * BucketLayout::kNumData;
    for (unsigned w = 0; w < BucketLayout::kNumData; ++w) {
        const std::uint64_t slot = base + w;
        if (!slotLive(slot) || sigs_[slot] != sig)
            continue;
        r.candidates.push_back(plidOf(b, w));
        if (slotEquals(slot, content)) {
            r.plid = r.candidates.back();
            r.found = true;
            return r;
        }
    }
    auto [lo, hi] = overflowIndex_.equal_range(hash);
    for (auto it = lo; it != hi; ++it) {
        const OverflowEntry &e = overflow_[it->second];
        if (e.live && e.line == content) {
            r.plid = kOverflowBase + it->second;
            r.found = true;
            r.overflow = true;
            return r;
        }
    }
    return r;
}

LineStore::FindResult
LineStore::findOrInsert(const Line &content)
{
    FindResult r = find(content);
    if (r.found)
        return r;

    if (liveLines_ >= limits_.maxLiveLines) {
        r.status = MemStatus::OutOfMemory;
        return r;
    }

    const std::uint64_t hash = content.contentHash();
    const std::uint64_t b = bucketOf(hash);
    const std::uint8_t sig = signatureOfHash(hash);
    const std::uint64_t base = b * BucketLayout::kNumData;
    if (liveMask_[b] != (1u << BucketLayout::kNumData) - 1) {
        for (unsigned w = 0; w < BucketLayout::kNumData; ++w) {
            const std::uint64_t slot = base + w;
            if (slotLive(slot))
                continue;
            Word *dst = &words_[slot * lineWords_];
            std::uint16_t *dm = &metas_[slot * lineWords_];
            for (unsigned i = 0; i < lineWords_; ++i) {
                dst[i] = content.word(i);
                dm[i] = content.meta(i).value();
            }
            sigs_[slot] = sig;
            refs_[slot] = 0;
            setSlotLive(slot, true);
            ++liveLines_;
            r.plid = plidOf(b, w);
            return r;
        }
    }

    // Home bucket full: spill to the overflow area, if the finite
    // capacity model still has room for one more line.
    if (overflowLive_ >= limits_.overflowCapacity) {
        r.status = MemStatus::OutOfMemory;
        return r;
    }
    std::uint64_t idx;
    if (!overflowFree_.empty()) {
        idx = overflowFree_.back();
        overflowFree_.pop_back();
    } else {
        idx = overflow_.size();
        overflow_.emplace_back();
    }
    OverflowEntry &e = overflow_[idx];
    e.line = content;
    e.homeBucket = b;
    e.refs = 0;
    e.live = true;
    overflowIndex_.emplace(hash, idx);
    ++overflowLive_;
    ++liveLines_;
    r.plid = kOverflowBase + idx;
    r.overflow = true;
    return r;
}

Line
LineStore::read(Plid plid) const
{
    if (plid == kZeroPlid)
        return Line(lineWords_);
    if (isOverflow(plid)) {
        const OverflowEntry &e = overflow_[plid - kOverflowBase];
        HICAMP_DEBUG_ASSERT(e.live, "read of dead overflow line");
        return e.line;
    }
    const std::uint64_t slot = slotOf(plid);
    HICAMP_DEBUG_ASSERT(slotLive(slot), "read of unallocated PLID");
    return materialize(slot);
}

bool
LineStore::isLive(Plid plid) const
{
    if (plid == kZeroPlid)
        return true;
    if (isOverflow(plid)) {
        std::uint64_t idx = plid - kOverflowBase;
        return idx < overflow_.size() && overflow_[idx].live;
    }
    std::uint64_t bucket = plid >> BucketLayout::kWayBits;
    unsigned way = static_cast<unsigned>(plid & (BucketLayout::kWays - 1));
    if (bucket >= numBuckets_ || way < BucketLayout::kFirstData ||
        way >= BucketLayout::kFirstData + BucketLayout::kNumData) {
        return false;
    }
    return slotLive(slotOf(plid));
}

std::uint32_t
LineStore::refCount(Plid plid) const
{
    if (plid == kZeroPlid)
        return 1; // the zero line is never reclaimed
    if (isOverflow(plid))
        return overflow_[plid - kOverflowBase].refs;
    return refs_[slotOf(plid)];
}

std::uint32_t *
LineStore::refSlot(Plid plid)
{
    HICAMP_DEBUG_ASSERT(plid != kZeroPlid, "refcounting the zero line");
    if (isOverflow(plid)) {
        OverflowEntry &e = overflow_[plid - kOverflowBase];
        HICAMP_DEBUG_ASSERT(e.live, "refcount of dead overflow line");
        return &e.refs;
    }
    const std::uint64_t slot = slotOf(plid);
    HICAMP_DEBUG_ASSERT(slotLive(slot), "refcount of unallocated PLID");
    return &refs_[slot];
}

std::uint32_t
LineStore::addRef(Plid plid, std::int32_t delta)
{
    std::uint32_t *refs = refSlot(plid);
    // Sticky saturation (§3.1): a count pinned at the ceiling no
    // longer tracks references, so neither direction moves it.
    if (*refs == refMax_)
        return *refs;
    if (delta < 0) {
        HICAMP_ASSERT(*refs >= static_cast<std::uint32_t>(-delta),
                      "refcount underflow");
    }
    const std::uint64_t next = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(*refs) + delta);
    if (next >= refMax_) {
        *refs = refMax_;
        ++saturatedLines_;
    } else {
        *refs = static_cast<std::uint32_t>(next);
    }
    return *refs;
}

void
LineStore::saturateRef(Plid plid)
{
    std::uint32_t *refs = refSlot(plid);
    if (*refs == refMax_)
        return;
    *refs = refMax_;
    ++saturatedLines_;
}

void
LineStore::freeLine(Plid plid)
{
    HICAMP_ASSERT(plid != kZeroPlid, "freeing the zero line");
    if (isOverflow(plid)) {
        std::uint64_t idx = plid - kOverflowBase;
        OverflowEntry &e = overflow_[idx];
        HICAMP_ASSERT(e.live && e.refs == 0, "freeing a referenced line");
        std::uint64_t hash = e.line.contentHash();
        auto [lo, hi] = overflowIndex_.equal_range(hash);
        for (auto it = lo; it != hi; ++it) {
            if (it->second == idx) {
                overflowIndex_.erase(it);
                break;
            }
        }
        e.live = false;
        overflowFree_.push_back(idx);
        --overflowLive_;
    } else {
        const std::uint64_t slot = slotOf(plid);
        HICAMP_ASSERT(slotLive(slot) && refs_[slot] == 0,
                      "freeing a referenced line");
        setSlotLive(slot, false);
        sigs_[slot] = 0;
        Word *w = &words_[slot * lineWords_];
        std::uint16_t *m = &metas_[slot * lineWords_];
        for (unsigned i = 0; i < lineWords_; ++i) {
            w[i] = 0;
            m[i] = 0;
        }
    }
    HICAMP_ASSERT(liveLines_ > 0, "live line count underflow");
    --liveLines_;
}

void
LineStore::corruptForTest(Plid plid, unsigned word_idx, Word xor_mask)
{
    HICAMP_ASSERT(!isOverflow(plid) && plid != kZeroPlid,
                  "corruptForTest targets home-bucket lines");
    const std::uint64_t slot = slotOf(plid);
    HICAMP_ASSERT(slotLive(slot), "corrupting a dead line");
    words_[slot * lineWords_ + word_idx] ^= xor_mask;
}

void
LineStore::forEachLive(
    const std::function<void(Plid, const Line &, std::uint32_t)> &fn)
    const
{
    for (std::uint64_t b = 0; b < numBuckets_; ++b) {
        if (liveMask_[b] == 0)
            continue;
        for (unsigned w = 0; w < BucketLayout::kNumData; ++w) {
            const std::uint64_t slot = b * BucketLayout::kNumData + w;
            if (slotLive(slot))
                fn(plidOf(b, w), materialize(slot), refs_[slot]);
        }
    }
    for (std::uint64_t i = 0; i < overflow_.size(); ++i) {
        const OverflowEntry &e = overflow_[i];
        if (e.live)
            fn(kOverflowBase + i, e.line, e.refs);
    }
}

std::uint8_t
LineStore::storedSignature(Plid plid) const
{
    HICAMP_ASSERT(!isOverflow(plid) && plid != kZeroPlid,
                  "signatures cover home-bucket lines only");
    return sigs_[slotOf(plid)];
}

bool
LineStore::overflowChainContains(Plid plid) const
{
    HICAMP_ASSERT(isOverflow(plid), "not an overflow PLID");
    const std::uint64_t idx = plid - kOverflowBase;
    const std::uint64_t hash = overflow_[idx].line.contentHash();
    auto [lo, hi] = overflowIndex_.equal_range(hash);
    for (auto it = lo; it != hi; ++it) {
        if (it->second == idx)
            return true;
    }
    return false;
}

Plid
LineStore::forgeDuplicateForTest(Plid plid)
{
    const Line content = read(plid);
    const std::uint64_t hash = content.contentHash();
    std::uint64_t idx;
    if (!overflowFree_.empty()) {
        idx = overflowFree_.back();
        overflowFree_.pop_back();
    } else {
        idx = overflow_.size();
        overflow_.emplace_back();
    }
    OverflowEntry &e = overflow_[idx];
    e.line = content;
    e.homeBucket = bucketOf(hash);
    e.refs = 0;
    e.live = true;
    overflowIndex_.emplace(hash, idx);
    ++overflowLive_;
    ++liveLines_;
    return kOverflowBase + idx;
}

void
LineStore::poisonWordForTest(Plid plid, unsigned word_idx, Word w,
                             WordMeta m)
{
    HICAMP_ASSERT(plid != kZeroPlid && word_idx < lineWords_,
                  "poisonWordForTest out of range");
    if (isOverflow(plid)) {
        OverflowEntry &e = overflow_[plid - kOverflowBase];
        HICAMP_ASSERT(e.live, "poisoning a dead line");
        e.line.set(word_idx, w, m);
        return;
    }
    const std::uint64_t slot = slotOf(plid);
    HICAMP_ASSERT(slotLive(slot), "poisoning a dead line");
    words_[slot * lineWords_ + word_idx] = w;
    metas_[slot * lineWords_ + word_idx] = m.value();
}

std::uint64_t
LineStore::totalRefs() const
{
    std::uint64_t t = 0;
    for (std::uint64_t slot = 0;
         slot < numBuckets_ * BucketLayout::kNumData; ++slot) {
        if (slotLive(slot))
            t += refs_[slot];
    }
    for (const auto &e : overflow_)
        if (e.live)
            t += e.refs;
    return t;
}

} // namespace hicamp
