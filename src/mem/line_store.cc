#include "mem/line_store.hh"

#include <algorithm>
#include <bit>

#include "common/logging.hh"
#include "obs/trace.hh"

namespace hicamp {

namespace {

Plid
plidOf(std::uint64_t bucket, unsigned data_way)
{
    return (bucket << BucketLayout::kWayBits) |
           (BucketLayout::kFirstData + data_way);
}

unsigned
clampStripes(unsigned stripes, std::uint64_t num_buckets)
{
    // One stripe minimum, never more stripes than buckets, and at
    // most 2^16 so a stripe number fits the overflow PLID field.
    std::uint64_t s = std::min<std::uint64_t>(
        stripes ? stripes : 1,
        std::min<std::uint64_t>(num_buckets, std::uint64_t{1} << 16));
    return static_cast<unsigned>(std::bit_floor(s));
}

} // namespace

LineStore::LineStore(std::uint64_t num_buckets, unsigned line_words)
    : LineStore(num_buckets, line_words, Limits{})
{
}

LineStore::LineStore(std::uint64_t num_buckets, unsigned line_words,
                     const Limits &limits, unsigned stripes)
    : numBuckets_(num_buckets), lineWords_(line_words), limits_(limits),
      numStripes_(clampStripes(stripes, num_buckets)),
      stripes_(numStripes_),
      words_(num_buckets * BucketLayout::kNumData * line_words, 0),
      metas_(num_buckets * BucketLayout::kNumData * line_words, 0),
      sigs_(num_buckets * BucketLayout::kNumData, 0),
      refs_(num_buckets * BucketLayout::kNumData),
      liveMask_(num_buckets), limboMask_(num_buckets),
      overflow_(numStripes_), epoch_(limits.epochBatchSize),
      lockExcl_(numStripes_), lockShared_(numStripes_)
{
    HICAMP_ASSERT(std::has_single_bit(num_buckets),
                  "bucket count must be a power of two");
    HICAMP_ASSERT(line_words == 2 || line_words == 4 || line_words == 8,
                  "line width must be 2, 4 or 8 words");
    HICAMP_ASSERT(limits.refcountBits >= 2 && limits.refcountBits <= 32,
                  "refcount width must be 2..32 bits");
    refMax_ = limits.refcountBits == 32
                  ? ~std::uint32_t{0}
                  : (std::uint32_t{1} << limits.refcountBits) - 1;
}

LineStore::~LineStore()
{
    // Deferred frees dereference this object's arrays: run every
    // limbo entry before any member is destroyed. No concurrent
    // readers may exist here (destruction races nothing).
    epoch_.drainAllUnsafe();
}

const LineStore::OverflowEntry *
LineStore::overflowEntryAcquire(unsigned stripe, std::uint64_t idx) const
{
    if (stripe >= numStripes_)
        return nullptr;
    const OverflowShard &shard = overflow_[stripe];
    // Acquire on the published size and the chunk-directory slot:
    // pairs with the release stores in overflowAllocSlot, so a
    // published index always sees a constructed chunk.
    if (idx >= shard.size.load(std::memory_order_acquire))
        return nullptr;
    OverflowEntry *chunk =
        shard.chunks[idx >> OverflowShard::kChunkShift].load(
            std::memory_order_acquire);
    if (chunk == nullptr)
        return nullptr;
    return &chunk[idx & (OverflowShard::kChunkSize - 1)];
}

LineStore::OverflowEntry &
LineStore::overflowEntryAt(unsigned stripe, std::uint64_t idx) const
{
    OverflowEntry *e = const_cast<LineStore *>(this)
                           ->overflowEntryAcquire(stripe, idx);
    HICAMP_DEBUG_ASSERT(e != nullptr, "malformed overflow PLID");
    return *e;
}

std::uint64_t
LineStore::overflowAllocSlot(OverflowShard &shard)
{
    if (!shard.freeList.empty()) {
        const std::uint64_t idx = shard.freeList.back();
        shard.freeList.pop_back();
        return idx;
    }
    // hicamp-atomic: waive(exclusive stripe lock: all size/chunk
    // writers hold it, so the re-reads below cannot race a growth)
    const std::uint64_t idx = shard.size.load(std::memory_order_relaxed);
    const std::uint64_t ci = idx >> OverflowShard::kChunkShift;
    HICAMP_ASSERT(ci < OverflowShard::kMaxChunks,
                  "overflow shard slab exhausted");
    // hicamp-atomic: waive(exclusive stripe lock, as above)
    if (shard.chunks[ci].load(std::memory_order_relaxed) == nullptr) {
        // Construct the whole chunk before publishing its pointer;
        // the release pairs with readers' acquire directory loads.
        shard.chunks[ci].store(new OverflowEntry[OverflowShard::kChunkSize],
                               std::memory_order_release);
    }
    shard.size.store(idx + 1, std::memory_order_release);
    return idx;
}

std::uint64_t
LineStore::bucketOfPlid(Plid plid) const
{
    if (isOverflow(plid)) {
        const unsigned stripe = overflowStripe(plid);
        HICAMP_DEBUG_ASSERT(stripe < numStripes_, "malformed PLID");
        if (limits_.epochReclaim) {
            // Lock-free (§12): homeBucket is written once before the
            // entry is published and rewritten only when the slot
            // recycles through the free list — which the caller's
            // reference (or the grace period, for limbo lines)
            // excludes for the duration of the guard.
            EpochGuard eg(epoch_);
            const OverflowEntry *e =
                overflowEntryAcquire(stripe, overflowIdx(plid));
            HICAMP_DEBUG_ASSERT(e != nullptr, "malformed overflow PLID");
            return e->homeBucket;
        }
        noteShared(stripe);
        StripeShared g(stripes_, stripe);
        return overflowEntryAt(stripe, overflowIdx(plid)).homeBucket;
    }
    return plid >> BucketLayout::kWayBits;
}

std::uint64_t
LineStore::slotOf(Plid plid) const
{
    std::uint64_t bucket = plid >> BucketLayout::kWayBits;
    unsigned way = static_cast<unsigned>(plid & (BucketLayout::kWays - 1));
    HICAMP_DEBUG_ASSERT(
        bucket < numBuckets_ && way >= BucketLayout::kFirstData &&
            way < BucketLayout::kFirstData + BucketLayout::kNumData,
        "malformed PLID");
    return bucket * BucketLayout::kNumData +
           (way - BucketLayout::kFirstData);
}

void
LineStore::setSlotLive(std::uint64_t slot, bool live)
{
    std::uint64_t bucket = slot / BucketLayout::kNumData;
    unsigned bit = static_cast<unsigned>(slot % BucketLayout::kNumData);
    // Release: publishing the bit is what makes a freshly written
    // line visible to lock-free readers, so the content stores must
    // not sink below it.
    if (live) {
        liveMask_[bucket].fetch_or(static_cast<std::uint16_t>(1u << bit),
                                   std::memory_order_release);
    } else {
        liveMask_[bucket].fetch_and(
            static_cast<std::uint16_t>(~(1u << bit)),
            std::memory_order_release);
    }
}

void
LineStore::setSlotLimbo(std::uint64_t slot, bool limbo)
{
    std::uint64_t bucket = slot / BucketLayout::kNumData;
    unsigned bit = static_cast<unsigned>(slot % BucketLayout::kNumData);
    // Relaxed on purpose: the limbo bit itself is never the
    // synchronization edge. A lock-free reader only consults it
    // after its acquire load of liveMask_ observed the release
    // clear that retire() sequences *after* setting limbo, so the
    // set bit is already visible by happens-before; every other
    // access (allocator scan, grace-expiry free) holds the stripe
    // lock. The liveMask_ release/acquire pair in setSlotLive /
    // slotLive carries the ordering for both masks.
    if (limbo) {
        // hicamp-atomic: waive(ordering carried by liveMask_: retire
        // sets limbo before the release clear of live, and readers
        // check limbo only after acquiring live — see comment above)
        limboMask_[bucket].fetch_or(
            static_cast<std::uint16_t>(1u << bit),
            std::memory_order_relaxed);
    } else {
        // hicamp-atomic: waive(stripe-lock-serialized: limbo is
        // cleared only by grace-expiry frees under the exclusive
        // stripe lock, after no lock-free reader can hold the PLID)
        limboMask_[bucket].fetch_and(
            static_cast<std::uint16_t>(~(1u << bit)),
            std::memory_order_relaxed);
    }
}

bool
LineStore::slotEquals(std::uint64_t slot, const Line &content) const
{
    const Word *w = &words_[slot * lineWords_];
    const std::uint16_t *m = &metas_[slot * lineWords_];
    for (unsigned i = 0; i < lineWords_; ++i) {
        if (w[i] != content.word(i) || m[i] != content.meta(i).value())
            return false;
    }
    return true;
}

Line
LineStore::materialize(std::uint64_t slot) const
{
    Line l(lineWords_);
    const Word *w = &words_[slot * lineWords_];
    const std::uint16_t *m = &metas_[slot * lineWords_];
    for (unsigned i = 0; i < lineWords_; ++i)
        l.set(i, w[i], WordMeta(m[i]));
    return l;
}

LineStore::FindResult
LineStore::findImpl(const Line &content, std::uint64_t hash) const
{
    FindResult r;
    const std::uint64_t b = bucketOf(hash);
    const std::uint8_t sig = signatureOfHash(hash);
    const std::uint64_t base = b * BucketLayout::kNumData;
    for (unsigned w = 0; w < BucketLayout::kNumData; ++w) {
        const std::uint64_t slot = base + w;
        if (!slotLive(slot) || sigs_[slot] != sig)
            continue;
        r.candidates.push_back(plidOf(b, w));
        r.candidateLines.push_back(materialize(slot));
        if (slotEquals(slot, content)) {
            r.plid = r.candidates.back();
            r.found = true;
            return r;
        }
    }
    const unsigned stripe = stripeOfBucket(b);
    const OverflowShard &shard = overflow_[stripe];
    auto [lo, hi] = shard.index.equal_range(hash);
    for (auto it = lo; it != hi; ++it) {
        const OverflowEntry &e = overflowEntryAt(stripe, it->second);
        // hicamp-atomic: waive(caller holds the stripe lock (REQUIRES
        // above); live flips only under the exclusive lock)
        if (e.live.load(std::memory_order_relaxed) && e.line == content) {
            r.plid = overflowPlid(stripe, it->second);
            r.found = true;
            r.overflow = true;
            return r;
        }
    }
    return r;
}

LineStore::FindResult
LineStore::probeHome(const Line &content, std::uint64_t hash) const
{
    HICAMP_DEBUG_ASSERT(epoch_.activeOnThisThread(),
                        "lock-free probe outside an epoch guard");
    FindResult r;
    const std::uint64_t b = bucketOf(hash);
    const std::uint8_t sig = signatureOfHash(hash);
    const std::uint64_t base = b * BucketLayout::kNumData;
    for (unsigned w = 0; w < BucketLayout::kNumData; ++w) {
        const std::uint64_t slot = base + w;
        // The acquire load of the occupancy bit orders the slot's
        // content stores (publication) before our reads; the epoch
        // guard keeps the storage from being recycled between this
        // check and the materialize (§12).
        if (!slotLive(slot) || sigs_[slot] != sig)
            continue;
        r.candidates.push_back(plidOf(b, w));
        r.candidateLines.push_back(materialize(slot));
        if (slotEquals(slot, content)) {
            r.plid = r.candidates.back();
            r.found = true;
            return r;
        }
    }
    return r;
}

LineStore::FindResult
LineStore::find(const Line &content) const
{
    HICAMP_ASSERT(content.size() == lineWords_, "line width mismatch");
    HICAMP_ASSERT(!content.isZero(), "zero line is implicit (PLID 0)");
    const std::uint64_t hash = content.contentHash();
    const unsigned stripe = stripeOfBucket(bucketOf(hash));
    if (limits_.epochReclaim) {
        // Lock-free probe (§12): a home-bucket hit — the hot case —
        // returns without touching the stripe. The guard must close
        // before the locked fallback (§7 rank order).
        EpochGuard eg(epoch_);
        FindResult r = probeHome(content, hash);
        if (r.found)
            return r;
    }
    // Miss (or possible overflow resident): the overflow hash chain
    // lives behind the stripe lock.
    noteShared(stripe);
    StripeShared g(stripes_, stripe);
    return findImpl(content, hash);
}

HICAMP_REF_PRIMITIVE LineStore::FindResult
LineStore::findOrInsert(const Line &content, bool take_ref)
{
    HICAMP_ASSERT(content.size() == lineWords_, "line width mismatch");
    HICAMP_ASSERT(!content.isZero(), "zero line is implicit (PLID 0)");
    const std::uint64_t hash = content.contentHash();
    const std::uint64_t b = bucketOf(hash);
    const unsigned stripe = stripeOfBucket(b);

    if (limits_.epochReclaim) {
        // Lock-free probe phase (§12, ck_hs style): the dedup hit —
        // the hot path — completes with zero locks. The guard scope
        // closes before the locked fallback below (§7: a stripe may
        // not be acquired inside an epoch section).
        EpochGuard eg(epoch_);
        FindResult r = probeHome(content, hash);
        if (r.found) {
            if (!take_ref)
                return r;
            // tryAcquireRef refuses a zero count, so this can never
            // resurrect a dying line from outside the lock: success
            // means some holder kept the count nonzero, and retire()
            // re-checks the count under the stripe before it would
            // unpublish.
            if (tryAcquireRef(refs_[slotOf(r.plid)]))
                return r;
            // Count observed at zero: the line is being retired.
            // Fall through to the locked path, which serializes
            // against retire() and may legitimately resurrect it.
        }
    }

    for (unsigned attempt = 0;; ++attempt) {
        {
            noteExcl(stripe);
            StripeExclusive g(stripes_, stripe);

            FindResult r = findImpl(content, hash);
            if (r.found) {
                // Dedup hit. Taking the reference inside the bucket's
                // critical section is what lets a hit on a dying
                // (count 0) line resurrect it safely: retire()
                // serializes on the same stripe lock and re-checks
                // the count.
                if (take_ref) {
                    if (r.overflow) {
                        adjustRef(overflowEntryAt(stripe,
                                                  overflowIdx(r.plid))
                                      .refs,
                                  +1);
                    } else {
                        adjustRef(refs_[slotOf(r.plid)], +1);
                    }
                }
                return r;
            }

            if (!tryReserveLine()) {
                r.status = MemStatus::OutOfMemory;
                return r;
            }

            const std::uint8_t sig = signatureOfHash(hash);
            const std::uint64_t base = b * BucketLayout::kNumData;
            // A way is allocatable only if it is neither live nor
            // parked in limbo — limbo storage must stay intact for
            // readers whose guard predates its retirement (§12).
            // hicamp-atomic: waive(exclusive stripe lock serializes
            // the occupancy scan with every mask writer)
            const std::uint16_t occupied =
                liveMask_[b].load(std::memory_order_relaxed) |
                limboMask_[b].load(std::memory_order_relaxed);
            if (occupied != (1u << BucketLayout::kNumData) - 1) {
                for (unsigned w = 0; w < BucketLayout::kNumData; ++w) {
                    if ((occupied >> w) & 1)
                        continue;
                    const std::uint64_t slot = base + w;
                    Word *dst = &words_[slot * lineWords_];
                    std::uint16_t *dm = &metas_[slot * lineWords_];
                    for (unsigned i = 0; i < lineWords_; ++i) {
                        dst[i] = content.word(i);
                        dm[i] = content.meta(i).value();
                    }
                    sigs_[slot] = sig;
                    refs_[slot].store(take_ref ? 1 : 0,
                                      std::memory_order_relaxed);
                    // Publication point: release-store of the
                    // occupancy bit makes the content above visible
                    // to lock-free readers.
                    setSlotLive(slot, true);
                    r.plid = plidOf(b, w);
                    HICAMP_TRACE_EVENT(Store, Publish, r.plid,
                                       lineWords_ * sizeof(Word));
                    return r;
                }
            }

            // Home bucket full. When limbo ways are what blocks the
            // insert and we have not flushed yet, drop the lock,
            // synchronize the epoch and retry once: with no pinned
            // reader this reuses the same way the immediate-free
            // mode would, instead of spilling to overflow.
            // hicamp-atomic: waive(exclusive stripe lock, as the
            // occupancy scan above)
            if (!(limits_.epochReclaim && attempt == 0 &&
                  limboMask_[b].load(std::memory_order_relaxed) != 0)) {
                // Spill to this stripe's overflow shard, if the
                // finite capacity model still has room.
                if (!tryReserveOverflow()) {
                    liveLines_.fetch_sub(1, std::memory_order_relaxed);
                    r.status = MemStatus::OutOfMemory;
                    return r;
                }
                OverflowShard &shard = overflow_[stripe];
                const std::uint64_t idx = overflowAllocSlot(shard);
                OverflowEntry &e = overflowEntryAt(stripe, idx);
                e.line = content;
                e.homeBucket = b;
                e.hash = hash;
                e.refs.store(take_ref ? 1 : 0,
                             std::memory_order_relaxed);
                // hicamp-atomic: waive(ordered by the release publication of
                // // live on the next line)
                e.limbo.store(false, std::memory_order_relaxed);
                e.live.store(true, std::memory_order_release);
                shard.index.emplace(hash, idx);
                r.plid = overflowPlid(stripe, idx);
                r.overflow = true;
                HICAMP_TRACE_EVENT(Store, OverflowAlloc, r.plid,
                                   lineWords_ * sizeof(Word));
                return r;
            }
            // Give the reservation back while we retry unlocked.
            liveLines_.fetch_sub(1, std::memory_order_relaxed);
        }
        epoch_.synchronize();
    }
}

Line
LineStore::read(Plid plid) const
{
    if (plid == kZeroPlid)
        return Line(lineWords_);
    if (isOverflow(plid)) {
        const unsigned stripe = overflowStripe(plid);
        HICAMP_DEBUG_ASSERT(stripe < numStripes_, "malformed PLID");
        if (limits_.epochReclaim) {
            // Lock-free: the guard keeps the entry's storage from
            // being recycled while we copy it. A line the caller
            // held a reference to (or saw live inside this same
            // guard) is at worst in limbo — content still intact.
            EpochGuard eg(epoch_);
            const OverflowEntry *e =
                overflowEntryAcquire(stripe, overflowIdx(plid));
            HICAMP_DEBUG_ASSERT(
                e != nullptr &&
                    (e->live.load(std::memory_order_acquire) ||
                     e->limbo.load(std::memory_order_acquire)),
                "read of dead overflow line");
            return e->line;
        }
        noteShared(stripe);
        StripeShared g(stripes_, stripe);
        const OverflowEntry &e =
            overflowEntryAt(stripe, overflowIdx(plid));
        // hicamp-atomic: waive(shared stripe lock held; live flips
        // // only under the exclusive lock)
        HICAMP_DEBUG_ASSERT(e.live.load(std::memory_order_relaxed),
                            "read of dead overflow line");
        return e.line;
    }
    // Home-bucket lines are immutable once published, so this path is
    // lock-free: the acquire load of the occupancy bit pairs with the
    // release in setSlotLive, ordering the content stores before us.
    // Under epoch reclamation the copy additionally runs inside a
    // guard so retire() parks (rather than clears) the slot under us.
    const std::uint64_t slot = slotOf(plid);
    if (limits_.epochReclaim) {
        EpochGuard eg(epoch_);
        const bool ok = slotLive(slot) || slotLimbo(slot);
        HICAMP_DEBUG_ASSERT(ok, "read of unallocated PLID");
        (void)ok;
        return materialize(slot);
    }
    const bool live = slotLive(slot); // acquire
    HICAMP_DEBUG_ASSERT(live, "read of unallocated PLID");
    (void)live;
    return materialize(slot);
}

bool
LineStore::isLive(Plid plid) const
{
    if (plid == kZeroPlid)
        return true;
    if (isOverflow(plid)) {
        // Lock-free in both modes: the slab's chunk directory only
        // grows and the flag is atomic.
        const OverflowEntry *e =
            overflowEntryAcquire(overflowStripe(plid), overflowIdx(plid));
        return e != nullptr && e->live.load(std::memory_order_acquire);
    }
    std::uint64_t bucket = plid >> BucketLayout::kWayBits;
    unsigned way = static_cast<unsigned>(plid & (BucketLayout::kWays - 1));
    if (bucket >= numBuckets_ || way < BucketLayout::kFirstData ||
        way >= BucketLayout::kFirstData + BucketLayout::kNumData) {
        return false;
    }
    return slotLive(slotOf(plid));
}

std::uint32_t
LineStore::refCount(Plid plid) const
{
    if (plid == kZeroPlid)
        return 1; // the zero line is never reclaimed
    if (limits_.epochReclaim) {
        EpochGuard eg(epoch_);
        return refCountImpl(plid);
    }
    return refCountImpl(plid);
}

std::uint32_t
LineStore::refCountImpl(Plid plid) const
{
    // Torn-read satellite: a refcount snapshot is only meaningful as
    // *stable storage* inside an epoch section — outside one the
    // slot could be recycled mid-read. The value is advisory either
    // way (holders retain/release concurrently); only retire()'s
    // stripe-locked re-check may gate a free on it.
    HICAMP_DEBUG_ASSERT(
        !limits_.epochReclaim || epoch_.activeOnThisThread(),
        "refcount snapshot outside an epoch guard is advisory only");
    if (isOverflow(plid)) {
        const OverflowEntry *e =
            overflowEntryAcquire(overflowStripe(plid), overflowIdx(plid));
        HICAMP_DEBUG_ASSERT(e != nullptr, "malformed PLID");
        return e != nullptr ? e->refs.load(std::memory_order_relaxed)
                            : 0;
    }
    return refs_[slotOf(plid)].load(std::memory_order_relaxed);
}

HICAMP_REF_PRIMITIVE std::uint32_t
LineStore::adjustRef(std::atomic<std::uint32_t> &r, std::int32_t delta)
{
    std::uint32_t cur = r.load(std::memory_order_relaxed);
    for (;;) {
        // Sticky saturation (§3.1): a count pinned at the ceiling no
        // longer tracks references, so neither direction moves it.
        if (cur == refMax_)
            return refMax_;
        if (delta < 0) {
            HICAMP_ASSERT(cur >= static_cast<std::uint32_t>(-delta),
                          "refcount underflow");
        }
        const std::uint64_t next64 = static_cast<std::uint64_t>(
            static_cast<std::int64_t>(cur) + delta);
        const std::uint32_t next =
            next64 >= refMax_ ? refMax_
                              : static_cast<std::uint32_t>(next64);
        // acq_rel so a decrement observed at zero also orders every
        // earlier ref-holder's accesses before the eventual retire
        // (the shared_ptr discipline).
        if (r.compare_exchange_weak(cur, next,
                                    std::memory_order_acq_rel,
                                    std::memory_order_relaxed)) {
            if (next == refMax_)
                saturatedLines_.fetch_add(1, std::memory_order_relaxed);
            return next;
        }
    }
}

HICAMP_REF_PRIMITIVE bool
LineStore::tryAcquireRef(std::atomic<std::uint32_t> &r)
{
    std::uint32_t cur = r.load(std::memory_order_relaxed);
    for (;;) {
        if (cur == 0)
            return false;
        if (cur == refMax_)
            return true;
        if (r.compare_exchange_weak(cur, cur + 1,
                                    std::memory_order_acq_rel,
                                    std::memory_order_relaxed)) {
            if (cur + 1 == refMax_)
                saturatedLines_.fetch_add(1, std::memory_order_relaxed);
            return true;
        }
    }
}

HICAMP_REF_PRIMITIVE std::uint32_t
LineStore::addRef(Plid plid, std::int32_t delta)
{
    HICAMP_DEBUG_ASSERT(plid != kZeroPlid, "refcounting the zero line");
    if (isOverflow(plid)) {
        // Lock-free: the caller holds a reference, which pins the
        // entry's identity (it cannot pass retire()'s zero check),
        // and the slab gives stable addresses without a lock.
        OverflowEntry *e =
            overflowEntryAcquire(overflowStripe(plid), overflowIdx(plid));
        // hicamp-atomic: waive(advisory debug check only; the held
        // // reference pins the entry's identity, no protocol
        // // decision is taken on this load)
        HICAMP_DEBUG_ASSERT(e != nullptr &&
                                e->live.load(std::memory_order_relaxed),
                            "refcount of dead overflow line");
        return adjustRef(e->refs, delta);
    }
    const std::uint64_t slot = slotOf(plid);
    HICAMP_DEBUG_ASSERT(slotLive(slot), "refcount of unallocated PLID");
    return adjustRef(refs_[slot], delta);
}

HICAMP_REF_PRIMITIVE bool
LineStore::incRefIfLive(Plid plid)
{
    if (plid == kZeroPlid)
        return true;
    if (isOverflow(plid)) {
        // Lock-free weak acquire. As with the home path, a PLID from
        // an unsynchronized channel may have been freed and its slot
        // reused by different content — a success only means *some*
        // live line is pinned, and the caller must re-verify content
        // (Memory::lookupImpl does; DESIGN.md §10).
        OverflowEntry *e =
            overflowEntryAcquire(overflowStripe(plid), overflowIdx(plid));
        if (e == nullptr || !e->live.load(std::memory_order_acquire))
            return false;
        return tryAcquireRef(e->refs);
    }
    std::uint64_t bucket = plid >> BucketLayout::kWayBits;
    unsigned way = static_cast<unsigned>(plid & (BucketLayout::kWays - 1));
    if (bucket >= numBuckets_ || way < BucketLayout::kFirstData ||
        way >= BucketLayout::kFirstData + BucketLayout::kNumData) {
        return false;
    }
    const std::uint64_t slot = slotOf(plid);
    if (!slotLive(slot)) // acquire
        return false;
    return tryAcquireRef(refs_[slot]);
}

HICAMP_REF_PRIMITIVE void
LineStore::saturateRefSlot(std::atomic<std::uint32_t> &r)
{
    std::uint32_t cur = r.load(std::memory_order_relaxed);
    while (cur != refMax_) {
        if (r.compare_exchange_weak(cur, refMax_,
                                    std::memory_order_acq_rel,
                                    std::memory_order_relaxed)) {
            saturatedLines_.fetch_add(1, std::memory_order_relaxed);
            return;
        }
    }
}

HICAMP_REF_PRIMITIVE void
LineStore::saturateRef(Plid plid)
{
    HICAMP_DEBUG_ASSERT(plid != kZeroPlid, "refcounting the zero line");
    if (isOverflow(plid)) {
        OverflowEntry *e =
            overflowEntryAcquire(overflowStripe(plid), overflowIdx(plid));
        HICAMP_ASSERT(e != nullptr, "malformed PLID");
        saturateRefSlot(e->refs);
        return;
    }
    saturateRefSlot(refs_[slotOf(plid)]);
}

bool
LineStore::tryReserveLine()
{
    std::uint64_t cur = liveLines_.load(std::memory_order_relaxed);
    while (cur < limits_.maxLiveLines) {
        if (liveLines_.compare_exchange_weak(cur, cur + 1,
                                             std::memory_order_relaxed)) {
            return true;
        }
    }
    return false;
}

bool
LineStore::tryReserveOverflow()
{
    std::uint64_t cur = overflowLive_.load(std::memory_order_relaxed);
    while (cur < limits_.overflowCapacity) {
        if (overflowLive_.compare_exchange_weak(
                cur, cur + 1, std::memory_order_relaxed)) {
            return true;
        }
    }
    return false;
}

HICAMP_REF_PRIMITIVE std::optional<LineStore::Retired>
LineStore::retire(Plid plid)
{
    auto out = retireLocked(plid);
    // The batching step runs with no stripe lock held: a triggered
    // advance drains limbo, and those callbacks re-acquire stripes.
    if (out.has_value() && limits_.epochReclaim)
        epoch_.maybeAdvance();
    return out;
}

std::optional<LineStore::Retired>
LineStore::retireLocked(Plid plid)
{
    HICAMP_ASSERT(plid != kZeroPlid, "freeing the zero line");
    if (isOverflow(plid)) {
        const unsigned stripe = overflowStripe(plid);
        HICAMP_DEBUG_ASSERT(stripe < numStripes_, "malformed PLID");
        noteExcl(stripe);
        StripeExclusive g(stripes_, stripe);
        OverflowShard &shard = overflow_[stripe];
        const std::uint64_t idx = overflowIdx(plid);
        OverflowEntry &e = overflowEntryAt(stripe, idx);
        // A concurrent dedup hit may have resurrected the line (or
        // another thread already retired it) — both serialize here.
        // hicamp-atomic: waive(exclusive stripe lock serializes this
        // // re-check with resurrection and concurrent retire)
        if (!e.live.load(std::memory_order_relaxed) ||
            e.refs.load(std::memory_order_relaxed) != 0) {
            return std::nullopt;
        }
        Retired out{e.line, e.homeBucket, true};
        auto [lo, hi] = shard.index.equal_range(e.hash);
        for (auto it = lo; it != hi; ++it) {
            if (it->second == idx) {
                shard.index.erase(it);
                break;
            }
        }
        if (limits_.epochReclaim) {
            // Unpublish now; park the storage (§12). limbo is set
            // before live clears so a concurrent live-or-limbo check
            // never sees the transient neither state. The content
            // stays intact for readers already inside a guard; the
            // deferred free clears it and recycles the slot at grace
            // expiry. Retirement consumes the store's reference.
            e.limbo.store(true, std::memory_order_release);
            e.live.store(false, std::memory_order_release);
            limboLines_.fetch_add(1, std::memory_order_relaxed);
            epoch_.defer(&LineStore::limboFreeOverflowThunk, this,
                         plid);
        } else {
            e.live.store(false, std::memory_order_release);
            e.line = Line(lineWords_);
            shard.freeList.push_back(idx);
        }
        overflowLive_.fetch_sub(1, std::memory_order_relaxed);
        const std::uint64_t prev =
            liveLines_.fetch_sub(1, std::memory_order_relaxed);
        HICAMP_ASSERT(prev > 0, "live line count underflow");
        HICAMP_TRACE_EVENT(Store, Retire, plid,
                           lineWords_ * sizeof(Word));
        return out;
    }
    const std::uint64_t bucket = plid >> BucketLayout::kWayBits;
    const unsigned stripe = stripeOfBucket(bucket);
    noteExcl(stripe);
    StripeExclusive g(stripes_, stripe);
    const std::uint64_t slot = slotOf(plid);
    if (!slotLive(slot) ||
        refs_[slot].load(std::memory_order_relaxed) != 0) {
        return std::nullopt;
    }
    Retired out{materialize(slot), bucket, false};
    if (limits_.epochReclaim) {
        // Unpublish now, park the way (§12): signature and content
        // stay intact for in-flight readers until grace expiry, and
        // the allocator skips limbo ways.
        setSlotLimbo(slot, true);
        setSlotLive(slot, false);
        limboLines_.fetch_add(1, std::memory_order_relaxed);
        epoch_.defer(&LineStore::limboFreeHomeThunk, this, slot);
    } else {
        setSlotLive(slot, false);
        sigs_[slot] = 0;
        Word *w = &words_[slot * lineWords_];
        std::uint16_t *m = &metas_[slot * lineWords_];
        for (unsigned i = 0; i < lineWords_; ++i) {
            w[i] = 0;
            m[i] = 0;
        }
    }
    const std::uint64_t prev =
        liveLines_.fetch_sub(1, std::memory_order_relaxed);
    HICAMP_ASSERT(prev > 0, "live line count underflow");
    HICAMP_TRACE_EVENT(Store, Retire, plid, lineWords_ * sizeof(Word));
    return out;
}

void
LineStore::limboFreeHomeThunk(void *self, std::uint64_t slot)
{
    static_cast<LineStore *>(self)->limboFreeHome(slot);
}

void
LineStore::limboFreeOverflowThunk(void *self, std::uint64_t plid)
{
    static_cast<LineStore *>(self)->limboFreeOverflow(
        static_cast<Plid>(plid));
}

void
LineStore::limboFreeHome(std::uint64_t slot)
{
    const std::uint64_t bucket = slot / BucketLayout::kNumData;
    const unsigned stripe = stripeOfBucket(bucket);
    noteExcl(stripe);
    StripeExclusive g(stripes_, stripe);
    // A limbo way can be neither resurrected (it is unpublished and
    // its count is zero, which tryAcquireRef refuses) nor reused
    // (the allocator skips limbo bits), so it must still be exactly
    // as retire() left it.
    HICAMP_DEBUG_ASSERT(slotLimbo(slot) && !slotLive(slot),
                        "limbo home way mutated before grace expiry");
    sigs_[slot] = 0;
    Word *w = &words_[slot * lineWords_];
    std::uint16_t *m = &metas_[slot * lineWords_];
    for (unsigned i = 0; i < lineWords_; ++i) {
        w[i] = 0;
        m[i] = 0;
    }
    setSlotLimbo(slot, false);
    const std::uint64_t prev =
        limboLines_.fetch_sub(1, std::memory_order_relaxed);
    HICAMP_ASSERT(prev > 0, "limbo line count underflow");
}

void
LineStore::limboFreeOverflow(Plid plid)
{
    const unsigned stripe = overflowStripe(plid);
    const std::uint64_t idx = overflowIdx(plid);
    noteExcl(stripe);
    StripeExclusive g(stripes_, stripe);
    OverflowEntry &e = overflowEntryAt(stripe, idx);
    // hicamp-atomic: waive(exclusive stripe lock held, and grace
    // // expiry means no lock-free reader can hold this PLID)
    HICAMP_DEBUG_ASSERT(e.limbo.load(std::memory_order_relaxed) &&
                            !e.live.load(std::memory_order_relaxed),
                        "limbo overflow entry mutated before grace "
                        "expiry");
    e.line = Line(lineWords_);
    e.limbo.store(false, std::memory_order_release);
    overflow_[stripe].freeList.push_back(idx);
    const std::uint64_t prev =
        limboLines_.fetch_sub(1, std::memory_order_relaxed);
    HICAMP_ASSERT(prev > 0, "limbo line count underflow");
}

void
LineStore::forEachLimbo(const std::function<void(Plid)> &fn) const
{
    epoch_.forEachDeferred([&](EpochManager::DeferFn f, void *ctx,
                               std::uint64_t arg) {
        if (ctx != static_cast<const void *>(this))
            return;
        if (f == &LineStore::limboFreeHomeThunk) {
            const std::uint64_t bucket = arg / BucketLayout::kNumData;
            const unsigned way =
                static_cast<unsigned>(arg % BucketLayout::kNumData);
            fn(plidOf(bucket, way));
        } else if (f == &LineStore::limboFreeOverflowThunk) {
            fn(static_cast<Plid>(arg));
        }
    });
}

std::uint64_t
LineStore::stripeLockExclusiveOps() const
{
    std::uint64_t t = 0;
    for (unsigned s = 0; s < numStripes_; ++s)
        t += lockExcl_[s].load(std::memory_order_relaxed);
    return t;
}

std::uint64_t
LineStore::stripeLockSharedOps() const
{
    std::uint64_t t = 0;
    for (unsigned s = 0; s < numStripes_; ++s)
        t += lockShared_[s].load(std::memory_order_relaxed);
    return t;
}

HICAMP_REF_PRIMITIVE void
LineStore::freeLine(Plid plid)
{
    auto retired = retire(plid);
    HICAMP_ASSERT(retired.has_value(), "freeing a referenced line");
}

void
LineStore::corruptForTest(Plid plid, unsigned word_idx, Word xor_mask)
{
    HICAMP_ASSERT(!isOverflow(plid) && plid != kZeroPlid,
                  "corruptForTest targets home-bucket lines");
    const std::uint64_t bucket = plid >> BucketLayout::kWayBits;
    noteExcl(stripeOfBucket(bucket));
    StripeExclusive g(stripes_, stripeOfBucket(bucket));
    const std::uint64_t slot = slotOf(plid);
    HICAMP_ASSERT(slotLive(slot), "corrupting a dead line");
    words_[slot * lineWords_ + word_idx] ^= xor_mask;
}

void
LineStore::forEachLive(
    const std::function<void(Plid, const Line &, std::uint32_t)> &fn)
    const
{
    // Collect each bucket's lines under its stripe lock, then invoke
    // the callback unlocked so it may re-enter the store (auditors
    // chase overflow chains and home buckets from inside the scan).
    struct Item {
        Plid plid;
        Line line;
        std::uint32_t refs;
    };
    std::vector<Item> batch;
    for (std::uint64_t b = 0; b < numBuckets_; ++b) {
        batch.clear();
        {
            noteShared(stripeOfBucket(b));
            StripeShared g(stripes_, stripeOfBucket(b));
            // hicamp-atomic: waive(shared stripe lock held; mask writers
            // // hold the exclusive lock)
            if (liveMask_[b].load(std::memory_order_relaxed) == 0)
                continue;
            for (unsigned w = 0; w < BucketLayout::kNumData; ++w) {
                const std::uint64_t slot =
                    b * BucketLayout::kNumData + w;
                if (slotLive(slot)) {
                    batch.push_back(
                        {plidOf(b, w), materialize(slot),
                         refs_[slot].load(std::memory_order_relaxed)});
                }
            }
        }
        for (const Item &it : batch)
            fn(it.plid, it.line, it.refs);
    }
    for (unsigned s = 0; s < numStripes_; ++s) {
        batch.clear();
        {
            noteShared(s);
            StripeShared g(stripes_, s);
            const OverflowShard &shard = overflow_[s];
            // hicamp-atomic: waive(shared stripe lock held; size and live
            // // are written only under the exclusive lock)
            const std::uint64_t n =
                shard.size.load(std::memory_order_relaxed);
            for (std::uint64_t i = 0; i < n; ++i) {
                const OverflowEntry &e = overflowEntryAt(s, i);
                // hicamp-atomic: waive(shared stripe lock held, as above)
                if (e.live.load(std::memory_order_relaxed)) {
                    batch.push_back(
                        {overflowPlid(s, i), e.line,
                         e.refs.load(std::memory_order_relaxed)});
                }
            }
        }
        for (const Item &it : batch)
            fn(it.plid, it.line, it.refs);
    }
}

std::uint8_t
LineStore::storedSignature(Plid plid) const
{
    HICAMP_ASSERT(!isOverflow(plid) && plid != kZeroPlid,
                  "signatures cover home-bucket lines only");
    const std::uint64_t bucket = plid >> BucketLayout::kWayBits;
    noteShared(stripeOfBucket(bucket));
    StripeShared g(stripes_, stripeOfBucket(bucket));
    return sigs_[slotOf(plid)];
}

bool
LineStore::overflowChainContains(Plid plid) const
{
    HICAMP_ASSERT(isOverflow(plid), "not an overflow PLID");
    const unsigned stripe = overflowStripe(plid);
    HICAMP_ASSERT(stripe < numStripes_, "not an overflow PLID");
    noteShared(stripe);
    StripeShared g(stripes_, stripe);
    const OverflowShard &shard = overflow_[stripe];
    const std::uint64_t idx = overflowIdx(plid);
    // Recompute from current content (not the memoized insert-time
    // hash): a poisoned line must look unindexed, exactly as the
    // chain walk of real hardware would miss it.
    const std::uint64_t hash =
        overflowEntryAt(stripe, idx).line.contentHash();
    auto [lo, hi] = shard.index.equal_range(hash);
    for (auto it = lo; it != hi; ++it) {
        if (it->second == idx)
            return true;
    }
    return false;
}

Plid
LineStore::forgeDuplicateForTest(Plid plid)
{
    const Line content = read(plid);
    const std::uint64_t hash = content.contentHash();
    const std::uint64_t b = bucketOf(hash);
    const unsigned stripe = stripeOfBucket(b);
    noteExcl(stripe);
    StripeExclusive g(stripes_, stripe);
    OverflowShard &shard = overflow_[stripe];
    const std::uint64_t idx = overflowAllocSlot(shard);
    OverflowEntry &e = overflowEntryAt(stripe, idx);
    e.line = content;
    e.homeBucket = b;
    e.hash = hash;
    e.refs.store(0, std::memory_order_relaxed);
    // hicamp-atomic: waive(ordered by the release publication of
    // // live on the next line)
    e.limbo.store(false, std::memory_order_relaxed);
    e.live.store(true, std::memory_order_release);
    shard.index.emplace(hash, idx);
    overflowLive_.fetch_add(1, std::memory_order_relaxed);
    liveLines_.fetch_add(1, std::memory_order_relaxed);
    return overflowPlid(stripe, idx);
}

void
LineStore::poisonWordForTest(Plid plid, unsigned word_idx, Word w,
                             WordMeta m)
{
    HICAMP_ASSERT(plid != kZeroPlid && word_idx < lineWords_,
                  "poisonWordForTest out of range");
    if (isOverflow(plid)) {
        const unsigned stripe = overflowStripe(plid);
        noteExcl(stripe);
        StripeExclusive g(stripes_, stripe);
        OverflowEntry &e = overflowEntryAt(stripe, overflowIdx(plid));
        // hicamp-atomic: waive(exclusive stripe lock held)
        HICAMP_ASSERT(e.live.load(std::memory_order_relaxed),
                      "poisoning a dead line");
        e.line.set(word_idx, w, m);
        return;
    }
    const std::uint64_t bucket = plid >> BucketLayout::kWayBits;
    noteExcl(stripeOfBucket(bucket));
    StripeExclusive g(stripes_, stripeOfBucket(bucket));
    const std::uint64_t slot = slotOf(plid);
    HICAMP_ASSERT(slotLive(slot), "poisoning a dead line");
    words_[slot * lineWords_ + word_idx] = w;
    metas_[slot * lineWords_ + word_idx] = m.value();
}

std::uint64_t
LineStore::totalRefs() const
{
    std::uint64_t t = 0;
    for (std::uint64_t slot = 0;
         slot < numBuckets_ * BucketLayout::kNumData; ++slot) {
        if (slotLive(slot))
            t += refs_[slot].load(std::memory_order_relaxed);
    }
    for (unsigned s = 0; s < numStripes_; ++s) {
        noteShared(s);
        StripeShared g(stripes_, s);
        // hicamp-atomic: waive(shared stripe lock held; size and live
        // // are written only under the exclusive lock)
        const std::uint64_t n =
            overflow_[s].size.load(std::memory_order_relaxed);
        for (std::uint64_t i = 0; i < n; ++i) {
            const OverflowEntry &e = overflowEntryAt(s, i);
            // hicamp-atomic: waive(shared stripe lock held, as above)
            if (e.live.load(std::memory_order_relaxed))
                t += e.refs.load(std::memory_order_relaxed);
        }
    }
    return t;
}

} // namespace hicamp
