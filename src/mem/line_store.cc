#include "mem/line_store.hh"

#include <algorithm>
#include <bit>

#include "common/logging.hh"
#include "obs/trace.hh"

namespace hicamp {

namespace {

Plid
plidOf(std::uint64_t bucket, unsigned data_way)
{
    return (bucket << BucketLayout::kWayBits) |
           (BucketLayout::kFirstData + data_way);
}

unsigned
clampStripes(unsigned stripes, std::uint64_t num_buckets)
{
    // One stripe minimum, never more stripes than buckets, and at
    // most 2^16 so a stripe number fits the overflow PLID field.
    std::uint64_t s = std::min<std::uint64_t>(
        stripes ? stripes : 1,
        std::min<std::uint64_t>(num_buckets, std::uint64_t{1} << 16));
    return static_cast<unsigned>(std::bit_floor(s));
}

} // namespace

LineStore::LineStore(std::uint64_t num_buckets, unsigned line_words)
    : LineStore(num_buckets, line_words, Limits{})
{
}

LineStore::LineStore(std::uint64_t num_buckets, unsigned line_words,
                     const Limits &limits, unsigned stripes)
    : numBuckets_(num_buckets), lineWords_(line_words), limits_(limits),
      numStripes_(clampStripes(stripes, num_buckets)),
      stripes_(numStripes_),
      words_(num_buckets * BucketLayout::kNumData * line_words, 0),
      metas_(num_buckets * BucketLayout::kNumData * line_words, 0),
      sigs_(num_buckets * BucketLayout::kNumData, 0),
      refs_(num_buckets * BucketLayout::kNumData),
      liveMask_(num_buckets), overflow_(numStripes_)
{
    HICAMP_ASSERT(std::has_single_bit(num_buckets),
                  "bucket count must be a power of two");
    HICAMP_ASSERT(line_words == 2 || line_words == 4 || line_words == 8,
                  "line width must be 2, 4 or 8 words");
    HICAMP_ASSERT(limits.refcountBits >= 2 && limits.refcountBits <= 32,
                  "refcount width must be 2..32 bits");
    refMax_ = limits.refcountBits == 32
                  ? ~std::uint32_t{0}
                  : (std::uint32_t{1} << limits.refcountBits) - 1;
}

std::uint64_t
LineStore::bucketOfPlid(Plid plid) const
{
    if (isOverflow(plid)) {
        const unsigned stripe = overflowStripe(plid);
        HICAMP_DEBUG_ASSERT(stripe < numStripes_, "malformed PLID");
        StripeShared g(stripes_, stripe);
        const std::uint64_t idx = overflowIdx(plid);
        HICAMP_DEBUG_ASSERT(idx < overflow_[stripe].entries.size(),
                            "malformed PLID");
        return overflow_[stripe].entries[idx].homeBucket;
    }
    return plid >> BucketLayout::kWayBits;
}

std::uint64_t
LineStore::slotOf(Plid plid) const
{
    std::uint64_t bucket = plid >> BucketLayout::kWayBits;
    unsigned way = static_cast<unsigned>(plid & (BucketLayout::kWays - 1));
    HICAMP_DEBUG_ASSERT(
        bucket < numBuckets_ && way >= BucketLayout::kFirstData &&
            way < BucketLayout::kFirstData + BucketLayout::kNumData,
        "malformed PLID");
    return bucket * BucketLayout::kNumData +
           (way - BucketLayout::kFirstData);
}

void
LineStore::setSlotLive(std::uint64_t slot, bool live)
{
    std::uint64_t bucket = slot / BucketLayout::kNumData;
    unsigned bit = static_cast<unsigned>(slot % BucketLayout::kNumData);
    // Release: publishing the bit is what makes a freshly written
    // line visible to lock-free readers, so the content stores must
    // not sink below it.
    if (live) {
        liveMask_[bucket].fetch_or(static_cast<std::uint16_t>(1u << bit),
                                   std::memory_order_release);
    } else {
        liveMask_[bucket].fetch_and(
            static_cast<std::uint16_t>(~(1u << bit)),
            std::memory_order_release);
    }
}

bool
LineStore::slotEquals(std::uint64_t slot, const Line &content) const
{
    const Word *w = &words_[slot * lineWords_];
    const std::uint16_t *m = &metas_[slot * lineWords_];
    for (unsigned i = 0; i < lineWords_; ++i) {
        if (w[i] != content.word(i) || m[i] != content.meta(i).value())
            return false;
    }
    return true;
}

Line
LineStore::materialize(std::uint64_t slot) const
{
    Line l(lineWords_);
    const Word *w = &words_[slot * lineWords_];
    const std::uint16_t *m = &metas_[slot * lineWords_];
    for (unsigned i = 0; i < lineWords_; ++i)
        l.set(i, w[i], WordMeta(m[i]));
    return l;
}

LineStore::FindResult
LineStore::findImpl(const Line &content, std::uint64_t hash) const
{
    FindResult r;
    const std::uint64_t b = bucketOf(hash);
    const std::uint8_t sig = signatureOfHash(hash);
    const std::uint64_t base = b * BucketLayout::kNumData;
    for (unsigned w = 0; w < BucketLayout::kNumData; ++w) {
        const std::uint64_t slot = base + w;
        if (!slotLive(slot) || sigs_[slot] != sig)
            continue;
        r.candidates.push_back(plidOf(b, w));
        r.candidateLines.push_back(materialize(slot));
        if (slotEquals(slot, content)) {
            r.plid = r.candidates.back();
            r.found = true;
            return r;
        }
    }
    const OverflowShard &shard = overflow_[stripeOfBucket(b)];
    auto [lo, hi] = shard.index.equal_range(hash);
    for (auto it = lo; it != hi; ++it) {
        const OverflowEntry &e = shard.entries[it->second];
        if (e.live.load(std::memory_order_relaxed) && e.line == content) {
            r.plid = overflowPlid(stripeOfBucket(b), it->second);
            r.found = true;
            r.overflow = true;
            return r;
        }
    }
    return r;
}

LineStore::FindResult
LineStore::find(const Line &content) const
{
    HICAMP_ASSERT(content.size() == lineWords_, "line width mismatch");
    HICAMP_ASSERT(!content.isZero(), "zero line is implicit (PLID 0)");
    const std::uint64_t hash = content.contentHash();
    const unsigned stripe = stripeOfBucket(bucketOf(hash));
    StripeShared g(stripes_, stripe);
    return findImpl(content, hash);
}

HICAMP_REF_PRIMITIVE LineStore::FindResult
LineStore::findOrInsert(const Line &content, bool take_ref)
{
    HICAMP_ASSERT(content.size() == lineWords_, "line width mismatch");
    HICAMP_ASSERT(!content.isZero(), "zero line is implicit (PLID 0)");
    const std::uint64_t hash = content.contentHash();
    const std::uint64_t b = bucketOf(hash);
    const unsigned stripe = stripeOfBucket(b);
    StripeExclusive g(stripes_, stripe);

    FindResult r = findImpl(content, hash);
    if (r.found) {
        // Dedup hit. Taking the reference inside the bucket's
        // critical section is what lets a hit on a dying (count 0)
        // line resurrect it safely: retire() serializes on the same
        // stripe lock and re-checks the count.
        if (take_ref) {
            if (r.overflow) {
                adjustRef(
                    overflow_[stripe].entries[overflowIdx(r.plid)].refs,
                    +1);
            } else {
                adjustRef(refs_[slotOf(r.plid)], +1);
            }
        }
        return r;
    }

    if (!tryReserveLine()) {
        r.status = MemStatus::OutOfMemory;
        return r;
    }

    const std::uint8_t sig = signatureOfHash(hash);
    const std::uint64_t base = b * BucketLayout::kNumData;
    if (liveMask_[b].load(std::memory_order_relaxed) !=
        (1u << BucketLayout::kNumData) - 1) {
        for (unsigned w = 0; w < BucketLayout::kNumData; ++w) {
            const std::uint64_t slot = base + w;
            if (slotLive(slot))
                continue;
            Word *dst = &words_[slot * lineWords_];
            std::uint16_t *dm = &metas_[slot * lineWords_];
            for (unsigned i = 0; i < lineWords_; ++i) {
                dst[i] = content.word(i);
                dm[i] = content.meta(i).value();
            }
            sigs_[slot] = sig;
            refs_[slot].store(take_ref ? 1 : 0,
                              std::memory_order_relaxed);
            // Publication point: release-store of the occupancy bit
            // makes the content above visible to lock-free readers.
            setSlotLive(slot, true);
            r.plid = plidOf(b, w);
            HICAMP_TRACE_EVENT(Store, Publish, r.plid,
                               lineWords_ * sizeof(Word));
            return r;
        }
    }

    // Home bucket full: spill to this stripe's overflow shard, if the
    // finite capacity model still has room for one more line.
    if (!tryReserveOverflow()) {
        liveLines_.fetch_sub(1, std::memory_order_relaxed);
        r.status = MemStatus::OutOfMemory;
        return r;
    }
    OverflowShard &shard = overflow_[stripe];
    std::uint64_t idx;
    if (!shard.freeList.empty()) {
        idx = shard.freeList.back();
        shard.freeList.pop_back();
    } else {
        idx = shard.entries.size();
        shard.entries.emplace_back();
    }
    OverflowEntry &e = shard.entries[idx];
    e.line = content;
    e.homeBucket = b;
    e.hash = hash;
    e.refs.store(take_ref ? 1 : 0, std::memory_order_relaxed);
    e.live.store(true, std::memory_order_release);
    shard.index.emplace(hash, idx);
    r.plid = overflowPlid(stripe, idx);
    r.overflow = true;
    HICAMP_TRACE_EVENT(Store, OverflowAlloc, r.plid,
                       lineWords_ * sizeof(Word));
    return r;
}

Line
LineStore::read(Plid plid) const
{
    if (plid == kZeroPlid)
        return Line(lineWords_);
    if (isOverflow(plid)) {
        const unsigned stripe = overflowStripe(plid);
        HICAMP_DEBUG_ASSERT(stripe < numStripes_, "malformed PLID");
        StripeShared g(stripes_, stripe);
        const OverflowEntry &e =
            overflow_[stripe].entries[overflowIdx(plid)];
        HICAMP_DEBUG_ASSERT(e.live.load(std::memory_order_relaxed),
                            "read of dead overflow line");
        return e.line;
    }
    // Home-bucket lines are immutable once published, so this path is
    // lock-free: the acquire load of the occupancy bit pairs with the
    // release in setSlotLive, ordering the content stores before us.
    const std::uint64_t slot = slotOf(plid);
    const bool live = slotLive(slot); // acquire
    HICAMP_DEBUG_ASSERT(live, "read of unallocated PLID");
    (void)live;
    return materialize(slot);
}

bool
LineStore::isLive(Plid plid) const
{
    if (plid == kZeroPlid)
        return true;
    if (isOverflow(plid)) {
        const unsigned stripe = overflowStripe(plid);
        if (stripe >= numStripes_)
            return false;
        StripeShared g(stripes_, stripe);
        const std::uint64_t idx = overflowIdx(plid);
        return idx < overflow_[stripe].entries.size() &&
               overflow_[stripe].entries[idx].live.load(
                   std::memory_order_acquire);
    }
    std::uint64_t bucket = plid >> BucketLayout::kWayBits;
    unsigned way = static_cast<unsigned>(plid & (BucketLayout::kWays - 1));
    if (bucket >= numBuckets_ || way < BucketLayout::kFirstData ||
        way >= BucketLayout::kFirstData + BucketLayout::kNumData) {
        return false;
    }
    return slotLive(slotOf(plid));
}

std::uint32_t
LineStore::refCount(Plid plid) const
{
    if (plid == kZeroPlid)
        return 1; // the zero line is never reclaimed
    if (isOverflow(plid)) {
        const unsigned stripe = overflowStripe(plid);
        HICAMP_DEBUG_ASSERT(stripe < numStripes_, "malformed PLID");
        StripeShared g(stripes_, stripe);
        return overflow_[stripe].entries[overflowIdx(plid)].refs.load(
            std::memory_order_relaxed);
    }
    return refs_[slotOf(plid)].load(std::memory_order_relaxed);
}

HICAMP_REF_PRIMITIVE std::uint32_t
LineStore::adjustRef(std::atomic<std::uint32_t> &r, std::int32_t delta)
{
    std::uint32_t cur = r.load(std::memory_order_relaxed);
    for (;;) {
        // Sticky saturation (§3.1): a count pinned at the ceiling no
        // longer tracks references, so neither direction moves it.
        if (cur == refMax_)
            return refMax_;
        if (delta < 0) {
            HICAMP_ASSERT(cur >= static_cast<std::uint32_t>(-delta),
                          "refcount underflow");
        }
        const std::uint64_t next64 = static_cast<std::uint64_t>(
            static_cast<std::int64_t>(cur) + delta);
        const std::uint32_t next =
            next64 >= refMax_ ? refMax_
                              : static_cast<std::uint32_t>(next64);
        // acq_rel so a decrement observed at zero also orders every
        // earlier ref-holder's accesses before the eventual retire
        // (the shared_ptr discipline).
        if (r.compare_exchange_weak(cur, next,
                                    std::memory_order_acq_rel,
                                    std::memory_order_relaxed)) {
            if (next == refMax_)
                saturatedLines_.fetch_add(1, std::memory_order_relaxed);
            return next;
        }
    }
}

HICAMP_REF_PRIMITIVE bool
LineStore::tryAcquireRef(std::atomic<std::uint32_t> &r)
{
    std::uint32_t cur = r.load(std::memory_order_relaxed);
    for (;;) {
        if (cur == 0)
            return false;
        if (cur == refMax_)
            return true;
        if (r.compare_exchange_weak(cur, cur + 1,
                                    std::memory_order_acq_rel,
                                    std::memory_order_relaxed)) {
            if (cur + 1 == refMax_)
                saturatedLines_.fetch_add(1, std::memory_order_relaxed);
            return true;
        }
    }
}

HICAMP_REF_PRIMITIVE std::uint32_t
LineStore::addRef(Plid plid, std::int32_t delta)
{
    HICAMP_DEBUG_ASSERT(plid != kZeroPlid, "refcounting the zero line");
    if (isOverflow(plid)) {
        const unsigned stripe = overflowStripe(plid);
        HICAMP_DEBUG_ASSERT(stripe < numStripes_, "malformed PLID");
        StripeShared g(stripes_, stripe);
        OverflowEntry &e = overflow_[stripe].entries[overflowIdx(plid)];
        HICAMP_DEBUG_ASSERT(e.live.load(std::memory_order_relaxed),
                            "refcount of dead overflow line");
        return adjustRef(e.refs, delta);
    }
    const std::uint64_t slot = slotOf(plid);
    HICAMP_DEBUG_ASSERT(slotLive(slot), "refcount of unallocated PLID");
    return adjustRef(refs_[slot], delta);
}

HICAMP_REF_PRIMITIVE bool
LineStore::incRefIfLive(Plid plid)
{
    if (plid == kZeroPlid)
        return true;
    if (isOverflow(plid)) {
        const unsigned stripe = overflowStripe(plid);
        if (stripe >= numStripes_)
            return false;
        StripeShared g(stripes_, stripe);
        const std::uint64_t idx = overflowIdx(plid);
        if (idx >= overflow_[stripe].entries.size())
            return false;
        OverflowEntry &e = overflow_[stripe].entries[idx];
        if (!e.live.load(std::memory_order_acquire))
            return false;
        return tryAcquireRef(e.refs);
    }
    std::uint64_t bucket = plid >> BucketLayout::kWayBits;
    unsigned way = static_cast<unsigned>(plid & (BucketLayout::kWays - 1));
    if (bucket >= numBuckets_ || way < BucketLayout::kFirstData ||
        way >= BucketLayout::kFirstData + BucketLayout::kNumData) {
        return false;
    }
    const std::uint64_t slot = slotOf(plid);
    if (!slotLive(slot)) // acquire
        return false;
    return tryAcquireRef(refs_[slot]);
}

HICAMP_REF_PRIMITIVE void
LineStore::saturateRefSlot(std::atomic<std::uint32_t> &r)
{
    std::uint32_t cur = r.load(std::memory_order_relaxed);
    while (cur != refMax_) {
        if (r.compare_exchange_weak(cur, refMax_,
                                    std::memory_order_acq_rel,
                                    std::memory_order_relaxed)) {
            saturatedLines_.fetch_add(1, std::memory_order_relaxed);
            return;
        }
    }
}

HICAMP_REF_PRIMITIVE void
LineStore::saturateRef(Plid plid)
{
    HICAMP_DEBUG_ASSERT(plid != kZeroPlid, "refcounting the zero line");
    if (isOverflow(plid)) {
        const unsigned stripe = overflowStripe(plid);
        StripeShared g(stripes_, stripe);
        saturateRefSlot(overflow_[stripe].entries[overflowIdx(plid)].refs);
        return;
    }
    saturateRefSlot(refs_[slotOf(plid)]);
}

bool
LineStore::tryReserveLine()
{
    std::uint64_t cur = liveLines_.load(std::memory_order_relaxed);
    while (cur < limits_.maxLiveLines) {
        if (liveLines_.compare_exchange_weak(cur, cur + 1,
                                             std::memory_order_relaxed)) {
            return true;
        }
    }
    return false;
}

bool
LineStore::tryReserveOverflow()
{
    std::uint64_t cur = overflowLive_.load(std::memory_order_relaxed);
    while (cur < limits_.overflowCapacity) {
        if (overflowLive_.compare_exchange_weak(
                cur, cur + 1, std::memory_order_relaxed)) {
            return true;
        }
    }
    return false;
}

HICAMP_REF_PRIMITIVE std::optional<LineStore::Retired>
LineStore::retire(Plid plid)
{
    HICAMP_ASSERT(plid != kZeroPlid, "freeing the zero line");
    if (isOverflow(plid)) {
        const unsigned stripe = overflowStripe(plid);
        HICAMP_DEBUG_ASSERT(stripe < numStripes_, "malformed PLID");
        StripeExclusive g(stripes_, stripe);
        OverflowShard &shard = overflow_[stripe];
        const std::uint64_t idx = overflowIdx(plid);
        HICAMP_DEBUG_ASSERT(idx < shard.entries.size(), "malformed PLID");
        OverflowEntry &e = shard.entries[idx];
        // A concurrent dedup hit may have resurrected the line (or
        // another thread already retired it) — both serialize here.
        if (!e.live.load(std::memory_order_relaxed) ||
            e.refs.load(std::memory_order_relaxed) != 0) {
            return std::nullopt;
        }
        Retired out{e.line, e.homeBucket, true};
        auto [lo, hi] = shard.index.equal_range(e.hash);
        for (auto it = lo; it != hi; ++it) {
            if (it->second == idx) {
                shard.index.erase(it);
                break;
            }
        }
        e.live.store(false, std::memory_order_release);
        e.line = Line(lineWords_);
        shard.freeList.push_back(idx);
        overflowLive_.fetch_sub(1, std::memory_order_relaxed);
        const std::uint64_t prev =
            liveLines_.fetch_sub(1, std::memory_order_relaxed);
        HICAMP_ASSERT(prev > 0, "live line count underflow");
        HICAMP_TRACE_EVENT(Store, Retire, plid,
                           lineWords_ * sizeof(Word));
        return out;
    }
    const std::uint64_t bucket = plid >> BucketLayout::kWayBits;
    const unsigned stripe = stripeOfBucket(bucket);
    StripeExclusive g(stripes_, stripe);
    const std::uint64_t slot = slotOf(plid);
    if (!slotLive(slot) ||
        refs_[slot].load(std::memory_order_relaxed) != 0) {
        return std::nullopt;
    }
    Retired out{materialize(slot), bucket, false};
    setSlotLive(slot, false);
    sigs_[slot] = 0;
    Word *w = &words_[slot * lineWords_];
    std::uint16_t *m = &metas_[slot * lineWords_];
    for (unsigned i = 0; i < lineWords_; ++i) {
        w[i] = 0;
        m[i] = 0;
    }
    const std::uint64_t prev =
        liveLines_.fetch_sub(1, std::memory_order_relaxed);
    HICAMP_ASSERT(prev > 0, "live line count underflow");
    HICAMP_TRACE_EVENT(Store, Retire, plid, lineWords_ * sizeof(Word));
    return out;
}

HICAMP_REF_PRIMITIVE void
LineStore::freeLine(Plid plid)
{
    auto retired = retire(plid);
    HICAMP_ASSERT(retired.has_value(), "freeing a referenced line");
}

void
LineStore::corruptForTest(Plid plid, unsigned word_idx, Word xor_mask)
{
    HICAMP_ASSERT(!isOverflow(plid) && plid != kZeroPlid,
                  "corruptForTest targets home-bucket lines");
    const std::uint64_t bucket = plid >> BucketLayout::kWayBits;
    StripeExclusive g(stripes_, stripeOfBucket(bucket));
    const std::uint64_t slot = slotOf(plid);
    HICAMP_ASSERT(slotLive(slot), "corrupting a dead line");
    words_[slot * lineWords_ + word_idx] ^= xor_mask;
}

void
LineStore::forEachLive(
    const std::function<void(Plid, const Line &, std::uint32_t)> &fn)
    const
{
    // Collect each bucket's lines under its stripe lock, then invoke
    // the callback unlocked so it may re-enter the store (auditors
    // chase overflow chains and home buckets from inside the scan).
    struct Item {
        Plid plid;
        Line line;
        std::uint32_t refs;
    };
    std::vector<Item> batch;
    for (std::uint64_t b = 0; b < numBuckets_; ++b) {
        batch.clear();
        {
            StripeShared g(stripes_, stripeOfBucket(b));
            if (liveMask_[b].load(std::memory_order_relaxed) == 0)
                continue;
            for (unsigned w = 0; w < BucketLayout::kNumData; ++w) {
                const std::uint64_t slot =
                    b * BucketLayout::kNumData + w;
                if (slotLive(slot)) {
                    batch.push_back(
                        {plidOf(b, w), materialize(slot),
                         refs_[slot].load(std::memory_order_relaxed)});
                }
            }
        }
        for (const Item &it : batch)
            fn(it.plid, it.line, it.refs);
    }
    for (unsigned s = 0; s < numStripes_; ++s) {
        batch.clear();
        {
            StripeShared g(stripes_, s);
            const OverflowShard &shard = overflow_[s];
            for (std::uint64_t i = 0; i < shard.entries.size(); ++i) {
                const OverflowEntry &e = shard.entries[i];
                if (e.live.load(std::memory_order_relaxed)) {
                    batch.push_back(
                        {overflowPlid(s, i), e.line,
                         e.refs.load(std::memory_order_relaxed)});
                }
            }
        }
        for (const Item &it : batch)
            fn(it.plid, it.line, it.refs);
    }
}

std::uint8_t
LineStore::storedSignature(Plid plid) const
{
    HICAMP_ASSERT(!isOverflow(plid) && plid != kZeroPlid,
                  "signatures cover home-bucket lines only");
    const std::uint64_t bucket = plid >> BucketLayout::kWayBits;
    StripeShared g(stripes_, stripeOfBucket(bucket));
    return sigs_[slotOf(plid)];
}

bool
LineStore::overflowChainContains(Plid plid) const
{
    HICAMP_ASSERT(isOverflow(plid), "not an overflow PLID");
    const unsigned stripe = overflowStripe(plid);
    HICAMP_ASSERT(stripe < numStripes_, "not an overflow PLID");
    StripeShared g(stripes_, stripe);
    const OverflowShard &shard = overflow_[stripe];
    const std::uint64_t idx = overflowIdx(plid);
    // Recompute from current content (not the memoized insert-time
    // hash): a poisoned line must look unindexed, exactly as the
    // chain walk of real hardware would miss it.
    const std::uint64_t hash = shard.entries[idx].line.contentHash();
    auto [lo, hi] = shard.index.equal_range(hash);
    for (auto it = lo; it != hi; ++it) {
        if (it->second == idx)
            return true;
    }
    return false;
}

Plid
LineStore::forgeDuplicateForTest(Plid plid)
{
    const Line content = read(plid);
    const std::uint64_t hash = content.contentHash();
    const std::uint64_t b = bucketOf(hash);
    const unsigned stripe = stripeOfBucket(b);
    StripeExclusive g(stripes_, stripe);
    OverflowShard &shard = overflow_[stripe];
    std::uint64_t idx;
    if (!shard.freeList.empty()) {
        idx = shard.freeList.back();
        shard.freeList.pop_back();
    } else {
        idx = shard.entries.size();
        shard.entries.emplace_back();
    }
    OverflowEntry &e = shard.entries[idx];
    e.line = content;
    e.homeBucket = b;
    e.hash = hash;
    e.refs.store(0, std::memory_order_relaxed);
    e.live.store(true, std::memory_order_release);
    shard.index.emplace(hash, idx);
    overflowLive_.fetch_add(1, std::memory_order_relaxed);
    liveLines_.fetch_add(1, std::memory_order_relaxed);
    return overflowPlid(stripe, idx);
}

void
LineStore::poisonWordForTest(Plid plid, unsigned word_idx, Word w,
                             WordMeta m)
{
    HICAMP_ASSERT(plid != kZeroPlid && word_idx < lineWords_,
                  "poisonWordForTest out of range");
    if (isOverflow(plid)) {
        const unsigned stripe = overflowStripe(plid);
        StripeExclusive g(stripes_, stripe);
        OverflowEntry &e = overflow_[stripe].entries[overflowIdx(plid)];
        HICAMP_ASSERT(e.live.load(std::memory_order_relaxed),
                      "poisoning a dead line");
        e.line.set(word_idx, w, m);
        return;
    }
    const std::uint64_t bucket = plid >> BucketLayout::kWayBits;
    StripeExclusive g(stripes_, stripeOfBucket(bucket));
    const std::uint64_t slot = slotOf(plid);
    HICAMP_ASSERT(slotLive(slot), "poisoning a dead line");
    words_[slot * lineWords_ + word_idx] = w;
    metas_[slot * lineWords_ + word_idx] = m.value();
}

std::uint64_t
LineStore::totalRefs() const
{
    std::uint64_t t = 0;
    for (std::uint64_t slot = 0;
         slot < numBuckets_ * BucketLayout::kNumData; ++slot) {
        if (slotLive(slot))
            t += refs_[slot].load(std::memory_order_relaxed);
    }
    for (unsigned s = 0; s < numStripes_; ++s) {
        StripeShared g(stripes_, s);
        for (const auto &e : overflow_[s].entries) {
            if (e.live.load(std::memory_order_relaxed))
                t += e.refs.load(std::memory_order_relaxed);
        }
    }
    return t;
}

} // namespace hicamp
