#include "cache/address_space.hh"

#include "common/status.hh"

namespace hicamp {

SlabAllocator::SlabAllocator(Addr base, std::uint64_t min_chunk,
                             std::uint64_t max_chunk, double growth)
    : region_(base), maxChunk_(max_chunk)
{
    std::uint64_t chunk = min_chunk;
    while (chunk < max_chunk) {
        classes_.push_back({chunk, {}, 0, 0});
        auto next = static_cast<std::uint64_t>(
            static_cast<double>(chunk) * growth);
        chunk = next > chunk ? next : chunk + 16;
        chunk = (chunk + 7) & ~std::uint64_t{7};
    }
    classes_.push_back({max_chunk, {}, 0, 0});
}

std::size_t
SlabAllocator::classFor(std::uint64_t bytes) const
{
    for (std::size_t i = 0; i < classes_.size(); ++i) {
        if (classes_[i].chunk >= bytes)
            return i;
    }
    // Real memcached answers SERVER_ERROR "object too large for
    // cache"; let the caller reject the request the same way.
    throw MemPressureError(MemStatus::Oversized,
                           "slab allocation larger than max chunk");
}

std::uint64_t
SlabAllocator::chunkSize(std::uint64_t bytes) const
{
    return classes_[classFor(bytes)].chunk;
}

Addr
SlabAllocator::alloc(std::uint64_t bytes)
{
    SizeClass &sc = classes_[classFor(bytes)];
    if (!sc.freeList.empty()) {
        Addr a = sc.freeList.back();
        sc.freeList.pop_back();
        return a;
    }
    if (sc.bump + sc.chunk > sc.pageEnd) {
        std::uint64_t page = kPageBytes < sc.chunk ? sc.chunk : kPageBytes;
        sc.bump = region_.alloc(page);
        sc.pageEnd = sc.bump + page;
    }
    Addr a = sc.bump;
    sc.bump += sc.chunk;
    return a;
}

void
SlabAllocator::free(Addr addr, std::uint64_t bytes)
{
    classes_[classFor(bytes)].freeList.push_back(addr);
}

} // namespace hicamp
