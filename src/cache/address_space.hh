/**
 * @file
 * A trivial simulated address space for the conventional baseline
 * application models: region-labelled bump allocation plus a slab
 * allocator in the style of memcached's. The models never store real
 * data here — they only need stable, realistically-laid-out addresses
 * to feed the cache simulator.
 */

#ifndef HICAMP_CACHE_ADDRESS_SPACE_HH
#define HICAMP_CACHE_ADDRESS_SPACE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "cache/conv_cache.hh"
#include "common/logging.hh"

namespace hicamp {

/**
 * Bump allocator over a fresh simulated address range. Allocations are
 * 16-byte aligned like a production malloc.
 */
class BumpRegion
{
  public:
    /** @param base starting simulated address of the region. */
    explicit BumpRegion(Addr base) : base_(base), next_(base) {}

    Addr
    alloc(std::uint64_t bytes)
    {
        Addr a = next_;
        next_ += (bytes + 15) & ~std::uint64_t{15};
        return a;
    }

    Addr base() const { return base_; }
    std::uint64_t used() const { return next_ - base_; }

  private:
    Addr base_;
    Addr next_;
};

/**
 * Slab allocator in the memcached style: size classes grow by a factor
 * (default 1.25), each class carves fixed-size chunks out of 1 MB slab
 * pages, and freed chunks go on a per-class free list. Captures the
 * address-reuse and internal-fragmentation behaviour of the real
 * allocator, which is what the cache simulation sees.
 */
class SlabAllocator
{
  public:
    SlabAllocator(Addr base, std::uint64_t min_chunk = 96,
                  std::uint64_t max_chunk = 1 << 20, double growth = 1.25);

    /**
     * Allocate a chunk of at least @p bytes; returns its address.
     * Throws MemPressureError(Oversized) past maxChunk().
     */
    Addr alloc(std::uint64_t bytes);

    /** Release a chunk previously returned for @p bytes. */
    void free(Addr addr, std::uint64_t bytes);

    /** Rounded chunk size used for a request of @p bytes. */
    std::uint64_t chunkSize(std::uint64_t bytes) const;

    /** Largest allocatable request; bigger ones are rejected. */
    std::uint64_t maxChunk() const { return maxChunk_; }

    /** Total simulated bytes reserved from the region (slab pages). */
    std::uint64_t reservedBytes() const { return region_.used(); }

  private:
    struct SizeClass {
        std::uint64_t chunk;
        std::vector<Addr> freeList;
        Addr bump = 0;      ///< next unused chunk inside current page
        Addr pageEnd = 0;
    };

    std::size_t classFor(std::uint64_t bytes) const;

    static constexpr std::uint64_t kPageBytes = 1 << 20;

    BumpRegion region_;
    std::vector<SizeClass> classes_;
    std::uint64_t maxChunk_;
};

} // namespace hicamp

#endif // HICAMP_CACHE_ADDRESS_SPACE_HH
