/**
 * @file
 * Conventional (byte-addressed) cache hierarchy simulator — the
 * DineroIV/PTLSim stand-in used for the paper's baseline measurements.
 *
 * Geometry defaults follow paper §5: a 4-way 32 KB L1 data cache and a
 * 16-way 4 MB L2, write-back / write-allocate, LRU replacement, with a
 * configurable line size (16, 32 or 64 bytes). The only outputs the
 * evaluation consumes are DRAM reads (L2 misses) and DRAM writes
 * (dirty L2 writebacks).
 */

#ifndef HICAMP_CACHE_CONV_CACHE_HH
#define HICAMP_CACHE_CONV_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "obs/metrics.hh"

namespace hicamp {

/** Byte address in the simulated conventional address space. */
using Addr = std::uint64_t;

/** Configuration of one set-associative cache level. */
struct CacheParams {
    std::uint64_t sizeBytes;
    unsigned ways;
    unsigned lineBytes;
};

/**
 * One set-associative, write-back, write-allocate cache level with LRU
 * replacement. Tracks tags only (no data): sufficient for access
 * counting.
 */
class SetAssocCache
{
  public:
    explicit SetAssocCache(const CacheParams &p);

    /** Result of a probe-and-fill access. */
    struct Access {
        bool hit;
        bool writeback;       ///< a dirty victim was evicted
        std::uint64_t victimTag; ///< full line address of the victim
    };

    /**
     * Access the line containing @p line_addr (already line-aligned
     * id, i.e. addr >> log2(lineBytes)). Fills on miss.
     */
    Access access(std::uint64_t line_id, bool is_write);

    /** Probe without filling or LRU update. */
    bool contains(std::uint64_t line_id) const;

    /** Invalidate a line if present; returns true if it was dirty. */
    bool invalidate(std::uint64_t line_id);

    unsigned lineBytes() const { return lineBytes_; }
    std::uint64_t numSets() const { return numSets_; }

    // hicamp-lint: stat-ok(registered as <prefix>.l1/l2.* by
    // ConvHierarchy::registerMetrics when a driver opts in)
    Counter hits;
    Counter misses;

  private:
    struct Way {
        bool valid = false;
        bool dirty = false;
        std::uint64_t tag = 0;
        std::uint64_t lru = 0; ///< larger == more recently used
    };

    std::uint64_t setOf(std::uint64_t line_id) const
    {
        return line_id & (numSets_ - 1);
    }

    unsigned lineBytes_;
    unsigned ways_;
    std::uint64_t numSets_;
    std::uint64_t lruClock_;
    std::vector<Way> slots_; ///< numSets_ * ways_, row-major by set
};

/**
 * Two-level data-cache hierarchy with DRAM traffic counting. All
 * baseline application models funnel their loads and stores through
 * access(); multi-byte accesses are split across line boundaries.
 */
class ConvHierarchy
{
  public:
    /** Paper §5 geometry at the given line size. */
    static ConvHierarchy paperDefault(unsigned line_bytes);

    ConvHierarchy(const CacheParams &l1, const CacheParams &l2);

    /** Simulate a load (@p is_write false) or store of @p bytes. */
    void access(Addr addr, std::uint64_t bytes, bool is_write);

    /** Convenience wrappers. */
    void read(Addr addr, std::uint64_t bytes) { access(addr, bytes, false); }
    void write(Addr addr, std::uint64_t bytes) { access(addr, bytes, true); }

    unsigned lineBytes() const { return l1_.lineBytes(); }

    std::uint64_t dramReads() const { return dramReads_.value(); }
    std::uint64_t dramWrites() const { return dramWrites_.value(); }
    std::uint64_t dramTotal() const { return dramReads() + dramWrites(); }

    SetAssocCache &l1() { return l1_; }
    SetAssocCache &l2() { return l2_; }

    /**
     * Expose the hierarchy's counters as <prefix>.dram.reads,
     * <prefix>.dram.writes and <prefix>.l1/l2.{hits,misses} in @p reg.
     * The hierarchy must outlive the registry entries; drivers that
     * destroy the hierarchy first should reg.removeByPrefix(prefix).
     */
    void registerMetrics(obs::MetricsRegistry &reg,
                         const std::string &prefix);

  private:
    void accessLine(std::uint64_t line_id, bool is_write);

    SetAssocCache l1_;
    SetAssocCache l2_;
    unsigned lineShift_;
    // hicamp-lint: stat-ok(exposed through registerMetrics as
    // <prefix>.dram.* when a driver opts in)
    Counter dramReads_;
    Counter dramWrites_;
};

} // namespace hicamp

#endif // HICAMP_CACHE_CONV_CACHE_HH
