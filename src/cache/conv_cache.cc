#include "cache/conv_cache.hh"

#include <bit>

#include "common/logging.hh"
#include "obs/trace.hh"

namespace hicamp {

SetAssocCache::SetAssocCache(const CacheParams &p)
    : lineBytes_(p.lineBytes), ways_(p.ways),
      numSets_(p.sizeBytes / (p.lineBytes * p.ways)), lruClock_(0),
      slots_(numSets_ * ways_)
{
    HICAMP_ASSERT(numSets_ > 0 && std::has_single_bit(numSets_),
                  "cache set count must be a power of two");
}

SetAssocCache::Access
SetAssocCache::access(std::uint64_t line_id, bool is_write)
{
    const std::uint64_t set = setOf(line_id);
    Way *base = &slots_[set * ways_];
    Way *victim = base;
    for (unsigned w = 0; w < ways_; ++w) {
        Way &way = base[w];
        if (way.valid && way.tag == line_id) {
            way.lru = ++lruClock_;
            way.dirty = way.dirty || is_write;
            ++hits;
            return {true, false, 0};
        }
        if (!way.valid) {
            victim = &way;
        } else if (victim->valid && way.lru < victim->lru) {
            victim = &way;
        }
    }
    ++misses;
    Access result{false, false, 0};
    if (victim->valid && victim->dirty) {
        result.writeback = true;
        result.victimTag = victim->tag;
    }
    victim->valid = true;
    victim->dirty = is_write;
    victim->tag = line_id;
    victim->lru = ++lruClock_;
    return result;
}

bool
SetAssocCache::contains(std::uint64_t line_id) const
{
    const std::uint64_t set = setOf(line_id);
    const Way *base = &slots_[set * ways_];
    for (unsigned w = 0; w < ways_; ++w) {
        if (base[w].valid && base[w].tag == line_id)
            return true;
    }
    return false;
}

bool
SetAssocCache::invalidate(std::uint64_t line_id)
{
    const std::uint64_t set = setOf(line_id);
    Way *base = &slots_[set * ways_];
    for (unsigned w = 0; w < ways_; ++w) {
        if (base[w].valid && base[w].tag == line_id) {
            bool dirty = base[w].dirty;
            base[w].valid = false;
            base[w].dirty = false;
            return dirty;
        }
    }
    return false;
}

ConvHierarchy
ConvHierarchy::paperDefault(unsigned line_bytes)
{
    return ConvHierarchy({32 * 1024, 4, line_bytes},
                         {4 * 1024 * 1024, 16, line_bytes});
}

ConvHierarchy::ConvHierarchy(const CacheParams &l1, const CacheParams &l2)
    : l1_(l1), l2_(l2),
      lineShift_(static_cast<unsigned>(std::countr_zero(
          static_cast<std::uint64_t>(l1.lineBytes))))
{
    HICAMP_ASSERT(l1.lineBytes == l2.lineBytes,
                  "hierarchy levels must share a line size");
}

void
ConvHierarchy::access(Addr addr, std::uint64_t bytes, bool is_write)
{
    if (bytes == 0)
        return;
    const std::uint64_t first = addr >> lineShift_;
    const std::uint64_t last = (addr + bytes - 1) >> lineShift_;
    for (std::uint64_t id = first; id <= last; ++id)
        accessLine(id, is_write);
}

void
ConvHierarchy::registerMetrics(obs::MetricsRegistry &reg,
                               const std::string &prefix)
{
    reg.addCounter(prefix + ".dram.reads", &dramReads_);
    reg.addCounter(prefix + ".dram.writes", &dramWrites_);
    reg.addCounter(prefix + ".l1.hits", &l1_.hits);
    reg.addCounter(prefix + ".l1.misses", &l1_.misses);
    reg.addCounter(prefix + ".l2.hits", &l2_.hits);
    reg.addCounter(prefix + ".l2.misses", &l2_.misses);
}

void
ConvHierarchy::accessLine(std::uint64_t line_id, bool is_write)
{
    if (is_write) {
        HICAMP_TRACE_EVENT(Cache, ConvWrite, line_id, l1_.lineBytes());
    } else {
        HICAMP_TRACE_EVENT(Cache, ConvRead, line_id, l1_.lineBytes());
    }
    auto a1 = l1_.access(line_id, is_write);
    if (a1.writeback) {
        // L1 dirty victim merges into L2; if L2 itself victimizes a
        // dirty line, that becomes DRAM write traffic.
        auto wb = l2_.access(a1.victimTag, true);
        if (!wb.hit)
            ++dramReads_; // allocate-on-writeback fill
        if (wb.writeback)
            ++dramWrites_;
    }
    if (a1.hit)
        return;
    auto a2 = l2_.access(line_id, false);
    if (!a2.hit)
        ++dramReads_;
    if (a2.writeback)
        ++dramWrites_;
}

} // namespace hicamp
