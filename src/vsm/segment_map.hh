/**
 * @file
 * Virtual segment map (paper §2.3): maps Virtual Segment IDs to
 * [root, height, flags] descriptors. Software shares objects by
 * passing VSIDs — optionally as read-only aliases — and updates
 * segments atomically by CAS (or mCAS with merge-update) on the root.
 *
 * Entries live in the conventional (mutable) part of memory; their
 * traffic is modelled through Memory::vsmAccess. Each entry owns one
 * reference to its current root; weak entries hold the root without a
 * reference and are zeroed when the segment is reclaimed.
 *
 * Concurrency (DESIGN.md §7): descriptor reads — get(), snapshot(),
 * resolve, flag checks — are lock-free. Each slot's descriptor is
 * published through a per-slot sequence counter (seqlock); writers
 * serialize on the map mutex, bump the counter to odd, store the
 * fields, and bump back to even, while readers retry until they
 * observe the same even count on both sides of the field loads.
 * snapshot() pins its root with Memory::tryRetain and revalidates the
 * sequence afterwards, so a root swapped out mid-read is released and
 * re-read rather than returned stale. Slots live in fixed-address
 * chunks so readers never race a reallocation. The map mutex ranks
 * above the store's bucket stripes and is never held across a
 * reference release (release → reclaim → line-freed hook → map mutex
 * would self-deadlock): cas()/destroy() stash the dead root and drop
 * it after unlocking.
 */

#ifndef HICAMP_VSM_SEGMENT_MAP_HH
#define HICAMP_VSM_SEGMENT_MAP_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "seg/builder.hh"
#include "seg/merge.hh"

namespace hicamp {

class IteratorRegister;

/** Per-entry flags (paper §2.3). */
enum SegFlag : std::uint32_t {
    kSegReadOnly = 1u << 0,    ///< reference cannot commit a new root
    kSegMergeUpdate = 1u << 1, ///< CAS conflicts resolve by merge-update
    kSegWeak = 1u << 2,        ///< zeroed on reclamation, owns no ref
    kSegAlias = 1u << 3,       ///< entry forwards to another VSID
};

class SegmentMap
{
  public:
    explicit SegmentMap(Memory &mem);
    ~SegmentMap();

    SegmentMap(const SegmentMap &) = delete;
    SegmentMap &operator=(const SegmentMap &) = delete;

    /**
     * Create a segment entry. Takes ownership of @p d's root
     * reference (unless @p flags has kSegWeak).
     */
    Vsid create(const SegDesc &d, std::uint32_t flags = 0);

    /**
     * Create a read-only alias of @p target: reads forward to the
     * target entry, commits are rejected. This is how a VSID is
     * "passed read-only" to an untrusted thread.
     */
    Vsid aliasReadOnly(Vsid target);

    /**
     * Read the current descriptor (no reference acquired, lock-free).
     * Under concurrent commits the returned descriptor is a
     * consistent point-in-time value, but its root may be reclaimed
     * before the caller dereferences it — use snapshot() to pin it.
     */
    SegDesc get(Vsid v);

    /**
     * Snapshot: read the current descriptor and acquire a reference
     * on its root — the caller now holds a stable, immutable view
     * regardless of concurrent commits (snapshot isolation, §2.2).
     * Lock-free against concurrent committers.
     */
    SegDesc snapshot(Vsid v);

    /** Release a snapshot previously acquired with snapshot(). */
    void releaseSnapshot(const SegDesc &d);

    std::uint32_t flags(Vsid v) const;
    bool isReadOnly(Vsid v) const;

    /**
     * Atomic root replacement. If the entry still holds @p expected,
     * installs @p desired (taking ownership of its root reference;
     * the map's reference on the old root is released) and returns
     * true. Otherwise returns false and the caller keeps ownership of
     * @p desired. Rejected (false, no transfer) on read-only entries.
     */
    bool cas(Vsid v, const SegDesc &expected, const SegDesc &desired);

    /**
     * mCAS (paper §3.4): like cas, but on conflict attempts
     * merge-update of (old_base -> desired) onto the current root,
     * retrying — bounded by the memory's RetryPolicy, with randomized
     * exponential backoff — until the commit lands or a true conflict
     * appears. Always consumes @p desired's root reference, including
     * on the throwing paths. Returns true on success (original or
     * merged content committed); throws MemPressureError when the
     * retry budget is exhausted (TooManyConflicts) or memory pressure
     * interrupts a merge (OutOfMemory), leaking nothing either way.
     */
    bool mcas(Vsid v, const SegDesc &old_base, const SegDesc &desired,
              MergeStats *stats = nullptr);

    /** Delete an entry, releasing its root reference. */
    void destroy(Vsid v);

    /** Number of live (non-destroyed) entries. */
    std::uint64_t liveEntries() const;

    /** Total mCAS conflicts resolved by merge. */
    std::uint64_t mergeCommits() const { return mergeCommits_.value(); }
    /** mCAS calls that failed on a true conflict. */
    std::uint64_t mergeFailures() const { return mergeFailures_.value(); }

    /**
     * Lift a descriptor to height @p H by wrapping in zero-padded
     * parents (path compaction keeps this allocation-free in the
     * common case). Takes ownership of @p d's root; returns an owned
     * entry at height H.
     */
    Entry lift(const SegDesc &d, int H);

    /// @name Audit support (src/analysis)
    /// @{
    /**
     * Invoke @p fn for every live entry with its descriptor and
     * flags. Alias entries are reported with their (empty) own
     * descriptor; the target entry owns the root reference.
     */
    void forEachLive(
        const std::function<void(Vsid, const SegDesc &, std::uint32_t)>
            &fn) const;

    /**
     * Iterator registers announce themselves here for their lifetime
     * so the heap auditor can account for the line references their
     * snapshots, working trees and write buffers own.
     */
    void registerIterator(const IteratorRegister *it);
    void unregisterIterator(const IteratorRegister *it);
    std::vector<const IteratorRegister *> liveIterators() const;
    /// @}

  private:
    /**
     * One map entry. The descriptor fields are plain atomics
     * published under @c seq (odd while a writer is mid-update);
     * flags and the alias target are immutable after creation, so
     * alias resolution never needs the seqlock.
     */
    struct EntrySlot {
        std::atomic<std::uint32_t> seq{0};
        std::atomic<Word> rootWord{0};
        std::atomic<std::uint16_t> rootMeta{0};
        std::atomic<std::int32_t> height{0};
        std::atomic<std::uint64_t> byteLen{0};
        std::atomic<std::uint32_t> flags{0};
        std::atomic<Vsid> aliasTarget{kNullVsid};
        std::atomic<bool> live{false};
    };

    /// slots per chunk; chunks are never reallocated, so readers can
    /// hold slot references across concurrent create() calls
    static constexpr unsigned kSlotChunkBits = 10;
    static constexpr std::uint64_t kSlotChunkSize = 1ull << kSlotChunkBits;
    static constexpr std::uint64_t kMaxChunks = 1ull << 14;

    struct SlotChunk {
        EntrySlot slots[kSlotChunkSize];
    };

    EntrySlot &slotFor(Vsid v) const;
    /** Validity assert shared by the lock-free readers. */
    void checkLive(Vsid v) const;
    /** Resolve aliases to the primary VSID (lock-free). */
    Vsid resolve(Vsid v) const;
    /** Seqlock-consistent descriptor read (lock-free). */
    SegDesc readDesc(const EntrySlot &s) const;
    /** Publish a descriptor (mapMutex_ held). */
    void writeDesc(EntrySlot &s, const SegDesc &d);
    void onLineFreed(Plid plid);

    Memory &mem_;
    SegBuilder builder_;
    /**
     * Serializes slot creation, commits and weak-watch maintenance.
     * Ranks above the store's bucket stripes; never held while
     * calling into Memory (traffic modelling, reference releases).
     */
    mutable std::mutex mapMutex_;
    std::unique_ptr<std::atomic<SlotChunk *>[]> chunks_;
    std::atomic<std::uint64_t> slotCount_{1}; ///< slot 0 == null VSID
    std::vector<const IteratorRegister *> iterators_;
    std::unordered_multimap<Plid, Vsid> weakWatch_;
    AtomicCounter mergeCommits_;
    AtomicCounter mergeFailures_;
};

} // namespace hicamp

#endif // HICAMP_VSM_SEGMENT_MAP_HH
