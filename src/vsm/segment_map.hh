/**
 * @file
 * Virtual segment map (paper §2.3): maps Virtual Segment IDs to
 * [root, height, flags] descriptors. Software shares objects by
 * passing VSIDs — optionally as read-only aliases — and updates
 * segments atomically by CAS (or mCAS with merge-update) on the root.
 *
 * Entries live in the conventional (mutable) part of memory; their
 * traffic is modelled through Memory::vsmAccess. Each entry owns one
 * reference to its current root; weak entries hold the root without a
 * reference and are zeroed when the segment is reclaimed.
 *
 * Concurrency (DESIGN.md §7): descriptor reads — get(), snapshot(),
 * resolve, flag checks — are lock-free. Each slot's descriptor is
 * published through a per-slot sequence counter (seqlock); writers
 * serialize on the map mutex, bump the counter to odd, store the
 * fields, and bump back to even, while readers retry until they
 * observe the same even count on both sides of the field loads.
 * snapshot() pins its root with Memory::tryRetain and revalidates the
 * sequence afterwards, so a root swapped out mid-read is released and
 * re-read rather than returned stale. Slots live in fixed-address
 * chunks so readers never race a reallocation. The map mutex ranks
 * above the store's bucket stripes and is never held across a
 * reference release (release → reclaim → line-freed hook → map mutex
 * would self-deadlock): cas()/destroy() stash the dead root and drop
 * it after unlocking.
 */

#ifndef HICAMP_VSM_SEGMENT_MAP_HH
#define HICAMP_VSM_SEGMENT_MAP_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/atomic_annotations.hh"
#include "common/ownership.hh"
#include "common/thread_annotations.hh"
#include "seg/builder.hh"
#include "seg/merge.hh"

namespace hicamp {

class IteratorRegister;

/** Per-entry flags (paper §2.3). */
enum SegFlag : std::uint32_t {
    kSegReadOnly = 1u << 0,    ///< reference cannot commit a new root
    kSegMergeUpdate = 1u << 1, ///< CAS conflicts resolve by merge-update
    kSegWeak = 1u << 2,        ///< zeroed on reclamation, owns no ref
    kSegAlias = 1u << 3,       ///< entry forwards to another VSID
};

class SegmentMap
{
  public:
    explicit SegmentMap(Memory &mem);
    ~SegmentMap();

    SegmentMap(const SegmentMap &) = delete;
    SegmentMap &operator=(const SegmentMap &) = delete;

    /**
     * Create a segment entry. Takes ownership of @p d's root
     * reference (unless @p flags has kSegWeak).
     */
    Vsid create(HICAMP_CONSUMES_REF const SegDesc &d,
                std::uint32_t flags = 0)
        HICAMP_EXCLUDES(mapMutex_);

    /**
     * Create a read-only alias of @p target: reads forward to the
     * target entry, commits are rejected. This is how a VSID is
     * "passed read-only" to an untrusted thread.
     */
    Vsid aliasReadOnly(Vsid target) HICAMP_EXCLUDES(mapMutex_);

    /**
     * Read the current descriptor (no reference acquired, lock-free).
     * Under concurrent commits the returned descriptor is a
     * consistent point-in-time value, but its root may be reclaimed
     * before the caller dereferences it — use snapshot() to pin it.
     */
    SegDesc get(Vsid v);

    /**
     * Snapshot: read the current descriptor and acquire a reference
     * on its root — the caller now holds a stable, immutable view
     * regardless of concurrent commits (snapshot isolation, §2.2).
     * Lock-free against concurrent committers.
     *
     * Exempt from the capability analysis: a seqlock reader with
     * tryRetain revalidation (DESIGN.md §7), sound by protocol rather
     * than by lock.
     */
    HICAMP_RETURNS_REF SegDesc snapshot(Vsid v)
        HICAMP_NO_THREAD_SAFETY_ANALYSIS;

    /** Release a snapshot previously acquired with snapshot(). */
    HICAMP_RELEASES_REF void releaseSnapshot(const SegDesc &d);

    std::uint32_t flags(Vsid v) const;
    bool isReadOnly(Vsid v) const;

    /**
     * Atomic root replacement. If the entry still holds @p expected,
     * installs @p desired (taking ownership of its root reference;
     * the map's reference on the old root is released) and returns
     * true. Otherwise returns false and the caller keeps ownership of
     * @p desired. Rejected (false, no transfer) on read-only entries.
     */
    bool cas(Vsid v, HICAMP_BORROWS_REF const SegDesc &expected,
             const SegDesc &desired)
        HICAMP_EXCLUDES(mapMutex_);

    /**
     * mCAS (paper §3.4): like cas, but on conflict attempts
     * merge-update of (old_base -> desired) onto the current root,
     * retrying — bounded by the memory's RetryPolicy, with randomized
     * exponential backoff — until the commit lands or a true conflict
     * appears. Always consumes @p desired's root reference, including
     * on the throwing paths. Returns true on success (original or
     * merged content committed); throws MemPressureError when the
     * retry budget is exhausted (TooManyConflicts) or memory pressure
     * interrupts a merge (OutOfMemory), leaking nothing either way.
     */
    bool mcas(Vsid v, HICAMP_BORROWS_REF const SegDesc &old_base,
              HICAMP_CONSUMES_REF const SegDesc &desired,
              MergeStats *stats = nullptr) HICAMP_EXCLUDES(mapMutex_);

    /** Delete an entry, releasing its root reference. */
    void destroy(Vsid v) HICAMP_EXCLUDES(mapMutex_);

    /** Number of live (non-destroyed) entries. */
    std::uint64_t liveEntries() const HICAMP_EXCLUDES(mapMutex_);

    /** Total mCAS conflicts resolved by merge. */
    std::uint64_t mergeCommits() const { return mergeCommits_.value(); }
    /** mCAS calls that failed on a true conflict. */
    std::uint64_t mergeFailures() const { return mergeFailures_.value(); }
    /** Root replacements committed (successful cas, incl. via mcas). */
    std::uint64_t commits() const { return commits_.value(); }
    /** cas attempts rejected (stale expected root or read-only). */
    std::uint64_t casFailures() const { return casFailures_.value(); }

    /**
     * Lift a descriptor to height @p H by wrapping in zero-padded
     * parents (path compaction keeps this allocation-free in the
     * common case). Takes ownership of @p d's root; returns an owned
     * entry at height H.
     */
    HICAMP_RETURNS_REF Entry lift(HICAMP_CONSUMES_REF const SegDesc &d,
                                  int H);

    /// @name Audit support (src/analysis)
    /// @{
    /**
     * Invoke @p fn for every live entry with its descriptor and
     * flags. Alias entries are reported with their (empty) own
     * descriptor; the target entry owns the root reference.
     */
    void forEachLive(
        const std::function<void(Vsid, const SegDesc &, std::uint32_t)>
            &fn) const HICAMP_EXCLUDES(mapMutex_);

    /**
     * Iterator registers announce themselves here for their lifetime
     * so the heap auditor can account for the line references their
     * snapshots, working trees and write buffers own.
     */
    void registerIterator(const IteratorRegister *it)
        HICAMP_EXCLUDES(mapMutex_);
    void unregisterIterator(const IteratorRegister *it)
        HICAMP_EXCLUDES(mapMutex_);
    std::vector<const IteratorRegister *> liveIterators() const
        HICAMP_EXCLUDES(mapMutex_);
    /// @}

  private:
    /**
     * One map entry. The descriptor fields are plain atomics
     * published under @c seq (odd while a writer is mid-update);
     * flags and the alias target are immutable after creation, so
     * alias resolution never needs the seqlock.
     */
    struct EntrySlot {
        /// per-slot publication seqlock; its write side is entered
        /// only under mapMutex_ (writeDesc), so writers never race
        SeqCount seq;
        HICAMP_ATOMIC_SEQLOCK std::atomic<Word> rootWord
            HICAMP_GUARDED_BY(seq) = 0;
        HICAMP_ATOMIC_SEQLOCK std::atomic<std::uint16_t> rootMeta
            HICAMP_GUARDED_BY(seq) = 0;
        HICAMP_ATOMIC_SEQLOCK std::atomic<std::int32_t> height
            HICAMP_GUARDED_BY(seq) = 0;
        HICAMP_ATOMIC_SEQLOCK std::atomic<std::uint64_t> byteLen
            HICAMP_GUARDED_BY(seq) = 0;
        /// immutable after create(): ordered by the `live` publish
        HICAMP_ATOMIC_FLAG std::atomic<std::uint32_t> flags{0};
        HICAMP_ATOMIC_FLAG std::atomic<Vsid> aliasTarget{kNullVsid};
        HICAMP_ATOMIC_PUBLISH std::atomic<bool> live{false};
    };

    /// slots per chunk; chunks are never reallocated, so readers can
    /// hold slot references across concurrent create() calls
    static constexpr unsigned kSlotChunkBits = 10;
    static constexpr std::uint64_t kSlotChunkSize = 1ull << kSlotChunkBits;
    static constexpr std::uint64_t kMaxChunks = 1ull << 14;

    struct SlotChunk {
        EntrySlot slots[kSlotChunkSize];
    };

    EntrySlot &slotFor(Vsid v) const;
    /** Validity assert shared by the lock-free readers. */
    void checkLive(Vsid v) const;
    /** Resolve aliases to the primary VSID (lock-free). */
    Vsid resolve(Vsid v) const;
    /**
     * Seqlock-consistent descriptor read (lock-free). Exempt from the
     * capability analysis: the read/validate protocol, not a lock,
     * makes the guarded field loads sound (DESIGN.md §7).
     */
    SegDesc readDesc(const EntrySlot &s) const
        HICAMP_NO_THREAD_SAFETY_ANALYSIS;
    /** Publish a descriptor through the slot's seqlock. */
    void writeDesc(EntrySlot &s, const SegDesc &d)
        HICAMP_REQUIRES(mapMutex_);
    void onLineFreed(Plid plid) HICAMP_EXCLUDES(mapMutex_);

    Memory &mem_;
    SegBuilder builder_;
    /**
     * Serializes slot creation, commits and weak-watch maintenance.
     * §7 rank 2 (vsm): ranks above the store's bucket stripes; never
     * held while calling into Memory (traffic modelling, reference
     * releases) — machine-checked by HICAMP_EXCLUDES(lockrank::vsm)
     * on Memory's reclaim-reaching entry points.
     */
    mutable CapMutex mapMutex_;
    /// written under mapMutex_, read lock-free by slotFor()'s acquire
    /// load (chunks have stable addresses; see kSlotChunkBits)
    HICAMP_ATOMIC_PUBLISH std::unique_ptr<std::atomic<SlotChunk *>[]> chunks_;
    /// slot 0 == null VSID
    HICAMP_ATOMIC_PUBLISH std::atomic<std::uint64_t> slotCount_{1};
    std::vector<const IteratorRegister *> iterators_
        HICAMP_GUARDED_BY(mapMutex_);
    std::unordered_multimap<Plid, Vsid> weakWatch_
        HICAMP_GUARDED_BY(mapMutex_);
    // hicamp-lint: stat-ok(registered as vsm.* into the owning
    // Memory's registry by the constructor; removed by prefix in the
    // destructor because the map dies before its Memory)
    AtomicCounter mergeCommits_;
    AtomicCounter mergeFailures_;
    AtomicCounter commits_;
    AtomicCounter casFailures_;
};

} // namespace hicamp

#endif // HICAMP_VSM_SEGMENT_MAP_HH
