/**
 * @file
 * Virtual segment map (paper §2.3): maps Virtual Segment IDs to
 * [root, height, flags] descriptors. Software shares objects by
 * passing VSIDs — optionally as read-only aliases — and updates
 * segments atomically by CAS (or mCAS with merge-update) on the root.
 *
 * Entries live in the conventional (mutable) part of memory; their
 * traffic is modelled through Memory::vsmAccess. Each entry owns one
 * reference to its current root; weak entries hold the root without a
 * reference and are zeroed when the segment is reclaimed.
 */

#ifndef HICAMP_VSM_SEGMENT_MAP_HH
#define HICAMP_VSM_SEGMENT_MAP_HH

#include <cstdint>
#include <functional>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "seg/builder.hh"
#include "seg/merge.hh"

namespace hicamp {

class IteratorRegister;

/** Per-entry flags (paper §2.3). */
enum SegFlag : std::uint32_t {
    kSegReadOnly = 1u << 0,    ///< reference cannot commit a new root
    kSegMergeUpdate = 1u << 1, ///< CAS conflicts resolve by merge-update
    kSegWeak = 1u << 2,        ///< zeroed on reclamation, owns no ref
    kSegAlias = 1u << 3,       ///< entry forwards to another VSID
};

class SegmentMap
{
  public:
    explicit SegmentMap(Memory &mem);
    ~SegmentMap();

    SegmentMap(const SegmentMap &) = delete;
    SegmentMap &operator=(const SegmentMap &) = delete;

    /**
     * Create a segment entry. Takes ownership of @p d's root
     * reference (unless @p flags has kSegWeak).
     */
    Vsid create(const SegDesc &d, std::uint32_t flags = 0);

    /**
     * Create a read-only alias of @p target: reads forward to the
     * target entry, commits are rejected. This is how a VSID is
     * "passed read-only" to an untrusted thread.
     */
    Vsid aliasReadOnly(Vsid target);

    /** Read the current descriptor (no reference acquired). */
    SegDesc get(Vsid v);

    /**
     * Snapshot: read the current descriptor and acquire a reference
     * on its root — the caller now holds a stable, immutable view
     * regardless of concurrent commits (snapshot isolation, §2.2).
     */
    SegDesc snapshot(Vsid v);

    /** Release a snapshot previously acquired with snapshot(). */
    void releaseSnapshot(const SegDesc &d);

    std::uint32_t flags(Vsid v) const;
    bool isReadOnly(Vsid v) const;

    /**
     * Atomic root replacement. If the entry still holds @p expected,
     * installs @p desired (taking ownership of its root reference;
     * the map's reference on the old root is released) and returns
     * true. Otherwise returns false and the caller keeps ownership of
     * @p desired. Rejected (false, no transfer) on read-only entries.
     */
    bool cas(Vsid v, const SegDesc &expected, const SegDesc &desired);

    /**
     * mCAS (paper §3.4): like cas, but on conflict attempts
     * merge-update of (old_base -> desired) onto the current root,
     * retrying — bounded by the memory's RetryPolicy, with randomized
     * exponential backoff — until the commit lands or a true conflict
     * appears. Always consumes @p desired's root reference, including
     * on the throwing paths. Returns true on success (original or
     * merged content committed); throws MemPressureError when the
     * retry budget is exhausted (TooManyConflicts) or memory pressure
     * interrupts a merge (OutOfMemory), leaking nothing either way.
     */
    bool mcas(Vsid v, const SegDesc &old_base, const SegDesc &desired,
              MergeStats *stats = nullptr);

    /** Delete an entry, releasing its root reference. */
    void destroy(Vsid v);

    /** Number of live (non-destroyed) entries. */
    std::uint64_t liveEntries() const;

    /** Total mCAS conflicts resolved by merge. */
    std::uint64_t mergeCommits() const { return mergeCommits_.value(); }
    /** mCAS calls that failed on a true conflict. */
    std::uint64_t mergeFailures() const { return mergeFailures_.value(); }

    /**
     * Lift a descriptor to height @p H by wrapping in zero-padded
     * parents (path compaction keeps this allocation-free in the
     * common case). Takes ownership of @p d's root; returns an owned
     * entry at height H.
     */
    Entry lift(const SegDesc &d, int H);

    /// @name Audit support (src/analysis)
    /// @{
    /**
     * Invoke @p fn for every live entry with its descriptor and
     * flags. Alias entries are reported with their (empty) own
     * descriptor; the target entry owns the root reference.
     */
    void forEachLive(
        const std::function<void(Vsid, const SegDesc &, std::uint32_t)>
            &fn) const;

    /**
     * Iterator registers announce themselves here for their lifetime
     * so the heap auditor can account for the line references their
     * snapshots, working trees and write buffers own.
     */
    void registerIterator(const IteratorRegister *it);
    void unregisterIterator(const IteratorRegister *it);
    std::vector<const IteratorRegister *> liveIterators() const;
    /// @}

  private:
    struct EntrySlot {
        SegDesc desc;
        std::uint32_t flags = 0;
        Vsid aliasTarget = kNullVsid;
        bool live = false;
    };

    /** Resolve aliases to the primary VSID (lock held). */
    Vsid resolveLocked(Vsid v) const;
    void onLineFreed(Plid plid);

    Memory &mem_;
    SegBuilder builder_;
    /// shared with Memory: one global lock order (see Memory::sysMutex)
    std::recursive_mutex &mutex_;
    std::vector<EntrySlot> slots_; ///< slot 0 unused (null VSID)
    std::vector<const IteratorRegister *> iterators_;
    std::unordered_multimap<Plid, Vsid> weakWatch_;
    Counter mergeCommits_;
    Counter mergeFailures_;
};

} // namespace hicamp

#endif // HICAMP_VSM_SEGMENT_MAP_HH
