#include "vsm/segment_map.hh"

#include <algorithm>
#include <optional>
#include <thread>

#include "common/backoff.hh"
#include "common/logging.hh"
#include "common/status.hh"
#include "obs/trace.hh"
#include "seg/entry_ref.hh"

namespace hicamp {

SegmentMap::SegmentMap(Memory &mem)
    : mem_(mem), builder_(mem),
      chunks_(new std::atomic<SlotChunk *>[kMaxChunks])
{
    // hicamp-atomic: waive(single-threaded construction; the
    // directory is published by the constructor's completing
    // // happens-before edge to any thread that learns of the map)
    for (std::uint64_t i = 0; i < kMaxChunks; ++i)
        chunks_[i].store(nullptr, std::memory_order_relaxed);
    chunks_[0].store(new SlotChunk, std::memory_order_release);
    mem_.setLineFreedHook([this](Plid p) { onLineFreed(p); });
    // The map's tallies live in its Memory's registry under "vsm.";
    // the destructor removes them because the map dies first.
    obs::MetricsRegistry &reg = mem_.metrics();
    reg.addCounter("vsm.commits", &commits_);
    reg.addCounter("vsm.cas_failures", &casFailures_);
    reg.addCounter("vsm.merge_commits", &mergeCommits_);
    reg.addCounter("vsm.merge_failures", &mergeFailures_);
    reg.addGauge("vsm.live_entries", [this] { return liveEntries(); });
}

SegmentMap::~SegmentMap()
{
    mem_.metrics().removeByPrefix("vsm.");
    mem_.setLineFreedHook(nullptr);
    // hicamp-atomic: waive(single-threaded destruction; no
    // concurrent reader may outlive the map)
    const std::uint64_t n = slotCount_.load(std::memory_order_relaxed);
    for (Vsid v = 1; v < n; ++v) {
        EntrySlot &s = slotFor(v);
        // hicamp-atomic: waive(single-threaded destruction, as above)
        if (s.live.load(std::memory_order_relaxed) &&
            !(s.flags.load(std::memory_order_relaxed) &
              (kSegWeak | kSegAlias)))
            builder_.release(readDesc(s).root);
        // hicamp-atomic: waive(single-threaded destruction, as above)
        s.live.store(false, std::memory_order_relaxed);
    }
    for (std::uint64_t i = 0; i < kMaxChunks; ++i)
        // hicamp-atomic: waive(single-threaded destruction, as above)
        delete chunks_[i].load(std::memory_order_relaxed);
}

SegmentMap::EntrySlot &
SegmentMap::slotFor(Vsid v) const
{
    SlotChunk *c =
        chunks_[v >> kSlotChunkBits].load(std::memory_order_acquire);
    HICAMP_ASSERT(c != nullptr, "VSID beyond allocated segment map");
    return c->slots[v & (kSlotChunkSize - 1)];
}

void
SegmentMap::checkLive(Vsid v) const
{
    HICAMP_ASSERT(v != kNullVsid &&
                      v < slotCount_.load(std::memory_order_acquire) &&
                      slotFor(v).live.load(std::memory_order_acquire),
                  "access to dead or null VSID");
}

Vsid
SegmentMap::resolve(Vsid v) const
{
    // Alias flag and target are immutable after create(), so chasing
    // the chain needs no seqlock.
    for (;;) {
        checkLive(v);
        const EntrySlot &s = slotFor(v);
        if (!(s.flags.load(std::memory_order_relaxed) & kSegAlias))
            return v;
        v = s.aliasTarget.load(std::memory_order_relaxed);
    }
}

SegDesc
SegmentMap::readDesc(const EntrySlot &s) const
{
    // Seqlock reader: retry while a writer is mid-publication (odd
    // count) or published between our two observations. The fields
    // are relaxed atomics; the acquire fence orders them before the
    // validating re-read.
    for (;;) {
        const std::uint32_t s1 = s.seq.readBegin();
        if (s1 & 1) {
            std::this_thread::yield();
            continue;
        }
        SegDesc d;
        d.root.word = s.rootWord.load(std::memory_order_relaxed);
        d.root.meta =
            WordMeta(s.rootMeta.load(std::memory_order_relaxed));
        d.height = s.height.load(std::memory_order_relaxed);
        d.byteLen = s.byteLen.load(std::memory_order_relaxed);
        if (s.seq.validate(s1))
            return d;
    }
}

void
SegmentMap::writeDesc(EntrySlot &s, const SegDesc &d)
{
    // Seqlock writer (mapMutex_ held, so writers are serialized):
    // writeBegin bumps the count to odd and fences, the field stores
    // land inside the critical section, writeEnd publishes.
    s.seq.writeBegin();
    s.rootWord.store(d.root.word, std::memory_order_relaxed);
    s.rootMeta.store(d.root.meta.value(), std::memory_order_relaxed);
    s.height.store(d.height, std::memory_order_relaxed);
    s.byteLen.store(d.byteLen, std::memory_order_relaxed);
    s.seq.writeEnd();
}

void
SegmentMap::onLineFreed(Plid plid)
{
    // Called from Memory's reclaim path with no memory-system lock
    // held (DESIGN.md §7); zero any weak entries watching this root.
    // Weak entries own no reference, so no Memory call-back happens
    // here.
    CapLockGuard g(mapMutex_, lockrank::vsm);
    auto [lo, hi] = weakWatch_.equal_range(plid);
    for (auto it = lo; it != hi; ++it) {
        EntrySlot &slot = slotFor(it->second);
        // hicamp-atomic: waive(mapMutex_ held: serialized with
        // // create()'s slot initialization and destroy()'s unpublish)
        if (slot.live.load(std::memory_order_relaxed) &&
            (slot.flags.load(std::memory_order_relaxed) & kSegWeak))
            writeDesc(slot, SegDesc{});
    }
    weakWatch_.erase(lo, hi);
}

Vsid
SegmentMap::create(const SegDesc &d, std::uint32_t flags)
{
    Vsid v;
    {
        CapLockGuard g(mapMutex_, lockrank::vsm);
        // hicamp-atomic: waive(mapMutex_ held: slotCount_ and the
        // // chunk directory are only grown under it; the release
        // // stores of the chunk pointer, live and slotCount_ below are
        // // what lock-free readers pair their acquires with)
        v = slotCount_.load(std::memory_order_relaxed);
        const std::uint64_t chunk = v >> kSlotChunkBits;
        HICAMP_ASSERT(chunk < kMaxChunks, "segment map full");
        // hicamp-atomic: waive(mapMutex_ held, as above)
        if (chunks_[chunk].load(std::memory_order_relaxed) == nullptr)
            chunks_[chunk].store(new SlotChunk,
                                 std::memory_order_release);
        EntrySlot &slot = slotFor(v);
        slot.flags.store(flags, std::memory_order_relaxed);
        slot.aliasTarget.store(kNullVsid, std::memory_order_relaxed);
        writeDesc(slot, d);
        slot.live.store(true, std::memory_order_release);
        slotCount_.store(v + 1, std::memory_order_release);
        if (flags & kSegWeak) {
            // Weak entries hold the root without a reference; watch
            // for its reclamation. (The caller keeps its own
            // reference.)
            if (d.root.meta.isPlid() && d.root.word != 0)
                weakWatch_.emplace(d.root.plid(), v);
        }
    }
    mem_.vsmAccess(v, /*write=*/true);
    return v;
}

Vsid
SegmentMap::aliasReadOnly(Vsid target)
{
    Vsid v;
    {
        CapLockGuard g(mapMutex_, lockrank::vsm);
        // hicamp-atomic: waive(mapMutex_ held: serialized with every
        // // writer, same as create())
        HICAMP_ASSERT(target != kNullVsid &&
                          target < slotCount_.load(
                                       std::memory_order_relaxed) &&
                          slotFor(target).live.load(
                              std::memory_order_relaxed),
                      "alias of dead VSID");
        // hicamp-atomic: waive(mapMutex_ held, as above)
        v = slotCount_.load(std::memory_order_relaxed);
        const std::uint64_t chunk = v >> kSlotChunkBits;
        HICAMP_ASSERT(chunk < kMaxChunks, "segment map full");
        // hicamp-atomic: waive(mapMutex_ held, as above)
        if (chunks_[chunk].load(std::memory_order_relaxed) == nullptr)
            chunks_[chunk].store(new SlotChunk,
                                 std::memory_order_release);
        EntrySlot &slot = slotFor(v);
        slot.flags.store(kSegAlias | kSegReadOnly,
                         std::memory_order_relaxed);
        slot.aliasTarget.store(target, std::memory_order_relaxed);
        writeDesc(slot, SegDesc{});
        slot.live.store(true, std::memory_order_release);
        slotCount_.store(v + 1, std::memory_order_release);
    }
    mem_.vsmAccess(v, /*write=*/true);
    return v;
}

SegDesc
SegmentMap::get(Vsid v)
{
    mem_.vsmAccess(v, /*write=*/false);
    const Vsid t = resolve(v);
    if (t != v)
        mem_.vsmAccess(t, /*write=*/false);
    return readDesc(slotFor(t));
}

SegDesc
SegmentMap::snapshot(Vsid v)
{
    HICAMP_TRACE_EVENT(Vsm, VsmSnapshot, v, 0);
    mem_.vsmAccess(v, /*write=*/false);
    const Vsid t = resolve(v);
    if (t != v)
        mem_.vsmAccess(t, /*write=*/false);
    const EntrySlot &s = slotFor(t);
    for (;;) {
        const std::uint32_t s1 = s.seq.readBegin();
        if (s1 & 1) {
            std::this_thread::yield();
            continue;
        }
        SegDesc d;
        d.root.word = s.rootWord.load(std::memory_order_relaxed);
        d.root.meta =
            WordMeta(s.rootMeta.load(std::memory_order_relaxed));
        d.height = s.height.load(std::memory_order_relaxed);
        d.byteLen = s.byteLen.load(std::memory_order_relaxed);
        if (!s.seq.validate(s1))
            continue;
        if (!d.root.meta.isPlid() || d.root.word == 0)
            return d; // inline/zero roots need no reference
        if (mem_.tryRetain(d.root.word)) {
            // Revalidate: if a commit landed while we pinned the
            // root, our reference may be on a root the map no longer
            // holds — undo and re-read. Content addressing makes a
            // freed-and-reallocated PLID benign (same PLID == same
            // content), so an unchanged count is proof enough.
            if (s.seq.readBegin() == s1)
                return d;
            mem_.decRef(d.root.word);
        } else {
            // The root is mid-reclamation: only possible for a weak
            // entry whose descriptor the line-freed hook is about to
            // zero. Let it finish, then re-read.
            std::this_thread::yield();
        }
    }
}

void
SegmentMap::releaseSnapshot(const SegDesc &d)
{
    builder_.release(d.root);
}

std::uint32_t
SegmentMap::flags(Vsid v) const
{
    checkLive(v);
    std::uint32_t f = slotFor(v).flags.load(std::memory_order_relaxed);
    if (f & kSegAlias)
        f |= slotFor(resolve(v)).flags.load(std::memory_order_relaxed);
    return f;
}

bool
SegmentMap::isReadOnly(Vsid v) const
{
    checkLive(v);
    return (slotFor(v).flags.load(std::memory_order_relaxed) &
            kSegReadOnly) != 0;
}

bool
SegmentMap::cas(Vsid v, const SegDesc &expected, const SegDesc &desired)
{
    checkLive(v);
    if (slotFor(v).flags.load(std::memory_order_relaxed) & kSegReadOnly) {
        ++casFailures_;
        HICAMP_TRACE_EVENT(Vsm, VsmCommitFail, v, 0);
        return false;
    }
    const Vsid t = resolve(v);
    EntrySlot &slot = slotFor(t);
    mem_.vsmAccess(t, /*write=*/false);
    Entry old_root = Entry::zero();
    bool release_old = false;
    {
        CapLockGuard g(mapMutex_, lockrank::vsm);
        SegDesc cur = readDesc(slot); // stable: writers are serialized
        if (!(cur == expected)) {
            ++casFailures_;
            HICAMP_TRACE_EVENT(Vsm, VsmCommitFail, t, 0);
            return false;
        }
        writeDesc(slot, desired);
        if (!(slot.flags.load(std::memory_order_relaxed) & kSegWeak)) {
            old_root = cur.root;
            release_old = true;
        }
    }
    mem_.vsmAccess(t, /*write=*/true);
    ++commits_;
    HICAMP_TRACE_EVENT(Vsm, VsmCommit, t, 0);
    // The map's reference on the old root is dropped only after
    // unlocking: a release can cascade into reclamation and the
    // line-freed hook, which takes mapMutex_ (DESIGN.md §7).
    if (release_old)
        builder_.release(old_root);
    return true;
}

Entry
SegmentMap::lift(const SegDesc &d, int H)
{
    Entry e = d.root;
    const unsigned F = mem_.fanout();
    for (int h = d.height; h < H; ++h) {
        Entry kids[kMaxLineWords];
        kids[0] = e;
        for (unsigned i = 1; i < F; ++i)
            kids[i] = Entry::zero();
        e = builder_.makeNode(kids, h);
    }
    return e;
}

bool
SegmentMap::mcas(Vsid v, const SegDesc &old_base, const SegDesc &desired,
                 MergeStats *stats)
{
    // mineRef owns the proposal (mcas consumes `desired` on every
    // path, including its failure throw); baseRef is empty while
    // `base` is still the caller's borrowed old_base and owns the
    // retried snapshots afterwards. Every unwind path below — read-
    // only, retry exhaustion, memory pressure in a lift or the merge
    // — rolls back by scope instead of a hand-written release chain.
    EntryRef mineRef = EntryRef::adopt(builder_, desired.root);
    SegDesc mine = desired;
    SegDesc base = old_base;
    EntryRef baseRef;
    CommitRetry retry(mem_.retryPolicy(), &mem_.contention());

    for (;;) {
        if (cas(v, base, mine)) {
            (void)mineRef.release(); // the map took the reference
            return true;
        }
        if (isReadOnly(v))
            return false;
        if (!retry.onConflict()) {
            // Retry budget spent under sustained contention: give up
            // cleanly instead of livelocking (consumes the proposal,
            // like every other failure path).
            throw MemPressureError(MemStatus::TooManyConflicts,
                                   "merge-update commit retries "
                                   "exhausted");
        }

        // Conflict: merge our change (base -> mine) onto the current
        // content, outside any segment-map critical section. lift()
        // consumes its input root on every path, so each lifted tree
        // is adopted as soon as it exists.
        SegDesc cur = snapshot(v);
        EntryRef curRef = EntryRef::adopt(builder_, cur.root);
        const int H = std::max({base.height, cur.height, mine.height});
        EntryRef o = EntryRef::adopt(
            builder_,
            lift({builder_.retain(base.root), base.height, 0}, H));
        EntryRef c = EntryRef::adopt(
            builder_,
            lift({builder_.retain(cur.root), cur.height, 0}, H));
        EntryRef n = EntryRef::adopt(
            builder_, lift({mineRef.release(), mine.height, 0}, H));
        std::optional<Entry> merged =
            mergeUpdate(mem_, o.entry(), c.entry(), n.entry(), H, stats);
        o.reset();
        n.reset();

        if (!merged) {
            ++mergeFailures_;
            return false;
        }
        ++mergeCommits_;

        // Retry: the merge result becomes our new proposal, with the
        // current content as its base (paper §3.4 pseudo-code); the
        // snapshot reference moves from curRef into baseRef.
        mineRef = EntryRef::adopt(builder_, *merged);
        mine = SegDesc{*merged, H,
                       std::max(cur.byteLen, desired.byteLen)};
        c.reset();
        base = cur;
        baseRef = std::move(curRef);
    }
}

void
SegmentMap::destroy(Vsid v)
{
    checkLive(v);
    EntrySlot &slot = slotFor(v);
    Entry root = Entry::zero();
    bool release_root = false;
    {
        CapLockGuard g(mapMutex_, lockrank::vsm);
        const std::uint32_t f =
            slot.flags.load(std::memory_order_relaxed);
        SegDesc cur = readDesc(slot);
        if (!(f & (kSegWeak | kSegAlias))) {
            root = cur.root;
            release_root = true;
        }
        slot.live.store(false, std::memory_order_release);
        writeDesc(slot, SegDesc{});
    }
    mem_.vsmAccess(v, /*write=*/true);
    if (release_root)
        builder_.release(root); // outside mapMutex_ (DESIGN.md §7)
}

void
SegmentMap::forEachLive(
    const std::function<void(Vsid, const SegDesc &, std::uint32_t)> &fn)
    const
{
    // Holds mapMutex_ across the callbacks: audits run at quiescent
    // points, and fn may freely read the store (bucket stripes rank
    // below the map mutex).
    // hicamp-atomic: waive(mapMutex_ held: serialized with every
    // // writer, so the audit scan cannot race a publish)
    CapLockGuard g(mapMutex_, lockrank::vsm);
    // hicamp-atomic: waive(mapMutex_ held: serialized with every writer)
    const std::uint64_t n = slotCount_.load(std::memory_order_relaxed);
    for (Vsid v = 1; v < n; ++v) {
        const EntrySlot &s = slotFor(v);
        // hicamp-atomic: waive(mapMutex_ held, as above)
        if (s.live.load(std::memory_order_relaxed))
            fn(v, readDesc(s),
               s.flags.load(std::memory_order_relaxed));
    }
}

void
SegmentMap::registerIterator(const IteratorRegister *it)
{
    CapLockGuard g(mapMutex_, lockrank::vsm);
    iterators_.push_back(it);
}

void
SegmentMap::unregisterIterator(const IteratorRegister *it)
{
    CapLockGuard g(mapMutex_, lockrank::vsm);
    auto pos = std::find(iterators_.begin(), iterators_.end(), it);
    HICAMP_ASSERT(pos != iterators_.end(),
                  "unregistering an unknown iterator register");
    iterators_.erase(pos);
}

std::vector<const IteratorRegister *>
SegmentMap::liveIterators() const
{
    CapLockGuard g(mapMutex_, lockrank::vsm);
    return iterators_;
}

std::uint64_t
SegmentMap::liveEntries() const
{
    // hicamp-atomic: waive(mapMutex_ held: serialized with every
    // // writer, a point-in-time tally)
    CapLockGuard g(mapMutex_, lockrank::vsm);
    // hicamp-atomic: waive(mapMutex_ held: serialized with every writer)
    const std::uint64_t n = slotCount_.load(std::memory_order_relaxed);
    std::uint64_t count = 0;
    for (Vsid v = 1; v < n; ++v)
        // hicamp-atomic: waive(mapMutex_ held, as above)
        count += slotFor(v).live.load(std::memory_order_relaxed) ? 1 : 0;
    return count;
}

} // namespace hicamp
