#include "vsm/segment_map.hh"

#include <algorithm>
#include <optional>

#include "common/backoff.hh"
#include "common/logging.hh"
#include "common/status.hh"

namespace hicamp {

SegmentMap::SegmentMap(Memory &mem)
    : mem_(mem), builder_(mem), mutex_(mem.sysMutex())
{
    slots_.emplace_back(); // slot 0 == null VSID
    mem_.setLineFreedHook([this](Plid p) { onLineFreed(p); });
}

SegmentMap::~SegmentMap()
{
    mem_.setLineFreedHook(nullptr);
    for (auto &slot : slots_) {
        if (slot.live && !(slot.flags & (kSegWeak | kSegAlias)))
            builder_.release(slot.desc.root);
        slot.live = false;
    }
}

void
SegmentMap::onLineFreed(Plid plid)
{
    // Called from inside Memory's reclaim path; zero any weak entries
    // watching this root. Weak entries own no reference, so no Memory
    // call-back happens here.
    std::lock_guard<std::recursive_mutex> g(mutex_);
    auto [lo, hi] = weakWatch_.equal_range(plid);
    for (auto it = lo; it != hi; ++it) {
        EntrySlot &slot = slots_[it->second];
        if (slot.live && (slot.flags & kSegWeak))
            slot.desc = SegDesc{};
    }
    weakWatch_.erase(lo, hi);
}

Vsid
SegmentMap::create(const SegDesc &d, std::uint32_t flags)
{
    std::lock_guard<std::recursive_mutex> g(mutex_);
    Vsid v = slots_.size();
    slots_.emplace_back();
    EntrySlot &slot = slots_.back();
    slot.desc = d;
    slot.flags = flags;
    slot.live = true;
    if (flags & kSegWeak) {
        // Weak entries hold the root without a reference; watch for
        // its reclamation. (The caller keeps its own reference.)
        if (d.root.meta.isPlid() && d.root.word != 0)
            weakWatch_.emplace(d.root.plid(), v);
    }
    mem_.vsmAccess(v, /*write=*/true);
    return v;
}

Vsid
SegmentMap::aliasReadOnly(Vsid target)
{
    std::lock_guard<std::recursive_mutex> g(mutex_);
    HICAMP_ASSERT(target < slots_.size() && slots_[target].live,
                  "alias of dead VSID");
    Vsid v = slots_.size();
    slots_.emplace_back();
    EntrySlot &slot = slots_.back();
    slot.flags = kSegAlias | kSegReadOnly;
    slot.aliasTarget = target;
    slot.live = true;
    mem_.vsmAccess(v, /*write=*/true);
    return v;
}

Vsid
SegmentMap::resolveLocked(Vsid v) const
{
    HICAMP_ASSERT(v != kNullVsid && v < slots_.size() && slots_[v].live,
                  "access to dead or null VSID");
    if (slots_[v].flags & kSegAlias)
        return resolveLocked(slots_[v].aliasTarget);
    return v;
}

SegDesc
SegmentMap::get(Vsid v)
{
    std::lock_guard<std::recursive_mutex> g(mutex_);
    mem_.vsmAccess(v, /*write=*/false);
    Vsid t = resolveLocked(v);
    if (t != v)
        mem_.vsmAccess(t, /*write=*/false);
    return slots_[t].desc;
}

SegDesc
SegmentMap::snapshot(Vsid v)
{
    std::lock_guard<std::recursive_mutex> g(mutex_);
    SegDesc d = get(v);
    builder_.retain(d.root);
    return d;
}

void
SegmentMap::releaseSnapshot(const SegDesc &d)
{
    builder_.release(d.root);
}

std::uint32_t
SegmentMap::flags(Vsid v) const
{
    std::lock_guard<std::recursive_mutex> g(mutex_);
    HICAMP_ASSERT(v < slots_.size() && slots_[v].live, "dead VSID");
    std::uint32_t f = slots_[v].flags;
    if (f & kSegAlias)
        f |= slots_[resolveLocked(v)].flags;
    return f;
}

bool
SegmentMap::isReadOnly(Vsid v) const
{
    std::lock_guard<std::recursive_mutex> g(mutex_);
    return (slots_[v].flags & kSegReadOnly) != 0;
}

bool
SegmentMap::cas(Vsid v, const SegDesc &expected, const SegDesc &desired)
{
    std::lock_guard<std::recursive_mutex> g(mutex_);
    if (slots_[v].flags & kSegReadOnly)
        return false;
    Vsid t = resolveLocked(v);
    EntrySlot &slot = slots_[t];
    mem_.vsmAccess(t, /*write=*/false);
    if (!(slot.desc == expected))
        return false;
    mem_.vsmAccess(t, /*write=*/true);
    SegDesc old = slot.desc;
    slot.desc = desired;
    if (!(slot.flags & kSegWeak))
        builder_.release(old.root); // the map's reference on the old root
    return true;
}

Entry
SegmentMap::lift(const SegDesc &d, int H)
{
    Entry e = d.root;
    const unsigned F = mem_.fanout();
    for (int h = d.height; h < H; ++h) {
        Entry kids[kMaxLineWords];
        kids[0] = e;
        for (unsigned i = 1; i < F; ++i)
            kids[i] = Entry::zero();
        e = builder_.makeNode(kids, h);
    }
    return e;
}

bool
SegmentMap::mcas(Vsid v, const SegDesc &old_base, const SegDesc &desired,
                 MergeStats *stats)
{
    SegDesc mine = desired;
    SegDesc base = old_base;
    bool base_retained = false; // first `base` is borrowed from caller
    CommitRetry retry(mem_.retryPolicy(), &mem_.contention());

    for (;;) {
        if (cas(v, base, mine)) {
            if (base_retained)
                releaseSnapshot(base);
            return true;
        }
        if (isReadOnly(v)) {
            builder_.release(mine.root);
            if (base_retained)
                releaseSnapshot(base);
            return false;
        }
        if (!retry.onConflict()) {
            // Retry budget spent under sustained contention: give up
            // cleanly instead of livelocking (consumes the proposal,
            // like every other failure path).
            builder_.release(mine.root);
            if (base_retained)
                releaseSnapshot(base);
            throw MemPressureError(MemStatus::TooManyConflicts,
                                   "merge-update commit retries "
                                   "exhausted");
        }

        // Conflict: merge our change (base -> mine) onto the current
        // content, outside any segment-map critical section. Memory
        // pressure inside the lifts or the merge unwinds every
        // reference this attempt took, then rethrows.
        SegDesc cur = snapshot(v);
        const int H = std::max({base.height, cur.height, mine.height});
        Entry o, c, n;
        std::optional<Entry> merged;
        try {
            o = lift({builder_.retain(base.root), base.height, 0}, H);
        } catch (const MemPressureError &) {
            builder_.release(mine.root);
            releaseSnapshot(cur);
            if (base_retained)
                releaseSnapshot(base);
            throw;
        }
        try {
            c = lift({builder_.retain(cur.root), cur.height, 0}, H);
        } catch (const MemPressureError &) {
            builder_.release(o);
            builder_.release(mine.root);
            releaseSnapshot(cur);
            if (base_retained)
                releaseSnapshot(base);
            throw;
        }
        try {
            n = lift({mine.root, mine.height, 0}, H); // consumes mine
        } catch (const MemPressureError &) {
            builder_.release(o);
            builder_.release(c);
            releaseSnapshot(cur);
            if (base_retained)
                releaseSnapshot(base);
            throw;
        }
        try {
            merged = mergeUpdate(mem_, o, c, n, H, stats);
        } catch (const MemPressureError &) {
            builder_.release(o);
            builder_.release(c);
            builder_.release(n);
            releaseSnapshot(cur);
            if (base_retained)
                releaseSnapshot(base);
            throw;
        }
        builder_.release(o);
        builder_.release(n);

        if (!merged) {
            ++mergeFailures_;
            builder_.release(c);
            releaseSnapshot(cur);
            if (base_retained)
                releaseSnapshot(base);
            return false;
        }
        ++mergeCommits_;

        // Retry: the merge result becomes our new proposal, with the
        // current content as its base (paper §3.4 pseudo-code).
        builder_.release(c);
        if (base_retained)
            releaseSnapshot(base);
        base = cur;
        base_retained = true;
        mine = SegDesc{*merged, H,
                       std::max(cur.byteLen, desired.byteLen)};
    }
}

void
SegmentMap::destroy(Vsid v)
{
    std::lock_guard<std::recursive_mutex> g(mutex_);
    HICAMP_ASSERT(v < slots_.size() && slots_[v].live,
                  "destroy of dead VSID");
    EntrySlot &slot = slots_[v];
    if (!(slot.flags & (kSegWeak | kSegAlias)))
        builder_.release(slot.desc.root);
    slot.live = false;
    slot.desc = SegDesc{};
    mem_.vsmAccess(v, /*write=*/true);
}

void
SegmentMap::forEachLive(
    const std::function<void(Vsid, const SegDesc &, std::uint32_t)> &fn)
    const
{
    std::lock_guard<std::recursive_mutex> g(mutex_);
    for (Vsid v = 1; v < slots_.size(); ++v) {
        if (slots_[v].live)
            fn(v, slots_[v].desc, slots_[v].flags);
    }
}

void
SegmentMap::registerIterator(const IteratorRegister *it)
{
    std::lock_guard<std::recursive_mutex> g(mutex_);
    iterators_.push_back(it);
}

void
SegmentMap::unregisterIterator(const IteratorRegister *it)
{
    std::lock_guard<std::recursive_mutex> g(mutex_);
    auto pos = std::find(iterators_.begin(), iterators_.end(), it);
    HICAMP_ASSERT(pos != iterators_.end(),
                  "unregistering an unknown iterator register");
    iterators_.erase(pos);
}

std::vector<const IteratorRegister *>
SegmentMap::liveIterators() const
{
    std::lock_guard<std::recursive_mutex> g(mutex_);
    return iterators_;
}

std::uint64_t
SegmentMap::liveEntries() const
{
    std::lock_guard<std::recursive_mutex> g(mutex_);
    std::uint64_t n = 0;
    for (const auto &s : slots_)
        n += s.live ? 1 : 0;
    return n;
}

} // namespace hicamp
