/**
 * @file
 * HTable: the paper's in-memory-database sketch (§4.4, last
 * paragraph): "A client thread with a read-only reference to the
 * database can access the state and process a query with its own
 * private snapshot of the database state. It constructs a view as a
 * new segment that specifies the result of the query, while
 * referencing data directly in the database itself."
 *
 * A table is a segment of row references (boxed row segments); a
 * query runs against one snapshot and materializes a *view*: a new
 * segment whose entries reference the selected rows' existing
 * segments — zero row copying, and the view remains valid (immutable)
 * no matter what later commits do to the table.
 */

#ifndef HICAMP_LANG_HTABLE_HH
#define HICAMP_LANG_HTABLE_HH

#include <functional>
#include <optional>

#include "common/backoff.hh"
#include "lang/hstring.hh"
#include "mem/plid_ref.hh"
#include "seg/iterator.hh"

namespace hicamp {

class HTable;

/**
 * An immutable query result: an ordered segment of references into
 * the base table's row data at the moment the query ran.
 */
class HView
{
  public:
    HView(Hicamp &hc, SegDesc desc, std::uint64_t rows)
        : hc_(&hc), desc_(desc), rows_(rows)
    {}

    HView(const HView &) = delete;
    HView &operator=(const HView &) = delete;

    HView(HView &&other) noexcept
        : hc_(other.hc_), desc_(other.desc_), rows_(other.rows_)
    {
        other.hc_ = nullptr;
    }

    ~HView()
    {
        if (hc_)
            SegBuilder(hc_->mem).release(desc_.root);
    }

    std::uint64_t size() const { return rows_; }

    /** Fetch row @p i of the view (a string payload). */
    HString
    row(std::uint64_t i) const
    {
        HICAMP_ASSERT(hc_ && i < rows_, "view row out of range");
        SegReader r(hc_->mem);
        WordMeta m;
        Word box = r.readWord(desc_.root, desc_.height, i, &m);
        HICAMP_ASSERT(box != 0 && m.isPlid(), "hole in view");
        SegDesc d = hc_->unboxSegment(box);
        SegBuilder(hc_->mem).retain(d.root);
        return HString::adopt(*hc_, d);
    }

  private:
    Hicamp *hc_;
    SegDesc desc_;
    std::uint64_t rows_;
};

/**
 * An append-only table of string rows with snapshot queries. Rows are
 * stored densely (row id = index); deletes tombstone the slot.
 */
class HTable
{
  public:
    explicit HTable(Hicamp &hc) : hc_(hc)
    {
        vsid_ = hc.vsm.create(SegDesc{}, kSegMergeUpdate);
    }

    ~HTable() { hc_.vsm.destroy(vsid_); }

    HTable(const HTable &) = delete;
    HTable &operator=(const HTable &) = delete;

    Vsid vsid() const { return vsid_; }

    /** Append a row; returns its row id. Safe under concurrency. */
    std::uint64_t
    insert(const HString &row)
    {
        IteratorRegister it(hc_.mem, hc_.vsm);
        CommitRetry retry(hc_.mem.retryPolicy(), &hc_.mem.contention());
        for (;;) {
            MemStatus st = MemStatus::Ok;
            try {
                it.load(vsid_, 0);
                SegBuilder(hc_.mem).retain(row.desc().root);
                // The handle owns the boxed row until the write buffer
                // takes it over: seek() can grow the working tree and
                // throw under memory pressure, which used to leak the
                // box's reference (the abort below only releases
                // buffer-owned words).
                PlidRef box =
                    PlidRef::adopt(hc_.mem, hc_.boxSegment(row.desc()));
                std::uint64_t id = it.read(); // word 0: row count
                it.write(id + 1);
                it.seek(1 + id);
                it.write(box.release(), WordMeta::plid());
                if (it.tryCommit())
                    return id;
                st = it.lastCommitStatus();
                // counter collided with a concurrent insert
            } catch (const MemPressureError &e) {
                // boxSegment/seek unwind leak-free on pressure; retry
                // like a conflict so injected faults are absorbed.
                st = e.status();
            }
            it.abort();
            if (!retry.onConflict())
                throwRetriesExhausted(st, "HTable::insert commit failed");
        }
    }

    /** Read one row (nullopt if deleted / out of range). */
    std::optional<HString>
    get(std::uint64_t row_id)
    {
        IteratorRegister it(hc_.mem, hc_.vsm);
        it.load(vsid_, 1 + row_id);
        WordMeta m;
        Word box = it.read(&m);
        if (box == 0 || !m.isPlid())
            return std::nullopt;
        SegDesc d = hc_.unboxSegment(box);
        SegBuilder(hc_.mem).retain(d.root);
        return HString::adopt(hc_, d);
    }

    /** Tombstone a row. */
    bool
    erase(std::uint64_t row_id)
    {
        IteratorRegister it(hc_.mem, hc_.vsm);
        CommitRetry retry(hc_.mem.retryPolicy(), &hc_.mem.contention());
        for (;;) {
            it.load(vsid_, 1 + row_id);
            if (it.read() == 0)
                return false;
            it.write(0);
            if (it.tryCommit())
                return true;
            const MemStatus st = it.lastCommitStatus();
            it.abort();
            if (!retry.onConflict())
                throwRetriesExhausted(st, "HTable::erase commit failed");
        }
    }

    /** Replace a row's payload (update). */
    bool
    update(std::uint64_t row_id, const HString &row)
    {
        IteratorRegister it(hc_.mem, hc_.vsm);
        CommitRetry retry(hc_.mem.retryPolicy(), &hc_.mem.contention());
        for (;;) {
            MemStatus st = MemStatus::Ok;
            try {
                it.load(vsid_, 1 + row_id);
                if (it.read() == 0)
                    return false;
                SegBuilder(hc_.mem).retain(row.desc().root);
                it.write(hc_.boxSegment(row.desc()), WordMeta::plid());
                if (it.tryCommit())
                    return true;
                st = it.lastCommitStatus();
            } catch (const MemPressureError &e) {
                st = e.status(); // leak-free unwind; retry as conflict
            }
            it.abort();
            if (!retry.onConflict())
                throwRetriesExhausted(st, "HTable::update commit failed");
        }
    }

    /** Committed row count (including tombstones). */
    std::uint64_t
    rowCount()
    {
        IteratorRegister it(hc_.mem, hc_.vsm);
        it.load(vsid_, 0);
        return it.read();
    }

    /**
     * Run a predicate query against ONE snapshot of the table and
     * materialize the result as a view. The view's entries reference
     * the matching rows' segments directly (no row data is copied);
     * the snapshot guarantees the predicate saw a consistent state
     * even while writers keep committing.
     */
    HView
    select(const std::function<bool(const HString &)> &pred)
    {
        IteratorRegister it(hc_.mem, hc_.vsm); // pins the snapshot
        it.load(vsid_, 0);
        const std::uint64_t n = it.read();
        SegBuilder b(hc_.mem);
        std::vector<Word> out;
        std::vector<WordMeta> metas;
        for (std::uint64_t i = 0; i < n; ++i) {
            it.seek(1 + i);
            WordMeta m;
            Word box = it.read(&m);
            if (box == 0 || !m.isPlid())
                continue; // tombstone
            SegDesc d = hc_.unboxSegment(box);
            b.retain(d.root);
            HString row = HString::adopt(hc_, d);
            if (pred(row)) {
                // The view references the row's existing box line.
                hc_.mem.incRef(box);
                out.push_back(box);
                metas.push_back(WordMeta::plid());
            }
        }
        SegDesc view = out.empty()
                           ? SegDesc{}
                           : b.buildWords(out.data(), metas.data(),
                                          out.size());
        return HView(hc_, view, out.size());
    }

  private:
    Hicamp &hc_;
    Vsid vsid_;
};

} // namespace hicamp

#endif // HICAMP_LANG_HTABLE_HH
