/**
 * @file
 * HShardedMap — the paper's §5.1.1 contention optimization: "If
 * contention on a map is high for merge-updates, the map can be split
 * into an array of segments (i.e. a segment that points to the
 * subsegments), indexed by several bits of the key PLID, while the
 * rest of the key PLID bits can be used as offset within the selected
 * subsegment. Such a split would reduce probability of conflict and
 * re-execution even further."
 *
 * Each shard is an independent merge-update segment with its own
 * VSID, so commits to different shards never contend at all; within a
 * shard, merge-update handles the remaining (rare) overlaps.
 */

#ifndef HICAMP_LANG_HSHARDED_MAP_HH
#define HICAMP_LANG_HSHARDED_MAP_HH

#include <memory>
#include <vector>

#include "lang/hmap.hh"

namespace hicamp {

class HShardedMap
{
  public:
    /** @param shard_bits log2 of the shard count (paper: "several"). */
    HShardedMap(Hicamp &hc, unsigned shard_bits = 4) : hc_(hc)
    {
        HICAMP_ASSERT(shard_bits <= 8, "too many shards");
        shards_.reserve(std::size_t{1} << shard_bits);
        for (std::size_t s = 0; s < (std::size_t{1} << shard_bits); ++s)
            shards_.push_back(std::make_unique<HMap>(hc));
        mask_ = (std::uint64_t{1} << shard_bits) - 1;
    }

    std::size_t shardCount() const { return shards_.size(); }

    /** The shard a key routes to (high fingerprint bits). */
    std::size_t
    shardOf(const HString &key) const
    {
        return static_cast<std::size_t>((key.fingerprint() >> 56) &
                                        mask_);
    }

    void
    set(const HString &key, const HString &value)
    {
        shards_[shardOf(key)]->set(key, value);
    }

    std::optional<HString>
    get(const HString &key)
    {
        return shards_[shardOf(key)]->get(key);
    }

    bool
    erase(const HString &key)
    {
        return shards_[shardOf(key)]->erase(key);
    }

    std::uint64_t
    size()
    {
        std::uint64_t n = 0;
        for (auto &s : shards_)
            n += s->size();
        return n;
    }

    HMap &shard(std::size_t i) { return *shards_[i]; }

  private:
    Hicamp &hc_;
    std::vector<std::unique_ptr<HMap>> shards_;
    std::uint64_t mask_;
};

} // namespace hicamp

#endif // HICAMP_LANG_HSHARDED_MAP_HH
