/**
 * @file
 * AtomicHeap: multi-segment atomic update (paper §2.3: "When the
 * segment map itself is implemented as a HICAMP segment ... multiple
 * segments can be updated by one atomic update/commit of the segment
 * map"). The heap is one segment whose word i holds the boxed
 * descriptor of logical segment i; a transaction buffers any number of
 * slot replacements and publishes them with a single root CAS, so
 * concurrent readers see either all of the transaction's segments or
 * none.
 */

#ifndef HICAMP_LANG_ATOMIC_HEAP_HH
#define HICAMP_LANG_ATOMIC_HEAP_HH

#include "lang/hstring.hh"
#include "mem/plid_ref.hh"
#include "seg/iterator.hh"

namespace hicamp {

class AtomicHeap
{
  public:
    explicit AtomicHeap(Hicamp &hc, bool merge_update = true) : hc_(hc)
    {
        vsid_ = hc.vsm.create(SegDesc{},
                              merge_update ? std::uint32_t{kSegMergeUpdate} : std::uint32_t{0});
    }

    ~AtomicHeap() { hc_.vsm.destroy(vsid_); }

    AtomicHeap(const AtomicHeap &) = delete;
    AtomicHeap &operator=(const AtomicHeap &) = delete;

    Vsid vsid() const { return vsid_; }

    /**
     * A transaction over the heap: reads see one snapshot; writes are
     * buffered; commit() installs everything atomically (false on an
     * unresolvable conflict — nothing is published).
     */
    class Tx
    {
      public:
        explicit Tx(AtomicHeap &heap)
            : heap_(heap), it_(heap.hc_.mem, heap.hc_.vsm)
        {
            it_.load(heap.vsid_, 0);
        }

        /** Read slot @p i's string (empty if unset). */
        HString
        read(std::uint64_t i)
        {
            it_.seek(i);
            WordMeta m;
            Word box = it_.read(&m);
            if (box == 0 || !m.isPlid())
                return HString(heap_.hc_);
            SegDesc d = heap_.hc_.unboxSegment(box);
            SegBuilder(heap_.hc_.mem).retain(d.root);
            return HString::adopt(heap_.hc_, d);
        }

        /** Replace slot @p i with @p value (buffered). */
        void
        write(std::uint64_t i, const HString &value)
        {
            // hicamp-lint: retain-ok(ref transfers into the boxed
            // slot; commit keeps it, rollback releases the buffer)
            SegBuilder(heap_.hc_.mem).retain(value.desc().root);
            // The handle owns the boxed value until the write buffer
            // takes it over: seek() can grow the working tree and
            // throw under memory pressure, which used to leak the
            // box's reference.
            PlidRef box = PlidRef::adopt(heap_.hc_.mem,
                                         heap_.hc_.boxSegment(value.desc()));
            it_.seek(i);
            it_.write(box.release(), WordMeta::plid());
        }

        /** Clear slot @p i (buffered). */
        void
        erase(std::uint64_t i)
        {
            it_.seek(i);
            it_.write(0);
        }

        /** Publish all buffered writes atomically. */
        bool commit(MergeStats *stats = nullptr)
        {
            return it_.tryCommit(stats);
        }

        /**
         * Why the last commit() returned false: MemStatus::Ok means a
         * plain conflict (retryable); anything else is memory
         * pressure during the rebuild or merge.
         */
        MemStatus commitStatus() const { return it_.lastCommitStatus(); }

        void abort() { it_.abort(); }

      private:
        AtomicHeap &heap_;
        IteratorRegister it_;
    };

  private:
    Hicamp &hc_;
    Vsid vsid_;
};

} // namespace hicamp

#endif // HICAMP_LANG_ATOMIC_HEAP_HH
