/**
 * @file
 * HQueue: an unbounded FIFO of string values in one segment, with
 * head/tail counters merged by merge-update (paper §4.3): a
 * concurrent push and pop touch different slots and different
 * counters, so they commit without retry. Two pushes race on the
 * tail slot and two pops race on the head slot's claim — both are
 * true merge conflicts and fall back to application retry, which is
 * what keeps each item delivered exactly once.
 *
 * Layout: word 0 = head sequence, word 1 = tail sequence, value for
 * sequence s boxed at word (2 + s).
 *
 * A pop marks its slot with a raw non-zero tombstone rather than
 * clearing it to zero. Restoring the slot's pre-push value would
 * reintroduce the ABA that three-way merge cannot see: a stale push
 * whose base predates the push+pop of the same sequence would find
 * the slot "unchanged" and resurrect its value behind head while the
 * tail counter delta-merges past a slot nobody filled. With the
 * tombstone every slot's value cycle is 0 -> box -> consumed and
 * never repeats, so any stale writer takes a genuine conflict.
 * Sequence numbers are never reused, and content-addressing dedups
 * the all-tombstone leaves behind head into one line.
 */

#ifndef HICAMP_LANG_HQUEUE_HH
#define HICAMP_LANG_HQUEUE_HH

#include <optional>

#include "common/backoff.hh"
#include "lang/hstring.hh"
#include "mem/plid_ref.hh"
#include "seg/iterator.hh"

namespace hicamp {

class HQueue
{
  public:
    explicit HQueue(Hicamp &hc) : hc_(hc)
    {
        vsid_ = hc.vsm.create(SegDesc{}, kSegMergeUpdate);
    }

    ~HQueue() { hc_.vsm.destroy(vsid_); }

    HQueue(const HQueue &) = delete;
    HQueue &operator=(const HQueue &) = delete;

    Vsid vsid() const { return vsid_; }

    void
    push(const HString &value)
    {
        IteratorRegister it(hc_.mem, hc_.vsm);
        CommitRetry retry(hc_.mem.retryPolicy(), &hc_.mem.contention());
        for (;;) {
            MemStatus st = MemStatus::Ok;
            try {
                it.load(vsid_, 1);
                // hicamp-lint: retain-ok(ref transfers into the boxed
                // slot; commit keeps it, rollback releases the buffer)
                SegBuilder(hc_.mem).retain(value.desc().root);
                // The handle owns the boxed value until the write
                // buffer takes it over: seek() can grow the working
                // tree and throw under memory pressure, which used to
                // leak the box's reference.
                PlidRef box =
                    PlidRef::adopt(hc_.mem, hc_.boxSegment(value.desc()));
                Word tail = it.read();
                it.write(tail + 1);
                it.seek(2 + tail);
                it.write(box.release(), WordMeta::plid());
                if (it.tryCommit())
                    return;
                st = it.lastCommitStatus();
            } catch (const MemPressureError &e) {
                st = e.status(); // leak-free unwind; retry as conflict
            }
            it.abort();
            if (!retry.onConflict())
                throwRetriesExhausted(st, "HQueue::push commit failed");
        }
    }

    std::optional<HString>
    pop()
    {
        IteratorRegister it(hc_.mem, hc_.vsm);
        CommitRetry retry(hc_.mem.retryPolicy(), &hc_.mem.contention());
        for (;;) {
            it.load(vsid_, 0);
            Word head = it.read();
            it.seek(1);
            Word tail = it.read();
            if (head == tail)
                return std::nullopt;
            it.seek(2 + head);
            WordMeta m;
            Word box = it.read(&m);
            HICAMP_ASSERT(box != 0 && m.isPlid(),
                          "queue slot missing its value");
            SegDesc d = hc_.unboxSegment(box);
            SegBuilder(hc_.mem).retain(d.root);
            HString out = HString::adopt(hc_, d);
            it.write(kConsumed); // claim the slot (see file comment)
            it.seek(0);
            it.write(head + 1);
            if (it.tryCommit())
                return out;
            const MemStatus st = it.lastCommitStatus();
            it.abort();
            if (!retry.onConflict())
                throwRetriesExhausted(st, "HQueue::pop commit failed");
        }
    }

    std::uint64_t
    size()
    {
        IteratorRegister it(hc_.mem, hc_.vsm);
        it.load(vsid_, 0);
        Word head = it.read();
        it.seek(1);
        Word tail = it.read();
        return tail - head;
    }

  private:
    /// raw marker a pop leaves in its consumed slot
    static constexpr Word kConsumed = 1;

    Hicamp &hc_;
    Vsid vsid_;
};

} // namespace hicamp

#endif // HICAMP_LANG_HQUEUE_HH
