/**
 * @file
 * HString: an immutable HICAMP string value (paper Fig. 1). Content-
 * unique by construction: two equal strings always have equal segment
 * descriptors, so comparison is O(1), and equal substrings share lines
 * automatically.
 */

#ifndef HICAMP_LANG_HSTRING_HH
#define HICAMP_LANG_HSTRING_HH

#include <string>
#include <string_view>

#include "lang/context.hh"

namespace hicamp {

/** Value-semantics handle owning one reference to its root. */
class HString
{
  public:
    /** The empty string. */
    explicit HString(Hicamp &hc) : hc_(&hc) {}

    /** Build (or re-find, via dedup) a string segment. */
    HString(Hicamp &hc, std::string_view text) : hc_(&hc)
    {
        SegBuilder b(hc.mem, /*model_staging=*/true);
        desc_ = b.buildBytes(text.data(), text.size());
    }

    /** Adopt an already-owned descriptor. */
    static HString
    adopt(Hicamp &hc, HICAMP_CONSUMES_REF const SegDesc &d)
    {
        HString s(hc);
        s.desc_ = d;
        return s;
    }

    HString(const HString &other) : hc_(other.hc_), desc_(other.desc_)
    {
        // hicamp-lint: retain-ok(RAII: ~HString releases this ref)
        retain();
    }

    HString &
    operator=(const HString &other)
    {
        if (this != &other) {
            release();
            hc_ = other.hc_;
            desc_ = other.desc_;
            retain();
        }
        return *this;
    }

    HString(HString &&other) noexcept
        : hc_(other.hc_), desc_(other.desc_)
    {
        other.desc_ = SegDesc{};
    }

    HString &
    operator=(HString &&other) noexcept
    {
        if (this != &other) {
            release();
            hc_ = other.hc_;
            desc_ = other.desc_;
            other.desc_ = SegDesc{};
        }
        return *this;
    }

    ~HString() { release(); }

    std::uint64_t size() const { return desc_.byteLen; }
    bool empty() const { return desc_.byteLen == 0; }
    const SegDesc &desc() const { return desc_; }

    /** O(1) whole-string equality: compare descriptors. */
    friend bool
    operator==(const HString &a, const HString &b)
    {
        return a.desc_ == b.desc_;
    }

    /** 64-bit content fingerprint (the map-index "root PLID"). */
    std::uint64_t fingerprint() const { return desc_.fingerprint(); }

    /** Materialize to a host string (costs DAG reads). */
    std::string
    str() const
    {
        if (desc_.byteLen == 0)
            return {};
        SegReader r(hc_->mem);
        std::vector<Word> w;
        std::vector<WordMeta> m;
        r.materialize(desc_.root, desc_.height, w, m);
        return std::string(reinterpret_cast<const char *>(w.data()),
                           desc_.byteLen);
    }

    /** Byte at @p i (costs a DAG path read). */
    char
    at(std::uint64_t i) const
    {
        HICAMP_ASSERT(i < desc_.byteLen, "HString index out of range");
        SegReader r(hc_->mem);
        Word w = r.readWord(desc_.root, desc_.height, i / kWordBytes);
        return static_cast<char>(w >> ((i % kWordBytes) * 8));
    }

  private:
    HICAMP_ACQUIRES_REF void
    retain()
    {
        if (hc_)
            // hicamp-lint: retain-ok(RAII helper; every call is paired
            // with release() by the rule-of-five members)
            SegBuilder(hc_->mem).retain(desc_.root);
    }

    HICAMP_RELEASES_REF void
    release()
    {
        if (hc_)
            SegBuilder(hc_->mem).release(desc_.root);
    }

    Hicamp *hc_ = nullptr;
    SegDesc desc_;
};

} // namespace hicamp

#endif // HICAMP_LANG_HSTRING_HH
