/**
 * @file
 * The top-level HICAMP machine context: one memory system plus one
 * virtual segment map, with a helper for boxing segment descriptors
 * into content-unique lines (used wherever a whole segment value must
 * be stored in a single tagged word, e.g. map values).
 */

#ifndef HICAMP_LANG_CONTEXT_HH
#define HICAMP_LANG_CONTEXT_HH

#include <functional>
#include <utility>

#include "common/ownership.hh"
#include "mem/memory.hh"
#include "seg/builder.hh"
#include "seg/iterator.hh"
#include "seg/reader.hh"
#include "vsm/segment_map.hh"

namespace hicamp {

/**
 * A HICAMP machine: the unit every programming-model object hangs off.
 */
class Hicamp
{
  public:
    explicit Hicamp(const MemoryConfig &cfg = {}) : mem(cfg), vsm(mem) {}

    /**
     * Runs the registered exit hook (if any) while mem and vsm are
     * still alive — the opt-in end-of-scope heap audit installs
     * itself here (see analysis/auditor.hh: installExitAudit).
     */
    ~Hicamp()
    {
        if (exitHook_)
            exitHook_(*this);
    }

    Hicamp(const Hicamp &) = delete;
    Hicamp &operator=(const Hicamp &) = delete;

    /** Register a callback invoked at destruction; pass {} to clear. */
    void
    setExitHook(std::function<void(Hicamp &)> hook)
    {
        exitHook_ = std::move(hook);
    }

    /**
     * Box a segment descriptor into a content-unique line and return
     * its PLID (owning one reference). The box line stores the root
     * word with its tag preserved plus the packed (height, byteLen),
     * so dedup makes the box PLID unique per segment value — the
     * single-word "name" of a whole segment.
     *
     * Consumes one reference of @p d's root (the box line owns it).
     */
    HICAMP_RETURNS_REF Plid
    boxSegment(HICAMP_CONSUMES_REF const SegDesc &d)
    {
        Line box = mem.makeLine();
        box.set(0, d.root.word, d.root.meta);
        box.set(1, (static_cast<Word>(d.height) << 48) | d.byteLen);
        return mem.internLine(box);
    }

    /**
     * Unbox: read a box line back into a segment descriptor. The
     * returned descriptor is borrowed (the box owns the root
     * reference); retain it to keep it across the box's life.
     */
    SegDesc
    unboxSegment(HICAMP_BORROWS_REF Plid box_plid,
                 DramCat cat = DramCat::Read)
    {
        Line box = mem.readLine(box_plid, cat);
        SegDesc d;
        d.root = {box.word(0), box.meta(0)};
        d.height = static_cast<std::int32_t>(box.word(1) >> 48);
        d.byteLen = box.word(1) & ((Word{1} << 48) - 1);
        return d;
    }

    Memory mem;
    SegmentMap vsm;

  private:
    std::function<void(Hicamp &)> exitHook_;
};

} // namespace hicamp

#endif // HICAMP_LANG_CONTEXT_HH
