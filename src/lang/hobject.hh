/**
 * @file
 * HObject: the paper's object model (§2.3): "Each software object
 * corresponds to a segment. ... When one data structure needs to
 * refer to another (e.g. object O1 needs to refer to O2), then an
 * object's VSID is stored as the reference. When the contents of O2
 * are updated, the entry in the virtual segment map corresponding to
 * S2 is updated to point to the new root PLID, and thus the other
 * referencing objects (e.g. O1) do not have to change their
 * references."
 *
 * An HObject is a fixed-shape record of word fields; each field is
 * raw data or a VSID-tagged reference to another object. Field
 * updates commit through an iterator register (CAS/mCAS like any
 * segment). Because references indirect through the segment map,
 * updating a referenced object never rewrites the referrer — the
 * contrast with PLID references, which name immutable *content*.
 */

#ifndef HICAMP_LANG_HOBJECT_HH
#define HICAMP_LANG_HOBJECT_HH

#include <vector>

#include "common/backoff.hh"
#include "lang/hstring.hh"
#include "seg/iterator.hh"

namespace hicamp {

class HObject
{
  public:
    /** Create an object with @p num_fields zeroed word fields. */
    HObject(Hicamp &hc, unsigned num_fields)
        : hc_(&hc), fields_(num_fields)
    {
        SegGeometry geo(hc.mem.fanout());
        SegDesc d;
        d.height = geo.heightForWords(num_fields);
        d.byteLen = num_fields * kWordBytes;
        vsid_ = hc.vsm.create(d);
    }

    /** Bind a handle to an existing object VSID. */
    static HObject
    attach(Hicamp &hc, Vsid v, unsigned num_fields)
    {
        HObject o;
        o.hc_ = &hc;
        o.vsid_ = v;
        o.fields_ = num_fields;
        o.owned_ = false;
        return o;
    }

    HObject(const HObject &) = delete;
    HObject &operator=(const HObject &) = delete;

    HObject(HObject &&other) noexcept
        : hc_(other.hc_), vsid_(other.vsid_), fields_(other.fields_),
          owned_(other.owned_)
    {
        other.hc_ = nullptr;
        other.owned_ = false;
    }

    ~HObject()
    {
        if (hc_ && owned_)
            hc_->vsm.destroy(vsid_);
    }

    Vsid vsid() const { return vsid_; }
    unsigned numFields() const { return fields_; }

    /** Read a raw data field. */
    Word
    getWord(unsigned field)
    {
        WordMeta m;
        return read(field, &m);
    }

    /** Write a raw data field (atomic commit, retries CAS races). */
    void
    setWord(unsigned field, Word value)
    {
        write(field, value, WordMeta::raw());
    }

    /**
     * Store a reference to another object: the field holds the
     * target's VSID with the hardware VSID tag. The reference stays
     * valid across any number of updates to the target.
     */
    void
    setRef(unsigned field, const HObject &target)
    {
        write(field, target.vsid(), WordMeta::vsid());
    }

    /** Read a reference field; kNullVsid if empty or not a ref. */
    Vsid
    getRef(unsigned field)
    {
        WordMeta m;
        Word w = read(field, &m);
        return m.isVsid() ? w : kNullVsid;
    }

    /** Clear a field. */
    void clear(unsigned field) { write(field, 0, WordMeta::raw()); }

  private:
    HObject() = default;

    Word
    read(unsigned field, WordMeta *m)
    {
        HICAMP_ASSERT(field < fields_, "object field out of range");
        IteratorRegister it(hc_->mem, hc_->vsm);
        it.load(vsid_, field);
        return it.read(m);
    }

    void
    write(unsigned field, Word w, WordMeta m)
    {
        HICAMP_ASSERT(field < fields_, "object field out of range");
        IteratorRegister it(hc_->mem, hc_->vsm);
        CommitRetry retry(hc_->mem.retryPolicy(), &hc_->mem.contention());
        for (;;) {
            it.load(vsid_, field);
            it.write(w, m);
            if (it.tryCommit())
                return;
            const MemStatus st = it.lastCommitStatus();
            it.abort();
            if (!retry.onConflict())
                throwRetriesExhausted(st, "HObject field commit failed");
        }
    }

    Hicamp *hc_ = nullptr;
    Vsid vsid_ = kNullVsid;
    unsigned fields_ = 0;
    bool owned_ = true;
};

} // namespace hicamp

#endif // HICAMP_LANG_HOBJECT_HH
