/**
 * @file
 * HMap: the paper's key-value map (§4.1, §4.4) — a sparse array
 * indexed by the content fingerprint of the key string (the paper
 * indexes by the key's root PLID; our fingerprint additionally folds
 * in height and length). Each occupied slot holds the PLID of a pair
 * line [key-box, value-box]: keeping the key referenced pins its
 * canonical segment, which is what makes root-PLID indexing sound —
 * if the key segment were reclaimed, its PLID could be recycled for
 * different content and alias the slot.
 *
 * Deduplication guarantees one box per distinct segment value, so
 * equal keys/values collide to identical words and merge-update
 * resolves concurrent non-conflicting updates (§4.3).
 */

#ifndef HICAMP_LANG_HMAP_HH
#define HICAMP_LANG_HMAP_HH

#include <optional>
#include <utility>

#include "common/backoff.hh"
#include "lang/hstring.hh"
#include "mem/plid_ref.hh"
#include "seg/iterator.hh"

namespace hicamp {

class HMap
{
  public:
    /**
     * @param merge_update resolve concurrent commits by merge-update
     * (paper §4.3) instead of failing the CAS.
     */
    explicit HMap(Hicamp &hc, bool merge_update = true)
        : hc_(hc)
    {
        SegGeometry geo(hc.mem.fanout());
        SegDesc empty;
        empty.height = geo.heightForWords(kIndexSpace);
        vsid_ = hc.vsm.create(empty, merge_update
                                         ? std::uint32_t{kSegMergeUpdate}
                                         : std::uint32_t{0});
    }

    ~HMap() { hc_.vsm.destroy(vsid_); }

    HMap(const HMap &) = delete;
    HMap &operator=(const HMap &) = delete;

    Vsid vsid() const { return vsid_; }

    /** Word index a key maps to. */
    std::uint64_t
    slotOf(const HString &key) const
    {
        return key.fingerprint() & (kIndexSpace - 1);
    }

    /**
     * Insert or update. Retries internally on commit conflicts (rare
     * under merge-update: only same-slot value races), bounded by the
     * memory's RetryPolicy; throws MemPressureError when the budget
     * is spent or the store is out of memory.
     */
    void
    set(const HString &key, const HString &value)
    {
        IteratorRegister it(hc_.mem, hc_.vsm);
        CommitRetry retry(hc_.mem.retryPolicy(), &hc_.mem.contention());
        for (;;) {
            MemStatus st = MemStatus::Ok;
            try {
                it.load(vsid_, slotOf(key));
                Plid pair = makePair(key, value);
                it.write(pair, WordMeta::plid());
                if (it.tryCommit())
                    return;
                st = it.lastCommitStatus();
            } catch (const MemPressureError &e) {
                // A transient allocation failure inside the pair build
                // unwinds leak-free (makePair consumes its references
                // on failure), so treat it like a commit conflict and
                // let the bounded backoff absorb injected faults.
                st = e.status();
            }
            it.abort(); // releases any pending pair reference
            if (!retry.onConflict())
                throwRetriesExhausted(st, "HMap::set commit failed");
        }
    }

    /** Point lookup against a fresh snapshot. */
    std::optional<HString>
    get(const HString &key)
    {
        IteratorRegister it(hc_.mem, hc_.vsm);
        it.load(vsid_, slotOf(key));
        return readValue(it);
    }

    /**
     * Point lookup reusing a caller-held register. Paper §4.4: a
     * client thread (re)loads its register per get command, taking a
     * fresh snapshot; upper DAG levels hit in the cache hierarchy.
     */
    std::optional<HString>
    getWith(IteratorRegister &it, const HString &key)
    {
        it.load(vsid_, slotOf(key));
        return readValue(it);
    }

    /**
     * Conditional insert (memcached "add"): store only if the key is
     * absent. Atomic: the commit fails (and retries the decision) if
     * a concurrent writer touched the slot.
     */
    bool
    add(const HString &key, const HString &value)
    {
        IteratorRegister it(hc_.mem, hc_.vsm);
        CommitRetry retry(hc_.mem.retryPolicy(), &hc_.mem.contention());
        for (;;) {
            MemStatus st = MemStatus::Ok;
            try {
                it.load(vsid_, slotOf(key));
                if (it.read() != 0)
                    return false;
                Plid pair = makePair(key, value);
                it.write(pair, WordMeta::plid());
                if (it.tryCommit())
                    return true;
                st = it.lastCommitStatus();
            } catch (const MemPressureError &e) {
                st = e.status(); // leak-free unwind; retry as conflict
            }
            it.abort();
            if (!retry.onConflict())
                throwRetriesExhausted(st, "HMap::add commit failed");
        }
    }

    /**
     * Conditional update (memcached "replace"): store only if the key
     * is present.
     */
    bool
    replace(const HString &key, const HString &value)
    {
        IteratorRegister it(hc_.mem, hc_.vsm);
        CommitRetry retry(hc_.mem.retryPolicy(), &hc_.mem.contention());
        for (;;) {
            MemStatus st = MemStatus::Ok;
            try {
                it.load(vsid_, slotOf(key));
                if (it.read() == 0)
                    return false;
                Plid pair = makePair(key, value);
                it.write(pair, WordMeta::plid());
                if (it.tryCommit())
                    return true;
                st = it.lastCommitStatus();
            } catch (const MemPressureError &e) {
                st = e.status(); // leak-free unwind; retry as conflict
            }
            it.abort();
            if (!retry.onConflict())
                throwRetriesExhausted(st, "HMap::replace commit failed");
        }
    }

    /**
     * Value-conditional update (memcached "cas"): store @p value only
     * if the current value still equals @p expected. Content
     * uniqueness makes the version check a single descriptor compare.
     */
    bool
    compareAndSet(const HString &key, const HString &expected,
                  const HString &value)
    {
        IteratorRegister it(hc_.mem, hc_.vsm);
        CommitRetry retry(hc_.mem.retryPolicy(), &hc_.mem.contention());
        for (;;) {
            MemStatus st = MemStatus::Ok;
            try {
                it.load(vsid_, slotOf(key));
                WordMeta m;
                Word w = it.read(&m);
                if (w == 0 || !m.isPlid())
                    return false;
                Line pair = hc_.mem.readLine(w);
                SegDesc cur = hc_.unboxSegment(pair.word(1));
                if (!(cur == expected.desc()))
                    return false;
                Plid np = makePair(key, value);
                it.write(np, WordMeta::plid());
                if (it.tryCommit())
                    return true;
                st = it.lastCommitStatus();
            } catch (const MemPressureError &e) {
                st = e.status(); // leak-free unwind; retry as conflict
            }
            it.abort();
            if (!retry.onConflict())
                throwRetriesExhausted(
                    st, "HMap::compareAndSet commit failed");
        }
    }

    /** Remove a key; returns true if it was present. */
    bool
    erase(const HString &key)
    {
        IteratorRegister it(hc_.mem, hc_.vsm);
        CommitRetry retry(hc_.mem.retryPolicy(), &hc_.mem.contention());
        for (;;) {
            it.load(vsid_, slotOf(key));
            WordMeta m;
            if (it.read(&m) == 0)
                return false;
            it.write(0);
            if (it.tryCommit())
                return true;
            const MemStatus st = it.lastCommitStatus();
            it.abort();
            if (!retry.onConflict())
                throwRetriesExhausted(st, "HMap::erase commit failed");
        }
    }

    bool
    contains(const HString &key)
    {
        IteratorRegister it(hc_.mem, hc_.vsm);
        it.load(vsid_, slotOf(key));
        return it.read() != 0;
    }

    /** Number of occupied slots (O(n) sparse scan). */
    std::uint64_t
    size()
    {
        IteratorRegister it(hc_.mem, hc_.vsm);
        it.load(vsid_, 0);
        std::uint64_t n = 0;
        if (it.nextFrom()) {
            ++n;
            while (it.next())
                ++n;
        }
        return n;
    }

    /**
     * Visit every (key, value) pair in slot order over one snapshot.
     */
    template <typename Fn>
    void
    forEach(Fn &&fn)
    {
        IteratorRegister it(hc_.mem, hc_.vsm);
        it.load(vsid_, 0);
        bool more = it.nextFrom();
        while (more) {
            WordMeta m;
            Word w = it.read(&m);
            if (w != 0 && m.isPlid()) {
                auto kv = readPair(w);
                fn(kv.first, kv.second);
            }
            more = it.next();
        }
    }

  private:
    /**
     * Build the pinned entry for (key, value): a line holding the
     * boxed key and boxed value descriptors. Returns an owned PLID.
     */
    HICAMP_RETURNS_REF Plid
    makePair(const HString &key, const HString &value)
    {
        SegBuilder b(hc_.mem);
        // Retain each root just before boxing it: boxSegment consumes
        // the reference even when it throws, so this ordering keeps a
        // failed pair build leak-free (the key-box handle unwinds if
        // boxing the value fails).
        b.retain(key.desc().root);
        PlidRef kb = PlidRef::adopt(hc_.mem, hc_.boxSegment(key.desc()));
        b.retain(value.desc().root);
        PlidRef vb =
            PlidRef::adopt(hc_.mem, hc_.boxSegment(value.desc()));
        Line pair = hc_.mem.makeLine();
        // internLine consumes the boxes' references on every path —
        // including its own failure — so both handles disown into the
        // line words before the call.
        pair.set(0, kb.release(), WordMeta::plid());
        pair.set(1, vb.release(), WordMeta::plid());
        return hc_.mem.internLine(pair);
    }

    std::pair<HString, HString>
    readPair(Plid pair_plid)
    {
        SegBuilder b(hc_.mem);
        Line pair = hc_.mem.readLine(pair_plid);
        SegDesc kd = hc_.unboxSegment(pair.word(0));
        SegDesc vd = hc_.unboxSegment(pair.word(1));
        b.retain(kd.root);
        b.retain(vd.root);
        return {HString::adopt(hc_, kd), HString::adopt(hc_, vd)};
    }

    std::optional<HString>
    readValue(IteratorRegister &it)
    {
        WordMeta m;
        Word w = it.read(&m);
        if (w == 0 || !m.isPlid())
            return std::nullopt;
        Line pair = hc_.mem.readLine(w);
        SegDesc vd = hc_.unboxSegment(pair.word(1));
        SegBuilder(hc_.mem).retain(vd.root);
        return HString::adopt(hc_, vd);
    }

    /// sparse index space: 2^48 words
    static constexpr std::uint64_t kIndexSpace = std::uint64_t{1} << 48;

    Hicamp &hc_;
    Vsid vsid_;
};

} // namespace hicamp

#endif // HICAMP_LANG_HMAP_HH
