/**
 * @file
 * HArray<T>: a dynamically growable array of word-sized elements in a
 * HICAMP segment (paper §4.1). Unlike a conventional array it extends
 * without reallocation or copy, cannot overflow into neighbouring
 * objects, and stores sparse content space-efficiently thanks to zero
 * suppression and data/path compaction.
 *
 * Also provides HCounterArray — a merge-update array of 64-bit
 * counters whose concurrent increments merge to the sum (§3.4).
 */

#ifndef HICAMP_LANG_HARRAY_HH
#define HICAMP_LANG_HARRAY_HH

#include <bit>
#include <cstring>
#include <type_traits>
#include <vector>

#include "common/backoff.hh"
#include "lang/context.hh"

namespace hicamp {

template <typename T>
class HArray
{
    static_assert(std::is_trivially_copyable_v<T> && sizeof(T) <= 8,
                  "HArray elements must be word-sized scalars");

  public:
    /** Empty array (optionally pre-flagged for merge-update). */
    explicit HArray(Hicamp &hc, std::uint32_t seg_flags = 0) : hc_(hc)
    {
        vsid_ = hc.vsm.create(SegDesc{}, seg_flags);
    }

    /** Array initialized from host data. */
    HArray(Hicamp &hc, const std::vector<T> &init,
           std::uint32_t seg_flags = 0)
        : hc_(hc)
    {
        std::vector<Word> w(init.size(), 0);
        for (std::size_t i = 0; i < init.size(); ++i)
            w[i] = toWord(init[i]);
        std::vector<WordMeta> m(w.size(), WordMeta::raw());
        SegBuilder b(hc.mem, /*model_staging=*/true);
        SegDesc d = w.empty() ? SegDesc{}
                              : b.buildWords(w.data(), m.data(), w.size());
        vsid_ = hc.vsm.create(d, seg_flags);
    }

    ~HArray() { hc_.vsm.destroy(vsid_); }

    HArray(const HArray &) = delete;
    HArray &operator=(const HArray &) = delete;

    Vsid vsid() const { return vsid_; }

    /** Elements (from the committed byte length). */
    std::uint64_t
    size()
    {
        return hc_.vsm.get(vsid_).byteLen / kWordBytes;
    }

    T
    get(std::uint64_t i)
    {
        IteratorRegister it(hc_.mem, hc_.vsm);
        it.load(vsid_, i);
        return fromWord(it.read());
    }

    /** Single-element update; bounded retries on CAS conflicts. */
    void
    set(std::uint64_t i, T v)
    {
        IteratorRegister it(hc_.mem, hc_.vsm);
        CommitRetry retry(hc_.mem.retryPolicy(), &hc_.mem.contention());
        for (;;) {
            it.load(vsid_, i);
            it.write(toWord(v));
            if (it.tryCommit())
                return;
            const MemStatus st = it.lastCommitStatus();
            it.abort();
            if (!retry.onConflict())
                throwRetriesExhausted(st, "HArray::set commit failed");
        }
    }

    /**
     * Batched writer: buffer many writes in one iterator register and
     * publish them with a single atomic commit.
     */
    class Writer
    {
      public:
        explicit Writer(HArray &a) : arr_(a), it_(a.hc_.mem, a.hc_.vsm)
        {
            it_.load(a.vsid_, 0);
        }

        void
        set(std::uint64_t i, T v)
        {
            it_.seek(i);
            it_.write(HArray::toWord(v));
        }

        bool commit() { return it_.tryCommit(); }
        void abort() { it_.abort(); }

      private:
        HArray &arr_;
        IteratorRegister it_;
    };

    static Word
    toWord(T v)
    {
        if constexpr (std::is_same_v<T, double>) {
            return std::bit_cast<std::uint64_t>(v);
        } else {
            Word w = 0;
            std::memcpy(&w, &v, sizeof(T));
            return w;
        }
    }

    static T
    fromWord(Word w)
    {
        if constexpr (std::is_same_v<T, double>) {
            return std::bit_cast<double>(w);
        } else {
            T v{};
            std::memcpy(&v, &w, sizeof(T));
            return v;
        }
    }

  private:
    friend class Writer;

    Hicamp &hc_;
    Vsid vsid_;
};

/**
 * A merge-update counter array: concurrent add() calls never lose
 * updates — conflicting commits are merged by applying deltas
 * (paper §3.4 "merge-update can also apply to a segment of counters").
 */
class HCounterArray
{
  public:
    HCounterArray(Hicamp &hc, std::uint64_t n)
        : hc_(hc), arr_(hc, std::vector<std::uint64_t>(n),
                        kSegMergeUpdate)
    {}

    std::uint64_t get(std::uint64_t i) { return arr_.get(i); }

    /** Atomically add @p delta; merge-update absorbs races. */
    void
    add(std::uint64_t i, std::uint64_t delta)
    {
        IteratorRegister it(hc_.mem, hc_.vsm);
        CommitRetry retry(hc_.mem.retryPolicy(), &hc_.mem.contention());
        for (;;) {
            it.load(arr_.vsid(), i);
            std::uint64_t cur = it.read();
            it.write(cur + delta);
            if (it.tryCommit())
                return;
            const MemStatus st = it.lastCommitStatus();
            it.abort();
            if (!retry.onConflict())
                throwRetriesExhausted(st,
                                      "HCounterArray::add commit failed");
        }
    }

    Vsid vsid() const { return arr_.vsid(); }

  private:
    Hicamp &hc_;
    HArray<std::uint64_t> arr_;

    // HArray(Hicamp&, span) needs a materializable container:
    template <typename T>
    friend class HArray;
};

} // namespace hicamp

#endif // HICAMP_LANG_HARRAY_HH
