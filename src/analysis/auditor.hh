/**
 * @file
 * Heap auditor: offline cross-layer invariant checker for the
 * deduplicated HICAMP memory model.
 *
 * Everything the architecture promises — dedup, snapshot isolation,
 * safe merge-update — rests on structural invariants the paper states
 * but the fast paths only check locally. The auditor walks the entire
 * ground-truth state (LineStore, SegmentMap, live iterator registers)
 * and verifies them globally:
 *
 *  1. Dedup canonicality (paper §3.1): no two live lines hold
 *     identical content — a line's PLID is *the* PLID for that
 *     content — and no stored line is the implicit all-zero line.
 *  2. Refcount accounting (§3.1): every live line's stored reference
 *     count equals its in-edges from live lines plus segment-map root
 *     references, iterator-register references (snapshot root,
 *     working root, parked write-buffer references) and declared
 *     external references. Excess counts are leaks; deficits and
 *     references to freed lines are dangling.
 *  3. DAG well-formedness (§2.2, §3.2): reference words name live
 *     PLIDs, the global line graph is acyclic, heights and byte
 *     lengths are consistent with coverage, and the canonicalization
 *     rules (zero suppression, data compaction, path compaction) hold
 *     on every segment reachable from the map.
 *  4. Bucket layout (§3.1, Fig. 2): every home-bucket line lives in
 *     the bucket its content hash selects, its signature way entry
 *     matches, and overflow lines are reachable through the overflow
 *     pointer chain.
 *  5. Epoch/limbo invariants (DESIGN.md §12): every line parked in
 *     limbo is live-but-retired — unpublished (invisible to dedup
 *     lookup), refcount zero, content storage still intact — never
 *     dangling; and at the epoch-quiescent point the audit
 *     establishes first, the store's refcount total exactly equals
 *     the live-line sum (no stale count survives on a retired slot).
 *
 * The audit is a stop-the-world diagnostic: it takes the memory
 * system's global lock and never generates modelled DRAM traffic.
 */

#ifndef HICAMP_ANALYSIS_AUDITOR_HH
#define HICAMP_ANALYSIS_AUDITOR_HH

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/types.hh"
#include "seg/builder.hh"

namespace hicamp {

class Hicamp;
class Memory;
class SegmentMap;

/** The invariant a violation was found against. */
enum class AuditKind : std::uint8_t {
    DedupDuplicate,  ///< two live lines with identical content
    RefLeak,         ///< stored refcount exceeds accounted references
    RefMismatch,     ///< accounted references exceed stored refcount
    RefDangling,     ///< reference word names a free/invalid PLID
    DagCycle,        ///< back-edge in the global line graph
    DagMalformed,    ///< bad tag, height, coverage or byte length
    CompactionPath,  ///< single-child node that should be path-compacted
    CompactionData,  ///< packable subtree that should be inline
    BucketLayout,    ///< line in wrong bucket / bad signature / chain
    CounterDrift,    ///< store counters disagree with a full scan
    LimboState,      ///< retired line violates a §12 limbo invariant
    RefSaturated,    ///< sticky-saturated refcount (informational)
};

/** Stable display name of an AuditKind. */
const char *auditKindName(AuditKind k);

/** One concrete invariant violation. */
struct AuditViolation {
    AuditKind kind;
    Plid plid = kZeroPlid; ///< primary line involved (0 if n/a)
    std::string detail;
};

/** Result of a full heap audit. */
struct AuditReport {
    std::vector<AuditViolation> violations;
    /// violations found beyond Options::maxViolations (counted, not
    /// recorded)
    std::uint64_t truncated = 0;

    /// Informational observations that are expected behaviour, not
    /// corruption — today only RefSaturated: a limited-width refcount
    /// pinned at its sticky maximum (§3.1) legitimately disagrees with
    /// the accounted in-edges, and the line is immortal by design.
    /// Never affects clean().
    std::vector<AuditViolation> infos;

    /// @name Scan counters
    /// @{
    std::uint64_t linesScanned = 0;
    std::uint64_t overflowScanned = 0;
    std::uint64_t limboScanned = 0;
    std::uint64_t edgesScanned = 0;
    std::uint64_t rootsScanned = 0;
    std::uint64_t iteratorsScanned = 0;
    std::uint64_t externalRefs = 0;
    std::uint64_t refsAccounted = 0;
    /// @}

    bool
    clean() const
    {
        return violations.empty() && truncated == 0;
    }

    /** Occurrences of @p k across violations and infos. */
    std::uint64_t count(AuditKind k) const;

    /** One-line verdict plus the first few violations. */
    std::string summary() const;

    /** Full human-readable report (per-invariant table + listing). */
    void print(std::FILE *out = stdout) const;
};

class Auditor
{
  public:
    struct Options {
        /// canonical form the DAG walk expects (must match the policy
        /// the structures were built with)
        CompactionPolicy policy{};
        bool checkCompaction = true;
        bool checkDedup = true;
        /// references legitimately held outside the state the auditor
        /// can see: one element per owned reference (e.g. a PLID on
        /// the caller's stack)
        std::vector<Plid> externalRefs;
        /// snapshot descriptors the caller still holds (each owns one
        /// root reference)
        std::vector<SegDesc> externalSegs;
        /// drive the store to an epoch-quiescent point first
        /// (LineStore::epochSynchronize, §12) so refcount totals are
        /// exact and limbo holds only reader-pinned retirements;
        /// clear it to inspect an in-flight state as-is
        bool syncEpoch = true;
        /// recording cap; further violations only bump `truncated`
        std::size_t maxViolations = 64;
    };

    /** Audit a full machine: memory, segment map and live iterators. */
    static AuditReport audit(Hicamp &hc, const Options &opts);
    static AuditReport audit(Hicamp &hc);

    /** Audit a bare memory system (and optionally a segment map). */
    static AuditReport audit(Memory &mem, SegmentMap *vsm,
                             const Options &opts);
    static AuditReport audit(Memory &mem, SegmentMap *vsm);
};

/**
 * RAII end-of-scope audit: runs Auditor::audit at destruction and
 * panics with the printed report if any invariant is violated. Place
 * one right after constructing a Hicamp (or Memory) to get a free
 * leak/consistency check when the scope unwinds.
 */
class ScopedAudit
{
  public:
    explicit ScopedAudit(Hicamp &hc, Auditor::Options opts = {});
    ScopedAudit(Memory &mem, SegmentMap *vsm, Auditor::Options opts = {});
    ~ScopedAudit() noexcept(false);

    ScopedAudit(const ScopedAudit &) = delete;
    ScopedAudit &operator=(const ScopedAudit &) = delete;

  private:
    Memory &mem_;
    SegmentMap *vsm_;
    Auditor::Options opts_;
};

/**
 * Opt-in end-of-scope hook: make @p hc audit itself in its destructor
 * (after user structures are gone, before the map and store die) and
 * panic on violations.
 */
void installExitAudit(Hicamp &hc, Auditor::Options opts = {});

} // namespace hicamp

#endif // HICAMP_ANALYSIS_AUDITOR_HH
