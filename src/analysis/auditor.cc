#include "analysis/auditor.hh"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "common/hash.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "lang/context.hh"
#include "mem/line_store.hh"
#include "mem/memory.hh"
#include "seg/entry.hh"
#include "seg/iterator.hh"
#include "vsm/segment_map.hh"

namespace hicamp {

const char *
auditKindName(AuditKind k)
{
    switch (k) {
      case AuditKind::DedupDuplicate:
        return "dedup-duplicate";
      case AuditKind::RefLeak:
        return "refcount-leak";
      case AuditKind::RefMismatch:
        return "refcount-mismatch";
      case AuditKind::RefDangling:
        return "dangling-reference";
      case AuditKind::DagCycle:
        return "dag-cycle";
      case AuditKind::DagMalformed:
        return "dag-malformed";
      case AuditKind::CompactionPath:
        return "compaction-path";
      case AuditKind::CompactionData:
        return "compaction-data";
      case AuditKind::BucketLayout:
        return "bucket-layout";
      case AuditKind::CounterDrift:
        return "counter-drift";
      case AuditKind::LimboState:
        return "limbo-state";
      case AuditKind::RefSaturated:
        return "refcount-saturated";
    }
    return "unknown";
}

namespace {

/// every AuditKind, in display order
constexpr AuditKind kAllKinds[] = {
    AuditKind::DedupDuplicate, AuditKind::RefLeak,
    AuditKind::RefMismatch,    AuditKind::RefDangling,
    AuditKind::DagCycle,       AuditKind::DagMalformed,
    AuditKind::CompactionPath, AuditKind::CompactionData,
    AuditKind::BucketLayout,   AuditKind::CounterDrift,
    AuditKind::LimboState,     AuditKind::RefSaturated,
};

/** Replicates SegBuilder::tryInline's packability test (no output). */
bool
inlinePackable(const Word *values, std::uint64_t n)
{
    if (n > 8)
        return false;
    const unsigned w = static_cast<unsigned>(64 / n);
    if (w != 8 && w != 16 && w != 32)
        return false;
    const Word limit = Word{1} << w;
    for (std::uint64_t i = 0; i < n; ++i) {
        if (values[i] >= limit)
            return false;
    }
    return true;
}

/**
 * One audit run over a consistent (locked) snapshot of the model.
 * The walk reads the ground-truth store directly, so it generates no
 * modelled DRAM traffic and perturbs no statistics.
 */
class AuditRun
{
  public:
    AuditRun(Memory &mem, SegmentMap *vsm, const Auditor::Options &opts)
        : mem_(mem), vsm_(vsm), opts_(opts), store_(mem.store()),
          geo_(mem.fanout())
    {}

    AuditReport
    run()
    {
        // Audits run at quiescent points (no concurrent mutators);
        // the store/map iteration primitives take their own locks.
        // First drive the store to an *epoch*-quiescent point (§12):
        // every retirement with no surviving reader is physically
        // freed, so the refcount-total check below is exact and
        // whatever stays in limbo is genuinely reader-pinned.
        if (opts_.syncEpoch)
            store_.epochSynchronize();
        scanLimbo();
        scanStore();
        scanRoots();
        scanIterators();
        scanExternal();
        compareRefcounts();
        detectCycles();
        return std::move(rep_);
    }

  private:
    void
    add(AuditKind kind, Plid plid, std::string detail)
    {
        if (rep_.violations.size() < opts_.maxViolations)
            rep_.violations.push_back({kind, plid, std::move(detail)});
        else
            ++rep_.truncated;
    }

    void
    info(AuditKind kind, Plid plid, std::string detail)
    {
        if (rep_.infos.size() < opts_.maxViolations)
            rep_.infos.push_back({kind, plid, std::move(detail)});
    }

    /** Record one reference made to @p target from @p holder. */
    void
    reference(Plid target, Plid holder, const char *what)
    {
        if (target == kZeroPlid)
            return;
        if (!store_.isLive(target)) {
            add(AuditKind::RefDangling, holder,
                strfmt("%s in %#llx names freed PLID %#llx", what,
                       static_cast<unsigned long long>(holder),
                       static_cast<unsigned long long>(target)));
            return;
        }
        ++expected_[target];
        ++rep_.refsAccounted;
    }

    /**
     * Pass 0 — limbo sweep (§12): every line parked in the epoch
     * domain's limbo lists must be *live-but-retired* — its refcount
     * consumed by retirement, its slot unpublished, but its content
     * storage intact (never dangling) until grace expiry. The
     * storage checks run inside an epoch guard so the slots cannot
     * drain mid-scan; the dedup probe runs after the guard exits
     * (its miss path falls back to stripe locks, which §7 forbids
     * inside a pinned section).
     */
    void
    scanLimbo()
    {
        struct LimboLine {
            Plid plid;
            Line content;
        };
        std::vector<LimboLine> limbo;
        {
            EpochGuard eg(store_.epochDomain());
            store_.forEachLimbo([&](Plid p) {
                // Materializing the content is itself the "never
                // dangling" check: limbo parks the slot's storage,
                // so the copy must succeed under the guard.
                limbo.push_back({p, store_.read(p)});
                if (store_.isLive(p)) {
                    add(AuditKind::LimboState, p,
                        "retired line still published as live");
                }
                const std::uint32_t refs = store_.refCount(p);
                if (refs != 0) {
                    add(AuditKind::LimboState, p,
                        strfmt("limbo line carries refcount %u "
                               "(retirement consumes the store's "
                               "reference)",
                               refs));
                }
            });
        }
        rep_.limboScanned = limbo.size();
        if (limbo.size() != store_.limboLines()) {
            add(AuditKind::CounterDrift, kZeroPlid,
                strfmt("limboLines counter %llu but the deferred "
                       "list holds %llu",
                       static_cast<unsigned long long>(
                           store_.limboLines()),
                       static_cast<unsigned long long>(limbo.size())));
        }
        // Unpublished: a retired line must be invisible to dedup. A
        // fresh insert of the same content may legally coexist — but
        // it must have been given a different slot.
        for (const LimboLine &ll : limbo) {
            auto probe = store_.find(ll.content);
            if (probe.found && probe.plid == ll.plid) {
                add(AuditKind::LimboState, ll.plid,
                    "limbo line still reachable through dedup "
                    "lookup");
            }
        }
    }

    /**
     * Pass 1 — full line-store sweep: bucket layout, dedup
     * canonicality, per-word tag sanity and in-edge accounting.
     */
    void
    scanStore()
    {
        std::uint64_t live = 0, over = 0;
        store_.forEachLive([&](Plid p, const Line &l,
                               std::uint32_t refs) {
            ++live;
            ++rep_.linesScanned;
            stored_[p] = refs;
            const std::uint64_t hash = l.contentHash();

            if (l.isZero()) {
                add(AuditKind::DedupDuplicate, p,
                    "explicit all-zero line stored (the zero line is "
                    "implicit PLID 0)");
            }

            // Bucket layout (Fig. 2).
            if (p >= kOverflowBase) {
                ++over;
                ++rep_.overflowScanned;
                if (store_.bucketOfPlid(p) != store_.bucketOf(hash)) {
                    add(AuditKind::BucketLayout, p,
                        "overflow line's home bucket does not match "
                        "its content hash");
                }
                if (!store_.overflowChainContains(p)) {
                    add(AuditKind::BucketLayout, p,
                        "overflow line missing from its hash chain "
                        "(future lookups cannot dedup against it)");
                }
            } else {
                if (store_.bucketOfPlid(p) != store_.bucketOf(hash)) {
                    add(AuditKind::BucketLayout, p,
                        "line stored in a bucket its content hash "
                        "does not select");
                }
                if (store_.storedSignature(p) != signatureOfHash(hash)) {
                    add(AuditKind::BucketLayout, p,
                        "signature way entry does not match the "
                        "line's content hash");
                }
            }

            // Dedup canonicality.
            if (opts_.checkDedup) {
                auto [it, fresh] = byHash_.try_emplace(hash);
                if (!fresh) {
                    for (Plid other : it->second) {
                        if (store_.read(other) == l) {
                            add(AuditKind::DedupDuplicate, p,
                                strfmt("content identical to live "
                                       "line %#llx",
                                       static_cast<unsigned long long>(
                                           other)));
                        }
                    }
                }
                it->second.push_back(p);
            }

            // Per-word tag sanity and in-edge accounting.
            for (unsigned i = 0; i < l.size(); ++i) {
                const Word w = l.word(i);
                const WordMeta m = l.meta(i);
                if (w == 0) {
                    if (!(m == WordMeta::raw())) {
                        add(AuditKind::DagMalformed, p,
                            strfmt("word %u is zero but carries a "
                                   "non-raw tag %#x",
                                   i, m.value()));
                    }
                    continue;
                }
                if (m.isPlid()) {
                    ++rep_.edgesScanned;
                    reference(w, p, strfmt("word %u", i).c_str());
                }
            }
        });

        if (live != store_.liveLines()) {
            add(AuditKind::CounterDrift, kZeroPlid,
                strfmt("liveLines counter %llu but scan found %llu",
                       static_cast<unsigned long long>(
                           store_.liveLines()),
                       static_cast<unsigned long long>(live)));
        }
        if (over != store_.overflowLines()) {
            add(AuditKind::CounterDrift, kZeroPlid,
                strfmt("overflowLines counter %llu but scan found %llu",
                       static_cast<unsigned long long>(
                           store_.overflowLines()),
                       static_cast<unsigned long long>(over)));
        }
    }

    /**
     * Pass 2 — segment map: root reference accounting, descriptor
     * sanity, and the canonical-form DAG walk from every root.
     */
    void
    scanRoots()
    {
        if (!vsm_)
            return;
        vsm_->forEachLive([&](Vsid v, const SegDesc &d,
                              std::uint32_t flags) {
            ++rep_.rootsScanned;
            if (flags & kSegAlias)
                return; // forwards to another entry; owns nothing
            // Coverage is F^(h+1) words; past this height the shift
            // in wordsCovered() would overflow 64 bits.
            const int max_h =
                static_cast<int>(60 / geo_.fanoutBits()) - 1;
            if (d.height < 0 || d.height > max_h) {
                add(AuditKind::DagMalformed, kZeroPlid,
                    strfmt("VSID %llu has implausible height %d "
                           "(valid range 0..%d)",
                           static_cast<unsigned long long>(v),
                           d.height, max_h));
                return;
            }
            if (d.byteLen > geo_.bytesCovered(d.height)) {
                add(AuditKind::DagMalformed,
                    d.root.meta.isPlid() ? d.root.word : kZeroPlid,
                    strfmt("VSID %llu byteLen %llu exceeds height-%d "
                           "coverage %llu",
                           static_cast<unsigned long long>(v),
                           static_cast<unsigned long long>(d.byteLen),
                           d.height,
                           static_cast<unsigned long long>(
                               geo_.bytesCovered(d.height))));
            }
            if (!(flags & kSegWeak) && d.root.meta.isPlid())
                reference(d.root.word, kZeroPlid,
                          strfmt("VSID %llu root",
                                 static_cast<unsigned long long>(v))
                              .c_str());
            walkEntry(d.root, d.height);
        });
    }

    /** Pass 3 — live iterator registers' owned references. */
    void
    scanIterators()
    {
        if (!vsm_)
            return;
        for (const IteratorRegister *it : vsm_->liveIterators()) {
            ++rep_.iteratorsScanned;
            std::vector<Plid> refs;
            it->auditRefs(refs);
            for (Plid p : refs)
                reference(p, kZeroPlid, "iterator register");
        }
    }

    /** Pass 4 — references the caller declared it still holds. */
    void
    scanExternal()
    {
        for (Plid p : opts_.externalRefs) {
            ++rep_.externalRefs;
            reference(p, kZeroPlid, "external reference");
        }
        for (const SegDesc &d : opts_.externalSegs) {
            if (d.root.meta.isPlid() && d.root.word != 0) {
                ++rep_.externalRefs;
                reference(d.root.word, kZeroPlid, "external snapshot");
            }
        }
    }

    /** Pass 5 — stored refcount vs accounted references, per line. */
    void
    compareRefcounts()
    {
        for (const auto &[p, refs] : stored_) {
            auto it = expected_.find(p);
            const std::uint64_t exp =
                it == expected_.end() ? 0 : it->second;
            if (refs == exp)
                continue;
            if (store_.refcountSaturated(p)) {
                // Sticky saturation (§3.1): the stored count stopped
                // tracking in-edges on purpose; the line is immortal,
                // not leaked or in danger of dangling.
                info(AuditKind::RefSaturated, p,
                     strfmt("refcount pinned at sticky max %u "
                            "(%llu references accounted); line is "
                            "immortal by design",
                            refs,
                            static_cast<unsigned long long>(exp)));
                continue;
            }
            if (refs > exp) {
                add(AuditKind::RefLeak, p,
                    strfmt("stored refcount %u but only %llu "
                           "references accounted%s",
                           refs, static_cast<unsigned long long>(exp),
                           exp == 0 ? " (unreachable, leaked)" : ""));
            } else {
                add(AuditKind::RefMismatch, p,
                    strfmt("stored refcount %u but %llu references "
                           "accounted (free would dangle them)",
                           refs, static_cast<unsigned long long>(exp)));
            }
        }

        // Refcount total at the epoch-quiescent point (§12): the
        // store's slot-by-slot sum must equal the live-line sum —
        // a difference means a stale count survived on a retired
        // (limbo or freed) slot. Only exact once synchronized.
        if (opts_.syncEpoch) {
            std::uint64_t sum = 0;
            for (const auto &kv : stored_)
                sum += kv.second;
            const std::uint64_t total = store_.totalRefs();
            if (total != sum) {
                add(AuditKind::CounterDrift, kZeroPlid,
                    strfmt("totalRefs() %llu but the live-line scan "
                           "sums %llu at the epoch-quiescent point",
                           static_cast<unsigned long long>(total),
                           static_cast<unsigned long long>(sum)));
            }
        }
    }

    /**
     * Pass 6 — global acyclicity over the PLID reference graph
     * (iterative 3-color DFS; content-addressing makes cycles
     * unconstructible, so any cycle is corruption).
     */
    void
    detectCycles()
    {
        // 1 = on the DFS stack, 2 = fully explored.
        std::unordered_map<Plid, std::uint8_t> color;
        struct Frame {
            Plid plid;
            Line line;
            unsigned next = 0;
        };
        std::vector<Frame> stack;
        for (const auto &[start, refs] : stored_) {
            (void)refs;
            if (color.count(start))
                continue;
            color[start] = 1;
            stack.push_back({start, store_.read(start), 0});
            while (!stack.empty()) {
                Frame &f = stack.back();
                bool descended = false;
                while (f.next < f.line.size()) {
                    const unsigned i = f.next++;
                    const Word w = f.line.word(i);
                    if (w == 0 || !f.line.meta(i).isPlid() ||
                        !store_.isLive(w)) {
                        continue;
                    }
                    auto [it, fresh] = color.try_emplace(w, 1);
                    if (!fresh) {
                        if (it->second == 1) {
                            add(AuditKind::DagCycle, f.plid,
                                strfmt("reference cycle: line %#llx "
                                       "word %u points back to "
                                       "in-progress line %#llx",
                                       static_cast<unsigned long long>(
                                           f.plid),
                                       i,
                                       static_cast<unsigned long long>(
                                           w)));
                        }
                        continue;
                    }
                    stack.push_back({w, store_.read(w), 0});
                    descended = true;
                    break;
                }
                if (!descended && f.next >= f.line.size()) {
                    color[f.plid] = 2;
                    stack.pop_back();
                }
            }
        }
    }

    /** True if the packed path bits are consistent with the skip. */
    void
    checkPathBits(const Entry &e, Plid ctx)
    {
        const unsigned skip = e.meta.skip();
        const unsigned b = geo_.fanoutBits();
        const unsigned max = WordMeta::pathBits(e.meta.kind());
        if (skip * b > max) {
            add(AuditKind::DagMalformed, ctx,
                strfmt("skip %u needs %u path bits but only %u exist",
                       skip, skip * b, max));
            return;
        }
        if (skip * b < max && (e.meta.path() >> (skip * b)) != 0) {
            add(AuditKind::DagMalformed, ctx,
                strfmt("path bits %#x extend beyond skip count %u",
                       e.meta.path(), skip));
        }
    }

    /**
     * Canonical-form walk of one DAG entry at logical height @p h.
     * Shared subtrees are visited once per (line, physical height).
     */
    void
    walkEntry(const Entry &e, int h)
    {
        if (e.word == 0) {
            if (!(e.meta == WordMeta::raw())) {
                add(AuditKind::DagMalformed, kZeroPlid,
                    strfmt("zero slot with non-raw tag %#x",
                           e.meta.value()));
            }
            return;
        }
        if (e.meta.isRaw() || e.meta.isVsid())
            return; // data word; nothing structural below it

        const int ph = h - static_cast<int>(e.meta.skip());
        if (ph < 0) {
            add(AuditKind::DagMalformed,
                e.meta.isPlid() ? e.word : kZeroPlid,
                strfmt("path-compaction skip %u exceeds height %d",
                       e.meta.skip(), h));
            return;
        }
        checkPathBits(e, e.meta.isPlid() ? e.word : kZeroPlid);

        if (e.meta.isInline()) {
            if (e.meta.widthCode() > 2) {
                add(AuditKind::DagMalformed, kZeroPlid,
                    strfmt("inline word with invalid width code %u",
                           e.meta.widthCode()));
                return;
            }
            if (e.meta.inlineWordCount() != geo_.wordsCovered(ph)) {
                add(AuditKind::DagMalformed, kZeroPlid,
                    strfmt("inline word packs %u words but covers "
                           "%llu at height %d",
                           e.meta.inlineWordCount(),
                           static_cast<unsigned long long>(
                               geo_.wordsCovered(ph)),
                           ph));
            }
            return;
        }

        // PLID entry.
        const Plid p = e.word;
        if (!store_.isLive(p))
            return; // already reported as dangling by the sweeps
        if (!visited_.insert((p << 6) |
                             static_cast<std::uint64_t>(ph))
                 .second) {
            return;
        }
        const Line line = store_.read(p);
        const unsigned F = geo_.fanout();

        if (ph == 0) {
            // Leaf line: words are data. Canonical form requires an
            // all-raw packable leaf to have been inlined instead.
            if (opts_.checkCompaction && opts_.policy.dataCompaction) {
                bool all_raw = true;
                Word vals[kMaxLineWords];
                for (unsigned i = 0; i < F; ++i) {
                    all_raw = all_raw && line.meta(i).isRaw();
                    vals[i] = line.word(i);
                }
                if (all_raw && inlinePackable(vals, F)) {
                    add(AuditKind::CompactionData, p,
                        "all-raw leaf line is packable and should be "
                        "an inline word (data compaction)");
                }
            }
            return;
        }

        // Interior line: words are child entries at height ph-1.
        Entry kids[kMaxLineWords];
        unsigned non_zero = 0, nz_index = 0;
        bool packable = true;
        for (unsigned i = 0; i < F; ++i) {
            kids[i] = {line.word(i), line.meta(i)};
            if (kids[i].word != 0) {
                ++non_zero;
                nz_index = i;
                if (kids[i].meta.isRaw()) {
                    add(AuditKind::DagMalformed, p,
                        strfmt("interior slot %u holds a raw data "
                               "word",
                               i));
                }
                if (kids[i].meta.isVsid()) {
                    add(AuditKind::DagMalformed, p,
                        strfmt("interior slot %u holds a VSID tag", i));
                }
            }
            packable = packable &&
                       (kids[i].isZero() || (kids[i].meta.isInline() &&
                                             kids[i].meta.skip() == 0));
        }

        if (opts_.checkCompaction && non_zero == 1 &&
            opts_.policy.pathCompaction) {
            const Entry &only = kids[nz_index];
            if (only.meta.isPlid() || only.meta.isInline()) {
                const unsigned b = geo_.fanoutBits();
                const unsigned skip = only.meta.skip();
                const unsigned max =
                    WordMeta::pathBits(only.meta.kind());
                if (skip + 1 <= 15 && (skip + 1) * b <= max) {
                    add(AuditKind::CompactionPath, p,
                        strfmt("single-child interior line (slot %u) "
                               "should be path-compacted",
                               nz_index));
                }
            }
        }
        if (opts_.checkCompaction && opts_.policy.dataCompaction &&
            packable && geo_.wordsCovered(ph) <= 8) {
            const std::uint64_t n = geo_.wordsCovered(ph);
            const std::uint64_t per_child = n / F;
            Word vals[8] = {};
            for (unsigned c = 0; c < F; ++c) {
                if (kids[c].isZero())
                    continue;
                const unsigned w = kids[c].meta.inlineWidth();
                for (std::uint64_t i = 0; i < per_child; ++i) {
                    vals[c * per_child + i] = SegGeometry::inlineExtract(
                        kids[c].word, w, static_cast<unsigned>(i));
                }
            }
            if (inlinePackable(vals, n)) {
                add(AuditKind::CompactionData, p,
                    "all-raw interior subtree is packable and should "
                    "be an inline word (data compaction)");
            }
        }

        for (unsigned i = 0; i < F; ++i)
            walkEntry(kids[i], ph - 1);
    }

    Memory &mem_;
    SegmentMap *vsm_;
    const Auditor::Options &opts_;
    LineStore &store_;
    SegGeometry geo_;
    AuditReport rep_;

    std::unordered_map<Plid, std::uint32_t> stored_;
    std::unordered_map<Plid, std::uint64_t> expected_;
    std::unordered_map<std::uint64_t, std::vector<Plid>> byHash_;
    std::unordered_set<std::uint64_t> visited_;
};

} // namespace

std::uint64_t
AuditReport::count(AuditKind k) const
{
    std::uint64_t n = 0;
    for (const auto &v : violations)
        n += v.kind == k ? 1 : 0;
    for (const auto &v : infos)
        n += v.kind == k ? 1 : 0;
    return n;
}

std::string
AuditReport::summary() const
{
    if (clean()) {
        std::string s =
            strfmt("heap audit clean: %llu lines, %llu edges, %llu "
                   "roots, %llu iterators",
                   static_cast<unsigned long long>(linesScanned),
                   static_cast<unsigned long long>(edgesScanned),
                   static_cast<unsigned long long>(rootsScanned),
                   static_cast<unsigned long long>(iteratorsScanned));
        if (!infos.empty()) {
            s += strfmt(" (%llu informational)",
                        static_cast<unsigned long long>(infos.size()));
        }
        return s;
    }
    std::string s =
        strfmt("heap audit FAILED: %llu violation(s)",
               static_cast<unsigned long long>(violations.size() +
                                               truncated));
    const std::size_t show = std::min<std::size_t>(violations.size(), 4);
    for (std::size_t i = 0; i < show; ++i) {
        s += strfmt("\n  [%s] plid=%#llx %s",
                    auditKindName(violations[i].kind),
                    static_cast<unsigned long long>(violations[i].plid),
                    violations[i].detail.c_str());
    }
    if (violations.size() + truncated > show) {
        s += strfmt("\n  ... and %llu more",
                    static_cast<unsigned long long>(violations.size() +
                                                    truncated - show));
    }
    return s;
}

void
AuditReport::print(std::FILE *out) const
{
    Table counts({"invariant", "violations"});
    for (AuditKind k : kAllKinds) {
        counts.addRow({auditKindName(k),
                       strfmt("%llu", static_cast<unsigned long long>(
                                          count(k)))});
    }
    counts.print(out);
    std::fprintf(
        out,
        "scanned: %llu lines (%llu overflow, %llu in limbo), %llu "
        "edges, %llu roots, "
        "%llu iterators, %llu external refs, %llu refs accounted\n",
        static_cast<unsigned long long>(linesScanned),
        static_cast<unsigned long long>(overflowScanned),
        static_cast<unsigned long long>(limboScanned),
        static_cast<unsigned long long>(edgesScanned),
        static_cast<unsigned long long>(rootsScanned),
        static_cast<unsigned long long>(iteratorsScanned),
        static_cast<unsigned long long>(externalRefs),
        static_cast<unsigned long long>(refsAccounted));
    for (const auto &v : infos) {
        std::fprintf(out, "  info [%s] plid=%#llx %s\n",
                     auditKindName(v.kind),
                     static_cast<unsigned long long>(v.plid),
                     v.detail.c_str());
    }
    if (clean()) {
        std::fprintf(out, "verdict: CLEAN\n");
        return;
    }
    std::fprintf(out, "verdict: %llu violation(s)\n",
                 static_cast<unsigned long long>(violations.size() +
                                                 truncated));
    for (const auto &v : violations) {
        std::fprintf(out, "  [%s] plid=%#llx %s\n", auditKindName(v.kind),
                     static_cast<unsigned long long>(v.plid),
                     v.detail.c_str());
    }
    if (truncated) {
        std::fprintf(out, "  ... %llu further violation(s) truncated\n",
                     static_cast<unsigned long long>(truncated));
    }
}

AuditReport
Auditor::audit(Hicamp &hc, const Options &opts)
{
    return audit(hc.mem, &hc.vsm, opts);
}

AuditReport
Auditor::audit(Hicamp &hc)
{
    return audit(hc, Options{});
}

AuditReport
Auditor::audit(Memory &mem, SegmentMap *vsm, const Options &opts)
{
    return AuditRun(mem, vsm, opts).run();
}

AuditReport
Auditor::audit(Memory &mem, SegmentMap *vsm)
{
    return audit(mem, vsm, Options{});
}

ScopedAudit::ScopedAudit(Hicamp &hc, Auditor::Options opts)
    : mem_(hc.mem), vsm_(&hc.vsm), opts_(std::move(opts))
{}

ScopedAudit::ScopedAudit(Memory &mem, SegmentMap *vsm,
                         Auditor::Options opts)
    : mem_(mem), vsm_(vsm), opts_(std::move(opts))
{}

ScopedAudit::~ScopedAudit() noexcept(false)
{
    AuditReport r = Auditor::audit(mem_, vsm_, opts_);
    if (!r.clean()) {
        r.print(stderr);
        HICAMP_PANIC("end-of-scope heap audit failed");
    }
}

void
installExitAudit(Hicamp &hc, Auditor::Options opts)
{
    hc.setExitHook([opts = std::move(opts)](Hicamp &h) {
        AuditReport r = Auditor::audit(h, opts);
        if (!r.clean()) {
            r.print(stderr);
            HICAMP_PANIC("Hicamp exit heap audit failed");
        }
    });
}

} // namespace hicamp
