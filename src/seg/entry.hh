/**
 * @file
 * DAG slot entries and coverage math for HICAMP segments.
 *
 * A segment (paper §2.2) is a DAG of lines: interior lines hold child
 * slots, leaf lines hold data words. A slot is modelled as an Entry —
 * a tagged word that is one of:
 *   - the zero entry (all-zero subtree of any height),
 *   - a plain PLID reference to a line,
 *   - a path-compacted PLID (skip + packed child indices, §3.2),
 *   - an inline data-compacted word replacing a small all-raw subtree.
 *
 * Height convention: an entry "at height h" covers F^(h+1) words,
 * where F = fanout = words per line. Height 0 entries reference leaf
 * lines (or inline their F words); height h>=1 entries reference
 * interior lines whose F slots are entries at height h-1.
 */

#ifndef HICAMP_SEG_ENTRY_HH
#define HICAMP_SEG_ENTRY_HH

#include <cstdint>

#include "common/hash.hh"
#include "common/logging.hh"
#include "common/types.hh"

namespace hicamp {

/** One DAG slot (or one leaf data word, at height context 0). */
struct Entry {
    Word word = 0;
    WordMeta meta = WordMeta::raw();

    bool isZero() const { return word == 0 && meta == WordMeta::raw(); }
    bool isPlid() const { return meta.isPlid(); }
    bool isInline() const { return meta.isInline(); }

    /** The referenced line, for PLID entries. */
    Plid plid() const
    {
        HICAMP_ASSERT(meta.isPlid(), "entry is not a PLID");
        return word;
    }

    static Entry zero() { return {}; }

    static Entry
    ofPlid(Plid p, unsigned skip = 0, unsigned path = 0)
    {
        HICAMP_ASSERT(p != kZeroPlid, "use Entry::zero() for PLID 0");
        return {p, WordMeta::plid(skip, path)};
    }

    friend bool
    operator==(const Entry &a, const Entry &b)
    {
        return a.word == b.word && a.meta == b.meta;
    }
};

/** Coverage and packing math for a machine with fanout @p F. */
class SegGeometry
{
  public:
    explicit SegGeometry(unsigned fanout) : fanout_(fanout)
    {
        HICAMP_ASSERT(fanout == 2 || fanout == 4 || fanout == 8,
                      "fanout must be 2, 4 or 8");
        fanoutBits_ = fanout == 2 ? 1 : fanout == 4 ? 2 : 3;
    }

    unsigned fanout() const { return fanout_; }
    /** Bits per packed path index. */
    unsigned fanoutBits() const { return fanoutBits_; }

    /** Words covered by an entry at height @p h: F^(h+1). */
    std::uint64_t
    wordsCovered(int h) const
    {
        return std::uint64_t{1} << (fanoutBits_ * (h + 1));
    }

    /** Bytes covered by an entry at height @p h. */
    std::uint64_t
    bytesCovered(int h) const
    {
        return wordsCovered(h) * kWordBytes;
    }

    /** Minimal height whose coverage is at least @p n_words. */
    int
    heightForWords(std::uint64_t n_words) const
    {
        int h = 0;
        while (wordsCovered(h) < n_words)
            ++h;
        return h;
    }

    /**
     * Inline packing width (bits) for a subtree at height @p h, or 0
     * if that coverage cannot be packed into one word (i.e. covers
     * more than 8 words).
     */
    unsigned
    inlineWidth(int h) const
    {
        std::uint64_t n = wordsCovered(h);
        return n <= 8 ? static_cast<unsigned>(64 / n) : 0;
    }

    /** Width code for WordMeta::inlineData: 8->0, 16->1, 32->2. */
    static unsigned
    widthCode(unsigned width_bits)
    {
        switch (width_bits) {
          case 8:
            return 0;
          case 16:
            return 1;
          case 32:
            return 2;
          default:
            HICAMP_PANIC("invalid inline width");
        }
    }

    /** Extract packed element @p i from an inline word of width @p w. */
    static Word
    inlineExtract(Word packed, unsigned w, unsigned i)
    {
        Word mask = w == 64 ? ~Word{0} : ((Word{1} << w) - 1);
        return (packed >> (w * i)) & mask;
    }

  private:
    unsigned fanout_;
    unsigned fanoutBits_;
};

/**
 * A segment value: root entry, height and logical byte length. This
 * generalizes the paper's [rootPLID, height] pair — a tiny or fully
 * compacted segment may root directly at an inline or path-compacted
 * entry. Content-equal segments (same bytes, same length) always have
 * identical descriptors, extending line-level content-uniqueness to
 * whole segments.
 */
struct SegDesc {
    Entry root;
    std::int32_t height = 0;
    std::uint64_t byteLen = 0;

    bool isNull() const { return root.isZero() && byteLen == 0; }

    /**
     * 64-bit content fingerprint (used e.g. as the sparse-array index
     * a map keys on; the paper uses the key's root PLID directly).
     */
    std::uint64_t
    fingerprint() const
    {
        std::uint64_t h = hashCombine(root.word, root.meta.value());
        h = hashCombine(h, static_cast<std::uint64_t>(height));
        return hashCombine(h, byteLen);
    }

    friend bool
    operator==(const SegDesc &a, const SegDesc &b)
    {
        return a.root == b.root && a.height == b.height &&
               a.byteLen == b.byteLen;
    }
};

} // namespace hicamp

#endif // HICAMP_SEG_ENTRY_HH
