/**
 * @file
 * The HICAMP iterator register (paper §3.3, Fig. 5): an extended
 * address register that caches the DAG path to its current position,
 * steps to the next non-null element without re-walking the tree,
 * buffers updates in transient (non-deduplicated) lines, and converts
 * them to permanent content-unique lines at commit, CASing the new
 * root into the segment map.
 *
 * Offsets are in words. Loading acquires a snapshot (retained root),
 * so reads are isolated from concurrent commits; tryCommit() publishes
 * buffered writes atomically (with merge-update when the segment is
 * flagged for it).
 */

#ifndef HICAMP_SEG_ITERATOR_HH
#define HICAMP_SEG_ITERATOR_HH

#include <cstdint>
#include <map>
#include <optional>
#include <unordered_set>
#include <vector>

#include "common/ownership.hh"
#include "seg/builder.hh"
#include "seg/reader.hh"
#include "vsm/segment_map.hh"

namespace hicamp {

class IteratorRegister
{
  public:
    IteratorRegister(Memory &mem, SegmentMap &vsm);
    ~IteratorRegister();

    IteratorRegister(const IteratorRegister &) = delete;
    IteratorRegister &operator=(const IteratorRegister &) = delete;

    /**
     * Load the register with segment @p v at word offset @p offset,
     * snapshotting the current root. Discards any uncommitted state.
     */
    void load(Vsid v, std::uint64_t offset = 0);

    /** True once load() has been called. */
    bool loaded() const { return loaded_; }
    Vsid vsid() const { return vsid_; }

    /** Current word offset. */
    std::uint64_t offset() const { return offset_; }

    /** Words covered by the (possibly grown) working tree. */
    std::uint64_t coverage() const;

    /** Snapshot byte length at load time. */
    std::uint64_t byteLen() const { return snap_.byteLen; }

    /** Move to an absolute word offset (grows the tree if needed). */
    void seek(std::uint64_t offset);

    /** Read the word (and optionally tag) at the current offset. */
    Word read(WordMeta *meta_out = nullptr);

    /**
     * Write at the current offset into a transient buffer; visible to
     * this register immediately, to others only after tryCommit().
     * Takes ownership of one reference when @p m tags a PLID.
     */
    void write(HICAMP_CONSUMES_REF Word w, WordMeta m = WordMeta::raw());

    /**
     * Advance to the next non-null element strictly after the current
     * offset (merging the snapshot with local uncommitted writes).
     * Returns false at the end of the segment.
     */
    bool next();

    /** As next(), but starting the scan at the current offset itself. */
    bool nextFrom();

    /**
     * Convert buffered writes to permanent lines and atomically
     * install the new root (CAS, or mCAS when the segment has the
     * merge-update flag). On success the register reloads the
     * committed version and returns true. On conflict without
     * merge-update, returns false and keeps the buffered writes (the
     * caller may abort() or re-load and retry). Memory pressure
     * during the rebuild or merge also returns false — with every
     * partially-built line released and lastCommitStatus() reporting
     * the cause — so a failed commit never leaks and the register
     * stays usable (retry or abort()).
     */
    bool tryCommit(MergeStats *stats = nullptr);

    /**
     * Why the last tryCommit() returned false: Ok for a plain CAS
     * conflict (retryable), OutOfMemory / TooManyConflicts when the
     * memory system rejected it.
     */
    MemStatus lastCommitStatus() const { return commitStatus_; }

    /** Discard buffered writes and the working tree. */
    void abort();

    /** Set the logical byte length the next commit will publish. */
    void setByteLen(std::uint64_t bytes) { newByteLen_ = bytes; }

    /// number of buffered (dirty) leaves
    std::size_t dirtyLeaves() const { return dirty_.size(); }

    /**
     * Append every PLID reference this register currently owns (the
     * retained snapshot root, the working root, and caller-
     * transferred references parked in dirty buffers) to @p out, one
     * element per owned reference. Heap-auditor accounting support.
     */
    void auditRefs(std::vector<Plid> &out) const;

    /// total line fetches that the cached path avoided
    std::uint64_t pathCacheHits() const { return pathHits_.value(); }
    std::uint64_t pathCacheMisses() const { return pathMisses_.value(); }

  private:
    struct DirtyLeaf {
        std::vector<Word> words;
        std::vector<WordMeta> metas;
        std::uint64_t transientId = 0;
    };

    struct PathLevel {
        Entry entry;             ///< entry at this height
        unsigned childIdx = 0;   ///< which child the path follows
        bool kidsValid = false;
        Entry kids[kMaxLineWords];
    };

    void clearState();
    void growTo(std::uint64_t offset);
    /** (Re)build the cached path down to the leaf containing @p idx. */
    void descendTo(std::uint64_t idx);
    DirtyLeaf &dirtyLeafFor(std::uint64_t leaf_idx, bool create);
    /** Rebuild the canonical subtree merging dirty leaves; owned result. */
    HICAMP_RETURNS_REF Entry rebuild(HICAMP_BORROWS_REF const Entry &e,
                                     int h, std::uint64_t base);
    std::optional<std::uint64_t> mergedNextNonZero(std::uint64_t from);

    Memory &mem_;
    SegmentMap &vsm_;
    SegBuilder builder_;
    SegReader reader_;
    SegGeometry geo_;

    bool loaded_ = false;
    Vsid vsid_ = kNullVsid;
    bool readOnly_ = false;
    MemStatus commitStatus_ = MemStatus::Ok;
    SegDesc snap_;         ///< retained snapshot (CAS base)
    Entry work_;           ///< owned working root (snapshot + growth)
    int workHeight_ = 0;
    std::uint64_t offset_ = 0;
    std::uint64_t newByteLen_ = 0;

    std::map<std::uint64_t, DirtyLeaf> dirty_; ///< leaf index -> buffer
    /// buffer slots ((transientId * kMaxLineWords) + slot) holding a
    /// caller-transferred PLID reference the register still owns
    std::unordered_set<std::uint64_t> bufOwned_;
    std::uint64_t maxWrittenEnd_ = 0; ///< bytes: end of furthest write
    std::vector<PathLevel> path_; ///< root (front) .. leaf's parent
    std::uint64_t pathLeafIdx_ = ~std::uint64_t{0};
    bool pathValid_ = false;
    Word leafWords_[kMaxLineWords];
    WordMeta leafMetas_[kMaxLineWords];

    // hicamp-lint: stat-ok(per-register path-cache counters, read
    // directly through stats(); iterator registers are short-lived
    // architectural state, not process-wide metrics)
    Counter pathHits_;
    Counter pathMisses_;
};

} // namespace hicamp

#endif // HICAMP_SEG_ITERATOR_HH
