#include "seg/iterator.hh"

#include <algorithm>

#include "common/logging.hh"
#include "seg/entry_ref.hh"

namespace hicamp {

IteratorRegister::IteratorRegister(Memory &mem, SegmentMap &vsm)
    : mem_(mem), vsm_(vsm), builder_(mem), reader_(mem),
      geo_(mem.fanout())
{
    vsm_.registerIterator(this);
}

IteratorRegister::~IteratorRegister()
{
    clearState();
    vsm_.unregisterIterator(this);
}

void
IteratorRegister::clearState()
{
    for (auto &[leaf_idx, buf] : dirty_) {
        (void)leaf_idx;
        for (std::size_t i = 0; i < buf.words.size(); ++i) {
            if (buf.metas[i].isPlid() && buf.words[i] != 0 &&
                bufOwned_.count(buf.transientId * kMaxLineWords + i)) {
                mem_.decRef(buf.words[i]);
            }
        }
        mem_.invalidateTransient(buf.transientId);
    }
    dirty_.clear();
    bufOwned_.clear();
    if (loaded_) {
        builder_.release(work_);
        vsm_.releaseSnapshot(snap_);
    }
    loaded_ = false;
    pathValid_ = false;
    path_.clear();
    pathLeafIdx_ = ~std::uint64_t{0};
    newByteLen_ = 0;
    maxWrittenEnd_ = 0;
}

void
IteratorRegister::load(Vsid v, std::uint64_t offset)
{
    clearState();
    vsid_ = v;
    snap_ = vsm_.snapshot(v);
    // hicamp-lint: retain-ok(stored in work_; clearState()/commit
    // release the working-tree reference)
    work_ = builder_.retain(snap_.root);
    workHeight_ = snap_.height;
    readOnly_ = vsm_.isReadOnly(v);
    loaded_ = true;
    offset_ = 0;
    seek(offset);
}

std::uint64_t
IteratorRegister::coverage() const
{
    return geo_.wordsCovered(workHeight_);
}

void
IteratorRegister::growTo(std::uint64_t offset)
{
    const unsigned F = geo_.fanout();
    while (offset >= coverage()) {
        Entry kids[kMaxLineWords];
        // makeNode consumes its children on every path, so hand it a
        // fresh reference and keep the register's own: when the call
        // unwinds, work_ is still valid.
        kids[0] = builder_.retain(work_);
        for (unsigned i = 1; i < F; ++i)
            kids[i] = Entry::zero();
        Entry grown = builder_.makeNode(kids, workHeight_);
        builder_.release(work_);
        work_ = grown;
        ++workHeight_;
        pathValid_ = false;
        pathLeafIdx_ = ~std::uint64_t{0};
    }
}

void
IteratorRegister::seek(std::uint64_t offset)
{
    HICAMP_ASSERT(loaded_, "seek on unloaded iterator register");
    growTo(offset);
    offset_ = offset;
}

void
IteratorRegister::descendTo(std::uint64_t idx)
{
    const unsigned F = geo_.fanout();
    HICAMP_DEBUG_ASSERT(idx < coverage(),
                        "descend beyond working-tree coverage");
    const std::uint64_t leaf_idx = idx / F;
    if (pathValid_ && leaf_idx == pathLeafIdx_)
        return;

    // Per-level target child indices, top (height workHeight_) first.
    const int levels = workHeight_;
    std::vector<unsigned> want(levels);
    for (int i = 0; i < levels; ++i) {
        int h = workHeight_ - i; // height of the node at this level
        want[i] = static_cast<unsigned>(
            (idx / geo_.wordsCovered(h - 1)) & (F - 1));
    }

    // Reuse the longest matching prefix of the cached path.
    int start = 0;
    if (pathValid_) {
        while (start < levels &&
               start < static_cast<int>(path_.size()) &&
               path_[start].kidsValid &&
               path_[start].childIdx == want[start]) {
            ++start;
        }
    } else {
        path_.clear();
    }
    path_.resize(levels);
    pathHits_ += start;
    pathMisses_ += levels - start;

    Entry cur = start == 0
                    ? work_
                    : path_[start - 1].kids[path_[start - 1].childIdx];
    for (int i = start; i < levels; ++i) {
        int h = workHeight_ - i;
        PathLevel &lvl = path_[i];
        lvl.entry = cur;
        reader_.children(cur, h, lvl.kids);
        lvl.kidsValid = true;
        lvl.childIdx = want[i];
        cur = lvl.kids[want[i]];
    }

    // Load (and cache) the leaf's words.
    Entry leaf = levels == 0 ? work_ : cur;
    reader_.leafWords(leaf, leafWords_, leafMetas_);
    pathLeafIdx_ = leaf_idx;
    pathValid_ = true;
}

IteratorRegister::DirtyLeaf &
IteratorRegister::dirtyLeafFor(std::uint64_t leaf_idx, bool create)
{
    auto it = dirty_.find(leaf_idx);
    if (it != dirty_.end())
        return it->second;
    HICAMP_ASSERT(create, "missing dirty leaf");
    const unsigned F = geo_.fanout();
    DirtyLeaf buf;
    buf.words.resize(F);
    buf.metas.resize(F);
    // Seed the buffer from the snapshot content of the leaf. The
    // buffered PLID words stay owned by the snapshot's leaf line.
    descendTo(leaf_idx * F);
    for (unsigned i = 0; i < F; ++i) {
        buf.words[i] = leafWords_[i];
        buf.metas[i] = leafMetas_[i];
    }
    buf.transientId = mem_.allocTransient();
    return dirty_.emplace(leaf_idx, std::move(buf)).first->second;
}

Word
IteratorRegister::read(WordMeta *meta_out)
{
    HICAMP_ASSERT(loaded_, "read on unloaded iterator register");
    const unsigned F = geo_.fanout();
    HICAMP_DEBUG_ASSERT(offset_ < coverage(),
                        "iterator offset beyond coverage");
    const std::uint64_t leaf_idx = offset_ / F;
    auto it = dirty_.find(leaf_idx);
    if (it != dirty_.end()) {
        mem_.transientAccess(it->second.transientId, /*write=*/false);
        if (meta_out)
            *meta_out = it->second.metas[offset_ % F];
        return it->second.words[offset_ % F];
    }
    descendTo(offset_);
    if (meta_out)
        *meta_out = leafMetas_[offset_ % F];
    return leafWords_[offset_ % F];
}

void
IteratorRegister::write(Word w, WordMeta m)
{
    HICAMP_ASSERT(loaded_, "write on unloaded iterator register");
    const unsigned F = geo_.fanout();
    const std::uint64_t leaf_idx = offset_ / F;
    const unsigned slot = static_cast<unsigned>(offset_ % F);
    DirtyLeaf &buf = dirtyLeafFor(leaf_idx, /*create=*/true);
    mem_.transientAccess(buf.transientId, /*write=*/true);

    // Release a previously caller-owned reference being overwritten.
    const std::uint64_t okey = buf.transientId * kMaxLineWords + slot;
    if (buf.metas[slot].isPlid() && buf.words[slot] != 0 &&
        bufOwned_.count(okey)) {
        mem_.decRef(buf.words[slot]);
        bufOwned_.erase(okey);
    }

    buf.words[slot] = w;
    buf.metas[slot] = w == 0 ? WordMeta::raw() : m;
    if (buf.metas[slot].isPlid() && w != 0)
        bufOwned_.insert(okey);
    maxWrittenEnd_ = std::max(maxWrittenEnd_, (offset_ + 1) * kWordBytes);
}

std::optional<std::uint64_t>
IteratorRegister::mergedNextNonZero(std::uint64_t from)
{
    const unsigned F = geo_.fanout();
    const std::uint64_t end = coverage();
    if (from >= end)
        return std::nullopt;

    // Snapshot-side scan, skipping any leaf shadowed by a dirty buffer.
    std::optional<std::uint64_t> snap_hit;
    std::uint64_t pos = from;
    while (pos < end) {
        auto s = reader_.nextNonZero(work_, workHeight_, pos);
        if (!s)
            break;
        if (dirty_.count(*s / F)) {
            pos = (*s / F + 1) * F; // jump past the shadowed leaf
            continue;
        }
        snap_hit = *s;
        break;
    }

    // Dirty-buffer scan.
    std::optional<std::uint64_t> dirty_hit;
    for (auto it = dirty_.lower_bound(from / F); it != dirty_.end();
         ++it) {
        const std::uint64_t base = it->first * F;
        for (unsigned i = 0; i < F; ++i) {
            const std::uint64_t idx = base + i;
            if (idx >= from && it->second.words[i] != 0) {
                dirty_hit = idx;
                break;
            }
        }
        if (dirty_hit)
            break;
    }

    if (snap_hit && dirty_hit)
        return std::min(*snap_hit, *dirty_hit);
    return snap_hit ? snap_hit : dirty_hit;
}

bool
IteratorRegister::next()
{
    HICAMP_ASSERT(loaded_, "next on unloaded iterator register");
    auto hit = mergedNextNonZero(offset_ + 1);
    if (!hit)
        return false;
    offset_ = *hit;
    return true;
}

bool
IteratorRegister::nextFrom()
{
    HICAMP_ASSERT(loaded_, "nextFrom on unloaded iterator register");
    auto hit = mergedNextNonZero(offset_);
    if (!hit)
        return false;
    offset_ = *hit;
    return true;
}

Entry
IteratorRegister::rebuild(const Entry &e, int h, std::uint64_t base)
{
    const unsigned F = geo_.fanout();
    const std::uint64_t cover = geo_.wordsCovered(h);

    // Untouched subtree? (No dirty leaf index within the range.)
    auto it = dirty_.lower_bound(base / F);
    if (it == dirty_.end() || it->first * F >= base + cover)
        return builder_.retain(e);

    if (h == 0) {
        const DirtyLeaf &buf = it->second;
        HICAMP_DEBUG_ASSERT(it->first == base / F,
                            "dirty map inconsistent");
        HICAMP_DEBUG_ASSERT(buf.words.size() == F &&
                                buf.metas.size() == F,
                            "dirty buffer width mismatch");
        // Convert the transient buffer via lookup-by-content. The new
        // leaf line takes fresh references; buffer ownership state is
        // left untouched (released only when the commit lands).
        Word w[kMaxLineWords];
        WordMeta m[kMaxLineWords];
        for (unsigned i = 0; i < F; ++i) {
            w[i] = buf.words[i];
            m[i] = buf.metas[i];
            if (m[i].isPlid() && w[i] != 0)
                mem_.incRef(w[i]);
        }
        return builder_.makeLeaf(w, m);
    }

    Entry kids[kMaxLineWords];
    reader_.children(e, h, kids, DramCat::Read);
    // The guard owns the already-rebuilt subtrees, so a child rebuild
    // unwinding on memory pressure leaks nothing (buffers stay
    // intact and the caller may retry the commit or abort()).
    OwnedEntries merged(builder_);
    for (unsigned c = 0; c < F; ++c)
        merged.push(rebuild(kids[c], h - 1, base + c * (cover / F)));
    return builder_.makeNode(merged.disown(), h - 1);
}

bool
IteratorRegister::tryCommit(MergeStats *stats)
{
    HICAMP_ASSERT(loaded_, "commit on unloaded iterator register");
    commitStatus_ = MemStatus::Ok;
    if (readOnly_)
        return false;
    if (dirty_.empty() && newByteLen_ == 0)
        return true; // nothing to publish

    EntryRef new_root;
    try {
        new_root =
            EntryRef::adopt(builder_, rebuild(work_, workHeight_, 0));
    } catch (const MemPressureError &e) {
        // rebuild rolled its partial tree back; the write buffers are
        // intact, so the caller may retry the commit or abort().
        commitStatus_ = e.status();
        return false;
    }
    std::uint64_t len = newByteLen_ != 0
                            ? newByteLen_
                            : std::max(snap_.byteLen, maxWrittenEnd_);

    bool ok;
    try {
        if (vsm_.flags(vsid_) & kSegMergeUpdate) {
            // mcas consumes the proposed root on every path, including
            // its failure throw, so the handle disowns up front.
            SegDesc desired{new_root.release(), workHeight_, len};
            ok = vsm_.mcas(vsid_, snap_, desired, stats);
        } else {
            SegDesc desired{new_root.entry(), workHeight_, len};
            ok = vsm_.cas(vsid_, snap_, desired);
            if (ok)
                (void)new_root.release(); // the map took the reference
        }
    } catch (const MemPressureError &e) {
        commitStatus_ = e.status();
        return false;
    }
    // On the failure paths above, ~EntryRef releases the proposed
    // root (a lost cas race keeps the handle full).
    if (!ok)
        return false;

    // Committed: drop buffers (their owned references are superseded
    // by the committed tree's own) and re-load the published version.
    const Vsid v = vsid_;
    const std::uint64_t pos = offset_;
    clearState();
    load(v, pos);
    return true;
}

void
IteratorRegister::auditRefs(std::vector<Plid> &out) const
{
    if (!loaded_)
        return;
    if (snap_.root.meta.isPlid() && snap_.root.word != 0)
        out.push_back(snap_.root.word);
    if (work_.meta.isPlid() && work_.word != 0)
        out.push_back(work_.word);
    for (const auto &[leaf_idx, buf] : dirty_) {
        (void)leaf_idx;
        for (std::size_t i = 0; i < buf.words.size(); ++i) {
            if (buf.metas[i].isPlid() && buf.words[i] != 0 &&
                bufOwned_.count(buf.transientId * kMaxLineWords + i)) {
                out.push_back(buf.words[i]);
            }
        }
    }
}

void
IteratorRegister::abort()
{
    HICAMP_ASSERT(loaded_, "abort on unloaded iterator register");
    const Vsid v = vsid_;
    const std::uint64_t pos = offset_;
    clearState();
    load(v, pos);
}

} // namespace hicamp
