/**
 * @file
 * Read-side access to segment DAGs: child-slot expansion (including
 * path-compacted and inline-compacted entries), single-word reads,
 * next-non-zero scans (the iterator-register sparse-skip primitive)
 * and whole-subtree materialization.
 */

#ifndef HICAMP_SEG_READER_HH
#define HICAMP_SEG_READER_HH

#include <cstdint>
#include <optional>
#include <unordered_set>
#include <vector>

#include "mem/memory.hh"
#include "seg/entry.hh"

namespace hicamp {

/**
 * Stateless DAG reader. By default every line it touches goes through
 * the cache hierarchy and is attributed to a DRAM category; traffic
 * accounting can be disabled for measurement-only traversals (e.g.
 * footprint counting), which read the ground-truth store directly.
 */
class SegReader
{
  public:
    explicit SegReader(Memory &mem, bool count_traffic = true)
        : mem_(mem), geo_(mem.fanout()), traffic_(count_traffic)
    {}

    const SegGeometry &geometry() const { return geo_; }

    /**
     * Expand an interior entry (height >= 1) into its F child entries.
     * Costs one line read for plain PLID entries; path-compacted and
     * inline entries expand without memory access (the benefit of
     * compaction).
     */
    void children(const Entry &e, int h, Entry *out,
                  DramCat cat = DramCat::Read);

    /** Expand a height-0 entry into its F leaf words. */
    void leafWords(const Entry &e, Word *words, WordMeta *metas,
                   DramCat cat = DramCat::Read);

    /** Read one word (and optionally its tag) at word index @p idx. */
    Word readWord(const Entry &root, int h, std::uint64_t idx,
                  WordMeta *meta_out = nullptr,
                  DramCat cat = DramCat::Read);

    /**
     * Smallest word index >= @p from whose word is non-zero, or
     * nullopt. Zero subtrees are skipped without descending — the
     * iterator register's efficient sparse iteration (paper §3.3).
     */
    std::optional<std::uint64_t> nextNonZero(const Entry &root, int h,
                                             std::uint64_t from,
                                             DramCat cat = DramCat::Read);

    /** Expand the whole subtree into @p words / @p metas (coverage-sized). */
    void materialize(const Entry &root, int h, std::vector<Word> &words,
                     std::vector<WordMeta> &metas,
                     DramCat cat = DramCat::Read);

    /**
     * Count the distinct lines reachable from @p root, adding PLIDs to
     * @p seen. Never generates traffic. Returns lines newly added.
     */
    std::uint64_t countLines(const Entry &root, int h,
                             std::unordered_set<Plid> &seen);

  private:
    Line fetch(Plid plid, DramCat cat);
    std::optional<std::uint64_t> nextNonZeroRec(const Entry &e, int h,
                                                std::uint64_t from,
                                                DramCat cat);
    void materializeRec(const Entry &e, int h, std::uint64_t base,
                        std::vector<Word> &words,
                        std::vector<WordMeta> &metas, DramCat cat);

    Memory &mem_;
    SegGeometry geo_;
    bool traffic_;
};

} // namespace hicamp

#endif // HICAMP_SEG_READER_HH
