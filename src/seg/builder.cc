#include "seg/builder.hh"

#include <algorithm>
#include <cstring>

#include "common/backoff.hh"
#include "common/logging.hh"
#include "common/status.hh"
#include "seg/entry_ref.hh"

namespace hicamp {

bool
SegBuilder::tryInline(const Word *values, std::uint64_t n,
                      Entry *out) const
{
    if (n > 8)
        return false;
    const unsigned w = static_cast<unsigned>(64 / n);
    if (w != 8 && w != 16 && w != 32)
        return false;
    const Word limit = Word{1} << w;
    Word packed = 0;
    for (std::uint64_t i = 0; i < n; ++i) {
        if (values[i] >= limit)
            return false;
        packed |= values[i] << (w * i);
    }
    *out = {packed,
            WordMeta::inlineData(SegGeometry::widthCode(w))};
    return true;
}

void
SegBuilder::unpackRaw(const Entry &e, std::uint64_t n_words,
                      Word *out) const
{
    if (e.isZero()) {
        for (std::uint64_t i = 0; i < n_words; ++i)
            out[i] = 0;
        return;
    }
    HICAMP_ASSERT(e.meta.isInline() && e.meta.skip() == 0,
                  "unpackRaw expects a zero or inline entry");
    const unsigned w = e.meta.inlineWidth();
    HICAMP_ASSERT(e.meta.inlineWordCount() == n_words,
                  "inline coverage mismatch");
    for (std::uint64_t i = 0; i < n_words; ++i)
        out[i] = SegGeometry::inlineExtract(e.word, w,
                                            static_cast<unsigned>(i));
}

Entry
SegBuilder::makeLeaf(const Word *words, const WordMeta *metas)
{
    const unsigned F = geo_.fanout();
    Line line = mem_.makeLine();
    bool all_zero = true;
    bool all_raw = true;
    for (unsigned i = 0; i < F; ++i) {
        // Normalize: a zero word always carries the Raw tag.
        WordMeta m = words[i] == 0 ? WordMeta::raw() : metas[i];
        line.set(i, words[i], m);
        all_zero = all_zero && words[i] == 0;
        all_raw = all_raw && m.isRaw();
    }
    if (all_zero)
        return Entry::zero();
    if (all_raw && policy_.dataCompaction) {
        Word vals[kMaxLineWords];
        for (unsigned i = 0; i < F; ++i)
            vals[i] = line.word(i);
        Entry e;
        if (tryInline(vals, F, &e))
            return e;
    }
    if (modelStaging_) {
        // The core stages fresh content in a transient line, then
        // converts it with a lookup at commit time.
        std::uint64_t t = mem_.allocTransient();
        mem_.transientAccess(t, /*write=*/true);
        mem_.invalidateTransient(t);
    }
    Plid p = mem_.internLine(line);
    return Entry::ofPlid(p);
}

Entry
SegBuilder::makeNode(const Entry *children, int child_height)
{
    const unsigned F = geo_.fanout();
    unsigned non_zero = 0;
    unsigned nz_index = 0;
    bool packable = true; // all children zero or inline
    for (unsigned i = 0; i < F; ++i) {
        if (!children[i].isZero()) {
            ++non_zero;
            nz_index = i;
        }
        packable = packable && (children[i].isZero() ||
                                (children[i].meta.isInline() &&
                                 children[i].meta.skip() == 0));
    }

    // Rule 1: zero suppression.
    if (non_zero == 0)
        return Entry::zero();

    // Rule 2: data compaction of the whole subtree.
    const std::uint64_t n = geo_.wordsCovered(child_height + 1);
    if (packable && n <= 8 && policy_.dataCompaction) {
        const std::uint64_t per_child = n / F;
        Word vals[8];
        for (unsigned c = 0; c < F; ++c)
            unpackRaw(children[c], per_child, &vals[c * per_child]);
        Entry e;
        if (tryInline(vals, n, &e))
            return e;
    }

    // Rule 3: path compaction past a single-child node.
    if (non_zero == 1 && policy_.pathCompaction) {
        const Entry &only = children[nz_index];
        if (only.meta.isPlid() || only.meta.isInline()) {
            const unsigned b = geo_.fanoutBits();
            const unsigned skip = only.meta.skip();
            const unsigned max_path = WordMeta::pathBits(only.meta.kind());
            if (skip + 1 <= 15 && (skip + 1) * b <= max_path) {
                unsigned path = (only.meta.path() << b) | nz_index;
                return {only.word, only.meta.withPath(skip + 1, path)};
            }
        }
    }

    // General case: a real interior line.
    Line line = mem_.makeLine();
    for (unsigned i = 0; i < F; ++i)
        line.set(i, children[i].word, children[i].meta);
    if (modelStaging_) {
        std::uint64_t t = mem_.allocTransient();
        mem_.transientAccess(t, /*write=*/true);
        mem_.invalidateTransient(t);
    }
    Plid p = mem_.internLine(line);
    return Entry::ofPlid(p);
}

Entry
SegBuilder::build(const Word *words, const WordMeta *metas,
                  std::uint64_t n, int h)
{
    const unsigned F = geo_.fanout();
    if (h == 0) {
        Word w[kMaxLineWords] = {};
        WordMeta m[kMaxLineWords];
        for (unsigned i = 0; i < F; ++i) {
            w[i] = i < n ? words[i] : 0;
            m[i] = i < n ? metas[i] : WordMeta::raw();
        }
        return makeLeaf(w, m);
    }
    const std::uint64_t cw = geo_.wordsCovered(h - 1);
    // Consume-on-failure: the guard owns the subtrees already built,
    // so an unwinding sub-build (which released its own input range)
    // only leaves the un-built tail of the span to drop.
    OwnedEntries kids(*this);
    for (unsigned c = 0; c < F; ++c) {
        const std::uint64_t start = c * cw;
        if (start >= n) {
            kids.push(Entry::zero());
            continue;
        }
        const std::uint64_t len = std::min(cw, n - start);
        try {
            kids.push(build(words + start, metas + start, len, h - 1));
        } catch (const MemPressureError &) {
            releaseWords(words + start + len, metas + start + len,
                         n - (start + len));
            throw;
        }
    }
    return makeNode(kids.disown(), h - 1);
}

SegDesc
SegBuilder::buildBytes(const void *data, std::uint64_t len)
{
    const std::uint64_t n_words = (len + kWordBytes - 1) / kWordBytes;
    std::vector<Word> words(std::max<std::uint64_t>(n_words, 1), 0);
    std::memcpy(words.data(), data, len);
    std::vector<WordMeta> metas(words.size(), WordMeta::raw());
    SegDesc d = buildWords(words.data(), metas.data(), words.size());
    d.byteLen = len;
    return d;
}

SegDesc
SegBuilder::buildWords(const Word *words, const WordMeta *metas,
                       std::uint64_t n)
{
    HICAMP_TRACE_SCOPE(Seg, Build, n, n * kWordBytes);
    const int h = geo_.heightForWords(std::max<std::uint64_t>(n, 1));

    // A build over reference-free input consumes nothing, so a
    // transient allocation failure can be retried in place (bounded,
    // with backoff); that absorbs low-probability injected faults the
    // way the §3.4 commit loop absorbs CAS conflicts. Inputs carrying
    // PLID references cannot be re-attempted here — the failing build
    // consumed them — so those propagate after one try.
    bool retryable = true;
    for (std::uint64_t i = 0; i < n && retryable; ++i)
        retryable = !(metas[i].isPlid() && words[i] != 0);

    CommitRetry retry(mem_.retryPolicy(), &mem_.contention());
    for (;;) {
        try {
            SegDesc d;
            d.root = build(words, metas, n, h);
            d.height = h;
            d.byteLen = n * kWordBytes;
            return d;
        } catch (const MemPressureError &) {
            if (!retryable || !retry.onConflict())
                throw;
        }
    }
}

Entry
SegBuilder::setWord(const Entry &root, int h, std::uint64_t idx, Word w,
                    WordMeta m, DramCat cat)
{
    const unsigned F = geo_.fanout();
    HICAMP_ASSERT(idx < geo_.wordsCovered(h), "setWord index out of range");
    if (h == 0) {
        Word words[kMaxLineWords];
        WordMeta metas[kMaxLineWords];
        reader_.leafWords(root, words, metas, cat);
        // The new leaf line takes over one reference per surviving
        // PLID word; the old line keeps owning its copies.
        for (unsigned i = 0; i < F; ++i) {
            if (i != idx && metas[i].isPlid() && words[i] != 0)
                mem_.incRef(words[i]);
        }
        words[idx] = w;
        metas[idx] = m;
        return makeLeaf(words, metas);
    }
    Entry kids[kMaxLineWords];
    reader_.children(root, h, kids, cat);
    const std::uint64_t cw = geo_.wordsCovered(h - 1);
    const unsigned ci = static_cast<unsigned>(idx / cw);
    Entry new_child = setWord(kids[ci], h - 1, idx % cw, w, m, cat);
    Entry new_kids[kMaxLineWords];
    for (unsigned c = 0; c < F; ++c)
        new_kids[c] = c == ci ? new_child : retain(kids[c]);
    return makeNode(new_kids, h - 1);
}

} // namespace hicamp
