#include "seg/merge.hh"

#include "common/logging.hh"
#include "common/status.hh"
#include "obs/trace.hh"
#include "seg/entry_ref.hh"

namespace hicamp {

namespace {

class Merger
{
  public:
    Merger(Memory &mem, MergeStats *stats)
        : mem_(mem), builder_(mem), reader_(mem), stats_(stats)
    {}

    std::optional<Entry>
    merge(const Entry &o, const Entry &c, const Entry &n, int h)
    {
        // Content-unique roots: equality of entries is equality of
        // whole subtrees, so an unchanged side resolves immediately.
        // (An n == c shortcut would be unsound for counters: two
        // threads applying the same delta must sum, not collapse —
        // the difference rule below handles that.)
        if (c == o) {
            note_skip();
            return builder_.retain(n);
        }
        if (n == o) {
            note_skip();
            return builder_.retain(c);
        }
        if (stats_)
            ++stats_->nodesVisited;

        const unsigned F = mem_.fanout();
        if (h == 0) {
            Word ow[kMaxLineWords], cw[kMaxLineWords], nw[kMaxLineWords];
            WordMeta om[kMaxLineWords], cm[kMaxLineWords],
                nm[kMaxLineWords];
            reader_.leafWords(o, ow, om);
            reader_.leafWords(c, cw, cm);
            reader_.leafWords(n, nw, nm);
            Word mw[kMaxLineWords];
            WordMeta mm[kMaxLineWords];
            for (unsigned i = 0; i < F; ++i) {
                const bool cur_unchanged =
                    cw[i] == ow[i] && cm[i] == om[i];
                const bool new_unchanged =
                    nw[i] == ow[i] && nm[i] == om[i];
                const bool all_raw = om[i].isRaw() && cm[i].isRaw() &&
                                     nm[i].isRaw();
                if (cur_unchanged) {
                    mw[i] = nw[i];
                    mm[i] = nm[i];
                } else if (new_unchanged) {
                    mw[i] = cw[i];
                    mm[i] = cm[i];
                } else if (all_raw) {
                    // Counter semantics (paper §3.4): apply new's
                    // delta to cur — even when both sides happen to
                    // have written the same value (two equal deltas
                    // must sum, not collapse).
                    mw[i] = cw[i] + (nw[i] - ow[i]);
                    mm[i] = WordMeta::raw();
                    if (stats_)
                        ++stats_->wordMerges;
                } else {
                    // Both sides touched a reference word: conflict,
                    // even when they stored the same value. A matching
                    // store may be a consume (a queue pop clearing the
                    // slot it claimed, a push filling the same tail
                    // slot with equal content): collapsing the two
                    // loses one operation while their raw counter
                    // words elsewhere in the leaf delta-merge as two,
                    // leaving the structure inconsistent. Only a
                    // retry can tell intent apart.
                    return std::nullopt;
                }
            }
            // The merged leaf takes ownership of one reference per
            // surviving reference word.
            for (unsigned i = 0; i < F; ++i) {
                if (mm[i].isPlid() && mw[i] != 0)
                    mem_.incRef(mw[i]);
            }
            return builder_.makeLeaf(mw, mm);
        }

        Entry ok[kMaxLineWords], ck[kMaxLineWords], nk[kMaxLineWords];
        reader_.children(o, h, ok);
        reader_.children(c, h, ck);
        reader_.children(n, h, nk);
        // The guard owns the merged subtrees until makeNode takes them
        // over, so both unwind paths — memory pressure mid-merge and a
        // child-level conflict — roll back by scope exit.
        OwnedEntries merged(builder_);
        for (unsigned i = 0; i < F; ++i) {
            std::optional<Entry> m = merge(ok[i], ck[i], nk[i], h - 1);
            if (!m)
                return std::nullopt;
            merged.push(*m);
        }
        return builder_.makeNode(merged.disown(), h - 1);
    }

  private:
    void
    note_skip()
    {
        if (stats_)
            ++stats_->subtreesSkipped;
    }

    Memory &mem_;
    SegBuilder builder_;
    SegReader reader_;
    MergeStats *stats_;
};

} // namespace

std::optional<Entry>
mergeUpdate(Memory &mem, const Entry &old_e, const Entry &cur_e,
            const Entry &new_e, int height, MergeStats *stats)
{
    HICAMP_TRACE_SCOPE(Seg, Merge, cur_e.word, 0);
    Merger m(mem, stats);
    return m.merge(old_e, cur_e, new_e, height);
}

} // namespace hicamp
