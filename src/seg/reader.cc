#include "seg/reader.hh"

#include "common/logging.hh"

namespace hicamp {

Line
SegReader::fetch(Plid plid, DramCat cat)
{
    if (traffic_)
        return mem_.readLine(plid, cat);
    return mem_.store().read(plid);
}

void
SegReader::children(const Entry &e, int h, Entry *out, DramCat cat)
{
    HICAMP_ASSERT(h >= 1, "children() on a leaf entry");
    const unsigned F = geo_.fanout();

    if (e.isZero()) {
        for (unsigned i = 0; i < F; ++i)
            out[i] = Entry::zero();
        return;
    }

    const unsigned skip = e.meta.skip();
    if (skip > 0) {
        // Path-compacted: one non-zero child, no memory access.
        const unsigned b = geo_.fanoutBits();
        const unsigned idx = e.meta.path() & (F - 1);
        for (unsigned i = 0; i < F; ++i)
            out[i] = Entry::zero();
        out[idx] = {e.word, e.meta.withPath(skip - 1, e.meta.path() >> b)};
        return;
    }

    if (e.meta.isInline()) {
        // Split a packed all-raw subtree into F packed children; only
        // reachable for F == 2 (wider fanouts can inline only leaves).
        const unsigned w = e.meta.inlineWidth();
        const unsigned n = e.meta.inlineWordCount();
        HICAMP_ASSERT(n % F == 0 && n / F >= 2,
                      "inline entry cannot be split at this height");
        const unsigned per_child = n / F;
        const unsigned cw = 64 / per_child;
        for (unsigned c = 0; c < F; ++c) {
            Word packed = 0;
            bool any = false;
            for (unsigned i = 0; i < per_child; ++i) {
                Word v = SegGeometry::inlineExtract(e.word, w,
                                                    c * per_child + i);
                packed |= v << (cw * i);
                any = any || v != 0;
            }
            out[c] = any ? Entry{packed, WordMeta::inlineData(
                                             SegGeometry::widthCode(cw))}
                         : Entry::zero();
        }
        return;
    }

    HICAMP_ASSERT(e.meta.isPlid(), "malformed interior entry");
    Line line = fetch(e.plid(), cat);
    for (unsigned i = 0; i < F; ++i)
        out[i] = {line.word(i), line.meta(i)};
}

void
SegReader::leafWords(const Entry &e, Word *words, WordMeta *metas,
                     DramCat cat)
{
    const unsigned F = geo_.fanout();
    HICAMP_ASSERT(e.meta.skip() == 0, "height-0 entry cannot carry a path");

    if (e.isZero()) {
        for (unsigned i = 0; i < F; ++i) {
            words[i] = 0;
            metas[i] = WordMeta::raw();
        }
        return;
    }
    if (e.meta.isInline()) {
        const unsigned w = e.meta.inlineWidth();
        HICAMP_ASSERT(e.meta.inlineWordCount() == F,
                      "inline width inconsistent with leaf coverage");
        for (unsigned i = 0; i < F; ++i) {
            words[i] = SegGeometry::inlineExtract(e.word, w, i);
            metas[i] = WordMeta::raw();
        }
        return;
    }
    HICAMP_ASSERT(e.meta.isPlid(), "malformed leaf entry");
    Line line = fetch(e.plid(), cat);
    for (unsigned i = 0; i < F; ++i) {
        words[i] = line.word(i);
        metas[i] = line.meta(i);
    }
}

Word
SegReader::readWord(const Entry &root, int h, std::uint64_t idx,
                    WordMeta *meta_out, DramCat cat)
{
    HICAMP_ASSERT(idx < geo_.wordsCovered(h), "word index out of range");
    Entry e = root;
    Entry kids[kMaxLineWords];
    while (h > 0) {
        if (e.isZero())
            break;
        children(e, h, kids, cat);
        const std::uint64_t cw = geo_.wordsCovered(h - 1);
        e = kids[idx / cw];
        idx %= cw;
        --h;
    }
    if (e.isZero()) {
        if (meta_out)
            *meta_out = WordMeta::raw();
        return 0;
    }
    Word words[kMaxLineWords];
    WordMeta metas[kMaxLineWords];
    leafWords(e, words, metas, cat);
    if (meta_out)
        *meta_out = metas[idx];
    return words[idx];
}

std::optional<std::uint64_t>
SegReader::nextNonZero(const Entry &root, int h, std::uint64_t from,
                       DramCat cat)
{
    if (from >= geo_.wordsCovered(h))
        return std::nullopt;
    return nextNonZeroRec(root, h, from, cat);
}

std::optional<std::uint64_t>
SegReader::nextNonZeroRec(const Entry &e, int h, std::uint64_t from,
                          DramCat cat)
{
    if (e.isZero())
        return std::nullopt;
    const unsigned F = geo_.fanout();
    if (h == 0) {
        Word words[kMaxLineWords];
        WordMeta metas[kMaxLineWords];
        leafWords(e, words, metas, cat);
        for (std::uint64_t i = from; i < F; ++i) {
            if (words[i] != 0)
                return i;
        }
        return std::nullopt;
    }
    Entry kids[kMaxLineWords];
    children(e, h, kids, cat);
    const std::uint64_t cw = geo_.wordsCovered(h - 1);
    for (std::uint64_t c = from / cw; c < F; ++c) {
        std::uint64_t sub_from = c == from / cw ? from % cw : 0;
        auto sub = nextNonZeroRec(kids[c], h - 1, sub_from, cat);
        if (sub)
            return c * cw + *sub;
    }
    return std::nullopt;
}

void
SegReader::materialize(const Entry &root, int h, std::vector<Word> &words,
                       std::vector<WordMeta> &metas, DramCat cat)
{
    const std::uint64_t n = geo_.wordsCovered(h);
    words.assign(n, 0);
    metas.assign(n, WordMeta::raw());
    materializeRec(root, h, 0, words, metas, cat);
}

void
SegReader::materializeRec(const Entry &e, int h, std::uint64_t base,
                          std::vector<Word> &words,
                          std::vector<WordMeta> &metas, DramCat cat)
{
    if (e.isZero())
        return;
    const unsigned F = geo_.fanout();
    if (h == 0) {
        Word w[kMaxLineWords];
        WordMeta m[kMaxLineWords];
        leafWords(e, w, m, cat);
        for (unsigned i = 0; i < F; ++i) {
            words[base + i] = w[i];
            metas[base + i] = m[i];
        }
        return;
    }
    Entry kids[kMaxLineWords];
    children(e, h, kids, cat);
    const std::uint64_t cw = geo_.wordsCovered(h - 1);
    for (unsigned c = 0; c < F; ++c)
        materializeRec(kids[c], h - 1, base + c * cw, words, metas, cat);
}

std::uint64_t
SegReader::countLines(const Entry &root, int h,
                      std::unordered_set<Plid> &seen)
{
    if (root.isZero() || !root.meta.isPlid())
        return 0; // inline/zero entries occupy no line
    Plid p = root.plid();
    if (seen.count(p))
        return 0;
    seen.insert(p);
    std::uint64_t added = 1;
    // A path-compacted entry still references one real line; descend
    // into it at its physical height (h minus skipped levels).
    int ph = h - static_cast<int>(root.meta.skip());
    if (ph > 0) {
        Line line = mem_.store().read(p);
        for (unsigned i = 0; i < geo_.fanout(); ++i) {
            Entry child{line.word(i), line.meta(i)};
            added += countLines(child, ph - 1, seen);
        }
    }
    return added;
}

} // namespace hicamp
